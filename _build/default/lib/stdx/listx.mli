(** List and array helpers missing from the stdlib. *)

val range : int -> int -> int list
(** [range lo hi] is [\[lo; lo+1; ...; hi-1\]]; empty when [lo >= hi]. *)

val init_matrix : int -> int -> (int -> int -> 'a) -> 'a array array
(** [init_matrix rows cols f] builds a matrix with [f i j] at (i,j). *)

val cartesian : 'a list -> 'b list -> ('a * 'b) list
(** All pairs, in row-major order. *)

val all_subsets : 'a list -> 'a list list
(** All 2^n subsets (order within subsets preserved). *)

val all_bool_vectors : int -> bool list list
(** [all_bool_vectors n] is all 2^n boolean vectors of length [n],
    counting up from all-[false]. *)

val take : int -> 'a list -> 'a list
(** First [n] elements (fewer if the list is shorter). *)

val drop : int -> 'a list -> 'a list

val group_by : cmp:('k -> 'k -> int) -> key:('a -> 'k) -> 'a list -> ('k * 'a list) list
(** Stable grouping of elements by key, groups sorted by [cmp]. *)

val dedup_sorted : cmp:('a -> 'a -> int) -> 'a list -> 'a list
(** Sort by [cmp] and drop duplicates. *)

val find_index : ('a -> bool) -> 'a list -> int option

val interleavings : 'a list list -> 'a list list
(** All interleavings (shuffles) of the given sequences, preserving the
    internal order of each.  Exponential; intended for small inputs in
    tests. *)

val permutations : 'a list -> 'a list list
(** All permutations.  Factorial; for tests. *)
