type t = { capacity : int; words : int array }

let bits_per_word = Sys.int_size

let words_for n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity = n; words = Array.make (max 1 (words_for n)) 0 }

let capacity t = t.capacity

let copy t = { t with words = Array.copy t.words }

let check t i name =
  if i < 0 || i >= t.capacity then
    invalid_arg (Printf.sprintf "Bitset.%s: index %d out of [0,%d)" name i t.capacity)

let add t i =
  check t i "add";
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let remove t i =
  check t i "remove";
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i "mem";
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let popcount x =
  let rec loop acc x = if x = 0 then acc else loop (acc + 1) (x land (x - 1)) in
  loop 0 x

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let same_capacity a b name =
  if a.capacity <> b.capacity then
    invalid_arg (Printf.sprintf "Bitset.%s: capacity mismatch (%d vs %d)" name a.capacity b.capacity)

let union_into ~dst src =
  same_capacity dst src "union_into";
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let inter_into ~dst src =
  same_capacity dst src "inter_into";
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land w) src.words

let diff_into ~dst src =
  same_capacity dst src "diff_into";
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land lnot w) src.words

let equal a b = a.capacity = b.capacity && a.words = b.words

let subset a b =
  same_capacity a b "subset";
  let ok = ref true in
  Array.iteri (fun i w -> if w land lnot b.words.(i) <> 0 then ok := false) a.words;
  !ok

let disjoint a b =
  same_capacity a b "disjoint";
  let ok = ref true in
  Array.iteri (fun i w -> if w land b.words.(i) <> 0 then ok := false) a.words;
  !ok

let iter f t =
  for i = 0 to t.capacity - 1 do
    if mem t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n elems =
  let t = create n in
  List.iter (add t) elems;
  t

let compare a b =
  let c = Int.compare a.capacity b.capacity in
  if c <> 0 then c else Stdlib.compare a.words b.words

let hash t = Hashtbl.hash (t.capacity, t.words)

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Format.pp_print_int)
    (to_list t)
