(** Minimal Graphviz DOT emission.

    Used to render communication patterns (Hasse diagrams of the
    happens-before relation) for inspection. *)

type node = { id : string; label : string; shape : string option }

type edge = { src : string; dst : string; style : string option; elabel : string option }

type graph = {
  name : string;
  directed : bool;
  rankdir : string option;  (** e.g. ["LR"] or ["TB"] *)
  nodes : node list;
  edges : edge list;
}

val node : ?shape:string -> ?label:string -> string -> node
(** [node id] with [label] defaulting to [id]. *)

val edge : ?style:string -> ?label:string -> string -> string -> edge

val digraph : ?rankdir:string -> name:string -> node list -> edge list -> graph

val to_string : graph -> string
(** Render as DOT source. *)

val pp : Format.formatter -> graph -> unit
