(** Fixed-capacity mutable bitsets over [0 .. capacity-1].

    The workhorse of the partial-order library: relation rows are
    bitsets, so transitive closure is word-parallel. *)

type t

val create : int -> t
(** [create n] is the empty set with capacity [n] (all bits clear).
    @raise Invalid_argument if [n < 0]. *)

val capacity : t -> int

val copy : t -> t

val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool

val cardinal : t -> int

val is_empty : t -> bool

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] sets [dst := dst ∪ src].  Capacities must
    match. *)

val inter_into : dst:t -> t -> unit
val diff_into : dst:t -> t -> unit

val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] is [a ⊆ b]. *)

val disjoint : t -> t -> bool

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n elems] builds a capacity-[n] set. *)

val compare : t -> t -> int
(** Total order consistent with [equal] (lexicographic on words). *)

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Renders as [{0, 3, 5}]. *)
