type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let summarize = function
  | [] -> invalid_arg "Stats.summarize: empty list"
  | xs ->
    let n = List.length xs in
    let fn = float_of_int n in
    let mean = List.fold_left ( +. ) 0.0 xs /. fn in
    let var = List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. fn in
    {
      count = n;
      mean;
      stddev = sqrt var;
      min = List.fold_left Float.min infinity xs;
      max = List.fold_left Float.max neg_infinity xs;
    }

let linear_fit pts =
  if List.length pts < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let n = float_of_int (List.length pts) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
  let denom = (n *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Stats.linear_fit: zero variance in x";
  let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. n in
  (slope, intercept)

let power_fit pts =
  let logged =
    List.map
      (fun (x, y) ->
        if x <= 0.0 || y <= 0.0 then invalid_arg "Stats.power_fit: coordinates must be positive";
        (log x, log y))
      pts
  in
  let k, log_c = linear_fit logged in
  (k, exp log_c)

let r_squared pts ~f =
  let n = float_of_int (List.length pts) in
  let mean_y = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts /. n in
  let ss_tot = List.fold_left (fun a (_, y) -> a +. ((y -. mean_y) ** 2.0)) 0.0 pts in
  let ss_res = List.fold_left (fun a (x, y) -> a +. ((y -. f x) ** 2.0)) 0.0 pts in
  if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot)

let percentile xs ~p =
  if xs = [] then invalid_arg "Stats.percentile: empty list";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of [0,100]";
  let sorted = List.sort Float.compare xs in
  let n = List.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  List.nth sorted (max 0 (min (n - 1) (rank - 1)))
