type node = { id : string; label : string; shape : string option }

type edge = { src : string; dst : string; style : string option; elabel : string option }

type graph = {
  name : string;
  directed : bool;
  rankdir : string option;
  nodes : node list;
  edges : edge list;
}

let node ?shape ?label id = { id; label = Option.value label ~default:id; shape }

let edge ?style ?label src dst = { src; dst; style; elabel = label }

let digraph ?rankdir ~name nodes edges = { name; directed = true; rankdir; nodes; edges }

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c -> match c with '"' -> Buffer.add_string buf "\\\"" | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp ppf g =
  let kw = if g.directed then "digraph" else "graph" in
  let arrow = if g.directed then "->" else "--" in
  Format.fprintf ppf "%s \"%s\" {@." kw (escape g.name);
  Option.iter (fun rd -> Format.fprintf ppf "  rankdir=%s;@." rd) g.rankdir;
  List.iter
    (fun n ->
      let shape = match n.shape with None -> "" | Some s -> Printf.sprintf ", shape=%s" s in
      Format.fprintf ppf "  \"%s\" [label=\"%s\"%s];@." (escape n.id) (escape n.label) shape)
    g.nodes;
  List.iter
    (fun e ->
      let attrs =
        List.filter_map Fun.id
          [
            Option.map (Printf.sprintf "style=%s") e.style;
            Option.map (fun l -> Printf.sprintf "label=\"%s\"" (escape l)) e.elabel;
          ]
      in
      let attrs = if attrs = [] then "" else " [" ^ String.concat ", " attrs ^ "]" in
      Format.fprintf ppf "  \"%s\" %s \"%s\"%s;@." (escape e.src) arrow (escape e.dst) attrs)
    g.edges;
  Format.fprintf ppf "}@."

let to_string g = Format.asprintf "%a" pp g
