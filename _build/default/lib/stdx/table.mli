(** Plain-text table rendering for the benchmark harness and CLI.

    Columns are sized to their widest cell; headers are underlined.
    Output is deterministic and diff-friendly so bench output can be
    recorded in EXPERIMENTS.md. *)

type align = Left | Right

type t

val create : headers:(string * align) list -> t
(** A table with the given column headers and alignments. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header
    width. *)

val render : t -> string
(** Full table including header rule, newline-terminated. *)

val pp : Format.formatter -> t -> unit

val print : t -> unit
(** [render] to stdout. *)
