lib/stdx/stats.ml: Float List
