lib/stdx/prng.mli:
