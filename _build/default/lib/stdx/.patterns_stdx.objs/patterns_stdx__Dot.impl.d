lib/stdx/dot.ml: Buffer Format Fun List Option Printf String
