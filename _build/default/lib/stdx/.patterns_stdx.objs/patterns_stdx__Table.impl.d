lib/stdx/table.ml: Array Buffer Format List Printf String
