lib/stdx/bitset.ml: Array Format Hashtbl Int List Printf Stdlib Sys
