lib/stdx/stats.mli:
