lib/stdx/listx.mli:
