lib/stdx/pqueue.ml: List
