lib/stdx/dot.mli: Format
