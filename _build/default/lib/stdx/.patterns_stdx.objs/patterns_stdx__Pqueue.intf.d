lib/stdx/pqueue.mli:
