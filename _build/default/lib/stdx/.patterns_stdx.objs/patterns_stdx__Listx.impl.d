lib/stdx/listx.ml: Array List
