let range lo hi =
  let rec loop i acc = if i < lo then acc else loop (i - 1) (i :: acc) in
  loop (hi - 1) []

let init_matrix rows cols f = Array.init rows (fun i -> Array.init cols (fun j -> f i j))

let cartesian xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

let all_subsets l =
  List.fold_right (fun x acc -> List.map (fun s -> x :: s) acc @ acc) l [ [] ]

let all_bool_vectors n =
  let rec loop n = if n = 0 then [ [] ] else
    let rest = loop (n - 1) in
    List.concat_map (fun v -> [ false :: v; true :: v ]) rest
  in
  loop n

let take n l =
  let rec loop n acc = function
    | [] -> List.rev acc
    | _ when n <= 0 -> List.rev acc
    | x :: tl -> loop (n - 1) (x :: acc) tl
  in
  loop n [] l

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

let group_by ~cmp ~key l =
  let tagged = List.map (fun x -> (key x, x)) l in
  let sorted = List.stable_sort (fun (k1, _) (k2, _) -> cmp k1 k2) tagged in
  let rec loop = function
    | [] -> []
    | (k, x) :: tl ->
      let same, rest = List.partition (fun (k', _) -> cmp k k' = 0) tl in
      (k, x :: List.map snd same) :: loop rest
  in
  loop sorted

let dedup_sorted ~cmp l =
  let sorted = List.sort cmp l in
  let rec loop = function
    | [] -> []
    | [ x ] -> [ x ]
    | x :: (y :: _ as tl) -> if cmp x y = 0 then loop tl else x :: loop tl
  in
  loop sorted

let find_index p l =
  let rec loop i = function
    | [] -> None
    | x :: tl -> if p x then Some i else loop (i + 1) tl
  in
  loop 0 l

let rec interleavings = function
  | [] -> [ [] ]
  | seqs ->
    let nonempty = List.filter (fun s -> s <> []) seqs in
    if nonempty = [] then [ [] ]
    else
      List.concat
        (List.mapi
           (fun i seq ->
             match seq with
             | [] -> []
             | x :: rest ->
               let others = List.filteri (fun j _ -> j <> i) nonempty in
               let remaining = if rest = [] then others else rest :: others in
               List.map (fun tail -> x :: tail) (interleavings remaining))
           nonempty)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat
      (List.mapi
         (fun i x ->
           let rest = List.filteri (fun j _ -> j <> i) l in
           List.map (fun p -> x :: p) (permutations rest))
         l)
