(** Small statistics toolkit for the benchmark harness.

    Provides summary statistics and the least-squares fits used to
    check Theorem 7's O(N^2) step bound empirically: fitting
    [steps = c * N^k] on log-log axes and reporting the exponent [k]. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;       (** population standard deviation *)
  min : float;
  max : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on the empty list. *)

val linear_fit : (float * float) list -> float * float
(** [linear_fit pts] is [(slope, intercept)] of the least-squares line
    through [pts].  @raise Invalid_argument with fewer than two points
    or zero variance in x. *)

val power_fit : (float * float) list -> float * float
(** [power_fit pts] fits [y = c * x^k] by linear regression in log-log
    space, returning [(k, c)].  All coordinates must be positive. *)

val r_squared : (float * float) list -> f:(float -> float) -> float
(** Coefficient of determination of model [f] on the points. *)

val percentile : float list -> p:float -> float
(** [percentile xs ~p] with [p] in [\[0,100\]], nearest-rank method.
    @raise Invalid_argument on the empty list or [p] out of range. *)
