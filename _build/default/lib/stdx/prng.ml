type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finalizer: a bijective avalanche of the incremented
   counter.  See Steele, Lea & Flood, "Fast Splittable Pseudorandom
   Number Generators" (OOPSLA 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let nonneg = Int64.to_int (Int64.logand (bits64 t) mask) in
  nonneg mod bound

let float t =
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | l -> List.nth l (int t ~bound:(List.length l))

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Prng.pick_array: empty array";
  a.(int t ~bound:(Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle_list t l =
  let a = Array.of_list l in
  shuffle t a;
  Array.to_list a
