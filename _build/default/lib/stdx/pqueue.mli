(** Persistent priority queue (leftist heap).

    Used by the simulator's priority-queue buffers in the
    total-communication transformation (Section 3 of the paper), where
    indirectly-received messages must be processed in causal order. *)

type 'a t

val empty : cmp:('a -> 'a -> int) -> 'a t
(** Empty queue ordered by [cmp]; the minimum element pops first. *)

val is_empty : 'a t -> bool

val size : 'a t -> int
(** Number of elements; O(1). *)

val push : 'a t -> 'a -> 'a t

val peek : 'a t -> 'a option
(** Minimum element, if any. *)

val pop : 'a t -> ('a * 'a t) option
(** Minimum element and remaining queue, if any. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val to_sorted_list : 'a t -> 'a list
(** All elements, ascending. *)

val mem : 'a t -> 'a -> bool
(** Linear-time membership using the queue's comparator ([cmp x y = 0]). *)
