(** Deterministic pseudo-random number generation.

    A small, fast, splittable generator (SplitMix64).  Every randomized
    component of the library (schedulers, workload generators, qcheck
    seeds) draws from an explicit [t] so that runs are reproducible
    from a single integer seed.  No global state. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s continuation. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform in [\[0, bound)].  @raise Invalid_argument
    if [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list.  @raise Invalid_argument on
    the empty list. *)

val pick_array : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
(** Functional shuffle. *)
