type 'a node =
  | Leaf
  | Node of { rank : int; v : 'a; left : 'a node; right : 'a node }

type 'a t = { cmp : 'a -> 'a -> int; size : int; root : 'a node }

let empty ~cmp = { cmp; size = 0; root = Leaf }

let is_empty t = t.root = Leaf

let size t = t.size

let rank = function Leaf -> 0 | Node { rank; _ } -> rank

(* Leftist-heap merge: keep the shorter spine on the right, giving
   O(log n) merge and hence push/pop. *)
let rec merge cmp a b =
  match a, b with
  | Leaf, h | h, Leaf -> h
  | Node na, Node nb ->
    if cmp na.v nb.v <= 0 then make cmp na.v na.left (merge cmp na.right b)
    else make cmp nb.v nb.left (merge cmp nb.right a)

and make _cmp v l r =
  if rank l >= rank r then Node { rank = rank r + 1; v; left = l; right = r }
  else Node { rank = rank l + 1; v; left = r; right = l }

let push t x =
  let single = Node { rank = 1; v = x; left = Leaf; right = Leaf } in
  { t with size = t.size + 1; root = merge t.cmp t.root single }

let peek t = match t.root with Leaf -> None | Node { v; _ } -> Some v

let pop t =
  match t.root with
  | Leaf -> None
  | Node { v; left; right; _ } ->
    Some (v, { t with size = t.size - 1; root = merge t.cmp left right })

let of_list ~cmp l = List.fold_left push (empty ~cmp) l

let to_sorted_list t =
  let rec loop acc t =
    match pop t with None -> List.rev acc | Some (x, t') -> loop (x :: acc) t'
  in
  loop [] t

let mem t x =
  let rec loop = function
    | Leaf -> false
    | Node { v; left; right; _ } -> t.cmp v x = 0 || loop left || loop right
  in
  loop t.root
