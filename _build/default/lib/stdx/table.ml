type align = Left | Right

type t = { headers : (string * align) list; mutable rows : string list list }

let create ~headers = { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d" (List.length t.headers)
         (List.length row));
  t.rows <- t.rows @ [ row ]

let pad align width s =
  let gap = width - String.length s in
  if gap <= 0 then s
  else match align with Left -> s ^ String.make gap ' ' | Right -> String.make gap ' ' ^ s

let render t =
  let cols = List.length t.headers in
  let widths = Array.make cols 0 in
  List.iteri (fun i (h, _) -> widths.(i) <- String.length h) t.headers;
  List.iter
    (fun row -> List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    t.rows;
  let buf = Buffer.create 256 in
  let emit_row cells =
    List.iteri
      (fun i (cell, align) ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad align widths.(i) cell))
      cells;
    (* trim trailing padding for diff-friendliness *)
    let line = Buffer.contents buf in
    Buffer.clear buf;
    let trimmed =
      let n = ref (String.length line) in
      while !n > 0 && line.[!n - 1] = ' ' do decr n done;
      String.sub line 0 !n
    in
    trimmed ^ "\n"
  in
  let header = emit_row (List.map (fun (h, a) -> (h, a)) t.headers) in
  let rule =
    String.concat "  " (List.mapi (fun i _ -> String.make widths.(i) '-') t.headers) ^ "\n"
  in
  let aligns = List.map snd t.headers in
  let body =
    List.map (fun row -> emit_row (List.combine row aligns)) t.rows |> String.concat ""
  in
  header ^ rule ^ body

let pp ppf t = Format.pp_print_string ppf (render t)

let print t = print_string (render t)
