(** Binary decision values.

    [Commit] is the decision "1" of the paper, [Abort] is "0". *)

type t = Commit | Abort

val of_bool : bool -> t
(** [of_bool true = Commit]. *)

val to_bool : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
