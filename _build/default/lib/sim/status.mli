(** Observable status of a processor's local state.

    This is the analysis-facing projection of a protocol state: whether
    the processor occupies a decision state ([Y_0]/[Y_1]), the amnesic
    state of strong termination, or a halted state.  The paper's
    closure property — once in [Y_v], stay in [Y_v] (except for the
    move to the amnesic state) — is enforced by the engine using this
    projection. *)

type t = {
  decision : Decision.t option;
      (** [Some d] iff the state is a decision state for [d].  [None]
          for undecided *and* amnesic states (an amnesic processor has
          forgotten its decision value). *)
  amnesic : bool;  (** has taken the strong-termination amnesia step *)
  halted : bool;
      (** will neither send nor receive again; the engine checks this
          agrees with the protocol's step classification *)
}

val undecided : t
val decided : Decision.t -> t
val decided_halted : Decision.t -> t
val amnesic : t
val amnesic_halted : t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val transition_ok : t -> t -> bool
(** [transition_ok before after] checks the paper's state-set
    invariants: decisions are irrevocable (a decided processor stays
    decided with the same value, or becomes amnesic), amnesia is
    permanent, and halting is permanent. *)
