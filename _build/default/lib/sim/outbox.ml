type 'msg t = (Proc_id.t * 'msg) list

let empty = []

let is_empty t = t = []

let push t dst msg = t @ [ (dst, msg) ]

let broadcast t dsts msg = List.fold_left (fun acc dst -> push acc dst msg) t dsts

let pop = function [] -> None | x :: tl -> Some (x, tl)

let drop_to p t = List.filter (fun (q, _) -> not (Proc_id.equal p q)) t

let compare ~cmp_msg a b =
  List.compare
    (fun (p1, m1) (p2, m2) ->
      let c = Proc_id.compare p1 p2 in
      if c <> 0 then c else cmp_msg m1 m2)
    a b

let pp ~pp_msg ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (p, m) -> Format.fprintf ppf "%a<-%a" Proc_id.pp p pp_msg m))
    t
