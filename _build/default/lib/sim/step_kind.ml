type t = Receiving | Sending | Quiescent

let equal a b =
  match (a, b) with
  | Receiving, Receiving | Sending, Sending | Quiescent, Quiescent -> true
  | (Receiving | Sending | Quiescent), _ -> false

let pp ppf = function
  | Receiving -> Format.pp_print_string ppf "receiving"
  | Sending -> Format.pp_print_string ppf "sending"
  | Quiescent -> Format.pp_print_string ppf "quiescent"
