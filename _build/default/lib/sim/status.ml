type t = { decision : Decision.t option; amnesic : bool; halted : bool }

let undecided = { decision = None; amnesic = false; halted = false }
let decided d = { decision = Some d; amnesic = false; halted = false }
let decided_halted d = { decision = Some d; amnesic = false; halted = true }
let amnesic = { decision = None; amnesic = true; halted = false }
let amnesic_halted = { decision = None; amnesic = true; halted = true }

let equal a b =
  Option.equal Decision.equal a.decision b.decision
  && a.amnesic = b.amnesic && a.halted = b.halted

let pp ppf t =
  let d =
    match t.decision with
    | None -> if t.amnesic then "amnesic" else "undecided"
    | Some d -> Decision.to_string d
  in
  Format.fprintf ppf "%s%s" d (if t.halted then "+halted" else "")

let transition_ok before after =
  let decision_ok =
    match (before.decision, after.decision) with
    | None, _ -> true
    | Some d, Some d' -> Decision.equal d d'
    | Some _, None -> after.amnesic (* forgetting is only allowed via amnesia *)
  in
  let amnesia_ok = (not before.amnesic) || after.amnesic in
  let halt_ok = (not before.halted) || after.halted in
  decision_ok && amnesia_ok && halt_ok
