lib/sim/trace.mli: Decision Format Proc_id Triple
