lib/sim/proc_id.ml: Format Fun Int List Map Printf Set
