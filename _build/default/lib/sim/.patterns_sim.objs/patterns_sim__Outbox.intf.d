lib/sim/outbox.mli: Format Proc_id
