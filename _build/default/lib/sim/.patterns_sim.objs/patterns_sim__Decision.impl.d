lib/sim/decision.ml: Format
