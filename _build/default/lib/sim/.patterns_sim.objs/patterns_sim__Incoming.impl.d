lib/sim/incoming.ml: Format Proc_id
