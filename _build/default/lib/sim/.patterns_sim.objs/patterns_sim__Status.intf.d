lib/sim/status.mli: Decision Format
