lib/sim/status.ml: Decision Format Option
