lib/sim/protocol.ml: Format Incoming Proc_id Status Step_kind
