lib/sim/triple.mli: Format Map Proc_id Set
