lib/sim/step_kind.mli: Format
