lib/sim/action.ml: Format Int Proc_id
