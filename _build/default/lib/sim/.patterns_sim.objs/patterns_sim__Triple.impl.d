lib/sim/triple.ml: Format Int Map Printf Proc_id Set
