lib/sim/proc_id.mli: Format Map Set
