lib/sim/protocol.mli: Format Incoming Proc_id Status Step_kind
