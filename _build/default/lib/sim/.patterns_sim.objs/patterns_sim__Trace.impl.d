lib/sim/trace.ml: Array Buffer Decision Format List Printf Proc_id String Triple
