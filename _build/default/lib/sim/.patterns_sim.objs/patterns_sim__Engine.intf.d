lib/sim/engine.mli: Action Decision Format Patterns_stdx Proc_id Protocol Status Trace Triple
