lib/sim/step_kind.ml: Format
