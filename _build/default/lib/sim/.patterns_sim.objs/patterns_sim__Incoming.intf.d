lib/sim/incoming.mli: Format Proc_id
