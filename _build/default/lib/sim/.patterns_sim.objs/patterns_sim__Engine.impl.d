lib/sim/engine.ml: Action Array Format Hashtbl Incoming Int List Listx Patterns_stdx Printf Prng Proc_id Protocol Result Set Status Stdlib Step_kind Trace Triple
