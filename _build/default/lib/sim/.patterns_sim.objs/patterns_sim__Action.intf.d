lib/sim/action.mli: Format Proc_id
