lib/sim/outbox.ml: Format List Proc_id
