type t = Commit | Abort

let of_bool b = if b then Commit else Abort
let to_bool = function Commit -> true | Abort -> false

let compare a b =
  match (a, b) with
  | Commit, Commit | Abort, Abort -> 0
  | Abort, Commit -> -1
  | Commit, Abort -> 1

let equal a b = compare a b = 0
let to_string = function Commit -> "commit" | Abort -> "abort"
let pp ppf d = Format.pp_print_string ppf (to_string d)
