(** What a processor sees in a receiving step.

    Either a normal protocol message, or the failure notice
    [failed(q)] broadcast when processor [q] fail-stops (the [mu = f]
    events of the paper's model are delivered to peers as these
    notices). *)

type 'msg t =
  | Msg of { from : Proc_id.t; payload : 'msg }
  | Failed of Proc_id.t  (** [Failed q]: notice that [q] has crashed *)

val compare : cmp_msg:('msg -> 'msg -> int) -> 'msg t -> 'msg t -> int
val pp : pp_msg:(Format.formatter -> 'msg -> unit) -> Format.formatter -> 'msg t -> unit
