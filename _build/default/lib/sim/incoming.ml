type 'msg t =
  | Msg of { from : Proc_id.t; payload : 'msg }
  | Failed of Proc_id.t

let compare ~cmp_msg a b =
  match (a, b) with
  | Failed p, Failed q -> Proc_id.compare p q
  | Failed _, Msg _ -> -1
  | Msg _, Failed _ -> 1
  | Msg a, Msg b ->
    let c = Proc_id.compare a.from b.from in
    if c <> 0 then c else cmp_msg a.payload b.payload

let pp ~pp_msg ppf = function
  | Failed p -> Format.fprintf ppf "failed(%a)" Proc_id.pp p
  | Msg { from; payload } -> Format.fprintf ppf "%a:%a" Proc_id.pp from pp_msg payload
