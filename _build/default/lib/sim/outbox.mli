(** Outgoing-message queues for protocol states.

    The model sends at most one message per sending step, so a
    "broadcast" is a run of sending states.  Protocols embed an
    [Outbox.t] in their state and drain it one message per step; the
    helpers here keep that boilerplate uniform across protocols. *)

type 'msg t = (Proc_id.t * 'msg) list
(** Oldest message first. *)

val empty : 'msg t

val is_empty : 'msg t -> bool

val push : 'msg t -> Proc_id.t -> 'msg -> 'msg t
(** Enqueue at the back. *)

val broadcast : 'msg t -> Proc_id.t list -> 'msg -> 'msg t
(** Enqueue the same payload to each destination, in list order —
    the paper's [broadcast(message, set-of-processors)]. *)

val pop : 'msg t -> ((Proc_id.t * 'msg) * 'msg t) option

val drop_to : Proc_id.t -> 'msg t -> 'msg t
(** Remove all queued messages addressed to the given processor (used
    when a destination is learned to have failed). *)

val compare : cmp_msg:('msg -> 'msg -> int) -> 'msg t -> 'msg t -> int

val pp : pp_msg:(Format.formatter -> 'msg -> unit) -> Format.formatter -> 'msg t -> unit
