(** Classification of protocol states.

    The paper partitions the operational states into receiving states
    [Z_R] and sending states [Z_S]; we add [Quiescent] for states in
    which a processor takes no further steps (the halted states of
    halting termination, and the terminal listening loop of
    weak-termination protocols once nothing remains to do). *)

type t =
  | Receiving  (** waits for a message or failure notice *)
  | Sending    (** will emit at most one message when scheduled *)
  | Quiescent  (** takes no further steps by itself *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
