(** Scheme comparison between concrete protocols.

    The paper's reducibility relates *problems* via sets of schemes; at
    the level of two concrete protocols the computable ingredient is
    the relationship between their schemes.  [scheme_of Q ⊆ schemes
    solving P1] is what makes "any protocol for P2 solves P1 by
    relabeling states and padding messages" go through, so comparing
    schemes of a P1-solver and a P2-solver exhibits the reduction (or
    its failure) concretely. *)

open Patterns_sim

type relationship =
  | Equal
  | Left_subscheme  (** the left scheme is strictly contained in the right *)
  | Right_subscheme
  | Incomparable of { only_left : Pattern.t; only_right : Pattern.t }
      (** witnesses: a pattern only the left protocol realizes, and one
          only the right does *)

val compare_schemes : Pattern.Set.t -> Pattern.Set.t -> relationship

val compare_protocols :
  ?max_configs:int ->
  n:int ->
  (module Protocol.S) ->
  (module Protocol.S) ->
  relationship * Pattern.Set.t * Pattern.Set.t
(** Enumerate both schemes at size [n] and compare.  Also returns the
    two schemes for display. *)

val pp_relationship : Format.formatter -> relationship -> unit
