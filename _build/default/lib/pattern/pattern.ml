open Patterns_sim

module Tp = Patterns_order.Poset.Make (struct
  type t = Triple.t

  let compare = Triple.compare
  let pp = Triple.pp
end)

type t = Tp.t

let make triples pairs = Tp.of_order triples pairs

let of_trace trace =
  let sends = Trace.sends trace in
  let triples = List.map (fun (t, _, _) -> t) sends in
  let pairs =
    List.concat_map (fun (t, _, causes) -> List.map (fun c -> (c, t)) causes) sends
  in
  make triples pairs

let empty = Tp.empty

let messages = Tp.elements

let message_count = Tp.cardinal

let lt = Tp.lt

let concurrent t a b = Triple.compare a b <> 0 && not (Tp.comparable t a b)

let covers = Tp.covers

let all_pairs = Tp.relation_pairs

let equal = Tp.equal

let compare = Tp.compare

let is_prefix_consistent a b =
  List.for_all (fun m -> Tp.index_of b m <> None) (messages a)
  && List.for_all (fun (x, y) -> lt b x y) (all_pairs a)
  &&
  (* the extension must not order a's messages in ways a's closure
     lacks: agreement, not mere containment *)
  List.for_all
    (fun (x, y) ->
      match (Tp.index_of a x, Tp.index_of a y) with
      | Some _, Some _ -> lt a x y
      | _ -> true)
    (all_pairs b)

let width = Tp.width

let height = Tp.height

let delivery_orders = Tp.linear_extensions

let messages_of_proc t p =
  List.filter (fun m -> Proc_id.equal m.Triple.sender p) (messages t)

let received_none t ~n =
  let receivers =
    List.fold_left (fun acc m -> Proc_id.Set.add m.Triple.receiver acc) Proc_id.Set.empty
      (messages t)
  in
  List.filter (fun p -> not (Proc_id.Set.mem p receivers)) (Proc_id.all ~n)

let pp ppf t =
  if message_count t = 0 then Format.pp_print_string ppf "(empty pattern)"
  else
    Format.fprintf ppf "@[<v>msgs: %a@,order: %a@]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Triple.pp)
      (messages t)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf (a, b) -> Format.fprintf ppf "%a<%a" Triple.pp a Triple.pp b))
      (covers t)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
