open Patterns_sim
open Patterns_stdx

type stats = {
  configs_visited : int;
  terminal_configs : int;
  truncated : bool;
}

let pp_stats ppf s =
  Format.fprintf ppf "visited=%d terminal=%d%s" s.configs_visited s.terminal_configs
    (if s.truncated then " (TRUNCATED)" else "")

module Make (P : Protocol.S) = struct
  module E = Engine.Make (P)

  module Config_set = Set.Make (struct
    type t = E.config

    let compare = E.compare_config
  end)

  let patterns_for_inputs ?(max_configs = 1_000_000) ~n ~inputs () =
    let visited = ref Config_set.empty in
    let visited_count = ref 0 in
    let patterns = ref Pattern.Set.empty in
    let terminal = ref 0 in
    let truncated = ref false in
    let stack = ref [ E.init ~n ~inputs ] in
    let rec loop () =
      match !stack with
      | [] -> ()
      | c :: rest ->
        stack := rest;
        if Config_set.mem c !visited then loop ()
        else if !visited_count >= max_configs then truncated := true
        else begin
          visited := Config_set.add c !visited;
          incr visited_count;
          (match E.applicable c with
          | [] ->
            incr terminal;
            patterns :=
              Pattern.Set.add (Pattern.make (E.triples_of c) (E.pattern_edges c)) !patterns
          | actions ->
            List.iter
              (fun a ->
                let c', _ = E.apply_exn ~step:0 c a in
                if not (Config_set.mem c' !visited) then stack := c' :: !stack)
              actions);
          loop ()
        end
    in
    loop ();
    ( !patterns,
      {
        configs_visited = !visited_count;
        terminal_configs = !terminal;
        truncated = !truncated;
      } )

  let realize ?(max_configs = 1_000_000) ~n ~inputs ~target () =
    let visited = ref Config_set.empty in
    let visited_count = ref 0 in
    (* the accumulated pattern must be a prefix of the target: its
       triples a subset, and the orders in agreement *)
    let prefix_ok c =
      let here = Pattern.make (E.triples_of c) (E.pattern_edges c) in
      Pattern.is_prefix_consistent here target
    in
    let exception Found of Action.t list in
    let rec dfs c path =
      if Config_set.mem c !visited || !visited_count >= max_configs then ()
      else begin
        visited := Config_set.add c !visited;
        incr visited_count;
        match E.applicable c with
        | [] ->
          if Pattern.equal (Pattern.make (E.triples_of c) (E.pattern_edges c)) target then
            raise (Found (List.rev path))
        | actions ->
          List.iter
            (fun a ->
              let c', _ = E.apply_exn ~step:0 c a in
              if (not (Config_set.mem c' !visited)) && prefix_ok c' then dfs c' (a :: path))
            actions
      end
    in
    match dfs (E.init ~n ~inputs) [] with
    | () -> None
    | exception Found path -> Some path

  let scheme ?max_configs ~n () =
    List.fold_left
      (fun (acc, st) inputs ->
        let pats, st' = patterns_for_inputs ?max_configs ~n ~inputs () in
        ( Pattern.Set.union acc pats,
          {
            configs_visited = st.configs_visited + st'.configs_visited;
            terminal_configs = st.terminal_configs + st'.terminal_configs;
            truncated = st.truncated || st'.truncated;
          } ))
      (Pattern.Set.empty, { configs_visited = 0; terminal_configs = 0; truncated = false })
      (Listx.all_bool_vectors n)
end

let subscheme a b = Pattern.Set.subset a b

let equal_schemes a b = Pattern.Set.equal a b

let pp_scheme ppf s =
  let pats = Pattern.Set.elements s in
  Format.fprintf ppf "@[<v>%d pattern(s):@," (List.length pats);
  List.iteri (fun i p -> Format.fprintf ppf "-- pattern %d --@,%a@," (i + 1) Pattern.pp p) pats;
  Format.fprintf ppf "@]"
