lib/pattern/scheme.mli: Engine Format Pattern Patterns_sim Protocol
