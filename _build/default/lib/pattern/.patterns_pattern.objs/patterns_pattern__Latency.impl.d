lib/pattern/latency.ml: Array Float Hashtbl List Option Pattern Patterns_sim Patterns_stdx Prng Proc_id Trace Triple
