lib/pattern/scheme.ml: Engine Format List Listx Pattern Patterns_sim Patterns_stdx Protocol Set
