lib/pattern/latency.mli: Patterns_sim Proc_id Trace Triple
