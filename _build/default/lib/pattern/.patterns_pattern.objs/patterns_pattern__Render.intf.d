lib/pattern/render.mli: Format Pattern Patterns_sim Patterns_stdx Trace
