lib/pattern/render.ml: Buffer Decision Dot Format List Pattern Patterns_sim Patterns_stdx Proc_id String Trace Triple
