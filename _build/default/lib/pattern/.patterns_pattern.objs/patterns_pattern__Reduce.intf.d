lib/pattern/reduce.mli: Format Pattern Patterns_sim Protocol
