lib/pattern/pattern.mli: Format Patterns_sim Proc_id Set Trace Triple
