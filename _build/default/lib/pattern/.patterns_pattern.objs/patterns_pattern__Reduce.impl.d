lib/pattern/reduce.ml: Format Pattern Patterns_sim Protocol Scheme
