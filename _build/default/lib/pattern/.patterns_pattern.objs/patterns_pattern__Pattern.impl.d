lib/pattern/pattern.ml: Format List Patterns_order Patterns_sim Proc_id Set Trace Triple
