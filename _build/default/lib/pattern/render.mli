(** Rendering of patterns and traces for humans. *)

open Patterns_sim

val pattern_to_dot : ?name:string -> Pattern.t -> Patterns_stdx.Dot.graph
(** Hasse diagram of the pattern: nodes are message triples, edges the
    covers. *)

val pattern_ascii : Pattern.t -> string
(** Multi-line listing: messages, covers, width/height. *)

val msc : pp_msg:(Format.formatter -> 'msg -> unit) -> 'msg Trace.t -> string
(** Message-sequence-chart-style listing of a trace: one line per
    send/receive/failure/decision in chronological order. *)

val lanes : ?width:int -> pp_msg:(Format.formatter -> 'msg -> unit) -> n:int -> 'msg Trace.t -> string
(** Two-dimensional space-time diagram: one column (lane) per
    processor, one row per event, each event printed in its
    processor's lane ([width] characters per lane, default 16). *)

val trace_to_dot : ?name:string -> 'msg Trace.t -> Patterns_stdx.Dot.graph
(** The pattern of the trace as a DOT graph (payloads dropped). *)
