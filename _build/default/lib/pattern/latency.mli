(** Latency analysis of executions.

    The model is untimed, but a trace plus a delay assignment induces
    completion times: a message is sent when its sender has finished
    every earlier step, and received no earlier than [send + delay].
    This is the longest-path semantics of the happens-before order —
    the link between a pattern's *height* and the wall-clock latency a
    deployment would see, and the quantitative face of the lattice:
    each extra phase a stronger problem needs shows up as critical-path
    depth.

    Delays are drawn from a seeded model so analyses are reproducible. *)

open Patterns_sim

type delay_model =
  | Uniform of { lo : float; hi : float }  (** per-message, independent *)
  | Fixed of float
  | Per_link of (Proc_id.t -> Proc_id.t -> float)
      (** deterministic function of (sender, receiver) *)

type timing = {
  completion : float;  (** when the last nonfaulty processor finishes its last step *)
  per_proc : float array;  (** each processor's last-step time *)
  msg_times : (Triple.t * float * float) list;  (** (triple, sent, received), in order *)
}

val evaluate :
  ?step_cost:float ->
  seed:int ->
  model:delay_model ->
  n:int ->
  'msg Trace.t ->
  timing
(** Assign a delay to every message of the trace (seeded), then
    propagate times through the trace's event order: each event of a
    processor starts when the processor is free and (for receipts) the
    message has arrived.  [step_cost] (default 1.0) is the local
    processing time per step; delays default to the model.

    The trace's own event order is respected, so the result is the
    latency of *this* schedule under the drawn delays. *)

val critical_path_bound : 'msg Trace.t -> int
(** Height of the trace's communication pattern — the number of
    messages on the longest causal chain, a delay-independent lower
    bound on the number of sequential network hops. *)

val decision_times : ?step_cost:float -> seed:int -> model:delay_model -> n:int ->
  'msg Trace.t -> (Proc_id.t * float) list
(** Time at which each decision event occurs under the same semantics. *)
