open Patterns_sim

type relationship =
  | Equal
  | Left_subscheme
  | Right_subscheme
  | Incomparable of { only_left : Pattern.t; only_right : Pattern.t }

let compare_schemes left right =
  let l_in_r = Pattern.Set.subset left right in
  let r_in_l = Pattern.Set.subset right left in
  match (l_in_r, r_in_l) with
  | true, true -> Equal
  | true, false -> Left_subscheme
  | false, true -> Right_subscheme
  | false, false ->
    Incomparable
      {
        only_left = Pattern.Set.min_elt (Pattern.Set.diff left right);
        only_right = Pattern.Set.min_elt (Pattern.Set.diff right left);
      }

let compare_protocols ?max_configs ~n (module A : Protocol.S) (module B : Protocol.S) =
  let module SA = Scheme.Make (A) in
  let module SB = Scheme.Make (B) in
  let left, _ = SA.scheme ?max_configs ~n () in
  let right, _ = SB.scheme ?max_configs ~n () in
  (compare_schemes left right, left, right)

let pp_relationship ppf = function
  | Equal -> Format.pp_print_string ppf "equal schemes"
  | Left_subscheme -> Format.pp_print_string ppf "left scheme strictly contained in right"
  | Right_subscheme -> Format.pp_print_string ppf "right scheme strictly contained in left"
  | Incomparable { only_left; only_right } ->
    Format.fprintf ppf
      "incomparable schemes@,  a pattern only the left realizes: %d msgs@,  a pattern only the right realizes: %d msgs"
      (Pattern.message_count only_left) (Pattern.message_count only_right)
