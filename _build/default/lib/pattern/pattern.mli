(** Communication patterns.

    The communication pattern of an execution [I] is the smallest
    irreflexive transitive relation [<_I] on the message triples of
    [I] such that (1) messages with the same sender are ordered by
    sending time and (2) a message received before another is sent
    precedes it (Section 3 of the paper).  Patterns are the unit of
    comparison for schemes and reducibility.

    Triples are globally named [(p, q, k)], so pattern equality is
    plain structural equality of labeled posets — no isomorphism
    search. *)

open Patterns_sim

type t

val make : Triple.t list -> (Triple.t * Triple.t) list -> t
(** [make triples direct_pairs] closes [direct_pairs] transitively.
    @raise Invalid_argument on cyclic input or pairs over unknown
    triples. *)

val of_trace : 'msg Trace.t -> t
(** Extract the pattern of a trace from its [Sent] events (failure
    notices never appear in patterns). *)

val empty : t

val messages : t -> Triple.t list
(** Sorted. *)

val message_count : t -> int

val lt : t -> Triple.t -> Triple.t -> bool
(** The closed [<_I] relation. *)

val concurrent : t -> Triple.t -> Triple.t -> bool
(** Distinct and incomparable. *)

val covers : t -> (Triple.t * Triple.t) list
(** Hasse covers of the order, sorted. *)

val all_pairs : t -> (Triple.t * Triple.t) list
(** Every ordered pair of the closure, sorted. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val is_prefix_consistent : t -> t -> bool
(** [is_prefix_consistent a b]: [a]'s messages are a subset of [b]'s
    and the two orders agree on [a]'s messages.  Holds of any
    execution prefix against its extension. *)

val width : t -> int
(** Maximum number of pairwise-concurrent messages. *)

val height : t -> int
(** Longest causal chain length. *)

val delivery_orders : t -> Triple.t list list
(** All linear extensions: the sequential send orders consistent with
    the pattern. *)

val messages_of_proc : t -> Proc_id.t -> Triple.t list
(** Messages sent by the given processor, in sending order. *)

val received_none : t -> n:int -> Proc_id.t list
(** Processors that receive no message in the pattern (used by the
    Theorem 8 argument: such a processor cannot know any input but its
    own). *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
(** Sets of patterns; a protocol's scheme is such a set. *)
