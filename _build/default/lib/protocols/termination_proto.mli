(** The Appendix termination protocol, run standalone.

    Each processor starts directly in the termination protocol with a
    bias derived from its input (committable iff 1).  After [N]
    rounds of bias exchange every operational processor commits iff a
    committable bias reached it — failure-free this computes
    threshold-1 consensus, and it is the measurement vehicle for
    Theorem 7: each processor takes O(N^2) steps ([N] rounds of [N-1]
    sends and receives). *)

open Patterns_sim

val default : (module Protocol.S)
