(** The Figure 3 chain protocol (WT-IC).

    Every [p_i] (i >= 1) sends its input to [p0]; [p0] tallies,
    decides, and sends its decision to [p1]; each [p_i] decides and
    forwards the decision to [p_(i+1)]; [p_(N-1)] simply decides.
    Nobody halts (weak termination: deciders keep listening).

    On a detected failure a processor joins the Appendix termination
    protocol, with a committable bias iff it has already decided
    commit — deciders stay up and participate, which preserves
    interactive consistency; total consistency is *not* guaranteed
    (a decided processor may fail while the survivors know nothing).

    Its single failure-free communication pattern — a star into [p0]
    followed by a decision chain — cannot be realized by any ST-IC
    protocol (Theorem 13); [fig3_amnesic] is the amnesic variant used
    to exhibit the inconsistency. *)

open Patterns_sim

val make : ?amnesic:bool -> rule:Decision_rule.t -> name:string -> unit -> (module Protocol.S)

val fig3 : (module Protocol.S)
(** The paper's instance: unanimity, 4 processors or more. *)

val fig3_amnesic : (module Protocol.S)
(** Deciders forget immediately (strong termination attempt); used to
    replay the Theorem 13 scenarios that show WT-IC < ST-IC. *)
