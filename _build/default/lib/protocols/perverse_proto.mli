(** The Figure 4 "perverse" protocol (WT-TC, not ST-TC).

    A 4-processor WT-TC protocol with exactly four failure-free
    communication patterns.  The solid core is a sound two-phase
    commitment: votes to [p0], bias broadcast, acknowledgements,
    decision broadcast (so the bias is shared before anybody decides —
    Corollary 6 holds).  After deciding, a gadget of pointless
    messages runs:

    - [p1] sends [Ga] to [p0] and [Gc] to [p2];
    - [p3] sends [Gb] to [p0] and [G4] to [p2];
    - [p0], once it holds both [Ga] and [Gb], sends the dashed [M1]
      to [p3] iff [Ga] was delivered first, then the solid [Go] to
      [p2];
    - [p2], once it holds its decision, [Go], [Gc] and [G4], sends
      the dashed [M2] to [p0] iff [Gc] beat [G4];
    - [p0], on receiving [M2], sends the dashed [M3] to [p1] iff it
      sent [M1].

    The dashed messages serve no purpose, yet no ST-TC protocol can
    realize this scheme: [p0] must eventually forget, and once amnesic
    it cannot make [M3] depend on whether [M1] was sent (Theorem 13).
    [fig4_amnesic] implements that doomed attempt — [p0] erases the
    [M1] flag when it starts waiting for [M2] — and its enumerated
    scheme visibly differs.

    In the paper's labels: [Ga]/[Gb] are the raced pair called [m_a]
    and its partner, [Gc]/[G4] are [m_c]/[m_4], and [M1]/[M2]/[M3] are
    the dashed [m_1]/[m_2]/[m_3].  (The original figure drawing is not
    in the text; this is a faithful reconstruction of its prose
    description — see DESIGN.md.) *)

open Patterns_sim

val fig4 : (module Protocol.S)
(** The WT-TC protocol with the four-pattern scheme.  [n = 4] only. *)

val fig4_amnesic : (module Protocol.S)
(** The ST attempt: [p0] genuinely erases the [M1] flag before
    waiting for [M2] (and never sends [M3]); participants become
    amnesic when their role ends.  Enumerating its scheme shows it
    cannot reproduce [fig4]'s. *)
