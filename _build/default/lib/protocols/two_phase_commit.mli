(** Classic (blocking) two-phase commit, with cooperative termination.

    Participants vote to the coordinator [p0]; the coordinator
    *decides first* — commit iff every vote is yes and no failure was
    detected — then broadcasts the decision and halts.  Participants
    decide on receipt and keep listening (so they can serve the
    termination protocol of peers that detected failures).

    Because the coordinator decides before anyone shares its bias, the
    protocol violates Corollary 6: if the coordinator commits and
    fails before its decision messages are delivered, the survivors'
    termination run aborts while the dead coordinator committed — a
    total-consistency violation with many fewer messages than the
    Figure 1 / 3PC family needs to prevent it.  Interactive
    consistency still holds.  This is the paper's transaction-
    commitment motivation ([S82]) made executable. *)

open Patterns_sim

val make : rule:Decision_rule.t -> name:string -> (module Protocol.S)

val default : (module Protocol.S)
(** Unanimity instance, any [n >= 2]. *)
