(** The total-communication transformation (Section 3).

    A total-communication protocol appends to every outgoing message a
    copy of every message causally before it.  The paper uses the
    transformation to eliminate "E-bar" states — states a processor
    only enters when it knows its buffer is nonempty: the transformed
    processor holds indirectly-received copies in a priority queue
    ordered causally (here: by Lamport timestamp) and simulates
    processing each known message before it acts on anything newer, so
    the simulated processor never acts while knowingly behind.

    [Make (P)] wraps any protocol.  Its messages carry the full copy
    history; its communication patterns use the same triples as [P]'s
    and form a subset of [P]'s scheme (collapsing the delivery races
    [P] may have observed) — a property the test suite checks on the
    Figure 4 protocol, whose four patterns collapse. *)

open Patterns_sim

module Make (P : Protocol.S) : Protocol.S

val transform : (module Protocol.S) -> (module Protocol.S)
(** First-class-module convenience wrapper around [Make]. *)
