(** The Figure 1 tree protocol (WT-TC).

    Phase 1: inputs flow leaf-to-root, each node forwarding the AND of
    its subtree; the root fixes the bias and floods it rootward-down,
    skipping leaves that reported 0 (they can deduce the bias alone).
    Phase 2 (committable bias only): acknowledgements flow back to the
    root, which then floods the commit decision.  A noncommittable
    bias aborts immediately and omits phase 2.

    On any detected failure (or termination message) a processor joins
    the Appendix termination protocol with its current bias —
    committable iff it has learned a committable bias.

    Instances: the paper's 7-processor binary tree ([fig1]); its
    amnesic ST-TC variant per Corollary 11 ([fig1_amnesic]); the star
    topology, which is exactly three-phase commit
    ([three_phase_commit]); and arbitrary trees ([make]). *)

open Patterns_sim

val make : ?amnesic:bool -> name:string -> describe:string -> Tree.t -> (module Protocol.S)
(** Tree protocol over an arbitrary rooted tree.  [amnesic] selects
    the strong-termination variant (processors forget their decision
    immediately after deciding, and announce amnesia during
    termination runs). *)

val fig1 : (module Protocol.S)
(** The paper's Figure 1: 7 processors on a complete binary tree.
    (The paper's [p1..p7] are [p0..p6] here; its [p4] — the 0-input
    leaf that halts after one send — is our [p3]; its [p6] is our
    [p5].) *)

val fig1_amnesic : (module Protocol.S)
(** Corollary 11's ST-TC protocol: Figure 1 with
    amnesia-immediately-after-decision. *)

val three_phase_commit : int -> (module Protocol.S)
(** Star topology on [n] processors: vote / precommit (bias) /
    acknowledge / commit — nonblocking commitment in the style of
    Skeen's 3PC. *)
