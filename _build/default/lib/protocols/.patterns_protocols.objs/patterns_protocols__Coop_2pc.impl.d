lib/protocols/coop_2pc.ml: Bool Decision Decision_rule Format Incoming Int List Outbox Patterns_sim Printf Proc_id Protocol Status Step_kind Vote_collect
