lib/protocols/total_comm.ml: Format Incoming Int List Patterns_sim Proc_id Protocol Stdlib Step_kind
