lib/protocols/commit_glue.ml: Decision Format Incoming Int List Option Patterns_sim Proc_id Status Step_kind Termination_core
