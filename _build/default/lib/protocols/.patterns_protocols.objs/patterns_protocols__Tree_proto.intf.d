lib/protocols/tree_proto.mli: Patterns_sim Protocol Tree
