lib/protocols/termination_core.ml: Decision Format Int List Option Patterns_sim Proc_id Step_kind
