lib/protocols/tree.ml: Array Format List Patterns_sim Patterns_stdx Proc_id
