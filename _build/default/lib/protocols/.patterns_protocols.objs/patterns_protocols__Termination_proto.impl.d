lib/protocols/termination_proto.ml: Incoming Patterns_sim Proc_id Protocol Status Termination_core
