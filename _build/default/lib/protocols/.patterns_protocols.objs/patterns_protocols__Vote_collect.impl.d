lib/protocols/vote_collect.ml: Array Bool Decision Decision_rule Format List Patterns_sim Proc_id Stdlib
