lib/protocols/decision_rule.mli: Decision Format Patterns_sim Proc_id
