lib/protocols/tree.mli: Format Patterns_sim Proc_id
