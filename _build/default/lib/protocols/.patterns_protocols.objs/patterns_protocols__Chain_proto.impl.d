lib/protocols/chain_proto.ml: Array Bool Commit_glue Decision Decision_rule Format List Outbox Patterns_sim Printf Proc_id Protocol Status Stdlib Step_kind Termination_core
