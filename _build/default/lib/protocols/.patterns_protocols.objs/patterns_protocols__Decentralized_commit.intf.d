lib/protocols/decentralized_commit.mli: Decision_rule Patterns_sim Protocol
