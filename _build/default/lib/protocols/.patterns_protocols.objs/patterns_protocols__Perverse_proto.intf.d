lib/protocols/perverse_proto.mli: Patterns_sim Protocol
