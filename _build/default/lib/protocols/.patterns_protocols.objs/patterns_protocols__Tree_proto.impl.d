lib/protocols/tree_proto.ml: Bool Commit_glue Decision Format Int List Option Outbox Patterns_sim Printf Proc_id Protocol Status Stdlib Step_kind Termination_core Tree
