lib/protocols/registry.mli: Patterns_sim Protocol
