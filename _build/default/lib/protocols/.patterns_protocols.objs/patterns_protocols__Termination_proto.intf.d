lib/protocols/termination_proto.mli: Patterns_sim Protocol
