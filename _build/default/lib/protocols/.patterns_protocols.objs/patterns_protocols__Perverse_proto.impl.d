lib/protocols/perverse_proto.ml: Bool Commit_glue Decision Decision_rule Format Int Option Outbox Patterns_sim Proc_id Protocol Status Stdlib Step_kind Termination_core Vote_collect
