lib/protocols/decision_rule.ml: Array Decision Format Fun List Patterns_sim Printf Proc_id String
