lib/protocols/voting_tree.mli: Decision_rule Patterns_sim Proc_id Protocol Tree
