lib/protocols/chain_proto.mli: Decision_rule Patterns_sim Protocol
