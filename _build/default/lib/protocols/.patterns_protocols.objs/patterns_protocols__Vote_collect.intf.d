lib/protocols/vote_collect.mli: Decision Decision_rule Format Patterns_sim Proc_id
