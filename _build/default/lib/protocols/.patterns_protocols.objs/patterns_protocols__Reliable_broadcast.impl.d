lib/protocols/reliable_broadcast.ml: Bool Commit_glue Decision Format List Outbox Patterns_sim Proc_id Protocol Status Step_kind Termination_core
