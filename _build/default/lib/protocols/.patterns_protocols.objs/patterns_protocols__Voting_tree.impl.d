lib/protocols/voting_tree.ml: Array Bool Commit_glue Decision Decision_rule Format Int List Option Outbox Patterns_sim Printf Proc_id Protocol Status Stdlib Step_kind String Termination_core Tree
