lib/protocols/coop_2pc.mli: Decision_rule Patterns_sim Protocol
