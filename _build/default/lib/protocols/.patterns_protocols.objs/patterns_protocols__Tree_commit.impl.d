lib/protocols/tree_commit.ml: Bool Commit_glue Decision Format Option Outbox Patterns_sim Printf Proc_id Protocol Status Step_kind Termination_core Tree
