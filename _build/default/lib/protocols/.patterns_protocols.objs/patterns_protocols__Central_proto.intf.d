lib/protocols/central_proto.mli: Decision_rule Patterns_sim Protocol
