lib/protocols/two_phase_commit.mli: Decision_rule Patterns_sim Protocol
