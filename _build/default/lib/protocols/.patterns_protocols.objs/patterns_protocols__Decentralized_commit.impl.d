lib/protocols/decentralized_commit.ml: Bool Commit_glue Decision Decision_rule Format Outbox Patterns_sim Printf Proc_id Protocol Status Step_kind Termination_core Vote_collect
