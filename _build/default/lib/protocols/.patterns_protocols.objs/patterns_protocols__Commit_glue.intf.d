lib/protocols/commit_glue.mli: Decision Format Patterns_sim Proc_id Protocol Status Step_kind Termination_core
