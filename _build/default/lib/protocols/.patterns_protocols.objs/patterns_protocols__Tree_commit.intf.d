lib/protocols/tree_commit.mli: Patterns_sim Protocol Tree
