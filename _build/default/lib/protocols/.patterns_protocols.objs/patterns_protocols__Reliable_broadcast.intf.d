lib/protocols/reliable_broadcast.mli: Patterns_sim Protocol
