lib/protocols/termination_core.mli: Decision Format Patterns_sim Proc_id Step_kind
