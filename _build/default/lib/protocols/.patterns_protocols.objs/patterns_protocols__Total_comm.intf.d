lib/protocols/total_comm.mli: Patterns_sim Protocol
