(** Two-phase commit with cooperative termination ([S81]).

    The historically deployed termination strategy: a participant that
    detects the coordinator's failure while in its uncertain window
    (voted yes, no decision yet) asks the other participants; anyone
    who knows the decision replies with it; if every operational peer
    is equally uncertain, the participant *blocks* — it never decides.

    This sits outside the paper's six problems: blocking preserves
    both interactive and total consistency (nobody ever guesses) at
    the price of weak termination itself — the live processors may
    never decide.  The classification table shows IC and TC holding
    with WT violated: the real-world 2PC trade-off the Appendix
    protocol (and 3PC) exists to avoid. *)

open Patterns_sim

val make : rule:Decision_rule.t -> name:string -> (module Protocol.S)

val default : (module Protocol.S)
