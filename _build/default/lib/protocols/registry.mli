(** Name-indexed catalogue of all built-in protocols, for the CLI,
    examples and benches. *)

open Patterns_sim

type entry = {
  name : string;
  describe : string;
  default_n : int;  (** a size the protocol supports *)
  fixed_n : bool;  (** whether only [default_n] is supported *)
  protocol : (module Protocol.S);
}

val all : entry list
(** Sorted by name. *)

val find : string -> entry option

val names : unit -> string list
