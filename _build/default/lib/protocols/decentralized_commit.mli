(** Decentralized commitment ([S82]'s decentralized 2PC).

    Every processor broadcasts its vote to every other; each decides
    independently once it holds the full vote vector (commit iff the
    rule permits).  No coordinator, one message delay, O(N^2)
    messages.  Deciders keep listening (weak termination) and join the
    Appendix termination protocol when a failure is detected.

    Like the chain protocol this is WT-IC but not WT-TC: a processor
    can decide commit and fail while some peer is still missing a vote
    from another failed processor, and the survivors' termination run
    aborts. *)

open Patterns_sim

val make : rule:Decision_rule.t -> name:string -> (module Protocol.S)

val default : (module Protocol.S)
(** Unanimity instance. *)
