(** Rule-parametric voting tree (WT-TC for any decision rule).

    The Figure 1 protocol aggregates the AND of the inputs, which only
    supports unanimity.  This variant aggregates *tallies* — how many
    of the subtree's processors voted 1 — so the root can apply any of
    Section 2's decision rules: unanimity, threshold-k, or set(S, v)
    (the broadcast rule is the degenerate set {p}).  The two-phase
    structure (bias down, acknowledgements up, decision down) and the
    termination-protocol fallback are those of Figure 1, so the
    protocol remains WT-TC.

    With [Threshold k] the "no message to a 0-leaf" optimization is
    unavailable (a 0 vote no longer determines the bias), so every
    leaf always receives the bias. *)

open Patterns_sim

val make : rule:Decision_rule.t -> name:string -> Tree.t -> (module Protocol.S)

val threshold_star : k:int -> int -> (module Protocol.S)
(** Star topology on [n] processors deciding by threshold-[k]. *)

val subset_star : quorum:Proc_id.t list -> int -> (module Protocol.S)
(** Star topology deciding by set(S, 1) over the given quorum. *)
