(** Fail-stop reliable broadcast ([SGS]; the Byzantine Generals
    problem of [PSL] restricted to fail-stop processors).

    The distinguished general [p0] broadcasts its input bit; each
    lieutenant relays the first value it receives to all other
    lieutenants (so a value that reaches anybody reaches everybody,
    even if [p0] dies mid-broadcast), decides on it, and keeps
    listening.  A lieutenant that detects a failure while still
    waiting joins the Appendix termination protocol with a bias that
    is committable iff it holds the value 1; if nobody operational
    ever received the general's value, the run decides the default 0
    — the weak variant of the Broadcast decision rule. *)

open Patterns_sim

val make : name:string -> (module Protocol.S)

val default : (module Protocol.S)
