open Patterns_sim

type t = { parents : Proc_id.t option array; child_map : Proc_id.t list array; root : Proc_id.t }

let of_parents parents =
  let n = Array.length parents in
  if n = 0 then invalid_arg "Tree.of_parents: empty tree";
  let roots = ref [] in
  Array.iteri (fun i p -> if p = None then roots := i :: !roots) parents;
  let root =
    match !roots with
    | [ r ] -> r
    | _ -> invalid_arg "Tree.of_parents: exactly one root required"
  in
  let child_map = Array.make n [] in
  Array.iteri
    (fun i p ->
      match p with
      | None -> ()
      | Some q ->
        if q < 0 || q >= n || q = i then invalid_arg "Tree.of_parents: bad parent index";
        child_map.(q) <- i :: child_map.(q))
    parents;
  Array.iteri (fun i cs -> child_map.(i) <- List.sort Proc_id.compare cs) child_map;
  (* reject cycles: every node must reach the root *)
  Array.iteri
    (fun i _ ->
      let rec climb j steps =
        if steps > n then invalid_arg "Tree.of_parents: cycle detected"
        else match parents.(j) with None -> () | Some q -> climb q (steps + 1)
      in
      climb i 0)
    parents;
  { parents; child_map; root }

let size t = Array.length t.parents
let root t = t.root
let parent t p = t.parents.(p)
let children t p = t.child_map.(p)
let is_leaf t p = t.child_map.(p) = []

let depth t =
  let rec node_depth p = match t.parents.(p) with None -> 0 | Some q -> 1 + node_depth q in
  Array.to_list (Array.mapi (fun i _ -> node_depth i) t.parents)
  |> List.fold_left max 0

let binary n =
  of_parents (Array.init n (fun i -> if i = 0 then None else Some ((i - 1) / 2)))

let star n = of_parents (Array.init n (fun i -> if i = 0 then None else Some 0))

let path n = of_parents (Array.init n (fun i -> if i = 0 then None else Some (i - 1)))

let random ~seed n =
  let prng = Patterns_stdx.Prng.create ~seed in
  of_parents
    (Array.init n (fun i ->
         if i = 0 then None else Some (Patterns_stdx.Prng.int prng ~bound:i)))

let pp ppf t =
  Format.fprintf ppf "tree(root=%a" Proc_id.pp t.root;
  Array.iteri
    (fun i cs ->
      if cs <> [] then
        Format.fprintf ppf ", %a->{%a}" Proc_id.pp i
          (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Proc_id.pp)
          cs)
    t.child_map;
  Format.fprintf ppf ")"
