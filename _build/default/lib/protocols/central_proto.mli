(** The Figure 2 centralized protocol (HT-IC).

    [p0] collects every input (substituting "abort" if it detects a
    failure while collecting), broadcasts its decision, decides and
    halts.  Each participant sends its input to [p0], waits for a
    decision message (from [p0] or any rebroadcasting peer),
    rebroadcasts it to the other participants, decides and halts.  A
    participant that detects a failure while waiting joins the
    "modified" termination protocol of the figure: decision messages
    received during termination remove their sender from the UP set
    (the sender halts) and are classified committable /
    noncommittable.

    The protocol halts but only guarantees interactive consistency:
    [p0] decides before the nonfaulty processors share its bias, so by
    Corollary 6 it cannot establish total consistency (the violating
    schedule is exercised in the Theorem 8 reproduction). *)

open Patterns_sim

val make : rule:Decision_rule.t -> name:string -> (module Protocol.S)
(** Centralized protocol deciding by an arbitrary decision rule. *)

val fig2 : (module Protocol.S)
(** The paper's instance: unanimity. *)
