(** Tree-of-processes two-phase commit ([ML], Mohan & Lindsay).

    Votes aggregate leaf-to-root (each subtree reports the AND of its
    inputs, with a detected failure reported as a 0); the root decides
    and the decision floods back down.  One up-sweep and one
    down-sweep — half the phases of the Figure 1 tree protocol, and
    accordingly only WT-IC: the root (and every interior node) decides
    before the rest of the tree shares its bias, so a well-timed crash
    leaves a committed ancestor dead while the survivors' termination
    run aborts.  The executable counterpart of the paper's remark that
    commitment systems in practice ([DS], [Gr], [ML]) trade total
    consistency for messages. *)

open Patterns_sim

val make : name:string -> Tree.t -> (module Protocol.S)

val binary7 : (module Protocol.S)
(** On the Figure 1 tree shape, for side-by-side comparison. *)

val star : int -> (module Protocol.S)
(** Equivalent to flat 2PC with listening participants. *)
