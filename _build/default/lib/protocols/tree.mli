(** Rooted tree topologies for the Figure 1 protocol family.

    Figure 1's protocol runs on any rooted tree over the processors;
    the paper's instance is a 7-processor complete binary tree.  The
    star instance is exactly three-phase commit with a central
    coordinator. *)

open Patterns_sim

type t

val of_parents : Proc_id.t option array -> t
(** [of_parents parents]: [parents.(i)] is [i]'s parent, [None] for
    the root.  @raise Invalid_argument unless the array describes a
    single rooted tree. *)

val size : t -> int
val root : t -> Proc_id.t
val parent : t -> Proc_id.t -> Proc_id.t option
val children : t -> Proc_id.t -> Proc_id.t list
(** Ascending. *)

val is_leaf : t -> Proc_id.t -> bool
val depth : t -> int
(** Number of edges on the longest root-to-leaf path. *)

val binary : int -> t
(** Complete binary tree on [n] nodes in heap layout: node [i] has
    children [2i+1], [2i+2].  [binary 7] is the paper's Figure 1
    shape (the paper's [p1..p7] are our [p0..p6]). *)

val star : int -> t
(** Root [p0] with [n-1] leaf children — the three-phase-commit
    topology. *)

val path : int -> t
(** A chain [p0 - p1 - ... - p(n-1)] rooted at [p0]. *)

val random : seed:int -> int -> t
(** A uniformly random recursive tree on [n] nodes rooted at [p0]
    (node [i]'s parent drawn among [0..i-1]). *)

val pp : Format.formatter -> t -> unit
