open Patterns_sim
open Patterns_pattern
open Patterns_protocols

type evidence = {
  id : string;
  claim : string;
  holds : bool;
  facts : (string * bool) list;
  details : string list;
}

let pp_evidence ppf e =
  Format.fprintf ppf "@[<v>[%s] %s@,verdict: %s@," e.id e.claim
    (if e.holds then "REPRODUCED" else "FAILED");
  List.iter (fun (name, ok) -> Format.fprintf ppf "  %-50s %s@," name (if ok then "yes" else "NO")) e.facts;
  List.iter (fun d -> Format.fprintf ppf "  note: %s@," d) e.details;
  Format.fprintf ppf "@]"

let make_evidence ~id ~claim ?(details = []) facts =
  { id; claim; holds = List.for_all snd facts; facts; details }

(* ------------------------------------------------------------------ *)
(* Theorem 8, forward direction: HT-IC does not reduce to WT-TC.      *)
(* ------------------------------------------------------------------ *)

let theorem8_forward () =
  let (module P) = Tree_proto.fig1 in
  let module E = Engine.Make (P) in
  let module S = Scheme.Make (P) in
  (* our p3 is the paper's p4 (the 0-input leaf under the paper's p2);
     our p5 is the paper's p6 *)
  let inputs_sc1 = [ true; true; true; false; true; true; true ] in
  let patterns, _ = S.patterns_for_inputs ~n:7 ~inputs:inputs_sc1 () in
  let lone_abort_pattern p =
    List.length (Pattern.messages_of_proc p 3) = 1
    && List.mem 3 (Pattern.received_none p ~n:7)
  in
  let pattern_found = Pattern.Set.exists lone_abort_pattern patterns in
  (* the two scenarios: everybody but p3 and p5 fails before the
     paper's p3 (our p2) sends anything to p5 in phase 1 *)
  let scenario inputs =
    let c = E.init ~n:7 ~inputs in
    let directives =
      [ E.Step_of 3; E.Step_of 4; E.Step_of 5; E.Step_of 6 ]
      @ List.map (fun p -> E.Fail_now p) [ 0; 1; 2; 4; 6 ]
      @ List.concat_map (fun q -> [ E.Deliver_note (5, q); E.Drain 5 ]) [ 0; 1; 2; 4; 6 ]
    in
    E.play c directives
  in
  match (scenario inputs_sc1, scenario [ true; true; true; true; true; true; true ]) with
  | Ok (c1, _), Ok (c2, _) ->
    let states_equal = P.compare_state (E.state_of c1 5) (E.state_of c2 5) = 0 in
    make_evidence ~id:"thm8-forward" ~claim:"HT-IC does not reduce to WT-TC"
      ~details:
        [
          "in scenario 1 the 0-input leaf must halt in abort; in scenario 2 an HT \
           protocol would have it halt in commit; p5 cannot distinguish the two";
        ]
      [
        ("fig1 scheme contains the lone-abort pattern", pattern_found);
        ("p5's local state identical in scenarios 1 and 2", states_equal);
      ]
  | Error e, _ | _, Error e ->
    make_evidence ~id:"thm8-forward" ~claim:"HT-IC does not reduce to WT-TC"
      ~details:[ "replay failed: " ^ e ]
      [ ("replays executed", false) ]

(* ------------------------------------------------------------------ *)
(* Theorem 8, converse: WT-TC does not reduce to HT-IC.               *)
(* ------------------------------------------------------------------ *)

let theorem8_converse () =
  let (module P) = Central_proto.fig2 in
  let module E = Engine.Make (P) in
  let c = E.init ~n:4 ~inputs:[ true; true; true; true ] in
  let votes =
    [ E.Step_of 1; E.Step_of 2; E.Step_of 3;
      E.Deliver_from (0, 1); E.Deliver_from (0, 2); E.Deliver_from (0, 3);
      E.Drain 0 (* decision broadcast; p0 decides commit and halts *) ]
  in
  let crash_and_terminate =
    [ E.Fail_now 0;
      E.Deliver_note (1, 0); E.Drain 1;
      E.Deliver_note (2, 0); E.Drain 2;
      E.Deliver_note (3, 0); E.Drain 3 ]
  in
  let exchange_round =
    List.concat_map
      (fun p ->
        List.filter_map (fun q -> if q <> p then Some (E.Deliver_from (p, q)) else None) [ 1; 2; 3 ])
      [ 1; 2; 3 ]
    @ [ E.Drain 1; E.Drain 2; E.Drain 3 ]
  in
  let rounds = List.concat (List.init 4 (fun _ -> exchange_round)) in
  match E.play c (votes @ crash_and_terminate @ rounds) with
  | Error e ->
    make_evidence ~id:"thm8-converse" ~claim:"WT-TC does not reduce to HT-IC"
      ~details:[ "replay failed: " ^ e ]
      [ ("replay executed", false) ]
  | Ok (final, trace) ->
    let coordinator_committed =
      List.mem (0, Decision.Commit) (Trace.decisions trace)
    in
    let survivors_aborted =
      List.for_all
        (fun p -> List.mem (p, Decision.Abort) (Trace.decisions trace))
        [ 1; 2; 3 ]
    in
    let tc_violated = Result.is_error (Check.total_consistency trace) in
    let ic_holds = Result.is_ok (Check.interactive_consistency trace) in
    ignore final;
    make_evidence ~id:"thm8-converse" ~claim:"WT-TC does not reduce to HT-IC"
      ~details:
        [
          "Figure 2's coordinator decides before anyone shares its bias (Corollary 6 \
           violated); delaying its decision messages past the survivors' termination \
           run realizes the inconsistency";
        ]
      [
        ("halted coordinator decided commit", coordinator_committed);
        ("all survivors decided abort", survivors_aborted);
        ("total consistency violated", tc_violated);
        ("interactive consistency maintained", ic_holds);
      ]

(* ------------------------------------------------------------------ *)
(* Theorem 13 for IC: WT-IC < ST-IC.                                  *)
(* ------------------------------------------------------------------ *)

type chain_outcome = {
  decisions1 : (Proc_id.t * Decision.t) list;
  decisions2 : (Proc_id.t * Decision.t) list;
  agreement1 : Check.verdict;
  p2_states_equal : bool;
}

(* run the Theorem 13 schedule twice (all-ones inputs, then with p1's
   input 0) inside one unpacking so the two p2 states can be compared *)
let chain_scenarios (module P : Protocol.S) =
  let module E = Engine.Make (P) in
  let scenario inputs =
    let c = E.init ~n:4 ~inputs in
    let directives =
      [ E.Step_of 1; E.Step_of 2; E.Step_of 3;
        E.Deliver_from (0, 1); E.Deliver_from (0, 2); E.Deliver_from (0, 3);
        E.Drain 0 (* forward the decision to p1, then forget (ST variant) *);
        E.Fail_now 1; E.Fail_now 3;
        E.Deliver_note (2, 1); E.Drain 2; E.Deliver_note (2, 3);
        (* p0 joins the termination run (announcing amnesia in the ST
           variant, after which it is quiescent) *)
        E.Deliver_note (0, 1); E.Drain 0;
        E.Deliver_from (2, 0); E.Drain 2; E.Flush_fifo ]
    in
    E.play c directives
  in
  match (scenario [ true; true; true; true ], scenario [ true; false; true; true ]) with
  | Ok (c1, trace1), Ok (c2, trace2) ->
    Ok
      {
        decisions1 = Trace.decisions trace1;
        decisions2 = Trace.decisions trace2;
        agreement1 = Check.nonfaulty_agreement trace1;
        p2_states_equal = P.compare_state (E.state_of c1 2) (E.state_of c2 2) = 0;
      }
  | Error e, _ | _, Error e -> Error e

let theorem13_ic () =
  let claim = "WT-IC is strictly weaker than ST-IC" in
  match (chain_scenarios Chain_proto.fig3_amnesic, chain_scenarios Chain_proto.fig3) with
  | Ok st, Ok plain ->
    let p0_committed = List.mem (0, Decision.Commit) st.decisions1 in
    let p2_aborted = List.mem (2, Decision.Abort) st.decisions1 in
    let disagreement = Result.is_error st.agreement1 in
    let p2_indistinguishable = st.p2_states_equal in
    let sc2_consistent =
      List.for_all (fun (_, d) -> Decision.equal d Decision.Abort) st.decisions2
    in
    let plain_consistent =
      Result.is_ok plain.agreement1 && List.mem (2, Decision.Commit) plain.decisions1
    in
    make_evidence ~id:"thm13-ic" ~claim
      ~details:
        [
          "amnesic chain: p0 commits and forgets; p1, p3 fail before the decision \
           reaches p2; the amnesia announcement leaves p2 no way to learn the value";
        ]
      [
        ("scenario 1: p0 (nonfaulty) decided commit", p0_committed);
        ("scenario 1: p2 (nonfaulty) decided abort", p2_aborted);
        ("nonfaulty deciders disagree", disagreement);
        ("p2's state identical in scenarios 1 and 2", p2_indistinguishable);
        ("scenario 2 (a 0 input) aborts consistently", sc2_consistent);
        ("non-amnesic chain stays consistent on the same schedule", plain_consistent);
      ]
  | Error e, _ | _, Error e ->
    make_evidence ~id:"thm13-ic" ~claim ~details:[ "replay failed: " ^ e ]
      [ ("replays executed", false) ]

(* ------------------------------------------------------------------ *)
(* Theorem 13 for TC: WT-TC < ST-TC.                                  *)
(* ------------------------------------------------------------------ *)

(* drive the Figure 4 protocol to the point just after p0 resolves the
   Ga/Gb race, in both race outcomes, and report whether p0's two
   local states are distinguishable *)
let perverse_race_states_equal (module P : Protocol.S) =
  let module E = Engine.Make (P) in
  let to_race ~a_first =
    let c = E.init ~n:4 ~inputs:[ true; true; true; true ] in
    let race =
      if a_first then [ E.Deliver_from (0, 1); E.Deliver_from (0, 3) ]
      else [ E.Deliver_from (0, 3); E.Deliver_from (0, 1) ]
    in
    let directives =
      [ E.Step_of 1; E.Step_of 2; E.Step_of 3;
        E.Deliver_from (0, 1); E.Deliver_from (0, 2); E.Deliver_from (0, 3);
        E.Drain 0 (* bias broadcast *);
        E.Deliver_from (1, 0); E.Drain 1;
        E.Deliver_from (2, 0); E.Drain 2;
        E.Deliver_from (3, 0); E.Drain 3;
        E.Deliver_from (0, 1); E.Deliver_from (0, 2); E.Deliver_from (0, 3);
        E.Drain 0 (* decision broadcast *);
        E.Deliver_from (1, 0); E.Drain 1 (* p1 decides; sends Ga, Gc *);
        E.Deliver_from (3, 0); E.Drain 3 (* p3 decides; sends Gb, G4 *) ]
      @ race
      @ [ E.Drain 0 (* m1? and go *) ]
    in
    E.play c directives
  in
  match (to_race ~a_first:true, to_race ~a_first:false) with
  | Ok (c1, _), Ok (c2, _) -> Some (P.compare_state (E.state_of c1 0) (E.state_of c2 0) = 0)
  | _ -> None

let theorem13_tc () =
  let claim = "WT-TC is strictly weaker than ST-TC" in
  let scheme_of (module P : Protocol.S) =
    let module S = Scheme.Make (P) in
    fst (S.scheme ~n:4 ())
  in
  let base = scheme_of Perverse_proto.fig4 in
  let st = scheme_of Perverse_proto.fig4_amnesic in
  let sizes =
    Pattern.Set.elements base |> List.map Pattern.message_count |> List.sort Int.compare
  in
  let four_patterns = Pattern.Set.cardinal base = 4 && sizes = [ 17; 18; 18; 20 ] in
  let schemes_differ = not (Scheme.equal_schemes base st) in
  let st_cannot_realize = not (Scheme.subscheme base st) in
  let amnesic_equal = perverse_race_states_equal Perverse_proto.fig4_amnesic = Some true in
  let base_differ = perverse_race_states_equal Perverse_proto.fig4 = Some false in
  make_evidence ~id:"thm13-tc" ~claim
    ~details:
      [
        "fig4's four patterns: base (17 msgs), +m1 (18), +m2 (18), +m1+m2+m3 (20)";
        "after the race the amnesic p0 cannot remember whether m1 was sent, so no \
         deterministic ST protocol produces m3 exactly when m1 was sent";
      ]
    [
      ("fig4 scheme is exactly the four advertised patterns", four_patterns);
      ("amnesic variant's scheme differs", schemes_differ);
      ("amnesic variant cannot realize the base scheme", st_cannot_realize);
      ("amnesic p0's states identical across the race outcomes", amnesic_equal);
      ("non-amnesic p0's states differ across the race outcomes", base_differ);
    ]

(* ------------------------------------------------------------------ *)
(* Corollary 11: an ST-TC protocol exists (amnesic Figure 1).         *)
(* ------------------------------------------------------------------ *)

let corollary11 () =
  let claim = "the amnesic Figure 1 variant solves ST-TC (Corollary 11)" in
  let verdict =
    Classify.classify ~max_failures:0 ~rule:Decision_rule.Unanimity ~n:7 Tree_proto.fig1_amnesic
  in
  let audit =
    Audit.random_audit ~max_failures:2 ~rule:Decision_rule.Unanimity ~n:7 ~runs:150 ~seed:1984
      Tree_proto.fig1_amnesic
  in
  make_evidence ~id:"cor11" ~claim
    ~details:[ Format.asprintf "failure audit: %a" Audit.pp audit ]
    [
      ("failure-free exploration: total consistency", verdict.Classify.tc);
      ("failure-free exploration: strong termination", verdict.Classify.st);
      ("failure-free exploration: validity", verdict.Classify.validity_ok);
      ("randomized failure audit clean", Audit.clean audit);
    ]

(* ------------------------------------------------------------------ *)
(* Theorem 7: WT-TC within O(N^2) steps per processor.                *)
(* ------------------------------------------------------------------ *)

let theorem7 ?(sizes = [ 3; 4; 5; 6; 8; 10; 12; 16 ]) () =
  let (module P) = Termination_proto.default in
  let module E = Engine.Make (P) in
  let measurements =
    List.map
      (fun n ->
        let r =
          E.run ~scheduler:E.fifo_scheduler ~n ~inputs:(List.init n (fun _ -> true)) ()
        in
        let per_proc = Trace.steps_per_proc ~n r.E.trace in
        (n, float_of_int (Array.fold_left max 0 per_proc)))
      sizes
  in
  let points = List.map (fun (n, s) -> (float_of_int n, s)) measurements in
  let exponent, _c = Patterns_stdx.Stats.power_fit points in
  let quadratic = exponent > 1.5 && exponent < 2.5 in
  let all_decide =
    List.for_all
      (fun n ->
        let r =
          E.run ~scheduler:E.fifo_scheduler ~n ~inputs:(List.init n (fun i -> i = 0)) ()
        in
        r.E.quiescent && List.length (E.decisions_of r.E.final) = n)
      sizes
  in
  ( make_evidence ~id:"thm7" ~claim:"the termination protocol establishes WT-TC in O(N^2) steps per processor"
      ~details:[ Printf.sprintf "fitted steps/processor ~ N^%.2f" exponent ]
      [
        (Printf.sprintf "power-law exponent %.2f within [1.5, 2.5]" exponent, quadratic);
        ("every processor decides at every size", all_decide);
      ],
    measurements )

let appendix_anomaly ?(max_configs = 4_000_000) () =
  let (module P) = Termination_proto.default in
  let module X = Explore.Make (P) in
  let explore fifo_notices =
    let options =
      { (X.default_options ~n:3) with X.max_failures = 2; max_configs; fifo_notices }
    in
    X.explore ~options ~rule:(Decision_rule.Threshold 1) ~n:3 ()
  in
  let unordered = explore false in
  let fifo = explore true in
  let violation_found = unordered.X.tc_violation <> None in
  let fifo_clean = fifo.X.tc_violation = None && fifo.X.ic_violation = None in
  make_evidence ~id:"appendix-anomaly"
    ~claim:
      "reproduction finding: with unordered failure notices the standalone Appendix \
       protocol admits a 2-crash TC violation; fail-stop (FIFO) notice delivery removes it"
    ~details:
      [
        (match unordered.X.tc_violation with
        | Some m -> "unordered notices: " ^ m
        | None -> "unordered notices: no violation found");
        Printf.sprintf "fifo notices: %d configurations explored%s" fifo.X.configs_visited
          (if fifo.X.truncated then " (truncated)" else " (complete)");
      ]
    [
      ("2-crash violation exists under unordered notices", violation_found);
      ( (if fifo.X.truncated then "no violation within the explored scope under fifo notices"
         else "no violation under fifo notices (exhaustive)"),
        fifo_clean );
    ]

let all () =
  [
    theorem8_forward ();
    theorem8_converse ();
    theorem13_ic ();
    theorem13_tc ();
    corollary11 ();
    fst (theorem7 ());
  ]
