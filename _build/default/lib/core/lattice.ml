type relation = Strictly_below | Incomparable

type link = {
  a : Taxonomy.t;
  b : Taxonomy.t;
  relation : relation;
  source : string;
  witness : string list;
}

let p c t = Taxonomy.make c t

let links =
  Taxonomy.
    [
      (* consistency separations: T-IC < T-TC (Theorem 1 + Corollary 9) *)
      { a = p IC WT; b = p TC WT; relation = Strictly_below; source = "Thm 1 + Cor 9";
        witness = [ "thm8-forward"; "thm8-converse" ] };
      { a = p IC ST; b = p TC ST; relation = Strictly_below; source = "Thm 1 + Cor 9";
        witness = [ "thm8-forward"; "thm8-converse" ] };
      { a = p IC HT; b = p TC HT; relation = Strictly_below; source = "Thm 1 + Cor 9";
        witness = [ "thm8-forward"; "thm8-converse" ] };
      (* termination separations: WT < ST (Theorem 13) *)
      { a = p IC WT; b = p IC ST; relation = Strictly_below; source = "Thm 1 + Thm 13";
        witness = [ "thm13-ic" ] };
      { a = p TC WT; b = p TC ST; relation = Strictly_below; source = "Thm 1 + Thm 13";
        witness = [ "thm13-tc" ] };
      (* termination separations: ST < HT (Corollary 12) *)
      { a = p IC ST; b = p IC HT; relation = Strictly_below; source = "Thm 1 + Cor 12";
        witness = [ "thm8-forward"; "thm8-converse" ] };
      { a = p TC ST; b = p TC HT; relation = Strictly_below; source = "Thm 1 + Cor 12";
        witness = [ "thm8-forward"; "thm8-converse" ] };
      (* incomparabilities (Theorem 8, Corollary 11) *)
      { a = p IC HT; b = p TC WT; relation = Incomparable; source = "Thm 8";
        witness = [ "thm8-forward"; "thm8-converse" ] };
      { a = p IC HT; b = p TC ST; relation = Incomparable; source = "Cor 11";
        witness = [ "thm8-forward"; "thm8-converse"; "cor11" ] };
    ]

let diagram =
  String.concat "\n"
    [
      "        WT-IC  <  WT-TC";
      "          <          <";
      "        ST-IC  <  ST-TC";
      "          <          <";
      "        HT-IC  <  HT-TC";
      "";
      "  (all inequalities strict; HT-IC is incomparable";
      "   with both WT-TC and ST-TC)";
    ]

type verified = { link : link; reduction_ok : bool; witnesses_ok : bool }

let verify evidences =
  let holds id =
    match List.find_opt (fun (e : Theorems.evidence) -> String.equal e.Theorems.id id) evidences with
    | Some e -> e.Theorems.holds
    | None -> false
  in
  List.map
    (fun link ->
      let reduction_ok =
        match link.relation with
        | Strictly_below ->
          Taxonomy.trivially_reduces link.a link.b
          && not (Taxonomy.trivially_reduces link.b link.a)
        | Incomparable ->
          (not (Taxonomy.trivially_reduces link.a link.b))
          && not (Taxonomy.trivially_reduces link.b link.a)
      in
      { link; reduction_ok; witnesses_ok = List.for_all holds link.witness })
    links

let pp_verified ppf verifieds =
  Format.fprintf ppf "@[<v>%s@,@," diagram;
  List.iter
    (fun v ->
      let rel = match v.link.relation with Strictly_below -> "<" | Incomparable -> "<>" in
      Format.fprintf ppf "%-6s %-2s %-6s  [%s]  reduction:%s witnesses:%s@,"
        (Taxonomy.short_name v.link.a) rel
        (Taxonomy.short_name v.link.b)
        v.link.source
        (if v.reduction_ok then "ok" else "FAIL")
        (if v.witnesses_ok then "ok" else "FAIL"))
    verifieds;
  Format.fprintf ppf "@]"
