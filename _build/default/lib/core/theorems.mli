(** Executable witnesses for the paper's separation theorems.

    The paper's theorems quantify over all protocols; their proofs
    rest on concrete protocols (Figures 1-4) and concrete
    indistinguishability scenarios.  Each function here replays those
    scenarios in the model and returns an [evidence] record whose
    boolean facts the test suite asserts and the benchmark harness
    prints. *)

type evidence = {
  id : string;
  claim : string;
  holds : bool;
  facts : (string * bool) list;  (** the individual machine-checked facts *)
  details : string list;  (** human-readable notes *)
}

val pp_evidence : Format.formatter -> evidence -> unit

val theorem8_forward : unit -> evidence
(** HT-IC does not reduce to WT-TC: the Figure 1 tree protocol's
    scheme contains a pattern in which a 0-input leaf sends one
    message and receives none, and the two Theorem 8 scenarios leave
    the paper's [p6] (our [p5]) in literally identical local states —
    so an HT-IC protocol with this scheme would decide inconsistently. *)

val theorem8_converse : unit -> evidence
(** WT-TC does not reduce to HT-IC: a scripted schedule drives the
    Figure 2 protocol into a genuine total-consistency violation
    (the halted coordinator committed; the survivors' termination run
    aborts) while interactive consistency is maintained. *)

val theorem13_ic : unit -> evidence
(** WT-IC < ST-IC: on the amnesic chain protocol, the paper's
    scenario makes two processors that never fail decide commit and
    abort respectively; on the non-amnesic chain the same schedule
    stays consistent; and the two scenarios are indistinguishable to
    [p2]. *)

val theorem13_tc : unit -> evidence
(** WT-TC < ST-TC: the Figure 4 protocol's scheme has exactly the
    four advertised patterns; its honest amnesic variant has a
    different scheme; and after the race resolution the amnesic
    [p0]'s local state is identical whether or not [m1] was sent,
    while the non-amnesic [p0]'s states differ. *)

val corollary11 : unit -> evidence
(** The amnesic Figure 1 variant solves ST-TC: failure-free
    exploration shows strong termination and total consistency, and a
    randomized failure audit finds no violation. *)

val theorem7 : ?sizes:int list -> unit -> evidence * (int * float) list
(** The termination protocol establishes WT-TC within O(N^2) steps
    per processor: measured maximum steps per processor for each N,
    plus the fitted power-law exponent (expected ~2). *)

val appendix_anomaly : ?max_configs:int -> unit -> evidence
(** A reproduction finding, not a paper claim: under the paper's
    literal model (failure notices unordered with respect to
    messages), the Appendix protocol run standalone from mixed biases
    admits a two-crash total-consistency violation — a notice can
    overtake a decider's final-round committable message.  Under the
    fail-stop delivery discipline (notices after all of the sender's
    messages, as in Schneider's fail-stop processors) the violation
    disappears.  Protocols that invoke the termination protocol from
    safe two-phase configurations (Figure 1 / 3PC) are immune at the
    explored scopes either way. *)

val all : unit -> evidence list
(** Everything above (Theorem 7 with default sizes). *)
