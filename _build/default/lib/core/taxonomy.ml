open Patterns_protocols

type consistency = IC | TC

type termination = WT | ST | HT

type t = {
  rule : Decision_rule.t;
  consistency : consistency;
  termination : termination;
}

let make ?(rule = Decision_rule.Unanimity) consistency termination =
  { rule; consistency; termination }

let all_six =
  [ make IC WT; make TC WT; make IC ST; make TC ST; make IC HT; make TC HT ]

let consistency_implies a b =
  match (a, b) with IC, IC | TC, TC | TC, IC -> true | IC, TC -> false

let termination_rank = function WT -> 0 | ST -> 1 | HT -> 2

let termination_implies a b = termination_rank a >= termination_rank b

let trivially_reduces p1 p2 =
  Decision_rule.to_string p1.rule = Decision_rule.to_string p2.rule
  && consistency_implies p2.consistency p1.consistency
  && termination_implies p2.termination p1.termination

let pp_consistency ppf = function
  | IC -> Format.pp_print_string ppf "IC"
  | TC -> Format.pp_print_string ppf "TC"

let pp_termination ppf = function
  | WT -> Format.pp_print_string ppf "WT"
  | ST -> Format.pp_print_string ppf "ST"
  | HT -> Format.pp_print_string ppf "HT"

let short_name t =
  Format.asprintf "%a-%a" pp_termination t.termination pp_consistency t.consistency

let pp ppf t =
  Format.fprintf ppf "%s(%a)" (short_name t) Decision_rule.pp t.rule

let equal a b =
  a.consistency = b.consistency && a.termination = b.termination
  && Decision_rule.to_string a.rule = Decision_rule.to_string b.rule
