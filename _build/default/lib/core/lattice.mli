(** The six-problem lattice (summary diagram of Section 4).

    Every reduction is Theorem 1's trivial direction; every
    *strictness* and *incomparability* is backed by one of the
    executable witnesses in {!Theorems}.  [verify] re-runs those
    witnesses and reports whether the whole diagram reproduces. *)

type relation =
  | Strictly_below  (** [a < b]: a reduces to b, not conversely *)
  | Incomparable

type link = {
  a : Taxonomy.t;
  b : Taxonomy.t;
  relation : relation;
  source : string;  (** paper artifact: "Thm 1 + Cor 9", ... *)
  witness : string list;  (** {!Theorems} evidence ids backing strictness *)
}

val links : link list
(** The five strict edges of the diagram (WT-IC < WT-TC, WT-IC <
    ST-IC, WT-TC < ST-TC, ST-IC < HT-IC, ST-TC < HT-TC, plus the
    derived ST-IC < ST-TC and HT-IC < HT-TC) and the two
    incomparabilities (HT-IC vs WT-TC, HT-IC vs ST-TC). *)

val diagram : string
(** The ASCII rendition of the paper's closing diagram. *)

type verified = { link : link; reduction_ok : bool; witnesses_ok : bool }

val verify : Theorems.evidence list -> verified list
(** Check each link: the trivial-reduction direction against
    {!Taxonomy.trivially_reduces}, and each named witness against the
    supplied evidence list. *)

val pp_verified : Format.formatter -> verified list -> unit
