lib/core/concurrency.ml: Array Engine Format List Listx Map Patterns_sim Patterns_stdx Proc_id Protocol Set Stats Stdlib
