lib/core/explore.mli: Decision Engine Format Patterns_protocols Patterns_sim Protocol
