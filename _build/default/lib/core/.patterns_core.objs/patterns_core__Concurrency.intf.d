lib/core/concurrency.mli: Engine Format Patterns_sim Protocol
