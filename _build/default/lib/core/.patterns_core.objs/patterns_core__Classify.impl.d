lib/core/classify.ml: Explore Format Fun List Option Patterns_sim Protocol Taxonomy
