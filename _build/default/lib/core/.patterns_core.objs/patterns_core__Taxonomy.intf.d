lib/core/taxonomy.mli: Decision_rule Format Patterns_protocols
