lib/core/lattice.ml: Format List String Taxonomy Theorems
