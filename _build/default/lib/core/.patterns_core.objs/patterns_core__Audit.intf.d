lib/core/audit.mli: Decision_rule Format Patterns_protocols Patterns_sim Protocol
