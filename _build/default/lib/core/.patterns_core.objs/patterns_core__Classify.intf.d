lib/core/classify.mli: Decision_rule Format Patterns_protocols Patterns_sim Protocol Taxonomy
