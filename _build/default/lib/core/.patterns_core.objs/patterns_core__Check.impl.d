lib/core/check.ml: Array Decision Decision_rule Format List Patterns_protocols Patterns_sim Proc_id Status Trace
