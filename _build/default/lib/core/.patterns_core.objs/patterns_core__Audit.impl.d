lib/core/audit.ml: Array Check Engine Format List Patterns_pattern Patterns_sim Patterns_stdx Printf Prng Protocol String Trace
