lib/core/taxonomy.ml: Decision_rule Format Patterns_protocols
