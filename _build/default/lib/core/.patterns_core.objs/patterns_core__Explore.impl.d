lib/core/explore.ml: Array Decision Engine Format Fun List Listx Map Option Patterns_protocols Patterns_sim Patterns_stdx Proc_id Protocol Set Status Stdlib String Trace
