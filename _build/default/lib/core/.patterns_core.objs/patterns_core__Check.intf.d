lib/core/check.mli: Decision Decision_rule Patterns_protocols Patterns_sim Status Trace
