lib/core/lattice.mli: Format Taxonomy Theorems
