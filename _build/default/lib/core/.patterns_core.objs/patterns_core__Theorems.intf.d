lib/core/theorems.mli: Format
