open Patterns_sim
open Patterns_stdx

module Make (P : Protocol.S) = struct
  module E = Engine.Make (P)

  module State_map = Map.Make (struct
    type t = P.state

    let compare = P.compare_state
  end)

  module Node_set = Set.Make (struct
    type t = E.config

    let compare = E.compare_behavioral
  end)

  module Pair_set = Set.Make (struct
    type t = int * int

    let compare = Stdlib.compare
  end)

  type t = {
    by_state : int State_map.t;  (* state -> id *)
    by_id : P.state array;
    pairs : Pair_set.t;  (* co-occurring ids, (min, max) *)
    truncated : bool;
  }

  let build ?(max_failures = 1) ?(max_configs = 400_000) ?inputs_choices ~n () =
    let inputs_choices =
      match inputs_choices with Some v -> v | None -> Listx.all_bool_vectors n
    in
    let intern = ref State_map.empty in
    let rev = ref [] in
    let next_id = ref 0 in
    let id_of s =
      match State_map.find_opt s !intern with
      | Some i -> i
      | None ->
        let i = !next_id in
        incr next_id;
        intern := State_map.add s i !intern;
        rev := s :: !rev;
        i
    in
    let pairs = ref Pair_set.empty in
    let visited = ref Node_set.empty in
    let count = ref 0 in
    let truncated = ref false in
    let stack = ref (List.map (fun inputs -> E.init ~n ~inputs) inputs_choices) in
    let rec loop () =
      match !stack with
      | [] -> ()
      | c :: rest ->
        stack := rest;
        if Node_set.mem c !visited then loop ()
        else if !count >= max_configs then truncated := true
        else begin
          visited := Node_set.add c !visited;
          incr count;
          let ops = List.filter (fun p -> not (E.is_failed c p)) (Proc_id.all ~n) in
          let ids = List.map (fun p -> id_of (E.state_of c p)) ops in
          (* pairs over distinct processors — two processors sharing a
             state legitimately put that state in its own C(s) *)
          List.iteri
            (fun ai a ->
              List.iteri
                (fun bi b -> if ai < bi then pairs := Pair_set.add (min a b, max a b) !pairs)
                ids)
            ids;
          let fails =
            if List.length (List.filter (fun p -> E.is_failed c p) (Proc_id.all ~n)) < max_failures
            then E.failure_actions c
            else []
          in
          List.iter
            (fun a ->
              match E.apply ~step:0 c a with
              | Ok (c', _) -> if not (Node_set.mem c' !visited) then stack := c' :: !stack
              | Error _ -> ())
            (E.applicable c @ fails);
          loop ()
        end
    in
    loop ();
    {
      by_state = !intern;
      by_id = Array.of_list (List.rev !rev);
      pairs = !pairs;
      truncated = !truncated;
    }

  let state_count t = Array.length t.by_id

  let states t = Array.to_list t.by_id

  let concurrency_set t s =
    match State_map.find_opt s t.by_state with
    | None -> []
    | Some i ->
      Pair_set.fold
        (fun (a, b) acc ->
          if a = i && b = i then t.by_id.(a) :: acc
          else if a = i then t.by_id.(b) :: acc
          else if b = i then t.by_id.(a) :: acc
          else acc)
        t.pairs []
      |> List.rev

  let co_occur t s1 s2 =
    match (State_map.find_opt s1 t.by_state, State_map.find_opt s2 t.by_state) with
    | Some a, Some b -> Pair_set.mem (min a b, max a b) t.pairs
    | _ -> false

  let truncated t = t.truncated

  let pp_summary ppf t =
    let sizes =
      Array.to_list (Array.mapi (fun i _ -> (i, 0)) t.by_id)
      |> List.map (fun (i, _) ->
             Pair_set.fold (fun (a, b) acc -> if a = i || b = i then acc + 1 else acc) t.pairs 0)
    in
    let stats = Stats.summarize (List.map float_of_int sizes) in
    Format.fprintf ppf "%d states%s; |C(s)|: mean %.1f, max %.0f" (state_count t)
      (if t.truncated then " (truncated)" else "")
      stats.Stats.mean stats.Stats.max
end
