(** Concurrency sets, literally.

    "A processor's knowledge about the states of its cohorts is
    captured by the concurrency set of its state.  The concurrency set
    of state [s], denoted [C(s)], is the set of states [t] such that
    [s] and [t] occur in the same configuration."  (Section 3.)

    [Make (P)] explores the reachable configurations (like
    {!Explore}, over chosen input vectors and a failure budget) and
    materializes [C(s)] for every reachable operational local state.
    This is the raw object behind the safe-state conditions; the
    {!Explore} module keeps only the decision-relevant projection,
    this one keeps everything — suitable for small instances. *)

open Patterns_sim

module Make (P : Protocol.S) : sig
  module E : module type of Engine.Make (P)

  type t

  val build :
    ?max_failures:int ->
    ?max_configs:int ->
    ?inputs_choices:bool list list ->
    n:int ->
    unit ->
    t
  (** Defaults: all input vectors, one failure, 400_000 configs. *)

  val state_count : t -> int
  (** Number of distinct reachable operational local states. *)

  val states : t -> P.state list
  (** All of them, in a stable order. *)

  val concurrency_set : t -> P.state -> P.state list
  (** [C(s)] — empty for states never reached. *)

  val co_occur : t -> P.state -> P.state -> bool

  val truncated : t -> bool

  val pp_summary : Format.formatter -> t -> unit
  (** State count and the distribution of |C(s)|. *)
end
