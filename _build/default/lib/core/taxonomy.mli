(** The paper's taxonomy of consensus problems (Section 2).

    A consensus problem is a triple: a decision rule, a consistency
    constraint, and a termination condition.  Section 4 studies the
    six problems obtained from unanimity x {IC, TC} x {WT, ST, HT}. *)

open Patterns_protocols

type consistency =
  | IC  (** interactive: no two *operational* processors in different decision states *)
  | TC  (** total: no two processors ever decide differently, failed ones included *)

type termination =
  | WT  (** weak: every nonfaulty processor decides in bounded steps *)
  | ST  (** strong: additionally, deciders may forget the value (amnesic state) *)
  | HT  (** halting: additionally, deciders stop sending and receiving *)

type t = {
  rule : Decision_rule.t;
  consistency : consistency;
  termination : termination;
}

val all_six : t list
(** The six unanimity problems of Section 4, in the order
    WT-IC, WT-TC, ST-IC, ST-TC, HT-IC, HT-TC. *)

val make : ?rule:Decision_rule.t -> consistency -> termination -> t
(** Defaults to unanimity. *)

val consistency_implies : consistency -> consistency -> bool
(** [consistency_implies a b]: establishing [a] establishes [b]
    (TC implies IC). *)

val termination_implies : termination -> termination -> bool
(** HT implies ST implies WT. *)

val trivially_reduces : t -> t -> bool
(** The Theorem 1 direction: [trivially_reduces p1 p2] iff any
    protocol for [p2] is also a protocol for [p1] because [p2]'s
    constraints imply [p1]'s (same rule required). *)

val short_name : t -> string
(** e.g. ["WT-TC"]. *)

val pp : Format.formatter -> t -> unit
val pp_consistency : Format.formatter -> consistency -> unit
val pp_termination : Format.formatter -> termination -> unit
val equal : t -> t -> bool
