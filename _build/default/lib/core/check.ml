open Patterns_sim
open Patterns_protocols

type verdict = (unit, string) result

let proc_count trace =
  List.fold_left (fun acc e -> max acc (Trace.proc_of e + 1)) 0 trace

let total_consistency trace =
  let rec scan first = function
    | [] -> Ok ()
    | Trace.Decided { proc; decision; step } :: tl -> (
      match first with
      | None -> scan (Some (proc, decision)) tl
      | Some (p0, d0) ->
        if Decision.equal d0 decision then scan first tl
        else
          Error
            (Format.asprintf
               "total consistency violated: %a decided %a but %a decided %a (step %d)" Proc_id.pp
               p0 Decision.pp d0 Proc_id.pp proc Decision.pp decision step))
    | _ :: tl -> scan first tl
  in
  scan None trace

let interactive_consistency trace =
  let n = proc_count trace in
  let decisions = Array.make n None in
  let failed = Array.make n false in
  let check step =
    let conflict = ref (Ok ()) in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        match (decisions.(i), decisions.(j)) with
        | Some di, Some dj when (not failed.(i)) && (not failed.(j)) && not (Decision.equal di dj)
          ->
          conflict :=
            Error
              (Format.asprintf
                 "interactive consistency violated at step %d: operational %a in %a vs %a in %a"
                 step Proc_id.pp i Decision.pp di Proc_id.pp j Decision.pp dj)
        | _ -> ()
      done
    done;
    !conflict
  in
  let rec scan = function
    | [] -> Ok ()
    | e :: tl -> (
      (match e with
      | Trace.Decided { proc; decision; _ } -> decisions.(proc) <- Some decision
      | Trace.Became_amnesic { proc; _ } -> decisions.(proc) <- None
      | Trace.Failed_proc { proc; _ } -> failed.(proc) <- true
      | Trace.Sent _ | Trace.Null_step _ | Trace.Delivered_msg _ | Trace.Delivered_note _
      | Trace.Halted _ -> ());
      match check (Trace.step_of e) with Ok () -> scan tl | Error _ as err -> err)
  in
  scan trace

let nonfaulty_agreement trace =
  let failed = Trace.failures trace in
  let decisions =
    List.filter (fun (p, _) -> not (List.mem p failed)) (Trace.decisions trace)
  in
  match decisions with
  | [] -> Ok ()
  | (p0, d0) :: rest -> (
    match List.find_opt (fun (_, d) -> not (Decision.equal d d0)) rest with
    | None -> Ok ()
    | Some (p, d) ->
      Error
        (Format.asprintf "nonfaulty processors disagree: %a decided %a but %a decided %a"
           Proc_id.pp p0 Decision.pp d0 Proc_id.pp p Decision.pp d))

let decision_rule rule ~inputs trace =
  let inputs = Array.of_list inputs in
  let rec scan failure_occurred = function
    | [] -> Ok ()
    | Trace.Failed_proc _ :: tl -> scan true tl
    | Trace.Decided { proc; decision; step } :: tl ->
      if Decision_rule.permits rule ~inputs ~failure_occurred decision then
        scan failure_occurred tl
      else
        Error
          (Format.asprintf "decision rule %a forbids %a's %a at step %d" Decision_rule.pp rule
             Proc_id.pp proc Decision.pp decision step)
    | _ :: tl -> scan failure_occurred tl
  in
  scan false trace

let validity rule ~inputs trace =
  if Trace.failures trace <> [] then
    Error "validity check applies to failure-free runs only"
  else begin
    let expected = Decision_rule.natural_decision rule (Array.of_list inputs) in
    match
      List.find_opt (fun (_, d) -> not (Decision.equal d expected)) (Trace.decisions trace)
    with
    | None -> Ok ()
    | Some (p, d) ->
      Error
        (Format.asprintf "validity violated: failure-free run should decide %a but %a decided %a"
           Decision.pp expected Proc_id.pp p Decision.pp d)
  end

let ever_decided ~n trace =
  let first = Array.make n None in
  List.iter
    (function
      | Trace.Decided { proc; decision; _ } ->
        if first.(proc) = None then first.(proc) <- Some decision
      | _ -> ())
    trace;
  first

let for_each_nonfaulty ~failed f =
  let n = Array.length failed in
  let check p = if failed.(p) then Ok () else f p in
  let rec go p = if p >= n then Ok () else match check p with Ok () -> go (p + 1) | e -> e in
  go 0

let weak_termination ~quiescent ~statuses:_ ~ever_decided ~failed =
  if not quiescent then Error "run did not reach quiescence"
  else
    for_each_nonfaulty ~failed (fun p ->
        if ever_decided.(p) = None then
          Error (Format.asprintf "weak termination violated: nonfaulty %a never decided" Proc_id.pp p)
        else Ok ())

let strong_termination ~quiescent ~statuses ~ever_decided ~failed =
  match weak_termination ~quiescent ~statuses ~ever_decided ~failed with
  | Error _ as e -> e
  | Ok () ->
    for_each_nonfaulty ~failed (fun p ->
        let st = statuses.(p) in
        if st.Status.amnesic || st.Status.halted then Ok ()
        else
          Error
            (Format.asprintf "strong termination violated: nonfaulty %a never reached an amnesic state"
               Proc_id.pp p))

let halting_termination ~quiescent ~statuses ~ever_decided ~failed =
  match weak_termination ~quiescent ~statuses ~ever_decided ~failed with
  | Error _ as e -> e
  | Ok () ->
    for_each_nonfaulty ~failed (fun p ->
        if statuses.(p).Status.halted then Ok ()
        else
          Error (Format.asprintf "halting termination violated: nonfaulty %a never halted" Proc_id.pp p))
