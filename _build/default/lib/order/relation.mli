(** Binary relations over a dense integer universe [0 .. size-1].

    The representation is one bitset row of successors per element, so
    closure and reachability are word-parallel.  Communication patterns
    (the paper's [<_I] relation on message triples) are stored in this
    form after triples are interned to indices. *)

open Patterns_stdx

type t

val create : int -> t
(** [create n] is the empty relation on [n] elements. *)

val size : t -> int

val copy : t -> t

val add : t -> int -> int -> unit
(** [add t i j] adds the pair (i, j), i.e. [i < j].
    @raise Invalid_argument if an index is out of range or [i = j]
    (relations here are irreflexive by construction). *)

val mem : t -> int -> int -> bool

val remove : t -> int -> int -> unit

val edges : t -> (int * int) list
(** All pairs, lexicographically sorted. *)

val of_edges : int -> (int * int) list -> t

val edge_count : t -> int

val succs : t -> int -> Bitset.t
(** Successor row of [i] (a copy; mutations do not affect [t]). *)

val preds : t -> int -> Bitset.t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val union : t -> t -> t
(** Pointwise union.  @raise Invalid_argument on size mismatch. *)

val is_subrelation : t -> t -> bool
(** [is_subrelation a b] iff every pair of [a] is in [b]. *)

val transitive_closure : t -> t
(** Smallest transitive superrelation (bitset Warshall, O(n^2)
    word-ops per level). *)

val is_transitive : t -> bool

val transitive_reduction : t -> t
(** For acyclic [t]: the unique minimal relation with the same
    transitive closure (the Hasse covers).
    @raise Invalid_argument if [t] has a cycle. *)

val has_cycle : t -> bool

val is_strict_partial_order : t -> bool
(** Irreflexive (by construction) + transitive + acyclic. *)

val topo_sort : t -> int list option
(** A topological order of the elements ([None] if cyclic).  Ties are
    broken by index, so the result is deterministic. *)

val linear_extensions : t -> int list list
(** All linear extensions of the (closure of the) relation.  Factorial
    in the antichain width; intended for small patterns. *)

val count_linear_extensions : t -> int

val minima : t -> int list
(** Elements with no predecessor. *)

val maxima : t -> int list

val comparable : t -> int -> int -> bool
(** Whether [i] and [j] are ordered either way in the transitive
    closure.  O(closure) per call; for bulk queries close first. *)

val longest_chain : t -> int list
(** A maximum-length chain in the closure (the relation must be
    acyclic), listed in order. *)

val max_antichain : t -> int list
(** A maximum antichain of the closure (mutually incomparable
    elements).  Exponential fallback suitable for small n. *)

val down_set : t -> int -> Bitset.t
(** Strict predecessors of [i] in the transitive closure. *)

val pp : Format.formatter -> t -> unit
(** Renders the edge list, e.g. [0<1, 0<2, 1<2]. *)
