lib/order/poset.mli: Format Relation
