lib/order/poset.ml: Array Format Hashtbl Int List Listx Patterns_stdx Relation
