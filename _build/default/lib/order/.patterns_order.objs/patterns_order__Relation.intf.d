lib/order/relation.mli: Bitset Format Patterns_stdx
