lib/order/relation.ml: Array Bitset Format Hashtbl Int List Listx Patterns_stdx Printf Set Stdlib
