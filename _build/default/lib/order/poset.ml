open Patterns_stdx

module type ELT = sig
  type t

  val compare : t -> t -> int

  val pp : Format.formatter -> t -> unit
end

module Make (Elt : ELT) = struct
  type t = { elts : Elt.t array; closed : Relation.t }

  let index_of_exn t x =
    let lo = ref 0 and hi = ref (Array.length t.elts) in
    let found = ref (-1) in
    while !found < 0 && !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let c = Elt.compare x t.elts.(mid) in
      if c = 0 then found := mid else if c < 0 then hi := mid else lo := mid + 1
    done;
    if !found < 0 then invalid_arg "Poset: element not in carrier";
    !found

  let of_order elements pairs =
    let elts = Array.of_list (Listx.dedup_sorted ~cmp:Elt.compare elements) in
    let t0 = { elts; closed = Relation.create (Array.length elts) } in
    let rel = Relation.create (Array.length elts) in
    List.iter
      (fun (a, b) ->
        let i = index_of_exn t0 a and j = index_of_exn t0 b in
        if i = j then invalid_arg "Poset.of_order: reflexive pair"
        else Relation.add rel i j)
      pairs;
    if Relation.has_cycle rel then invalid_arg "Poset.of_order: pairs induce a cycle";
    { elts; closed = Relation.transitive_closure rel }

  let empty = { elts = [||]; closed = Relation.create 0 }

  let elements t = Array.to_list t.elts

  let cardinal t = Array.length t.elts

  let index_of t x = match index_of_exn t x with i -> Some i | exception Invalid_argument _ -> None

  let lt t a b =
    match (index_of t a, index_of t b) with
    | Some i, Some j -> Relation.mem t.closed i j
    | _ -> false

  let comparable t a b = lt t a b || lt t b a

  let pairs_of_relation t rel =
    List.map (fun (i, j) -> (t.elts.(i), t.elts.(j))) (Relation.edges rel)

  let covers t = pairs_of_relation t (Relation.transitive_reduction t.closed)

  let relation_pairs t = pairs_of_relation t t.closed

  let closure t = Relation.copy t.closed

  let equal a b =
    Array.length a.elts = Array.length b.elts
    && Array.for_all2 (fun x y -> Elt.compare x y = 0) a.elts b.elts
    && Relation.equal a.closed b.closed

  let compare a b =
    let c = Int.compare (Array.length a.elts) (Array.length b.elts) in
    if c <> 0 then c
    else
      let rec loop i =
        if i = Array.length a.elts then Relation.compare a.closed b.closed
        else
          let c = Elt.compare a.elts.(i) b.elts.(i) in
          if c <> 0 then c else loop (i + 1)
      in
      loop 0

  let hash t = Hashtbl.hash (Array.length t.elts, Relation.hash t.closed)

  let is_subposet a b =
    List.for_all (fun x -> index_of b x <> None) (elements a)
    && List.for_all (fun (x, y) -> lt b x y) (relation_pairs a)

  let minima t = List.map (fun i -> t.elts.(i)) (Relation.minima t.closed)

  let maxima t = List.map (fun i -> t.elts.(i)) (Relation.maxima t.closed)

  let linear_extensions t =
    List.map (List.map (fun i -> t.elts.(i))) (Relation.linear_extensions t.closed)

  let width t = List.length (Relation.max_antichain t.closed)

  let height t = List.length (Relation.longest_chain t.closed)

  let pp ppf t =
    let pp_pair ppf (a, b) = Format.fprintf ppf "%a < %a" Elt.pp a Elt.pp b in
    Format.fprintf ppf "@[<hov 2>poset{elems=[%a];@ covers=[%a]}@]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Elt.pp)
      (elements t)
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_pair)
      (covers t)
end
