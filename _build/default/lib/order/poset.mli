(** Labeled strict partial orders with canonical representation.

    A poset is a finite set of labeled elements plus a strict partial
    order.  Elements are interned in sorted label order, so two posets
    over the same labels with the same order relation are structurally
    equal — this is exactly the equality on communication patterns the
    paper needs (patterns are orders on globally-named message triples,
    so no isomorphism search is involved). *)

module type ELT = sig
  type t

  val compare : t -> t -> int

  val pp : Format.formatter -> t -> unit
end

module Make (Elt : ELT) : sig
  type t

  val of_order : Elt.t list -> (Elt.t * Elt.t) list -> t
  (** [of_order elements pairs] builds the poset whose order is the
      transitive closure of [pairs].  Duplicate elements are merged;
      pair endpoints must be listed in [elements].
      @raise Invalid_argument if the pairs induce a cycle or mention an
      unknown element. *)

  val empty : t

  val elements : t -> Elt.t list
  (** Sorted by [Elt.compare]. *)

  val cardinal : t -> int

  val lt : t -> Elt.t -> Elt.t -> bool
  (** Strict order (transitively closed). *)

  val comparable : t -> Elt.t -> Elt.t -> bool

  val covers : t -> (Elt.t * Elt.t) list
  (** Hasse covers (transitive reduction), lexicographically sorted. *)

  val relation_pairs : t -> (Elt.t * Elt.t) list
  (** All ordered pairs of the closure, lexicographically sorted. *)

  val closure : t -> Relation.t
  (** The underlying closed relation on interned indices (a copy). *)

  val index_of : t -> Elt.t -> int option
  (** Interned index of an element, in sorted-label order. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int

  val is_subposet : t -> t -> bool
  (** [is_subposet a b]: [a]'s elements are a subset of [b]'s and [a]'s
      order pairs are a subset of [b]'s. *)

  val minima : t -> Elt.t list
  val maxima : t -> Elt.t list

  val linear_extensions : t -> Elt.t list list

  val width : t -> int
  (** Size of a maximum antichain. *)

  val height : t -> int
  (** Length (number of elements) of a maximum chain. *)

  val pp : Format.formatter -> t -> unit
end
