open Patterns_stdx

type t = { n : int; rows : Bitset.t array }

let create n =
  if n < 0 then invalid_arg "Relation.create: negative size";
  { n; rows = Array.init n (fun _ -> Bitset.create n) }

let size t = t.n

let copy t = { t with rows = Array.map Bitset.copy t.rows }

let check t i name =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Relation.%s: index %d out of [0,%d)" name i t.n)

let add t i j =
  check t i "add";
  check t j "add";
  if i = j then invalid_arg "Relation.add: relations are irreflexive";
  Bitset.add t.rows.(i) j

let mem t i j =
  check t i "mem";
  check t j "mem";
  Bitset.mem t.rows.(i) j

let remove t i j =
  check t i "remove";
  check t j "remove";
  Bitset.remove t.rows.(i) j

let edges t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    let row = List.map (fun j -> (i, j)) (Bitset.to_list t.rows.(i)) in
    acc := row @ !acc
  done;
  !acc

let of_edges n pairs =
  let t = create n in
  List.iter (fun (i, j) -> add t i j) pairs;
  t

let edge_count t = Array.fold_left (fun acc row -> acc + Bitset.cardinal row) 0 t.rows

let succs t i =
  check t i "succs";
  Bitset.copy t.rows.(i)

let preds t i =
  check t i "preds";
  let p = Bitset.create t.n in
  for j = 0 to t.n - 1 do
    if Bitset.mem t.rows.(j) i then Bitset.add p j
  done;
  p

let equal a b = a.n = b.n && Array.for_all2 Bitset.equal a.rows b.rows

let compare a b =
  let c = Int.compare a.n b.n in
  if c <> 0 then c
  else
    let rec loop i =
      if i = a.n then 0
      else
        let c = Bitset.compare a.rows.(i) b.rows.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let hash t = Hashtbl.hash (t.n, Array.map Bitset.hash t.rows)

let union a b =
  if a.n <> b.n then invalid_arg "Relation.union: size mismatch";
  let r = copy a in
  Array.iteri (fun i row -> Bitset.union_into ~dst:r.rows.(i) row) b.rows;
  r

let is_subrelation a b =
  if a.n <> b.n then invalid_arg "Relation.is_subrelation: size mismatch";
  Array.for_all2 Bitset.subset a.rows b.rows

(* Row-oriented Warshall: once k's row is final, fold it into every row
   that reaches k.  Each inner step is one word-parallel union. *)
let transitive_closure t =
  let r = copy t in
  for k = 0 to r.n - 1 do
    for i = 0 to r.n - 1 do
      if i <> k && Bitset.mem r.rows.(i) k then Bitset.union_into ~dst:r.rows.(i) r.rows.(k)
    done
  done;
  (* closure of an irreflexive relation may gain self-loops only via
     cycles; keep them so [has_cycle] can detect them, but strip i<i in
     the acyclic case is unnecessary since add forbids them. *)
  r

let is_transitive t = equal t (transitive_closure t)

let has_cycle t =
  let c = transitive_closure t in
  let cyclic = ref false in
  for i = 0 to c.n - 1 do
    if Bitset.mem c.rows.(i) i then cyclic := true
  done;
  !cyclic

let is_strict_partial_order t = (not (has_cycle t)) && is_transitive t

let transitive_reduction t =
  if has_cycle t then invalid_arg "Relation.transitive_reduction: relation has a cycle";
  let c = transitive_closure t in
  let r = copy c in
  (* an edge i->j is redundant iff some k with i->k and k->j exists *)
  for i = 0 to c.n - 1 do
    List.iter
      (fun j ->
        let redundant =
          List.exists (fun k -> k <> j && Bitset.mem c.rows.(k) j) (Bitset.to_list c.rows.(i))
        in
        if redundant then Bitset.remove r.rows.(i) j)
      (Bitset.to_list c.rows.(i))
  done;
  r

let in_degrees t =
  let deg = Array.make t.n 0 in
  Array.iter (fun row -> Bitset.iter (fun j -> deg.(j) <- deg.(j) + 1) row) t.rows;
  deg

let topo_sort t =
  let deg = in_degrees t in
  let module IS = Set.Make (Int) in
  let ready = ref IS.empty in
  Array.iteri (fun i d -> if d = 0 then ready := IS.add i !ready) deg;
  let rec loop acc =
    match IS.min_elt_opt !ready with
    | None -> if List.length acc = t.n then Some (List.rev acc) else None
    | Some i ->
      ready := IS.remove i !ready;
      Bitset.iter
        (fun j ->
          deg.(j) <- deg.(j) - 1;
          if deg.(j) = 0 then ready := IS.add j !ready)
        t.rows.(i);
      loop (i :: acc)
  in
  loop []

let linear_extensions t =
  let c = transitive_closure t in
  let deg = in_degrees c in
  let used = Array.make c.n false in
  let results = ref [] in
  let rec go chosen count =
    if count = c.n then results := List.rev chosen :: !results
    else
      for i = c.n - 1 downto 0 do
        if (not used.(i)) && deg.(i) = 0 then begin
          used.(i) <- true;
          Bitset.iter (fun j -> deg.(j) <- deg.(j) - 1) c.rows.(i);
          go (i :: chosen) (count + 1);
          Bitset.iter (fun j -> deg.(j) <- deg.(j) + 1) c.rows.(i);
          used.(i) <- false
        end
      done
  in
  go [] 0;
  List.sort Stdlib.compare !results

let count_linear_extensions t =
  let c = transitive_closure t in
  let deg = in_degrees c in
  let used = Array.make c.n false in
  let count = ref 0 in
  let rec go k =
    if k = c.n then incr count
    else
      for i = 0 to c.n - 1 do
        if (not used.(i)) && deg.(i) = 0 then begin
          used.(i) <- true;
          Bitset.iter (fun j -> deg.(j) <- deg.(j) - 1) c.rows.(i);
          go (k + 1);
          Bitset.iter (fun j -> deg.(j) <- deg.(j) + 1) c.rows.(i);
          used.(i) <- false
        end
      done
  in
  go 0;
  !count

let minima t =
  let deg = in_degrees t in
  List.filter (fun i -> deg.(i) = 0) (Listx.range 0 t.n)

let maxima t = List.filter (fun i -> Bitset.is_empty t.rows.(i)) (Listx.range 0 t.n)

let comparable t i j =
  check t i "comparable";
  check t j "comparable";
  let c = transitive_closure t in
  Bitset.mem c.rows.(i) j || Bitset.mem c.rows.(j) i

let longest_chain t =
  if has_cycle t then invalid_arg "Relation.longest_chain: relation has a cycle";
  let c = transitive_closure t in
  let memo = Array.make c.n None in
  (* longest chain starting at i, as a list *)
  let rec best_from i =
    match memo.(i) with
    | Some chain -> chain
    | None ->
      let tail =
        Bitset.fold
          (fun j acc ->
            let cand = best_from j in
            if List.length cand > List.length acc then cand else acc)
          c.rows.(i) []
      in
      let chain = i :: tail in
      memo.(i) <- Some chain;
      chain
  in
  List.fold_left
    (fun acc i ->
      let cand = best_from i in
      if List.length cand > List.length acc then cand else acc)
    []
    (Listx.range 0 t.n)

let max_antichain t =
  let c = transitive_closure t in
  let incomparable i j = (not (Bitset.mem c.rows.(i) j)) && not (Bitset.mem c.rows.(j) i) in
  (* branch and bound over indices in increasing order *)
  let best = ref [] in
  let rec go i current =
    if List.length current + (c.n - i) <= List.length !best then ()
    else if i = c.n then begin
      if List.length current > List.length !best then best := List.rev current
    end
    else begin
      if List.for_all (fun j -> incomparable i j) current then go (i + 1) (i :: current);
      go (i + 1) current
    end
  in
  go 0 [];
  !best

let down_set t i =
  check t i "down_set";
  let c = transitive_closure t in
  let d = Bitset.create t.n in
  for j = 0 to t.n - 1 do
    if Bitset.mem c.rows.(j) i then Bitset.add d j
  done;
  d

let pp ppf t =
  let pairs = edges t in
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    (fun ppf (i, j) -> Format.fprintf ppf "%d<%d" i j)
    ppf pairs
