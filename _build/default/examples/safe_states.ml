(* Safe states (Theorem 2), concretely.

   A state is safe when its concurrency set contains at most one kind
   of decision state, and co-occurring with a commit implies the
   commit rule holds.  The explorer computes exactly this for every
   reachable local state; here we print the verdicts for a protocol
   that is WT-TC (3PC on three processors) and one that is not
   (Figure 2's centralized protocol) — Theorem 2 says the first must
   have only safe states, and the proof of Theorem 8 lives in the
   unsafe states of the second.

     dune exec examples/safe_states.exe *)

open Patterns_core
open Patterns_stdx

let show name p ~n =
  let (module P : Patterns_sim.Protocol.S) = p in
  let module X = Explore.Make (P) in
  let options = { (X.default_options ~n) with X.max_failures = 1 } in
  let r = X.explore ~options ~rule:Patterns_protocols.Decision_rule.Unanimity ~n () in
  let states = r.X.states in
  let unsafe = X.unsafe_states r in
  Format.printf "@.== %s: %d reachable local states, %d unsafe ==@." name (List.length states)
    (List.length unsafe);
  let table =
    Table.create
      ~headers:
        [
          ("state", Table.Left); ("occurrences", Table.Right); ("commit in C(s)", Table.Left);
          ("abort in C(s)", Table.Left); ("implies all-1", Table.Left); ("bias", Table.Left);
          ("safe", Table.Left);
        ]
  in
  let yn b = if b then "yes" else "-" in
  let interesting =
    (* unsafe states first, then the most-visited safe ones *)
    unsafe
    @ (List.filter (fun i -> X.safe i) states
      |> List.sort (fun a b -> Int.compare b.X.occurrences a.X.occurrences)
      |> Listx.take 8)
  in
  List.iter
    (fun (i : X.state_info) ->
      Table.add_row table
        [
          Format.asprintf "%a" P.pp_state i.X.state;
          string_of_int i.X.occurrences;
          yn i.X.commit_cooccurs;
          yn i.X.abort_cooccurs;
          yn i.X.always_all_ones;
          (if X.committable i then "committable" else "noncommittable");
          (if X.safe i then "yes" else "UNSAFE");
        ])
    interesting;
  Table.print table

let () =
  print_endline
    "Theorem 2: every state of a WT-TC protocol is safe.  Corollary 6: once anyone\n\
     decides, every nonfaulty processor shares its bias.  Watch both hold for 3PC\n\
     and fail for Figure 2:";
  show "3pc (n=3)" (Patterns_protocols.Tree_proto.three_phase_commit 3) ~n:3;
  show "fig2 central (n=3)" Patterns_protocols.Central_proto.fig2 ~n:3;
  print_endline
    "\nFigure 2's unsafe states are its waiting participants: the same local state\n\
     occurs alongside a committed coordinator (so it may be forced to commit) and\n\
     in runs whose inputs contain a 0 (so it cannot deduce the commit rule) —\n\
     exactly the states the Theorem 8 scenarios exploit."
