(* Failure drill: fail every processor at every point of a 3PC run and
   watch the Appendix termination protocol recover, then show the one
   schedule where classic 2PC loses total consistency.

     dune exec examples/failure_drill.exe *)

open Patterns_sim
open Patterns_core

let drill (module P : Protocol.S) ~n ~inputs =
  let module E = Engine.Make (P) in
  (* reference run to learn its length *)
  let reference = E.run ~scheduler:E.fifo_scheduler ~n ~inputs () in
  let horizon = reference.E.steps in
  let outcomes = ref [] in
  for victim = 0 to n - 1 do
    for step = 0 to horizon do
      let r = E.run ~scheduler:E.fifo_scheduler ~failures:[ (step, victim) ] ~n ~inputs () in
      let tc = Result.is_ok (Check.total_consistency r.E.trace) in
      let ic = Result.is_ok (Check.interactive_consistency r.E.trace) in
      let failed = Trace.failures r.E.trace in
      let survivors_decided =
        List.for_all
          (fun p ->
            List.mem p failed || List.mem_assoc p (Trace.decisions r.E.trace))
          (Proc_id.all ~n)
      in
      outcomes := (victim, step, tc, ic, survivors_decided, r.E.quiescent) :: !outcomes
    done
  done;
  List.rev !outcomes

let summarize name outcomes =
  let total = List.length outcomes in
  let count f = List.length (List.filter f outcomes) in
  Format.printf "%-18s %4d crash points: TC kept %d/%d, IC kept %d/%d, survivors decided %d/%d@."
    name total
    (count (fun (_, _, tc, _, _, _) -> tc))
    total
    (count (fun (_, _, _, ic, _, _) -> ic))
    total
    (count (fun (_, _, _, _, dec, q) -> dec && q))
    total

let () =
  let n = 4 in
  let inputs = List.init n (fun _ -> true) in
  Format.printf "Failing each of the %d processors at every step of a fair run (all-yes inputs):@.@." n;
  summarize "3pc (tree/star)" (drill (Patterns_protocols.Tree_proto.three_phase_commit n) ~n ~inputs);
  summarize "2pc" (drill Patterns_protocols.Two_phase_commit.default ~n ~inputs);
  summarize "fig2 central" (drill Patterns_protocols.Central_proto.fig2 ~n ~inputs);
  summarize "chain (fig3)" (drill Patterns_protocols.Chain_proto.fig3 ~n ~inputs);

  Format.printf
    "@.Every protocol keeps interactive consistency and lets the survivors decide@.\
     (the termination protocol at work); only the tree family also keeps total@.\
     consistency at every crash point.  The scripted worst case for 2PC/fig2:@.@.";
  let e = Theorems.theorem8_converse () in
  Format.printf "%a@." Theorems.pp_evidence e
