(* Scheme explorer: enumerate the communication patterns of the
   paper's four figure protocols, exactly as the reducibility theory
   consumes them.

     dune exec examples/scheme_explorer.exe *)

open Patterns_pattern
open Patterns_sim

let scheme_of (module P : Protocol.S) ~n =
  let module S = Scheme.Make (P) in
  S.scheme ~n ()

let describe name (module P : Protocol.S) ~n =
  let pats, stats = scheme_of (module P) ~n in
  Format.printf "@.== %s (n=%d) ==@." name n;
  Format.printf "scheme: %d pattern(s)  [%a]@." (Pattern.Set.cardinal pats) Scheme.pp_stats stats;
  List.iteri
    (fun i p ->
      Format.printf "  pattern %d: %d messages, width %d, height %d, %d linearizations@."
        (i + 1) (Pattern.message_count p) (Pattern.width p) (Pattern.height p)
        (List.length (Pattern.delivery_orders p)))
    (Pattern.Set.elements pats);
  pats

let () =
  print_endline "Enumerating schemes (all failure-free executions, all input vectors).";

  let fig3 = describe "fig3 chain (WT-IC)" Patterns_protocols.Chain_proto.fig3 ~n:4 in
  let fig4 = describe "fig4 perverse (WT-TC)" Patterns_protocols.Perverse_proto.fig4 ~n:4 in
  let fig4st = describe "fig4 amnesic ST attempt" Patterns_protocols.Perverse_proto.fig4_amnesic ~n:4 in
  let _fig2 = describe "fig2 central (HT-IC)" Patterns_protocols.Central_proto.fig2 ~n:4 in
  let fig1 = describe "fig1 tree (WT-TC)" Patterns_protocols.Tree_proto.fig1 ~n:7 in

  Format.printf "@.== reducibility ingredients ==@.";
  Format.printf "fig3's scheme is a single pattern: %b@." (Pattern.Set.cardinal fig3 = 1);
  Format.printf "fig4 amnesic scheme equals fig4's: %b (Theorem 13: it cannot)@."
    (Scheme.equal_schemes fig4 fig4st);
  Format.printf "fig4 amnesic scheme contains fig4's: %b@." (Scheme.subscheme fig4 fig4st);

  (* the lone-abort pattern of Theorem 8: our p3 is the paper's p4 *)
  let lone =
    Pattern.Set.exists
      (fun p ->
        List.length (Pattern.messages_of_proc p 3) = 1 && List.mem 3 (Pattern.received_none p ~n:7))
      fig1
  in
  Format.printf "fig1 scheme contains the lone-abort pattern of Theorem 8: %b@." lone;

  (* show the four fig4 patterns in full *)
  Format.printf "@.== the four patterns of Figure 4 ==@.%a@." Scheme.pp_scheme fig4
