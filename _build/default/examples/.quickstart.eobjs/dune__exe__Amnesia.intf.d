examples/amnesia.mli:
