examples/failure_drill.ml: Check Engine Format List Patterns_core Patterns_protocols Patterns_sim Proc_id Protocol Result Theorems Trace
