examples/quickstart.ml: Check Engine Format Pattern Patterns_core Patterns_pattern Patterns_protocols Patterns_sim Patterns_stdx Render
