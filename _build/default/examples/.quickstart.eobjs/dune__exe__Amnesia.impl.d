examples/amnesia.ml: Check Engine Format Patterns_core Patterns_pattern Patterns_protocols Patterns_sim Protocol Theorems
