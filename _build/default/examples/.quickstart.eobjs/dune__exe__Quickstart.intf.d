examples/quickstart.mli:
