examples/scheme_explorer.ml: Format List Pattern Patterns_pattern Patterns_protocols Patterns_sim Protocol Scheme
