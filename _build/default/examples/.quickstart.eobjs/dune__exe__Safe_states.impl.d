examples/safe_states.ml: Explore Format Int List Listx Patterns_core Patterns_protocols Patterns_sim Patterns_stdx Table
