examples/commit_workload.mli:
