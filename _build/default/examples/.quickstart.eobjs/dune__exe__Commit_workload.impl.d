examples/commit_workload.ml: Decision Engine Format List Patterns_pattern Patterns_protocols Patterns_sim Patterns_stdx Printf Protocol Table Trace
