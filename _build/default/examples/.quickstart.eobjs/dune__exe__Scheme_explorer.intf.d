examples/scheme_explorer.mli:
