examples/safe_states.mli:
