(* Transaction commitment workload: the paper's motivating setting.

   A set of banks must atomically commit a batch of transfers.  We run
   the same workload through four commitment protocols and compare
   message cost, latency (engine steps), and what happens when the
   coordinator crashes at the worst moment — the price of total
   consistency made concrete.

     dune exec examples/commit_workload.exe *)

open Patterns_sim
open Patterns_stdx

type row = {
  protocol : string;
  messages : int;
  hops : int;  (* pattern height: sequential network hops on the critical path *)
  latency : float;  (* simulated completion under U(5,15) delays *)
  survivors_outcome : string;
  dead_commit_conflict : bool;  (* a failed processor committed while survivors aborted *)
}

(* run one commitment with the coordinator/root crashing right after
   it first decides (the classic window) *)
let crash_after_first_decision (module P : Protocol.S) ~n ~inputs =
  let module E = Engine.Make (P) in
  (* find the step at which the first decision happens under the fair
     scheduler, then re-run failing the decider at that instant *)
  let probe = E.run ~scheduler:E.fifo_scheduler ~n ~inputs () in
  match
    List.find_map
      (function Trace.Decided { step; proc; _ } -> Some (step, proc) | _ -> None)
      probe.E.trace
  with
  | None -> None
  | Some (step, proc) ->
    let r = E.run ~scheduler:E.fifo_scheduler ~failures:[ (step + 1, proc) ] ~n ~inputs () in
    let decisions = Trace.decisions r.E.trace in
    let dead = Trace.failures r.E.trace in
    let survivors = List.filter (fun (p, _) -> not (List.mem p dead)) decisions in
    let dead_decisions = List.filter (fun (p, _) -> List.mem p dead) decisions in
    let conflict =
      List.exists
        (fun (_, d) ->
          List.exists (fun (_, d') -> not (Decision.equal d d')) survivors)
        dead_decisions
    in
    let outcome =
      match survivors with
      | [] -> "none"
      | (_, d) :: _
        when List.for_all (fun (_, d') -> Decision.equal d d') survivors ->
        Decision.to_string d
      | _ -> "MIXED"
    in
    Some (outcome, conflict)

let measure name (module P : Protocol.S) ~n =
  let module E = Engine.Make (P) in
  let inputs = List.init n (fun _ -> true) in
  let happy = E.run ~scheduler:E.fifo_scheduler ~n ~inputs () in
  let survivors_outcome, dead_commit_conflict =
    match crash_after_first_decision (module P) ~n ~inputs with
    | Some (o, c) -> (o, c)
    | None -> ("-", false)
  in
  let latency =
    (Patterns_pattern.Latency.evaluate ~seed:42
       ~model:(Patterns_pattern.Latency.Uniform { lo = 5.0; hi = 15.0 })
       ~n happy.E.trace)
      .Patterns_pattern.Latency.completion
  in
  {
    protocol = name;
    messages = Trace.message_count happy.E.trace;
    hops = Patterns_pattern.Latency.critical_path_bound happy.E.trace;
    latency;
    survivors_outcome;
    dead_commit_conflict;
  }

let () =
  let n = 5 in
  Format.printf "Atomic commitment across %d banks, all voting yes.@." n;
  Format.printf "Crash model: the first decider fail-stops immediately after deciding.@.@." ;
  let rows =
    [
      measure "2pc" Patterns_protocols.Two_phase_commit.default ~n;
      measure "d2pc" Patterns_protocols.Decentralized_commit.default ~n;
      measure "tree-2pc [ML]" (Patterns_protocols.Tree_commit.star n) ~n;
      measure "3pc (star tree)" (Patterns_protocols.Tree_proto.three_phase_commit n) ~n;
      measure "fig1 tree (n=7)" Patterns_protocols.Tree_proto.fig1 ~n:7;
    ]
  in
  let table =
    Table.create
      ~headers:
        [
          ("protocol", Table.Left);
          ("msgs (happy)", Table.Right);
          ("hops", Table.Right);
          ("latency", Table.Right);
          ("survivors decide", Table.Left);
          ("dead-commit conflict", Table.Left);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.protocol;
          string_of_int r.messages;
          string_of_int r.hops;
          Printf.sprintf "%.0f" r.latency;
          r.survivors_outcome;
          (if r.dead_commit_conflict then "YES (total consistency lost)" else "no");
        ])
    rows;
  Table.print table;
  print_newline ();
  print_endline
    "2PC pays the fewest messages but a coordinator crash after its decision leaves\n\
     the survivors to abort against a committed (dead) coordinator — exactly the\n\
     total-consistency violation Corollary 6 predicts for protocols that decide\n\
     before sharing their bias.  The tree/3PC family spends an extra round trip\n\
     (bias + acks) and keeps total consistency."
