(* Quickstart: run a consensus protocol, look at its execution, extract
   its communication pattern, and check the taxonomy's properties.

     dune exec examples/quickstart.exe *)

open Patterns_sim
open Patterns_pattern
open Patterns_core

let () =
  (* pick a protocol from the registry: classic two-phase commit *)
  let (module P) = Patterns_protocols.Two_phase_commit.default in
  let module E = Engine.Make (P) in

  (* run it on 4 processors that all vote yes, under a deterministic
     fair scheduler *)
  let result = E.run ~scheduler:E.fifo_scheduler ~n:4 ~inputs:[ true; true; true; true ] () in

  print_endline "=== execution trace ===";
  print_string (Render.msc ~pp_msg:P.pp_msg result.E.trace);

  (* the communication pattern: the paper's happens-before order on
     message triples (p, q, k) *)
  let pattern = Pattern.of_trace result.E.trace in
  print_endline "\n=== communication pattern ===";
  Format.printf "%a@." Pattern.pp pattern;
  Format.printf "width (max concurrent messages) = %d, height (longest causal chain) = %d@."
    (Pattern.width pattern) (Pattern.height pattern);

  (* consistency checks from the taxonomy *)
  print_endline "\n=== checks ===";
  let report name = function
    | Ok () -> Format.printf "%-28s ok@." name
    | Error e -> Format.printf "%-28s VIOLATED: %s@." name e
  in
  report "total consistency" (Check.total_consistency result.E.trace);
  report "interactive consistency" (Check.interactive_consistency result.E.trace);
  report "validity (unanimity)"
    (Check.validity Patterns_protocols.Decision_rule.Unanimity
       ~inputs:[ true; true; true; true ] result.E.trace);

  (* and the same protocol as a Graphviz graph, ready for dot -Tpng *)
  print_endline "\n=== pattern as DOT ===";
  print_string (Patterns_stdx.Dot.to_string (Render.pattern_to_dot pattern))
