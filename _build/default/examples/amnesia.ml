(* Strong termination and the price of forgetting.

   Strong termination lets a processor forget its decision value once
   made (the amnesic state), keeping only "a decision happened".  The
   paper's Theorem 13 shows this is a real constraint: the chain
   protocol's single pattern works for WT-IC but no ST-IC protocol can
   realize it.  Watch the failure mode in space-time.

     dune exec examples/amnesia.exe *)

open Patterns_sim
open Patterns_core

let run_scenario (module P : Protocol.S) title =
  let module E = Engine.Make (P) in
  let c = E.init ~n:4 ~inputs:[ true; true; true; true ] in
  (* the Theorem 13 schedule: votes in; p0 decides, forwards to p1 and
     (in the ST variant) forgets; p1 and p3 crash before the decision
     reaches p2; p2 can only ask p0 *)
  let directives =
    [ E.Step_of 1; E.Step_of 2; E.Step_of 3;
      E.Deliver_from (0, 1); E.Deliver_from (0, 2); E.Deliver_from (0, 3);
      E.Drain 0;
      E.Fail_now 1; E.Fail_now 3;
      E.Deliver_note (2, 1); E.Drain 2; E.Deliver_note (2, 3);
      E.Deliver_note (0, 1); E.Drain 0;
      E.Deliver_from (2, 0); E.Drain 2; E.Flush_fifo ]
  in
  match E.play c directives with
  | Error e -> Format.printf "%s: replay failed (%s)@." title e
  | Ok (_, trace) ->
    Format.printf "@.== %s ==@.%s@." title (Patterns_pattern.Render.lanes ~pp_msg:P.pp_msg ~n:4 trace);
    (match Check.nonfaulty_agreement trace with
    | Ok () -> Format.printf "nonfaulty deciders agree@."
    | Error m -> Format.printf "!!! %s@." m)

let () =
  print_endline
    "Theorem 13's scenario on the chain protocol, with and without amnesia.\n\
     All inputs are 1; p1 and p3 crash before p0's decision reaches p2.";
  run_scenario Patterns_protocols.Chain_proto.fig3 "weak termination: p0 remembers and helps";
  run_scenario Patterns_protocols.Chain_proto.fig3_amnesic
    "strong termination: p0 has forgotten";
  print_endline
    "\nWith weak termination, p0 joins p2's termination run carrying its committable\n\
     bias and p2 commits consistently.  The amnesic p0 can only announce that it has\n\
     forgotten; p2's termination run aborts while the nonfaulty p0 decided commit —\n\
     the inconsistency that proves WT-IC < ST-IC.";
  (* Corollary 11: amnesia is compatible with total consistency if the
     protocol shares its bias before deciding *)
  let e = Theorems.corollary11 () in
  Format.printf "@.%a@." Theorems.pp_evidence e
