(* Tests for the partial-order library. *)

open Patterns_order

let edges_testable = Alcotest.(list (pair int int))

(* a small random DAG generator: edges only go upward, so acyclic *)
let dag_gen =
  let open QCheck2.Gen in
  let* n = int_range 1 7 in
  let* edges =
    list_size (int_bound 12)
      (let* i = int_bound (n - 1) in
       let* j = int_bound (n - 1) in
       return (min i j, max i j))
  in
  let edges = List.filter (fun (i, j) -> i <> j) edges in
  return (n, List.sort_uniq compare edges)

let relation_of (n, edges) = Relation.of_edges n edges

(* ----- Relation unit tests ----- *)

let test_add_mem () =
  let r = Relation.create 4 in
  Relation.add r 0 2;
  Alcotest.(check bool) "mem" true (Relation.mem r 0 2);
  Alcotest.(check bool) "not mem" false (Relation.mem r 2 0);
  Alcotest.(check int) "edge count" 1 (Relation.edge_count r);
  Relation.remove r 0 2;
  Alcotest.(check int) "removed" 0 (Relation.edge_count r)

let test_irreflexive () =
  let r = Relation.create 3 in
  Alcotest.check_raises "no self loops" (Invalid_argument "Relation.add: relations are irreflexive")
    (fun () -> Relation.add r 1 1)

let test_closure_chain () =
  let r = Relation.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let c = Relation.transitive_closure r in
  Alcotest.check edges_testable "full chain closure"
    [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]
    (Relation.edges c)

let test_reduction_recovers_chain () =
  let c = Relation.of_edges 4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] in
  let red = Relation.transitive_reduction c in
  Alcotest.check edges_testable "hasse covers" [ (0, 1); (1, 2); (2, 3) ] (Relation.edges red)

let test_cycle_detection () =
  let r = Relation.of_edges 3 [ (0, 1); (1, 2); (2, 0) ] in
  Alcotest.(check bool) "has cycle" true (Relation.has_cycle r);
  let a = Relation.of_edges 3 [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "acyclic" false (Relation.has_cycle a)

let test_topo_sort () =
  let r = Relation.of_edges 4 [ (2, 0); (0, 1); (3, 1) ] in
  (match Relation.topo_sort r with
  | None -> Alcotest.fail "expected a topological order"
  | Some order ->
    let pos x = Option.get (Patterns_stdx.Listx.find_index (Int.equal x) order) in
    List.iter
      (fun (i, j) ->
        if pos i >= pos j then Alcotest.fail (Printf.sprintf "%d not before %d" i j))
      (Relation.edges r));
  let cyc = Relation.of_edges 2 [ (0, 1); (1, 0) ] in
  Alcotest.(check bool) "cyclic has no topo sort" true (Relation.topo_sort cyc = None)

let test_linear_extensions_antichain () =
  let r = Relation.create 3 in
  (* empty order: all 3! permutations *)
  Alcotest.(check int) "3! extensions" 6 (List.length (Relation.linear_extensions r));
  Alcotest.(check int) "count agrees" 6 (Relation.count_linear_extensions r)

let test_linear_extensions_chain () =
  let r = Relation.of_edges 3 [ (0, 1); (1, 2) ] in
  Alcotest.(check (list (list int))) "single extension" [ [ 0; 1; 2 ] ]
    (Relation.linear_extensions r)

let test_minima_maxima () =
  let r = Relation.of_edges 4 [ (0, 2); (1, 2); (2, 3) ] in
  Alcotest.(check (list int)) "minima" [ 0; 1 ] (Relation.minima r);
  Alcotest.(check (list int)) "maxima" [ 3 ] (Relation.maxima r)

let test_longest_chain_and_antichain () =
  (* two parallel chains of lengths 3 and 2 *)
  let r = Relation.of_edges 5 [ (0, 1); (1, 2); (3, 4) ] in
  Alcotest.(check int) "height 3" 3 (List.length (Relation.longest_chain r));
  Alcotest.(check int) "width 2" 2 (List.length (Relation.max_antichain r))

let test_down_set () =
  let r = Relation.of_edges 4 [ (0, 1); (1, 2); (3, 2) ] in
  Alcotest.(check (list int)) "down set of 2" [ 0; 1; 3 ]
    (Patterns_stdx.Bitset.to_list (Relation.down_set r 2))

(* ----- Relation properties ----- *)

let qcheck_tests =
  let open QCheck2 in
  [
    Test.make ~count:200 ~name:"closure is transitive" dag_gen (fun g ->
        Relation.is_transitive (Relation.transitive_closure (relation_of g)));
    Test.make ~count:200 ~name:"closure contains original" dag_gen (fun g ->
        let r = relation_of g in
        Relation.is_subrelation r (Relation.transitive_closure r));
    Test.make ~count:200 ~name:"closure is idempotent" dag_gen (fun g ->
        let c = Relation.transitive_closure (relation_of g) in
        Relation.equal c (Relation.transitive_closure c));
    Test.make ~count:200 ~name:"reduction preserves closure" dag_gen (fun g ->
        let r = relation_of g in
        let red = Relation.transitive_reduction r in
        Relation.equal (Relation.transitive_closure red) (Relation.transitive_closure r));
    Test.make ~count:200 ~name:"reduction is minimal (removing any cover changes closure)" dag_gen
      (fun g ->
        let r = relation_of g in
        let red = Relation.transitive_reduction r in
        List.for_all
          (fun (i, j) ->
            let r' = Relation.copy red in
            Relation.remove r' i j;
            not
              (Relation.equal (Relation.transitive_closure r') (Relation.transitive_closure red)))
          (Relation.edges red));
    Test.make ~count:200 ~name:"random upward DAGs are acyclic" dag_gen (fun g ->
        not (Relation.has_cycle (relation_of g)));
    Test.make ~count:100 ~name:"every linear extension respects the order" dag_gen (fun g ->
        let r = relation_of g in
        let exts = Relation.linear_extensions r in
        let c = Relation.transitive_closure r in
        List.for_all
          (fun ext ->
            let pos = Array.make (Relation.size r) 0 in
            List.iteri (fun idx x -> pos.(x) <- idx) ext;
            List.for_all (fun (i, j) -> pos.(i) < pos.(j)) (Relation.edges c))
          exts);
    Test.make ~count:100 ~name:"extension count matches enumeration" dag_gen (fun g ->
        let r = relation_of g in
        Relation.count_linear_extensions r = List.length (Relation.linear_extensions r));
    Test.make ~count:200 ~name:"longest chain is a chain" dag_gen (fun g ->
        let r = relation_of g in
        let chain = Relation.longest_chain r in
        let c = Relation.transitive_closure r in
        let rec ok = function
          | a :: (b :: _ as tl) -> Relation.mem c a b && ok tl
          | _ -> true
        in
        ok chain);
    Test.make ~count:200 ~name:"max antichain is an antichain" dag_gen (fun g ->
        let r = relation_of g in
        let anti = Relation.max_antichain r in
        List.for_all
          (fun i -> List.for_all (fun j -> i = j || not (Relation.comparable r i j)) anti)
          anti);
    Test.make ~count:200 ~name:"mirsky bound: height * width >= n" dag_gen (fun g ->
        let r = relation_of g in
        List.length (Relation.longest_chain r) * List.length (Relation.max_antichain r)
        >= Relation.size r);
  ]

(* reference model: boolean matrices *)
let matrix_of (n, edges) =
  let m = Array.make_matrix n n false in
  List.iter (fun (i, j) -> m.(i).(j) <- true) edges;
  m

let matrix_closure m =
  let n = Array.length m in
  let c = Array.map Array.copy m in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if c.(i).(k) && c.(k).(j) then c.(i).(j) <- true
      done
    done
  done;
  c

let edges_of_matrix m =
  let n = Array.length m in
  List.concat
    (List.map
       (fun i ->
         List.filter_map (fun j -> if m.(i).(j) && i <> j then Some (i, j) else None)
           (Patterns_stdx.Listx.range 0 n))
       (Patterns_stdx.Listx.range 0 n))

let model_tests =
  let open QCheck2 in
  [
    Test.make ~count:300 ~name:"closure agrees with the Floyd-Warshall reference" dag_gen
      (fun g ->
        let r = Relation.transitive_closure (relation_of g) in
        Relation.edges r = edges_of_matrix (matrix_closure (matrix_of g)));
    Test.make ~count:300 ~name:"cycle detection agrees with the reference"
      Gen.(
        let* n = int_range 1 6 in
        let* edges =
          list_size (int_bound 12)
            (let* i = int_bound (n - 1) in
             let* j = int_bound (n - 1) in
             return (i, j))
        in
        return (n, List.filter (fun (i, j) -> i <> j) (List.sort_uniq compare edges)))
      (fun g ->
        let reference_cyclic =
          let c = matrix_closure (matrix_of g) in
          Array.exists Fun.id (Array.init (fst g) (fun i -> c.(i).(i)))
        in
        Relation.has_cycle (relation_of g) = reference_cyclic);
  ]

(* ----- Poset ----- *)

module SP = Poset.Make (struct
  type t = string

  let compare = String.compare
  let pp = Format.pp_print_string
end)

let test_poset_basics () =
  let p = SP.of_order [ "a"; "b"; "c" ] [ ("a", "b"); ("b", "c") ] in
  Alcotest.(check bool) "a < c by transitivity" true (SP.lt p "a" "c");
  Alcotest.(check bool) "c not< a" false (SP.lt p "c" "a");
  Alcotest.(check int) "cardinal" 3 (SP.cardinal p);
  Alcotest.(check (list (pair string string))) "covers" [ ("a", "b"); ("b", "c") ] (SP.covers p)

let test_poset_equality_canonical () =
  (* same poset built with different element and pair orders *)
  let p1 = SP.of_order [ "b"; "a" ] [ ("a", "b") ] in
  let p2 = SP.of_order [ "a"; "b"; "a" ] [ ("a", "b") ] in
  Alcotest.(check bool) "equal" true (SP.equal p1 p2)

let test_poset_cycle_rejected () =
  Alcotest.check_raises "cycle" (Invalid_argument "Poset.of_order: pairs induce a cycle")
    (fun () -> ignore (SP.of_order [ "a"; "b" ] [ ("a", "b"); ("b", "a") ]))

let test_poset_unknown_element () =
  Alcotest.check_raises "unknown" (Invalid_argument "Poset: element not in carrier") (fun () ->
      ignore (SP.of_order [ "a" ] [ ("a", "z") ]))

let test_poset_subposet () =
  let small = SP.of_order [ "a"; "b" ] [ ("a", "b") ] in
  let big = SP.of_order [ "a"; "b"; "c" ] [ ("a", "b"); ("b", "c") ] in
  Alcotest.(check bool) "sub" true (SP.is_subposet small big);
  Alcotest.(check bool) "not super" false (SP.is_subposet big small)

let test_poset_width_height () =
  let p = SP.of_order [ "a"; "b"; "c"; "d" ] [ ("a", "b"); ("c", "d") ] in
  Alcotest.(check int) "width" 2 (SP.width p);
  Alcotest.(check int) "height" 2 (SP.height p);
  Alcotest.(check (list string)) "minima" [ "a"; "c" ] (SP.minima p);
  Alcotest.(check (list string)) "maxima" [ "b"; "d" ] (SP.maxima p)

let () =
  Alcotest.run "order"
    [
      ( "relation",
        [
          Alcotest.test_case "add/mem/remove" `Quick test_add_mem;
          Alcotest.test_case "irreflexive" `Quick test_irreflexive;
          Alcotest.test_case "closure of a chain" `Quick test_closure_chain;
          Alcotest.test_case "reduction of a chain" `Quick test_reduction_recovers_chain;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
          Alcotest.test_case "topological sort" `Quick test_topo_sort;
          Alcotest.test_case "linear extensions (antichain)" `Quick test_linear_extensions_antichain;
          Alcotest.test_case "linear extensions (chain)" `Quick test_linear_extensions_chain;
          Alcotest.test_case "minima/maxima" `Quick test_minima_maxima;
          Alcotest.test_case "longest chain / max antichain" `Quick test_longest_chain_and_antichain;
          Alcotest.test_case "down set" `Quick test_down_set;
        ] );
      ( "poset",
        [
          Alcotest.test_case "basics" `Quick test_poset_basics;
          Alcotest.test_case "canonical equality" `Quick test_poset_equality_canonical;
          Alcotest.test_case "cycle rejected" `Quick test_poset_cycle_rejected;
          Alcotest.test_case "unknown element" `Quick test_poset_unknown_element;
          Alcotest.test_case "subposet" `Quick test_poset_subposet;
          Alcotest.test_case "width/height" `Quick test_poset_width_height;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
      ("model", List.map QCheck_alcotest.to_alcotest model_tests);
    ]
