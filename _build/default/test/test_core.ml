(* Tests for the analysis layer: taxonomy, checkers, exploration,
   classification, theorem witnesses and the lattice. *)

open Patterns_sim
open Patterns_core

(* ----- taxonomy ----- *)

let test_taxonomy_implications () =
  let open Taxonomy in
  Alcotest.(check bool) "TC implies IC" true (consistency_implies TC IC);
  Alcotest.(check bool) "IC does not imply TC" false (consistency_implies IC TC);
  Alcotest.(check bool) "HT implies WT" true (termination_implies HT WT);
  Alcotest.(check bool) "WT does not imply ST" false (termination_implies WT ST)

let test_taxonomy_theorem1 () =
  let open Taxonomy in
  (* Theorem 1: T-IC <= T-TC and WT-C <= ST-C <= HT-C *)
  List.iter
    (fun t ->
      Alcotest.(check bool) "T-IC <= T-TC" true (trivially_reduces (make IC t) (make TC t)))
    [ WT; ST; HT ];
  List.iter
    (fun c ->
      Alcotest.(check bool) "WT-C <= ST-C" true (trivially_reduces (make c WT) (make c ST));
      Alcotest.(check bool) "ST-C <= HT-C" true (trivially_reduces (make c ST) (make c HT)))
    [ IC; TC ];
  Alcotest.(check bool) "HT-IC and WT-TC incomparable (trivial direction)" false
    (trivially_reduces (make IC HT) (make TC WT) || trivially_reduces (make TC WT) (make IC HT))

let test_taxonomy_names () =
  Alcotest.(check string) "short name" "WT-TC" (Taxonomy.short_name Taxonomy.(make TC WT));
  Alcotest.(check int) "six problems" 6 (List.length Taxonomy.all_six)

(* ----- trace checkers on hand-built traces ----- *)

let decided step proc decision = Trace.Decided { step; proc; decision }
let failed step proc = Trace.Failed_proc { step; proc }
let amnesic step proc = Trace.Became_amnesic { step; proc }

let test_check_tc () =
  Alcotest.(check bool) "agreeing trace ok" true
    (Result.is_ok
       (Check.total_consistency [ decided 0 0 Decision.Commit; decided 1 1 Decision.Commit ]));
  Alcotest.(check bool) "disagreeing trace violated" true
    (Result.is_error
       (Check.total_consistency [ decided 0 0 Decision.Commit; decided 1 1 Decision.Abort ]));
  Alcotest.(check bool) "dead decider still counts" true
    (Result.is_error
       (Check.total_consistency
          [ decided 0 0 Decision.Commit; failed 1 0; decided 2 1 Decision.Abort ]))

let test_check_ic () =
  (* conflicting decisions, but the first decider fails in between: IC holds *)
  let trace = [ decided 0 0 Decision.Commit; failed 1 0; decided 2 1 Decision.Abort ] in
  Alcotest.(check bool) "ic tolerates dead deciders" true
    (Result.is_ok (Check.interactive_consistency trace));
  let live = [ decided 0 0 Decision.Commit; decided 1 1 Decision.Abort ] in
  Alcotest.(check bool) "ic catches live conflict" true
    (Result.is_error (Check.interactive_consistency live));
  (* amnesia vacates the decision state *)
  let amn = [ decided 0 0 Decision.Commit; amnesic 1 0; decided 2 1 Decision.Abort ] in
  Alcotest.(check bool) "amnesia hides the conflict from IC" true
    (Result.is_ok (Check.interactive_consistency amn));
  Alcotest.(check bool) "but not from nonfaulty agreement" true
    (Result.is_error (Check.nonfaulty_agreement amn))

let test_check_rule_and_validity () =
  let inputs = [ true; true ] in
  Alcotest.(check bool) "commit on all ones ok" true
    (Result.is_ok (Check.decision_rule Patterns_protocols.Decision_rule.Unanimity ~inputs
         [ decided 0 0 Decision.Commit ]));
  Alcotest.(check bool) "abort without failure violates" true
    (Result.is_error
       (Check.decision_rule Patterns_protocols.Decision_rule.Unanimity ~inputs
          [ decided 0 0 Decision.Abort ]));
  Alcotest.(check bool) "abort after failure ok" true
    (Result.is_ok
       (Check.decision_rule Patterns_protocols.Decision_rule.Unanimity ~inputs
          [ failed 0 1; decided 1 0 Decision.Abort ]));
  Alcotest.(check bool) "validity flags wrong decision" true
    (Result.is_error
       (Check.validity Patterns_protocols.Decision_rule.Unanimity ~inputs
          [ decided 0 0 Decision.Abort ]))

let test_check_terminations () =
  let statuses = [| Status.decided Decision.Commit; Status.decided_halted Decision.Commit |] in
  let ever = [| Some Decision.Commit; Some Decision.Commit |] in
  let failed = [| false; false |] in
  Alcotest.(check bool) "wt ok" true
    (Result.is_ok (Check.weak_termination ~quiescent:true ~statuses ~ever_decided:ever ~failed));
  Alcotest.(check bool) "ht fails (p0 listening)" true
    (Result.is_error
       (Check.halting_termination ~quiescent:true ~statuses ~ever_decided:ever ~failed));
  Alcotest.(check bool) "wt fails when not quiescent" true
    (Result.is_error (Check.weak_termination ~quiescent:false ~statuses ~ever_decided:ever ~failed));
  let undecided = [| None; Some Decision.Commit |] in
  Alcotest.(check bool) "wt fails with undecided nonfaulty" true
    (Result.is_error
       (Check.weak_termination ~quiescent:true ~statuses ~ever_decided:undecided ~failed));
  Alcotest.(check bool) "wt ok when the undecided one failed" true
    (Result.is_ok
       (Check.weak_termination ~quiescent:true ~statuses ~ever_decided:undecided
          ~failed:[| true; false |]))

(* ----- exploration and classification ----- *)

let classify_n3 protocol =
  Classify.classify ~max_failures:1 ~rule:Patterns_protocols.Decision_rule.Unanimity ~n:3 protocol

let test_classify_fig2_is_ht_ic () =
  let v = classify_n3 Patterns_protocols.Central_proto.fig2 in
  Alcotest.(check bool) "ic" true v.Classify.ic;
  Alcotest.(check bool) "not tc" false v.Classify.tc;
  Alcotest.(check bool) "ht" true v.Classify.ht;
  Alcotest.(check bool) "unsafe states exist" false v.Classify.all_states_safe;
  Alcotest.(check (option string)) "strongest problem" (Some "HT-IC")
    (Option.map Taxonomy.short_name (Classify.best_problem v))

let test_classify_3pc_is_wt_tc () =
  let v = classify_n3 (Patterns_protocols.Tree_proto.three_phase_commit 3) in
  Alcotest.(check bool) "tc" true v.Classify.tc;
  Alcotest.(check bool) "wt" true v.Classify.wt;
  Alcotest.(check bool) "not ht" false v.Classify.ht;
  Alcotest.(check bool) "all states safe (Theorem 2)" true v.Classify.all_states_safe;
  Alcotest.(check bool) "corollary 6" true v.Classify.corollary6;
  Alcotest.(check (option string)) "strongest problem" (Some "WT-TC")
    (Option.map Taxonomy.short_name (Classify.best_problem v))

let test_classify_chain_is_wt_ic () =
  let v = classify_n3 Patterns_protocols.Chain_proto.fig3 in
  Alcotest.(check bool) "ic" true v.Classify.ic;
  Alcotest.(check bool) "not tc" false v.Classify.tc;
  Alcotest.(check bool) "wt" true v.Classify.wt;
  Alcotest.(check bool) "unsafe states exist (not TC)" false v.Classify.all_states_safe

let test_classify_2pc_not_tc () =
  let v = classify_n3 Patterns_protocols.Two_phase_commit.default in
  Alcotest.(check bool) "ic" true v.Classify.ic;
  Alcotest.(check bool) "not tc (blocking window)" false v.Classify.tc;
  Alcotest.(check bool) "wt" true v.Classify.wt

let test_classify_termination_is_ht_tc () =
  (* paper model: unordered failure notices *)
  let v =
    Classify.classify ~max_failures:1 ~rule:(Patterns_protocols.Decision_rule.Threshold 1) ~n:3
      Patterns_protocols.Termination_proto.default
  in
  Alcotest.(check bool) "tc" true v.Classify.tc;
  Alcotest.(check bool) "ht" true v.Classify.ht;
  Alcotest.(check bool) "rule ok" true v.Classify.rule_ok;
  (* under the fail-stop (fifo) notice discipline, Theorem 2 safety
     also holds — see Theorems.appendix_anomaly for the contrast *)
  let v' =
    Classify.classify ~max_failures:1 ~fifo_notices:true
      ~rule:(Patterns_protocols.Decision_rule.Threshold 1) ~n:3
      Patterns_protocols.Termination_proto.default
  in
  Alcotest.(check bool) "all states safe under fifo notices" true v'.Classify.all_states_safe

let test_appendix_anomaly () =
  (* capped exploration: the violation is found quickly; absence under
     fifo notices is checked within the same budget *)
  let e = Theorems.appendix_anomaly ~max_configs:2_000_000 () in
  if not e.Theorems.holds then
    Alcotest.fail (Format.asprintf "%a" Theorems.pp_evidence e)

let test_explore_failure_free_fig4 () =
  let (module P) = Patterns_protocols.Perverse_proto.fig4 in
  let module X = Explore.Make (P) in
  let options = { (X.default_options ~n:4) with X.max_failures = 0 } in
  let r = X.explore ~options ~rule:Patterns_protocols.Decision_rule.Unanimity ~n:4 () in
  Alcotest.(check bool) "no violations failure-free" true
    (r.X.ic_violation = None && r.X.tc_violation = None && r.X.wt_violation = None
   && r.X.validity_violation = None);
  Alcotest.(check bool) "complete" false r.X.truncated

(* ----- randomized audits ----- *)

let test_audit_tc_protocols_clean () =
  List.iter
    (fun (name, p, n, rule, fifo_notices) ->
      let report = Audit.random_audit ~max_failures:2 ~fifo_notices ~rule ~n ~runs:120 ~seed:7 p in
      if not (Audit.clean report) then
        Alcotest.fail (Format.asprintf "%s audit unclean: %a" name Audit.pp report))
    [
      ("fig1", Patterns_protocols.Tree_proto.fig1, 7, Patterns_protocols.Decision_rule.Unanimity, false);
      ("fig4", Patterns_protocols.Perverse_proto.fig4, 4, Patterns_protocols.Decision_rule.Unanimity, false);
      ( "3pc-5",
        Patterns_protocols.Tree_proto.three_phase_commit 5,
        5,
        Patterns_protocols.Decision_rule.Unanimity,
        false );
      (* the standalone Appendix protocol is 2-crash TC only under the
         fail-stop notice discipline — see Theorems.appendix_anomaly *)
      ( "termination",
        Patterns_protocols.Termination_proto.default,
        5,
        Patterns_protocols.Decision_rule.Threshold 1,
        true );
    ]

let test_audit_ic_protocols_keep_agreement () =
  (* IC-only protocols may violate TC but never operational agreement *)
  List.iter
    (fun (name, p, n, rule) ->
      let report = Audit.random_audit ~max_failures:2 ~rule ~n ~runs:120 ~seed:21 p in
      if report.Audit.ic_violations <> 0 || report.Audit.wt_incomplete <> 0
         || report.Audit.rule_violations <> 0 || report.Audit.non_quiescent <> 0 then
        Alcotest.fail (Format.asprintf "%s audit unclean: %a" name Audit.pp report))
    [
      ("fig2", Patterns_protocols.Central_proto.fig2, 4, Patterns_protocols.Decision_rule.Unanimity);
      ("fig3", Patterns_protocols.Chain_proto.fig3, 4, Patterns_protocols.Decision_rule.Unanimity);
      ("2pc", Patterns_protocols.Two_phase_commit.default, 4, Patterns_protocols.Decision_rule.Unanimity);
      ("d2pc", Patterns_protocols.Decentralized_commit.default, 4, Patterns_protocols.Decision_rule.Unanimity);
      ("rbcast", Patterns_protocols.Reliable_broadcast.default, 4, Patterns_protocols.Decision_rule.Broadcast 0);
    ]

(* ----- hunting and state knowledge ----- *)

let test_hunt_finds_2pc_tc_violation () =
  match
    Audit.hunt ~max_failures:2 ~max_runs:5_000 ~property:Audit.TC
      ~rule:Patterns_protocols.Decision_rule.Unanimity ~n:4 ~seed:1984
      Patterns_protocols.Two_phase_commit.default
  with
  | Ok report ->
    Alcotest.(check bool) "report mentions the violation" true
      (String.length report > 0)
  | Error tried -> Alcotest.fail (Printf.sprintf "no violation in %d runs" tried)

let test_hunt_respects_tc_protocol () =
  match
    Audit.hunt ~max_failures:1 ~max_runs:300 ~property:Audit.TC
      ~rule:Patterns_protocols.Decision_rule.Unanimity ~n:3 ~seed:7
      (Patterns_protocols.Tree_proto.three_phase_commit 3)
  with
  | Ok report -> Alcotest.fail ("unexpected violation:\n" ^ report)
  | Error _ -> ()

let test_state_implies () =
  (* fig2's committed coordinator state implies all inputs are 1; its
     waiting participants imply nothing *)
  let (module P) = Patterns_protocols.Central_proto.fig2 in
  let module X = Explore.Make (P) in
  let options = { (X.default_options ~n:3) with X.max_failures = 0 } in
  let r = X.explore ~options ~rule:Patterns_protocols.Decision_rule.Unanimity ~n:3 () in
  let committed =
    List.filter (fun (i : X.state_info) -> i.X.decision = Some Decision.Commit) r.X.states
  in
  Alcotest.(check bool) "committed states exist" true (committed <> []);
  List.iter
    (fun info ->
      if not (X.implies ~n:3 info (Array.for_all Fun.id)) then
        Alcotest.fail "a commit state occurs in a run with a 0 input")
    committed;
  let somewhere_unconstrained =
    List.exists
      (fun (i : X.state_info) ->
        i.X.decision = None && not (X.implies ~n:3 i (Array.for_all Fun.id)))
      r.X.states
  in
  Alcotest.(check bool) "some undecided state implies nothing" true somewhere_unconstrained

(* ----- concurrency sets ----- *)

let test_concurrency_sets () =
  let (module P) = Patterns_protocols.Tree_proto.three_phase_commit 3 in
  let module C = Concurrency.Make (P) in
  let module X = Explore.Make (P) in
  let t = C.build ~n:3 () in
  Alcotest.(check bool) "not truncated" false (C.truncated t);
  Alcotest.(check bool) "states found" true (C.state_count t > 100);
  (* cross-check against the explorer's decision co-occurrence *)
  let options = X.default_options ~n:3 in
  let r = X.explore ~options ~rule:Patterns_protocols.Decision_rule.Unanimity ~n:3 () in
  List.iter
    (fun (info : X.state_info) ->
      let commit_in_cs =
        List.exists
          (fun s ->
            match (P.status s).Patterns_sim.Status.decision with
            | Some Decision.Commit -> true
            | _ -> false)
          (C.concurrency_set t info.X.state)
      in
      if commit_in_cs <> info.X.commit_cooccurs then
        Alcotest.fail
          (Format.asprintf "concurrency/explorer disagree on %a" P.pp_state info.X.state))
    r.X.states

(* ----- scheme membership: random failure-free runs produce enumerated patterns ----- *)

let test_random_patterns_in_scheme () =
  let (module P) = Patterns_protocols.Perverse_proto.fig4 in
  let module E = Patterns_sim.Engine.Make (P) in
  let module S = Patterns_pattern.Scheme.Make (P) in
  let scheme, _ = S.scheme ~n:4 () in
  for seed = 1 to 40 do
    let prng = Patterns_stdx.Prng.create ~seed in
    let inputs = List.init 4 (fun _ -> Patterns_stdx.Prng.bool prng) in
    let r = E.run ~scheduler:(E.random_scheduler prng) ~n:4 ~inputs () in
    let p = Patterns_pattern.Pattern.of_trace r.E.trace in
    if not (Patterns_pattern.Pattern.Set.mem p scheme) then
      Alcotest.fail (Printf.sprintf "seed %d: run pattern missing from the enumerated scheme" seed)
  done

(* ----- theorem witnesses ----- *)

let check_evidence e =
  if not e.Theorems.holds then
    Alcotest.fail (Format.asprintf "%a" Theorems.pp_evidence e)

let test_theorem8_forward () = check_evidence (Theorems.theorem8_forward ())
let test_theorem8_converse () = check_evidence (Theorems.theorem8_converse ())
let test_theorem13_ic () = check_evidence (Theorems.theorem13_ic ())
let test_theorem13_tc () = check_evidence (Theorems.theorem13_tc ())
let test_corollary11 () = check_evidence (Theorems.corollary11 ())

let test_theorem7 () =
  let e, measurements = Theorems.theorem7 ~sizes:[ 3; 4; 6; 8 ] () in
  check_evidence e;
  Alcotest.(check int) "four measurements" 4 (List.length measurements)

let test_lattice () =
  let evidences = Theorems.all () in
  let verified = Lattice.verify evidences in
  Alcotest.(check int) "nine links" 9 (List.length verified);
  List.iter
    (fun v ->
      if not (v.Lattice.reduction_ok && v.Lattice.witnesses_ok) then
        Alcotest.fail
          (Format.asprintf "link %s-%s not verified"
             (Taxonomy.short_name v.Lattice.link.Lattice.a)
             (Taxonomy.short_name v.Lattice.link.Lattice.b)))
    verified

let () =
  Alcotest.run "core"
    [
      ( "taxonomy",
        [
          Alcotest.test_case "implications" `Quick test_taxonomy_implications;
          Alcotest.test_case "theorem 1" `Quick test_taxonomy_theorem1;
          Alcotest.test_case "names" `Quick test_taxonomy_names;
        ] );
      ( "checkers",
        [
          Alcotest.test_case "total consistency" `Quick test_check_tc;
          Alcotest.test_case "interactive consistency" `Quick test_check_ic;
          Alcotest.test_case "rule and validity" `Quick test_check_rule_and_validity;
          Alcotest.test_case "terminations" `Quick test_check_terminations;
        ] );
      ( "classification",
        [
          Alcotest.test_case "fig2 is HT-IC" `Quick test_classify_fig2_is_ht_ic;
          Alcotest.test_case "3pc is WT-TC" `Quick test_classify_3pc_is_wt_tc;
          Alcotest.test_case "chain is WT-IC" `Quick test_classify_chain_is_wt_ic;
          Alcotest.test_case "2pc is not TC" `Quick test_classify_2pc_not_tc;
          Alcotest.test_case "termination is HT-TC" `Slow test_classify_termination_is_ht_tc;
          Alcotest.test_case "appendix anomaly" `Slow test_appendix_anomaly;
          Alcotest.test_case "fig4 failure-free clean" `Quick test_explore_failure_free_fig4;
        ] );
      ( "audits",
        [
          Alcotest.test_case "TC protocols clean" `Slow test_audit_tc_protocols_clean;
          Alcotest.test_case "IC protocols keep agreement" `Slow test_audit_ic_protocols_keep_agreement;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "hunt finds the 2pc violation" `Slow test_hunt_finds_2pc_tc_violation;
          Alcotest.test_case "hunt respects 3pc" `Quick test_hunt_respects_tc_protocol;
          Alcotest.test_case "state implies" `Quick test_state_implies;
          Alcotest.test_case "concurrency sets" `Slow test_concurrency_sets;
          Alcotest.test_case "random patterns in scheme" `Quick test_random_patterns_in_scheme;
        ] );
      ( "theorems",
        [
          Alcotest.test_case "theorem 8 forward" `Quick test_theorem8_forward;
          Alcotest.test_case "theorem 8 converse" `Quick test_theorem8_converse;
          Alcotest.test_case "theorem 13 (IC)" `Quick test_theorem13_ic;
          Alcotest.test_case "theorem 13 (TC)" `Quick test_theorem13_tc;
          Alcotest.test_case "corollary 11" `Slow test_corollary11;
          Alcotest.test_case "theorem 7" `Quick test_theorem7;
          Alcotest.test_case "lattice" `Slow test_lattice;
        ] );
    ]
