test/test_sim.ml: Action Alcotest Array Decision Engine Fmt Format Incoming List Outbox Patterns_sim Patterns_stdx Proc_id Status Step_kind String Trace Triple
