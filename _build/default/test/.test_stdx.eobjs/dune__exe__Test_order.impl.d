test/test_order.ml: Alcotest Array Format Fun Gen Int List Option Patterns_order Patterns_stdx Poset Printf QCheck2 QCheck_alcotest Relation String Test
