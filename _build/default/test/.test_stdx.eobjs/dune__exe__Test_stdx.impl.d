test/test_stdx.ml: Alcotest Bitset Dot Gen Int List Listx Patterns_stdx Pqueue Printf Prng QCheck2 QCheck_alcotest Stats String Table Test
