  $ patterns-cli list | head -6
  $ patterns-cli run fig3-chain -n 3 --inputs 111 | head -12
  $ patterns-cli scheme fig3-chain -n 3 | head -2
  $ patterns-cli reduce fig4-perverse-st fig4-perverse
