(* The execution database: dictionary encoding, the 8-pattern
   index-selection table, the LRU query cache, persistence, query
   combinators, and the end-to-end guarantee the subsystem exists
   for — replaying a certificate against a recorded run performs
   zero kernel expansions. *)

open Patterns_stdx
open Patterns_db

let check = Alcotest.check

(* ----- Dict ----- *)

let test_dict_dense_ids () =
  let d = Dict.create () in
  check Alcotest.int "first id" 0 (Dict.intern d "a");
  check Alcotest.int "second id" 1 (Dict.intern d "b");
  check Alcotest.int "re-intern is stable" 0 (Dict.intern d "a");
  check Alcotest.int "cardinal" 2 (Dict.cardinal d);
  check Alcotest.(option int) "find present" (Some 1) (Dict.find d "b");
  check Alcotest.(option int) "find absent" None (Dict.find d "c");
  check Alcotest.(option string) "reverse lookup" (Some "b") (Dict.value d 1);
  check Alcotest.(option string) "reverse absent" None (Dict.value d 2);
  let seen = ref [] in
  Dict.iter (fun id v -> seen := (id, v) :: !seen) d;
  check
    Alcotest.(list (pair int string))
    "iter ascending" [ (0, "a"); (1, "b") ] (List.rev !seen)

let test_dict_encoding_roundtrip () =
  List.iter
    (fun id ->
      let s = Dict.encode id in
      check Alcotest.int "width" Dict.encoded_width (String.length s);
      check Alcotest.int "decode inverts" id (Dict.decode s 0))
    [ 0; 1; 255; 256; 65_535; 1_000_000; max_int ]

let dict_qcheck_tests =
  let open QCheck2 in
  [
    Test.make ~count:500 ~name:"byte order of encodings = numeric order of ids"
      Gen.(pair big_nat big_nat)
      (fun (a, b) ->
        compare (String.compare (Dict.encode a) (Dict.encode b)) 0
        = compare (Int.compare a b) 0);
    Test.make ~count:200 ~name:"intern assigns first-sight order"
      Gen.(list small_int)
      (fun l ->
        let d = Dict.create () in
        let ids = List.map (Dict.intern d) l in
        let expected =
          let seen = Hashtbl.create 16 in
          List.map
            (fun v ->
              match Hashtbl.find_opt seen v with
              | Some id -> id
              | None ->
                let id = Hashtbl.length seen in
                Hashtbl.add seen v id;
                id)
            l
        in
        ids = expected && Dict.cardinal d = List.length (List.sort_uniq compare l));
  ]

(* ----- Lru ----- *)

let test_lru_eviction_and_counters () =
  let c = Lru.create ~capacity:2 () in
  check Alcotest.(option int) "miss on empty" None (Lru.find c "a");
  check Alcotest.int "one miss" 1 (Lru.misses c);
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  check Alcotest.(option int) "hit a" (Some 1) (Lru.find c "a");
  (* b is now least-recent: adding c evicts it *)
  Lru.add c "c" 3;
  check Alcotest.int "capacity respected" 2 (Lru.length c);
  check Alcotest.(option int) "b evicted" None (Lru.find c "b");
  check Alcotest.(option int) "a survived" (Some 1) (Lru.find c "a");
  check Alcotest.(option int) "c present" (Some 3) (Lru.find c "c");
  check Alcotest.int "hits" 3 (Lru.hits c);
  check Alcotest.int "misses" 2 (Lru.misses c);
  Lru.add c "a" 9;
  check Alcotest.(option int) "replace in place" (Some 9) (Lru.find c "a");
  check Alcotest.int "replace keeps length" 2 (Lru.length c);
  Lru.clear c;
  check Alcotest.int "clear empties" 0 (Lru.length c);
  check Alcotest.int "clear keeps counters" 4 (Lru.hits c);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru.create: capacity must be positive") (fun () ->
      ignore (Lru.create ~capacity:0 ()))

(* ----- Index: the 8-pattern selection table ----- *)

let test_index_selection_table () =
  let t = Alcotest.testable (Fmt.of_to_string Index.ordering_name) ( = ) in
  (* the table of index.mli, row by row *)
  check t "(B,B,B) -> SEO" Index.Seo (Index.select ~src:true ~event:true ~dst:true);
  check t "(B,B,V) -> SEO" Index.Seo (Index.select ~src:true ~event:true ~dst:false);
  check t "(B,V,V) -> SEO" Index.Seo (Index.select ~src:true ~event:false ~dst:false);
  check t "(V,V,V) -> SEO" Index.Seo (Index.select ~src:false ~event:false ~dst:false);
  check t "(V,B,B) -> EOS" Index.Eos (Index.select ~src:false ~event:true ~dst:true);
  check t "(V,B,V) -> EOS" Index.Eos (Index.select ~src:false ~event:true ~dst:false);
  check t "(B,V,B) -> OSE" Index.Ose (Index.select ~src:true ~event:false ~dst:true);
  check t "(V,V,B) -> OSE" Index.Ose (Index.select ~src:false ~event:false ~dst:true)

let test_index_key_decode () =
  List.iter
    (fun ord ->
      let k = Index.key ord ~src:7 ~event:11 ~dst:13 in
      check Alcotest.int "key width" Index.width (String.length k);
      let s, e, d = Index.decode ord k in
      check Alcotest.(triple int int int) (Index.ordering_name ord) (7, 11, 13) (s, e, d))
    [ Index.Seo; Index.Eos; Index.Ose ]

let index_qcheck_tests =
  let open QCheck2 in
  let ords = [| Index.Seo; Index.Eos; Index.Ose |] in
  [
    Test.make ~count:300 ~name:"key/decode round-trips under every ordering"
      Gen.(quad (int_bound 2) big_nat big_nat big_nat)
      (fun (o, src, event, dst) ->
        let ord = ords.(o) in
        Index.decode ord (Index.key ord ~src ~event ~dst) = (src, event, dst));
    Test.make ~count:300
      ~name:"selected index puts the bound components in a prefix"
      Gen.(quad bool bool bool (triple (int_bound 50) (int_bound 50) (int_bound 50)))
      (fun (bs, be, bd, (src, event, dst)) ->
        let ord = Index.select ~src:bs ~event:be ~dst:bd in
        let p =
          Index.prefix ord ?src:(if bs then Some src else None)
            ?event:(if be then Some event else None)
            ?dst:(if bd then Some dst else None)
            ()
        in
        let bound = List.length (List.filter Fun.id [ bs; be; bd ]) in
        (* the prefix consumes every bound component: nothing is left
           to post-filter *)
        String.length p = bound * Dict.encoded_width
        && String.starts_with ~prefix:p (Index.key ord ~src ~event ~dst));
  ]

(* ----- Db: pattern queries against a full-scan oracle ----- *)

let opt_if b v = if b then Some v else None

let full_scan_filter ?src ?event ?dst all =
  List.filter
    (fun (s, e, d) ->
      (match src with None -> true | Some x -> s = x)
      && (match event with None -> true | Some x -> e = x)
      && match dst with None -> true | Some x -> d = x)
    all

let db_oracle_qcheck_tests =
  let open QCheck2 in
  let triple_gen =
    Gen.(triple (int_bound 12) (int_bound 3 >|= Printf.sprintf "e%d") (int_bound 12))
  in
  [
    Test.make ~count:200
      ~name:"every (bound/var)^3 pattern = full-scan filter (random triples)"
      Gen.(pair (list_size (int_bound 60) triple_gen) (triple bool bool bool))
      (fun (triples, (bs, be, bd)) ->
        let db = Db.create () in
        List.iter (fun (s, e, d) -> Db.add_edge db ~src:s ~event:e ~dst:d) triples;
        let all = Db.edges db () in
        let sorted_distinct = List.sort_uniq compare triples in
        (* the unbound scan is exactly the distinct triple set, sorted *)
        all = sorted_distinct
        && List.for_all
             (fun (s, e, d) ->
               let src = opt_if bs s and event = opt_if be e and dst = opt_if bd d in
               Db.edges db ?src ?event ?dst () = full_scan_filter ?src ?event ?dst all)
             (if triples = [] then [ (0, "e0", 0) ] else triples));
  ]

(* the registry-wide oracle: record real exploration edges for every
   protocol, then check all 8 patterns against the full scan *)
let registry_dbs =
  lazy
    (List.map
       (fun entry ->
         let db = Db.create () in
         let n = entry.Patterns_protocols.Registry.default_n in
         let rule =
           if entry.Patterns_protocols.Registry.name = "reliable-broadcast" then
             Patterns_protocols.Decision_rule.Broadcast 0
           else Patterns_protocols.Decision_rule.Unanimity
         in
         let (_ : Patterns_core.Classify.verdict) =
           Patterns_core.Classify.classify ~db ~max_failures:1 ~max_configs:1_200 ~rule
             ~n entry.Patterns_protocols.Registry.protocol
         in
         (entry.Patterns_protocols.Registry.name, db))
       Patterns_protocols.Registry.all)

let registry_oracle_test =
  let open QCheck2 in
  Test.make ~count:120
    ~name:"registry: every pattern over recorded explores = full-scan filter"
    Gen.(quad (int_bound 10_000) bool bool bool)
    (fun (pick, bs, be, bd) ->
      let dbs = Lazy.force registry_dbs in
      let _name, db = List.nth dbs (pick mod List.length dbs) in
      let all = Db.edges db () in
      all <> []
      &&
      let s, e, d = List.nth all (pick mod List.length all) in
      let src = opt_if bs s and event = opt_if be e and dst = opt_if bd d in
      Db.edges db ?src ?event ?dst () = full_scan_filter ?src ?event ?dst all)

let test_db_stats_and_cache () =
  let db = Db.create () in
  Db.add_edge db ~src:1 ~event:"x" ~dst:2;
  Db.add_edge db ~src:1 ~event:"x" ~dst:2;
  (* idempotent *)
  Db.add_edge db ~src:2 ~event:"y" ~dst:3;
  let s = Db.stats db in
  check Alcotest.int "distinct edges" 2 s.Db.edges;
  let q () = Db.edges db ~src:1 () in
  let r1 = q () in
  let r2 = q () in
  check Alcotest.bool "cached result identical" true (r1 = r2);
  let s = Db.stats db in
  check Alcotest.int "one scan for two identical queries" 1 s.Db.index_scans;
  check Alcotest.int "one hit" 1 s.Db.cache_hits;
  check Alcotest.int "one miss" 1 s.Db.cache_misses;
  (* a write invalidates the cache *)
  Db.add_edge db ~src:9 ~event:"z" ~dst:9;
  let _ = q () in
  check Alcotest.int "write invalidates" 2 (Db.stats db).Db.index_scans;
  check Alcotest.bool "mem_config present" true (Db.mem_config db 9);
  check Alcotest.bool "mem_config absent" false (Db.mem_config db 77)

let test_db_unknown_bound_values () =
  let db = Db.create () in
  Db.add_edge db ~src:1 ~event:"x" ~dst:2;
  check
    Alcotest.(list (triple int string int))
    "unknown src" [] (Db.edges db ~src:5 ());
  check
    Alcotest.(list (triple int string int))
    "unknown event" []
    (Db.edges db ~event:"nope" ())

(* ----- persistence ----- *)

let test_db_persistence_roundtrip () =
  let db = Db.create () in
  Db.add_edge db ~src:10 ~event:"alpha" ~dst:20;
  Db.add_edge db ~src:20 ~event:"beta" ~dst:30;
  Db.put_fact db ~kind:"cert" ~key:"k1"
    (Json.Obj [ ("crashes", Json.List [ Json.Int 1 ]) ]);
  (match Db.of_json (Db.to_json db) with
  | Error e -> Alcotest.fail e
  | Ok db' ->
    check
      Alcotest.(list (triple int string int))
      "edges survive" (Db.edges db ()) (Db.edges db' ());
    check Alcotest.bool "facts survive" true
      (Db.get_fact db' ~kind:"cert" ~key:"k1" = Db.get_fact db ~kind:"cert" ~key:"k1"));
  let file = Filename.temp_file "patterns-db" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Db.save db file;
      match Db.load file with
      | Error e -> Alcotest.fail e
      | Ok db' ->
        check
          Alcotest.(list (triple int string int))
          "edges survive the file" (Db.edges db ()) (Db.edges db' ());
        check Alcotest.int "edge count survives" (Db.stats db).Db.edges
          (Db.stats db').Db.edges)

let test_db_load_missing_and_malformed () =
  (match Db.load "/nonexistent/patterns-db.json" with
  | Ok db -> check Alcotest.int "missing file is empty" 0 (Db.stats db).Db.edges
  | Error e -> Alcotest.fail e);
  let file = Filename.temp_file "patterns-db" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc "{\"schema\": \"wrong/9\"}";
      close_out oc;
      match Db.load file with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "foreign schema accepted")

(* ----- Query combinators ----- *)

let diamond () =
  (* 1 -> 2 -> 4, 1 -> 3 -> 4, plus an island 9 *)
  let db = Db.create () in
  Db.add_edge db ~src:1 ~event:"a" ~dst:2;
  Db.add_edge db ~src:1 ~event:"b" ~dst:3;
  Db.add_edge db ~src:2 ~event:"c" ~dst:4;
  Db.add_edge db ~src:3 ~event:"d" ~dst:4;
  Db.add_edge db ~src:9 ~event:"e" ~dst:9;
  db

let test_query_graph_helpers () =
  let db = diamond () in
  check
    Alcotest.(list (pair string int))
    "successors sorted" [ ("a", 2); ("b", 3) ] (Query.successors db 1);
  check
    Alcotest.(list (pair int string))
    "predecessors sorted" [ (2, "c"); (3, "d") ] (Query.predecessors db 4);
  check Alcotest.(list int) "reachable includes self" [ 1; 2; 3; 4 ] (Query.reachable db 1);
  check Alcotest.(list int) "island reaches itself" [ 9 ] (Query.reachable db 9);
  check Alcotest.(list int) "unknown config reaches nothing" [] (Query.reachable db 42);
  (match Query.path db ~src:1 ~dst:4 with
  | Some [ e1; e2 ] ->
    (* breadth-first with sorted successors: the canonical witness
       goes through 2 *)
    check Alcotest.int "hop 1" 2 e1.Query.dst;
    check Alcotest.int "hop 2" 4 e2.Query.dst
  | _ -> Alcotest.fail "no 2-hop path");
  (match Query.path db ~src:1 ~dst:1 with
  | Some [] -> ()
  | _ -> Alcotest.fail "src = dst must be the empty path");
  match Query.path db ~src:4 ~dst:1 with
  | None -> ()
  | Some _ -> Alcotest.fail "edges are directed"

let test_query_certs_touching () =
  let db = Db.create () in
  let cert_fact crashes =
    Json.Obj [ ("crashes", Json.List (List.map (fun p -> Json.Int p) crashes)) ]
  in
  Db.put_fact db ~kind:"cert" ~key:"c1" (cert_fact [ 0; 2 ]);
  Db.put_fact db ~kind:"cert" ~key:"c2" (cert_fact [ 1 ]);
  Db.put_fact db ~kind:"verdict" ~key:"v1" (cert_fact [ 0 ]);
  check Alcotest.int "touching 0" 1 (List.length (Query.certs_touching db 0));
  check Alcotest.int "touching 1" 1 (List.length (Query.certs_touching db 1));
  check Alcotest.int "touching 2" 1 (List.length (Query.certs_touching db 2));
  check Alcotest.int "touching 3" 0 (List.length (Query.certs_touching db 3));
  check Alcotest.(list string) "keys, not verdict facts" [ "c1" ]
    (List.map fst (Query.certs_touching db 0))

(* ----- zero-expansion replay over a recorded run ----- *)

let test_replay_from_db_zero_expansions () =
  let entry =
    match Patterns_protocols.Registry.find "fig3-chain-st" with
    | Some e -> e
    | None -> Alcotest.fail "registry lost fig3-chain-st"
  in
  let cert =
    match
      Patterns_adversary.Hunt.hunt ~max_failures:2 ~max_runs:1_000
        ~mode:Patterns_adversary.Hunt.Systematic ~property:Patterns_core.Audit.Agreement
        ~rule:Patterns_protocols.Decision_rule.Unanimity ~n:4 ~seed:0 entry
    with
    | Ok c -> c
    | Error tried -> Alcotest.failf "no violation in %d runs" tried
  in
  let module Replay = Patterns_adversary.Replay in
  let module Metrics = Patterns_search.Metrics in
  let baseline = Replay.replay cert in
  let db = Db.create () in
  (* first replay records: it plays the engine live *)
  let v1, m1 = Replay.replay_metrics ~db cert in
  check Alcotest.bool "recording replay reproduces" true (v1 = baseline);
  check Alcotest.int "recording replay plays live"
    (List.length cert.Patterns_adversary.Cert.script)
    m1.Metrics.states_expanded;
  check Alcotest.int "edges recorded"
    (List.length cert.Patterns_adversary.Cert.script)
    (Db.stats db).Db.edges;
  (* second replay answers from the index: zero kernel expansions *)
  let v2, m2 = Replay.replay_metrics ~db cert in
  check Alcotest.bool "db replay verdict identical" true (v2 = baseline);
  check Alcotest.int "zero expansions on the db path" 0 m2.Metrics.states_expanded;
  check Alcotest.int "zero budget on the db path" 0 m2.Metrics.budget_consumed;
  check Alcotest.bool "index scans did the work" true (m2.Metrics.db_index_scans > 0);
  (* shrinking over the same db is trajectory-identical to live *)
  let live = match Patterns_adversary.Shrink.shrink cert with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let cached = match Patterns_adversary.Shrink.shrink ~db cert with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  check Alcotest.bool "shrink result identical with db" true
    (live.Patterns_adversary.Shrink.cert = cached.Patterns_adversary.Shrink.cert);
  check Alcotest.int "shrink replay count identical with db"
    live.Patterns_adversary.Shrink.replays cached.Patterns_adversary.Shrink.replays

(* ----- classification verdicts from the fact store ----- *)

let test_classify_cached_verdict () =
  let entry =
    match Patterns_protocols.Registry.find "fig3-chain" with
    | Some e -> e
    | None -> Alcotest.fail "registry lost fig3-chain"
  in
  let db = Db.create () in
  let rule = Patterns_protocols.Decision_rule.Unanimity in
  let classify metrics =
    Patterns_core.Classify.classify ~metrics ~db ~rule ~n:3
      entry.Patterns_protocols.Registry.protocol
  in
  let m1 = ref Patterns_search.Metrics.zero in
  let v1 = classify m1 in
  check Alcotest.bool "first sweep expands" true
    (!m1.Patterns_search.Metrics.states_expanded > 0);
  let m2 = ref Patterns_search.Metrics.zero in
  let v2 = classify m2 in
  check Alcotest.bool "cached verdict identical" true (v1 = v2);
  check Alcotest.int "cached sweep expands nothing" 0
    !m2.Patterns_search.Metrics.states_expanded;
  check Alcotest.bool "db counters still reported" true
    (!m2.Patterns_search.Metrics.db_edges > 0)

(* ----- recorded edges are a function of the state space alone ----- *)

let test_recorded_edges_driver_invariant () =
  let entry =
    match Patterns_protocols.Registry.find "fig3-chain" with
    | Some e -> e
    | None -> Alcotest.fail "registry lost fig3-chain"
  in
  let rule = Patterns_protocols.Decision_rule.Unanimity in
  let record ~jobs ~par_mode =
    let db = Db.create () in
    ignore
      (Patterns_core.Classify.classify ~db ~rule ~jobs ~par_mode ~n:3
         entry.Patterns_protocols.Registry.protocol);
    Query.edges db ()
  in
  let reference = record ~jobs:1 ~par_mode:Patterns_search.Search.Async in
  check Alcotest.bool "sweep recorded edges" true (reference <> []);
  List.iter
    (fun (jobs, par_mode, label) ->
      check Alcotest.bool label true (record ~jobs ~par_mode = reference))
    [
      (4, Patterns_search.Search.Async, "async jobs=4 identical");
      (1, Patterns_search.Search.Layers, "layers jobs=1 identical");
      (4, Patterns_search.Search.Layers, "layers jobs=4 identical");
    ]

let () =
  Alcotest.run "db"
    [
      ( "dict",
        [
          Alcotest.test_case "dense ids" `Quick test_dict_dense_ids;
          Alcotest.test_case "encoding round-trip" `Quick test_dict_encoding_roundtrip;
        ] );
      ("dict properties", List.map QCheck_alcotest.to_alcotest dict_qcheck_tests);
      ("lru", [ Alcotest.test_case "eviction and counters" `Quick test_lru_eviction_and_counters ]);
      ( "index",
        [
          Alcotest.test_case "8-pattern selection table" `Quick test_index_selection_table;
          Alcotest.test_case "key decode" `Quick test_index_key_decode;
        ] );
      ("index properties", List.map QCheck_alcotest.to_alcotest index_qcheck_tests);
      ( "db",
        [
          Alcotest.test_case "stats and cache" `Quick test_db_stats_and_cache;
          Alcotest.test_case "unknown bound values" `Quick test_db_unknown_bound_values;
          Alcotest.test_case "persistence round-trip" `Quick test_db_persistence_roundtrip;
          Alcotest.test_case "missing and malformed files" `Quick
            test_db_load_missing_and_malformed;
        ] );
      ("db properties", List.map QCheck_alcotest.to_alcotest db_oracle_qcheck_tests);
      ("registry oracle", [ QCheck_alcotest.to_alcotest registry_oracle_test ]);
      ( "query",
        [
          Alcotest.test_case "graph helpers" `Quick test_query_graph_helpers;
          Alcotest.test_case "certs touching" `Quick test_query_certs_touching;
        ] );
      ( "consumers",
        [
          Alcotest.test_case "replay from db: zero expansions" `Slow
            test_replay_from_db_zero_expansions;
          Alcotest.test_case "classify verdict from the fact store" `Slow
            test_classify_cached_verdict;
          Alcotest.test_case "recorded edges driver-invariant" `Slow
            test_recorded_edges_driver_invariant;
        ] );
    ]
