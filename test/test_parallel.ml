(* The parallel sweeps must be bit-identical to the sequential ones:
   input vectors partition the reachable configuration space, shards
   are merged in vector order, and the hunt's winner is the smallest
   violating run index.  These tests pin that contract for every
   protocol in the registry, and check the hashed visited sets against
   the old balanced-tree membership on random walks. *)

open Patterns_sim
open Patterns_core
open Patterns_stdx

let jobs_values = [ 2; 4 ]

(* Small n keeps the sweep fast; fixed-n protocols use their own n.
   Budgets are capped — truncation is deterministic per shard, so
   capped sweeps must still agree across jobs values. *)
let pick_n (module P : Protocol.S) ~default_n = if P.valid_n 3 then 3 else default_n

(* The exhaustive-visited oracles (budget never hit, serial reference
   BFS) need a reachable space they can actually exhaust.  Ben-Or's is
   finite but combinatorially explosive even at n = 3 — three rounds
   of two broadcasts per processor, all interleavings — so it stays
   out of the uncapped sweeps; every budget-capped sweep above still
   covers it. *)
let exhaustable =
  List.filter
    (fun e -> e.Patterns_protocols.Registry.name <> "ben-or")
    Patterns_protocols.Registry.all

let rule_of entry =
  let open Patterns_protocols in
  if entry.Registry.name = "ben-or" then Decision_rule.Any_input
  else if entry.Registry.name = "reliable-broadcast" then Decision_rule.Broadcast 0
  else if entry.Registry.name = "termination" then Decision_rule.Threshold 1
  else if entry.Registry.name = "voting-star-thr3-5" then Decision_rule.Threshold 3
  else if entry.Registry.name = "voting-star-subset-5" then Decision_rule.Subset [ 0; 1 ]
  else Decision_rule.Unanimity

(* ----- Domain_pool ----- *)

let test_pool_map_order () =
  Domain_pool.with_pool ~jobs:3 (fun pool ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "map preserves order" (List.map (fun x -> x * x) xs)
        (Domain_pool.map pool (fun x -> x * x) xs));
  Domain_pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check (list int)) "inline path" [ 2; 4 ] (Domain_pool.map pool (fun x -> 2 * x) [ 1; 2 ]))

let test_pool_fold () =
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 50 (fun i -> i + 1) in
      Alcotest.(check int) "fold merges in order" (50 * 51 / 2)
        (Domain_pool.fold pool ~f:Fun.id ~merge:( + ) ~init:0 xs);
      (* merge order matters for non-commutative merges *)
      Alcotest.(check string) "left-to-right merge" "abcde"
        (Domain_pool.fold pool ~f:(String.make 1) ~merge:( ^ ) ~init:""
           [ 'a'; 'b'; 'c'; 'd'; 'e' ]))

exception Boom of int

let test_pool_exn () =
  Domain_pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.check_raises "first error by input index" (Boom 2) (fun () ->
          ignore
            (Domain_pool.map pool
               (fun x -> if x >= 2 then raise (Boom x) else x)
               [ 0; 1; 2; 3; 4 ]));
      (* the pool survives a failed batch *)
      Alcotest.(check (list int)) "pool reusable after error" [ 1; 2; 3 ]
        (Domain_pool.map pool Fun.id [ 1; 2; 3 ]))

(* ----- scheme: jobs-invariance over the whole registry ----- *)

let test_scheme_jobs_invariant () =
  List.iter
    (fun entry ->
      let (module P : Protocol.S) = entry.Patterns_protocols.Registry.protocol in
      let n = pick_n (module P) ~default_n:entry.Patterns_protocols.Registry.default_n in
      let module S = Patterns_pattern.Scheme.Make (P) in
      (* truncation-sensitive (the budget cuts most registry sweeps
         short), so pin the layered driver: only its truncation prefix
         is jobs-invariant.  The async driver's exhaustive-sweep
         invariance is tested separately below. *)
      let run jobs =
        S.scheme ~max_configs:2_000 ~jobs ~par_mode:Patterns_search.Search.Layers ~n ()
      in
      let pats1, stats1 = run 1 in
      List.iter
        (fun jobs ->
          let pats, stats = run jobs in
          Alcotest.(check bool)
            (Printf.sprintf "%s: scheme jobs=%d = jobs=1" P.name jobs)
            true
            (Patterns_pattern.Pattern.Set.equal pats1 pats);
          Alcotest.(check int)
            (Printf.sprintf "%s: visited jobs=%d" P.name jobs)
            stats1.Patterns_pattern.Scheme.configs_visited
            stats.Patterns_pattern.Scheme.configs_visited;
          Alcotest.(check int)
            (Printf.sprintf "%s: terminal jobs=%d" P.name jobs)
            stats1.Patterns_pattern.Scheme.terminal_configs
            stats.Patterns_pattern.Scheme.terminal_configs;
          Alcotest.(check bool)
            (Printf.sprintf "%s: truncated jobs=%d" P.name jobs)
            stats1.Patterns_pattern.Scheme.truncated stats.Patterns_pattern.Scheme.truncated)
        jobs_values)
    Patterns_protocols.Registry.all

(* ----- explore / classify: jobs-invariance over the whole registry ----- *)

let test_classify_jobs_invariant () =
  List.iter
    (fun entry ->
      let (module P : Protocol.S) = entry.Patterns_protocols.Registry.protocol in
      let n = pick_n (module P) ~default_n:entry.Patterns_protocols.Registry.default_n in
      let rule = rule_of entry in
      (* truncation-sensitive budget: pin the layered driver (see
         test_scheme_jobs_invariant) *)
      let run jobs =
        Classify.classify ~max_failures:1 ~max_configs:20_000 ~jobs
          ~par_mode:Patterns_search.Search.Layers ~rule ~n
          entry.Patterns_protocols.Registry.protocol
      in
      let v1 = run 1 in
      List.iter
        (fun jobs ->
          let v = run jobs in
          Alcotest.(check bool)
            (Printf.sprintf "%s: verdict jobs=%d = jobs=1" P.name jobs)
            true
            (Stdlib.compare v1 v = 0))
        jobs_values)
    Patterns_protocols.Registry.all

(* ----- async scheme / classify: exhaustive sweeps match layers ----- *)

let test_scheme_async_invariant () =
  (* an exhaustive sweep (budget never hit) must produce identical
     pattern sets and deterministic counters under both drivers, for
     every jobs value *)
  let (module P : Protocol.S) = Patterns_protocols.Perverse_proto.fig4 in
  let module S = Patterns_pattern.Scheme.Make (P) in
  let run ~jobs ~par_mode = S.scheme ~jobs ~par_mode ~n:4 () in
  let pats1, stats1 = run ~jobs:1 ~par_mode:Patterns_search.Search.Layers in
  Alcotest.(check bool) "fig4 sweep is exhaustive" false
    stats1.Patterns_pattern.Scheme.truncated;
  List.iter
    (fun jobs ->
      let pats, stats = run ~jobs ~par_mode:Patterns_search.Search.Async in
      Alcotest.(check bool)
        (Printf.sprintf "fig4 scheme async jobs=%d = layers jobs=1" jobs)
        true
        (Patterns_pattern.Pattern.Set.equal pats1 pats);
      Alcotest.(check int)
        (Printf.sprintf "fig4 visited async jobs=%d" jobs)
        stats1.Patterns_pattern.Scheme.configs_visited
        stats.Patterns_pattern.Scheme.configs_visited;
      Alcotest.(check int)
        (Printf.sprintf "fig4 terminal async jobs=%d" jobs)
        stats1.Patterns_pattern.Scheme.terminal_configs
        stats.Patterns_pattern.Scheme.terminal_configs)
    [ 1; 2; 4 ]

let test_classify_async_invariant () =
  (* fig3-chain at n=3 exhausts well inside the default budget, so the
     async verdict must equal the layered one bit for bit *)
  let run ~jobs ~par_mode =
    Classify.classify ~max_failures:1 ~jobs ~par_mode
      ~rule:Patterns_protocols.Decision_rule.Unanimity ~n:3
      Patterns_protocols.Chain_proto.fig3
  in
  let v1 = run ~jobs:1 ~par_mode:Patterns_search.Search.Layers in
  Alcotest.(check bool) "fig3 classify is exhaustive" false v1.Classify.truncated;
  List.iter
    (fun jobs ->
      let v = run ~jobs ~par_mode:Patterns_search.Search.Async in
      Alcotest.(check bool)
        (Printf.sprintf "fig3 verdict async jobs=%d = layers jobs=1" jobs)
        true
        (Stdlib.compare v1 v = 0))
    [ 1; 2; 4 ]

(* ----- run_par / run_par_async: the kernel drivers themselves ----- *)

(* Failure-free expansion of a protocol's configurations, with the
   expanded states' fingerprints collected in the observation
   accumulator — for an exhausted search the multiset of expanded
   fingerprints IS the visited set. *)
let kernel_visited ?(par_mode = Patterns_search.Search.Layers) (module P : Protocol.S) ~n
    ~inputs ~jobs ~par_threshold ~budget =
  let module E = Engine.Make (P) in
  let module Pr = struct
    type state = E.config

    let compare = E.compare_config
    let fingerprint = E.fingerprint
    let expand c = List.rev_map (fun a -> fst (E.apply_exn ~step:0 c a)) (E.applicable c)
  end in
  let module K = Patterns_search.Search.Make (Pr) in
  let expand =
    {
      K.empty = (fun () -> ref []);
      merge =
        (fun a b ->
          a := !b @ !a;
          a);
      expand =
        (fun acc c ->
          acc := E.fingerprint c :: !acc;
          Pr.expand c);
    }
  in
  Domain_pool.with_pool ~jobs (fun pool ->
      let outcome, fps, m =
        match par_mode with
        | Patterns_search.Search.Layers ->
          K.run_par ~pool ~par_threshold ~budget ~expand ~root:(E.init ~n ~inputs) ()
        | Patterns_search.Search.Async ->
          K.run_par_async ~pool ~budget ~expand ~root:(E.init ~n ~inputs) ()
      in
      ( (match outcome with
        | Patterns_search.Search.Exhausted -> "exhausted"
        | Patterns_search.Search.Truncated (Budget_exhausted { consumed; _ }) ->
          Printf.sprintf "truncated:%d" consumed
        | Patterns_search.Search.Truncated r ->
          "truncated:" ^ Patterns_search.Search.reason_string r
        | Patterns_search.Search.Goal_found _ -> "goal"),
        List.sort Int.compare !fps,
        m ))

(* Independent oracle: a plain worklist reachability fold with a
   balanced-set visited store — no fingerprints, no sharding. *)
let reference_visited (module P : Protocol.S) ~n ~inputs =
  let module E = Engine.Make (P) in
  let module S = Set.Make (struct
    type t = E.config

    let compare = E.compare_config
  end) in
  let expand c = List.rev_map (fun a -> fst (E.apply_exn ~step:0 c a)) (E.applicable c) in
  let rec go visited = function
    | [] -> visited
    | c :: rest ->
      let fresh = List.filter (fun s -> not (S.mem s visited)) (expand c) in
      go (List.fold_left (fun v s -> S.add s v) visited fresh) (fresh @ rest)
  in
  let root = E.init ~n ~inputs in
  let visited = go (S.add root S.empty) [ root ] in
  (List.sort Int.compare (List.map E.fingerprint (S.elements visited)), S.cardinal visited)

let test_run_par_matches_reference () =
  (* whole registry, both drivers, both sides of the crossover
     threshold, jobs up to 8: each parallel driver visits exactly the
     serial reachable set — same cardinality, same fingerprint
     multiset *)
  List.iter
    (fun entry ->
      let (module P : Protocol.S) = entry.Patterns_protocols.Registry.protocol in
      let n = pick_n (module P) ~default_n:entry.Patterns_protocols.Registry.default_n in
      let inputs = List.init n (fun i -> i mod 2 = 0) in
      let ref_fps, ref_card = reference_visited (module P) ~n ~inputs in
      List.iter
        (fun (par_mode, jobs, par_threshold) ->
          let outcome, fps, m =
            kernel_visited ~par_mode (module P) ~n ~inputs ~jobs ~par_threshold
              ~budget:max_int
          in
          let label fmt =
            Printf.sprintf "%s %s jobs=%d thr=%d: %s" P.name
              (Patterns_search.Search.par_mode_string par_mode)
              jobs par_threshold fmt
          in
          Alcotest.(check string) (label "outcome") "exhausted" outcome;
          Alcotest.(check int) (label "cardinality") ref_card (List.length fps);
          Alcotest.(check (list int)) (label "fingerprint multiset") ref_fps fps;
          Alcotest.(check int) (label "states_expanded") ref_card
            m.Patterns_search.Metrics.states_expanded)
        Patterns_search.Search.
          [
            (Layers, 1, 1);
            (Layers, 1, max_int);
            (Layers, 2, 1);
            (Layers, 2, max_int);
            (Layers, 4, 1);
            (Layers, 4, max_int);
            (Layers, 8, 1);
            (Async, 1, 1);
            (Async, 2, 1);
            (Async, 4, 1);
            (Async, 8, 1);
          ])
    exhaustable

let test_run_par_truncation_invariant () =
  (* a budget cut mid-search stops at the same deterministic prefix
     for every jobs and threshold value *)
  let run (jobs, par_threshold) =
    kernel_visited Patterns_protocols.Chain_proto.fig3 ~n:3
      ~inputs:[ true; true; true ] ~jobs ~par_threshold ~budget:7
  in
  let outcome1, fps1, m1 = run (1, 1) in
  Alcotest.(check string) "budget consumed exactly" "truncated:7" outcome1;
  List.iter
    (fun (jobs, thr) ->
      let outcome, fps, m = run (jobs, thr) in
      let label fmt = Printf.sprintf "jobs=%d thr=%d: %s" jobs thr fmt in
      Alcotest.(check string) (label "outcome") outcome1 outcome;
      Alcotest.(check (list int)) (label "expanded prefix") fps1 fps;
      Alcotest.(check int) (label "dedup_hits") m1.Patterns_search.Metrics.dedup_hits
        m.Patterns_search.Metrics.dedup_hits;
      Alcotest.(check int) (label "frontier_peak") m1.Patterns_search.Metrics.frontier_peak
        m.Patterns_search.Metrics.frontier_peak;
      Alcotest.(check int) (label "layers") m1.Patterns_search.Metrics.layers
        m.Patterns_search.Metrics.layers)
    [ (1, max_int); (2, 1); (4, 1); (4, max_int); (8, 1) ];
  (* the async driver consumes the budget exactly too — its ticket
     drain is deterministic even though the visited subset is
     schedule-dependent *)
  List.iter
    (fun jobs ->
      let outcome, fps, _ =
        kernel_visited ~par_mode:Patterns_search.Search.Async
          Patterns_protocols.Chain_proto.fig3 ~n:3 ~inputs:[ true; true; true ] ~jobs
          ~par_threshold:1 ~budget:7
      in
      Alcotest.(check string)
        (Printf.sprintf "async jobs=%d: budget consumed exactly" jobs)
        "truncated:7" outcome;
      Alcotest.(check int)
        (Printf.sprintf "async jobs=%d: expanded = budget" jobs)
        7 (List.length fps))
    [ 1; 2; 4 ]

let test_scheme_par_threshold_invariant () =
  (* forcing every layer parallel and forcing none must not change a
     single bit of the result *)
  let (module P : Protocol.S) = Patterns_protocols.Perverse_proto.fig4 in
  let module S = Patterns_pattern.Scheme.Make (P) in
  let run ~jobs ~par_threshold = S.scheme ~jobs ~par_threshold ~n:4 () in
  let pats1, stats1 = run ~jobs:1 ~par_threshold:1 in
  List.iter
    (fun (jobs, par_threshold) ->
      let pats, stats = run ~jobs ~par_threshold in
      Alcotest.(check bool)
        (Printf.sprintf "fig4 scheme jobs=%d thr=%d" jobs par_threshold)
        true
        (Patterns_pattern.Pattern.Set.equal pats1 pats
        && stats1.Patterns_pattern.Scheme.configs_visited
           = stats.Patterns_pattern.Scheme.configs_visited
        && stats1.Patterns_pattern.Scheme.terminal_configs
           = stats.Patterns_pattern.Scheme.terminal_configs))
    [ (1, max_int); (2, 1); (2, max_int); (4, 1); (8, 4) ]

(* ----- hunt: the winner is the smallest violating run index ----- *)

let test_hunt_jobs_invariant () =
  let run jobs =
    Audit.hunt ~max_failures:2 ~max_runs:2_000 ~jobs ~property:Audit.TC
      ~rule:Patterns_protocols.Decision_rule.Unanimity ~n:3 ~seed:1984
      Patterns_protocols.Two_phase_commit.default
  in
  let r1 = run 1 in
  Alcotest.(check bool) "hunt finds the 2pc violation" true (Result.is_ok r1);
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "hunt jobs=%d identical" jobs)
        true (run jobs = r1))
    jobs_values;
  (* a clean hunt reports the same run budget for every jobs value *)
  let clean jobs =
    Audit.hunt ~max_failures:1 ~max_runs:200 ~jobs ~property:Audit.Agreement
      ~rule:Patterns_protocols.Decision_rule.Unanimity ~n:3 ~seed:7
      Patterns_protocols.Two_phase_commit.default
  in
  Alcotest.(check bool) "clean hunt jobs=4 identical" true (clean 1 = clean 4)

(* ----- qcheck: hashed visited set vs the old balanced tree ----- *)

module P_chain = (val Patterns_protocols.Chain_proto.fig3 : Protocol.S)
module E = Engine.Make (P_chain)

module Cset = Set.Make (struct
  type t = E.config

  let compare = E.compare_config
end)

module Ctbl = Hashtbl.Make (struct
  type t = E.config

  let equal a b = E.compare_config a b = 0
  let hash = E.hash_config
end)

(* A random walk through chain-protocol configurations, failure steps
   included, collecting every configuration along the way. *)
let walk ~seed ~n ~steps =
  let prng = Prng.create ~seed in
  let inputs = List.init n (fun _ -> Prng.bool prng) in
  let rec go acc cfg k =
    if k = 0 then acc
    else
      let acts =
        E.applicable cfg @ (if Prng.int prng ~bound:4 = 0 then E.failure_actions cfg else [])
      in
      match acts with
      | [] -> acc
      | acts ->
        let a = List.nth acts (Prng.int prng ~bound:(List.length acts)) in
        let cfg', _ = E.apply_exn ~step:(steps - k) cfg a in
        go (cfg' :: acc) cfg' (k - 1)
  in
  let c0 = E.init ~n ~inputs in
  go [ c0 ] c0 steps

let qcheck_tests =
  let open QCheck2 in
  [
    Test.make ~name:"run_par visits the serial visited set (registry)" ~count:40
      Gen.(
        tup5
          (int_bound (List.length exhaustable - 1))
          (int_bound 1000)
          (oneofl [ 1; 2; 4; 8 ])
          (oneofl [ 1; 4; max_int ])
          (oneofl Patterns_search.Search.[ Layers; Async ]))
      (fun (idx, seed, jobs, par_threshold, par_mode) ->
        let entry = List.nth exhaustable idx in
        let (module P : Protocol.S) = entry.Patterns_protocols.Registry.protocol in
        let n = pick_n (module P) ~default_n:entry.Patterns_protocols.Registry.default_n in
        let prng = Prng.create ~seed in
        let inputs = List.init n (fun _ -> Prng.bool prng) in
        let ref_fps, ref_card = reference_visited (module P) ~n ~inputs in
        let outcome, fps, m =
          kernel_visited ~par_mode (module P) ~n ~inputs ~jobs ~par_threshold
            ~budget:max_int
        in
        outcome = "exhausted" && List.length fps = ref_card && fps = ref_fps
        && m.Patterns_search.Metrics.states_expanded = ref_card);
    Test.make ~name:"hash_config is compare_config-consistent" ~count:60
      Gen.(pair (int_bound 100_000) (int_bound 100_000))
      (fun (s1, s2) ->
        let pool = walk ~seed:s1 ~n:3 ~steps:30 @ walk ~seed:s2 ~n:3 ~steps:30 in
        List.for_all
          (fun a ->
            List.for_all
              (fun b -> E.compare_config a b <> 0 || E.hash_config a = E.hash_config b)
              pool)
          pool);
    Test.make ~name:"hashtable visited set = Set.Make visited set" ~count:60
      Gen.(pair (int_bound 100_000) (int_bound 100_000))
      (fun (s1, s2) ->
        let inserted = walk ~seed:s1 ~n:3 ~steps:40 in
        let probes = walk ~seed:s2 ~n:3 ~steps:40 in
        let set = Cset.of_list inserted in
        let tbl = Ctbl.create 64 in
        List.iter (fun c -> Ctbl.replace tbl c ()) inserted;
        List.for_all (fun c -> Cset.mem c set = Ctbl.mem tbl c) (inserted @ probes));
    Test.make ~name:"hash_behavioral is compare_behavioral-consistent" ~count:40
      Gen.(int_bound 100_000)
      (fun s ->
        let pool = walk ~seed:s ~n:3 ~steps:40 in
        List.for_all
          (fun a ->
            List.for_all
              (fun b ->
                E.compare_behavioral a b <> 0 || E.hash_behavioral a = E.hash_behavioral b)
              pool)
          pool);
  ]

let () =
  Alcotest.run "parallel"
    [
      ( "domain_pool",
        [
          Alcotest.test_case "map order" `Quick test_pool_map_order;
          Alcotest.test_case "fold merge" `Quick test_pool_fold;
          Alcotest.test_case "exceptions" `Quick test_pool_exn;
        ] );
      ( "jobs invariance",
        [
          Alcotest.test_case "scheme, whole registry" `Quick test_scheme_jobs_invariant;
          Alcotest.test_case "classify, whole registry" `Slow test_classify_jobs_invariant;
          Alcotest.test_case "scheme, async exhaustive" `Quick test_scheme_async_invariant;
          Alcotest.test_case "classify, async exhaustive" `Quick
            test_classify_async_invariant;
          Alcotest.test_case "hunt" `Quick test_hunt_jobs_invariant;
        ] );
      ( "run_par",
        [
          Alcotest.test_case "matches reference, whole registry" `Quick
            test_run_par_matches_reference;
          Alcotest.test_case "truncation invariant" `Quick test_run_par_truncation_invariant;
          Alcotest.test_case "scheme par-threshold invariant" `Quick
            test_scheme_par_threshold_invariant;
        ] );
      ("visited sets", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
