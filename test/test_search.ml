(* Unit tests for the instrumented search kernel: strategies, budget
   truncation, goals, pruning, dedup accounting, deterministic
   sharding, batched goal search and the chain scan. *)

open Patterns_search

let check = Alcotest.check

(* A tiny synthetic graph on ints: successors of [x] are given by a
   table, so tests control branching, sharing and depth exactly. *)
module Graph (G : sig
  val succs : int -> int list
end) =
struct
  include Search.Make (struct
    type state = int

    let compare = Int.compare
    let fingerprint = Patterns_stdx.Fingerprint.of_int
    let expand = G.succs
  end)
end

(* a diamond with a tail: 0 -> {1, 2}, 1 -> 3, 2 -> 3, 3 -> 4 *)
module Diamond = Graph (struct
  let succs = function
    | 0 -> [ 1; 2 ]
    | 1 -> [ 3 ]
    | 2 -> [ 3 ]
    | 3 -> [ 4 ]
    | _ -> []
end)

let record_order strategy =
  let seen = ref [] in
  let module G = Graph (struct
    let succs x =
      seen := x :: !seen;
      match x with 0 -> [ 1; 2 ] | 1 -> [ 3; 4 ] | 2 -> [ 5; 6 ] | _ -> []
  end) in
  let outcome, _ = G.run ~strategy:(match strategy with `Bfs -> G.Bfs | `Dfs -> G.Dfs) ~root:0 () in
  (match outcome with Search.Exhausted -> () | _ -> Alcotest.fail "expected exhausted");
  List.rev !seen

let test_dfs_order () =
  (* DFS is preorder in expand's order *)
  check (Alcotest.list Alcotest.int) "dfs preorder" [ 0; 1; 3; 4; 2; 5; 6 ] (record_order `Dfs)

let test_bfs_order () =
  check (Alcotest.list Alcotest.int) "bfs levels" [ 0; 1; 2; 3; 4; 5; 6 ] (record_order `Bfs)

let test_priority_order () =
  let seen = ref [] in
  let module G = Graph (struct
    let succs x =
      seen := x :: !seen;
      match x with 0 -> [ 9; 2; 7 ] | _ -> []
  end) in
  let _ = G.run ~strategy:(G.Priority Int.compare) ~root:0 () in
  check (Alcotest.list Alcotest.int) "least state first" [ 0; 2; 7; 9 ] (List.rev !seen)

let test_dedup_hits () =
  let outcome, m = Diamond.run ~root:0 () in
  (match outcome with Search.Exhausted -> () | _ -> Alcotest.fail "expected exhausted");
  check Alcotest.int "expanded each node once" 5 m.Metrics.states_expanded;
  (* node 3 is reachable twice: one of the pushes is answered by the
     visited set *)
  check Alcotest.int "one dedup hit" 1 m.Metrics.dedup_hits;
  check Alcotest.int "budget consumed = expanded" m.Metrics.states_expanded
    m.Metrics.budget_consumed

let test_goal_stops () =
  let expanded_after_goal = ref false in
  let module G = Graph (struct
    let succs x =
      if x = 3 then expanded_after_goal := true;
      match x with 0 -> [ 1 ] | 1 -> [ 2 ] | 2 -> [ 3 ] | _ -> []
  end) in
  let outcome, m = G.run ~is_goal:(fun x -> x = 3) ~root:0 () in
  (match outcome with
  | Search.Goal_found 3 -> ()
  | _ -> Alcotest.fail "expected Goal_found 3");
  Alcotest.(check bool) "goal tested before expansion" false !expanded_after_goal;
  check Alcotest.int "goal counted as visited" 4 m.Metrics.states_expanded;
  Alcotest.(check string) "outcome kind" "goal_found"
    (Metrics.outcome_string m.Metrics.outcome)

let test_budget_truncates () =
  let module G = Graph (struct
    let succs x = [ (2 * x) + 1; (2 * x) + 2 ] (* infinite binary tree *)
  end) in
  let outcome, m = G.run ~budget:10 ~root:0 () in
  (match outcome with
  | Search.Truncated (Search.Budget_exhausted { budget = 10; consumed = 10 }) -> ()
  | _ -> Alcotest.fail "expected Truncated at 10");
  check Alcotest.int "expanded = budget" 10 m.Metrics.states_expanded;
  check Alcotest.int "truncated root counted" 1 m.Metrics.truncated_roots;
  Alcotest.(check bool) "truncated predicate" true (Search.truncated outcome)

let test_deadline_truncates () =
  (* a zero deadline fires at the first pop: no hang on an infinite
     graph, one metrics hit, the reason carries the elapsed time *)
  let module G = Graph (struct
    let succs x = [ (2 * x) + 1; (2 * x) + 2 ]
  end) in
  let outcome, m = G.run ~deadline:0.0 ~root:0 () in
  (match outcome with
  | Search.Truncated (Search.Deadline_exceeded { deadline; elapsed }) ->
    Alcotest.(check (float 1e-9)) "deadline recorded" 0.0 deadline;
    Alcotest.(check bool) "elapsed nonnegative" true (elapsed >= 0.0)
  | _ -> Alcotest.fail "expected Truncated (Deadline_exceeded _)");
  check Alcotest.int "deadline hit recorded" 1 m.Metrics.deadline_hits;
  check Alcotest.int "nothing expanded" 0 m.Metrics.states_expanded

let test_max_live_truncates () =
  let module G = Graph (struct
    let succs x = [ (2 * x) + 1; (2 * x) + 2 ]
  end) in
  let outcome, m = G.run ~max_live:5 ~root:0 () in
  (match outcome with
  | Search.Truncated (Search.Live_limit_exceeded { limit = 5; live }) ->
    Alcotest.(check bool) "live over the limit" true (live > 5)
  | _ -> Alcotest.fail "expected Truncated (Live_limit_exceeded _)");
  check Alcotest.int "live-limit hit recorded" 1 m.Metrics.live_limit_hits;
  (* a generous limit on a finite graph never fires *)
  let outcome, m = Diamond.run ~max_live:1_000 ~root:0 () in
  (match outcome with Search.Exhausted -> () | _ -> Alcotest.fail "expected exhausted");
  check Alcotest.int "no hit on a finite graph" 0 m.Metrics.live_limit_hits

let test_find_first_deadline () =
  (* deadline 0 stops before any batch: Error 0 and the metrics say
     both truncated and deadline-hit *)
  let metrics = ref Metrics.zero in
  (match
     Search.find_first ~metrics ~jobs:2 ~deadline:0.0 ~max_index:1_000_000
       ~f:(fun _ -> None) ()
   with
  | Error 0 -> ()
  | Error k -> Alcotest.failf "expected Error 0, got Error %d" k
  | Ok _ -> Alcotest.fail "expected no goal");
  check Alcotest.int "deadline hit recorded" 1 !metrics.Metrics.deadline_hits;
  Alcotest.(check string) "outcome is truncated" "truncated"
    (Metrics.outcome_string !metrics.Metrics.outcome)

let test_prune () =
  let module G = Graph (struct
    let succs x = if x >= 4 then [] else [ x + 1; x + 10 ]
  end) in
  let outcome, m = G.run ~prune:(fun x -> x >= 10) ~root:0 () in
  (match outcome with Search.Exhausted -> () | _ -> Alcotest.fail "expected exhausted");
  (* visits 0..4; the four reachable x+10 successors are pruned *)
  check Alcotest.int "expanded" 5 m.Metrics.states_expanded;
  check Alcotest.int "pruned" 4 m.Metrics.pruned

let test_shard_deterministic () =
  let search root =
    let module G = Graph (struct
      let succs x = if x >= root + 3 then [] else [ x + 1 ]
    end) in
    let outcome, m = G.run ~root () in
    ignore outcome;
    ([ (root, m.Metrics.states_expanded) ], m)
  in
  let run jobs =
    Search.shard ~jobs ~f:search ~merge:(fun acc r -> acc @ r) ~init:[] [ 10; 20; 30 ]
  in
  let r1, m1 = run 1 and r4, m4 = run 4 in
  check
    Alcotest.(list (pair int int))
    "payload merged in root order" [ (10, 4); (20, 4); (30, 4) ]
    r1;
  Alcotest.(check bool) "payload jobs-invariant" true (r1 = r4);
  check Alcotest.int "roots" 3 m1.Metrics.roots;
  check Alcotest.int "expanded summed" 12 m1.Metrics.states_expanded;
  check Alcotest.int "expanded jobs-invariant" m1.Metrics.states_expanded
    m4.Metrics.states_expanded;
  (* shard entries are retagged with their root index, in order *)
  check
    (Alcotest.list Alcotest.int)
    "shard tags" [ 0; 1; 2 ]
    (List.map (fun s -> s.Metrics.root) m1.Metrics.shards)

let test_find_first_smallest () =
  let f i = if i mod 7 = 0 then Some i else None in
  List.iter
    (fun jobs ->
      match Search.find_first ~jobs ~max_index:100 ~f () with
      | Ok 7 -> ()
      | Ok k -> Alcotest.failf "jobs=%d found %d, wanted 7" jobs k
      | Error _ -> Alcotest.failf "jobs=%d found nothing" jobs)
    [ 1; 2; 4 ];
  let metrics = ref Metrics.zero in
  (match Search.find_first ~metrics ~jobs:4 ~max_index:50 ~f:(fun _ -> None) () with
  | Error 50 -> ()
  | _ -> Alcotest.fail "expected Error 50");
  check Alcotest.int "all indices evaluated" 50 !metrics.Metrics.states_expanded;
  Alcotest.(check string) "no goal is a truncated search" "truncated"
    (Metrics.outcome_string !metrics.Metrics.outcome)

let test_scan () =
  let metrics = ref Metrics.zero in
  (match
     Search.Scan.first_error ~metrics ~len:10
       ~check:(fun i -> if i = 6 then Error i else Ok ())
       ()
   with
  | Error 6 -> ()
  | _ -> Alcotest.fail "expected Error 6");
  check Alcotest.int "stops at the error" 7 !metrics.Metrics.states_expanded;
  let m2 = ref Metrics.zero in
  (match Search.Scan.first_error ~metrics:m2 ~len:5 ~check:(fun _ -> Ok ()) () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "expected Ok");
  Alcotest.(check string) "clean scan is exhausted" "exhausted"
    (Metrics.outcome_string !m2.Metrics.outcome)

let test_metrics_merge_and_json () =
  let _, m1 = Diamond.run ~root:0 () in
  let m = Metrics.merge (Metrics.merge Metrics.zero m1) m1 in
  check Alcotest.int "merge sums" (2 * m1.Metrics.states_expanded) m.Metrics.states_expanded;
  check Alcotest.int "merge maxes peaks" m1.Metrics.frontier_peak m.Metrics.frontier_peak;
  let json = Metrics.to_json ~shards:false m in
  List.iter
    (fun key ->
      let needle = Printf.sprintf "\"%s\":" key in
      let found =
        let ls = String.length json and ln = String.length needle in
        let rec go i = i + ln <= ls && (String.sub json i ln = needle || go (i + 1)) in
        go 0
      in
      if not found then Alcotest.failf "missing %s in %s" key json)
    [ "schema"; "outcome"; "states_expanded"; "dedup_hits"; "frontier_peak"; "pruned";
      "fingerprint_probes"; "collision_fallbacks"; "intern_bindings"; "budget_consumed";
      "roots"; "truncated_roots" ]

(* The visited store never trusts a 64-bit match alone: with a
   deliberately colliding fingerprint, membership is still resolved by
   structural equality, and the collisions are counted. *)
let test_store_collisions () =
  let store =
    Search.Store.create ~equal:Int.equal
      ~fingerprint:(fun _ -> Patterns_stdx.Fingerprint.of_int 42)
      ()
  in
  Search.Store.add store 1;
  Search.Store.add store 2;
  Search.Store.add store 1;
  check Alcotest.int "distinct states stored" 2 (Search.Store.bindings store);
  Alcotest.(check bool) "member" true (Search.Store.mem store 1);
  Alcotest.(check bool) "colliding non-member" false (Search.Store.mem store 3);
  check Alcotest.int "probes counted" 2 (Search.Store.probes store);
  Alcotest.(check bool) "collisions counted" true
    (Search.Store.collision_fallbacks store > 0)

let test_store_no_false_negatives () =
  let store =
    Search.Store.create ~equal:Int.equal ~fingerprint:Patterns_stdx.Fingerprint.of_int ()
  in
  for i = 0 to 999 do
    Search.Store.add store i
  done;
  for i = 0 to 999 do
    if not (Search.Store.mem store i) then Alcotest.failf "lost %d" i
  done;
  check Alcotest.int "bindings" 1000 (Search.Store.bindings store);
  check Alcotest.int "no collisions on distinct ints" 0
    (Search.Store.collision_fallbacks store)

let () =
  Alcotest.run "search"
    [
      ( "kernel",
        [
          Alcotest.test_case "dfs order" `Quick test_dfs_order;
          Alcotest.test_case "bfs order" `Quick test_bfs_order;
          Alcotest.test_case "priority order" `Quick test_priority_order;
          Alcotest.test_case "dedup hits" `Quick test_dedup_hits;
          Alcotest.test_case "goal stops" `Quick test_goal_stops;
          Alcotest.test_case "budget truncates" `Quick test_budget_truncates;
          Alcotest.test_case "deadline truncates" `Quick test_deadline_truncates;
          Alcotest.test_case "max-live truncates" `Quick test_max_live_truncates;
          Alcotest.test_case "find_first deadline" `Quick test_find_first_deadline;
          Alcotest.test_case "prune" `Quick test_prune;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "shard deterministic" `Quick test_shard_deterministic;
          Alcotest.test_case "find_first smallest" `Quick test_find_first_smallest;
          Alcotest.test_case "scan" `Quick test_scan;
          Alcotest.test_case "metrics merge and json" `Quick test_metrics_merge_and_json;
        ] );
      ( "store",
        [
          Alcotest.test_case "collision fallbacks" `Quick test_store_collisions;
          Alcotest.test_case "no false negatives" `Quick test_store_no_false_negatives;
        ] );
    ]
