(* The incremental layer's single contract: answers computed through a
   base database — wholesale per-vector reuse, semi-naive widening of
   [max_failures], memoized failure-free prefixes in the systematic
   hunt — are bit-identical to the from-scratch answers, across the
   whole protocol registry, every jobs value and both parallel
   drivers.  These tests pin that contract, plus the determinism of
   the /8 counters and the inertness of [memo] on the random
   adversary's PRNG stream. *)

open Patterns_stdx
open Patterns_core
module Db = Patterns_db.Db

let check = Alcotest.check

(* the CLI's protocol -> decision-rule mapping, for registry-wide
   sweeps *)
let rule_of_registry entry =
  let open Patterns_protocols in
  if entry.Registry.name = "ben-or" then Decision_rule.Any_input
  else if entry.Registry.name = "reliable-broadcast" then Decision_rule.Broadcast 0
  else if entry.Registry.name = "termination" then Decision_rule.Threshold 1
  else if entry.Registry.name = "voting-star-thr3-5" then Decision_rule.Threshold 3
  else if entry.Registry.name = "voting-star-subset-5" then Decision_rule.Subset [ 0; 1 ]
  else Decision_rule.Unanimity

let entry_exn name =
  match Patterns_protocols.Registry.find name with
  | Some e -> e
  | None -> Alcotest.failf "registry lost %s" name

(* verdicts are scalar records (bools, ints, strings): structural
   equality is the bit-identity the contract promises *)
let check_verdict name (a : Classify.verdict) (b : Classify.verdict) =
  Alcotest.(check bool) name true (a = b)

(* ----- registry-wide widening oracle -----

   For every protocol: classify at max_failures 0 storing per-vector
   facts into a fresh base, then at max_failures 1 through the same
   base (semi-naive widening wherever the 0-failure vector completed
   untruncated, fresh fallback elsewhere), and compare both verdicts
   against from-scratch runs.  The budget cap keeps the big fixed-n
   protocols bounded; truncated vectors exercise the fallback path of
   the same oracle.

   The comparisons pin [~par_mode:Layers]: on protocols whose
   behavioural state space has convergence points between
   pattern-distinct paths (coop-2pc at one crash, for instance), the
   count statistics depend on which path's configuration becomes the
   behavioural-dedup representative — a visit-order property the two
   parallel drivers already disagreed on before the incremental layer
   existed.  The delta driver's FIFO closure reproduces the layered
   order, which is the deterministic, jobs-invariant one. *)

let test_registry_widening () =
  List.iter
    (fun entry ->
      let (module P : Patterns_sim.Protocol.S) =
        entry.Patterns_protocols.Registry.protocol
      in
      let n =
        if entry.Patterns_protocols.Registry.fixed_n then
          entry.Patterns_protocols.Registry.default_n
        else min entry.Patterns_protocols.Registry.default_n 3
      in
      let rule = rule_of_registry entry in
      let max_configs = 20_000 in
      let par_mode = Patterns_search.Search.Layers in
      let scratch mf =
        Classify.classify ~max_failures:mf ~max_configs ~par_mode ~rule ~n
          entry.Patterns_protocols.Registry.protocol
      in
      let s0 = scratch 0 and s1 = scratch 1 in
      let base = Db.create () in
      let incr mf =
        Classify.classify ~base ~max_failures:mf ~max_configs ~par_mode ~rule ~n
          entry.Patterns_protocols.Registry.protocol
      in
      check_verdict (P.name ^ " mf=0 through base") s0 (incr 0);
      check_verdict (P.name ^ " mf=1 widened") s1 (incr 1);
      (* a second query at mf=1 reuses the widened facts wholesale *)
      let metrics = ref Patterns_search.Metrics.zero in
      let v1' =
        Classify.classify ~metrics ~base ~max_failures:1 ~max_configs ~par_mode ~rule ~n
          entry.Patterns_protocols.Registry.protocol
      in
      check_verdict (P.name ^ " mf=1 wholesale") s1 v1')
    Patterns_protocols.Registry.all

(* ----- added input vectors -----

   Facts are per-vector, so growing the vector set reuses the old
   vectors wholesale and explores only the new ones. *)

let test_added_inputs () =
  let entry = entry_exn "fig3-chain" in
  let rule = rule_of_registry entry in
  let n = 3 in
  let all = Listx.all_bool_vectors n in
  let half = List.filteri (fun i _ -> i < List.length all / 2) all in
  let scratch =
    Classify.classify ~max_failures:1 ~inputs_choices:all ~rule ~n
      entry.Patterns_protocols.Registry.protocol
  in
  let base = Db.create () in
  let _seed : Classify.verdict =
    Classify.classify ~base ~max_failures:1 ~inputs_choices:half ~rule ~n
      entry.Patterns_protocols.Registry.protocol
  in
  let metrics = ref Patterns_search.Metrics.zero in
  let widened =
    Classify.classify ~metrics ~base ~max_failures:1 ~inputs_choices:all ~rule ~n
      entry.Patterns_protocols.Registry.protocol
  in
  check_verdict "half-then-all ≡ from-scratch" scratch widened;
  Alcotest.(check bool)
    "old vectors were reused" true
    (!metrics.Patterns_search.Metrics.delta_reused_edges > 0)

(* ----- budget gate -----

   A stored fact larger than the current per-vector budget must not be
   reused: the incremental run falls back to a fresh (truncating)
   search and reproduces the from-scratch truncated verdict.  The
   layered driver pins the truncation order. *)

let test_budget_gate () =
  let entry = entry_exn "fig3-chain" in
  let rule = rule_of_registry entry in
  let n = 3 in
  let base = Db.create () in
  let _big : Classify.verdict =
    Classify.classify ~base ~max_failures:1 ~rule ~n
      entry.Patterns_protocols.Registry.protocol
  in
  let small mf_opts =
    Classify.classify ?base:mf_opts ~max_failures:1 ~max_configs:8_000
      ~par_mode:Patterns_search.Search.Layers ~rule ~n
      entry.Patterns_protocols.Registry.protocol
  in
  let scratch = small None and through_base = small (Some base) in
  Alcotest.(check bool) "small budget truncates" true scratch.Classify.truncated;
  check_verdict "oversized facts are not reused" scratch through_base

(* ----- jobs and par-mode invariance of the widened path ----- *)

let test_matrix_invariance () =
  let entry = entry_exn "fig3-chain" in
  let rule = rule_of_registry entry in
  let n = 3 in
  let scratch =
    Classify.classify ~max_failures:2 ~rule ~n entry.Patterns_protocols.Registry.protocol
  in
  let combos =
    [
      (1, Patterns_search.Search.Async);
      (4, Patterns_search.Search.Async);
      (1, Patterns_search.Search.Layers);
      (4, Patterns_search.Search.Layers);
    ]
  in
  let counters =
    List.map
      (fun (jobs, par_mode) ->
        let base = Db.create () in
        let _seed : Classify.verdict =
          Classify.classify ~base ~max_failures:1 ~jobs ~par_mode ~rule ~n
            entry.Patterns_protocols.Registry.protocol
        in
        let metrics = ref Patterns_search.Metrics.zero in
        let widened =
          Classify.classify ~metrics ~base ~max_failures:2 ~jobs ~par_mode ~rule ~n
            entry.Patterns_protocols.Registry.protocol
        in
        check_verdict
          (Printf.sprintf "widened ≡ scratch (jobs=%d mode=%s)" jobs
             (Patterns_search.Search.par_mode_string par_mode))
          scratch widened;
        ( !metrics.Patterns_search.Metrics.delta_seeds,
          !metrics.Patterns_search.Metrics.delta_reused_edges ))
      combos
  in
  match counters with
  | [] -> assert false
  | c0 :: rest ->
    let seeds, reused = c0 in
    Alcotest.(check bool) "delta_seeds > 0" true (seeds > 0);
    Alcotest.(check bool) "delta_reused_edges > 0" true (reused > 0);
    List.iter
      (fun c -> Alcotest.(check bool) "delta counters invariant" true (c = c0))
      rest

(* ----- systematic hunt: memoized prefixes ≡ full replays ----- *)

let test_hunt_memo_oracle () =
  List.iter
    (fun entry ->
      let rule = rule_of_registry entry in
      let n =
        if entry.Patterns_protocols.Registry.fixed_n then
          entry.Patterns_protocols.Registry.default_n
        else min entry.Patterns_protocols.Registry.default_n 3
      in
      let hunt memo =
        Patterns_adversary.Hunt.hunt ~memo ~max_failures:2 ~max_runs:1_200
          ~mode:Patterns_adversary.Hunt.Systematic ~property:Audit.TC ~rule ~n ~seed:0
          entry
      in
      let a = hunt true and b = hunt false in
      Alcotest.(check bool)
        (entry.Patterns_protocols.Registry.name ^ ": memoized ≡ replayed")
        true (a = b))
    Patterns_protocols.Registry.all

let test_hunt_counters_jobs_invariant () =
  let entry = entry_exn "fig3-chain" in
  let rule = rule_of_registry entry in
  (* interactive consistency holds for fig3-chain, so the sweep runs to
     its cap — a full sweep, on which the prefix tallies are
     jobs-invariant *)
  let run jobs =
    let metrics = ref Patterns_search.Metrics.zero in
    let r =
      Patterns_adversary.Hunt.hunt ~metrics ~max_failures:2 ~max_runs:2_000 ~jobs
        ~mode:Patterns_adversary.Hunt.Systematic ~property:Audit.IC ~rule ~n:3 ~seed:0
        entry
    in
    (match r with
    | Error tried -> check Alcotest.int "full sweep" 2_000 tried
    | Ok _ -> Alcotest.fail "unexpected IC violation");
    ( !metrics.Patterns_search.Metrics.prefix_hits,
      !metrics.Patterns_search.Metrics.prefix_states_saved )
  in
  let h1, s1 = run 1 and h4, s4 = run 4 in
  Alcotest.(check bool) "prefix_hits > 0" true (h1 > 0);
  Alcotest.(check bool) "prefix_states_saved > 0" true (s1 > 0);
  check Alcotest.int "hits jobs-invariant" h1 h4;
  check Alcotest.int "saved jobs-invariant" s1 s4

let test_random_mode_stream_untouched () =
  let entry = entry_exn "fig3-chain" in
  let rule = rule_of_registry entry in
  let hunt memo =
    Patterns_adversary.Hunt.hunt ~memo ~max_failures:2 ~max_runs:3_000
      ~mode:Patterns_adversary.Hunt.Random ~property:Audit.TC ~rule ~n:3 ~seed:42 entry
  in
  (* [memo] must be inert in random mode: same draws, same winner, same
     certificate text *)
  Alcotest.(check bool) "random stream draw-for-draw" true (hunt true = hunt false)

(* ----- scheme memoization ----- *)

let test_scheme_base () =
  let entry = entry_exn "fig3-chain" in
  let (module P : Patterns_sim.Protocol.S) = entry.Patterns_protocols.Registry.protocol in
  let module S = Patterns_pattern.Scheme.Make (P) in
  let n = 3 in
  let inputs = [ true; true; false ] in
  let scratch = S.patterns_for_inputs ~n ~inputs () in
  let base = Db.create () in
  let first = S.patterns_for_inputs ~base ~n ~inputs () in
  let metrics = ref Patterns_search.Metrics.zero in
  let second = S.patterns_for_inputs ~metrics ~base ~n ~inputs () in
  let eq (pa, sa) (pb, sb) = Patterns_pattern.Pattern.Set.equal pa pb && sa = sb in
  Alcotest.(check bool) "first run through base ≡ scratch" true (eq scratch first);
  Alcotest.(check bool) "memoized ≡ scratch" true (eq scratch second);
  Alcotest.(check int) "no expansions on reuse" 0
    !metrics.Patterns_search.Metrics.states_expanded;
  Alcotest.(check bool) "reused derivations counted" true
    (!metrics.Patterns_search.Metrics.delta_reused_edges > 0);
  (* a smaller budget than the stored size must recompute *)
  let tiny = S.patterns_for_inputs ~base ~max_configs:3 ~n ~inputs () in
  Alcotest.(check bool) "undersized budget recomputes (truncated)" true
    (snd tiny).Patterns_pattern.Scheme.truncated

(* ----- descriptor cache: bounded fds, counted reopens ----- *)

let test_fd_reopens () =
  let d = Filename.temp_file "patterns-fd" ".d" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
      Sys.rmdir d)
    (fun () ->
      let fp_of i = Fingerprint.feed Fingerprint.seed i in
      let entries i =
        [| (Spill_store.key_of_fingerprint (fp_of i), i land max_int) |]
      in
      (* 70 one-record runs against the 64-slot global descriptor
         cache: probing them all once evicts the first few, so probing
         run 0 again must transparently reopen it — and count it *)
      let runs =
        Array.init 70 (fun i ->
            let r =
              Block_file.create
                ~path:(Filename.concat d (Printf.sprintf "r%02d.blk" i))
                (entries i)
            in
            ignore
              (Block_file.probe r (Spill_store.key_of_fingerprint (fp_of i))
                : int option);
            r)
      in
      Alcotest.(check int) "no reopen on first probe" 0 (Block_file.reopens runs.(69));
      ignore (Block_file.probe runs.(0) (Spill_store.key_of_fingerprint (fp_of 0)) : int option);
      Alcotest.(check int) "evicted run reopened once" 1 (Block_file.reopens runs.(0));
      Array.iter Block_file.close runs)

let () =
  Alcotest.run "delta"
    [
      ( "classify",
        [
          Alcotest.test_case "registry widening oracle" `Slow test_registry_widening;
          Alcotest.test_case "added input vectors" `Quick test_added_inputs;
          Alcotest.test_case "budget gate" `Quick test_budget_gate;
          Alcotest.test_case "jobs x par-mode matrix" `Slow test_matrix_invariance;
        ] );
      ( "hunt",
        [
          Alcotest.test_case "memo oracle (registry)" `Slow test_hunt_memo_oracle;
          Alcotest.test_case "counters jobs-invariant" `Quick
            test_hunt_counters_jobs_invariant;
          Alcotest.test_case "random stream untouched" `Quick
            test_random_mode_stream_untouched;
        ] );
      ( "scheme", [ Alcotest.test_case "base memo" `Quick test_scheme_base ] );
      ( "fd_cache", [ Alcotest.test_case "reopens counted" `Quick test_fd_reopens ] );
    ]
