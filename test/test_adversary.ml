(* The adversary subsystem end to end: systematic plan enumeration
   (canonical order, bijective decoding), hunt -> certificate ->
   replay -> shrink round trips, and qcheck'd shrink invariants over
   the protocol registry — a shrunk certificate still violates the
   same property under replay and is never larger than its input. *)

open Patterns_adversary

let check = Alcotest.check

(* the CLI's protocol -> decision-rule mapping, for registry-wide
   hunting *)
let rule_of_registry entry =
  let open Patterns_protocols in
  if entry.Registry.name = "ben-or" then Decision_rule.Any_input
  else if entry.Registry.name = "reliable-broadcast" then Decision_rule.Broadcast 0
  else if entry.Registry.name = "termination" then Decision_rule.Threshold 1
  else if entry.Registry.name = "voting-star-thr3-5" then Decision_rule.Threshold 3
  else if entry.Registry.name = "voting-star-subset-5" then Decision_rule.Subset [ 0; 1 ]
  else Decision_rule.Unanimity

let entry_exn name =
  match Patterns_protocols.Registry.find name with
  | Some e -> e
  | None -> Alcotest.failf "registry lost %s" name

(* ----- plan enumeration ----- *)

let decode_exn ?space ~horizon ~n ~max_faults i =
  match Plan.decode ?space ~horizon ~n ~max_faults i with
  | Ok p -> p
  | Error e -> Alcotest.failf "decode %d: %s" i (Plan.error_string e)

let test_plan_count_and_decode () =
  (* horizon 2, n 2, up to 2 crashes: 3*4 + 3*4*4 + 3*16*4 = 252 *)
  let horizon = 2 and n = 2 and max_faults = 2 in
  let total = Plan.count ~horizon ~n ~max_faults () in
  check Alcotest.int "count" 252 total;
  let plans = List.init total (decode_exn ~horizon ~n ~max_faults) in
  (* bijective: all plans distinct *)
  check Alcotest.int "all distinct" total
    (List.length (List.sort_uniq compare plans));
  (* canonical: fault counts never decrease along the enumeration *)
  let crash_counts = List.map Plan.fault_count plans in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "crash count ascending" true (sorted crash_counts);
  (* the first block is failure-free, fifo-first, inputs fastest *)
  let p0 = List.nth plans 0 in
  Alcotest.(check bool) "plan 0: fifo, no crashes, inputs 00" true
    (p0.Plan.flavour = Plan.Fifo && p0.Plan.faults = [] && p0.Plan.inputs = [ false; false ]);
  let p4 = List.nth plans 4 in
  Alcotest.(check bool) "plan 4: lifo (flavour-major within a crash count)" true
    (p4.Plan.flavour = Plan.Lifo && p4.Plan.faults = []);
  (* the crash space never decodes an omission kind, and every crash
     step is inside the horizon, every victim inside n *)
  Alcotest.(check bool) "crash digits in range" true
    (List.for_all
       (fun p ->
         Plan.omissions p = []
         && List.for_all
              (fun (k, v) -> k >= 0 && k < horizon && v >= 0 && v < n)
              (Plan.crashes p))
       plans);
  (* out of range is an error, not a wrong plan *)
  (match Plan.decode ~horizon ~n ~max_faults total with
  | Error Plan.Out_of_range -> ()
  | Error e -> Alcotest.failf "decode past the end: %s" (Plan.error_string e)
  | Ok _ -> Alcotest.fail "decode past the end must be Out_of_range");
  (* saturation instead of overflow *)
  check Alcotest.int "saturated count" max_int
    (Plan.count ~horizon:1_000_000 ~n:7 ~max_faults:20 ())

let test_plan_omission_spaces () =
  (* horizon 1, n 2: cn = 2, omission base b = cn + 2*horizon = 4.
     S_0 = 1, S_1 = 2 + 2*(4-2) = 6, S_2 = 4 + 2*(16-4) = 28,
     count = 3 * 2^2 * (1 + 6 + 28) = 420.  Mobile: base 3cn = 6,
     count = 12 * (1 + 6 + 36) = 516. *)
  let horizon = 1 and n = 2 and max_faults = 2 in
  check Alcotest.int "omission count" 420
    (Plan.count ~space:Plan.Omission ~horizon ~n ~max_faults ());
  check Alcotest.int "mobile count" 516
    (Plan.count ~space:Plan.Mobile ~horizon ~n ~max_faults ());
  List.iter
    (fun space ->
      let total = Plan.count ~space ~horizon ~n ~max_faults () in
      let plans = List.init total (decode_exn ~space ~horizon ~n ~max_faults) in
      check Alcotest.int
        (Printf.sprintf "%s: all distinct" (Plan.space_string space))
        total
        (List.length (List.sort_uniq compare plans));
      (* ascending fault counts, and the crash-only prefix of every
         fault count is shared: the omission spaces are supersets *)
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | _ -> true
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: fault count ascending" (Plan.space_string space))
        true
        (sorted (List.map Plan.fault_count plans));
      (* the static-victim space never yields two distinct omission
         victims; the mobile space does *)
      let mobile_plans = List.filter Plan.is_mobile plans in
      (match space with
      | Plan.Omission ->
        Alcotest.(check bool) "omission space has no mobile plans" true (mobile_plans = [])
      | Plan.Mobile ->
        Alcotest.(check bool) "mobile space has mobile plans" true (mobile_plans <> [])
      | Plan.Crash_only -> ());
      (* rank is a left inverse of decode over the whole space *)
      List.iteri
        (fun i p ->
          match Plan.rank ~space ~horizon ~n ~max_faults p with
          | Ok j when j = i -> ()
          | Ok j -> Alcotest.failf "%s: rank (decode %d) = %d" (Plan.space_string space) i j
          | Error e -> Alcotest.failf "%s: rank (decode %d): %s" (Plan.space_string space) i (Plan.error_string e))
        plans)
    [ Plan.Omission; Plan.Mobile ];
  (* a crash plan ranks identically in every space's shared prefix of
     fault count 0; an omission plan is Out_of_range for Crash_only *)
  let om_plan =
    {
      Plan.inputs = [ false; true ];
      faults = [ { Patterns_sim.Fault.step = 0; victim = 1; kind = Patterns_sim.Fault.Drop } ];
      flavour = Plan.Fifo;
    }
  in
  (match Plan.rank ~horizon ~n ~max_faults om_plan with
  | Error Plan.Out_of_range -> ()
  | _ -> Alcotest.fail "crash space must reject omission kinds");
  (* distinct omission victims are rejected by the static-victim space *)
  let mobile_plan =
    {
      Plan.inputs = [ false; false ];
      faults =
        [
          { Patterns_sim.Fault.step = 0; victim = 0; kind = Patterns_sim.Fault.Drop };
          { Patterns_sim.Fault.step = 0; victim = 1; kind = Patterns_sim.Fault.Send_omit };
        ];
      flavour = Plan.Lifo;
    }
  in
  (match Plan.rank ~space:Plan.Omission ~horizon ~n ~max_faults mobile_plan with
  | Error Plan.Out_of_range -> ()
  | _ -> Alcotest.fail "static-victim space must reject mobile plans");
  match Plan.rank ~space:Plan.Mobile ~horizon ~n ~max_faults mobile_plan with
  | Ok i -> (
    match Plan.decode ~space:Plan.Mobile ~horizon ~n ~max_faults i with
    | Ok p -> Alcotest.(check bool) "mobile round trip" true (p = mobile_plan)
    | Error e -> Alcotest.fail (Plan.error_string e))
  | Error e -> Alcotest.fail (Plan.error_string e)

let test_plan_budget_exceeded () =
  (* the widened spaces overflow much earlier than the crash space:
     past the exactly representable boundary both decode and rank
     answer Budget_exceeded instead of silently saturating *)
  let horizon = 1_000_000 and n = 7 and max_faults = 20 in
  (match Plan.decode ~space:Plan.Omission ~horizon ~n ~max_faults (max_int - 1) with
  | Error Plan.Budget_exceeded -> ()
  | Error e -> Alcotest.failf "decode: %s" (Plan.error_string e)
  | Ok _ -> Alcotest.fail "decode past the exact boundary must be Budget_exceeded");
  let deep_plan =
    {
      Plan.inputs = List.init n (fun _ -> false);
      faults =
        List.init 3 (fun i ->
            { Patterns_sim.Fault.step = i; victim = 0; kind = Patterns_sim.Fault.Drop });
      flavour = Plan.Fifo;
    }
  in
  (match Plan.rank ~space:Plan.Omission ~horizon ~n ~max_faults deep_plan with
  | Error Plan.Budget_exceeded -> ()
  | Error e -> Alcotest.failf "rank: %s" (Plan.error_string e)
  | Ok _ -> Alcotest.fail "rank past the exact boundary must be Budget_exceeded");
  (* small indices below the boundary still decode fine *)
  match Plan.decode ~space:Plan.Omission ~horizon ~n ~max_faults 0 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "index 0 must stay decodable: %s" (Plan.error_string e)

(* rank . decode = id, qcheck'd over the widened fault-kind space
   (pins the Budget_exceeded contract's complement: everything inside
   the representable space is exactly bijective) *)
let plan_bijection_test =
  QCheck2.Test.make ~name:"plan: rank . decode = id over every space" ~count:400
    QCheck2.Gen.(
      tup4 (int_bound 2) (int_bound 1_000_000) (int_range 1 3) (int_range 2 3))
    (fun (si, raw_idx, horizon, n) ->
      let space = List.nth Plan.spaces si in
      let max_faults = 2 in
      let total = Plan.count ~space ~horizon ~n ~max_faults () in
      let idx = raw_idx mod total in
      match Plan.decode ~space ~horizon ~n ~max_faults idx with
      | Error _ -> false
      | Ok plan -> (
        match Plan.rank ~space ~horizon ~n ~max_faults plan with
        | Ok i -> i = idx
        | Error _ -> false))

(* ----- certificate JSON ----- *)

let test_cert_json_roundtrip () =
  let cert =
    {
      Cert.protocol = "2pc";
      n = 3;
      inputs = [ true; false; true ];
      property = Patterns_core.Audit.TC;
      rule = Patterns_protocols.Decision_rule.Unanimity;
      script =
        [
          Patterns_sim.Script.Step_of 0;
          Patterns_sim.Script.Deliver_msg { at = 1; from = 0; index = 1 };
          Patterns_sim.Script.Fail_now 2;
          Patterns_sim.Script.Deliver_note (1, 2);
        ];
      message = "synthetic";
    }
  in
  (match Cert.of_json (Cert.to_json cert) with
  | Ok c -> Alcotest.(check bool) "round trip" true (c = cert)
  | Error e -> Alcotest.fail e);
  (* rule strings round-trip for every constructor *)
  List.iter
    (fun rule ->
      match Cert.rule_of_string (Cert.rule_string rule) with
      | Ok r -> Alcotest.(check bool) (Cert.rule_string rule) true (r = rule)
      | Error e -> Alcotest.fail e)
    Patterns_protocols.Decision_rule.
      [ Unanimity; Broadcast 0; Threshold 3; Subset [ 0; 1 ] ];
  (* a drop-carrying script bumps the schema to /2 and still round-trips *)
  let cert2 =
    {
      cert with
      Cert.script =
        cert.Cert.script @ [ Patterns_sim.Script.Drop_msg { at = 1; from = 0; index = 0 } ];
    }
  in
  (match Cert.to_json cert2 with
  | Patterns_stdx.Json.Obj fields ->
    Alcotest.(check (option string)) "drop cert schema"
      (Some Cert.schema_v2)
      (match List.assoc_opt "schema" fields with
      | Some (Patterns_stdx.Json.String s) -> Some s
      | _ -> None)
  | _ -> Alcotest.fail "cert json must be an object");
  (match Cert.of_json (Cert.to_json cert2) with
  | Ok c -> Alcotest.(check bool) "drop cert round trip" true (c = cert2)
  | Error e -> Alcotest.fail e);
  (* drop-free scripts stay on /1 byte for byte *)
  (match Cert.to_json cert with
  | Patterns_stdx.Json.Obj fields ->
    Alcotest.(check (option string)) "fail-stop cert schema"
      (Some Cert.schema_v1)
      (match List.assoc_opt "schema" fields with
      | Some (Patterns_stdx.Json.String s) -> Some s
      | _ -> None)
  | _ -> Alcotest.fail "cert json must be an object");
  (* a foreign schema is rejected with a useful error *)
  match Cert.of_json (Patterns_stdx.Json.Obj [ ("schema", Patterns_stdx.Json.String "x") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema accepted"

(* ----- hunt -> cert -> replay -> shrink ----- *)

let roundtrip ~mode ~name ~n ~property ~seed ~runs () =
  let entry = entry_exn name in
  let rule = rule_of_registry entry in
  match
    Hunt.hunt ~max_failures:2 ~max_runs:runs ~mode ~property ~rule ~n ~seed entry
  with
  | Error tried -> Alcotest.failf "no violation for %s in %d runs" name tried
  | Ok cert ->
    (* the certificate replays to the same violation *)
    (match Replay.replay cert with
    | Replay.Reproduced _ -> ()
    | v -> Alcotest.failf "fresh certificate did not reproduce: %d" (Replay.exit_code v));
    (* shrinking preserves the violation and never grows anything *)
    let r =
      match Shrink.shrink cert with Ok r -> r | Error e -> Alcotest.fail e
    in
    let small = r.Shrink.cert in
    Alcotest.(check bool) "directives not larger" true
      (List.length small.Cert.script <= List.length cert.Cert.script);
    Alcotest.(check bool) "n not larger" true (small.Cert.n <= cert.Cert.n);
    Alcotest.(check bool) "crashes not larger" true
      (List.length (Cert.crashes small) <= List.length (Cert.crashes cert));
    Alcotest.(check bool) "same property" true
      (small.Cert.property = cert.Cert.property);
    (match Replay.replay small with
    | Replay.Reproduced _ -> ()
    | v -> Alcotest.failf "shrunk certificate did not reproduce: %d" (Replay.exit_code v))

let test_random_roundtrip =
  roundtrip ~mode:Hunt.Random ~name:"2pc" ~n:4 ~property:Patterns_core.Audit.TC
    ~seed:1984 ~runs:5_000

let test_systematic_roundtrip =
  roundtrip ~mode:Hunt.Systematic ~name:"fig3-chain-st" ~n:4
    ~property:Patterns_core.Audit.Agreement ~seed:0 ~runs:1_000

let test_systematic_smallest_crash_count () =
  (* the systematic order enumerates crash counts ascending, so the
     winning plan of a protocol that violates with one crash carries
     exactly one Fail_now — never the two the budget allows *)
  let entry = entry_exn "fig3-chain-st" in
  match
    Hunt.hunt ~max_failures:2 ~max_runs:1_000 ~mode:Hunt.Systematic
      ~property:Patterns_core.Audit.Agreement ~rule:(rule_of_registry entry) ~n:4 ~seed:0
      entry
  with
  | Error tried -> Alcotest.failf "no violation in %d plans" tried
  | Ok cert -> check Alcotest.int "one crash suffices" 1 (List.length (Cert.crashes cert))

let test_hunt_jobs_invariant_cert () =
  let entry = entry_exn "fig3-chain-st" in
  let hunt jobs =
    Hunt.hunt ~max_failures:2 ~max_runs:1_000 ~jobs ~mode:Hunt.Systematic
      ~property:Patterns_core.Audit.Agreement ~rule:(rule_of_registry entry) ~n:4 ~seed:0
      entry
  in
  match (hunt 1, hunt 4) with
  | Ok c1, Ok c4 ->
    Alcotest.(check bool) "identical certificate for every jobs" true (c1 = c4)
  | _ -> Alcotest.fail "hunt lost the violation under parallelism"

let test_replay_inapplicable () =
  let entry = entry_exn "2pc" in
  let cert =
    match
      Hunt.hunt ~max_failures:2 ~max_runs:5_000 ~property:Patterns_core.Audit.TC
        ~rule:(rule_of_registry entry) ~n:4 ~seed:1984 entry
    with
    | Ok c -> c
    | Error _ -> Alcotest.fail "setup hunt found nothing"
  in
  (match Replay.replay { cert with Cert.protocol = "no-such-protocol" } with
  | Replay.Inapplicable _ -> ()
  | v -> Alcotest.failf "unknown protocol must be inapplicable, got %d" (Replay.exit_code v));
  (* delivering a message that was never sent cannot replay *)
  (match
     Replay.replay
       {
         cert with
         Cert.script =
           Patterns_sim.Script.Deliver_msg { at = 1; from = 0; index = 99 }
           :: cert.Cert.script;
       }
   with
  | Replay.Inapplicable _ -> ()
  | v -> Alcotest.failf "impossible delivery must be inapplicable, got %d" (Replay.exit_code v));
  (* a failure-free prefix of the schedule does not violate: the same
     certificate with the trigger removed replays to Not_reproduced
     (2pc without crashes is correct) *)
  match
    Replay.replay
      {
        cert with
        Cert.script =
          List.filter
            (function
              | Patterns_sim.Script.Fail_now _ | Patterns_sim.Script.Deliver_note _ ->
                false
              | _ -> true)
            cert.Cert.script;
      }
  with
  | Replay.Not_reproduced | Replay.Inapplicable _ -> ()
  | Replay.Reproduced msg -> Alcotest.failf "crash-free 2pc cannot violate TC: %s" msg

(* ----- registry-wide qcheck: shrink soundness ----- *)

let registry_shrink_test =
  let entries = Array.of_list Patterns_protocols.Registry.all in
  (* QCheck2 has its own [Shrink]; keep it out of scope so [Shrink]
     below stays the module under test *)
  QCheck2.Test.make ~name:"registry: shrunk certificates still violate, never larger"
    ~count:24
    QCheck2.Gen.(pair (int_bound (Array.length entries - 1)) (int_bound 10_000))
    (fun (i, seed) ->
      let entry = entries.(i) in
      let n = entry.Patterns_protocols.Registry.default_n in
      let property =
        if seed mod 2 = 0 then Patterns_core.Audit.TC else Patterns_core.Audit.Agreement
      in
      match
        Hunt.hunt ~max_failures:2 ~max_runs:250 ~property ~rule:(rule_of_registry entry)
          ~n ~seed entry
      with
      | Error _ -> true (* most protocols are correct: nothing to shrink *)
      | Ok cert -> (
        match Shrink.shrink cert with
        | Error _ -> false
        | Ok r ->
          let small = r.Shrink.cert in
          List.length small.Cert.script <= List.length cert.Cert.script
          && small.Cert.n <= cert.Cert.n
          && List.length (Cert.crashes small) <= List.length (Cert.crashes cert)
          && (match Replay.replay small with Replay.Reproduced _ -> true | _ -> false)))

(* ----- the omission adversary strictly widens fail-stop -----

   fig3-chain satisfies weak termination under every crash plan of
   budget 1 at horizon 12 (the whole 2352-plan space is swept), yet a
   single receive omission violates it: the dropped chain message
   starves its receiver forever while the failure-notice machinery —
   which fail-stop recovery rests on — never fires.  The systematic
   order makes the first hit a minimum-omission-count witness. *)
let test_omission_widens_fail_stop () =
  let entry = entry_exn "fig3-chain" in
  let rule = rule_of_registry entry in
  let hunt space =
    Hunt.hunt ~max_failures:1 ~max_runs:8_000 ~mode:Hunt.Systematic ~horizon:12 ~space
      ~property:Patterns_core.Audit.WT ~rule ~n:4 ~seed:0 entry
  in
  (match hunt Plan.Crash_only with
  | Error tried -> check Alcotest.int "crash space swept clean" 2352 tried
  | Ok cert -> Alcotest.failf "crash-only WT violation?! %s" cert.Cert.message);
  match hunt Plan.Omission with
  | Error tried -> Alcotest.failf "no omission violation in %d plans" tried
  | Ok cert ->
    check Alcotest.int "no crashes in the witness" 0 (List.length (Cert.crashes cert));
    check Alcotest.int "one drop suffices" 1 (List.length (Cert.drops cert));
    (match Replay.replay cert with
    | Replay.Reproduced _ -> ()
    | v -> Alcotest.failf "omission certificate did not reproduce: %d" (Replay.exit_code v))

(* ----- registry-wide omission round-trip oracle -----

   For every registry protocol: a systematic omission-space hunt is
   jobs-invariant (same cert or same tried count for jobs 1 and 4),
   and when it finds a violation the certificate replays to
   Reproduced and shrinks to a certificate that still replays with no
   more drops than it started with. *)
let registry_omission_roundtrip_test =
  let entries = Array.of_list Patterns_protocols.Registry.all in
  QCheck2.Test.make ~name:"registry: omission hunts are jobs-invariant and round-trip"
    ~count:12
    QCheck2.Gen.(pair (int_bound (Array.length entries - 1)) (int_bound 10_000))
    (fun (i, seed) ->
      let entry = entries.(i) in
      let n = entry.Patterns_protocols.Registry.default_n in
      let property =
        if seed mod 2 = 0 then Patterns_core.Audit.WT else Patterns_core.Audit.Agreement
      in
      let space = if seed mod 3 = 0 then Plan.Mobile else Plan.Omission in
      let hunt jobs =
        Hunt.hunt ~max_failures:2 ~max_runs:700 ~jobs ~mode:Hunt.Systematic ~horizon:10
          ~space ~property ~rule:(rule_of_registry entry) ~n ~seed:0 entry
      in
      match (hunt 1, hunt 4) with
      | Error a, Error b -> a = b
      | Ok c1, Ok c4 -> (
        c1 = c4
        && (match Replay.replay c1 with Replay.Reproduced _ -> true | _ -> false)
        &&
        match Shrink.shrink c1 with
        | Error _ -> false
        | Ok r ->
          let small = r.Shrink.cert in
          List.length small.Cert.script <= List.length c1.Cert.script
          && List.length (Cert.drops small) <= List.length (Cert.drops c1)
          && (match Replay.replay small with Replay.Reproduced _ -> true | _ -> false))
      | _ -> false)

let () =
  Alcotest.run "adversary"
    [
      ( "plan",
        [
          Alcotest.test_case "count and canonical decode" `Quick test_plan_count_and_decode;
          Alcotest.test_case "omission and mobile spaces" `Quick test_plan_omission_spaces;
          Alcotest.test_case "budget exceeded is loud" `Quick test_plan_budget_exceeded;
          QCheck_alcotest.to_alcotest plan_bijection_test;
        ] );
      ( "cert",
        [ Alcotest.test_case "json round trip" `Quick test_cert_json_roundtrip ] );
      ( "pipeline",
        [
          Alcotest.test_case "random hunt round trip" `Slow test_random_roundtrip;
          Alcotest.test_case "systematic hunt round trip" `Slow test_systematic_roundtrip;
          Alcotest.test_case "systematic finds the smallest crash count" `Quick
            test_systematic_smallest_crash_count;
          Alcotest.test_case "certificates are jobs-invariant" `Quick
            test_hunt_jobs_invariant_cert;
          Alcotest.test_case "replay inapplicability" `Slow test_replay_inapplicable;
          Alcotest.test_case "omission widens fail-stop" `Slow test_omission_widens_fail_stop;
        ] );
      ( "registry",
        [
          QCheck_alcotest.to_alcotest registry_shrink_test;
          QCheck_alcotest.to_alcotest registry_omission_roundtrip_test;
        ] );
    ]
