(* The adversary subsystem end to end: systematic plan enumeration
   (canonical order, bijective decoding), hunt -> certificate ->
   replay -> shrink round trips, and qcheck'd shrink invariants over
   the protocol registry — a shrunk certificate still violates the
   same property under replay and is never larger than its input. *)

open Patterns_adversary

let check = Alcotest.check

(* the CLI's protocol -> decision-rule mapping, for registry-wide
   hunting *)
let rule_of_registry entry =
  let open Patterns_protocols in
  if entry.Registry.name = "reliable-broadcast" then Decision_rule.Broadcast 0
  else if entry.Registry.name = "termination" then Decision_rule.Threshold 1
  else if entry.Registry.name = "voting-star-thr3-5" then Decision_rule.Threshold 3
  else if entry.Registry.name = "voting-star-subset-5" then Decision_rule.Subset [ 0; 1 ]
  else Decision_rule.Unanimity

let entry_exn name =
  match Patterns_protocols.Registry.find name with
  | Some e -> e
  | None -> Alcotest.failf "registry lost %s" name

(* ----- plan enumeration ----- *)

let test_plan_count_and_decode () =
  (* horizon 2, n 2, up to 2 crashes: 3*4 + 3*4*4 + 3*16*4 = 252 *)
  let horizon = 2 and n = 2 and max_failures = 2 in
  let total = Plan.count ~horizon ~n ~max_failures in
  check Alcotest.int "count" 252 total;
  let plans = List.init total (Plan.decode ~horizon ~n ~max_failures) in
  (* bijective: all plans distinct *)
  check Alcotest.int "all distinct" total
    (List.length (List.sort_uniq compare plans));
  (* canonical: crash counts never decrease along the enumeration *)
  let crash_counts = List.map (fun p -> List.length p.Plan.failures) plans in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "crash count ascending" true (sorted crash_counts);
  (* the first block is failure-free, fifo-first, inputs fastest *)
  let p0 = List.nth plans 0 in
  Alcotest.(check bool) "plan 0: fifo, no crashes, inputs 00" true
    (p0.Plan.flavour = Plan.Fifo && p0.Plan.failures = [] && p0.Plan.inputs = [ false; false ]);
  let p4 = List.nth plans 4 in
  Alcotest.(check bool) "plan 4: lifo (flavour-major within a crash count)" true
    (p4.Plan.flavour = Plan.Lifo && p4.Plan.failures = []);
  (* every crash step is inside the horizon, every victim inside n *)
  Alcotest.(check bool) "crash digits in range" true
    (List.for_all
       (fun p ->
         List.for_all (fun (k, v) -> k >= 0 && k < horizon && v >= 0 && v < n) p.Plan.failures)
       plans);
  (* out of range raises *)
  (match Plan.decode ~horizon ~n ~max_failures total with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "decode past the end must raise");
  (* saturation instead of overflow *)
  check Alcotest.int "saturated count" max_int
    (Plan.count ~horizon:1_000_000 ~n:7 ~max_failures:20)

(* ----- certificate JSON ----- *)

let test_cert_json_roundtrip () =
  let cert =
    {
      Cert.protocol = "2pc";
      n = 3;
      inputs = [ true; false; true ];
      property = Patterns_core.Audit.TC;
      rule = Patterns_protocols.Decision_rule.Unanimity;
      script =
        [
          Patterns_sim.Script.Step_of 0;
          Patterns_sim.Script.Deliver_msg { at = 1; from = 0; index = 1 };
          Patterns_sim.Script.Fail_now 2;
          Patterns_sim.Script.Deliver_note (1, 2);
        ];
      message = "synthetic";
    }
  in
  (match Cert.of_json (Cert.to_json cert) with
  | Ok c -> Alcotest.(check bool) "round trip" true (c = cert)
  | Error e -> Alcotest.fail e);
  (* rule strings round-trip for every constructor *)
  List.iter
    (fun rule ->
      match Cert.rule_of_string (Cert.rule_string rule) with
      | Ok r -> Alcotest.(check bool) (Cert.rule_string rule) true (r = rule)
      | Error e -> Alcotest.fail e)
    Patterns_protocols.Decision_rule.
      [ Unanimity; Broadcast 0; Threshold 3; Subset [ 0; 1 ] ];
  (* a foreign schema is rejected with a useful error *)
  match Cert.of_json (Patterns_stdx.Json.Obj [ ("schema", Patterns_stdx.Json.String "x") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema accepted"

(* ----- hunt -> cert -> replay -> shrink ----- *)

let roundtrip ~mode ~name ~n ~property ~seed ~runs () =
  let entry = entry_exn name in
  let rule = rule_of_registry entry in
  match
    Hunt.hunt ~max_failures:2 ~max_runs:runs ~mode ~property ~rule ~n ~seed entry
  with
  | Error tried -> Alcotest.failf "no violation for %s in %d runs" name tried
  | Ok cert ->
    (* the certificate replays to the same violation *)
    (match Replay.replay cert with
    | Replay.Reproduced _ -> ()
    | v -> Alcotest.failf "fresh certificate did not reproduce: %d" (Replay.exit_code v));
    (* shrinking preserves the violation and never grows anything *)
    let r =
      match Shrink.shrink cert with Ok r -> r | Error e -> Alcotest.fail e
    in
    let small = r.Shrink.cert in
    Alcotest.(check bool) "directives not larger" true
      (List.length small.Cert.script <= List.length cert.Cert.script);
    Alcotest.(check bool) "n not larger" true (small.Cert.n <= cert.Cert.n);
    Alcotest.(check bool) "crashes not larger" true
      (List.length (Cert.crashes small) <= List.length (Cert.crashes cert));
    Alcotest.(check bool) "same property" true
      (small.Cert.property = cert.Cert.property);
    (match Replay.replay small with
    | Replay.Reproduced _ -> ()
    | v -> Alcotest.failf "shrunk certificate did not reproduce: %d" (Replay.exit_code v))

let test_random_roundtrip =
  roundtrip ~mode:Hunt.Random ~name:"2pc" ~n:4 ~property:Patterns_core.Audit.TC
    ~seed:1984 ~runs:5_000

let test_systematic_roundtrip =
  roundtrip ~mode:Hunt.Systematic ~name:"fig3-chain-st" ~n:4
    ~property:Patterns_core.Audit.Agreement ~seed:0 ~runs:1_000

let test_systematic_smallest_crash_count () =
  (* the systematic order enumerates crash counts ascending, so the
     winning plan of a protocol that violates with one crash carries
     exactly one Fail_now — never the two the budget allows *)
  let entry = entry_exn "fig3-chain-st" in
  match
    Hunt.hunt ~max_failures:2 ~max_runs:1_000 ~mode:Hunt.Systematic
      ~property:Patterns_core.Audit.Agreement ~rule:(rule_of_registry entry) ~n:4 ~seed:0
      entry
  with
  | Error tried -> Alcotest.failf "no violation in %d plans" tried
  | Ok cert -> check Alcotest.int "one crash suffices" 1 (List.length (Cert.crashes cert))

let test_hunt_jobs_invariant_cert () =
  let entry = entry_exn "fig3-chain-st" in
  let hunt jobs =
    Hunt.hunt ~max_failures:2 ~max_runs:1_000 ~jobs ~mode:Hunt.Systematic
      ~property:Patterns_core.Audit.Agreement ~rule:(rule_of_registry entry) ~n:4 ~seed:0
      entry
  in
  match (hunt 1, hunt 4) with
  | Ok c1, Ok c4 ->
    Alcotest.(check bool) "identical certificate for every jobs" true (c1 = c4)
  | _ -> Alcotest.fail "hunt lost the violation under parallelism"

let test_replay_inapplicable () =
  let entry = entry_exn "2pc" in
  let cert =
    match
      Hunt.hunt ~max_failures:2 ~max_runs:5_000 ~property:Patterns_core.Audit.TC
        ~rule:(rule_of_registry entry) ~n:4 ~seed:1984 entry
    with
    | Ok c -> c
    | Error _ -> Alcotest.fail "setup hunt found nothing"
  in
  (match Replay.replay { cert with Cert.protocol = "no-such-protocol" } with
  | Replay.Inapplicable _ -> ()
  | v -> Alcotest.failf "unknown protocol must be inapplicable, got %d" (Replay.exit_code v));
  (* delivering a message that was never sent cannot replay *)
  (match
     Replay.replay
       {
         cert with
         Cert.script =
           Patterns_sim.Script.Deliver_msg { at = 1; from = 0; index = 99 }
           :: cert.Cert.script;
       }
   with
  | Replay.Inapplicable _ -> ()
  | v -> Alcotest.failf "impossible delivery must be inapplicable, got %d" (Replay.exit_code v));
  (* a failure-free prefix of the schedule does not violate: the same
     certificate with the trigger removed replays to Not_reproduced
     (2pc without crashes is correct) *)
  match
    Replay.replay
      {
        cert with
        Cert.script =
          List.filter
            (function
              | Patterns_sim.Script.Fail_now _ | Patterns_sim.Script.Deliver_note _ ->
                false
              | _ -> true)
            cert.Cert.script;
      }
  with
  | Replay.Not_reproduced | Replay.Inapplicable _ -> ()
  | Replay.Reproduced msg -> Alcotest.failf "crash-free 2pc cannot violate TC: %s" msg

(* ----- registry-wide qcheck: shrink soundness ----- *)

let registry_shrink_test =
  let entries = Array.of_list Patterns_protocols.Registry.all in
  (* QCheck2 has its own [Shrink]; keep it out of scope so [Shrink]
     below stays the module under test *)
  QCheck2.Test.make ~name:"registry: shrunk certificates still violate, never larger"
    ~count:24
    QCheck2.Gen.(pair (int_bound (Array.length entries - 1)) (int_bound 10_000))
    (fun (i, seed) ->
      let entry = entries.(i) in
      let n = entry.Patterns_protocols.Registry.default_n in
      let property =
        if seed mod 2 = 0 then Patterns_core.Audit.TC else Patterns_core.Audit.Agreement
      in
      match
        Hunt.hunt ~max_failures:2 ~max_runs:250 ~property ~rule:(rule_of_registry entry)
          ~n ~seed entry
      with
      | Error _ -> true (* most protocols are correct: nothing to shrink *)
      | Ok cert -> (
        match Shrink.shrink cert with
        | Error _ -> false
        | Ok r ->
          let small = r.Shrink.cert in
          List.length small.Cert.script <= List.length cert.Cert.script
          && small.Cert.n <= cert.Cert.n
          && List.length (Cert.crashes small) <= List.length (Cert.crashes cert)
          && (match Replay.replay small with Replay.Reproduced _ -> true | _ -> false)))

let () =
  Alcotest.run "adversary"
    [
      ( "plan",
        [
          Alcotest.test_case "count and canonical decode" `Quick test_plan_count_and_decode;
        ] );
      ( "cert",
        [ Alcotest.test_case "json round trip" `Quick test_cert_json_roundtrip ] );
      ( "pipeline",
        [
          Alcotest.test_case "random hunt round trip" `Slow test_random_roundtrip;
          Alcotest.test_case "systematic hunt round trip" `Slow test_systematic_roundtrip;
          Alcotest.test_case "systematic finds the smallest crash count" `Quick
            test_systematic_smallest_crash_count;
          Alcotest.test_case "certificates are jobs-invariant" `Quick
            test_hunt_jobs_invariant_cert;
          Alcotest.test_case "replay inapplicability" `Slow test_replay_inapplicable;
        ] );
      ( "registry",
        [ QCheck_alcotest.to_alcotest registry_shrink_test ] );
    ]
