(* The disk-backed spill layer must be invisible: every driver, every
   protocol in the registry, every jobs value and every memory budget
   must produce exactly the answer the purely in-memory stores
   produce.  These tests pin that contract — Block_file codec and
   probe against a sorted-association oracle, Spill_store membership
   against a Hashtbl mirror under adversarial budgets, the kernel
   drivers against the balanced-tree reference, and checkpoint/resume
   against an uninterrupted run. *)

open Patterns_sim
open Patterns_stdx

let tmpdir () =
  let d = Filename.temp_file "patterns-spill" ".d" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rm_tmpdir d =
  if Sys.file_exists d && Sys.is_directory d then begin
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    Sys.rmdir d
  end

let with_tmpdir f =
  let d = tmpdir () in
  Fun.protect ~finally:(fun () -> rm_tmpdir d) (fun () -> f d)

let fp_of_int (x : int) : Fingerprint.t = Fingerprint.feed Fingerprint.seed x
let key_of_int x = Spill_store.key_of_fingerprint (fp_of_int x)

(* ----- Block_file: codec ----- *)

let test_block_codec () =
  let buf = Bytes.create Block_file.record_width in
  List.iter
    (fun (x, payload) ->
      let key = key_of_int x in
      Block_file.encode_record buf 0 ~key ~payload;
      let s = Bytes.to_string buf in
      Alcotest.(check string) "key round-trips" key (Block_file.decode_key s 0);
      Alcotest.(check int) "payload round-trips" payload (Block_file.decode_payload s 0))
    [ (0, 0); (1, 1); (-1, max_int); (max_int, 12345); (min_int, 42) ];
  Alcotest.check_raises "short key refused"
    (Invalid_argument "Block_file.encode_record: key must be 8 bytes") (fun () ->
      Block_file.encode_record buf 0 ~key:"abc" ~payload:0)

let test_key_order () =
  (* byte order = numeric order, across the sign boundary *)
  let samples = [ min_int; -1_000_000; -1; 0; 1; 42; 1_000_000; max_int ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ka = Spill_store.key_of_fingerprint a
          and kb = Spill_store.key_of_fingerprint b in
          Alcotest.(check int)
            (Printf.sprintf "order of %d vs %d" a b)
            (compare (compare a b) 0)
            (compare (String.compare ka kb) 0))
        samples)
    samples

(* ----- Block_file: create / probe against a sorted association ----- *)

let sorted_entries xs =
  (* distinct keys in ascending key order, payload = source int *)
  List.sort_uniq compare xs
  |> List.map (fun x -> (key_of_int x, x land max_int))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> Array.of_list

let test_block_probe () =
  with_tmpdir (fun d ->
      let xs = List.init 1000 (fun i -> (i * 7919) lxor 0x5bd1e995) in
      let entries = sorted_entries xs in
      let run = Block_file.create ~path:(Filename.concat d "run.blk") entries in
      Alcotest.(check int) "length" (Array.length entries) (Block_file.length run);
      Alcotest.(check int) "write_bytes"
        (Block_file.record_width * Array.length entries)
        (Block_file.write_bytes run);
      Array.iter
        (fun (k, v) ->
          Alcotest.(check (option int)) "present key found" (Some v)
            (Block_file.probe run k))
        entries;
      List.iter
        (fun x ->
          Alcotest.(check (option int)) "absent key missed" None
            (Block_file.probe run (key_of_int x)))
        (List.init 200 (fun i -> ((i + 2000) * 104729) lxor 0x27d4eb2f));
      Alcotest.(check bool) "probes counted" true (Block_file.probes run > 0);
      Alcotest.(check bool) "read_bytes counted" true (Block_file.read_bytes run > 0);
      Block_file.delete run;
      Alcotest.(check bool) "run file deleted" false
        (Sys.file_exists (Filename.concat d "run.blk")))

let test_block_unsorted_refused () =
  with_tmpdir (fun d ->
      let path = Filename.concat d "bad.blk" in
      let k1 = key_of_int 1 and k2 = key_of_int 2 in
      let lo, hi = if String.compare k1 k2 < 0 then (k1, k2) else (k2, k1) in
      Alcotest.check_raises "descending keys refused"
        (Invalid_argument "Block_file.create: keys must be strictly ascending")
        (fun () -> ignore (Block_file.create ~path [| (hi, 0); (lo, 1) |]));
      Alcotest.check_raises "duplicate keys refused"
        (Invalid_argument "Block_file.create: keys must be strictly ascending")
        (fun () -> ignore (Block_file.create ~path [| (lo, 0); (lo, 1) |])))

(* ----- Spill_store vs a Hashtbl mirror ----- *)

let test_spill_store_oracle () =
  with_tmpdir (fun d ->
      List.iter
        (fun mem_budget ->
          let store =
            Spill_store.create ~equal:Int.equal ~fingerprint:fp_of_int ~dir:d
              ~mem_budget ()
          in
          let mirror = Hashtbl.create 64 in
          let xs = List.init 500 (fun i -> (i * 31) mod 257) in
          List.iter
            (fun x ->
              let fresh = Spill_store.add_if_absent store x in
              Alcotest.(check bool)
                (Printf.sprintf "budget=%d add_if_absent %d" mem_budget x)
                (not (Hashtbl.mem mirror x))
                fresh;
              Hashtbl.replace mirror x ();
              Spill_store.maybe_evict store)
            xs;
          Alcotest.(check int)
            (Printf.sprintf "budget=%d bindings = distinct" mem_budget)
            (Hashtbl.length mirror) (Spill_store.bindings store);
          Alcotest.(check bool)
            (Printf.sprintf "budget=%d resident bounded" mem_budget)
            true
            (Spill_store.resident store <= max 1 mem_budget);
          for x = 0 to 400 do
            Alcotest.(check bool)
              (Printf.sprintf "budget=%d mem %d" mem_budget x)
              (Hashtbl.mem mirror x) (Spill_store.mem store x)
          done;
          if mem_budget < Hashtbl.length mirror then
            Alcotest.(check bool)
              (Printf.sprintf "budget=%d spilled something" mem_budget)
              true
              (Spill_store.spill_runs store > 0);
          Spill_store.dispose store)
        [ 1; 4; 64; 1_000_000 ])

(* ----- kernel drivers with spilling vs the balanced-tree reference ----- *)

let pick_n (module P : Protocol.S) ~default_n = if P.valid_n 3 then 3 else default_n

let reference_visited (module P : Protocol.S) ~n ~inputs =
  let module E = Engine.Make (P) in
  let module S = Set.Make (struct
    type t = E.config

    let compare = E.compare_config
  end) in
  let expand c = List.rev_map (fun a -> fst (E.apply_exn ~step:0 c a)) (E.applicable c) in
  let rec go visited = function
    | [] -> visited
    | c :: rest ->
      let fresh = List.filter (fun s -> not (S.mem s visited)) (expand c) in
      go (List.fold_left (fun v s -> S.add s v) visited fresh) (fresh @ rest)
  in
  let root = E.init ~n ~inputs in
  let visited = go (S.add root S.empty) [ root ] in
  (List.sort Int.compare (List.map E.fingerprint (S.elements visited)), S.cardinal visited)

type driver = Serial | Layers | Async

let driver_string = function Serial -> "serial" | Layers -> "layers" | Async -> "async"

let kernel_visited_spill ~driver (module P : Protocol.S) ~n ~inputs ~jobs ~spill =
  let module E = Engine.Make (P) in
  let module Pr = struct
    type state = E.config

    let compare = E.compare_config
    let fingerprint = E.fingerprint
    let expand c = List.rev_map (fun a -> fst (E.apply_exn ~step:0 c a)) (E.applicable c)
  end in
  let module K = Patterns_search.Search.Make (Pr) in
  match driver with
  | Serial ->
    (* the serial driver expands via [P.expand]: collect the visited
       set by re-walking with the outcome's metrics as witness — here
       we only need the expanded count and outcome, plus membership
       through a parallel expand accumulator below for the others *)
    let outcome, m = K.run ?spill ~root:(E.init ~n ~inputs) () in
    ( (match outcome with
      | Patterns_search.Search.Exhausted -> "exhausted"
      | Patterns_search.Search.Truncated r ->
        "truncated:" ^ Patterns_search.Search.reason_string r
      | Patterns_search.Search.Goal_found _ -> "goal"),
      None,
      m )
  | Layers | Async ->
    let expand =
      {
        K.empty = (fun () -> ref []);
        merge =
          (fun a b ->
            a := !b @ !a;
            a);
        expand =
          (fun acc c ->
            acc := E.fingerprint c :: !acc;
            Pr.expand c);
      }
    in
    Domain_pool.with_pool ~jobs (fun pool ->
        let outcome, fps, m =
          match driver with
          | Layers -> K.run_par ~pool ?spill ~expand ~root:(E.init ~n ~inputs) ()
          | _ -> K.run_par_async ~pool ?spill ~expand ~root:(E.init ~n ~inputs) ()
        in
        ( (match outcome with
          | Patterns_search.Search.Exhausted -> "exhausted"
          | Patterns_search.Search.Truncated r ->
            "truncated:" ^ Patterns_search.Search.reason_string r
          | Patterns_search.Search.Goal_found _ -> "goal"),
          Some (List.sort Int.compare !fps),
          m ))

let check_spill_case ~dir entry cases =
  let (module P : Protocol.S) = entry.Patterns_protocols.Registry.protocol in
  let n = pick_n (module P) ~default_n:entry.Patterns_protocols.Registry.default_n in
  let inputs = List.init n (fun i -> i mod 2 = 0) in
  let ref_fps, ref_card = reference_visited (module P) ~n ~inputs in
  List.iter
    (fun (driver, jobs, budget) ->
      let mem_budget = budget ~ref_card in
      let spill = Some { Patterns_search.Search.dir; mem_budget } in
      let outcome, fps, m = kernel_visited_spill ~driver (module P) ~n ~inputs ~jobs ~spill in
      let label fmt =
        Printf.sprintf "%s %s jobs=%d budget=%d: %s" P.name (driver_string driver) jobs
          mem_budget fmt
      in
      Alcotest.(check string) (label "outcome") "exhausted" outcome;
      Alcotest.(check int) (label "states_expanded") ref_card
        m.Patterns_search.Metrics.states_expanded;
      Option.iter
        (fun fps ->
          Alcotest.(check int) (label "cardinality") ref_card (List.length fps);
          Alcotest.(check (list int)) (label "fingerprint multiset") ref_fps fps)
        fps;
      if mem_budget < ref_card then
        Alcotest.(check bool) (label "spilled") true
          (m.Patterns_search.Metrics.spill_runs > 0))
    cases

(* Every registry protocol, every driver, a budget of a quarter of the
   visited set — small enough to force spilling everywhere, large
   enough that each store writes a handful of runs rather than one per
   state (a budget of 1 is roughly quadratic to probe; that regime is
   exercised on one small protocol in [test_drivers_tiny_budget]). *)
let quarter ~ref_card = max 8 (ref_card / 4)

let tiny ~ref_card:_ = 1
let small ~ref_card:_ = 8

let test_drivers_spill_oracle () =
  with_tmpdir (fun d ->
      List.iter
        (fun entry ->
          check_spill_case ~dir:d entry
            [ (Serial, 1, quarter); (Layers, 4, quarter); (Async, 4, quarter) ])
        (* the oracle's serial reference BFS must exhaust the reachable
           space; Ben-Or's is combinatorially explosive even at n = 3
           (see test_parallel), so it stays out of this uncapped sweep *)
        (List.filter
           (fun e -> e.Patterns_protocols.Registry.name <> "ben-or")
           Patterns_protocols.Registry.all))

let test_drivers_tiny_budget () =
  with_tmpdir (fun d ->
      let entry =
        List.find
          (fun e -> e.Patterns_protocols.Registry.name = "fig3-chain")
          Patterns_protocols.Registry.all
      in
      check_spill_case ~dir:d entry
        [
          (Serial, 1, tiny);
          (Serial, 1, small);
          (Layers, 1, tiny);
          (Layers, 4, tiny);
          (Layers, 4, small);
          (Async, 1, tiny);
          (Async, 4, tiny);
          (Async, 4, small);
        ])

(* ----- scheme / classify: spilling is answer-invisible end to end ----- *)

(* A handful of named protocols rather than the whole registry: the
   per-driver oracle above already proves spill-invariance of the raw
   kernels registry-wide; this checks the scheme-level wiring, where a
   whole-registry sweep at tiny budgets is quadratic in disk probes
   (fixed n up to 7 means 128 roots of up to 2000 configs each). *)
let test_scheme_spill_invariant () =
  with_tmpdir (fun d ->
      List.iter
        (fun (name, budgets) ->
          let entry = Option.get (Patterns_protocols.Registry.find name) in
          let (module P : Protocol.S) = entry.Patterns_protocols.Registry.protocol in
          let n =
            pick_n (module P) ~default_n:entry.Patterns_protocols.Registry.default_n
          in
          let module S = Patterns_pattern.Scheme.Make (P) in
          (* budget-truncated sweeps pin the layered driver, whose
             truncation prefix is deterministic (test_parallel) *)
          let run spill =
            S.scheme ~max_configs:2_000 ~jobs:2 ~par_mode:Patterns_search.Search.Layers
              ?spill ~n ()
          in
          let pats1, stats1 = run None in
          List.iter
            (fun mem_budget ->
              let pats, stats =
                run (Some { Patterns_search.Search.dir = d; mem_budget })
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s: scheme budget=%d = no spill" P.name mem_budget)
                true
                (Patterns_pattern.Pattern.Set.equal pats1 pats
                && stats1 = stats))
            budgets)
        [ ("fig3-chain", [ 5; 64 ]); ("2pc", [ 64 ]); ("fig4-perverse", [ 64 ]) ])

let test_classify_spill_invariant () =
  with_tmpdir (fun d ->
      let run spill =
        Patterns_core.Classify.classify ~max_failures:1 ~jobs:2 ?spill
          ~rule:Patterns_protocols.Decision_rule.Unanimity ~n:3
          Patterns_protocols.Chain_proto.fig3
      in
      let v1 = run None in
      Alcotest.(check bool) "fig3 classify is exhaustive" false
        v1.Patterns_core.Classify.truncated;
      (* the failure sweep visits ~23k configs: budgets are sized to
         spill hard (dozens of runs) without one run per config *)
      List.iter
        (fun mem_budget ->
          let v = run (Some { Patterns_search.Search.dir = d; mem_budget }) in
          Alcotest.(check bool)
            (Printf.sprintf "fig3 verdict budget=%d = no spill" mem_budget)
            true
            (Stdlib.compare v1 v = 0))
        [ 1_000; 8_000 ])

(* ----- Checkpoint: record / find / resume / refusal ----- *)

let test_checkpoint_roundtrip () =
  with_tmpdir (fun d ->
      let file = Filename.concat d "ck" in
      let spec = { Patterns_search.Checkpoint.file; resume = false; kill_after = None } in
      let t = Result.get_ok (Patterns_search.Checkpoint.create spec ~header:"h|n=3") in
      Patterns_search.Checkpoint.record t 2 "two";
      Patterns_search.Checkpoint.record t 0 "zero";
      Patterns_search.Checkpoint.record t 0 "ignored duplicate";
      Alcotest.(check int) "completed" 2 (Patterns_search.Checkpoint.completed t);
      (* a fresh process resumes and sees the same entries *)
      let spec' = { spec with Patterns_search.Checkpoint.resume = true } in
      let t' = Result.get_ok (Patterns_search.Checkpoint.create spec' ~header:"h|n=3") in
      Alcotest.(check (option string)) "entry 0" (Some "zero")
        (Patterns_search.Checkpoint.find t' 0);
      Alcotest.(check (option string)) "entry 1" None
        (Patterns_search.Checkpoint.find t' 1);
      Alcotest.(check (option string)) "entry 2" (Some "two")
        (Patterns_search.Checkpoint.find t' 2);
      (* header mismatch is refused *)
      (match
         (Patterns_search.Checkpoint.create spec' ~header:"h|n=4"
           : (string Patterns_search.Checkpoint.t, string) result)
       with
      | Ok _ -> Alcotest.fail "mismatched header accepted"
      | Error msg ->
        Alcotest.(check bool) "mismatch named" true (String.length msg > 0));
      (* a non-checkpoint file is refused *)
      let junk = Filename.concat d "junk" in
      let oc = open_out junk in
      output_string oc "not a checkpoint\n";
      close_out oc;
      (match
         (Patterns_search.Checkpoint.create
            { Patterns_search.Checkpoint.file = junk; resume = true; kill_after = None }
            ~header:"h"
           : (string Patterns_search.Checkpoint.t, string) result)
       with
      | Ok _ -> Alcotest.fail "junk file accepted"
      | Error _ -> ());
      (* resuming a missing file is a fresh start *)
      let missing = Filename.concat d "missing" in
      match
        (Patterns_search.Checkpoint.create
           { Patterns_search.Checkpoint.file = missing; resume = true; kill_after = None }
           ~header:"h"
          : (string Patterns_search.Checkpoint.t, string) result)
      with
      | Ok t -> Alcotest.(check int) "fresh" 0 (Patterns_search.Checkpoint.completed t)
      | Error msg -> Alcotest.fail msg)

let test_scheme_checkpoint_resume () =
  with_tmpdir (fun d ->
      let (module P : Protocol.S) = Patterns_protocols.Chain_proto.fig3 in
      let module S = Patterns_pattern.Scheme.Make (P) in
      let base = S.scheme ~n:3 () in
      let file = Filename.concat d "ck" in
      let fresh_metrics = ref Patterns_search.Metrics.zero in
      let fresh =
        S.scheme ~metrics:fresh_metrics
          ~checkpoint:{ Patterns_search.Checkpoint.file; resume = false; kill_after = None }
          ~n:3 ()
      in
      Alcotest.(check bool) "checkpointed = plain" true (base = fresh);
      Alcotest.(check bool) "checkpoint written" true (Sys.file_exists file);
      (* a full resume replays every vector from the file: each root's
         recorded metrics are merged back verbatim, so the resumed run
         reports the same counters as the run it replays *)
      let metrics = ref Patterns_search.Metrics.zero in
      let resumed =
        S.scheme ~metrics
          ~checkpoint:{ Patterns_search.Checkpoint.file; resume = true; kill_after = None }
          ~n:3 ()
      in
      Alcotest.(check bool) "resumed = plain" true (base = resumed);
      Alcotest.(check int) "replayed metrics are bit-identical"
        !fresh_metrics.Patterns_search.Metrics.states_expanded
        !metrics.Patterns_search.Metrics.states_expanded;
      (* mismatched parameters are refused *)
      Alcotest.(check bool) "mismatched n refused" true
        (try
           ignore
             (S.scheme
                ~checkpoint:
                  { Patterns_search.Checkpoint.file; resume = true; kill_after = None }
                ~n:2 ());
           false
         with Failure _ -> true))

let test_hunt_checkpoint_equivalence () =
  with_tmpdir (fun d ->
      (* winner case: the chunked checkpointed hunt returns the same
         certificate as the one-shot hunt *)
      let hunt ?checkpoint () =
        Patterns_adversary.Hunt.hunt ~max_failures:2 ~max_runs:5_000 ?checkpoint
          ~property:Patterns_core.Audit.TC
          ~rule:Patterns_protocols.Decision_rule.Unanimity ~n:3 ~seed:1984
          Patterns_protocols.Registry.(
            List.find (fun e -> e.name = "2pc") all)
      in
      let plain = hunt () in
      Alcotest.(check bool) "hunt finds the 2pc violation" true (Result.is_ok plain);
      let file = Filename.concat d "hunt-ck" in
      let fresh =
        hunt
          ~checkpoint:{ Patterns_search.Checkpoint.file; resume = false; kill_after = None }
          ()
      in
      Alcotest.(check bool) "checkpointed hunt = plain" true (plain = fresh);
      (* clean case across a chunk boundary: same tried count, and a
         resume replays the recorded chunks *)
      let clean ?checkpoint () =
        Patterns_adversary.Hunt.hunt ~max_failures:1 ~max_runs:5_000 ?checkpoint
          ~property:Patterns_core.Audit.Agreement
          ~rule:Patterns_protocols.Decision_rule.Unanimity ~n:3 ~seed:7
          Patterns_protocols.Registry.(
            List.find (fun e -> e.name = "2pc") all)
      in
      let plain = clean () in
      Alcotest.(check bool) "clean hunt exhausts its budget" true
        (plain = Error 5_000);
      let file = Filename.concat d "hunt-clean-ck" in
      let fresh =
        clean
          ~checkpoint:{ Patterns_search.Checkpoint.file; resume = false; kill_after = None }
          ()
      in
      Alcotest.(check bool) "checkpointed clean hunt = plain" true (plain = fresh);
      let resumed =
        clean
          ~checkpoint:{ Patterns_search.Checkpoint.file; resume = true; kill_after = None }
          ()
      in
      Alcotest.(check bool) "resumed clean hunt = plain" true (plain = resumed))

(* ----- qcheck ----- *)

let qcheck_tests =
  let open QCheck2 in
  [
    Test.make ~name:"key_of_fingerprint preserves order" ~count:500
      Gen.(pair int int)
      (fun (a, b) ->
        compare (compare a b) 0
        = compare
            (String.compare
               (Spill_store.key_of_fingerprint a)
               (Spill_store.key_of_fingerprint b))
            0);
    Test.make ~name:"Block_file probe = sorted association" ~count:60
      Gen.(pair (list_size (int_range 1 300) (int_bound 10_000)) (int_bound 100_000))
      (fun (xs, seed) ->
        with_tmpdir (fun d ->
            let entries = sorted_entries xs in
            Array.length entries > 0
            ==>
            let run =
              Block_file.create
                ~path:(Filename.concat d (Printf.sprintf "r%d.blk" seed))
                entries
            in
            let ok_present =
              Array.for_all (fun (k, v) -> Block_file.probe run k = Some v) entries
            in
            let prng = Prng.create ~seed in
            let ok_absent =
              List.for_all
                (fun _ ->
                  let x = 10_001 + Prng.int prng ~bound:100_000 in
                  Block_file.probe run (key_of_int x) = None)
                (List.init 50 Fun.id)
            in
            Block_file.delete run;
            ok_present && ok_absent));
    Test.make ~name:"Spill_store membership = Hashtbl mirror" ~count:40
      Gen.(
        tup3
          (list_size (int_range 1 400) (int_bound 200))
          (int_range 1 16)
          (int_bound 100_000))
      (fun (xs, mem_budget, seed) ->
        with_tmpdir (fun d ->
            let store =
              Spill_store.create ~equal:Int.equal ~fingerprint:fp_of_int ~dir:d
                ~mem_budget ()
            in
            let mirror = Hashtbl.create 64 in
            let ok_inserts =
              List.for_all
                (fun x ->
                  let fresh = Spill_store.add_if_absent store x in
                  let expected = not (Hashtbl.mem mirror x) in
                  Hashtbl.replace mirror x ();
                  Spill_store.maybe_evict store;
                  fresh = expected)
                xs
            in
            let prng = Prng.create ~seed in
            let ok_probes =
              List.for_all
                (fun _ ->
                  let x = Prng.int prng ~bound:250 in
                  Spill_store.mem store x = Hashtbl.mem mirror x)
                (List.init 100 Fun.id)
            in
            let ok_counts = Spill_store.bindings store = Hashtbl.length mirror in
            Spill_store.dispose store;
            ok_inserts && ok_probes && ok_counts));
  ]

let () =
  Alcotest.run "spill"
    [
      ( "block_file",
        [
          Alcotest.test_case "codec" `Quick test_block_codec;
          Alcotest.test_case "key order" `Quick test_key_order;
          Alcotest.test_case "create and probe" `Quick test_block_probe;
          Alcotest.test_case "unsorted refused" `Quick test_block_unsorted_refused;
        ] );
      ( "spill_store",
        [ Alcotest.test_case "hashtbl oracle" `Quick test_spill_store_oracle ] );
      ( "drivers",
        [
          Alcotest.test_case "registry oracle, all drivers" `Quick
            test_drivers_spill_oracle;
          Alcotest.test_case "tiny budgets, one protocol" `Quick test_drivers_tiny_budget;
          Alcotest.test_case "scheme spill-invariant" `Quick test_scheme_spill_invariant;
          Alcotest.test_case "classify spill-invariant" `Quick
            test_classify_spill_invariant;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip and refusal" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "scheme resume" `Quick test_scheme_checkpoint_resume;
          Alcotest.test_case "hunt chunk equivalence" `Quick
            test_hunt_checkpoint_equivalence;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
