(* Behavioural tests for every protocol implementation. *)

open Patterns_sim
open Patterns_protocols

let ones n = List.init n (fun _ -> true)

let run_fifo (module P : Protocol.S) ?(failures = []) n inputs =
  let module E = Engine.Make (P) in
  let r = E.run ~failures ~scheduler:E.fifo_scheduler ~n ~inputs () in
  ( r.E.quiescent,
    Trace.message_count r.E.trace,
    Trace.decisions r.E.trace,
    Array.to_list (E.statuses r.E.final) )

let blocking_by_design e = e.Registry.name = "coop-2pc"

(* the ST "attempt" variants exist to demonstrate Theorem 13's
   impossibility: they are expected to lose nonfaulty agreement under
   the right crash schedule *)
let doomed_by_design e =
  List.mem e.Registry.name [ "fig3-chain-st"; "fig4-perverse-st" ]

let all_decide expected decisions n_nonfaulty =
  List.length decisions = n_nonfaulty
  && List.for_all (fun (_, d) -> Decision.equal d expected) decisions

(* ----- Tree shapes ----- *)

let test_tree_shapes () =
  let t = Tree.binary 7 in
  Alcotest.(check int) "root" 0 (Tree.root t);
  Alcotest.(check (list int)) "children of 0" [ 1; 2 ] (Tree.children t 0);
  Alcotest.(check (list int)) "children of 2" [ 5; 6 ] (Tree.children t 2);
  Alcotest.(check bool) "p3 is leaf" true (Tree.is_leaf t 3);
  Alcotest.(check bool) "p1 is internal" false (Tree.is_leaf t 1);
  Alcotest.(check int) "depth" 2 (Tree.depth t);
  let s = Tree.star 5 in
  Alcotest.(check (list int)) "star children" [ 1; 2; 3; 4 ] (Tree.children s 0);
  let p = Tree.path 4 in
  Alcotest.(check int) "path depth" 3 (Tree.depth p)

let test_tree_invalid () =
  Alcotest.(check bool) "two roots rejected" true
    (try
       ignore (Tree.of_parents [| None; None |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "cycle rejected" true
    (try
       ignore (Tree.of_parents [| Some 1; Some 0 |]);
       false
     with Invalid_argument _ -> true)

(* ----- Figure 1 tree protocol ----- *)

let test_fig1_commit () =
  let q, msgs, decisions, _ = run_fifo Tree_proto.fig1 7 (ones 7) in
  Alcotest.(check bool) "quiescent" true q;
  (* 6 bits up + 6 bias down + 6 acks up + 6 commits down *)
  Alcotest.(check int) "24 messages" 24 msgs;
  Alcotest.(check bool) "all commit" true (all_decide Decision.Commit decisions 7)

let test_fig1_abort_skips_zero_leaf () =
  let inputs = [ true; true; true; false; true; true; true ] in
  let q, msgs, decisions, _ = run_fifo Tree_proto.fig1 7 inputs in
  Alcotest.(check bool) "quiescent" true q;
  (* 6 bits up + 5 bias down (the 0-leaf p3 is skipped), no phase 2 *)
  Alcotest.(check int) "11 messages" 11 msgs;
  Alcotest.(check bool) "all abort" true (all_decide Decision.Abort decisions 7)

let test_fig1_failure_recovers () =
  let q, _, decisions, _ = run_fifo Tree_proto.fig1 ~failures:[ (5, 1) ] 7 (ones 7) in
  Alcotest.(check bool) "quiescent" true q;
  let nonfaulty = List.filter (fun (p, _) -> p <> 1) decisions in
  Alcotest.(check int) "six survivors decide" 6 (List.length nonfaulty);
  Alcotest.(check bool) "survivors agree" true
    (match nonfaulty with
    | (_, d) :: rest -> List.for_all (fun (_, d') -> Decision.equal d d') rest
    | [] -> false)

let test_fig1_amnesic_forgets () =
  let _, _, decisions, statuses = run_fifo Tree_proto.fig1_amnesic 7 (ones 7) in
  Alcotest.(check bool) "all decided commit first" true (all_decide Decision.Commit decisions 7);
  Alcotest.(check bool) "all amnesic at the end" true
    (List.for_all (fun st -> st.Status.amnesic) statuses)

(* ----- Figure 2 central protocol ----- *)

let test_fig2_commit_and_halt () =
  let q, msgs, decisions, statuses = run_fifo Central_proto.fig2 4 (ones 4) in
  Alcotest.(check bool) "quiescent" true q;
  (* 3 votes + p0's 3 decisions + each participant rebroadcasts to 2 peers *)
  Alcotest.(check int) "12 messages" 12 msgs;
  Alcotest.(check bool) "all commit" true (all_decide Decision.Commit decisions 4);
  Alcotest.(check bool) "all halt" true (List.for_all (fun st -> st.Status.halted) statuses)

let test_fig2_abort_on_zero () =
  let _, _, decisions, _ = run_fifo Central_proto.fig2 4 [ true; true; false; true ] in
  Alcotest.(check bool) "all abort" true (all_decide Decision.Abort decisions 4)

let test_fig2_participant_failure () =
  (* p2 fails immediately: p0 substitutes abort *)
  let q, _, decisions, _ = run_fifo Central_proto.fig2 ~failures:[ (0, 2) ] 4 (ones 4) in
  Alcotest.(check bool) "quiescent" true q;
  let nonfaulty = List.filter (fun (p, _) -> p <> 2) decisions in
  Alcotest.(check bool) "survivors abort" true
    (List.for_all (fun (_, d) -> Decision.equal d Decision.Abort) nonfaulty)

let test_fig2_threshold_rule () =
  let (module P) = Central_proto.make ~rule:(Decision_rule.Threshold 2) ~name:"central-thr2" in
  let module E = Engine.Make (P) in
  let r = E.run ~scheduler:E.fifo_scheduler ~n:4 ~inputs:[ true; false; true; false ] () in
  Alcotest.(check bool) "threshold 2 commits" true
    (List.for_all (fun (_, d) -> Decision.equal d Decision.Commit) (Trace.decisions r.E.trace))

(* ----- Figure 3 chain protocol ----- *)

let test_fig3_chain_flow () =
  let q, msgs, decisions, statuses = run_fifo Chain_proto.fig3 4 (ones 4) in
  Alcotest.(check bool) "quiescent" true q;
  (* 3 votes + 3 chain hops *)
  Alcotest.(check int) "6 messages" 6 msgs;
  Alcotest.(check bool) "all commit" true (all_decide Decision.Commit decisions 4);
  Alcotest.(check bool) "nobody halts (weak termination)" true
    (List.for_all (fun st -> not st.Status.halted) statuses)

let test_fig3_decision_order_follows_chain () =
  let (module P) = Chain_proto.fig3 in
  let module E = Engine.Make (P) in
  let r = E.run ~scheduler:E.fifo_scheduler ~n:4 ~inputs:(ones 4) () in
  let order = List.map fst (Trace.decisions r.E.trace) in
  Alcotest.(check (list int)) "p0 then p1 then p2 then p3" [ 0; 1; 2; 3 ] order

let test_fig3_mid_chain_failure () =
  (* p1 fails right away; everyone else must still decide (via termination) *)
  let q, _, decisions, _ = run_fifo Chain_proto.fig3 ~failures:[ (0, 1) ] 4 (ones 4) in
  Alcotest.(check bool) "quiescent" true q;
  let nonfaulty = List.filter (fun (p, _) -> p <> 1) decisions in
  Alcotest.(check int) "three survivors decide" 3 (List.length nonfaulty)

(* ----- two-phase commit ----- *)

let test_2pc_flow () =
  let q, msgs, decisions, statuses = run_fifo Two_phase_commit.default 5 (ones 5) in
  Alcotest.(check bool) "quiescent" true q;
  (* 4 votes + 4 decisions *)
  Alcotest.(check int) "8 messages" 8 msgs;
  Alcotest.(check bool) "all commit" true (all_decide Decision.Commit decisions 5);
  (* the coordinator halts; the participants stay available *)
  Alcotest.(check bool) "coordinator halted" true (List.hd statuses).Status.halted;
  Alcotest.(check bool) "participants listening" true
    (List.for_all (fun st -> not st.Status.halted) (List.tl statuses))

let test_2pc_coordinator_decides_first () =
  let (module P) = Two_phase_commit.default in
  let module E = Engine.Make (P) in
  let r = E.run ~scheduler:E.fifo_scheduler ~n:4 ~inputs:(ones 4) () in
  match Trace.decisions r.E.trace with
  | (first, _) :: _ -> Alcotest.(check int) "coordinator decides first" 0 first
  | [] -> Alcotest.fail "nobody decided"

(* ----- decentralized commit ----- *)

let test_d2pc_flow () =
  let q, msgs, decisions, _ = run_fifo Decentralized_commit.default 4 (ones 4) in
  Alcotest.(check bool) "quiescent" true q;
  Alcotest.(check int) "n(n-1) messages" 12 msgs;
  Alcotest.(check bool) "all commit" true (all_decide Decision.Commit decisions 4)

let test_d2pc_abort () =
  let _, _, decisions, _ = run_fifo Decentralized_commit.default 4 [ true; true; true; false ] in
  Alcotest.(check bool) "all abort" true (all_decide Decision.Abort decisions 4)

(* ----- reliable broadcast ----- *)

let test_rbcast_value_relayed () =
  let q, msgs, decisions, _ = run_fifo Reliable_broadcast.default 4 [ true; false; false; false ] in
  Alcotest.(check bool) "quiescent" true q;
  (* general: 3 sends; each lieutenant relays to the 2 others *)
  Alcotest.(check int) "9 messages" 9 msgs;
  Alcotest.(check bool) "all decide the general's 1" true (all_decide Decision.Commit decisions 4)

let test_rbcast_zero_value () =
  let _, _, decisions, _ = run_fifo Reliable_broadcast.default 4 [ false; true; true; true ] in
  Alcotest.(check bool) "all decide 0" true (all_decide Decision.Abort decisions 4)

let test_rbcast_general_fails_before_sending () =
  let q, _, decisions, _ =
    run_fifo Reliable_broadcast.default ~failures:[ (0, 0) ] 4 [ true; false; false; false ]
  in
  Alcotest.(check bool) "quiescent" true q;
  let lieutenants = List.filter (fun (p, _) -> p <> 0) decisions in
  Alcotest.(check int) "all lieutenants decide" 3 (List.length lieutenants);
  Alcotest.(check bool) "default 0" true
    (List.for_all (fun (_, d) -> Decision.equal d Decision.Abort) lieutenants)

(* ----- standalone termination protocol ----- *)

let test_termination_threshold_one () =
  let _, _, decisions, _ = run_fifo Termination_proto.default 4 [ false; false; true; false ] in
  Alcotest.(check bool) "one 1 suffices to commit" true (all_decide Decision.Commit decisions 4);
  let _, _, decisions0, _ = run_fifo Termination_proto.default 4 (List.init 4 (fun _ -> false)) in
  Alcotest.(check bool) "all 0 aborts" true (all_decide Decision.Abort decisions0 4)

let test_termination_steps_quadratic () =
  let (module P) = Termination_proto.default in
  let module E = Engine.Make (P) in
  List.iter
    (fun n ->
      let r = E.run ~scheduler:E.fifo_scheduler ~n ~inputs:(ones n) () in
      let steps = Trace.steps_per_proc ~n r.E.trace in
      (* N rounds, each N-1 sends and N-1 receives *)
      Alcotest.(check int)
        (Printf.sprintf "steps at n=%d" n)
        (2 * n * (n - 1))
        (Array.fold_left max 0 steps))
    [ 3; 5; 7 ]

let test_termination_halts () =
  let _, _, _, statuses = run_fifo Termination_proto.default 4 (ones 4) in
  Alcotest.(check bool) "all halted" true (List.for_all (fun st -> st.Status.halted) statuses)

(* ----- termination core unit behaviour ----- *)

let test_termination_core_rounds () =
  let open Termination_core in
  let up = Proc_id.set_of_list [ 0; 1 ] in
  let t = start ~n:2 ~me:0 ~up ~bias:Noncommittable in
  Alcotest.(check bool) "starts sending" true (Step_kind.equal (step_kind t) Step_kind.Sending);
  let out, t = send t in
  (match out with
  | Some (1, Round { round = 1; bias = Noncommittable }) -> ()
  | _ -> Alcotest.fail "expected round-1 broadcast to p1");
  let t = on_msg t ~from:1 (Round { round = 1; bias = Committable }) in
  Alcotest.(check bool) "bias upgraded" true (bias_equal (bias_of t) Committable);
  (* round 2 of 2: drain the broadcast, then receive the last message *)
  let _, t = send t in
  let t = on_msg t ~from:1 (Round { round = 2; bias = Committable }) in
  Alcotest.(check bool) "finished" true (finished t);
  Alcotest.(check (option bool)) "commits" (Some true)
    (Option.map Decision.to_bool (outcome t))

let test_termination_core_stale_rounds () =
  let open Termination_core in
  let up = Proc_id.set_of_list [ 0; 1; 2 ] in
  let drain t =
    let _, t = send t in
    let _, t = send t in
    t
  in
  let to_round_2 =
    let t = start ~n:3 ~me:0 ~up ~bias:Noncommittable in
    let t = drain t in
    let t = on_msg t ~from:1 (Round { round = 1; bias = Noncommittable }) in
    let t = on_msg t ~from:2 (Round { round = 1; bias = Noncommittable }) in
    drain t
  in
  (* a stale round-1 committable arriving during round 2 (of 3) can
     still be propagated in round 3, so it is adopted *)
  let t = on_msg to_round_2 ~from:1 (Round { round = 1; bias = Committable }) in
  Alcotest.(check bool) "mid-run stale bias adopted" true (bias_equal (bias_of t) Committable);
  (* ... but one arriving during the final round cannot be propagated
     and must be dropped *)
  let to_round_3 =
    let t = on_msg to_round_2 ~from:1 (Round { round = 2; bias = Noncommittable }) in
    let t = on_msg t ~from:2 (Round { round = 2; bias = Noncommittable }) in
    drain t
  in
  let t = on_msg to_round_3 ~from:1 (Round { round = 1; bias = Committable }) in
  Alcotest.(check bool) "final-round stale bias dropped" true
    (bias_equal (bias_of t) Noncommittable);
  (* a current final-round committable is adopted: its sender broadcast
     it to every peer *)
  let t = on_msg to_round_3 ~from:1 (Round { round = 3; bias = Committable }) in
  Alcotest.(check bool) "current final-round bias adopted" true
    (bias_equal (bias_of t) Committable)

let test_termination_core_failure_shrinks () =
  let open Termination_core in
  let up = Proc_id.set_of_list [ 0; 1; 2 ] in
  let t = start ~n:3 ~me:0 ~up ~bias:Committable in
  let _, t = send t in
  let _, t = send t in
  let t = on_failure t 1 in
  let t = on_msg t ~from:2 (Round { round = 1; bias = Noncommittable }) in
  (* round 2: only p2 left *)
  let _, t = send t in
  let t = on_failure t 2 in
  (* remaining rounds race to completion with an empty UP *)
  Alcotest.(check bool) "finished after all peers gone" true (finished t);
  Alcotest.(check (option bool)) "still commits" (Some true)
    (Option.map Decision.to_bool (outcome t))

let test_termination_core_amnesic_announce () =
  let open Termination_core in
  let up = Proc_id.set_of_list [ 0; 1; 2 ] in
  let t = start_amnesic ~n:3 ~me:0 ~up in
  let out1, t = send t in
  let out2, t = send t in
  (match (out1, out2) with
  | Some (1, Amnesic_notice), Some (2, Amnesic_notice) -> ()
  | _ -> Alcotest.fail "expected amnesia announcements");
  Alcotest.(check bool) "finished without outcome" true (finished t && outcome t = None)

(* ----- decision rules ----- *)

let test_decision_rules () =
  let inputs = [| true; true; false |] in
  Alcotest.(check bool) "unanimity forbids commit" false
    (Decision_rule.permits Decision_rule.Unanimity ~inputs ~failure_occurred:false Decision.Commit);
  Alcotest.(check bool) "unanimity permits abort (a zero)" true
    (Decision_rule.permits Decision_rule.Unanimity ~inputs ~failure_occurred:false Decision.Abort);
  Alcotest.(check bool) "unanimity forbids abort on all ones, failure-free" false
    (Decision_rule.permits Decision_rule.Unanimity ~inputs:[| true; true |] ~failure_occurred:false
       Decision.Abort);
  Alcotest.(check bool) "failure permits abort" true
    (Decision_rule.permits Decision_rule.Unanimity ~inputs:[| true; true |] ~failure_occurred:true
       Decision.Abort);
  Alcotest.(check bool) "broadcast follows the general" true
    (Decision.equal
       (Decision_rule.natural_decision (Decision_rule.Broadcast 2) inputs)
       Decision.Abort);
  Alcotest.(check bool) "threshold 2" true
    (Decision.equal (Decision_rule.natural_decision (Decision_rule.Threshold 2) inputs) Decision.Commit);
  Alcotest.(check bool) "subset rule" true
    (Decision.equal
       (Decision_rule.natural_decision (Decision_rule.Subset [ 0; 1 ]) inputs)
       Decision.Commit)

(* ----- vote collection ----- *)

let test_vote_collect () =
  let vc = Vote_collect.start [ 1; 2 ] in
  Alcotest.(check bool) "awaiting p1" true (Vote_collect.awaiting vc 1);
  let vc = Vote_collect.add_bit vc 1 true in
  Alcotest.(check bool) "incomplete" false (Vote_collect.complete vc);
  let vc = Vote_collect.note_failure vc 2 in
  Alcotest.(check bool) "complete" true (Vote_collect.complete vc);
  Alcotest.(check bool) "failure seen" true (Vote_collect.failure_seen vc);
  Alcotest.(check bool) "decision aborts on failure" true
    (Decision.equal
       (Vote_collect.decide ~rule:Decision_rule.Unanimity ~n:3 ~me:0 ~own:true vc)
       Decision.Abort)

(* ----- total-communication transform ----- *)

let test_total_comm_preserves_decisions () =
  let base = Two_phase_commit.default in
  let (module B) = base in
  let (module T) = Total_comm.transform base in
  let module EB = Engine.Make (B) in
  let module ET = Engine.Make (T) in
  List.iter
    (fun inputs ->
      let rb = EB.run ~scheduler:EB.fifo_scheduler ~n:4 ~inputs () in
      let rt = ET.run ~scheduler:ET.fifo_scheduler ~n:4 ~inputs () in
      Alcotest.(check bool) "same decisions" true
        (List.sort compare (Trace.decisions rb.EB.trace)
        = List.sort compare (Trace.decisions rt.ET.trace));
      Alcotest.(check int) "same number of messages" (Trace.message_count rb.EB.trace)
        (Trace.message_count rt.ET.trace))
    [ ones 4; [ true; false; true; true ]; List.init 4 (fun _ -> false) ]

let test_total_comm_random_schedules () =
  let (module T) = Total_comm.transform Patterns_protocols.Chain_proto.fig3 in
  let module E = Engine.Make (T) in
  for seed = 1 to 20 do
    let prng = Patterns_stdx.Prng.create ~seed in
    let r = E.run ~scheduler:(E.random_scheduler prng) ~n:4 ~inputs:(ones 4) () in
    if not r.E.quiescent then Alcotest.fail "transform must still quiesce";
    if List.length (Trace.decisions r.E.trace) <> 4 then Alcotest.fail "everyone decides"
  done

(* ----- tree-of-processes 2PC ([ML]) ----- *)

let test_tree_commit_flow () =
  let q, msgs, decisions, _ = run_fifo Tree_commit.binary7 7 (ones 7) in
  Alcotest.(check bool) "quiescent" true q;
  (* one up-sweep and one down-sweep: 6 bits + 6 decisions *)
  Alcotest.(check int) "12 messages" 12 msgs;
  Alcotest.(check bool) "all commit" true (all_decide Decision.Commit decisions 7)

let test_tree_commit_abort () =
  let _, _, decisions, _ = run_fifo Tree_commit.binary7 7 [ true; true; true; true; false; true; true ] in
  Alcotest.(check bool) "all abort" true (all_decide Decision.Abort decisions 7)

let test_tree_commit_root_decides_first () =
  let (module P) = Tree_commit.binary7 in
  let module E = Engine.Make (P) in
  let r = E.run ~scheduler:E.fifo_scheduler ~n:7 ~inputs:(ones 7) () in
  match Trace.decisions r.E.trace with
  | (first, _) :: _ -> Alcotest.(check int) "root decides first" 0 first
  | [] -> Alcotest.fail "nobody decided"

let test_tree_commit_failure_recovers () =
  let q, _, decisions, _ = run_fifo Tree_commit.binary7 ~failures:[ (4, 2) ] 7 (ones 7) in
  Alcotest.(check bool) "quiescent" true q;
  let nonfaulty = List.filter (fun (p, _) -> p <> 2) decisions in
  Alcotest.(check int) "six survivors decide" 6 (List.length nonfaulty);
  Alcotest.(check bool) "survivors agree" true
    (match nonfaulty with
    | (_, d) :: rest -> List.for_all (fun (_, d') -> Decision.equal d d') rest
    | [] -> false)

(* ----- rule-parametric voting tree ----- *)

let test_voting_tree_threshold () =
  let p = Voting_tree.threshold_star ~k:2 4 in
  let (module P) = p in
  let module E = Engine.Make (P) in
  let outcomes inputs =
    let r = E.run ~scheduler:E.fifo_scheduler ~n:4 ~inputs () in
    List.map snd (Trace.decisions r.E.trace)
  in
  Alcotest.(check bool) "two ones commit" true
    (List.for_all (Decision.equal Decision.Commit) (outcomes [ true; false; true; false ]));
  Alcotest.(check bool) "one one aborts" true
    (List.for_all (Decision.equal Decision.Abort) (outcomes [ false; false; true; false ]))

let test_voting_tree_subset () =
  let p = Voting_tree.subset_star ~quorum:[ 1; 3 ] 4 in
  let (module P) = p in
  let module E = Engine.Make (P) in
  let outcomes inputs =
    let r = E.run ~scheduler:E.fifo_scheduler ~n:4 ~inputs () in
    List.map snd (Trace.decisions r.E.trace)
  in
  Alcotest.(check bool) "quorum of ones commits" true
    (List.for_all (Decision.equal Decision.Commit) (outcomes [ false; true; false; true ]));
  Alcotest.(check bool) "missing quorum member aborts" true
    (List.for_all (Decision.equal Decision.Abort) (outcomes [ true; true; true; false ]))

let test_voting_tree_is_tc () =
  let v =
    Patterns_core.Classify.classify ~max_failures:1 ~rule:(Decision_rule.Threshold 2) ~n:3
      (Voting_tree.threshold_star ~k:2 3)
  in
  Alcotest.(check bool) "tc" true v.Patterns_core.Classify.tc;
  Alcotest.(check bool) "safe states" true v.Patterns_core.Classify.all_states_safe

(* ----- topology fuzzing: the tree protocols over random shapes ----- *)

let test_tree_protocols_on_random_topologies () =
  for seed = 1 to 12 do
    let n = 3 + (seed mod 5) in
    let tree = Tree.random ~seed n in
    let prng = Patterns_stdx.Prng.create ~seed:(seed * 31) in
    let inputs = List.init n (fun _ -> Patterns_stdx.Prng.bool prng) in
    List.iter
      (fun (kind, p) ->
        let (module P : Protocol.S) = p in
        let module E = Engine.Make (P) in
        (* failure-free on a random fair schedule *)
        let r = E.run ~scheduler:(E.random_scheduler (Patterns_stdx.Prng.split prng)) ~n ~inputs () in
        if not r.E.quiescent then
          Alcotest.fail (Printf.sprintf "%s seed %d: did not quiesce" kind seed);
        (match Patterns_core.Check.validity Decision_rule.Unanimity ~inputs r.E.trace with
        | Ok () -> ()
        | Error m -> Alcotest.fail (Printf.sprintf "%s seed %d: %s" kind seed m));
        (* one random crash *)
        let victim = Patterns_stdx.Prng.int prng ~bound:n in
        let at = Patterns_stdx.Prng.int prng ~bound:30 in
        let r =
          E.run ~failures:[ (at, victim) ]
            ~scheduler:(E.random_scheduler (Patterns_stdx.Prng.split prng)) ~n ~inputs ()
        in
        match Patterns_core.Check.nonfaulty_agreement r.E.trace with
        | Ok () -> ()
        | Error m -> Alcotest.fail (Printf.sprintf "%s seed %d (crash): %s" kind seed m))
      [
        ("fig1-style", Tree_proto.make ~name:"rnd-tree" ~describe:"random tree" tree);
        ("tree-2pc", Tree_commit.make ~name:"rnd-tree-2pc" tree);
        ("voting", Voting_tree.make ~rule:Decision_rule.Unanimity ~name:"rnd-voting" tree);
      ]
  done

(* ----- systematic crash sweep over the whole catalogue ----- *)

let test_crash_sweep_catalogue () =
  (* fail every processor at every step of the fair run, for every
     registry protocol: interactive consistency and nonfaulty
     agreement must always hold; everyone must decide unless the
     protocol blocks by design *)
  List.iter
    (fun e ->
      let (module P : Protocol.S) = e.Registry.protocol in
      let module E = Engine.Make (P) in
      let n = e.Registry.default_n in
      let inputs = ones n in
      let horizon = (E.run ~scheduler:E.fifo_scheduler ~n ~inputs ()).E.steps in
      for victim = 0 to n - 1 do
        for step = 0 to horizon do
          let r = E.run ~failures:[ (step, victim) ] ~scheduler:E.fifo_scheduler ~n ~inputs () in
          let ctx = Printf.sprintf "%s victim=%d step=%d" e.Registry.name victim step in
          if not r.E.quiescent then Alcotest.fail (ctx ^ ": not quiescent");
          (match Patterns_core.Check.interactive_consistency r.E.trace with
          | Ok () -> ()
          | Error m -> Alcotest.fail (ctx ^ ": " ^ m));
          (if not (doomed_by_design e) then
             match Patterns_core.Check.nonfaulty_agreement r.E.trace with
             | Ok () -> ()
             | Error m -> Alcotest.fail (ctx ^ ": " ^ m));
          if not (blocking_by_design e) then begin
            let failed = Trace.failures r.E.trace in
            let ever = Patterns_core.Check.ever_decided ~n r.E.trace in
            List.iter
              (fun p ->
                if (not (List.mem p failed)) && ever.(p) = None then
                  Alcotest.fail (ctx ^ Printf.sprintf ": nonfaulty p%d undecided" p))
              (Proc_id.all ~n)
          end
        done
      done)
    Registry.all

(* ----- scale guard ----- *)

let test_scale_guard () =
  let check name p n expected_msgs =
    let (module P : Protocol.S) = p in
    let module E = Engine.Make (P) in
    let r = E.run ~scheduler:E.fifo_scheduler ~n ~inputs:(ones n) () in
    if not r.E.quiescent then Alcotest.fail (name ^ ": did not quiesce");
    Alcotest.(check int) (name ^ " messages") expected_msgs (Trace.message_count r.E.trace)
  in
  check "2pc n=48" Two_phase_commit.default 48 (2 * 47);
  check "d2pc n=24" Decentralized_commit.default 24 (24 * 23);
  check "termination n=16" Termination_proto.default 16 (16 * 16 * 15);
  check "3pc n=32" (Tree_proto.three_phase_commit 32) 32 (4 * 31)

(* ----- cooperative-termination 2PC ([S81]) ----- *)

let test_coop_2pc_happy_path () =
  let q, msgs, decisions, _ = run_fifo Coop_2pc.default 4 (ones 4) in
  Alcotest.(check bool) "quiescent" true q;
  Alcotest.(check int) "3 votes + 3 decisions" 6 msgs;
  Alcotest.(check bool) "all commit" true (all_decide Decision.Commit decisions 4)

let test_coop_2pc_peer_answers () =
  (* coordinator crashes after sending the decision to p1 only; p2 and
     p3 learn it from p1 through decision-requests *)
  let (module P) = Coop_2pc.default in
  let module E = Engine.Make (P) in
  let c = E.init ~n:4 ~inputs:(ones 4) in
  let directives =
    [ E.Step_of 1; E.Step_of 2; E.Step_of 3;
      E.Deliver_from (0, 1); E.Deliver_from (0, 2); E.Deliver_from (0, 3);
      E.Step_of 0 (* decision to p1 only *);
      E.Fail_now 0;
      E.Deliver_from (1, 0) (* p1 decides *);
      E.Flush_fifo ]
  in
  match E.play c directives with
  | Error e -> Alcotest.fail e
  | Ok (final, trace) ->
    Alcotest.(check int) "all participants decide" 3
      (List.length (List.filter (fun (p, _) -> p <> 0) (Trace.decisions trace)));
    Alcotest.(check bool) "consistent" true
      (Result.is_ok (Patterns_core.Check.nonfaulty_agreement trace));
    ignore final

let test_coop_2pc_blocks () =
  (* coordinator crashes before any decision: everyone blocks, nobody
     guesses — total consistency preserved at the price of liveness *)
  let q, _, decisions, _ = run_fifo Coop_2pc.default ~failures:[ (6, 0) ] 4 (ones 4) in
  Alcotest.(check bool) "quiescent (deadlocked)" true q;
  Alcotest.(check bool) "nobody decided" true
    (List.for_all (fun (p, _) -> p = 0) decisions)

(* ----- registry-wide generic invariants ----- *)

let registry_rule e =
  if e.Registry.name = "ben-or" then Decision_rule.Any_input
  else if e.Registry.name = "reliable-broadcast" then Decision_rule.Broadcast 0
  else if e.Registry.name = "termination" then Decision_rule.Threshold 1
  else if e.Registry.name = "voting-star-thr3-5" then Decision_rule.Threshold 3
  else if e.Registry.name = "voting-star-subset-5" then Decision_rule.Subset [ 0; 1 ]
  else Decision_rule.Unanimity

let test_every_protocol_decides_failure_free () =
  List.iter
    (fun e ->
      let (module P : Protocol.S) = e.Registry.protocol in
      let module E = Engine.Make (P) in
      let n = e.Registry.default_n in
      let r = E.run ~scheduler:E.fifo_scheduler ~n ~inputs:(ones n) () in
      if not r.E.quiescent then Alcotest.fail (e.Registry.name ^ ": did not quiesce");
      if List.length (Trace.decisions r.E.trace) <> n then
        Alcotest.fail (e.Registry.name ^ ": not everyone decided");
      match Patterns_core.Check.validity (registry_rule e) ~inputs:(ones n) r.E.trace with
      | Ok () -> ()
      | Error m -> Alcotest.fail (e.Registry.name ^ ": " ^ m))
    Registry.all

let test_every_protocol_deterministic_per_seed () =
  List.iter
    (fun e ->
      let (module P : Protocol.S) = e.Registry.protocol in
      let module E = Engine.Make (P) in
      let n = e.Registry.default_n in
      let run seed =
        let r =
          E.run ~scheduler:(E.random_scheduler (Patterns_stdx.Prng.create ~seed)) ~n
            ~inputs:(ones n) ()
        in
        (r.E.steps, Trace.message_count r.E.trace)
      in
      if run 37 <> run 37 then Alcotest.fail (e.Registry.name ^ ": nondeterministic for a seed"))
    Registry.all

let test_every_protocol_audit_agreement () =
  (* every protocol in the catalogue keeps nonfaulty deciders agreeing
     under random crashes (the amnesic chain is the designed exception,
     exercised by the Theorem 13 scenario, not by random schedules —
     include it anyway: random runs rarely hit the needed race, so keep
     the assertion strict and let failures point at real regressions) *)
  List.iter
    (fun e ->
      let report =
        Patterns_core.Audit.random_audit ~max_failures:2 ~rule:(registry_rule e)
          ~n:e.Registry.default_n ~runs:60 ~seed:5 e.Registry.protocol
      in
      let wt_ok =
        (* cooperative 2PC blocks by design when the coordinator dies
           in the uncertain window; Ben-Or tolerates t = (n-1)/2
           crashes — at the audit's two crashes and its default n the
           survivors can legitimately starve below the n - t
           thresholds, so only safety is asserted for it here *)
        blocking_by_design e
        || e.Registry.name = "ben-or"
        || report.Patterns_core.Audit.wt_incomplete = 0
      in
      if
        report.Patterns_core.Audit.ic_violations <> 0
        || (not wt_ok)
        || report.Patterns_core.Audit.non_quiescent <> 0
      then
        Alcotest.fail
          (Format.asprintf "%s: %a" e.Registry.name Patterns_core.Audit.pp report))
    Registry.all

(* ----- registry ----- *)

let test_registry () =
  let names = Registry.names () in
  Alcotest.(check bool) "unique names" true
    (List.length names = List.length (List.sort_uniq String.compare names));
  Alcotest.(check bool) "finds fig1" true (Registry.find "fig1-tree" <> None);
  Alcotest.(check bool) "unknown is none" true (Registry.find "nope" = None);
  List.iter
    (fun e ->
      let (module P : Protocol.S) = e.Registry.protocol in
      if not (P.valid_n e.Registry.default_n) then
        Alcotest.fail (e.Registry.name ^ ": default_n not supported"))
    Registry.all

let () =
  Alcotest.run "protocols"
    [
      ( "tree",
        [
          Alcotest.test_case "shapes" `Quick test_tree_shapes;
          Alcotest.test_case "invalid shapes" `Quick test_tree_invalid;
          Alcotest.test_case "fig1 commit" `Quick test_fig1_commit;
          Alcotest.test_case "fig1 abort skips 0-leaf" `Quick test_fig1_abort_skips_zero_leaf;
          Alcotest.test_case "fig1 failure recovery" `Quick test_fig1_failure_recovers;
          Alcotest.test_case "fig1 amnesic variant" `Quick test_fig1_amnesic_forgets;
        ] );
      ( "central",
        [
          Alcotest.test_case "commit and halt" `Quick test_fig2_commit_and_halt;
          Alcotest.test_case "abort on zero" `Quick test_fig2_abort_on_zero;
          Alcotest.test_case "participant failure" `Quick test_fig2_participant_failure;
          Alcotest.test_case "threshold rule" `Quick test_fig2_threshold_rule;
        ] );
      ( "chain",
        [
          Alcotest.test_case "flow" `Quick test_fig3_chain_flow;
          Alcotest.test_case "decision order" `Quick test_fig3_decision_order_follows_chain;
          Alcotest.test_case "mid-chain failure" `Quick test_fig3_mid_chain_failure;
        ] );
      ( "commitment",
        [
          Alcotest.test_case "2pc flow" `Quick test_2pc_flow;
          Alcotest.test_case "2pc decides first" `Quick test_2pc_coordinator_decides_first;
          Alcotest.test_case "d2pc flow" `Quick test_d2pc_flow;
          Alcotest.test_case "d2pc abort" `Quick test_d2pc_abort;
        ] );
      ( "broadcast",
        [
          Alcotest.test_case "value relayed" `Quick test_rbcast_value_relayed;
          Alcotest.test_case "zero value" `Quick test_rbcast_zero_value;
          Alcotest.test_case "general fails silently" `Quick test_rbcast_general_fails_before_sending;
        ] );
      ( "termination",
        [
          Alcotest.test_case "threshold-1 semantics" `Quick test_termination_threshold_one;
          Alcotest.test_case "quadratic steps" `Quick test_termination_steps_quadratic;
          Alcotest.test_case "halts" `Quick test_termination_halts;
          Alcotest.test_case "core rounds" `Quick test_termination_core_rounds;
          Alcotest.test_case "core stale-round discipline" `Quick test_termination_core_stale_rounds;
          Alcotest.test_case "core shrinking UP" `Quick test_termination_core_failure_shrinks;
          Alcotest.test_case "core amnesia announcement" `Quick test_termination_core_amnesic_announce;
        ] );
      ( "rules",
        [
          Alcotest.test_case "decision rules" `Quick test_decision_rules;
          Alcotest.test_case "vote collection" `Quick test_vote_collect;
        ] );
      ( "transform",
        [
          Alcotest.test_case "decisions preserved" `Quick test_total_comm_preserves_decisions;
          Alcotest.test_case "random schedules" `Quick test_total_comm_random_schedules;
        ] );
      ( "voting-tree",
        [
          Alcotest.test_case "threshold" `Quick test_voting_tree_threshold;
          Alcotest.test_case "subset" `Quick test_voting_tree_subset;
          Alcotest.test_case "WT-TC under threshold" `Slow test_voting_tree_is_tc;
        ] );
      ( "coop-2pc",
        [
          Alcotest.test_case "happy path" `Quick test_coop_2pc_happy_path;
          Alcotest.test_case "peers answer" `Quick test_coop_2pc_peer_answers;
          Alcotest.test_case "blocks by design" `Quick test_coop_2pc_blocks;
        ] );
      ( "tree-2pc",
        [
          Alcotest.test_case "flow" `Quick test_tree_commit_flow;
          Alcotest.test_case "abort" `Quick test_tree_commit_abort;
          Alcotest.test_case "root decides first" `Quick test_tree_commit_root_decides_first;
          Alcotest.test_case "failure recovery" `Quick test_tree_commit_failure_recovers;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "random topologies" `Slow test_tree_protocols_on_random_topologies;
          Alcotest.test_case "crash sweep" `Slow test_crash_sweep_catalogue;
          Alcotest.test_case "scale guard" `Slow test_scale_guard;
        ] );
      ( "registry",
        [
          Alcotest.test_case "catalogue" `Quick test_registry;
          Alcotest.test_case "all decide failure-free" `Quick test_every_protocol_decides_failure_free;
          Alcotest.test_case "seeded determinism" `Quick test_every_protocol_deterministic_per_seed;
          Alcotest.test_case "agreement under crashes" `Slow test_every_protocol_audit_agreement;
        ] );
    ]
