The protocol catalogue is stable:

  $ patterns-cli list | head -6
  name                      n  description
  -----------------------  --  ------------------------------------------------------------------------------------------------
  2pc                      5+  classic two-phase commit, Appendix-protocol fallback (unanimity)
  3pc-5                     5  three-phase commit: the tree protocol on a star topology
  ben-or                   4+  Ben-Or randomized binary consensus, t = (n-1)/2, deterministic common coin (seed 0), 3-round cap
  coop-2pc                 4+  2PC with cooperative termination ([S81]) — blocking (unanimity)

A deterministic run of the chain protocol:

  $ patterns-cli run fig3-chain -n 3 --inputs 111 | head -12
     0  send p1->p0#1 bit(1)
     1  recv p1->p0#1 bit(1)
     2  send p2->p0#1 bit(1)
     3  recv p2->p0#1 bit(1)
     3  p0 decides commit
     4  send p0->p1#1 decision(commit)
     5  recv p0->p1#1 decision(commit)
     5  p1 decides commit
     6  send p1->p2#1 decision(commit)
     7  recv p1->p2#1 decision(commit)
     7  p2 decides commit
  
The chain's scheme is a single pattern:

  $ patterns-cli scheme fig3-chain -n 3 | head -2
  visited=104 terminal=8
  1 pattern(s):

Scheme comparison exhibits Theorem 13's separation:

  $ patterns-cli reduce fig4-perverse-st fig4-perverse
  fig4-perverse-st: 4 patterns; fig4-perverse: 4 patterns
  incomparable schemes
    a pattern only the left realizes: 19 msgs
    a pattern only the right realizes: 20 msgs

The sweeps are jobs-invariant -- --jobs only changes the wall clock:

  $ patterns-cli scheme fig3-chain -n 3 --jobs 2 | head -2
  visited=104 terminal=8
  1 pattern(s):

  $ patterns-cli check fig3-chain -n 3 --jobs 4 | head -3
  fig3-chain (n=3, 22857 configs)
    IC=yes TC=NO  WT=yes ST=NO HT=NO  rule=yes validity=yes safe-states=NO cor6=NO
    strongest problem solved: WT-IC

Realization distinguishes unrealizable from truncated:

  $ patterns-cli realize fig3-chain -n 3 --target-of fig2-central
  target: pattern 1/3 of fig2-central (6 messages, height 4)
  unrealizable: no failure-free execution of fig3-chain from these inputs has the target pattern
  [1]
