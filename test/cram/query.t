The execution database end to end: hunt --db records the violating
run (every replayed transition as a (src, event, dst) triple plus the
certificate and verdict facts), query inspects it through the
covering indexes, and replay --db answers from the index with zero
kernel expansions.

  $ patterns-cli hunt fig3-chain-st --property agreement --mode systematic \
  >   --runs 1000 --cert cert.json --db db.json > /dev/null

Replaying the certificate against the recorded run never touches the
engine: the walk is 36 point queries (one per directive), each a
prefix scan of the SEO index, and the verdict comes from the fact
store.  states_expanded — live directive applications — is zero:

  $ patterns-cli replay cert.json --db db.json --metrics-json m.json
  fig3-chain-st: agreement violation, n=4, inputs 1111, 1 crash(es), 36 directive(s)
  reproduced:
  nonfaulty processors disagree: p0 decided commit but p2 decided abort
  $ sed -n '/"schema"/p;/"states_expanded"/p;/"budget_consumed"/p;/"db_/p' m.json
    "schema": "patterns-search-metrics/9",
    "states_expanded": 0,
    "budget_consumed": 0,
    "db_edges": 36,
    "db_index_scans": 36,
    "db_cache_hits": 0,
    "db_cache_misses": 36,

The unbound pattern is a full scan of the edge log — one recorded
triple per directive of the hunt's winning run:

  $ patterns-cli query db.json | sed -n '/"query"/p;/"count"/p'
    "query": "edges",
    "count": 36,

Binding the event descriptor routes the query to the EOS index; the
crash transition appears exactly once:

  $ patterns-cli query db.json --event 'fail p1' | sed -n '/"count"/p'
    "count": 1,

Binding src too makes it a point lookup (SEO), and the triple's own
endpoints bound a one-edge canonical path:

  $ src=$(patterns-cli query db.json --event 'fail p1' | sed -n 's/.*"src": \([0-9]*\),.*/\1/p')
  $ dst=$(patterns-cli query db.json --event 'fail p1' | sed -n 's/.*"dst": \([0-9]*\).*/\1/p')
  $ patterns-cli query db.json --src "$src" --event 'fail p1' | sed -n '/"count"/p'
    "count": 1,
  $ patterns-cli query db.json --path "$src:$dst" | sed -n '/"found"/p;/"length"/p'
    "found": true,
    "length": 1,

The crash schedule of the stored certificate touches p1 and nobody
else:

  $ patterns-cli query db.json --certs-touching 1 | sed -n '/"count"/p'
    "count": 1,
  $ patterns-cli query db.json --certs-touching 3
  {
    "query": "certs-touching",
    "count": 0,
    "certs": []
  }
  [1]

--limit pages the result list without changing the count (which stays
the total, and keeps steering the exit code): a truncated page says
so, a page big enough for everything does not, and the unpaged output
above carries no "truncated" field at all:

  $ patterns-cli query db.json --limit 2 | sed -n '/"count"/p;/"truncated"/p;/"src"/p'
    "count": 36,
    "truncated": true,
        "src": 161761752403083297,
        "src": 246789330492915020,
  $ patterns-cli query db.json --limit 100 | sed -n '/"count"/p;/"truncated"/p'
    "count": 36,
    "truncated": false,

The exit code still reports the total, not the page — an empty result
paged to nothing is still exit 1, and a nonempty result cut to
nothing is still exit 0:

  $ patterns-cli query db.json --certs-touching 3 --limit 5 > /dev/null
  [1]
  $ patterns-cli query db.json --limit 0 > /dev/null
  $ patterns-cli query db.json --limit=-1
  error: --limit must be nonnegative
  [2]

Exit codes: 0 with results, 1 without, 2 on error.  A missing
database file is an empty database; conflicting modes and malformed
files are errors:

  $ patterns-cli query missing.json
  {
    "query": "edges",
    "count": 0,
    "edges": []
  }
  [1]
  $ patterns-cli query db.json --path 1:2 --reachable 3
  error: at most one of --path, --reachable, --certs-touching
  [2]
  $ echo '{"schema": "nope"}' > bad.json
  $ patterns-cli query bad.json
  error: bad.json: unsupported db schema "nope"
  [2]
