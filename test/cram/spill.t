The disk-backed state store and checkpoint/resume, end to end.

--spill-dir bounds the resident visited set: cold shards are evicted
to sorted runs under DIR and membership probes fall back to disk.
Spilling is answer-invisible — the verdict is identical with and
without it:

  $ patterns-cli check fig3-chain -n 3 > plain.out
  $ patterns-cli check fig3-chain -n 3 --spill-dir spill.d --mem-budget 500 > spill.out
  $ cmp plain.out spill.out && echo spill-invisible
  spill-invisible

The /7 spill counters account for the disk traffic; a run record is 16
bytes, so spill_write_bytes = 16 * spilled records.  At the default
--jobs 1 they are deterministic (at higher job counts eviction timing
depends on the schedule):

  $ patterns-cli check fig3-chain -n 3 --spill-dir spill.d --mem-budget 500 \
  >   --metrics-json ms.json > /dev/null
  $ sed -n '/"spill_/p' ms.json
    "spill_runs": 73,
    "spill_evictions": 446,
    "spill_probes": 21321,
    "spill_read_bytes": 357520464,
    "spill_write_bytes": 316464,
    "spill_fd_reopens": 0,

The spill directory is cleaned up on completion:

  $ ls spill.d 2>/dev/null | wc -l
  0

--checkpoint records each completed root so a killed sweep can be
resumed.  The --checkpoint-kill-after test hook exits 99 after K fresh
records, simulating a mid-search crash; --resume then replays the
recorded roots and finishes the rest, with output and metrics
bit-identical to an uninterrupted run:

  $ patterns-cli check fig3-chain -n 3 > full.out
  $ patterns-cli check fig3-chain -n 3 --checkpoint ck2 --checkpoint-kill-after 3 > /dev/null
  checkpoint: killed after 3 fresh records (test hook)
  [99]
  $ patterns-cli check fig3-chain -n 3 --resume ck2 > resumed.out
  $ cmp full.out resumed.out && echo resume-identical
  resume-identical

Resuming against a checkpoint written for different parameters is
refused — the versioned header pins the protocol, n, and every budget
that shapes the search:

  $ patterns-cli check fig3-chain -n 2 --resume ck2
  error: ck2: checkpoint header mismatch
    file:     patterns-checkpoint/1 explore/1|fig3-chain|rule=unanimity|n=3|mf=1|mc=400000|fifo=false|ml=-|mode=async|spill=-|iv=d4b20d8c389116275063d49845d793a3
    expected: patterns-checkpoint/1 explore/1|fig3-chain|rule=unanimity|n=2|mf=1|mc=400000|fifo=false|ml=-|mode=async|spill=-|iv=f86f8f919a20efcddbf742316c856be1
  [1]

A hunt checkpoints completed index chunks; the resumed hunt reports
the same verdict:

  $ patterns-cli hunt fig3-chain -n 3 --runs 16 --checkpoint hck
  no violation found in 16 runs (search truncated: run budget exhausted; raise --runs)
  [2]
  $ patterns-cli hunt fig3-chain -n 3 --runs 16 --resume hck
  no violation found in 16 runs (search truncated: run budget exhausted; raise --runs)
  [2]

--checkpoint and --resume are mutually exclusive:

  $ patterns-cli check fig3-chain -n 3 --checkpoint a --resume b
  error: at most one of --checkpoint and --resume
  [1]

The execution database is persisted as a streamed JSONL /2 file — a
schema marker line, then one record per line:

  $ patterns-cli hunt fig3-chain-st --property agreement --mode systematic \
  >   --runs 1000 --db db.jsonl > /dev/null
  $ head -2 db.jsonl
  {"schema":"patterns-edge-db/2"}
  {"c":554017527594899650}
