The search kernel's metrics are machine-readable and schema-stable.
Per-shard wall-clock seconds, the aggregate expand_seconds, the
derived parallel_efficiency and the lock_contention counter are the
only nondeterministic fields; everything else is pinned, key order
included:

  $ patterns-cli scheme fig3-chain -n 3 --metrics-json - \
  >   | sed -n '/^{$/,/^}$/p' \
  >   | sed -e 's/"seconds": [0-9.]*/"seconds": _/' \
  >         -e 's/"expand_seconds": [0-9.]*/"expand_seconds": _/' \
  >         -e 's/"parallel_efficiency": [0-9.]*/"parallel_efficiency": _/' \
  >         -e 's/"lock_contention": [0-9]*/"lock_contention": _/'
  {
    "schema": "patterns-search-metrics/4",
    "outcome": "exhausted",
    "states_expanded": 104,
    "dedup_hits": 32,
    "frontier_peak": 3,
    "pruned": 0,
    "fingerprint_probes": 264,
    "collision_fallbacks": 0,
    "intern_bindings": 146,
    "budget_consumed": 104,
    "roots": 8,
    "truncated_roots": 0,
    "layers": 72,
    "par_layers": 0,
    "shard_bits": 4,
    "shard_occupancy_max": 4,
    "shard_occupancy_total": 104,
    "frontier_peak_sum": 24,
    "deadline_hits": 0,
    "live_limit_hits": 0,
    "lock_contention": _,
    "expand_seconds": _,
    "parallel_efficiency": _,
    "shards": [
      { "root": 0, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 3, "pruned": 0, "fingerprint_probes": 33, "collision_fallbacks": 0, "intern_bindings": 17, "seconds": _ },
      { "root": 1, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 3, "pruned": 0, "fingerprint_probes": 33, "collision_fallbacks": 0, "intern_bindings": 18, "seconds": _ },
      { "root": 2, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 3, "pruned": 0, "fingerprint_probes": 33, "collision_fallbacks": 0, "intern_bindings": 19, "seconds": _ },
      { "root": 3, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 3, "pruned": 0, "fingerprint_probes": 33, "collision_fallbacks": 0, "intern_bindings": 19, "seconds": _ },
      { "root": 4, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 3, "pruned": 0, "fingerprint_probes": 33, "collision_fallbacks": 0, "intern_bindings": 19, "seconds": _ },
      { "root": 5, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 3, "pruned": 0, "fingerprint_probes": 33, "collision_fallbacks": 0, "intern_bindings": 19, "seconds": _ },
      { "root": 6, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 3, "pruned": 0, "fingerprint_probes": 33, "collision_fallbacks": 0, "intern_bindings": 18, "seconds": _ },
      { "root": 7, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 3, "pruned": 0, "fingerprint_probes": 33, "collision_fallbacks": 0, "intern_bindings": 17, "seconds": _ }
    ]
  }

The deterministic counters are identical for every --jobs value
(--metrics-json FILE writes the same document to a file):

  $ norm () {
  >   sed -e 's/"seconds": [0-9.]*/"seconds": _/' \
  >       -e 's/"expand_seconds": [0-9.]*/"expand_seconds": _/' \
  >       -e 's/"parallel_efficiency": [0-9.]*/"parallel_efficiency": _/' \
  >       -e 's/"lock_contention": [0-9]*/"lock_contention": _/' "$1"
  > }
  $ patterns-cli scheme fig3-chain -n 3 --metrics-json m1.json > /dev/null
  $ patterns-cli scheme fig3-chain -n 3 --jobs 4 --metrics-json m4.json > /dev/null
  $ norm m1.json > m1.norm
  $ norm m4.json > m4.norm
  $ cmp m1.norm m4.norm && echo jobs-invariant
  jobs-invariant

Forcing every layer parallel (--par-threshold 1) changes par_layers --
the count of layers that crossed the threshold, a property of the
threshold, not of the worker count -- and nothing else deterministic:

  $ patterns-cli scheme fig3-chain -n 3 --jobs 4 --par-threshold 1 --metrics-json m4p.json > /dev/null
  $ sed -n '/"par_layers"/p' m4p.json
    "par_layers": 72,
  $ sed 's/"par_layers": [0-9]*/"par_layers": _/' m1.norm > m1.thr
  $ norm m4p.json | sed 's/"par_layers": [0-9]*/"par_layers": _/' > m4p.thr
  $ cmp m1.thr m4p.thr && echo par-threshold-invariant
  par-threshold-invariant

A hunt that exhausts its run budget is a truncated search, not a proof
of absence -- exit code 2, outcome "truncated":

  $ patterns-cli hunt fig3-chain -n 3 --runs 16 --metrics-json hunt.json
  no violation found in 16 runs (search truncated: run budget exhausted; raise --runs)
  [2]
  $ sed -n '/"outcome"/p' hunt.json
    "outcome": "truncated",

An exhaustive classification cut short by its budget exits 2 as well:

  $ patterns-cli check fig3-chain -n 3 --max-configs 50 > /dev/null
  [2]
