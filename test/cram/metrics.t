The search kernel's metrics are machine-readable and schema-stable.
Per-shard wall-clock seconds are the only nondeterministic field;
everything else is pinned, key order included:

  $ patterns-cli scheme fig3-chain -n 3 --metrics-json - \
  >   | sed -n '/^{$/,/^}$/p' | sed 's/"seconds": [0-9.]*/"seconds": _/'
  {
    "schema": "patterns-search-metrics/2",
    "outcome": "exhausted",
    "states_expanded": 104,
    "dedup_hits": 32,
    "frontier_peak": 4,
    "pruned": 0,
    "fingerprint_probes": 232,
    "collision_fallbacks": 0,
    "intern_bindings": 146,
    "budget_consumed": 104,
    "roots": 8,
    "truncated_roots": 0,
    "shards": [
      { "root": 0, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 4, "pruned": 0, "fingerprint_probes": 29, "collision_fallbacks": 0, "intern_bindings": 17, "seconds": _ },
      { "root": 1, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 4, "pruned": 0, "fingerprint_probes": 29, "collision_fallbacks": 0, "intern_bindings": 18, "seconds": _ },
      { "root": 2, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 4, "pruned": 0, "fingerprint_probes": 29, "collision_fallbacks": 0, "intern_bindings": 19, "seconds": _ },
      { "root": 3, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 4, "pruned": 0, "fingerprint_probes": 29, "collision_fallbacks": 0, "intern_bindings": 19, "seconds": _ },
      { "root": 4, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 4, "pruned": 0, "fingerprint_probes": 29, "collision_fallbacks": 0, "intern_bindings": 19, "seconds": _ },
      { "root": 5, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 4, "pruned": 0, "fingerprint_probes": 29, "collision_fallbacks": 0, "intern_bindings": 19, "seconds": _ },
      { "root": 6, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 4, "pruned": 0, "fingerprint_probes": 29, "collision_fallbacks": 0, "intern_bindings": 18, "seconds": _ },
      { "root": 7, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 4, "pruned": 0, "fingerprint_probes": 29, "collision_fallbacks": 0, "intern_bindings": 17, "seconds": _ }
    ]
  }

The counters are identical for every --jobs value (--metrics-json FILE
writes the same document to a file):

  $ patterns-cli scheme fig3-chain -n 3 --metrics-json m1.json > /dev/null
  $ patterns-cli scheme fig3-chain -n 3 --jobs 4 --metrics-json m4.json > /dev/null
  $ sed 's/"seconds": [0-9.]*/"seconds": _/' m1.json > m1.norm
  $ sed 's/"seconds": [0-9.]*/"seconds": _/' m4.json > m4.norm
  $ cmp m1.norm m4.norm && echo jobs-invariant
  jobs-invariant

A hunt that exhausts its run budget is a truncated search, not a proof
of absence -- exit code 2, outcome "truncated":

  $ patterns-cli hunt fig3-chain -n 3 --runs 16 --metrics-json hunt.json
  no violation found in 16 runs (search truncated: run budget exhausted; raise --runs)
  [2]
  $ sed -n '/"outcome"/p' hunt.json
    "outcome": "truncated",

An exhaustive classification cut short by its budget exits 2 as well:

  $ patterns-cli check fig3-chain -n 3 --max-configs 50 > /dev/null
  [2]
