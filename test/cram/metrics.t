The search kernel's metrics are machine-readable and schema-stable.
Per-shard wall-clock seconds, the aggregate expand_seconds, the
derived parallel_efficiency, lock_contention, and the /5 volatile
section (steals, steal_failures, cas_retries, table_occupancy,
idle_seconds) are the only nondeterministic fields — plus
intern_bindings and the frontier gauges when the async driver runs
several workers; everything else is pinned, key order included.  The
/6 database counters (db_edges, db_index_scans, db_cache_hits,
db_cache_misses) are deterministic and stay zero without --db, and the
/7 spill counters (spill_runs, spill_evictions, spill_probes,
spill_read_bytes, spill_write_bytes) stay zero without --spill-dir.
This document runs at the default --jobs 1, where intern_bindings is
deterministic and stays pinned.  The default driver is the
asynchronous work-stealing one; its layer gauges are structurally zero
and its frontier_peak is the high-water mark of the work queue:

  $ patterns-cli scheme fig3-chain -n 3 --metrics-json - \
  >   | sed -n '/^{$/,/^}$/p' \
  >   | sed -e 's/"seconds": [0-9.]*/"seconds": _/' \
  >         -e 's/"expand_seconds": [0-9.]*/"expand_seconds": _/' \
  >         -e 's/"parallel_efficiency": [0-9.]*/"parallel_efficiency": _/' \
  >         -e 's/"lock_contention": [0-9]*/"lock_contention": _/' \
  >         -e 's/"steals": [0-9]*/"steals": _/' \
  >         -e 's/"steal_failures": [0-9]*/"steal_failures": _/' \
  >         -e 's/"cas_retries": [0-9]*/"cas_retries": _/' \
  >         -e 's/"table_occupancy": [0-9.]*/"table_occupancy": _/' \
  >         -e 's/"idle_seconds": [0-9.]*/"idle_seconds": _/'
  {
    "schema": "patterns-search-metrics/9",
    "outcome": "exhausted",
    "states_expanded": 104,
    "dedup_hits": 32,
    "frontier_peak": 3,
    "pruned": 0,
    "fingerprint_probes": 136,
    "collision_fallbacks": 0,
    "intern_bindings": 146,
    "budget_consumed": 104,
    "roots": 8,
    "truncated_roots": 0,
    "layers": 0,
    "par_layers": 0,
    "shard_bits": 12,
    "shard_occupancy_max": 0,
    "shard_occupancy_total": 104,
    "frontier_peak_sum": 24,
    "deadline_hits": 0,
    "live_limit_hits": 0,
    "lock_contention": _,
    "expand_seconds": _,
    "parallel_efficiency": _,
    "steals": _,
    "steal_failures": _,
    "cas_retries": _,
    "table_occupancy": _,
    "idle_seconds": _,
    "db_edges": 0,
    "db_index_scans": 0,
    "db_cache_hits": 0,
    "db_cache_misses": 0,
    "spill_runs": 0,
    "spill_evictions": 0,
    "spill_probes": 0,
    "spill_read_bytes": 0,
    "spill_write_bytes": 0,
    "spill_fd_reopens": 0,
    "prefix_hits": 0,
    "prefix_states_saved": 0,
    "delta_seeds": 0,
    "delta_reused_edges": 0,
    "drops_injected": 0,
    "omission_plans": 0,
    "mobile_faults": 0,
    "shards": [
      { "root": 0, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 3, "pruned": 0, "fingerprint_probes": 17, "collision_fallbacks": 0, "intern_bindings": 17, "seconds": _ },
      { "root": 1, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 3, "pruned": 0, "fingerprint_probes": 17, "collision_fallbacks": 0, "intern_bindings": 18, "seconds": _ },
      { "root": 2, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 3, "pruned": 0, "fingerprint_probes": 17, "collision_fallbacks": 0, "intern_bindings": 19, "seconds": _ },
      { "root": 3, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 3, "pruned": 0, "fingerprint_probes": 17, "collision_fallbacks": 0, "intern_bindings": 19, "seconds": _ },
      { "root": 4, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 3, "pruned": 0, "fingerprint_probes": 17, "collision_fallbacks": 0, "intern_bindings": 19, "seconds": _ },
      { "root": 5, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 3, "pruned": 0, "fingerprint_probes": 17, "collision_fallbacks": 0, "intern_bindings": 19, "seconds": _ },
      { "root": 6, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 3, "pruned": 0, "fingerprint_probes": 17, "collision_fallbacks": 0, "intern_bindings": 18, "seconds": _ },
      { "root": 7, "states_expanded": 13, "dedup_hits": 4, "frontier_peak": 3, "pruned": 0, "fingerprint_probes": 17, "collision_fallbacks": 0, "intern_bindings": 17, "seconds": _ }
    ]
  }

The deterministic counters are identical for every --jobs value
(--metrics-json FILE writes the same document to a file).
intern_bindings is masked here too: it is a hash-cons cache gauge, and
under the async driver with several workers the intermediate sets
interned depend on which dedup racer reaches each config first.  The
frontier gauges are masked for the same reason: the async queue's
high-water mark depends on how fast the workers drain it (the layers
section below re-pins both, where they are deterministic):

  $ norm () {
  >   sed -e 's/"seconds": [0-9.]*/"seconds": _/' \
  >       -e 's/"expand_seconds": [0-9.]*/"expand_seconds": _/' \
  >       -e 's/"parallel_efficiency": [0-9.]*/"parallel_efficiency": _/' \
  >       -e 's/"lock_contention": [0-9]*/"lock_contention": _/' \
  >       -e 's/"steals": [0-9]*/"steals": _/' \
  >       -e 's/"steal_failures": [0-9]*/"steal_failures": _/' \
  >       -e 's/"cas_retries": [0-9]*/"cas_retries": _/' \
  >       -e 's/"table_occupancy": [0-9.]*/"table_occupancy": _/' \
  >       -e 's/"idle_seconds": [0-9.]*/"idle_seconds": _/' \
  >       -e 's/"intern_bindings": [0-9]*/"intern_bindings": _/' \
  >       -e 's/"frontier_peak": [0-9]*/"frontier_peak": _/' \
  >       -e 's/"frontier_peak_sum": [0-9]*/"frontier_peak_sum": _/' "$1"
  > }
  $ patterns-cli scheme fig3-chain -n 3 --metrics-json m1.json > /dev/null
  $ patterns-cli scheme fig3-chain -n 3 --jobs 4 --metrics-json m4.json > /dev/null
  $ norm m1.json > m1.norm
  $ norm m4.json > m4.norm
  $ cmp m1.norm m4.norm && echo jobs-invariant
  jobs-invariant

The layer-synchronous driver (--par-mode layers) reports its own
frontier gauges; its deterministic counters are jobs-invariant too,
and agree with the async driver on everything both define (states,
dedups, terminals):

  $ patterns-cli scheme fig3-chain -n 3 --par-mode layers --metrics-json l1.json > /dev/null
  $ patterns-cli scheme fig3-chain -n 3 --par-mode layers --jobs 4 --metrics-json l4.json > /dev/null
  $ norm l1.json > l1.norm
  $ norm l4.json > l4.norm
  $ cmp l1.norm l4.norm && echo layers-jobs-invariant
  layers-jobs-invariant
  $ sed -n '/"states_expanded"/p;/"dedup_hits"/p;/"intern_bindings"/p' l1.json | head -3
    "states_expanded": 104,
    "dedup_hits": 32,
    "intern_bindings": 146,
  $ sed -n '/"frontier_peak"/p' l1.json | head -1
    "frontier_peak": 3,

Forcing every layer parallel (--par-threshold 1) changes par_layers --
the count of layers that crossed the threshold, a property of the
threshold, not of the worker count -- and nothing else deterministic:

  $ patterns-cli scheme fig3-chain -n 3 --par-mode layers --jobs 4 --par-threshold 1 --metrics-json l4p.json > /dev/null
  $ sed -n '/"par_layers"/p' l4p.json
    "par_layers": 72,
  $ sed 's/"par_layers": [0-9]*/"par_layers": _/' l1.norm > l1.thr
  $ norm l4p.json | sed 's/"par_layers": [0-9]*/"par_layers": _/' > l4p.thr
  $ cmp l1.thr l4p.thr && echo par-threshold-invariant
  par-threshold-invariant

A hunt that exhausts its run budget is a truncated search, not a proof
of absence -- exit code 2, outcome "truncated":

  $ patterns-cli hunt fig3-chain -n 3 --runs 16 --metrics-json hunt.json
  no violation found in 16 runs (search truncated: run budget exhausted; raise --runs)
  [2]
  $ sed -n '/"outcome"/p' hunt.json
    "outcome": "truncated",

An exhaustive classification cut short by its budget exits 2 as well:

  $ patterns-cli check fig3-chain -n 3 --max-configs 50 > /dev/null
  [2]
