The adversary pipeline, golden: a systematic hunt on the amnesic
chain protocol finds a smallest-crash-count witness, emits a
replayable certificate, the certificate reproduces (exit 0), and
shrinking keeps it reproducing.

  $ patterns-cli hunt fig3-chain-st --property agreement --mode systematic \
  >   --runs 1000 --cert cert.json | head -4
  violation at plan 400 of 2776368 (systematic, horizon 60)
  inputs: 1111
  crash plan: p1@step5
  schedule: fifo

  $ patterns-cli replay cert.json
  fig3-chain-st: agreement violation, n=4, inputs 1111, 1 crash(es), 36 directive(s)
  reproduced:
  nonfaulty processors disagree: p0 decided commit but p2 decided abort

  $ patterns-cli shrink cert.json --out small.json | head -1
  shrunk: 36 -> 33 directive(s), n 4 -> 4, inputs 1111 (199 replays)

  $ patterns-cli replay small.json
  fig3-chain-st: agreement violation, n=4, inputs 1111, 1 crash(es), 33 directive(s)
  reproduced:
  nonfaulty processors disagree: p0 decided commit but p2 decided abort

The certificate is versioned JSON; crashes are derived from the
script's fail directives:

  $ head -8 cert.json
  {
    "schema": "patterns-violation-cert/1",
    "protocol": "fig3-chain-st",
    "n": 4,
    "inputs": "1111",
    "property": "agreement",
    "rule": "unanimity",
    "crashes": [

A certificate for a protocol this build does not know is
inapplicable, exit 2:

  $ sed 's/"protocol": "fig3-chain-st"/"protocol": "martian-commit"/' cert.json > alien.json
  $ patterns-cli replay alien.json
  martian-commit: agreement violation, n=4, inputs 1111, 1 crash(es), 36 directive(s)
  inapplicable: unknown protocol "martian-commit"
  [2]

Tampering with the schedule so a delivery precedes its send is
detected by the player, naming the failing directive:

  $ sed 's/"index": 1$/"index": 7/' small.json > torn.json
  $ patterns-cli replay torn.json
  fig3-chain-st: agreement violation, n=4, inputs 1111, 1 crash(es), 33 directive(s)
  inapplicable: script does not apply: directive #2 [deliver to p0 message p1#7] failed: no message p1->p0#7 buffered at p0
  [2]

Graceful degradation: a deadline of 10ms on a search that needs
minutes truncates cleanly (exit 2) instead of hanging (the visited
count depends on the wall clock, so only the exit code is pinned),

  $ patterns-cli scheme termination -n 5 --deadline 0.01 > /dev/null
  [2]

and a live-state budget truncates the classification deterministically:

  $ patterns-cli check fig3-chain -n 3 --max-states 40 | tail -1
  truncated: the live-state budget ran out; the verdict is a lower bound (raise --max-states)

A hunt against a wall clock of zero stops before the first batch:

  $ patterns-cli hunt fig3-chain -n 3 --runs 1000000 --deadline 0
  no violation found in 0 runs (search truncated: deadline exceeded; raise --deadline)
  [2]
