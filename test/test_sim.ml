(* Tests for the Section 3 model of computation. *)

open Patterns_sim

(* ----- a toy protocol: p0 pings every peer; peers pong back; p0
   decides commit after all pongs; peers decide on the ping ----- *)

module Ping_pong = struct
  type msg = Ping | Pong

  type state =
    | Sender of { to_ping : Proc_id.t list; await : Proc_id.Set.t }
    | Waiter
    | Ponging of Proc_id.t
    | Done_st of Decision.t

  let name = "ping-pong"
  let describe = "test protocol: star ping/pong"
  let valid_n n = n >= 2

  let initial ~n ~me ~input:_ =
    if me = 0 then
      Sender { to_ping = Proc_id.others ~n 0; await = Proc_id.set_of_list (Proc_id.others ~n 0) }
    else Waiter

  let step_kind = function
    | Sender { to_ping = _ :: _; _ } | Ponging _ -> Step_kind.Sending
    | Sender { to_ping = []; _ } | Waiter -> Step_kind.Receiving
    | Done_st _ -> Step_kind.Quiescent

  let send ~n:_ ~me:_ = function
    | Sender { to_ping = q :: rest; await } -> (Some (q, Ping), Sender { to_ping = rest; await })
    | Ponging q -> (Some (q, Pong), Done_st Decision.Commit)
    | s -> (None, s)

  let receive ~n:_ ~me:_ s incoming =
    match (s, incoming) with
    | Waiter, Incoming.Msg { from; payload = Ping } -> Ponging from
    | Sender { to_ping = []; await }, Incoming.Msg { from; payload = Pong } ->
      let await = Proc_id.Set.remove from await in
      if Proc_id.Set.is_empty await then Done_st Decision.Commit
      else Sender { to_ping = []; await }
    | Sender { to_ping = []; await }, Incoming.Failed q ->
      let await = Proc_id.Set.remove q await in
      if Proc_id.Set.is_empty await then Done_st Decision.Abort
      else Sender { to_ping = []; await }
    | s, _ -> s

  let status = function
    | Done_st d -> Status.decided_halted d
    | Sender _ | Waiter | Ponging _ -> Status.undecided

  let hash_state = function
    | Sender { to_ping; await } -> (Hashtbl.hash to_ping * 31) + Proc_id.set_hash await
    | Waiter -> 1
    | Ponging q -> (q * 4) + 2
    | Done_st d -> (Hashtbl.hash d * 4) + 3

  let compare_state a b =
    match (a, b) with
    | Sender a, Sender b ->
      let c = List.compare Proc_id.compare a.to_ping b.to_ping in
      if c <> 0 then c else Proc_id.Set.compare a.await b.await
    | Waiter, Waiter -> 0
    | Ponging a, Ponging b -> Proc_id.compare a b
    | Done_st a, Done_st b -> Decision.compare a b
    | Sender _, _ -> -1
    | _, Sender _ -> 1
    | Waiter, _ -> -1
    | _, Waiter -> 1
    | Ponging _, _ -> -1
    | _, Ponging _ -> 1

  let pp_state ppf = function
    | Sender _ -> Format.pp_print_string ppf "sender"
    | Waiter -> Format.pp_print_string ppf "waiter"
    | Ponging _ -> Format.pp_print_string ppf "ponging"
    | Done_st d -> Format.fprintf ppf "done(%a)" Decision.pp d

  let compare_msg a b =
    match (a, b) with
    | Ping, Ping | Pong, Pong -> 0
    | Ping, Pong -> -1
    | Pong, Ping -> 1

  let pp_msg ppf = function
    | Ping -> Format.pp_print_string ppf "ping"
    | Pong -> Format.pp_print_string ppf "pong"
end

module E = Engine.Make (Ping_pong)

(* ----- primitive types ----- *)

let test_proc_id () =
  Alcotest.(check string) "pp" "p3" (Proc_id.to_string 3);
  Alcotest.(check (list int)) "others" [ 0; 2; 3 ] (Proc_id.others ~n:4 1);
  Alcotest.(check (list int)) "all" [ 0; 1; 2 ] (Proc_id.all ~n:3)

let test_decision () =
  Alcotest.(check bool) "commit is 1" true (Decision.to_bool Decision.Commit);
  Alcotest.(check bool) "roundtrip" true
    (Decision.equal (Decision.of_bool false) Decision.Abort);
  Alcotest.(check int) "order" (-1) (Decision.compare Decision.Abort Decision.Commit)

let test_status_transitions () =
  let open Status in
  Alcotest.(check bool) "decide" true (transition_ok undecided (decided Decision.Commit));
  Alcotest.(check bool) "stay decided" true
    (transition_ok (decided Decision.Commit) (decided Decision.Commit));
  Alcotest.(check bool) "flip decision forbidden" false
    (transition_ok (decided Decision.Commit) (decided Decision.Abort));
  Alcotest.(check bool) "forget via amnesia" true (transition_ok (decided Decision.Abort) amnesic);
  Alcotest.(check bool) "forget without amnesia forbidden" false
    (transition_ok (decided Decision.Abort) undecided);
  Alcotest.(check bool) "unhalt forbidden" false
    (transition_ok (decided_halted Decision.Commit) (decided Decision.Commit));
  Alcotest.(check bool) "amnesia permanent" false (transition_ok amnesic undecided)

let test_triple () =
  Alcotest.check_raises "self send" (Invalid_argument "Triple.make: processors cannot send messages to themselves")
    (fun () -> ignore (Triple.make ~sender:1 ~receiver:1 ~index:1));
  Alcotest.check_raises "index from 1" (Invalid_argument "Triple.make: message indices count from 1")
    (fun () -> ignore (Triple.make ~sender:0 ~receiver:1 ~index:0));
  let t = Triple.make ~sender:0 ~receiver:2 ~index:3 in
  Alcotest.(check string) "pp" "p0->p2#3" (Triple.to_string t)

let test_outbox () =
  let ob = Outbox.broadcast Outbox.empty [ 1; 2; 3 ] "x" in
  Alcotest.(check int) "three queued" 3 (List.length ob);
  let ob = Outbox.drop_to 2 ob in
  Alcotest.(check int) "dropped" 2 (List.length ob);
  match Outbox.pop ob with
  | Some ((dst, "x"), rest) ->
    Alcotest.(check int) "fifo head" 1 dst;
    Alcotest.(check int) "rest" 1 (List.length rest)
  | _ -> Alcotest.fail "pop"

(* ----- engine basics ----- *)

let inputs n = List.init n (fun _ -> true)

let test_init_validation () =
  Alcotest.(check bool) "bad arity raises" true
    (try
       ignore (E.init ~n:1 ~inputs:[ true ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "inputs length" true
    (try
       ignore (E.init ~n:3 ~inputs:[ true ]);
       false
     with Invalid_argument _ -> true)

let test_fifo_run_completes () =
  let r = E.run ~scheduler:E.fifo_scheduler ~n:4 ~inputs:(inputs 4) () in
  Alcotest.(check bool) "quiescent" true r.E.quiescent;
  Alcotest.(check int) "everyone decided" 4 (List.length (E.decisions_of r.E.final));
  (* 3 pings + 3 pongs *)
  Alcotest.(check int) "message count" 6 (Trace.message_count r.E.trace)

let test_triple_numbering () =
  let r = E.run ~scheduler:E.fifo_scheduler ~n:3 ~inputs:(inputs 3) () in
  let triples = List.map (fun (t, _, _) -> Triple.to_string t) (Trace.sends r.E.trace) in
  List.iter
    (fun expected ->
      if not (List.mem expected triples) then Alcotest.fail ("missing triple " ^ expected))
    [ "p0->p1#1"; "p0->p2#1"; "p1->p0#1"; "p2->p0#1" ]

let test_causality_edges () =
  let r = E.run ~scheduler:E.fifo_scheduler ~n:3 ~inputs:(inputs 3) () in
  (* each pong must causally depend on the ping that triggered it *)
  let sends = Trace.sends r.E.trace in
  let pongs = List.filter (fun (_, m, _) -> m = Ping_pong.Pong) sends in
  Alcotest.(check int) "two pongs" 2 (List.length pongs);
  List.iter
    (fun ((t : Triple.t), _, causes) ->
      let expected = Triple.make ~sender:0 ~receiver:t.Triple.sender ~index:1 in
      if not (List.exists (Triple.equal expected) causes) then
        Alcotest.fail "pong lacks its ping cause")
    pongs

let test_failure_notices () =
  (* p1 fails at step 0: p0 learns and eventually aborts *)
  let r = E.run ~scheduler:E.fifo_scheduler ~failures:[ (0, 1) ] ~n:2 ~inputs:(inputs 2) () in
  Alcotest.(check bool) "quiescent" true r.E.quiescent;
  Alcotest.(check bool) "p0 aborted" true
    (List.mem (0, Decision.Abort) (E.decisions_of r.E.final));
  Alcotest.(check (list int)) "failure recorded" [ 1 ] (Trace.failures r.E.trace)

let test_apply_errors () =
  let c = E.init ~n:2 ~inputs:(inputs 2) in
  (match E.apply ~step:0 c (Action.Deliver { at = 1; index = 0 }) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "delivering from an empty buffer should fail");
  (match E.apply ~step:0 c (Action.Send_step 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "p1 is receiving; send step should fail");
  let c', _ = E.apply_exn ~step:0 c (Action.Fail 1) in
  match E.apply ~step:1 c' (Action.Fail 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double failure should fail"

let test_decided_events_emitted () =
  let r = E.run ~scheduler:E.fifo_scheduler ~n:3 ~inputs:(inputs 3) () in
  let decided = Trace.decisions r.E.trace in
  Alcotest.(check int) "three decision events" 3 (List.length decided);
  let halts = List.filter (function Trace.Halted _ -> true | _ -> false) r.E.trace in
  Alcotest.(check int) "three halt events" 3 (List.length halts)

let test_schedulers_agree_on_outcome () =
  let outcomes scheduler =
    let r = E.run ~scheduler ~n:4 ~inputs:(inputs 4) () in
    List.map snd (E.decisions_of r.E.final)
  in
  let fifo = outcomes E.fifo_scheduler in
  let rr = outcomes E.round_robin_scheduler in
  let rnd = outcomes (E.random_scheduler (Patterns_stdx.Prng.create ~seed:11)) in
  Alcotest.(check int) "fifo count" 4 (List.length fifo);
  Alcotest.(check bool) "all commit everywhere" true
    (List.for_all (Decision.equal Decision.Commit) (fifo @ rr @ rnd))

let test_random_scheduler_deterministic_per_seed () =
  let run seed =
    let r = E.run ~scheduler:(E.random_scheduler (Patterns_stdx.Prng.create ~seed)) ~n:4 ~inputs:(inputs 4) () in
    List.length r.E.trace
  in
  Alcotest.(check int) "same seed same trace" (run 5) (run 5)

let test_play_directives () =
  let c = E.init ~n:2 ~inputs:(inputs 2) in
  match
    E.play c
      [ E.Step_of 0; E.Deliver_from (1, 0); E.Drain 1; E.Deliver_from (0, 1); E.Flush_fifo ]
  with
  | Error e -> Alcotest.fail e
  | Ok (final, trace) ->
    Alcotest.(check int) "two messages" 2 (Trace.message_count trace);
    Alcotest.(check int) "both decided" 2 (List.length (E.decisions_of final))

let starts_with prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let test_play_error_reporting () =
  let c = E.init ~n:2 ~inputs:(inputs 2) in
  (match E.play c [ E.Deliver_from (0, 1) ] with
  | Error msg ->
    Alcotest.(check bool)
      ("names the 1-based position and the directive: " ^ msg)
      true
      (starts_with "directive #1 [deliver to p0 from p1]" msg)
  | Ok _ -> Alcotest.fail "expected failure: nothing buffered");
  (* the position counts from the start of the script, not from the
     last success *)
  match E.play c [ E.Step_of 0; E.Deliver_from (1, 0); E.Deliver_from (1, 0) ] with
  | Error msg ->
    Alcotest.(check bool)
      ("position 3: " ^ msg)
      true
      (starts_with "directive #3 [deliver to p1 from p0]" msg)
  | Ok _ -> Alcotest.fail "expected failure: second delivery has nothing buffered"

let test_play_deliver_msg () =
  (* exact-triple delivery replays an out-of-order schedule that
     Deliver_from (oldest first) cannot express *)
  let c = E.init ~n:2 ~inputs:(inputs 2) in
  match
    E.play c
      [ E.Step_of 0; E.Step_of 0; E.Deliver_msg { at = 1; from = 0; index = 2 };
        E.Deliver_msg { at = 1; from = 0; index = 1 } ]
  with
  | Ok (_, trace) ->
    let delivered =
      List.filter_map
        (function
          | Trace.Delivered_msg { triple; _ } -> Some triple.Triple.index | _ -> None)
        trace
    in
    Alcotest.(check (list int)) "newest first" [ 2; 1 ] delivered
  | Error msg -> (
    (* some protocols send fewer than two messages p0->p1 from these
       inputs; then the error must still name the missing triple *)
    match E.play c [ E.Deliver_msg { at = 1; from = 0; index = 9 } ] with
    | Error msg2 ->
      Alcotest.(check bool)
        ("names the missing message: " ^ msg ^ " / " ^ msg2)
        true
        (starts_with "directive #1 [deliver to p1 message p0#9]" msg2)
    | Ok _ -> Alcotest.fail "message #9 cannot exist after no steps")

let test_behavioral_compare_collapses_order () =
  (* deliver two independent pings in both orders: same behavioural config *)
  let c = E.init ~n:3 ~inputs:(inputs 3) in
  let c, _ = E.apply_exn ~step:0 c (Action.Send_step 0) in
  let c, _ = E.apply_exn ~step:1 c (Action.Send_step 0) in
  (* now p1 and p2 each hold a ping *)
  let via_12 =
    let c, _ = E.apply_exn ~step:2 c (Action.Deliver { at = 1; index = 0 }) in
    let c, _ = E.apply_exn ~step:3 c (Action.Deliver { at = 2; index = 0 }) in
    c
  in
  let via_21 =
    let c, _ = E.apply_exn ~step:2 c (Action.Deliver { at = 2; index = 0 }) in
    let c, _ = E.apply_exn ~step:3 c (Action.Deliver { at = 1; index = 0 }) in
    c
  in
  Alcotest.(check int) "same behavioural configuration" 0 (E.compare_behavioral via_12 via_21)

let test_steps_per_proc () =
  let r = E.run ~scheduler:E.fifo_scheduler ~n:3 ~inputs:(inputs 3) () in
  let steps = Trace.steps_per_proc ~n:3 r.E.trace in
  (* p0: 2 sends + 2 receives; p1/p2: 1 receive + 1 send *)
  Alcotest.(check int) "p0 steps" 4 steps.(0);
  Alcotest.(check int) "p1 steps" 2 steps.(1)

let test_fifo_notices_discipline () =
  (* p2 pongs p0 and then fails: under fifo notices, p0 can only
     receive the notice about p2 after p2's pong *)
  let c = E.init ~n:3 ~inputs:(inputs 3) in
  let c, _ = E.apply_exn ~step:0 c (Action.Send_step 0) in
  let c, _ = E.apply_exn ~step:1 c (Action.Send_step 0) in
  let c, _ = E.apply_exn ~step:2 c (Action.Deliver { at = 2; index = 0 }) in
  let c, _ = E.apply_exn ~step:3 c (Action.Send_step 2) in
  let c, _ = E.apply_exn ~step:4 c (Action.Fail 2) in
  (* p0's buffer now holds p2's pong followed by the notice about p2 *)
  let note_deliverable c fifo =
    List.exists
      (fun a ->
        match a with
        | Action.Deliver { at = 0; index } -> (
          match List.nth_opt (E.buffer_of c 0) index with
          | Some (E.Note 2) -> true
          | _ -> false)
        | _ -> false)
      (E.applicable ~fifo_notices:fifo c)
  in
  Alcotest.(check bool) "unordered: notice deliverable early" true (note_deliverable c false);
  Alcotest.(check bool) "fifo: notice blocked by the pong" false (note_deliverable c true);
  (* consume the pong: the notice unblocks *)
  let pong_action =
    List.find
      (fun a ->
        match a with
        | Action.Deliver { at = 0; index } -> (
          match List.nth_opt (E.buffer_of c 0) index with
          | Some (E.Data _) -> true
          | _ -> false)
        | _ -> false)
      (E.applicable ~fifo_notices:true c)
  in
  let c, _ = E.apply_exn ~step:5 c pong_action in
  Alcotest.(check bool) "notice now deliverable" true (note_deliverable c true)

let test_notice_first_scheduler () =
  let c = E.init ~n:2 ~inputs:(inputs 2) in
  let c, _ = E.apply_exn ~step:0 c (Action.Send_step 0) in
  let c, _ = E.apply_exn ~step:1 c (Action.Fail 0) in
  let prng = Patterns_stdx.Prng.create ~seed:3 in
  (match E.notice_first_scheduler prng ~step:0 c (E.applicable c) with
  | Some (Action.Deliver { at = 1; index }) -> (
    match List.nth_opt (E.buffer_of c 1) index with
    | Some (E.Note 0) -> ()
    | _ -> Alcotest.fail "expected the failure notice to be preferred")
  | _ -> Alcotest.fail "expected a delivery")

let test_lifo_scheduler () =
  let c = E.init ~n:3 ~inputs:(inputs 3) in
  (* p0 pings p1 then p2; LIFO picks the newest applicable action *)
  let c, _ = E.apply_exn ~step:0 c (Action.Send_step 0) in
  let c, _ = E.apply_exn ~step:1 c (Action.Send_step 0) in
  match E.lifo_scheduler ~step:0 c (E.applicable c) with
  | Some (Action.Deliver { at = 2; _ }) -> ()
  | a ->
    Alcotest.fail
      (Format.asprintf "expected delivery at p2, got %a" (Fmt.option Action.pp) a)

let test_trace_csv () =
  let r = E.run ~scheduler:E.fifo_scheduler ~n:2 ~inputs:(inputs 2) () in
  let csv = Trace.to_csv ~pp_msg:Ping_pong.pp_msg r.E.trace in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check string) "header" "step,kind,proc,peer,index,payload" (List.hd lines);
  (* 2 sends + 2 receives + 2 decides + 2 halts *)
  Alcotest.(check int) "rows" 9 (List.length lines);
  Alcotest.(check bool) "a send row present" true
    (List.exists (fun l -> l = "0,send,0,1,1,ping") lines)

let test_quiescent_detection () =
  let c = E.init ~n:2 ~inputs:(inputs 2) in
  Alcotest.(check bool) "initially active" false (E.quiescent c);
  let r = E.run ~scheduler:E.fifo_scheduler ~n:2 ~inputs:(inputs 2) () in
  Alcotest.(check bool) "finally quiescent" true (E.quiescent r.E.final)

let () =
  Alcotest.run "sim"
    [
      ( "primitives",
        [
          Alcotest.test_case "proc ids" `Quick test_proc_id;
          Alcotest.test_case "decisions" `Quick test_decision;
          Alcotest.test_case "status transitions" `Quick test_status_transitions;
          Alcotest.test_case "triples" `Quick test_triple;
          Alcotest.test_case "outbox" `Quick test_outbox;
        ] );
      ( "engine",
        [
          Alcotest.test_case "init validation" `Quick test_init_validation;
          Alcotest.test_case "fifo run completes" `Quick test_fifo_run_completes;
          Alcotest.test_case "triple numbering" `Quick test_triple_numbering;
          Alcotest.test_case "causality edges" `Quick test_causality_edges;
          Alcotest.test_case "failure notices" `Quick test_failure_notices;
          Alcotest.test_case "apply errors" `Quick test_apply_errors;
          Alcotest.test_case "decision events" `Quick test_decided_events_emitted;
          Alcotest.test_case "schedulers agree" `Quick test_schedulers_agree_on_outcome;
          Alcotest.test_case "seeded determinism" `Quick test_random_scheduler_deterministic_per_seed;
          Alcotest.test_case "steps per processor" `Quick test_steps_per_proc;
          Alcotest.test_case "fifo notice discipline" `Quick test_fifo_notices_discipline;
          Alcotest.test_case "notice-first scheduler" `Quick test_notice_first_scheduler;
          Alcotest.test_case "lifo scheduler" `Quick test_lifo_scheduler;
          Alcotest.test_case "trace csv" `Quick test_trace_csv;
          Alcotest.test_case "quiescence" `Quick test_quiescent_detection;
        ] );
      ( "replay",
        [
          Alcotest.test_case "directives" `Quick test_play_directives;
          Alcotest.test_case "error reporting" `Quick test_play_error_reporting;
          Alcotest.test_case "exact-triple delivery" `Quick test_play_deliver_msg;
          Alcotest.test_case "behavioural compare" `Quick test_behavioral_compare_collapses_order;
        ] );
    ]
