(* Fingerprint consistency over the whole protocol registry.

   Two invariants, qcheck'd on random walks (failure steps and
   receive-omission drops included) through every registered protocol:

   - canonicality: [compare_config a b = 0] implies
     [fingerprint a = fingerprint b] (and likewise for the behavioral
     projection) — equal configurations fingerprint equally however
     they were reached;
   - maintenance: after every [apply_exn], the incrementally carried
     fingerprint equals [fingerprint_from_scratch] — the O(1) value
     the search kernel keys its visited store on never drifts from
     the full fold.

   Each maintenance run checks every configuration along a 20-step
   walk, so at 500 runs a protocol gets ~10k checked applications. *)

open Patterns_sim
open Patterns_stdx

let pick_n (module P : Protocol.S) ~default_n = if P.valid_n 3 then 3 else default_n

let tests_for entry =
  let (module P : Protocol.S) = entry.Patterns_protocols.Registry.protocol in
  let n = pick_n (module P) ~default_n:entry.Patterns_protocols.Registry.default_n in
  let module E = Engine.Make (P) in
  (* [Action.Drop] for every buffered [Data] entry: exercises
     [apply_drop]'s exact-inverse fingerprint delta (notices cannot be
     dropped, so they are skipped) *)
  let drop_actions cfg =
    List.concat_map
      (fun p ->
        List.concat
          (List.mapi
             (fun i -> function
               | E.Data _ -> [ Action.Drop { at = p; index = i } ]
               | E.Note _ -> [])
             (E.buffer_of cfg p)))
      (Proc_id.all ~n)
  in
  let walk ~seed ~steps ~on_config =
    let prng = Prng.create ~seed in
    let inputs = List.init n (fun _ -> Prng.bool prng) in
    let rec go acc cfg k =
      if k = 0 then acc
      else
        let acts =
          E.applicable cfg
          @ (if Prng.int prng ~bound:4 = 0 then E.failure_actions cfg else [])
          @ (if Prng.int prng ~bound:4 = 0 then drop_actions cfg else [])
        in
        match acts with
        | [] -> acc
        | acts ->
          let a = List.nth acts (Prng.int prng ~bound:(List.length acts)) in
          let cfg', _ = E.apply_exn ~step:(steps - k) cfg a in
          on_config cfg';
          go (cfg' :: acc) cfg' (k - 1)
    in
    let c0 = E.init ~n ~inputs in
    on_config c0;
    go [ c0 ] c0 steps
  in
  let open QCheck2 in
  [
    Test.make
      ~name:(Printf.sprintf "%s: incremental fingerprint = from-scratch" P.name)
      ~count:500
      Gen.(int_bound 1_000_000)
      (fun seed ->
        let ok = ref true in
        let check c =
          if E.fingerprint c <> E.fingerprint_from_scratch c then ok := false
        in
        ignore (walk ~seed ~steps:20 ~on_config:check);
        !ok);
    Test.make
      ~name:(Printf.sprintf "%s: untracked lazy fingerprint = tracked" P.name)
      ~count:100
      Gen.(int_bound 1_000_000)
      (fun seed ->
        (* replay the same walk from a tracked and an untracked root:
           the untracked configuration's on-demand fingerprint must
           equal the incrementally maintained one, and reading it
           twice must agree (memoization) *)
        let prng = Prng.create ~seed in
        let inputs = List.init n (fun _ -> Prng.bool prng) in
        let rec go ok tracked untracked k =
          if k = 0 || not ok then ok
          else
            let acts =
              E.applicable tracked
              @ (if Prng.int prng ~bound:4 = 0 then E.failure_actions tracked else [])
              @ (if Prng.int prng ~bound:4 = 0 then drop_actions tracked else [])
            in
            match acts with
            | [] -> ok
            | acts ->
              let a = List.nth acts (Prng.int prng ~bound:(List.length acts)) in
              let tracked', _ = E.apply_exn ~step:0 tracked a in
              let untracked', _ = E.apply_exn ~step:0 untracked a in
              let ok =
                E.fingerprint untracked' = E.fingerprint tracked'
                && E.fingerprint untracked' = E.fingerprint untracked'
                && E.behavioral_fingerprint untracked'
                   = E.behavioral_fingerprint tracked'
                (* the edge component of the pattern fingerprint is
                   lazy under untracked roots: recomputed on demand it
                   must equal the eagerly maintained value, and a
                   second read must hit the memo *)
                && E.pattern_fp untracked' = E.pattern_fp tracked'
                && E.pattern_fp untracked' = E.pattern_fp untracked'
              in
              go ok tracked' untracked' (k - 1)
        in
        go
          (E.fingerprint (E.init_untracked ~n ~inputs) = E.fingerprint (E.init ~n ~inputs))
          (E.init ~n ~inputs)
          (E.init_untracked ~n ~inputs)
          15);
    Test.make
      ~name:(Printf.sprintf "%s: equal configs fingerprint equally" P.name)
      ~count:40
      Gen.(pair (int_bound 1_000_000) (int_bound 1_000_000))
      (fun (s1, s2) ->
        let pool =
          walk ~seed:s1 ~steps:25 ~on_config:ignore
          @ walk ~seed:s2 ~steps:25 ~on_config:ignore
        in
        List.for_all
          (fun a ->
            List.for_all
              (fun b ->
                (E.compare_config a b <> 0 || E.fingerprint a = E.fingerprint b)
                && (E.compare_behavioral a b <> 0
                   || E.behavioral_fingerprint a = E.behavioral_fingerprint b))
              pool)
          pool);
  ]

let () =
  Alcotest.run "fingerprint"
    [
      ( "registry",
        List.concat_map
          (fun entry -> List.map QCheck_alcotest.to_alcotest (tests_for entry))
          Patterns_protocols.Registry.all );
    ]
