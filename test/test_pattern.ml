(* Tests for communication patterns and scheme enumeration. *)

open Patterns_sim
open Patterns_pattern

let tr ~s ~r ~k = Triple.make ~sender:s ~receiver:r ~index:k

(* ----- Pattern construction ----- *)

let test_make_closure () =
  let a = tr ~s:0 ~r:1 ~k:1 and b = tr ~s:1 ~r:2 ~k:1 and c = tr ~s:2 ~r:0 ~k:1 in
  let p = Pattern.make [ a; b; c ] [ (a, b); (b, c) ] in
  Alcotest.(check bool) "transitive a<c" true (Pattern.lt p a c);
  Alcotest.(check bool) "not c<a" false (Pattern.lt p c a);
  Alcotest.(check int) "covers count" 2 (List.length (Pattern.covers p));
  Alcotest.(check int) "all pairs" 3 (List.length (Pattern.all_pairs p))

let test_concurrent () =
  let a = tr ~s:0 ~r:1 ~k:1 and b = tr ~s:2 ~r:3 ~k:1 in
  let p = Pattern.make [ a; b ] [] in
  Alcotest.(check bool) "concurrent" true (Pattern.concurrent p a b);
  Alcotest.(check bool) "not concurrent with itself" false (Pattern.concurrent p a a)

let test_width_height () =
  let a = tr ~s:0 ~r:1 ~k:1 and b = tr ~s:0 ~r:1 ~k:2 and c = tr ~s:2 ~r:3 ~k:1 in
  let p = Pattern.make [ a; b; c ] [ (a, b) ] in
  Alcotest.(check int) "height" 2 (Pattern.height p);
  Alcotest.(check int) "width" 2 (Pattern.width p)

let test_delivery_orders () =
  let a = tr ~s:0 ~r:1 ~k:1 and b = tr ~s:2 ~r:3 ~k:1 in
  let p = Pattern.make [ a; b ] [] in
  Alcotest.(check int) "two linearizations" 2 (List.length (Pattern.delivery_orders p))

let test_received_none () =
  let a = tr ~s:0 ~r:1 ~k:1 in
  let p = Pattern.make [ a ] [] in
  Alcotest.(check (list int)) "everyone but p1" [ 0; 2 ] (Pattern.received_none p ~n:3)

(* ----- extraction from traces ----- *)

(* toy relay protocol: p0 sends to p1, p1 relays to p2 *)
module Relay = struct
  type msg = Token
  type state = Start | Idle | Got of Proc_id.t | Done_st

  let name = "relay"
  let describe = "test protocol"
  let valid_n n = n = 3
  let initial ~n:_ ~me ~input:_ = if me = 0 then Start else Idle

  let step_kind = function
    | Start | Got _ -> Step_kind.Sending
    | Idle -> Step_kind.Receiving
    | Done_st -> Step_kind.Quiescent

  let send ~n:_ ~me = function
    | Start -> (Some (1, Token), Done_st)
    | Got _ when me = 1 -> (Some (2, Token), Done_st)
    | s -> (None, (match s with Got _ -> Done_st | s -> s))

  let receive ~n:_ ~me:_ s incoming =
    match (s, incoming) with
    | Idle, Incoming.Msg { from; payload = Token } -> Got from
    | s, _ -> s

  let status _ = Status.undecided
  let compare_state = Stdlib.compare
  let hash_state = Hashtbl.hash
  let pp_state ppf _ = Format.pp_print_string ppf "-"
  let compare_msg _ _ = 0
  let pp_msg ppf _ = Format.pp_print_string ppf "token"
end

module RE = Engine.Make (Relay)

let test_extraction_chain () =
  let r = RE.run ~scheduler:RE.fifo_scheduler ~n:3 ~inputs:[ true; true; true ] () in
  let p = Pattern.of_trace r.RE.trace in
  Alcotest.(check int) "two messages" 2 (Pattern.message_count p);
  let m1 = tr ~s:0 ~r:1 ~k:1 and m2 = tr ~s:1 ~r:2 ~k:1 in
  Alcotest.(check bool) "m1 < m2" true (Pattern.lt p m1 m2);
  Alcotest.(check int) "height 2" 2 (Pattern.height p)

let test_prefix_consistency () =
  let m1 = tr ~s:0 ~r:1 ~k:1 and m2 = tr ~s:1 ~r:2 ~k:1 in
  let prefix = Pattern.make [ m1 ] [] in
  let full = Pattern.make [ m1; m2 ] [ (m1, m2) ] in
  Alcotest.(check bool) "prefix consistent" true (Pattern.is_prefix_consistent prefix full);
  Alcotest.(check bool) "not conversely" false (Pattern.is_prefix_consistent full prefix)

(* ----- schemes ----- *)

let test_scheme_relay_single_pattern () =
  let module S = Scheme.Make (Relay) in
  let pats, stats = S.patterns_for_inputs ~n:3 ~inputs:[ true; true; true ] () in
  Alcotest.(check int) "one pattern" 1 (Pattern.Set.cardinal pats);
  Alcotest.(check bool) "not truncated" false stats.Scheme.truncated

let test_scheme_fig3_single_pattern () =
  let (module P) = Patterns_protocols.Chain_proto.fig3 in
  let module S = Scheme.Make (P) in
  let pats, _ = S.scheme ~n:4 () in
  (* "The pattern illustrated is the only failure-free pattern" *)
  Alcotest.(check int) "exactly one pattern" 1 (Pattern.Set.cardinal pats);
  let p = List.hd (Pattern.Set.elements pats) in
  Alcotest.(check int) "6 messages" 6 (Pattern.message_count p)

let test_scheme_fig1_pattern_count () =
  let (module P) = Patterns_protocols.Tree_proto.fig1 in
  let module S = Scheme.Make (P) in
  let pats, _ = S.scheme ~n:7 () in
  (* one commit pattern + one abort pattern per subset of 0-leaves *)
  Alcotest.(check int) "17 patterns" 17 (Pattern.Set.cardinal pats)

let test_scheme_fig4_four_patterns () =
  let (module P) = Patterns_protocols.Perverse_proto.fig4 in
  let module S = Scheme.Make (P) in
  let pats, _ = S.scheme ~n:4 () in
  Alcotest.(check int) "four patterns" 4 (Pattern.Set.cardinal pats);
  let sizes =
    List.sort Int.compare (List.map Pattern.message_count (Pattern.Set.elements pats))
  in
  Alcotest.(check (list int)) "message counts" [ 17; 18; 18; 20 ] sizes

let test_subscheme () =
  let m1 = tr ~s:0 ~r:1 ~k:1 in
  let p1 = Pattern.make [ m1 ] [] in
  let small = Pattern.Set.singleton p1 in
  let big = Pattern.Set.add Pattern.empty small in
  Alcotest.(check bool) "subset" true (Scheme.subscheme small big);
  Alcotest.(check bool) "not superset" false (Scheme.subscheme big small);
  Alcotest.(check bool) "equal reflexive" true (Scheme.equal_schemes big big)

let test_totalcomm_subscheme () =
  let base = Patterns_protocols.Perverse_proto.fig4 in
  let (module B) = base in
  let module SB = Scheme.Make (B) in
  let base_pats, _ = SB.patterns_for_inputs ~n:4 ~inputs:[ true; true; true; true ] () in
  let (module T) = Patterns_protocols.Total_comm.transform base in
  let module ST = Scheme.Make (T) in
  let tc_pats, _ = ST.patterns_for_inputs ~n:4 ~inputs:[ true; true; true; true ] () in
  Alcotest.(check bool) "transform scheme within base scheme" true
    (Scheme.subscheme tc_pats base_pats);
  Alcotest.(check bool) "transform produces patterns" true (not (Pattern.Set.is_empty tc_pats))

(* ----- realize: pattern -> execution round trip ----- *)

let test_realize_fig4_roundtrip () =
  let (module P) = Patterns_protocols.Perverse_proto.fig4 in
  let module S = Scheme.Make (P) in
  let inputs = [ true; true; true; true ] in
  let pats, _ = S.patterns_for_inputs ~n:4 ~inputs () in
  Alcotest.(check int) "four patterns" 4 (Pattern.Set.cardinal pats);
  Pattern.Set.iter
    (fun target ->
      match S.realize ~n:4 ~inputs ~target () with
      | Scheme.Unrealizable -> Alcotest.fail "an enumerated pattern must be realizable"
      | Scheme.Truncated -> Alcotest.fail "realize must not truncate at this scope"
      | Scheme.Realized actions ->
        (* replay and re-extract *)
        let final =
          List.fold_left (fun c a -> fst (S.E.apply_exn ~step:0 c a)) (S.E.init ~n:4 ~inputs)
            actions
        in
        let extracted = Pattern.make (S.E.triples_of final) (S.E.pattern_edges final) in
        if not (Pattern.equal extracted target) then
          Alcotest.fail "replayed execution does not reproduce the target pattern")
    pats

let test_realize_rejects_foreign_pattern () =
  let (module P) = Patterns_protocols.Chain_proto.fig3 in
  let module S = Scheme.Make (P) in
  (* a pattern the chain protocol never produces *)
  let foreign = Pattern.make [ tr ~s:3 ~r:2 ~k:1 ] [] in
  Alcotest.(check bool) "not realizable" true
    (S.realize ~n:4 ~inputs:[ true; true; true; true ] ~target:foreign ()
    = Scheme.Unrealizable)

(* ----- latency ----- *)

let test_latency_fixed_delays () =
  let r = RE.run ~scheduler:RE.fifo_scheduler ~n:3 ~inputs:[ true; true; true ] () in
  (* chain of two messages, fixed delay 10, unit steps:
     p0 sends at 1; arrives 11; p1 receives at 12, sends at 13;
     arrives 23; p2 receives at 24 and takes one final (null) step *)
  let t = Latency.evaluate ~seed:1 ~model:(Latency.Fixed 10.0) ~n:3 r.RE.trace in
  Alcotest.(check (float 1e-9)) "completion" 25.0 t.Latency.completion;
  Alcotest.(check int) "critical path" 2 (Latency.critical_path_bound r.RE.trace)

let test_latency_deterministic_per_seed () =
  let (module P) = Patterns_protocols.Two_phase_commit.default in
  let module E = Engine.Make (P) in
  let r = E.run ~scheduler:E.fifo_scheduler ~n:4 ~inputs:[ true; true; true; true ] () in
  let model = Latency.Uniform { lo = 1.0; hi = 9.0 } in
  let t1 = Latency.evaluate ~seed:7 ~model ~n:4 r.E.trace in
  let t2 = Latency.evaluate ~seed:7 ~model ~n:4 r.E.trace in
  let t3 = Latency.evaluate ~seed:8 ~model ~n:4 r.E.trace in
  Alcotest.(check (float 1e-12)) "same seed same completion" t1.Latency.completion
    t2.Latency.completion;
  Alcotest.(check bool) "different seed differs" true
    (t1.Latency.completion <> t3.Latency.completion)

let test_latency_receive_after_send () =
  let (module P) = Patterns_protocols.Tree_proto.fig1 in
  let module E = Engine.Make (P) in
  let r = E.run ~scheduler:E.fifo_scheduler ~n:7 ~inputs:(List.init 7 (fun _ -> true)) () in
  let t = Latency.evaluate ~seed:3 ~model:(Latency.Uniform { lo = 2.0; hi = 5.0 }) ~n:7 r.E.trace in
  List.iter
    (fun (_, sent, received) ->
      if received <= sent then Alcotest.fail "message received no later than sent")
    t.Latency.msg_times

let test_latency_per_link () =
  let r = RE.run ~scheduler:RE.fifo_scheduler ~n:3 ~inputs:[ true; true; true ] () in
  (* p0->p1 slow, p1->p2 fast *)
  let model = Latency.Per_link (fun s _ -> if s = 0 then 100.0 else 1.0) in
  let t = Latency.evaluate ~seed:1 ~model ~n:3 r.RE.trace in
  Alcotest.(check (float 1e-9)) "completion dominated by slow link" 106.0 t.Latency.completion

let test_latency_decision_times () =
  let (module P) = Patterns_protocols.Chain_proto.fig3 in
  let module E = Engine.Make (P) in
  let r = E.run ~scheduler:E.fifo_scheduler ~n:4 ~inputs:[ true; true; true; true ] () in
  let times =
    Latency.decision_times ~seed:5 ~model:(Latency.Fixed 10.0) ~n:4 r.E.trace
  in
  Alcotest.(check int) "four decisions" 4 (List.length times);
  (* decisions flow down the chain, so their times strictly increase *)
  let rec increasing = function
    | (_, a) :: ((_, b) :: _ as tl) -> a < b && increasing tl
    | _ -> true
  in
  Alcotest.(check bool) "chain order in time" true (increasing times)

let test_lanes_rendering () =
  let r = RE.run ~scheduler:RE.fifo_scheduler ~n:3 ~inputs:[ true; true; true ] () in
  let out = Render.lanes ~pp_msg:Relay.pp_msg ~n:3 r.RE.trace in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check bool) "has header" true
    (match lines with h :: _ -> String.length h >= 3 && String.sub h 0 2 = "p0" | [] -> false);
  (* one row per event plus header and rule *)
  Alcotest.(check int) "rows" (List.length r.RE.trace + 2)
    (List.length (List.filter (fun l -> l <> "") lines))

(* ----- reduce ----- *)

let test_reduce_equal_and_subscheme () =
  let m1 = tr ~s:0 ~r:1 ~k:1 and m2 = tr ~s:1 ~r:2 ~k:1 in
  let p1 = Pattern.make [ m1 ] [] in
  let p2 = Pattern.make [ m1; m2 ] [ (m1, m2) ] in
  let small = Pattern.Set.singleton p1 in
  let big = Pattern.Set.of_list [ p1; p2 ] in
  Alcotest.(check bool) "equal" true (Reduce.compare_schemes small small = Reduce.Equal);
  Alcotest.(check bool) "left sub" true (Reduce.compare_schemes small big = Reduce.Left_subscheme);
  Alcotest.(check bool) "right sub" true (Reduce.compare_schemes big small = Reduce.Right_subscheme)

let test_reduce_fig4_variants_incomparable () =
  let rel, left, right =
    Reduce.compare_protocols ~n:4 Patterns_protocols.Perverse_proto.fig4_amnesic
      Patterns_protocols.Perverse_proto.fig4
  in
  Alcotest.(check int) "left has 4" 4 (Pattern.Set.cardinal left);
  Alcotest.(check int) "right has 4" 4 (Pattern.Set.cardinal right);
  match rel with
  | Reduce.Incomparable { only_left; only_right } ->
    Alcotest.(check int) "witness: {m1,m2} without m3" 19 (Pattern.message_count only_left);
    Alcotest.(check int) "witness: the full pattern" 20 (Pattern.message_count only_right)
  | _ -> Alcotest.fail "expected incomparable schemes"

(* ----- rendering ----- *)

let test_render_dot () =
  let m1 = tr ~s:0 ~r:1 ~k:1 and m2 = tr ~s:1 ~r:2 ~k:1 in
  let p = Pattern.make [ m1; m2 ] [ (m1, m2) ] in
  let dot = Patterns_stdx.Dot.to_string (Render.pattern_to_dot p) in
  let contains s frag =
    let ls = String.length s and lf = String.length frag in
    let rec go i = i + lf <= ls && (String.sub s i lf = frag || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "nodes present" true (contains dot "p0->p1#1");
  Alcotest.(check bool) "edge present" true (contains dot "\"p0->p1#1\" -> \"p1->p2#1\"")

let test_render_ascii_and_msc () =
  let r = RE.run ~scheduler:RE.fifo_scheduler ~n:3 ~inputs:[ true; true; true ] () in
  let p = Pattern.of_trace r.RE.trace in
  Alcotest.(check bool) "ascii nonempty" true (String.length (Render.pattern_ascii p) > 0);
  Alcotest.(check bool) "msc nonempty" true
    (String.length (Render.msc ~pp_msg:Relay.pp_msg r.RE.trace) > 0)

(* ----- independent happens-before reference ----- *)

(* Compute the paper's <_I directly from trace positions: rule (1) —
   same sender, earlier send; rule (2) — m1's receiver sends m2 after
   receiving m1; then close transitively.  This shares no code with
   the engine's knowledge-set bookkeeping. *)
let reference_pattern trace =
  let sends = ref [] and receives = ref [] in
  List.iteri
    (fun pos ev ->
      match ev with
      | Trace.Sent { triple; _ } -> sends := (triple, pos) :: !sends
      | Trace.Delivered_msg { triple; _ } -> receives := (triple, pos) :: !receives
      | _ -> ())
    trace;
  let sends = List.rev !sends and receives = List.rev !receives in
  let triples = List.map fst sends in
  let send_pos m = List.assoc m sends in
  let recv_pos m = List.assoc_opt m receives in
  let direct m1 m2 =
    (not (Triple.equal m1 m2))
    && ((m1.Triple.sender = m2.Triple.sender && send_pos m1 < send_pos m2)
       ||
       match recv_pos m1 with
       | Some r -> m1.Triple.receiver = m2.Triple.sender && r < send_pos m2
       | None -> false)
  in
  let pairs =
    List.concat_map
      (fun m1 -> List.filter_map (fun m2 -> if direct m1 m2 then Some (m1, m2) else None) triples)
      triples
  in
  Pattern.make triples pairs

let test_reference_happens_before () =
  (* engine bookkeeping must agree with the paper's rules on random
     fair runs of several protocols *)
  List.iter
    (fun (p, n) ->
      let (module P : Protocol.S) = p in
      let module E = Engine.Make (P) in
      for seed = 1 to 15 do
        let prng = Patterns_stdx.Prng.create ~seed in
        let inputs = List.init n (fun _ -> Patterns_stdx.Prng.bool prng) in
        let r = E.run ~scheduler:(E.random_scheduler prng) ~n ~inputs () in
        let engine_pattern = Pattern.of_trace r.E.trace in
        let reference = reference_pattern r.E.trace in
        if not (Pattern.equal engine_pattern reference) then
          Alcotest.fail
            (Format.asprintf "%s seed %d: engine pattern differs from the reference@.%a@.vs@.%a"
               P.name seed Pattern.pp engine_pattern Pattern.pp reference)
      done)
    [
      (Patterns_protocols.Two_phase_commit.default, 4);
      (Patterns_protocols.Tree_proto.fig1, 7);
      (Patterns_protocols.Perverse_proto.fig4, 4);
      (Patterns_protocols.Central_proto.fig2, 4);
      (Patterns_protocols.Termination_proto.default, 3);
    ]

(* ----- properties ----- *)

let qcheck_tests =
  let open QCheck2 in
  [
    Test.make ~count:50 ~name:"patterns of random fair runs are strict partial orders"
      Gen.(int_range 1 10_000)
      (fun seed ->
        let (module P) = Patterns_protocols.Two_phase_commit.default in
        let module E = Engine.Make (P) in
        let prng = Patterns_stdx.Prng.create ~seed in
        let inputs = List.init 4 (fun _ -> Patterns_stdx.Prng.bool prng) in
        let r = E.run ~scheduler:(E.random_scheduler prng) ~n:4 ~inputs () in
        let p = Pattern.of_trace r.E.trace in
        (* closure is irreflexive and transitive by construction; check
           sanity: same-sender messages are totally ordered *)
        let msgs = Pattern.messages p in
        List.for_all
          (fun (a : Triple.t) ->
            List.for_all
              (fun (b : Triple.t) ->
                Triple.equal a b
                || a.Triple.sender <> b.Triple.sender
                || Pattern.lt p a b || Pattern.lt p b a)
              msgs)
          msgs);
    Test.make ~count:30 ~name:"pattern of a prefix embeds in the full pattern"
      Gen.(int_range 1 10_000)
      (fun seed ->
        let (module P) = Patterns_protocols.Chain_proto.fig3 in
        let module E = Engine.Make (P) in
        let prng = Patterns_stdx.Prng.create ~seed in
        let r = E.run ~scheduler:(E.random_scheduler prng) ~n:4 ~inputs:[ true; true; true; true ] () in
        let k = Patterns_stdx.Prng.int prng ~bound:(List.length r.E.trace + 1) in
        let prefix = Pattern.of_trace (Patterns_stdx.Listx.take k r.E.trace) in
        let full = Pattern.of_trace r.E.trace in
        Pattern.is_prefix_consistent prefix full);
  ]

let () =
  Alcotest.run "pattern"
    [
      ( "construction",
        [
          Alcotest.test_case "closure" `Quick test_make_closure;
          Alcotest.test_case "concurrency" `Quick test_concurrent;
          Alcotest.test_case "width/height" `Quick test_width_height;
          Alcotest.test_case "delivery orders" `Quick test_delivery_orders;
          Alcotest.test_case "received none" `Quick test_received_none;
        ] );
      ( "extraction",
        [
          Alcotest.test_case "relay chain" `Quick test_extraction_chain;
          Alcotest.test_case "prefix consistency" `Quick test_prefix_consistency;
          Alcotest.test_case "reference happens-before" `Quick test_reference_happens_before;
        ] );
      ( "schemes",
        [
          Alcotest.test_case "relay has one pattern" `Quick test_scheme_relay_single_pattern;
          Alcotest.test_case "fig3 single pattern" `Quick test_scheme_fig3_single_pattern;
          Alcotest.test_case "fig1 pattern count" `Slow test_scheme_fig1_pattern_count;
          Alcotest.test_case "fig4 four patterns" `Quick test_scheme_fig4_four_patterns;
          Alcotest.test_case "subscheme" `Quick test_subscheme;
          Alcotest.test_case "total-communication subscheme" `Slow test_totalcomm_subscheme;
        ] );
      ( "realize",
        [
          Alcotest.test_case "fig4 round trip" `Quick test_realize_fig4_roundtrip;
          Alcotest.test_case "foreign pattern rejected" `Quick test_realize_rejects_foreign_pattern;
        ] );
      ( "latency",
        [
          Alcotest.test_case "fixed delays" `Quick test_latency_fixed_delays;
          Alcotest.test_case "seeded determinism" `Quick test_latency_deterministic_per_seed;
          Alcotest.test_case "receive after send" `Quick test_latency_receive_after_send;
          Alcotest.test_case "per-link model" `Quick test_latency_per_link;
          Alcotest.test_case "decision times" `Quick test_latency_decision_times;
          Alcotest.test_case "lane rendering" `Quick test_lanes_rendering;
        ] );
      ( "reduce",
        [
          Alcotest.test_case "equal and subscheme" `Quick test_reduce_equal_and_subscheme;
          Alcotest.test_case "fig4 variants incomparable" `Quick test_reduce_fig4_variants_incomparable;
        ] );
      ( "render",
        [
          Alcotest.test_case "dot" `Quick test_render_dot;
          Alcotest.test_case "ascii and msc" `Quick test_render_ascii_and_msc;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
