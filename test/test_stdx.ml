(* Unit and property tests for the utility substrate. *)

open Patterns_stdx

let check = Alcotest.check

let contains s fragment =
  let ls = String.length s and lf = String.length fragment in
  let rec go i = i + lf <= ls && (String.sub s i lf = fragment || go (i + 1)) in
  lf = 0 || go 0

(* ----- Prng ----- *)

let test_prng_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  let seq g = List.init 20 (fun _ -> Prng.bits64 g) in
  check (Alcotest.list Alcotest.int64) "same seed, same stream" (seq a) (seq b);
  let c = Prng.create ~seed:43 in
  Alcotest.(check bool) "different seed differs" false (seq (Prng.create ~seed:42) = seq c)

let test_prng_bounds () =
  let g = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Prng.int g ~bound:13 in
    if x < 0 || x >= 13 then Alcotest.fail "Prng.int out of bounds"
  done;
  for _ = 1 to 1000 do
    let f = Prng.float g in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "Prng.float out of bounds"
  done

let test_prng_split_independent () =
  let g = Prng.create ~seed:1 in
  let h = Prng.split g in
  let xs = List.init 10 (fun _ -> Prng.bits64 g) in
  let ys = List.init 10 (fun _ -> Prng.bits64 h) in
  Alcotest.(check bool) "split streams differ" false (xs = ys)

let test_prng_errors () =
  let g = Prng.create ~seed:1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g ~bound:0));
  Alcotest.check_raises "empty pick" (Invalid_argument "Prng.pick: empty list") (fun () ->
      ignore (Prng.pick g []))

let test_prng_shuffle_permutes () =
  let g = Prng.create ~seed:5 in
  let l = Listx.range 0 50 in
  let s = Prng.shuffle_list g l in
  check (Alcotest.list Alcotest.int) "same multiset" l (List.sort compare s)

(* ----- Pqueue ----- *)

let test_pqueue_sorts () =
  let q = Pqueue.of_list ~cmp:Int.compare [ 5; 3; 9; 1; 7; 3 ] in
  check (Alcotest.list Alcotest.int) "sorted pop order" [ 1; 3; 3; 5; 7; 9 ]
    (Pqueue.to_sorted_list q)

let test_pqueue_empty () =
  let q = Pqueue.empty ~cmp:Int.compare in
  Alcotest.(check bool) "is_empty" true (Pqueue.is_empty q);
  Alcotest.(check (option int)) "peek none" None (Pqueue.peek q);
  Alcotest.(check bool) "pop none" true (Pqueue.pop q = None)

let test_pqueue_size_and_mem () =
  let q = Pqueue.of_list ~cmp:Int.compare [ 4; 2; 8 ] in
  Alcotest.(check int) "size" 3 (Pqueue.size q);
  Alcotest.(check bool) "mem 8" true (Pqueue.mem q 8);
  Alcotest.(check bool) "mem 5" false (Pqueue.mem q 5)

(* qcheck properties *)
let qcheck_tests =
  let open QCheck2 in
  [
    Test.make ~count:300 ~name:"pqueue pops ascending" Gen.(list small_int) (fun l ->
        let q = Pqueue.of_list ~cmp:Int.compare l in
        Pqueue.to_sorted_list q = List.sort Int.compare l);
    Test.make ~count:300 ~name:"pqueue push preserves size" Gen.(list small_int) (fun l ->
        let q = Pqueue.of_list ~cmp:Int.compare l in
        Pqueue.size q = List.length l);
    Test.make ~count:300 ~name:"bitset to_list sorted and deduped"
      Gen.(list (int_bound 63))
      (fun l ->
        let s = Bitset.of_list 64 l in
        let expected = List.sort_uniq Int.compare l in
        Bitset.to_list s = expected && Bitset.cardinal s = List.length expected);
    Test.make ~count:300 ~name:"bitset union is commutative"
      Gen.(pair (list (int_bound 63)) (list (int_bound 63)))
      (fun (a, b) ->
        let sa = Bitset.of_list 64 a and sb = Bitset.of_list 64 b in
        let u1 = Bitset.copy sa in
        Bitset.union_into ~dst:u1 sb;
        let u2 = Bitset.copy sb in
        Bitset.union_into ~dst:u2 sa;
        Bitset.equal u1 u2);
    Test.make ~count:300 ~name:"bitset diff disjoint from subtrahend"
      Gen.(pair (list (int_bound 63)) (list (int_bound 63)))
      (fun (a, b) ->
        let sa = Bitset.of_list 64 a and sb = Bitset.of_list 64 b in
        let d = Bitset.copy sa in
        Bitset.diff_into ~dst:d sb;
        Bitset.disjoint d sb);
    Test.make ~count:300 ~name:"bitset subset of union"
      Gen.(pair (list (int_bound 63)) (list (int_bound 63)))
      (fun (a, b) ->
        let sa = Bitset.of_list 64 a and sb = Bitset.of_list 64 b in
        let u = Bitset.copy sa in
        Bitset.union_into ~dst:u sb;
        Bitset.subset sa u && Bitset.subset sb u);
    Test.make ~count:200 ~name:"interleavings preserve subsequence order"
      Gen.(pair (list_size (int_bound 3) small_int) (list_size (int_bound 3) small_int))
      (fun (a, b) ->
        let is_subsequence sub l =
          let rec go sub l =
            match (sub, l) with
            | [], _ -> true
            | _, [] -> false
            | x :: sub', y :: l' -> if x = y then go sub' l' else go sub l'
          in
          go sub l
        in
        (* tag elements to make them distinct across the two lists *)
        let a = List.map (fun x -> (0, x)) a and b = List.map (fun x -> (1, x)) b in
        let shuffles = Listx.interleavings [ a; b ] in
        List.for_all (fun s -> is_subsequence a s && is_subsequence b s) shuffles);
    Test.make ~count:100 ~name:"interleavings count is binomial"
      Gen.(pair (int_bound 4) (int_bound 4))
      (fun (na, nb) ->
        let a = List.init na (fun i -> (0, i)) and b = List.init nb (fun i -> (1, i)) in
        let binom =
          let rec fact k = if k <= 1 then 1 else k * fact (k - 1) in
          fact (na + nb) / (fact na * fact nb)
        in
        List.length (Listx.interleavings [ a; b ]) = binom);
    Test.make ~count:300 ~name:"dedup_sorted sorts and dedups" Gen.(list small_int) (fun l ->
        Listx.dedup_sorted ~cmp:Int.compare l = List.sort_uniq Int.compare l);
    Test.make ~count:300 ~name:"take @ drop = original"
      Gen.(pair (int_bound 20) (list small_int))
      (fun (n, l) -> Listx.take n l @ Listx.drop n l = l);
  ]

(* ----- Domain_pool ----- *)

let test_pool_empty_and_singleton () =
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      check (Alcotest.list Alcotest.int) "empty input" [] (Domain_pool.map pool succ []);
      check (Alcotest.list Alcotest.int) "singleton inline" [ 8 ]
        (Domain_pool.map pool (fun x -> x * 2) [ 4 ]))

let test_pool_jobs1_inline () =
  (* jobs=1 spawns no domains: every task runs on the calling domain *)
  Domain_pool.with_pool ~jobs:1 (fun pool ->
      let self = Domain.self () in
      let rans =
        Domain_pool.map pool (fun _ -> Domain.self () = self) (Listx.range 0 10)
      in
      Alcotest.(check bool) "all on calling domain" true (List.for_all Fun.id rans))

let test_pool_exception_then_reuse () =
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "first failing index wins" (Failure "boom 3") (fun () ->
          ignore
            (Domain_pool.map pool
               (fun i -> if i >= 3 then failwith (Printf.sprintf "boom %d" i) else i)
               (Listx.range 0 16)));
      (* the pool survives a failed batch *)
      check (Alcotest.list Alcotest.int) "reusable after failure" [ 0; 2; 4; 6 ]
        (Domain_pool.map pool (fun x -> 2 * x) (Listx.range 0 4)))

let test_pool_shutdown_rejects () =
  let pool = Domain_pool.create ~jobs:2 in
  Domain_pool.shutdown pool;
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Domain_pool.map: pool is shut down") (fun () ->
      ignore (Domain_pool.map pool succ [ 1; 2; 3 ]))

let pool_qcheck_tests =
  let open QCheck2 in
  [
    Test.make ~count:50 ~name:"pool map = List.map"
      Gen.(pair (int_range 1 6) (list small_int))
      (fun (jobs, l) ->
        Domain_pool.with_pool ~jobs (fun pool ->
            Domain_pool.map pool (fun x -> (x * 7) mod 13) l
            = List.map (fun x -> (x * 7) mod 13) l));
    Test.make ~count:50 ~name:"pool fold = left fold (non-commutative merge)"
      Gen.(pair (int_range 1 6) (list (string_size ~gen:printable (int_bound 4))))
      (fun (jobs, l) ->
        Domain_pool.with_pool ~jobs (fun pool ->
            Domain_pool.fold pool ~f:String.uppercase_ascii ~merge:( ^ ) ~init:"" l
            = List.fold_left (fun acc s -> acc ^ String.uppercase_ascii s) "" l));
  ]

(* ----- Sharded_store ----- *)

let int_store ?shard_bits () =
  Sharded_store.create ?shard_bits ~equal:Int.equal ~fingerprint:Fingerprint.of_int ()

let test_sharded_basics () =
  let s = int_store ~shard_bits:3 () in
  Alcotest.(check int) "8 shards" 8 (Sharded_store.shards s);
  Alcotest.(check int) "shard_bits" 3 (Sharded_store.shard_bits s);
  Alcotest.(check bool) "first insert" true (Sharded_store.add_if_absent s 42);
  Alcotest.(check bool) "duplicate insert" false (Sharded_store.add_if_absent s 42);
  Alcotest.(check bool) "mem present" true (Sharded_store.mem s 42);
  Alcotest.(check bool) "mem absent" false (Sharded_store.mem s 43);
  Alcotest.(check int) "bindings" 1 (Sharded_store.bindings s);
  (* one probe per mem and per add_if_absent, exactly *)
  Alcotest.(check int) "probes" 4 (Sharded_store.probes s);
  Alcotest.(check int) "no collisions" 0 (Sharded_store.collision_fallbacks s)

let test_sharded_shard_of_range () =
  let s = int_store ~shard_bits:4 () in
  let prng = Prng.create ~seed:11 in
  for _ = 1 to 1000 do
    let fp = Fingerprint.of_int (Int64.to_int (Prng.bits64 prng)) in
    let i = Sharded_store.shard_of s fp in
    if i < 0 || i >= 16 then Alcotest.fail "shard_of out of range"
  done

let test_sharded_occupancy () =
  let s = int_store () in
  List.iter (fun i -> ignore (Sharded_store.add_if_absent s i)) (Listx.range 0 500);
  Alcotest.(check int) "bindings" 500 (Sharded_store.bindings s);
  let occ = Sharded_store.occupancy s in
  Alcotest.(check int) "occupancy sums to bindings" 500 (Array.fold_left ( + ) 0 occ);
  Alcotest.(check int) "occupancy_max is the max" (Array.fold_left max 0 occ)
    (Sharded_store.occupancy_max s)

let test_sharded_collisions_confirmed () =
  (* a constant fingerprint forces every state into one bucket: the
     store must still distinguish them structurally *)
  let s =
    Sharded_store.create ~equal:Int.equal ~fingerprint:(fun _ -> Fingerprint.of_int 42) ()
  in
  List.iter
    (fun i -> Alcotest.(check bool) "all inserted" true (Sharded_store.add_if_absent s i))
    (Listx.range 0 10);
  Alcotest.(check int) "10 bindings despite equal fps" 10 (Sharded_store.bindings s);
  Alcotest.(check bool) "each member found" true
    (List.for_all (Sharded_store.mem s) (Listx.range 0 10));
  Alcotest.(check bool) "collisions counted" true (Sharded_store.collision_fallbacks s > 0)

let test_sharded_concurrent_inserts () =
  (* four domains insert overlapping ranges; the union must survive
     with exact counter totals: one probe per call, one binding per
     distinct value *)
  let s = int_store () in
  let range d = Listx.range (d * 200) (d * 200 + 400) in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            List.fold_left
              (fun acc i -> if Sharded_store.add_if_absent s i then acc + 1 else acc)
              0 (range d)))
  in
  let inserted = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  let distinct = List.sort_uniq Int.compare (List.concat_map range (Listx.range 0 4)) in
  Alcotest.(check int) "insert wins are the distinct values" (List.length distinct) inserted;
  Alcotest.(check int) "bindings" (List.length distinct) (Sharded_store.bindings s);
  Alcotest.(check int) "probes = calls" (4 * 400) (Sharded_store.probes s);
  Alcotest.(check bool) "every value present" true (List.for_all (Sharded_store.mem s) distinct);
  Alcotest.(check int) "occupancy total" (List.length distinct)
    (Array.fold_left ( + ) 0 (Sharded_store.occupancy s))

(* ----- Ws_deque ----- *)

let test_deque_owner_order () =
  let d = Ws_deque.create ~capacity:2 () in
  Alcotest.(check (option int)) "pop on empty" None (Ws_deque.pop d);
  (match Ws_deque.steal d with
  | Ws_deque.Empty -> ()
  | _ -> Alcotest.fail "steal on empty");
  (* five pushes through a capacity-2 buffer exercises growth *)
  List.iter (Ws_deque.push d) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "size" 5 (Ws_deque.size d);
  Alcotest.(check (option int)) "pop is LIFO" (Some 5) (Ws_deque.pop d);
  (match Ws_deque.steal d with
  | Ws_deque.Stolen 1 -> ()
  | _ -> Alcotest.fail "steal is FIFO");
  Alcotest.(check (option int)) "pop again" (Some 4) (Ws_deque.pop d);
  (match Ws_deque.steal d with
  | Ws_deque.Stolen 2 -> ()
  | _ -> Alcotest.fail "second steal");
  Alcotest.(check (option int)) "last item" (Some 3) (Ws_deque.pop d);
  Alcotest.(check (option int)) "drained" None (Ws_deque.pop d);
  match Ws_deque.steal d with
  | Ws_deque.Empty -> ()
  | _ -> Alcotest.fail "steal after drain"

let test_deque_steal_storm () =
  (* one owner pushes [n] items (popping a few along the way), three
     thieves steal concurrently: every item must be taken exactly once
     across all four domains — no loss, no duplication *)
  let n = 20_000 in
  let d = Ws_deque.create ~capacity:4 () in
  let owner_done = Atomic.make false in
  let thief () =
    let rec go acc =
      match Ws_deque.steal d with
      | Ws_deque.Stolen v -> go (v :: acc)
      | Ws_deque.Retry -> go acc
      | Ws_deque.Empty -> if Atomic.get owner_done then acc else (Domain.cpu_relax (); go acc)
    in
    go []
  in
  let thieves = List.init 3 (fun _ -> Domain.spawn thief) in
  let owner_got = ref [] in
  for i = 0 to n - 1 do
    Ws_deque.push d i;
    if i mod 3 = 0 then
      match Ws_deque.pop d with None -> () | Some v -> owner_got := v :: !owner_got
  done;
  let rec drain () =
    match Ws_deque.pop d with
    | Some v ->
      owner_got := v :: !owner_got;
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set owner_done true;
  let stolen = List.concat_map Domain.join thieves in
  let all = List.sort Int.compare (stolen @ !owner_got) in
  Alcotest.(check int) "every item taken exactly once" n (List.length all);
  Alcotest.(check (list int)) "items are 0..n-1" (Listx.range 0 n) all

(* Sequential qcheck oracle: the deque against a plain list model —
   push appends at the bottom, pop takes from the bottom, steal from
   the top.  Single-domain, so the model is exact. *)
let deque_qcheck_tests =
  let open QCheck2 in
  [
    (* A tiny initial buffer forces grow-by-copy every few pushes while
       three thieves steal concurrently: the copy must not lose, drop
       or duplicate an element regardless of how pops interleave.  The
       seed randomizes the owner's pop pattern, so each run races the
       growth against steals at different points. *)
    Test.make ~name:"grow-by-copy races concurrent steals (storm)" ~count:12
      Gen.(int_bound 10_000)
      (fun seed ->
        let n = 2_000 in
        let d = Ws_deque.create ~capacity:2 () in
        let owner_done = Atomic.make false in
        let thief () =
          let rec go acc =
            match Ws_deque.steal d with
            | Ws_deque.Stolen v -> go (v :: acc)
            | Ws_deque.Retry -> go acc
            | Ws_deque.Empty ->
              if Atomic.get owner_done then acc
              else begin
                Domain.cpu_relax ();
                go acc
              end
          in
          go []
        in
        let thieves = List.init 3 (fun _ -> Domain.spawn thief) in
        let prng = Prng.create ~seed in
        let owner_got = ref [] in
        for i = 0 to n - 1 do
          Ws_deque.push d i;
          if Prng.int prng ~bound:4 = 0 then
            match Ws_deque.pop d with None -> () | Some v -> owner_got := v :: !owner_got
        done;
        let rec drain () =
          match Ws_deque.pop d with
          | Some v ->
            owner_got := v :: !owner_got;
            drain ()
          | None -> ()
        in
        drain ();
        Atomic.set owner_done true;
        let stolen = List.concat_map Domain.join thieves in
        List.sort Int.compare (stolen @ !owner_got) = Listx.range 0 n);
    Test.make ~name:"deque matches list model (sequential)" ~count:200
      Gen.(list (int_bound 2))
      (fun ops ->
        let d = Ws_deque.create ~capacity:2 () in
        let model = ref [] in
        let counter = ref 0 in
        List.for_all
          (fun op ->
            match op with
            | 0 ->
              incr counter;
              Ws_deque.push d !counter;
              model := !model @ [ !counter ];
              true
            | 1 -> (
              let expect =
                match List.rev !model with
                | [] -> None
                | last :: rest_rev ->
                  model := List.rev rest_rev;
                  Some last
              in
              Ws_deque.pop d = expect
              &&
              match expect with
              | None -> true
              | Some _ -> true)
            | _ -> (
              match (Ws_deque.steal d, !model) with
              | Ws_deque.Empty, [] -> true
              | Ws_deque.Stolen v, first :: rest ->
                model := rest;
                v = first
              | _ -> false))
          ops
        && List.length !model = Ws_deque.size d);
  ]

(* ----- Atomic_table ----- *)

let int_table ?(capacity = 64) ~workers () =
  Atomic_table.create ~capacity ~workers ~equal:Int.equal
    ~fingerprint:(fun i -> Fingerprint.of_int (i * 0x9e3779b9))
    ()

let test_atomic_table_basics () =
  let t = int_table ~workers:1 () in
  Alcotest.(check int) "initial capacity" 64 (Atomic_table.capacity t);
  Alcotest.(check int) "initial_bits" 6 (Atomic_table.initial_bits t);
  Alcotest.(check bool) "first insert" true (Atomic_table.add_if_absent t ~worker:0 42);
  Alcotest.(check bool) "duplicate" false (Atomic_table.add_if_absent t ~worker:0 42);
  Alcotest.(check bool) "mem present" true (Atomic_table.mem t ~worker:0 42);
  Alcotest.(check bool) "mem absent" false (Atomic_table.mem t ~worker:0 43);
  Alcotest.(check int) "bindings" 1 (Atomic_table.bindings t);
  Alcotest.(check int) "probes = calls" 4 (Atomic_table.probes t);
  Alcotest.(check int) "no collisions" 0 (Atomic_table.collision_fallbacks t);
  Alcotest.(check int) "lock-free path" 0 (Atomic_table.lock_contention t)

let test_atomic_table_growth () =
  (* 1000 distinct keys through a 64-slot table: several migrations,
     nothing lost *)
  let t = int_table ~workers:1 () in
  List.iter
    (fun i ->
      Alcotest.(check bool) "insert wins" true (Atomic_table.add_if_absent t ~worker:0 i))
    (Listx.range 0 1000);
  Alcotest.(check int) "bindings" 1000 (Atomic_table.bindings t);
  Alcotest.(check bool) "grew" true (Atomic_table.capacity t >= 2048);
  Alcotest.(check int) "initial_bits unchanged" 6 (Atomic_table.initial_bits t);
  Alcotest.(check bool) "low load factor" true (Atomic_table.occupancy t <= 0.5);
  Alcotest.(check bool) "every key present" true
    (List.for_all (fun i -> Atomic_table.mem t ~worker:0 i) (Listx.range 0 1000))

let test_atomic_table_collisions () =
  (* a constant fingerprint forces every state onto one slot: the
     table must distinguish them structurally via the fallback *)
  let t =
    Atomic_table.create ~capacity:64 ~workers:1 ~equal:Int.equal
      ~fingerprint:(fun _ -> Fingerprint.of_int 42)
      ()
  in
  List.iter
    (fun i ->
      Alcotest.(check bool) "all inserted" true (Atomic_table.add_if_absent t ~worker:0 i))
    (Listx.range 0 10);
  Alcotest.(check bool) "no duplicate wins" false
    (Atomic_table.add_if_absent t ~worker:0 5);
  Alcotest.(check int) "10 bindings despite equal fps" 10 (Atomic_table.bindings t);
  Alcotest.(check bool) "each member found" true
    (List.for_all (fun i -> Atomic_table.mem t ~worker:0 i) (Listx.range 0 10));
  Alcotest.(check bool) "collisions counted" true
    (Atomic_table.collision_fallbacks t > 0)

let test_atomic_table_insert_storm () =
  (* four domains insert overlapping ranges through a deliberately tiny
     initial table, forcing concurrent migrations: add_if_absent must
     return true exactly once per distinct value *)
  let t = int_table ~capacity:64 ~workers:4 () in
  let range d = Listx.range (d * 500) ((d * 500) + 1000) in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            List.fold_left
              (fun acc i -> if Atomic_table.add_if_absent t ~worker:d i then acc + 1 else acc)
              0 (range d)))
  in
  let inserted = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  let distinct = List.sort_uniq Int.compare (List.concat_map range (Listx.range 0 4)) in
  Alcotest.(check int) "insert wins are the distinct values" (List.length distinct)
    inserted;
  Alcotest.(check int) "bindings" (List.length distinct) (Atomic_table.bindings t);
  Alcotest.(check int) "probes = calls" (4 * 1000) (Atomic_table.probes t);
  Alcotest.(check bool) "every value present" true
    (List.for_all (fun i -> Atomic_table.mem t ~worker:0 i) distinct);
  Alcotest.(check int) "no collisions for distinct fps" 0
    (Atomic_table.collision_fallbacks t)

(* qcheck: the table against a Set model, random operation sequences *)
let atomic_table_qcheck_tests =
  let open QCheck2 in
  let module IS = Set.Make (Int) in
  [
    Test.make ~name:"atomic table matches Set model (sequential)" ~count:200
      Gen.(list (int_bound 200))
      (fun keys ->
        let t = int_table ~capacity:64 ~workers:1 () in
        let model = ref IS.empty in
        List.for_all
          (fun k ->
            let fresh = not (IS.mem k !model) in
            model := IS.add k !model;
            Atomic_table.add_if_absent t ~worker:0 k = fresh)
          keys
        && Atomic_table.bindings t = IS.cardinal !model
        && IS.for_all (fun k -> Atomic_table.mem t ~worker:0 k) !model);
    Test.make ~name:"concurrent insert storm loses nothing" ~count:20
      Gen.(int_bound 1000)
      (fun seed ->
        let t = int_table ~capacity:64 ~workers:3 () in
        let range d = Listx.range (seed + (d * 100)) (seed + (d * 100) + 300) in
        let domains =
          List.init 3 (fun d ->
              Domain.spawn (fun () ->
                  List.fold_left
                    (fun acc i ->
                      if Atomic_table.add_if_absent t ~worker:d i then acc + 1 else acc)
                    0 (range d)))
        in
        let wins = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
        let distinct =
          List.sort_uniq Int.compare (List.concat_map range (Listx.range 0 3))
        in
        wins = List.length distinct
        && Atomic_table.bindings t = List.length distinct
        && List.for_all (fun i -> Atomic_table.mem t ~worker:0 i) distinct);
  ]

(* ----- Listx ----- *)

let test_range () =
  check (Alcotest.list Alcotest.int) "range 2 5" [ 2; 3; 4 ] (Listx.range 2 5);
  check (Alcotest.list Alcotest.int) "empty range" [] (Listx.range 5 5)

let test_all_bool_vectors () =
  let vs = Listx.all_bool_vectors 3 in
  Alcotest.(check int) "8 vectors" 8 (List.length vs);
  Alcotest.(check int) "all length 3" 3
    (List.fold_left (fun acc v -> min acc (List.length v)) 3 vs);
  Alcotest.(check bool) "distinct" true (List.length (List.sort_uniq compare vs) = 8)

let test_all_subsets () =
  Alcotest.(check int) "2^4 subsets" 16 (List.length (Listx.all_subsets [ 1; 2; 3; 4 ]))

let test_group_by () =
  let groups =
    Listx.group_by ~cmp:Int.compare ~key:(fun s -> String.length s)
      [ "aa"; "b"; "cc"; "d"; "eee" ]
  in
  check
    Alcotest.(list (pair int (list string)))
    "grouped" [ (1, [ "b"; "d" ]); (2, [ "aa"; "cc" ]); (3, [ "eee" ]) ]
    groups

let test_permutations () =
  Alcotest.(check int) "3! perms" 6 (List.length (Listx.permutations [ 1; 2; 3 ]));
  Alcotest.(check bool) "all distinct" true
    (List.length (List.sort_uniq compare (Listx.permutations [ 1; 2; 3 ])) = 6)

(* ----- Stats ----- *)

let test_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.max;
  Alcotest.(check int) "count" 4 s.Stats.count

let test_linear_fit () =
  let slope, intercept = Stats.linear_fit [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) ] in
  Alcotest.(check (float 1e-9)) "slope" 2.0 slope;
  Alcotest.(check (float 1e-9)) "intercept" 1.0 intercept

let test_power_fit () =
  let pts = List.map (fun n -> (float_of_int n, 3.0 *. (float_of_int n ** 2.0))) [ 2; 3; 5; 8; 13 ] in
  let k, c = Stats.power_fit pts in
  Alcotest.(check (float 1e-6)) "exponent" 2.0 k;
  Alcotest.(check (float 1e-6)) "constant" 3.0 c

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.percentile xs ~p:50.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs ~p:100.0)

let test_r_squared () =
  let pts = [ (1.0, 2.0); (2.0, 4.0); (3.0, 6.0) ] in
  Alcotest.(check (float 1e-9)) "perfect fit" 1.0 (Stats.r_squared pts ~f:(fun x -> 2.0 *. x))

(* ----- Json ----- *)

let json_ok s =
  match Json.of_string s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S: %s" s e

let json_err name s =
  match Json.of_string s with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: %S must be rejected" name s

let test_json_unicode_escapes () =
  (* ASCII and BMP escapes decode to their UTF-8 byte sequences *)
  check Alcotest.string "ascii" "A"
    (match json_ok {|"A"|} with Json.String s -> s | _ -> Alcotest.fail "not a string");
  check Alcotest.string "latin-1" "\xc3\xa9" (* é *)
    (match json_ok {|"\u00e9"|} with Json.String s -> s | _ -> Alcotest.fail "not a string");
  check Alcotest.string "3-byte BMP" "\xe2\x82\xac" (* € *)
    (match json_ok {|"\u20ac"|} with Json.String s -> s | _ -> Alcotest.fail "not a string");
  check Alcotest.string "uppercase hex" "\xe2\x82\xac"
    (match json_ok {|"\u20AC"|} with Json.String s -> s | _ -> Alcotest.fail "not a string");
  (* a surrogate pair combines into one astral code point *)
  check Alcotest.string "astral pair" "\xf0\x9f\x98\x80" (* U+1F600 *)
    (match json_ok {|"\ud83d\ude00"|} with
    | Json.String s -> s
    | _ -> Alcotest.fail "not a string")

let test_json_lone_surrogates_rejected () =
  json_err "lone high surrogate" {|"\ud800"|};
  json_err "lone high at end of escapes" {|"\ud83d x"|};
  json_err "lone low surrogate" {|"\udc00"|};
  json_err "high followed by non-surrogate escape" {|"\ud83dA"|};
  json_err "truncated hex" {|"\u12g4"|};
  json_err "short hex" {|"\u12"|}

let test_json_unicode_roundtrip () =
  (* the emitter passes UTF-8 bytes through unescaped, so decoded
     escapes survive to_string/of_string *)
  List.iter
    (fun s ->
      let doc = Json.Obj [ ("k", Json.String s) ] in
      match Json.of_string (Json.to_string doc) with
      | Ok doc' -> check Alcotest.bool s true (Json.equal doc doc')
      | Error e -> Alcotest.failf "round-trip %S: %s" s e)
    [ "plain"; "\xc3\xa9"; "\xe2\x82\xac"; "\xf0\x9f\x98\x80"; "mixed \xc3\xa9 end" ];
  (* escaped input and raw UTF-8 input denote the same document *)
  check Alcotest.bool "escape = raw bytes" true
    (Json.equal (json_ok {|"\u20ac"|}) (json_ok "\"\xe2\x82\xac\""))

(* ----- Dot / Table ----- *)

let test_dot_render () =
  let g =
    Dot.digraph ~rankdir:"LR" ~name:"g"
      [ Dot.node "a"; Dot.node ~shape:"box" ~label:"B node" "b" ]
      [ Dot.edge ~style:"dashed" "a" "b" ]
  in
  let s = Dot.to_string g in
  List.iter
    (fun fragment ->
      if not (contains s fragment) then
        Alcotest.fail (Printf.sprintf "missing %S in:\n%s" fragment s))
    [ "digraph \"g\""; "rankdir=LR"; "\"b\" [label=\"B node\", shape=box]"; "\"a\" -> \"b\" [style=dashed]" ]

let test_table_render () =
  let t = Table.create ~headers:[ ("name", Table.Left); ("count", Table.Right) ] in
  Table.add_row t [ "alpha"; "10" ];
  Table.add_row t [ "b"; "7" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "header present" true (contains rendered "name");
  Alcotest.(check bool) "right aligned" true (contains rendered "   10")

let test_table_width_mismatch () =
  let t = Table.create ~headers:[ ("a", Table.Left) ] in
  Alcotest.check_raises "row width" (Invalid_argument "Table.add_row: expected 1 cells, got 2")
    (fun () -> Table.add_row t [ "x"; "y" ])

let () =
  Alcotest.run "stdx"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "errors" `Quick test_prng_errors;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "sorts" `Quick test_pqueue_sorts;
          Alcotest.test_case "empty" `Quick test_pqueue_empty;
          Alcotest.test_case "size and mem" `Quick test_pqueue_size_and_mem;
        ] );
      ( "domain_pool",
        [
          Alcotest.test_case "empty and singleton" `Quick test_pool_empty_and_singleton;
          Alcotest.test_case "jobs=1 inline" `Quick test_pool_jobs1_inline;
          Alcotest.test_case "exception then reuse" `Quick test_pool_exception_then_reuse;
          Alcotest.test_case "shutdown rejects" `Quick test_pool_shutdown_rejects;
        ] );
      ( "sharded_store",
        [
          Alcotest.test_case "basics" `Quick test_sharded_basics;
          Alcotest.test_case "shard_of range" `Quick test_sharded_shard_of_range;
          Alcotest.test_case "occupancy" `Quick test_sharded_occupancy;
          Alcotest.test_case "collisions confirmed" `Quick test_sharded_collisions_confirmed;
          Alcotest.test_case "concurrent inserts" `Quick test_sharded_concurrent_inserts;
        ] );
      ( "ws_deque",
        [
          Alcotest.test_case "owner order" `Quick test_deque_owner_order;
          Alcotest.test_case "steal storm" `Quick test_deque_steal_storm;
        ] );
      ( "atomic_table",
        [
          Alcotest.test_case "basics" `Quick test_atomic_table_basics;
          Alcotest.test_case "growth" `Quick test_atomic_table_growth;
          Alcotest.test_case "collisions confirmed" `Quick test_atomic_table_collisions;
          Alcotest.test_case "insert storm" `Quick test_atomic_table_insert_storm;
        ] );
      ("deque properties", List.map QCheck_alcotest.to_alcotest deque_qcheck_tests);
      ("table properties", List.map QCheck_alcotest.to_alcotest atomic_table_qcheck_tests);
      ( "listx",
        [
          Alcotest.test_case "range" `Quick test_range;
          Alcotest.test_case "bool vectors" `Quick test_all_bool_vectors;
          Alcotest.test_case "subsets" `Quick test_all_subsets;
          Alcotest.test_case "group_by" `Quick test_group_by;
          Alcotest.test_case "permutations" `Quick test_permutations;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "linear fit" `Quick test_linear_fit;
          Alcotest.test_case "power fit" `Quick test_power_fit;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "r squared" `Quick test_r_squared;
        ] );
      ( "json",
        [
          Alcotest.test_case "unicode escapes decode to UTF-8" `Quick
            test_json_unicode_escapes;
          Alcotest.test_case "lone surrogates rejected" `Quick
            test_json_lone_surrogates_rejected;
          Alcotest.test_case "unicode round-trip" `Quick test_json_unicode_roundtrip;
        ] );
      ( "render",
        [
          Alcotest.test_case "dot" `Quick test_dot_render;
          Alcotest.test_case "table" `Quick test_table_render;
          Alcotest.test_case "table mismatch" `Quick test_table_width_mismatch;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
      ("pool properties", List.map QCheck_alcotest.to_alcotest pool_qcheck_tests);
    ]
