(* Reproduction harness: one section per artifact of the paper
   (Figures 1-4, Theorem 2 / Corollary 6, Theorem 7, the closing
   lattice diagram), followed by Bechamel timings of the underlying
   machinery.  EXPERIMENTS.md records this output against the paper's
   claims.

     dune exec bench/main.exe *)

open Patterns_sim
open Patterns_pattern
open Patterns_core
open Patterns_stdx

(* Worker domains for the parallel sweeps (scheme enumeration,
   classification); --jobs on the command line, 0 = all cores. *)
let jobs = ref 1

(* Frontier size at which a search layer goes parallel; None means the
   kernel's automatic default. *)
let par_threshold = ref None

(* Parallel driver for the sweeps; None means each sweep's library
   default (async for scheme/classify). *)
let par_mode : Patterns_search.Search.par_mode option ref = ref None

(* --quick trims the Bechamel quota and sweep sizes for CI smoke. *)
let quick = ref false

let wall f =
  let t0 = Monotonic_clock.now () in
  let r = f () in
  let t1 = Monotonic_clock.now () in
  (r, Int64.to_float (Int64.sub t1 t0) /. 1e9)

let section title =
  Format.printf "@.============================================================@.";
  Format.printf "== %s@." title;
  Format.printf "============================================================@."

let scheme_of (module P : Protocol.S) ~n =
  let module S = Scheme.Make (P) in
  S.scheme ~jobs:!jobs ~n ()

let pattern_profile pats =
  Pattern.Set.elements pats
  |> List.map (fun p -> Pattern.message_count p)
  |> List.sort Int.compare

(* ----- Figure 1 ----- *)

let fig1_section () =
  section "Figure 1: the WT-TC tree protocol (7 processors)";
  let (module P) = Patterns_protocols.Tree_proto.fig1 in
  let module E = Engine.Make (P) in
  let run inputs = E.run ~scheduler:E.fifo_scheduler ~n:7 ~inputs () in
  let commit = run (List.init 7 (fun _ -> true)) in
  let abort = run [ true; true; true; false; true; true; true ] in
  Format.printf "all-ones run:   %d messages, everyone commits: %b@."
    (Trace.message_count commit.E.trace)
    (List.for_all (fun (_, d) -> Decision.equal d Decision.Commit) (Trace.decisions commit.E.trace));
  Format.printf "one-zero run:   %d messages (0-leaf skipped in the down phase), everyone aborts: %b@."
    (Trace.message_count abort.E.trace)
    (List.for_all (fun (_, d) -> Decision.equal d Decision.Abort) (Trace.decisions abort.E.trace));
  let pats, stats = scheme_of (module P) ~n:7 in
  Format.printf "scheme: %d patterns over 128 input vectors [%a]@." (Pattern.Set.cardinal pats)
    Scheme.pp_stats stats;
  Format.printf "  (expected 17: the commit pattern + one abort pattern per subset of 0-leaves)@.";
  let audit =
    Audit.random_audit ~max_failures:2 ~rule:Patterns_protocols.Decision_rule.Unanimity ~n:7
      ~runs:200 ~seed:1984 (module P : Protocol.S)
  in
  Format.printf "failure audit (200 random runs, <=2 crashes): %a@." Audit.pp audit;
  Format.printf "@.%a@." Theorems.pp_evidence (Theorems.theorem8_forward ())

(* ----- Figure 2 ----- *)

let fig2_section () =
  section "Figure 2: the HT-IC centralized protocol";
  let v =
    Classify.classify ~jobs:!jobs ~max_failures:1 ~rule:Patterns_protocols.Decision_rule.Unanimity ~n:3
      Patterns_protocols.Central_proto.fig2
  in
  Format.printf "exhaustive classification (n=3, one crash anywhere):@.%a@." Classify.pp v;
  Format.printf "@.%a@." Theorems.pp_evidence (Theorems.theorem8_converse ())

(* ----- Figure 3 ----- *)

let fig3_section () =
  section "Figure 3: the WT-IC chain protocol";
  let pats, _ = scheme_of Patterns_protocols.Chain_proto.fig3 ~n:4 in
  Format.printf "scheme: %d pattern(s) — the paper: \"the only failure-free pattern\"@."
    (Pattern.Set.cardinal pats);
  (match Pattern.Set.elements pats with
  | [ p ] ->
    Format.printf "  %d messages, height %d (votes star into p0, then the decision chain)@."
      (Pattern.message_count p) (Pattern.height p)
  | _ -> ());
  let v =
    Classify.classify ~jobs:!jobs ~max_failures:1 ~rule:Patterns_protocols.Decision_rule.Unanimity ~n:3
      Patterns_protocols.Chain_proto.fig3
  in
  Format.printf "exhaustive classification (n=3, one crash anywhere):@.%a@." Classify.pp v;
  Format.printf "@.%a@." Theorems.pp_evidence (Theorems.theorem13_ic ())

(* ----- Figure 4 ----- *)

let fig4_section () =
  section "Figure 4: the four-pattern WT-TC protocol";
  let pats, stats = scheme_of Patterns_protocols.Perverse_proto.fig4 ~n:4 in
  Format.printf "scheme: %d patterns, message counts %s [%a]@." (Pattern.Set.cardinal pats)
    (String.concat ", " (List.map string_of_int (pattern_profile pats)))
    Scheme.pp_stats stats;
  Format.printf "  (expected: 17 base / 18 with m1 / 18 with m2 / 20 with m1,m2,m3)@.";
  let st_pats, _ = scheme_of Patterns_protocols.Perverse_proto.fig4_amnesic ~n:4 in
  Format.printf "amnesic ST attempt: %d patterns, counts %s — equal schemes: %b@."
    (Pattern.Set.cardinal st_pats)
    (String.concat ", " (List.map string_of_int (pattern_profile st_pats)))
    (Scheme.equal_schemes pats st_pats);
  Format.printf "@.%a@." Theorems.pp_evidence (Theorems.theorem13_tc ())

(* ----- Theorem 2 / Corollary 6: the classification table ----- *)

let classification_section () =
  section "Theorem 2 and Corollary 6: exhaustive classification at n=3 (one crash anywhere)";
  let rows =
    [
      ("fig2-central", Patterns_protocols.Central_proto.fig2, Patterns_protocols.Decision_rule.Unanimity);
      ("fig3-chain", Patterns_protocols.Chain_proto.fig3, Patterns_protocols.Decision_rule.Unanimity);
      ("fig3-chain-st", Patterns_protocols.Chain_proto.fig3_amnesic, Patterns_protocols.Decision_rule.Unanimity);
      ("2pc", Patterns_protocols.Two_phase_commit.default, Patterns_protocols.Decision_rule.Unanimity);
      ("coop-2pc [S81]", Patterns_protocols.Coop_2pc.default, Patterns_protocols.Decision_rule.Unanimity);
      ("d2pc", Patterns_protocols.Decentralized_commit.default, Patterns_protocols.Decision_rule.Unanimity);
      ("reliable-bcast", Patterns_protocols.Reliable_broadcast.default, Patterns_protocols.Decision_rule.Broadcast 0);
      ("tree-2pc [ML]", Patterns_protocols.Tree_commit.star 3, Patterns_protocols.Decision_rule.Unanimity);
      ("3pc (tree)", Patterns_protocols.Tree_proto.three_phase_commit 3, Patterns_protocols.Decision_rule.Unanimity);
      ("voting thr-2", Patterns_protocols.Voting_tree.threshold_star ~k:2 3, Patterns_protocols.Decision_rule.Threshold 2);
      ("voting set{0,2}", Patterns_protocols.Voting_tree.subset_star ~quorum:[ 0; 2 ] 3, Patterns_protocols.Decision_rule.Subset [ 0; 2 ]);
      ("termination", Patterns_protocols.Termination_proto.default, Patterns_protocols.Decision_rule.Threshold 1);
    ]
  in
  let table =
    Table.create
      ~headers:
        [
          ("protocol", Table.Left); ("IC", Table.Left); ("TC", Table.Left); ("WT", Table.Left);
          ("ST", Table.Left); ("HT", Table.Left); ("safe states", Table.Left);
          ("cor. 6", Table.Left); ("solves", Table.Left); ("configs", Table.Right);
        ]
  in
  let yn b = if b then "yes" else "-" in
  List.iter
    (fun (name, p, rule) ->
      let v = Classify.classify ~jobs:!jobs ~max_failures:1 ~rule ~n:3 p in
      Table.add_row table
        [
          name; yn v.Classify.ic; yn v.Classify.tc; yn v.Classify.wt; yn v.Classify.st;
          yn v.Classify.ht; yn v.Classify.all_states_safe; yn v.Classify.corollary6;
          (match Classify.best_problem v with None -> "none" | Some pb -> Taxonomy.short_name pb);
          string_of_int v.Classify.configs;
        ])
    rows;
  Table.print table;
  print_endline
    "\nPaper's predictions: exactly the TC protocols have all states safe (Theorem 2)\n\
     and satisfy Corollary 6 -- under every decision rule of Section 2; Figure 2 is\n\
     HT-IC; the chain and the [ML] tree commit are WT-IC; the tree family is WT-TC;\n\
     the Appendix protocol run standalone is HT-TC.  Cooperative 2PC sits outside\n\
     the six problems entirely: IC and TC hold but WT fails -- it blocks rather\n\
     than guess, and its blocked states are exactly its unsafe states.";
  (* the literal C(s) of Section 3, materialized *)
  let (module P3) = Patterns_protocols.Tree_proto.three_phase_commit 3 in
  let module C = Concurrency.Make (P3) in
  Format.printf "@.concurrency sets of 3pc (n=3, one crash): %a@." C.pp_summary (C.build ~n:3 ())

(* ----- Theorem 7 ----- *)

let theorem7_section () =
  section "Theorem 7: WT-TC within O(N^2) steps per processor";
  let evidence, measurements = Theorems.theorem7 () in
  let table =
    Table.create
      ~headers:
        [ ("N", Table.Right); ("steps/processor", Table.Right); ("2N(N-1)", Table.Right) ]
  in
  List.iter
    (fun (n, s) ->
      Table.add_row table
        [ string_of_int n; string_of_int (int_of_float s); string_of_int (2 * n * (n - 1)) ])
    measurements;
  Table.print table;
  Format.printf "@.%a@." Theorems.pp_evidence evidence;
  Format.printf "@.%a@." Theorems.pp_evidence (Theorems.appendix_anomaly ~max_configs:2_000_000 ())

(* ----- the lattice ----- *)

let lattice_section evidences =
  section "The closing diagram: the six-problem lattice";
  Format.printf "%a@." Lattice.pp_verified (Lattice.verify evidences)

(* ----- total-communication transform ----- *)

let totalcomm_section () =
  section "Section 3: the total-communication transformation";
  let base = Patterns_protocols.Perverse_proto.fig4 in
  let (module B) = base in
  let module SB = Scheme.Make (B) in
  let base_pats, _ = SB.patterns_for_inputs ~n:4 ~inputs:[ true; true; true; true ] () in
  let (module T) = Patterns_protocols.Total_comm.transform base in
  let module ST = Scheme.Make (T) in
  let tc_pats, stats = ST.patterns_for_inputs ~n:4 ~inputs:[ true; true; true; true ] () in
  Format.printf
    "fig4 all-ones scheme: %d patterns; after the transform: %d patterns [%a]@."
    (Pattern.Set.cardinal base_pats) (Pattern.Set.cardinal tc_pats) Scheme.pp_stats stats;
  Format.printf "transformed scheme within the original (as the paper claims): %b@."
    (Scheme.subscheme tc_pats base_pats)

(* ----- message-complexity sweep ----- *)

let complexity_section () =
  section "Message complexity of the commitment family (failure-free, all-ones)";
  let table =
    Table.create
      ~headers:
        [ ("n", Table.Right); ("2pc", Table.Right); ("d2pc", Table.Right); ("3pc", Table.Right);
          ("chain", Table.Right); ("central", Table.Right); ("termination", Table.Right) ]
  in
  List.iter
    (fun n ->
      let count p =
        let (module P : Protocol.S) = p in
        let module E = Engine.Make (P) in
        let r = E.run ~scheduler:E.fifo_scheduler ~n ~inputs:(List.init n (fun _ -> true)) () in
        string_of_int (Trace.message_count r.E.trace)
      in
      Table.add_row table
        [
          string_of_int n;
          count Patterns_protocols.Two_phase_commit.default;
          count Patterns_protocols.Decentralized_commit.default;
          count (Patterns_protocols.Tree_proto.three_phase_commit n);
          count Patterns_protocols.Chain_proto.fig3;
          count Patterns_protocols.Central_proto.fig2;
          count Patterns_protocols.Termination_proto.default;
        ])
    [ 3; 5; 8; 12; 16 ];
  Table.print table;
  print_endline
    "\n2(n-1) for 2PC and the chain; n(n-1) for decentralized votes and per round of\n\
     the termination protocol; 4(n-1) for 3PC; ~3(n-1)+(n-1)(n-2) for Figure 2's\n\
     rebroadcasts — the price of each rung of the lattice, in messages."

(* ----- the execution database: replay from the index ----- *)

let execution_db_section () =
  section "Execution database: replay from the index vs. replay by search";
  let module Hunt = Patterns_adversary.Hunt in
  let module Replay = Patterns_adversary.Replay in
  let module Metrics = Patterns_search.Metrics in
  let module Db = Patterns_db.Db in
  let entry =
    match Patterns_protocols.Registry.find "fig3-chain-st" with
    | Some e -> e
    | None -> failwith "registry lost fig3-chain-st"
  in
  Format.printf
    "One recording replay fills the edge log; after that the replay walk is one@.\
     point query of the SEO index per directive plus a fact-store verdict lookup@.\
     — zero engine plays (states_expanded = 0, pinned in test/cram/query.t).@.\
     Live replay cost grows with the configuration size; the indexed walk only@.\
     with the script length, so the index wins once the instance is non-toy.@.@.";
  let reps = if !quick then 20 else 200 in
  let table =
    Table.create
      ~headers:
        [ ("instance", Table.Left); ("directives", Table.Right);
          ("replays", Table.Right); ("live us/replay", Table.Right);
          ("db us/replay", Table.Right); ("db/live", Table.Right);
          ("engine plays (db)", Table.Right) ]
  in
  let ok = ref true in
  List.iter
    (fun n ->
      match
        Hunt.hunt ~max_failures:2 ~max_runs:5_000 ~mode:Hunt.Systematic
          ~property:Patterns_core.Audit.Agreement
          ~rule:Patterns_protocols.Decision_rule.Unanimity ~n ~seed:0 entry
      with
      | Error tried -> Format.kasprintf failwith "no violation in %d runs" tried
      | Ok cert ->
        let steps = List.length cert.Patterns_adversary.Cert.script in
        let db = Db.create () in
        let baseline = Replay.replay ~db cert in
        let (), live_s =
          wall (fun () -> for _ = 1 to reps do ignore (Replay.replay cert) done)
        in
        let (), db_s =
          wall (fun () -> for _ = 1 to reps do ignore (Replay.replay ~db cert) done)
        in
        let v, m = Replay.replay_metrics ~db cert in
        ok := !ok && v = baseline && m.Metrics.states_expanded = 0;
        let us secs = Format.asprintf "%.1f" (secs /. float_of_int reps *. 1e6) in
        Table.add_row table
          [ Format.asprintf "fig3-chain-st n=%d" n; string_of_int steps;
            string_of_int reps; us live_s; us db_s;
            Format.asprintf "%.2fx" (db_s /. live_s);
            string_of_int m.Metrics.states_expanded ])
    [ 4; 6 ];
  Table.print table;
  Format.printf "@.db verdicts identical to live, zero engine plays: %b@." !ok

(* ----- latency: the lattice in wall-clock terms ----- *)

let latency_section () =
  section "Simulated latency: critical path vs. problem strength";
  Format.printf
    "Unit step cost, per-message delays ~ U(5,15), seed 42; fair FIFO schedule.@.@.";
  let table =
    Table.create
      ~headers:
        [
          ("protocol", Table.Left); ("solves", Table.Left); ("height", Table.Right);
          ("completion", Table.Right); ("last decision", Table.Right);
        ]
  in
  let n = 5 in
  let row name solves p =
    let (module P : Protocol.S) = p in
    let module E = Engine.Make (P) in
    let r = E.run ~scheduler:E.fifo_scheduler ~n ~inputs:(List.init n (fun _ -> true)) () in
    let model = Latency.Uniform { lo = 5.0; hi = 15.0 } in
    let t = Latency.evaluate ~seed:42 ~model ~n r.E.trace in
    let last_decision =
      List.fold_left (fun acc (_, w) -> Float.max acc w) 0.0
        (Latency.decision_times ~seed:42 ~model ~n r.E.trace)
    in
    Table.add_row table
      [
        name; solves;
        string_of_int (Latency.critical_path_bound r.E.trace);
        Printf.sprintf "%.1f" t.Latency.completion;
        Printf.sprintf "%.1f" last_decision;
      ]
  in
  row "d2pc" "WT-IC" Patterns_protocols.Decentralized_commit.default;
  row "2pc" "WT-IC" Patterns_protocols.Two_phase_commit.default;
  row "chain" "WT-IC" Patterns_protocols.Chain_proto.fig3;
  row "tree-2pc (star)" "WT-IC" (Patterns_protocols.Tree_commit.star n);
  row "central (fig2)" "HT-IC" Patterns_protocols.Central_proto.fig2;
  row "3pc" "WT-TC" (Patterns_protocols.Tree_proto.three_phase_commit n);
  row "termination" "HT-TC" Patterns_protocols.Termination_proto.default;
  Table.print table;
  print_endline
    "\nLatency is governed by the pattern's height (the longest causal chain):\n\
     total consistency costs two extra sequential hops (bias + ack) over 2PC,\n\
     and the flooding termination protocol pays N rounds.  The lattice, in time."

(* ----- Bechamel timings ----- *)

let bechamel_estimates () =
  let open Bechamel in
  let run_protocol p n =
    Staged.stage (fun () ->
        let (module P : Protocol.S) = p in
        let module E = Engine.Make (P) in
        ignore (E.run ~scheduler:E.fifo_scheduler ~n ~inputs:(List.init n (fun _ -> true)) ()))
  in
  let pattern_extraction =
    let (module P) = Patterns_protocols.Tree_proto.fig1 in
    let module E = Engine.Make (P) in
    let r = E.run ~scheduler:E.fifo_scheduler ~n:7 ~inputs:(List.init 7 (fun _ -> true)) () in
    Staged.stage (fun () -> ignore (Pattern.of_trace r.E.trace))
  in
  let closure =
    let prng = Prng.create ~seed:99 in
    let r = Patterns_order.Relation.create 64 in
    for _ = 1 to 300 do
      let i = Prng.int prng ~bound:63 in
      let j = i + 1 + Prng.int prng ~bound:(63 - i) in
      Patterns_order.Relation.add r i j
    done;
    Staged.stage (fun () -> ignore (Patterns_order.Relation.transitive_closure r))
  in
  let scheme_fig4 =
    Staged.stage (fun () ->
        let (module P) = Patterns_protocols.Perverse_proto.fig4 in
        let module S = Scheme.Make (P) in
        ignore (S.patterns_for_inputs ~n:4 ~inputs:[ true; true; true; true ] ()))
  in
  let tests =
    [
      Test.make ~name:"engine: 2pc n=8 run" (run_protocol Patterns_protocols.Two_phase_commit.default 8);
      Test.make ~name:"engine: 3pc n=8 run" (run_protocol (Patterns_protocols.Tree_proto.three_phase_commit 8) 8);
      Test.make ~name:"engine: fig1 n=7 run" (run_protocol Patterns_protocols.Tree_proto.fig1 7);
      Test.make ~name:"engine: termination n=8 run" (run_protocol Patterns_protocols.Termination_proto.default 8);
      Test.make ~name:"pattern: extract fig1 trace" pattern_extraction;
      Test.make ~name:"order: closure 64x300" closure;
      Test.make ~name:"scheme: fig4 single vector" scheme_fig4;
      Test.make ~name:"engine: voting-tree thr3 n=8 run"
        (run_protocol (Patterns_protocols.Voting_tree.threshold_star ~k:3 8) 8);
      Test.make ~name:"latency: evaluate fig1 trace"
        (let (module P) = Patterns_protocols.Tree_proto.fig1 in
         let module E = Engine.Make (P) in
         let r = E.run ~scheduler:E.fifo_scheduler ~n:7 ~inputs:(List.init 7 (fun _ -> true)) () in
         Staged.stage (fun () ->
             ignore
               (Latency.evaluate ~seed:1 ~model:(Latency.Uniform { lo = 1.0; hi = 9.0 }) ~n:7
                  r.E.trace)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let quota = if !quick then 0.05 else 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:true () in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let ols =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instance
          results
      in
      Hashtbl.fold
        (fun name result acc ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> (name, Some est) :: acc
          | _ -> (name, None) :: acc)
        ols [])
    tests

let bechamel_section () =
  section "Bechamel timings of the machinery";
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Format.printf "%-32s %12.1f ns/run@." name est
      | None -> Format.printf "%-32s (no estimate)@." name)
    (bechamel_estimates ())

(* ----- parallel sweep timings and BENCH_patterns.json ----- *)

(* Wall-clock the parallel sweeps at jobs=1 and jobs=J on the same
   inputs.  Each sweep returns a size witness (configs, patterns or
   runs) plus the kernel's metrics, so the JSON records that the work
   — counted by the search kernel, not just the wall clock — was
   identical across jobs values. *)
let sweep_timings () =
  (* speedup-vs-jobs curve: powers of two up to --jobs, plus --jobs
     itself — [1;2;4;8] at --jobs 8, [1] at the default.  Under
     --quick, jobs values beyond the runner's core count are skipped
     outright: those rows would be flagged advisory (time-slicing
     noise, never gated on) anyway, so the smoke run stops paying for
     them *)
  let js =
    let rec powers acc p = if p >= !jobs then acc else powers (p :: acc) (2 * p) in
    let all = List.sort_uniq Int.compare (!jobs :: powers [ 1 ] 2) in
    if !quick then
      match List.filter (fun j -> j <= Domain_pool.default_jobs ()) all with
      | [] -> [ 1 ]
      | kept -> kept
    else all
  in
  let scheme_sweep name p ~n j =
    let (module P : Protocol.S) = p in
    let module S = Scheme.Make (P) in
    let metrics = ref Patterns_search.Metrics.zero in
    let (pats, stats), secs =
      wall (fun () ->
          S.scheme ~metrics ~jobs:j ?par_threshold:!par_threshold ?par_mode:!par_mode ~n ())
    in
    ( name, j, secs,
      Printf.sprintf "patterns=%d configs=%d" (Pattern.Set.cardinal pats)
        stats.Scheme.configs_visited,
      !metrics )
  in
  let classify_sweep ?max_configs name p ~rule ~n j =
    let metrics = ref Patterns_search.Metrics.zero in
    let v, secs =
      wall (fun () ->
          Classify.classify ~metrics ?max_configs ~jobs:j ?par_threshold:!par_threshold
            ?par_mode:!par_mode ~max_failures:1 ~rule ~n p)
    in
    (name, j, secs, Printf.sprintf "configs=%d" v.Classify.configs, !metrics)
  in
  (* same classify sweep through the disk-backed store: the verdict
     and the deterministic counters must match the in-memory row, and
     the spill counters record the disk traffic the budget forced *)
  let classify_spill_sweep ?max_configs name p ~rule ~n ~mem_budget j =
    let dir = "BENCH_spill.tmp" in
    let metrics = ref Patterns_search.Metrics.zero in
    let v, secs =
      wall (fun () ->
          Classify.classify ~metrics ?max_configs ~jobs:j ?par_threshold:!par_threshold
            ?par_mode:!par_mode ~max_failures:1
            ~spill:{ Patterns_search.Search.dir; mem_budget } ~rule ~n p)
    in
    (try Sys.rmdir dir with Sys_error _ -> ());
    (name, j, secs, Printf.sprintf "configs=%d" v.Classify.configs, !metrics)
  in
  let hunt_sweep name p ~runs j =
    let metrics = ref Patterns_search.Metrics.zero in
    let r, secs =
      wall (fun () ->
          Audit.hunt ~metrics ~jobs:j ~max_failures:2 ~max_runs:runs
            ~property:Audit.Agreement ~rule:Patterns_protocols.Decision_rule.Unanimity ~n:3
            ~seed:7 p)
    in
    let witness = match r with Ok _ -> "violation" | Error k -> Printf.sprintf "runs=%d" k in
    (name, j, secs, witness, !metrics)
  in
  (* incremental rows: the same query cold and through the reuse
     machinery — classify against a base database (wholesale fact
     reuse at the same fault bound, semi-naive widening at bound + 1)
     and the systematic hunt with and without shared failure-free
     prefixes.  Always jobs=1, so the rows are never advisory: the
     honest lever on a small runner is work reduction (fewer states
     expanded for the same answer), not parallel speedup.  The base
     databases are seeded outside the timed region — the pair
     measures the Nth query, not the first. *)
  let incremental_rows () =
    let p = Patterns_protocols.Chain_proto.fig3 in
    let rule = Patterns_protocols.Decision_rule.Unanimity in
    let n = 3 in
    let classify_row name ?base ~max_failures () =
      let metrics = ref Patterns_search.Metrics.zero in
      let v, secs =
        wall (fun () ->
            Classify.classify ~metrics ?base ~jobs:1 ?par_threshold:!par_threshold
              ?par_mode:!par_mode ~max_failures ~rule ~n p)
      in
      (name, 1, secs, Printf.sprintf "configs=%d" v.Classify.configs, !metrics)
    in
    let seeded mf =
      let base = Patterns_db.Db.create () in
      let _ : Classify.verdict =
        Classify.classify ~base ~jobs:1 ?par_threshold:!par_threshold ?par_mode:!par_mode
          ~max_failures:mf ~rule ~n p
      in
      base
    in
    let hunt_row ?(space = Patterns_adversary.Plan.Crash_only) ?(property = Audit.IC)
        ?(max_failures = 2) name ~memo ~runs =
      let entry =
        match Patterns_protocols.Registry.find "fig3-chain" with
        | Some e -> e
        | None -> failwith "registry lost fig3-chain"
      in
      let metrics = ref Patterns_search.Metrics.zero in
      let r, secs =
        wall (fun () ->
            Patterns_adversary.Hunt.hunt ~metrics ~memo ~space ~max_failures ~max_runs:runs
              ~jobs:1 ~mode:Patterns_adversary.Hunt.Systematic ~property ~rule ~n
              ~seed:0 entry)
      in
      let witness =
        match r with Ok _ -> "violation" | Error k -> Printf.sprintf "runs=%d" k
      in
      (name, 1, secs, witness, !metrics)
    in
    (* fixed run budget: the memo counters are deterministic per run
       count, and --check --quick reruns these rows against a
       full-mode baseline, so the count must not depend on !quick *)
    let runs = 1_000 in
    [
      classify_row "incremental: classify fig3-chain n=3 mf=2 from-scratch"
        ~max_failures:2 ();
      classify_row "incremental: classify fig3-chain n=3 mf=2 reused" ~base:(seeded 2)
        ~max_failures:2 ();
      classify_row "incremental: classify fig3-chain n=3 mf 1->2 widened"
        ~base:(seeded 1) ~max_failures:2 ();
      hunt_row "incremental: hunt systematic fig3-chain n=3 IC replay" ~memo:false ~runs;
      hunt_row "incremental: hunt systematic fig3-chain n=3 IC memoized" ~memo:true ~runs;
      (* the widened adversary: the same systematic sweep through the
         omission and mobile fault spaces.  fig3-chain is WT-clean
         under crashes, so the crash row exhausts its budget while the
         omission rows stop at the first drop witness — the drops /
         omission-plan counters below are the deterministic record of
         the widening, gated by --check like the prefix counters *)
      hunt_row "omission: hunt systematic fig3-chain n=3 WT crash-only"
        ~space:Patterns_adversary.Plan.Crash_only ~property:Audit.WT ~max_failures:1
        ~memo:true ~runs;
      hunt_row "omission: hunt systematic fig3-chain n=3 WT omission"
        ~space:Patterns_adversary.Plan.Omission ~property:Audit.WT ~max_failures:1
        ~memo:true ~runs;
      hunt_row "omission: hunt systematic fig3-chain n=3 WT mobile"
        ~space:Patterns_adversary.Plan.Mobile ~property:Audit.WT ~max_failures:2
        ~memo:true ~runs;
    ]
  in
  List.concat_map
    (fun j ->
      let common =
        (if j = 1 then incremental_rows () else [])
        @ [
          scheme_sweep "scheme: fig4 n=4 (16 vectors)" Patterns_protocols.Perverse_proto.fig4 ~n:4 j;
          classify_sweep "classify: fig3-chain n=3, 1 crash"
            Patterns_protocols.Chain_proto.fig3 ~rule:Patterns_protocols.Decision_rule.Unanimity
            ~n:3 j;
          classify_spill_sweep "classify: fig3-chain n=3, 1 crash, spill budget=2k"
            Patterns_protocols.Chain_proto.fig3 ~rule:Patterns_protocols.Decision_rule.Unanimity
            ~n:3 ~mem_budget:2_000 j;
          hunt_sweep "hunt: 2pc agreement n=3"
            Patterns_protocols.Two_phase_commit.default
            ~runs:(if !quick then 300 else 3000)
            j;
        ]
      in
      if !quick then common
      else
        common
        @ [
            scheme_sweep "scheme: fig1 n=7 (128 vectors)" Patterns_protocols.Tree_proto.fig1
              ~n:7 j;
            classify_sweep "classify: 3pc n=3, 1 crash"
              (Patterns_protocols.Tree_proto.three_phase_commit 3)
              ~rule:Patterns_protocols.Decision_rule.Unanimity ~n:3 j;
            classify_sweep "classify: fig3-chain n=4, 1 crash (capped 100k)"
              ~max_configs:100_000 Patterns_protocols.Chain_proto.fig3
              ~rule:Patterns_protocols.Decision_rule.Unanimity ~n:4 j;
          ])
    js

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit_json ~path =
  let bech = bechamel_estimates () in
  let sweeps = sweep_timings () in
  let seconds_at_1 name =
    List.find_map (fun (n, j, s, _, _) -> if n = name && j = 1 then Some s else None) sweeps
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"schema\": \"patterns-bench/5\",\n");
  Buffer.add_string b (Printf.sprintf "  \"jobs\": %d,\n" !jobs);
  Buffer.add_string b
    (Printf.sprintf "  \"par_mode\": \"%s\",\n"
       (Patterns_search.Search.par_mode_string
          (Option.value !par_mode ~default:Patterns_search.Search.Async)));
  Buffer.add_string b
    (Printf.sprintf "  \"recommended_domains\": %d,\n" (Domain_pool.default_jobs ()));
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" !quick);
  Buffer.add_string b "  \"bechamel_ns_per_run\": {\n";
  List.iteri
    (fun i (name, est) ->
      Buffer.add_string b
        (Printf.sprintf "    \"%s\": %s%s\n" (json_escape name)
           (match est with Some e -> Printf.sprintf "%.1f" e | None -> "null")
           (if i = List.length bech - 1 then "" else ",")))
    bech;
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"sweeps\": [\n";
  List.iteri
    (fun i (name, j, secs, witness, metrics) ->
      let speedup =
        match seconds_at_1 name with
        | Some s1 when j <> 1 && secs > 0.0 -> Printf.sprintf "%.3f" (s1 /. secs)
        | _ -> "null"
      in
      (* honesty marker: a speedup measured with more worker domains
         than the runner has cores is time-slicing noise, not a
         parallel-scaling observation — record the runner's core
         count with the row and flag it advisory so --check never
         gates on it *)
      let recommended = Domain_pool.default_jobs () in
      let advisory = j > recommended in
      let kernel =
        (* the kernel's deterministic counters: identical across jobs
           values (hunt's expanded count may overshoot by one batch).
           The volatile /3 fields — lock_contention, expand_seconds,
           parallel_efficiency — are deliberately absent: a baseline
           must only pin what every rerun reproduces.  The /8
           incremental section rides along: prefix_hits and
           prefix_states_saved (shared failure-free prefixes in the
           systematic hunt), delta_seeds and delta_reused_edges
           (base-database reuse in classify) are deterministic on the
           full sweeps benched here; spill_fd_reopens is
           eviction-order-volatile and gated like the other spill
           counters.  The /9 fault section (drops_injected,
           omission_plans, mobile_faults) is deterministic on the
           jobs=1 systematic hunts benched here and zero everywhere
           else. *)
        let open Patterns_search.Metrics in
        Printf.sprintf
          "\"kernel\": { \"outcome\": \"%s\", \"states_expanded\": %d, \"dedup_hits\": %d, \
           \"frontier_peak\": %d, \"pruned\": %d, \"fingerprint_probes\": %d, \
           \"collision_fallbacks\": %d, \"intern_bindings\": %d, \"layers\": %d, \
           \"par_layers\": %d, \"shard_bits\": %d, \"shard_occupancy_max\": %d, \
           \"shard_occupancy_total\": %d, \"frontier_peak_sum\": %d, \"spill_runs\": %d, \
           \"spill_evictions\": %d, \"spill_probes\": %d, \"spill_read_bytes\": %d, \
           \"spill_write_bytes\": %d, \"spill_fd_reopens\": %d, \"prefix_hits\": %d, \
           \"prefix_states_saved\": %d, \"delta_seeds\": %d, \"delta_reused_edges\": %d, \
           \"drops_injected\": %d, \"omission_plans\": %d, \"mobile_faults\": %d }"
          (outcome_string metrics.outcome)
          metrics.states_expanded metrics.dedup_hits metrics.frontier_peak metrics.pruned
          metrics.fingerprint_probes metrics.collision_fallbacks metrics.intern_bindings
          metrics.layers metrics.par_layers metrics.shard_bits metrics.shard_occupancy_max
          metrics.shard_occupancy_total metrics.frontier_peak_sum metrics.spill_runs
          metrics.spill_evictions metrics.spill_probes metrics.spill_read_bytes
          metrics.spill_write_bytes metrics.spill_fd_reopens metrics.prefix_hits
          metrics.prefix_states_saved metrics.delta_seeds metrics.delta_reused_edges
          metrics.drops_injected metrics.omission_plans metrics.mobile_faults
      in
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": \"%s\", \"jobs\": %d, \"seconds\": %.6f, \"witness\": \"%s\", \
            \"speedup_vs_jobs1\": %s, \"recommended_domains\": %d, \"advisory\": %b, %s }%s\n"
           (json_escape name) j secs (json_escape witness) speedup recommended advisory
           kernel
           (if i = List.length sweeps - 1 then "" else ",")))
    sweeps;
  Buffer.add_string b "  ]\n";
  Buffer.add_string b "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.printf "wrote %s (%d bechamel estimates, %d sweep timings)@." path (List.length bech)
    (List.length sweeps)

(* ----- baseline drift check (--check) ----- *)

(* The emitted JSON keeps each sweep row on one line, so the baseline
   can be re-read with line-based field extraction — no JSON library
   in the container, and none needed. *)

let rec find_sub s needle i =
  let ls = String.length s and ln = String.length needle in
  if i + ln > ls then None
  else if String.sub s i ln = needle then Some i
  else find_sub s needle (i + 1)

let str_field line key =
  let needle = Printf.sprintf "\"%s\": \"" key in
  match find_sub line needle 0 with
  | None -> None
  | Some i -> (
    let start = i + String.length needle in
    match String.index_from_opt line start '"' with
    | None -> None
    | Some stop -> Some (String.sub line start (stop - start)))

let num_field line key =
  let needle = Printf.sprintf "\"%s\": " key in
  match find_sub line needle 0 with
  | None -> None
  | Some i ->
    let start = i + String.length needle in
    let stop = ref start in
    let ls = String.length line in
    while
      !stop < ls
      && (match line.[!stop] with '0' .. '9' | '.' | '-' | '+' | 'e' -> true | _ -> false)
    do
      incr stop
    done;
    if !stop = start then None else float_of_string_opt (String.sub line start (!stop - start))

type baseline_row = { b_name : string; b_jobs : int; b_seconds : float; b_line : string }

let read_baseline path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  let rows =
    List.filter_map
      (fun l ->
        match (str_field l "name", num_field l "jobs", num_field l "seconds") with
        | Some name, Some j, Some s ->
          Some { b_name = name; b_jobs = int_of_float j; b_seconds = s; b_line = l }
        | _ -> None)
      lines
  in
  (* the sweep configuration is part of the baseline: re-run with the
     flags it was generated under, whatever the command line says *)
  let top_jobs =
    List.find_map
      (fun l -> if str_field l "name" = None then num_field l "jobs" else None)
      lines
  in
  let top_quick = List.exists (fun l -> find_sub l "\"quick\": true" 0 <> None) lines in
  let top_par_mode =
    List.find_map
      (fun l -> if str_field l "name" = None then str_field l "par_mode" else None)
      lines
  in
  (rows, top_jobs, top_quick, top_par_mode)

let check_against ~baseline =
  let rows, top_jobs, top_quick, top_par_mode = read_baseline baseline in
  if rows = [] then begin
    Format.eprintf "bench --check: no sweep rows in %s@." baseline;
    exit 1
  end;
  (* --quick on the command line trims the rerun to the quick sweep
     subset even against a full baseline (the CI smoke job); otherwise
     the baseline's own configuration wins *)
  let cli_quick = !quick in
  (match top_jobs with Some j -> jobs := int_of_float j | None -> ());
  (match top_par_mode with
  | Some "layers" -> par_mode := Some Patterns_search.Search.Layers
  | Some "async" -> par_mode := Some Patterns_search.Search.Async
  | _ -> ());
  quick := cli_quick || top_quick;
  Format.printf "bench --check: %d baseline rows from %s (jobs=%d quick=%b)@."
    (List.length rows) baseline !jobs !quick;
  let sweeps = sweep_timings () in
  let failures = ref 0 in
  let drift fmt =
    Format.kasprintf
      (fun msg ->
        incr failures;
        Format.printf "  DRIFT %s@." msg)
      fmt
  in
  let compared = ref 0 in
  List.iter
    (fun row ->
      match
        List.find_opt (fun (n, j, _, _, _) -> n = row.b_name && j = row.b_jobs) sweeps
      with
      | None ->
        (* under a trimmed rerun, baseline rows outside the subset are
           expected to be absent *)
        if not (cli_quick && not top_quick) then
          drift "%s (jobs=%d): row missing from current run" row.b_name row.b_jobs
      | Some (_, _, _, _, m) ->
        incr compared;
        let open Patterns_search.Metrics in
        let expect key now =
          (* a key absent from the baseline row (older schema) is not
             checked — the baseline can only pin what it recorded *)
          match num_field row.b_line key with
          | Some want when int_of_float want <> now ->
            drift "%s (jobs=%d): %s = %d, baseline %d" row.b_name row.b_jobs key now
              (int_of_float want)
          | _ -> ()
        in
        (match str_field row.b_line "outcome" with
        | Some want when want <> outcome_string m.outcome ->
          drift "%s (jobs=%d): outcome = %s, baseline %s" row.b_name row.b_jobs
            (outcome_string m.outcome) want
        | _ -> ());
        (* a hunt that finds nothing evaluates a jobs-dependent number
           of speculative batches on machines with different default
           pools; every other row's expanded count is exact *)
        if find_sub row.b_name "hunt" 0 = None then expect "states_expanded" m.states_expanded;
        expect "dedup_hits" m.dedup_hits;
        expect "pruned" m.pruned;
        if find_sub row.b_name "hunt" 0 = None then
          expect "fingerprint_probes" m.fingerprint_probes;
        expect "collision_fallbacks" m.collision_fallbacks;
        (* the /8 incremental counters: exact on classify/scheme rows
           and on full-sweep hunts; a goal-found hunt's prefix tallies
           overshoot with the worker count like its expanded count, so
           hunt rows gate them on jobs=1 *)
        if find_sub row.b_name "hunt" 0 = None || row.b_jobs = 1 then begin
          expect "prefix_hits" m.prefix_hits;
          expect "prefix_states_saved" m.prefix_states_saved;
          (* the /9 fault counters get the same gate: a goal-found
             hunt's fault tallies overshoot with the worker count
             exactly like its expanded count *)
          expect "drops_injected" m.drops_injected;
          expect "omission_plans" m.omission_plans;
          expect "mobile_faults" m.mobile_faults
        end;
        expect "delta_seeds" m.delta_seeds;
        expect "delta_reused_edges" m.delta_reused_edges;
        (* intern_bindings is a hash-cons cache gauge, not a semantic
           counter: the intermediate edge/knowledge sets interned along
           the way depend on which dedup racer reaches each config
           first, so under the async driver with more than one worker
           the binding count is schedule-dependent.  Compare it only
           where it is deterministic (layers, or a single worker).
           The frontier gauges — the async queue's high-water mark —
           and the spill counters — eviction timing — are
           schedule-dependent under the same conditions and get the
           same gate. *)
        let async_mode =
          match !par_mode with
          | Some Patterns_search.Search.Layers -> false
          | Some Patterns_search.Search.Async | None -> true
        in
        if (not async_mode) || row.b_jobs = 1 then begin
          expect "intern_bindings" m.intern_bindings;
          expect "frontier_peak" m.frontier_peak;
          expect "frontier_peak_sum" m.frontier_peak_sum;
          expect "spill_runs" m.spill_runs;
          expect "spill_evictions" m.spill_evictions;
          expect "spill_probes" m.spill_probes;
          expect "spill_read_bytes" m.spill_read_bytes;
          expect "spill_write_bytes" m.spill_write_bytes;
          expect "spill_fd_reopens" m.spill_fd_reopens
        end;
        expect "layers" m.layers;
        expect "par_layers" m.par_layers;
        expect "shard_bits" m.shard_bits;
        expect "shard_occupancy_max" m.shard_occupancy_max;
        expect "shard_occupancy_total" m.shard_occupancy_total)
    rows;
  (* wall-clock comparison over the rows compared on both sides.
     Advisory rows — speedup measured with more domains than the
     runner (baseline's or ours) has cores — are excluded from the
     sums: their timings are time-slicing noise, not a regression
     signal. *)
  let row_advisory r =
    find_sub r.b_line "\"advisory\": true" 0 <> None
    || r.b_jobs > Domain_pool.default_jobs ()
  in
  let solid = List.filter (fun r -> not (row_advisory r)) rows in
  let excluded = List.length rows - List.length solid in
  if excluded > 0 then
    Format.printf "  (%d advisory row(s) excluded from the wall-clock comparison)@."
      excluded;
  let compared_names =
    List.filter
      (fun r ->
        List.exists (fun (n, j, _, _, _) -> n = r.b_name && j = r.b_jobs) sweeps)
      solid
  in
  let total l = List.fold_left ( +. ) 0.0 l in
  let base_secs = total (List.map (fun r -> r.b_seconds) compared_names) in
  let now_secs =
    total
      (List.filter_map
         (fun (n, j, s, _, _) ->
           if List.exists (fun r -> r.b_name = n && r.b_jobs = j) compared_names then
             Some s
           else None)
         sweeps)
  in
  let ratio = if base_secs > 0.0 then now_secs /. base_secs else 1.0 in
  Format.printf "wall-clock: %.3fs vs baseline %.3fs (%.2fx)@." now_secs base_secs ratio;
  (* counters are the contract — wall clock is machine- and
     load-dependent, so it warns without failing the check *)
  if ratio > 1.25 then
    Format.printf "  ADVISORY wall-clock beyond 25%% of baseline (not counted as drift)@.";
  if !failures = 0 then begin
    Format.printf "bench --check: OK (%d rows, counters identical)@." !compared;
    exit 0
  end
  else begin
    Format.printf "bench --check: %d drift(s)@." !failures;
    exit 1
  end

(* ----- entry point ----- *)

let usage () =
  prerr_endline
    "usage: main.exe [--jobs J] [--par-threshold K] [--par-mode MODE] [--json] [--quick] \
     [--out PATH] [--check] [--baseline PATH]\n\
    \  --jobs J     worker domains for the parallel sweeps (0 = all cores)\n\
    \  --par-threshold K  frontier size at which a search layer goes parallel\n\
    \               (default: automatic; results are identical for every value)\n\
    \  --par-mode M parallel driver for the sweeps: async (default) or layers;\n\
    \               exhaustive sweeps produce identical counters under both\n\
    \  --json       emit machine-readable timings to BENCH_patterns.json and exit\n\
    \  --quick      smaller quotas and sweeps (CI smoke); with --check, compares\n\
    \               only the quick sweep subset of the baseline\n\
    \  --out P      destination for --json (default BENCH_patterns.json)\n\
    \  --check      re-run the sweeps and compare the kernel's deterministic\n\
    \               counters against the committed baseline; exit 1 on counter\n\
    \               drift (wall-clock is advisory only)\n\
    \  --baseline P baseline for --check (default BENCH_patterns.json)";
  exit 2

let () =
  let json = ref false in
  let check = ref false in
  let out = ref "BENCH_patterns.json" in
  let baseline = ref "BENCH_patterns.json" in
  let rec parse = function
    | [] -> ()
    | ("-j" | "--jobs") :: v :: rest -> (
      match int_of_string_opt v with Some j -> jobs := j; parse rest | None -> usage ())
    | "--par-threshold" :: v :: rest -> (
      match int_of_string_opt v with
      | Some k -> par_threshold := Some k; parse rest
      | None -> usage ())
    | "--par-mode" :: v :: rest -> (
      match v with
      | "layers" -> par_mode := Some Patterns_search.Search.Layers; parse rest
      | "async" -> par_mode := Some Patterns_search.Search.Async; parse rest
      | _ -> usage ())
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--out" :: path :: rest ->
      out := path;
      parse rest
    | "--check" :: rest ->
      check := true;
      parse rest
    | "--baseline" :: path :: rest ->
      baseline := path;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !jobs <= 0 then jobs := Domain_pool.default_jobs ();
  if !check then check_against ~baseline:!baseline
  else if !json then emit_json ~path:!out
  else begin
    Format.printf "Patterns of Communication in Consensus Protocols (Dwork & Skeen, PODC 1984)@.";
    Format.printf "Reproduction harness — every figure, the classification table, Theorem 7,@.";
    Format.printf "and the closing lattice, regenerated from the implementation.@.";
    fig1_section ();
    fig2_section ();
    fig3_section ();
    fig4_section ();
    classification_section ();
    theorem7_section ();
    totalcomm_section ();
    latency_section ();
    complexity_section ();
    execution_db_section ();
    let evidences = Theorems.all () in
    lattice_section evidences;
    bechamel_section ();
    section "Summary";
    let all_hold = List.for_all (fun e -> e.Theorems.holds) evidences in
    Format.printf "all theorem witnesses reproduced: %b@." all_hold
  end
