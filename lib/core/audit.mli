(** Randomized auditing: many seeded runs with random schedules,
    inputs and failure injections, each checked against the taxonomy's
    properties.  Complements {!Explore} where exhaustive exploration
    is too large (e.g. the 7-processor tree protocol with failures). *)

open Patterns_sim
open Patterns_protocols

type report = {
  runs : int;
  failures_injected : int;
  tc_violations : int;
  ic_violations : int;
  agreement_violations : int;  (** nonfaulty deciders disagree *)
  wt_incomplete : int;  (** a nonfaulty processor never decided *)
  rule_violations : int;
  non_quiescent : int;
  messages_total : int;
  sample_violation : string option;
}

val random_audit :
  ?max_failures:int ->
  ?max_steps:int ->
  ?fifo_notices:bool ->
  rule:Decision_rule.t ->
  n:int ->
  runs:int ->
  seed:int ->
  (module Protocol.S) ->
  report
(** Each run draws an input vector, up to [max_failures] failure
    injections (random victim, random step), and a schedule flavour —
    uniform random, notice-first adversarial, or LIFO — then applies
    every trace-level checker.  [fifo_notices] selects the fail-stop
    delivery discipline (see {!Patterns_sim.Engine}); the paper's
    unordered default is [false]. *)

type property = TC | IC | Agreement | WT | Rule

val hunt :
  ?metrics:Patterns_search.Metrics.t ref ->
  ?max_failures:int ->
  ?max_runs:int ->
  ?fifo_notices:bool ->
  ?jobs:int ->
  ?deadline:float ->
  property:property ->
  rule:Decision_rule.t ->
  n:int ->
  seed:int ->
  (module Protocol.S) ->
  (string, int) result
(** Search seeded randomized executions for a violation of the given
    property, on the kernel's batched goal search
    ({!Patterns_search.Search.find_first}).  [Ok report] renders the
    first violating run — inputs, crash plan, the violation, and a
    space-time diagram of the trace; [Error k] means [k] runs were
    tried without finding one — a {e truncated} search (the metrics
    outcome says so): it does not prove absence.  [deadline]
    (wall-clock seconds) stops the hunt between batches when set; the
    metrics record the hit in [deadline_hits].  Each run draws from
    a generator seeded by [(seed, run index)], so the result is a
    deterministic function of [seed] for every [jobs] value
    (default 1): the first violating run index wins.  The metrics
    sink accumulates the kernel's counters; the expanded count may
    overshoot the winning index by up to one batch (speculative
    parallelism), and is the only jobs-dependent field. *)

val clean : report -> bool
(** No violations and every run quiesced with all nonfaulty decided. *)

val pp : Format.formatter -> report -> unit
