open Patterns_sim
open Patterns_stdx

type report = {
  runs : int;
  failures_injected : int;
  tc_violations : int;
  ic_violations : int;
  agreement_violations : int;
  wt_incomplete : int;
  rule_violations : int;
  non_quiescent : int;
  messages_total : int;
  sample_violation : string option;
}

let random_audit ?(max_failures = 2) ?(max_steps = 100_000) ?(fifo_notices = false) ~rule ~n
    ~runs ~seed (module P : Protocol.S) =
  let module E = Engine.Make (P) in
  let prng = Prng.create ~seed in
  let acc =
    ref
      {
        runs;
        failures_injected = 0;
        tc_violations = 0;
        ic_violations = 0;
        agreement_violations = 0;
        wt_incomplete = 0;
        rule_violations = 0;
        non_quiescent = 0;
        messages_total = 0;
        sample_violation = None;
      }
  in
  let note cell = function
    | Ok () -> ()
    | Error msg ->
      acc := cell !acc;
      if !acc.sample_violation = None then acc := { !acc with sample_violation = Some msg }
  in
  for _run = 1 to runs do
    let inputs = List.init n (fun _ -> Prng.bool prng) in
    let n_failures = Prng.int prng ~bound:(max_failures + 1) in
    let failures =
      List.init n_failures (fun _ -> (Prng.int prng ~bound:60, Prng.int prng ~bound:n))
    in
    let scheduler =
      (* mix schedule flavours: uniform random, notice-first
         adversarial, and deterministic LIFO *)
      match Prng.int prng ~bound:3 with
      | 0 -> E.random_scheduler (Prng.split prng)
      | 1 -> E.notice_first_scheduler (Prng.split prng)
      | _ -> E.lifo_scheduler
    in
    let r = E.run ~max_steps ~failures ~fifo_notices ~scheduler ~n ~inputs () in
    let failed_list = Trace.failures r.E.trace in
    acc :=
      {
        !acc with
        failures_injected = !acc.failures_injected + List.length failed_list;
        messages_total = !acc.messages_total + Trace.message_count r.E.trace;
      };
    if not r.E.quiescent then acc := { !acc with non_quiescent = !acc.non_quiescent + 1 };
    note (fun a -> { a with tc_violations = a.tc_violations + 1 }) (Check.total_consistency r.E.trace);
    note
      (fun a -> { a with ic_violations = a.ic_violations + 1 })
      (Check.interactive_consistency r.E.trace);
    note
      (fun a -> { a with agreement_violations = a.agreement_violations + 1 })
      (Check.nonfaulty_agreement r.E.trace);
    note
      (fun a -> { a with rule_violations = a.rule_violations + 1 })
      (Check.decision_rule rule ~inputs r.E.trace);
    let failed = Array.make n false in
    List.iter (fun p -> failed.(p) <- true) failed_list;
    note
      (fun a -> { a with wt_incomplete = a.wt_incomplete + 1 })
      (Check.weak_termination ~quiescent:r.E.quiescent ~statuses:(E.statuses r.E.final)
         ~ever_decided:(Check.ever_decided ~n r.E.trace) ~failed)
  done;
  !acc

let clean r =
  r.tc_violations = 0 && r.ic_violations = 0 && r.agreement_violations = 0
  && r.wt_incomplete = 0 && r.rule_violations = 0 && r.non_quiescent = 0

let pp ppf r =
  Format.fprintf ppf
    "@[<v>runs=%d failures=%d msgs=%d@,\
    \ tc=%d ic=%d agreement=%d wt-incomplete=%d rule=%d non-quiescent=%d%s@]"
    r.runs r.failures_injected r.messages_total r.tc_violations r.ic_violations
    r.agreement_violations r.wt_incomplete r.rule_violations r.non_quiescent
    (match r.sample_violation with None -> "" | Some s -> "\n first: " ^ s)

type property = TC | IC | Agreement | WT | Rule

let hunt ?metrics ?(max_failures = 2) ?(max_runs = 5_000) ?(fifo_notices = false) ?(jobs = 1)
    ?deadline ~property ~rule ~n ~seed (module P : Protocol.S) =
  let module E = Engine.Make (P) in
  (* Each run draws from its own generator, seeded from (seed, run
     index), so runs are independent of execution order and the hunt
     can be sharded per run: the winner is the smallest violating run
     index regardless of worker interleaving. *)
  let one run_index =
    let prng = Prng.create ~seed:(seed + (run_index * 1_000_003)) in
    let inputs = List.init n (fun _ -> Prng.bool prng) in
    let n_failures = Prng.int prng ~bound:(max_failures + 1) in
    let failures =
      List.init n_failures (fun _ -> (Prng.int prng ~bound:60, Prng.int prng ~bound:n))
    in
    let scheduler =
      match Prng.int prng ~bound:3 with
      | 0 -> E.random_scheduler (Prng.split prng)
      | 1 -> E.notice_first_scheduler (Prng.split prng)
      | _ -> E.lifo_scheduler
    in
    let r = E.run ~failures ~fifo_notices ~scheduler ~n ~inputs () in
    let verdict =
      match property with
      | TC -> Check.total_consistency r.E.trace
      | IC -> Check.interactive_consistency r.E.trace
      | Agreement -> Check.nonfaulty_agreement r.E.trace
      | Rule -> Check.decision_rule rule ~inputs r.E.trace
      | WT ->
        let failed = Array.make n false in
        List.iter (fun p -> failed.(p) <- true) (Trace.failures r.E.trace);
        Check.weak_termination ~quiescent:r.E.quiescent ~statuses:(E.statuses r.E.final)
          ~ever_decided:(Check.ever_decided ~n r.E.trace) ~failed
    in
    match verdict with
    | Ok () -> None
    | Error msg ->
      Some
        (Format.asprintf
           "@[<v>violation after %d run(s) (seed %d)@,inputs: %s@,crash plan: %s@,%s@,@,%s@]"
           run_index seed
           (String.concat "" (List.map (fun b -> if b then "1" else "0") inputs))
           (String.concat ", "
              (List.map (fun (k, p) -> Printf.sprintf "p%d@step%d" p k) failures))
           msg
           (Patterns_pattern.Render.lanes ~pp_msg:P.pp_msg ~n r.E.trace))
  in
  (* the kernel's batched goal search: a violation stops the search
     without running all [max_runs] trials, batches are scanned in run
     order, and exhausting the run budget (or the optional wall-clock
     deadline) is a Truncated outcome — a hunt that finds nothing has
     not proven absence *)
  Patterns_search.Search.find_first ?metrics ~jobs ?deadline ~max_index:max_runs ~f:one ()
