open Patterns_sim
open Patterns_protocols

type verdict = (unit, string) result

let proc_count trace =
  List.fold_left (fun acc e -> max acc (Trace.proc_of e + 1)) 0 trace

(* Every checker below is the search kernel's linear scan
   (Patterns_search.Search.Scan) over the trace or over the
   processors: positions are visited in order and the first [Error]
   is the goal, so "which violation a checker reports" is defined by
   the kernel's visitation order, not by a private recursion. *)

let scan_events ?metrics trace check =
  let events = Array.of_list trace in
  Patterns_search.Search.Scan.first_error ?metrics ~len:(Array.length events)
    ~check:(fun i -> check events.(i))
    ()

let total_consistency ?metrics trace =
  let first = ref None in
  scan_events ?metrics trace (function
    | Trace.Decided { proc; decision; step } -> (
      match !first with
      | None ->
        first := Some (proc, decision);
        Ok ()
      | Some (p0, d0) ->
        if Decision.equal d0 decision then Ok ()
        else
          Error
            (Format.asprintf
               "total consistency violated: %a decided %a but %a decided %a (step %d)" Proc_id.pp
               p0 Decision.pp d0 Proc_id.pp proc Decision.pp decision step))
    | _ -> Ok ())

let interactive_consistency ?metrics trace =
  let n = proc_count trace in
  let decisions = Array.make (max n 1) None in
  let failed = Array.make (max n 1) false in
  let check step =
    let conflict = ref (Ok ()) in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        match (decisions.(i), decisions.(j)) with
        | Some di, Some dj when (not failed.(i)) && (not failed.(j)) && not (Decision.equal di dj)
          ->
          conflict :=
            Error
              (Format.asprintf
                 "interactive consistency violated at step %d: operational %a in %a vs %a in %a"
                 step Proc_id.pp i Decision.pp di Proc_id.pp j Decision.pp dj)
        | _ -> ()
      done
    done;
    !conflict
  in
  scan_events ?metrics trace (fun e ->
      (match e with
      | Trace.Decided { proc; decision; _ } -> decisions.(proc) <- Some decision
      | Trace.Became_amnesic { proc; _ } -> decisions.(proc) <- None
      | Trace.Failed_proc { proc; _ } -> failed.(proc) <- true
      | Trace.Sent _ | Trace.Null_step _ | Trace.Delivered_msg _ | Trace.Delivered_note _
      | Trace.Dropped_msg _ | Trace.Halted _ -> ());
      check (Trace.step_of e))

let nonfaulty_agreement ?metrics trace =
  let failed = Trace.failures trace in
  let decisions =
    Array.of_list
      (List.filter (fun (p, _) -> not (List.mem p failed)) (Trace.decisions trace))
  in
  Patterns_search.Search.Scan.first_error ?metrics ~len:(Array.length decisions)
    ~check:(fun i ->
      if i = 0 then Ok ()
      else begin
        let p0, d0 = decisions.(0) in
        let p, d = decisions.(i) in
        if Decision.equal d d0 then Ok ()
        else
          Error
            (Format.asprintf "nonfaulty processors disagree: %a decided %a but %a decided %a"
               Proc_id.pp p0 Decision.pp d0 Proc_id.pp p Decision.pp d)
      end)
    ()

let decision_rule ?metrics rule ~inputs trace =
  let inputs = Array.of_list inputs in
  let failure_occurred = ref false in
  scan_events ?metrics trace (function
    | Trace.Failed_proc _ ->
      failure_occurred := true;
      Ok ()
    | Trace.Decided { proc; decision; step } ->
      if Decision_rule.permits rule ~inputs ~failure_occurred:!failure_occurred decision then
        Ok ()
      else
        Error
          (Format.asprintf "decision rule %a forbids %a's %a at step %d" Decision_rule.pp rule
             Proc_id.pp proc Decision.pp decision step)
    | _ -> Ok ())

let validity ?metrics rule ~inputs trace =
  if Trace.failures trace <> [] then
    Error "validity check applies to failure-free runs only"
  else begin
    let expected = Decision_rule.natural_decision rule (Array.of_list inputs) in
    let decisions = Array.of_list (Trace.decisions trace) in
    Patterns_search.Search.Scan.first_error ?metrics ~len:(Array.length decisions)
      ~check:(fun i ->
        let p, d = decisions.(i) in
        if Decision.equal d expected then Ok ()
        else
          Error
            (Format.asprintf
               "validity violated: failure-free run should decide %a but %a decided %a"
               Decision.pp expected Proc_id.pp p Decision.pp d))
      ()
  end

let ever_decided ~n trace =
  let first = Array.make n None in
  List.iter
    (function
      | Trace.Decided { proc; decision; _ } ->
        if first.(proc) = None then first.(proc) <- Some decision
      | _ -> ())
    trace;
  first

let for_each_nonfaulty ~failed f =
  Patterns_search.Search.Scan.first_error ~len:(Array.length failed)
    ~check:(fun p -> if failed.(p) then Ok () else f p)
    ()

let weak_termination ~quiescent ~statuses:_ ~ever_decided ~failed =
  if not quiescent then Error "run did not reach quiescence"
  else
    for_each_nonfaulty ~failed (fun p ->
        if ever_decided.(p) = None then
          Error (Format.asprintf "weak termination violated: nonfaulty %a never decided" Proc_id.pp p)
        else Ok ())

let strong_termination ~quiescent ~statuses ~ever_decided ~failed =
  match weak_termination ~quiescent ~statuses ~ever_decided ~failed with
  | Error _ as e -> e
  | Ok () ->
    for_each_nonfaulty ~failed (fun p ->
        let st = statuses.(p) in
        if st.Status.amnesic || st.Status.halted then Ok ()
        else
          Error
            (Format.asprintf "strong termination violated: nonfaulty %a never reached an amnesic state"
               Proc_id.pp p))

let halting_termination ~quiescent ~statuses ~ever_decided ~failed =
  match weak_termination ~quiescent ~statuses ~ever_decided ~failed with
  | Error _ as e -> e
  | Ok () ->
    for_each_nonfaulty ~failed (fun p ->
        if statuses.(p).Status.halted then Ok ()
        else
          Error (Format.asprintf "halting termination violated: nonfaulty %a never halted" Proc_id.pp p))
