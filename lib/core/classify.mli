(** Which problems of the taxonomy a protocol solves.

    Combines exhaustive exploration ({!Explore}) with the taxonomy:
    a protocol solves T-C at size [n] iff exploration finds no
    C-violation and no T-violation (and the decision rule and validity
    hold).  The verdict powers the lattice table of the benchmark
    harness: each implemented protocol lands exactly where the paper
    places it. *)

open Patterns_sim
open Patterns_protocols

type verdict = {
  name : string;
  n : int;
  ic : bool;
  tc : bool;
  wt : bool;
  st : bool;
  ht : bool;
  rule_ok : bool;
  validity_ok : bool;
  all_states_safe : bool;  (** Theorem 2's conditions *)
  corollary6 : bool;
  configs : int;
  truncated : bool;
  details : string list;  (** the recorded violations, for display *)
}

val classify :
  ?metrics:Patterns_search.Metrics.t ref ->
  ?db:Patterns_db.Db.t ->
  ?base:Patterns_db.Db.t ->
  ?max_failures:int ->
  ?max_configs:int ->
  ?inputs_choices:bool list list ->
  ?fifo_notices:bool ->
  ?jobs:int ->
  ?par_threshold:int ->
  ?par_mode:Patterns_search.Search.par_mode ->
  ?deadline:float ->
  ?max_live:int ->
  ?spill:Patterns_search.Search.spill ->
  ?checkpoint:Patterns_search.Checkpoint.spec ->
  rule:Decision_rule.t ->
  n:int ->
  (module Protocol.S) ->
  verdict
(** [spill] bounds the sweep's resident visited stores by spilling to
    disk (bit-identical verdicts; {!Patterns_search.Search.spill});
    [checkpoint] records each completed input vector so a killed sweep
    resumes instead of restarting ({!Explore.Make.options}).  Neither
    affects the verdict or the fact key.

    [base] enables incremental re-classification
    ({!Explore.Make.options}[.base]): per-vector ["classify_vec"]
    facts from an earlier sweep are reused wholesale when
    [max_failures] matches and semi-naively widened when it grew by
    one, with verdicts bit-identical to a from-scratch sweep under the
    layered driver's deterministic visit order (and under any driver
    for protocols whose counts are visit-order-insensitive — see
    {!Explore.Make.options}[.base]); fresh vectors store new facts
    into it.  [base] may be the same database as [db].  Ignored while
    [deadline] or [max_live] is set.

    [par_mode] selects the parallel driver (default
    {!Patterns_search.Search.Async}); exhaustive sweeps give identical
    verdicts for both modes and every [jobs], truncated ones should
    pin [Layers] when comparing counts across [jobs].

    [db] attaches an execution database: if a verdict fact for the
    same (protocol, n, rule, budget, fault-bound, input-set) sweep is
    stored, it is returned with {e zero} kernel expansions (only the
    database counters move in [?metrics]); otherwise the sweep runs
    live with every kernel expansion recorded as an edge, and — when
    no wall-clock deadline bounds it — its verdict is stored as a
    fact for the next call.  The parallel knobs are deliberately
    absent from the fact key: the sweep is jobs- and mode-invariant,
    which is what makes its verdict cacheable. *)

val solves : verdict -> Taxonomy.t -> bool
(** Interpret the verdict against a taxonomy point (the rule is
    assumed to be the one classified against). *)

val best_problem : verdict -> Taxonomy.t option
(** The strongest of the six problems the protocol solves: strongest
    termination first, then total over interactive consistency. *)

val pp : Format.formatter -> verdict -> unit
