open Patterns_sim
open Patterns_stdx
module Db = Patterns_db.Db

module Make (P : Protocol.S) = struct
  module E = Engine.Make (P)

  type options = {
    max_failures : int;
    max_configs : int;
    inputs_choices : bool list list;
    fifo_notices : bool;
    jobs : int;
    par_threshold : int option;
    par_mode : Patterns_search.Search.par_mode;
    deadline : float option;
    max_live : int option;
    edge_sink : (src:int -> event:string -> dst:int -> unit) option;
    spill : Patterns_search.Search.spill option;
    checkpoint : Patterns_search.Checkpoint.spec option;
    base : Db.t option;
  }

  let default_options ~n =
    {
      max_failures = 1;
      max_configs = 400_000;
      inputs_choices = Listx.all_bool_vectors n;
      fifo_notices = false;
      jobs = 1;
      par_threshold = None;
      par_mode = Patterns_search.Search.Async;
      deadline = None;
      max_live = None;
      edge_sink = None;
      spill = None;
      checkpoint = None;
      base = None;
    }

  type state_info = {
    state : P.state;
    decision : Decision.t option;
    commit_cooccurs : bool;
    abort_cooccurs : bool;
    always_all_ones : bool;
    input_vectors : int list;
    occurrences : int;
  }

  let encode_inputs inputs =
    Array.to_list inputs
    |> List.mapi (fun i b -> if b then 1 lsl i else 0)
    |> List.fold_left ( lor ) 0

  let decode_inputs ~n code = Array.init n (fun i -> code land (1 lsl i) <> 0)

  let implies ~n info pred = List.for_all (fun code -> pred (decode_inputs ~n code)) info.input_vectors

  let safe info =
    (not (info.commit_cooccurs && info.abort_cooccurs))
    && ((not info.commit_cooccurs) || info.always_all_ones)

  let committable info = info.always_all_ones && not info.abort_cooccurs

  type report = {
    configs_visited : int;
    terminal_configs : int;
    truncated : bool;
    ic_violation : string option;
    tc_violation : string option;
    wt_violation : string option;
    st_violation : string option;
    ht_violation : string option;
    rule_violation : string option;
    validity_violation : string option;
    protocol_errors : string list;
    states : state_info list;
  }

  let unsafe_states report = List.filter (fun i -> not (safe i)) report.states

  (* Corollary 6 restated on concurrency data: a committed processor
     must only co-occur with committable states, an aborted one only
     with noncommittable states.  [commit_cooccurs s && not
     (committable s)] is a violation of the commit side; [abort_cooccurs
     s && committable s] of the abort side.  Both reduce to the
     safe-state conditions. *)
  let corollary6_holds report =
    List.for_all
      (fun i ->
        ((not i.commit_cooccurs) || committable i)
        && ((not i.abort_cooccurs) || not (committable i)))
      report.states

  module State_map = Map.Make (struct
    type t = P.state

    let compare = P.compare_state
  end)

  let first_violation a b = match a with Some _ -> a | None -> b

  (* Two accumulators can observe the same state under different
     schedules or input vectors; the merged info is the same
     conjunction/disjunction the sequential accumulation computes.
     The [decision] field depends only on the state itself, so either
     side's value is correct. *)
  let merge_info a b =
    {
      a with
      commit_cooccurs = a.commit_cooccurs || b.commit_cooccurs;
      abort_cooccurs = a.abort_cooccurs || b.abort_cooccurs;
      always_all_ones = a.always_all_ones && b.always_all_ones;
      input_vectors =
        a.input_vectors
        @ List.filter (fun c -> not (List.mem c a.input_vectors)) b.input_vectors;
      occurrences = a.occurrences + b.occurrences;
    }

  (* Observation accumulator for the parallel drivers: one per
     expansion task (layered) or per worker (async).  [cells] holds
     the seven violation witnesses, indexed below, each tagged with
     the fingerprint key of the node whose expansion observed it; the
     canonical witness is the one at the {e smallest key}, which is a
     property of the violation set alone — not of chunk boundaries,
     worker schedules, or visitation order — so both drivers and
     every [jobs] value report the same witness.  (A key tie between
     two distinct violating nodes is a 62-bit fingerprint collision;
     ties within one node's expansion resolve first-observed, which
     is the node's deterministic internal order.) *)
  let ic_cell = 0
  and tc_cell = 1
  and wt_cell = 2
  and st_cell = 3
  and ht_cell = 4
  and rule_cell = 5
  and validity_cell = 6

  type vobs = {
    mutable terminal : int;
    cells : (int * string) option array;
    mutable errors : string list;
    mutable smap : state_info State_map.t;
    mutable boundary : (E.config * Decision.t option array) list;
        (* nodes with exactly [max_failures] failures, collected only
           when a base database is in play — the frontier a later
           [max_failures + 1] sweep seeds its delta region from *)
    mutable edges_gen : int;
        (* successor derivations performed (summed [List.length succs]
           over expansions) — an exact count, unlike the kernel's
           driver-dependent frontier statistics *)
  }

  let vobs_empty () =
    {
      terminal = 0;
      cells = Array.make 7 None;
      errors = [];
      smap = State_map.empty;
      boundary = [];
      edges_gen = 0;
    }

  let min_violation a b =
    match (a, b) with
    | None, v | v, None -> v
    | Some (ka, _), Some (kb, _) -> if kb < ka then b else a

  let vobs_merge a b =
    a.terminal <- a.terminal + b.terminal;
    Array.iteri (fun i v -> a.cells.(i) <- min_violation a.cells.(i) v) b.cells;
    a.errors <- a.errors @ b.errors;
    a.smap <- State_map.union (fun _ x y -> Some (merge_info x y)) a.smap b.smap;
    a.boundary <- List.rev_append b.boundary a.boundary;
    a.edges_gen <- a.edges_gen + b.edges_gen;
    a

  (* [key] is the expanded node's fingerprint key: keep the witness
     with the smallest key; within one node (equal keys) keep the
     first observed *)
  let record o key cell msg =
    match o.cells.(cell) with
    | Some (k, _) when k <= key -> ()
    | _ -> o.cells.(cell) <- Some (key, msg)

  let observe_config ~rule o key config decided =
      (* "s implies the commit rule is satisfied": track whether every
         configuration containing a state permits commit on its inputs *)
      let commit_permitted =
        Patterns_protocols.Decision_rule.permits rule ~inputs:(E.inputs_of config)
          ~failure_occurred:false Decision.Commit
      in
      let statuses = E.statuses config in
      let ops =
        List.filter (fun p -> not (E.is_failed config p)) (Proc_id.all ~n:(E.n_of config))
      in
      (* interactive consistency at this configuration *)
      let op_decisions =
        List.filter_map (fun p -> Option.map (fun d -> (p, d)) statuses.(p).Status.decision) ops
      in
      (match op_decisions with
      | (p0, d0) :: rest -> (
        match List.find_opt (fun (_, d) -> not (Decision.equal d d0)) rest with
        | Some (p1, d1) ->
          record o key ic_cell
            (Format.asprintf "operational %a in %a while %a in %a" Proc_id.pp p0 Decision.pp d0
               Proc_id.pp p1 Decision.pp d1)
        | None -> ())
      | [] -> ());
      (* total consistency over first decisions (includes the failed) *)
      let all_decided =
        List.filter_map
          (fun p -> Option.map (fun d -> (p, d)) decided.(p))
          (Proc_id.all ~n:(E.n_of config))
      in
      (match all_decided with
      | (p0, d0) :: rest -> (
        match List.find_opt (fun (_, d) -> not (Decision.equal d d0)) rest with
        | Some (p1, d1) ->
          record o key tc_cell
            (Format.asprintf "%a decided %a but %a decided %a" Proc_id.pp p0 Decision.pp d0
               Proc_id.pp p1 Decision.pp d1)
        | None -> ())
      | [] -> ());
      (* concurrency-set accumulation over operational states *)
      let commit_here p =
        List.exists
          (fun q ->
            q <> p
            && match statuses.(q).Status.decision with
               | Some Decision.Commit -> true
               | _ -> false)
          ops
      in
      let abort_here p =
        List.exists
          (fun q ->
            q <> p
            && match statuses.(q).Status.decision with
               | Some Decision.Abort -> true
               | _ -> false)
          ops
      in
      List.iter
        (fun p ->
          let s = E.state_of config p in
          let prev =
            match State_map.find_opt s o.smap with
            | Some i -> i
            | None ->
              {
                state = s;
                decision = statuses.(p).Status.decision;
                commit_cooccurs = false;
                abort_cooccurs = false;
                always_all_ones = true;
                input_vectors = [];
                occurrences = 0;
              }
          in
          let code = encode_inputs (E.inputs_of config) in
          let info =
            {
              prev with
              commit_cooccurs = prev.commit_cooccurs || commit_here p;
              abort_cooccurs = prev.abort_cooccurs || abort_here p;
              always_all_ones = prev.always_all_ones && commit_permitted;
              input_vectors =
                (if List.mem code prev.input_vectors then prev.input_vectors
                 else code :: prev.input_vectors);
              occurrences = prev.occurrences + 1;
            }
          in
          o.smap <- State_map.add s info o.smap)
        ops

  let observe_terminal o key config decided =
      o.terminal <- o.terminal + 1;
      let statuses = E.statuses config in
      List.iter
        (fun p ->
          if not (E.is_failed config p) then begin
            if decided.(p) = None then
              record o key wt_cell
                (Format.asprintf "terminal configuration with nonfaulty %a undecided:@,%a"
                   Proc_id.pp p E.pp_config config);
            (match decided.(p) with
            | Some _ when not (statuses.(p).Status.amnesic || statuses.(p).Status.halted) ->
              record o key st_cell
                (Format.asprintf "nonfaulty %a decided but never forgot or halted" Proc_id.pp p)
            | _ -> ());
            if not statuses.(p).Status.halted then
              record o key ht_cell
                (Format.asprintf "nonfaulty %a never halted" Proc_id.pp p)
          end)
        (Proc_id.all ~n:(E.n_of config))

  (* decision-time checks carried on the trace events of one edge *)
  let observe_events ~rule o key pre_config events decided =
      let inputs = E.inputs_of pre_config in
      let failure_before =
        Array.exists Fun.id
          (Array.init (E.n_of pre_config) (fun p -> E.is_failed pre_config p))
      in
      List.fold_left
        (fun decided ev ->
          match ev with
          | Trace.Decided { proc; decision; _ } ->
            if not (Patterns_protocols.Decision_rule.permits rule ~inputs ~failure_occurred:failure_before decision)
            then
              record o key rule_cell
                (Format.asprintf "%a's %a not permitted by %a" Proc_id.pp proc Decision.pp
                   decision Patterns_protocols.Decision_rule.pp rule);
            if
              (not failure_before)
              && not
                   (Decision.equal decision
                      (Patterns_protocols.Decision_rule.natural_decision rule inputs))
            then
              record o key validity_cell
                (Format.asprintf "failure-free path: %a decided %a, natural decision differs"
                   Proc_id.pp proc Decision.pp decision);
            let decided = Array.copy decided in
            if decided.(proc) = None then decided.(proc) <- Some decision;
            decided
          | _ -> decided)
        decided events

  let failures_in config =
    List.length (List.filter (fun p -> E.is_failed config p) (Proc_id.all ~n:(E.n_of config)))

  module Node = struct
      (* exploration node: behavioural configuration plus each
         processor's first decision (amnesia may erase it from the
         state) *)
      type state = E.config * Decision.t option array

      let compare (c1, d1) (c2, d2) =
        let c = E.compare_behavioral c1 c2 in
        if c <> 0 then c else Stdlib.compare d1 d2

      (* behavioural fingerprint of the configuration, extended with an
         explicit full fold over the decision array — [Hashtbl.hash]
         samples only a bounded prefix of arrays and would alias nodes
         at larger [n] *)
      let fingerprint (c, d) =
        Array.fold_left
          (fun h cell ->
            Fingerprint.feed h
              (match cell with None -> 0 | Some Decision.Commit -> 1 | Some Decision.Abort -> 2))
          (E.behavioral_fingerprint c) d

      (* expansion goes through the layer-synchronous driver's
         observation interface; the serial entry point is unused *)
      let expand _ = invalid_arg "Explore.Node.expand: use run_par"
    end

  module K = Patterns_search.Search.Make (Node)

  let node_expand ~fifo_notices ~max_failures ~rule ~capture o
      ((config, decided) as node : Node.state) =
    (* every violation observed while expanding this node is tagged
       with the node's fingerprint key — the canonical-witness order *)
    let key = Fingerprint.to_int (Node.fingerprint node) in
    observe_config ~rule o key config decided;
    let actions = E.applicable ~fifo_notices config in
    if actions = [] then observe_terminal o key config decided;
    let nf = failures_in config in
    if capture && nf = max_failures then o.boundary <- node :: o.boundary;
    let fail_actions = if nf < max_failures then E.failure_actions config else [] in
    let succs =
      List.filter_map
        (fun a ->
          match E.apply ~step:0 config a with
          | Error e ->
            o.errors <- e :: o.errors;
            None
          | Ok (config', events) ->
            Some (config', observe_events ~rule o key config events decided))
        (actions @ fail_actions)
    in
    o.edges_gen <- o.edges_gen + List.length succs;
    (* reversed: the historical stack discipline explored the last
       applicable action first; truncated counts are pinned to that
       order by the jobs-invariance tests *)
    List.rev succs

  (* kernel edge sink: node fingerprints as src/dst, the successor
     ordinal (stringified) as the event descriptor — anonymous
     expansion edges, as opposed to the replay recorder's rendered
     directives *)
  let edge_adapter sink ~src ~event ~dst =
    sink
      ~src:(Fingerprint.to_int (Node.fingerprint src))
      ~event:("#" ^ string_of_int event)
      ~dst:(Fingerprint.to_int (Node.fingerprint dst))

  (* One root of the sweep: exhaustive search from a single input
     vector.  Input vectors are part of every configuration (and
     compared by [compare_behavioral]), so roots never share reachable
     nodes and the per-root visited sets partition the whole space
     exactly.  The frontier, visited store and budget live in the
     search kernel; this function only hangs the paper's observations
     on the expansion closure. *)
  let explore_one_vector ?deadline ~options ~pool ~budget ~rule ~n ~capture inputs =
    let root_config = E.init ~n ~inputs in
    let edges = Option.map edge_adapter options.edge_sink in
    let outcome, o, m =
      let expand =
        {
          K.empty = vobs_empty;
          merge = vobs_merge;
          expand =
            node_expand ~fifo_notices:options.fifo_notices
              ~max_failures:options.max_failures ~rule ~capture;
        }
      in
      let root = (root_config, Array.make n None) in
      match options.par_mode with
      | Patterns_search.Search.Layers ->
        K.run_par ~pool ?par_threshold:options.par_threshold ~budget ?deadline
          ?max_live:options.max_live ?spill:options.spill ?edges ~expand ~root ()
      | Patterns_search.Search.Async ->
        K.run_par_async ~pool ~budget ?deadline ?max_live:options.max_live
          ?spill:options.spill ?edges ~expand ~root ()
    in
    let m = Patterns_search.Metrics.with_intern_bindings (E.intern_bindings root_config) m in
    (o, Patterns_search.Search.truncated outcome, m)

  let report_of ~configs ~truncated o =
    let cell i = Option.map snd o.cells.(i) in
    {
      configs_visited = configs;
      terminal_configs = o.terminal;
      truncated;
      ic_violation = cell ic_cell;
      tc_violation = cell tc_cell;
      wt_violation = cell wt_cell;
      st_violation = cell st_cell;
      ht_violation = cell ht_cell;
      rule_violation = cell rule_cell;
      validity_violation = cell validity_cell;
      protocol_errors = Listx.dedup_sorted ~cmp:String.compare o.errors;
      states = List.map snd (State_map.bindings o.smap);
    }

  (* ----- per-vector base facts: the EDB for delta re-exploration -----

     One fact per fully explored input vector, kind ["classify_vec"],
     carrying everything a later sweep needs to either reuse the
     vector wholesale (same [max_failures]) or semi-naively widen it
     ([max_failures + 1]): the observation accumulator, the exact
     derivation count, and the frozen boundary — the nodes with
     exactly [max_failures] failures, whose crash successors are the
     only new sources the widened space adds.  The key pins the
     answer-relevant parameters (protocol, n, rule, max_failures,
     fifo, vector) and deliberately excludes budgets, parallelism
     knobs and deadlines: reuse re-checks the budget against the
     stored size, and deadline-bounded runs never store or consume
     facts. *)

  let bits_of inputs =
    String.concat "" (List.map (fun b -> if b then "1" else "0") inputs)

  let vec_fact_key ~rule ~n ~max_failures ~fifo_notices inputs =
    Printf.sprintf "%s|%d|%s|mf=%d|fifo=%b|vec=%s" P.name n
      (Format.asprintf "%a" Patterns_protocols.Decision_rule.pp rule)
      max_failures fifo_notices (bits_of inputs)

  (* binary payloads (state infos, frozen boundary) travel as hex of
     [Marshal] — the db is line-oriented JSON.  Marshal bytes are
     compared by nobody: facts are decoded before use, so the
     insertion-order-dependent sharing in the byte string is
     harmless. *)
  let vec_fact_of ~configs ~boundary o =
    let cells =
      List.filter_map
        (fun i ->
          Option.map
            (fun (k, msg) ->
              Json.Obj [ ("cell", Json.Int i); ("key", Json.Int k); ("msg", Json.String msg) ])
            o.cells.(i))
        [ 0; 1; 2; 3; 4; 5; 6 ]
    in
    let infos = Array.of_list (List.map snd (State_map.bindings o.smap)) in
    let frozen_boundary =
      List.stable_sort
        (fun a b -> Fingerprint.compare (Node.fingerprint a) (Node.fingerprint b))
        boundary
      |> List.map (fun (c, d) -> (E.freeze c, d))
      |> Array.of_list
    in
    Json.Obj
      [
        ("configs", Json.Int configs);
        ("terminal", Json.Int o.terminal);
        ("edges_gen", Json.Int o.edges_gen);
        ("cells", Json.List cells);
        ( "errors",
          Json.List
            (List.map
               (fun e -> Json.String e)
               (Listx.dedup_sorted ~cmp:String.compare o.errors)) );
        ("smap", Json.String (Hex.encode (Marshal.to_string infos [])));
        ("boundary", Json.String (Hex.encode (Marshal.to_string frozen_boundary [])));
      ]

  (* [with_boundary:false] skips decoding the frozen boundary — the
     expensive half of a fact, and dead weight for wholesale reuse,
     which answers from the observations alone.  Only the widening
     rung pays for the thaw. *)
  let vobs_of_fact ~with_boundary j =
    let exception Bad in
    let get k = match Json.member k j with Some v -> v | None -> raise Bad in
    let int k = match Json.to_int (get k) with Ok i -> i | Error _ -> raise Bad in
    let str k = match Json.to_str (get k) with Ok s -> s | Error _ -> raise Bad in
    let lst k = match Json.to_list (get k) with Ok l -> l | Error _ -> raise Bad in
    try
      let configs = int "configs" in
      let o = vobs_empty () in
      o.terminal <- int "terminal";
      o.edges_gen <- int "edges_gen";
      List.iter
        (fun cj ->
          let m k = match Json.member k cj with Some v -> v | None -> raise Bad in
          match (Json.to_int (m "cell"), Json.to_int (m "key"), Json.to_str (m "msg")) with
          | Ok cell, Ok key, Ok msg when cell >= 0 && cell < 7 ->
            o.cells.(cell) <- Some (key, msg)
          | _ -> raise Bad)
        (lst "cells");
      o.errors <-
        List.map (fun e -> match Json.to_str e with Ok s -> s | Error _ -> raise Bad)
          (lst "errors");
      let infos : state_info array = Marshal.from_string (Hex.decode (str "smap")) 0 in
      Array.iter (fun info -> o.smap <- State_map.add info.state info o.smap) infos;
      if with_boundary then begin
        let frozen : (E.frozen * Decision.t option array) array =
          Marshal.from_string (Hex.decode (str "boundary")) 0
        in
        o.boundary <- Array.to_list (Array.map (fun (fz, d) -> (E.thaw fz, d)) frozen)
      end;
      Some (configs, o)
    with Bad | Invalid_argument _ | Failure _ -> None

  (* One vector of the sweep, with the base database consulted when it
     is sound to do so.  Three rungs, first applicable wins:

     - {e exact}: a fact at this [max_failures] whose size fits the
       per-vector budget — the stored observations are the answer, no
       search at all ([delta_reused_edges] counts the derivations
       skipped wholesale);
     - {e widen}: a fact at [max_failures - 1] — thaw its boundary,
       derive only the crash successors (the semi-naive delta seeds:
       every configuration the widened space adds is reachable from
       one of them, and from none of the old nodes, because failure
       counts only grow along edges and are part of the behavioural
       identity), and close just that region with {!K.run_delta}
       under the leftover budget.  Exhaustion of the delta within
       [budget - base] is equivalent to exhaustion of the full space
       within [budget], so the stitched report is bit-identical to
       from-scratch; any truncation falls through to a fresh run,
       which then reproduces the from-scratch truncation exactly;
     - {e fresh}: the ordinary exhaustive run, storing a new fact when
       it completed untruncated.

     Base consultation is disabled under a wall-clock deadline or a
     live-state cap: both make completeness run-dependent, and the
     facts only speak for completed regions. *)
  let vector_result ?deadline ~options ~pool ~budget ~rule ~n inputs =
    let base =
      match options.base with
      | Some db when options.deadline = None && options.max_live = None -> Some db
      | _ -> None
    in
    let capture = base <> None in
    let key = vec_fact_key ~rule ~n ~fifo_notices:options.fifo_notices in
    let fresh () =
      let o, truncated, m =
        explore_one_vector ?deadline ~options ~pool ~budget ~rule ~n ~capture inputs
      in
      let configs = m.Patterns_search.Metrics.states_expanded in
      (match base with
      | Some db when (not truncated) && m.Patterns_search.Metrics.deadline_hits = 0 ->
        Db.put_fact db ~kind:"classify_vec"
          ~key:(key ~max_failures:options.max_failures inputs)
          (vec_fact_of ~configs ~boundary:o.boundary o)
      | _ -> ());
      (report_of ~configs ~truncated o, m)
    in
    let widen db configs0 o0 =
      let base_edges = o0.edges_gen in
      let seeds = ref [] in
      List.iter
        (fun ((config, decided) as node) ->
          let nkey = Fingerprint.to_int (Node.fingerprint node) in
          let succs =
            List.filter_map
              (fun a ->
                match E.apply ~step:0 config a with
                | Error e ->
                  o0.errors <- e :: o0.errors;
                  None
                | Ok (c', events) ->
                  Some (c', observe_events ~rule o0 nkey config events decided))
              (E.failure_actions config)
          in
          o0.edges_gen <- o0.edges_gen + List.length succs;
          (match options.edge_sink with
          | Some sink ->
            List.iteri
              (fun i s ->
                sink ~src:nkey ~event:("#" ^ string_of_int i)
                  ~dst:(Fingerprint.to_int (Node.fingerprint s)))
              succs
          | None -> ());
          seeds := List.rev_append succs !seeds)
        (List.stable_sort
           (fun a b -> Fingerprint.compare (Node.fingerprint a) (Node.fingerprint b))
           o0.boundary);
      let expand =
        {
          K.empty = vobs_empty;
          merge = vobs_merge;
          expand =
            node_expand ~fifo_notices:options.fifo_notices
              ~max_failures:options.max_failures ~rule ~capture:true;
        }
      in
      let edges = Option.map edge_adapter options.edge_sink in
      let outcome, od, m =
        K.run_delta ~budget:(budget - configs0) ?spill:options.spill ?edges ~expand
          ~seeds:(List.rev !seeds) ()
      in
      match outcome with
      | Patterns_search.Search.Exhausted ->
        let delta_boundary = od.boundary in
        let o = vobs_merge o0 od in
        let configs = configs0 + m.Patterns_search.Metrics.states_expanded in
        let m = Patterns_search.Metrics.with_incremental ~delta_reused_edges:base_edges m in
        Db.put_fact db ~kind:"classify_vec"
          ~key:(key ~max_failures:options.max_failures inputs)
          (vec_fact_of ~configs ~boundary:delta_boundary o);
        Some (report_of ~configs ~truncated:false o, m)
      | _ -> None
    in
    match base with
    | None -> fresh ()
    | Some db -> (
      let lookup ~with_boundary mf =
        Option.bind
          (Db.get_fact db ~kind:"classify_vec" ~key:(key ~max_failures:mf inputs))
          (vobs_of_fact ~with_boundary)
      in
      match lookup ~with_boundary:false options.max_failures with
      | Some (configs, o) when configs <= budget ->
        let m =
          Patterns_search.Metrics.with_incremental ~delta_reused_edges:o.edges_gen
            Patterns_search.Metrics.zero
        in
        (report_of ~configs ~truncated:false o, m)
      | _ -> (
        let prior =
          if options.max_failures > 0 then
            lookup ~with_boundary:true (options.max_failures - 1)
          else None
        in
        match prior with
        | Some (configs0, o0) when configs0 <= budget -> (
          match widen db configs0 o0 with Some r -> r | None -> fresh ())
        | _ -> fresh ()))

  (* ----- deterministic merge of per-vector reports ----- *)

  (* both lists sorted by [compare_state] (State_map binding order) *)
  let rec merge_states xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | x :: xs', y :: ys' ->
      let c = P.compare_state x.state y.state in
      if c < 0 then x :: merge_states xs' ys
      else if c > 0 then y :: merge_states xs ys'
      else merge_info x y :: merge_states xs' ys'

  let merge_reports a b =
    {
      configs_visited = a.configs_visited + b.configs_visited;
      terminal_configs = a.terminal_configs + b.terminal_configs;
      truncated = a.truncated || b.truncated;
      ic_violation = first_violation a.ic_violation b.ic_violation;
      tc_violation = first_violation a.tc_violation b.tc_violation;
      wt_violation = first_violation a.wt_violation b.wt_violation;
      st_violation = first_violation a.st_violation b.st_violation;
      ht_violation = first_violation a.ht_violation b.ht_violation;
      rule_violation = first_violation a.rule_violation b.rule_violation;
      validity_violation = first_violation a.validity_violation b.validity_violation;
      protocol_errors =
        Listx.dedup_sorted ~cmp:String.compare (a.protocol_errors @ b.protocol_errors);
      states = merge_states a.states b.states;
    }

  let empty_report =
    {
      configs_visited = 0;
      terminal_configs = 0;
      truncated = false;
      ic_violation = None;
      tc_violation = None;
      wt_violation = None;
      st_violation = None;
      ht_violation = None;
      rule_violation = None;
      validity_violation = None;
      protocol_errors = [];
      states = [];
    }

  let explore ?metrics ?options ~rule ~n () =
    let options = match options with Some o -> o | None -> default_options ~n in
    let nvec = max 1 (List.length options.inputs_choices) in
    (* even split of the total node budget, so the sharded sweep does
       roughly the work of the old single-visited-set loop *)
    let budget = (options.max_configs + nvec - 1) / nvec in
    (* Input vectors are baked into every configuration, so the roots
       partition the state space.  Since PR 4 the parallelism is
       *intra*-root: the layer-synchronous driver fans each vector's
       frontier layers across the pool, and the outer loop stays on
       the pool-owning domain (nested pool maps are not supported),
       merging reports and metrics in vector order — bit-identical
       for every [jobs]. *)
    (* the optional wall-clock deadline bounds the whole sweep: each
       vector's search gets the time remaining at its turn *)
    let t_end =
      Option.map (fun d -> Patterns_search.Search.now () +. d) options.deadline
    in
    let remaining () =
      Option.map (fun te -> Float.max 0. (te -. Patterns_search.Search.now ())) t_end
    in
    (* Checkpoint granularity is the input vector, the sweep's natural
       unit of deterministic work.  The header pins everything a
       per-vector (report, metrics) payload depends on; [jobs] and
       [deadline] are absent because jobs never changes a payload and
       deadline-truncated vectors are never recorded. *)
    let ckpt =
      Option.map
        (fun spec ->
          let opt = function None -> "-" | Some i -> string_of_int i in
          let header =
            Printf.sprintf "explore/1|%s|rule=%s|n=%d|mf=%d|mc=%d|fifo=%b|ml=%s|mode=%s|spill=%s|iv=%s"
              P.name
              (Format.asprintf "%a" Patterns_protocols.Decision_rule.pp rule)
              n options.max_failures options.max_configs options.fifo_notices
              (opt options.max_live)
              (Patterns_search.Search.par_mode_string options.par_mode)
              (opt
                 (Option.map
                    (fun s -> s.Patterns_search.Search.mem_budget)
                    options.spill))
              (Digest.to_hex (Digest.string (Marshal.to_string options.inputs_choices [])))
          in
          match Patterns_search.Checkpoint.create spec ~header with
          | Ok t -> t
          | Error e -> failwith e)
        options.checkpoint
    in
    let report, m =
      Patterns_stdx.Domain_pool.with_pool ~jobs:options.jobs (fun pool ->
          List.fold_left
            (fun (acc, ms) (i, inputs) ->
              let r, m =
                match
                  Option.bind ckpt (fun t -> Patterns_search.Checkpoint.find t i)
                with
                | Some payload -> payload
                | None ->
                  let (_, m) as fresh =
                    vector_result ?deadline:(remaining ()) ~options ~pool ~budget
                      ~rule ~n inputs
                  in
                  if m.Patterns_search.Metrics.deadline_hits = 0 then
                    Option.iter
                      (fun t -> Patterns_search.Checkpoint.record t i fresh)
                      ckpt;
                  fresh
              in
              ( merge_reports acc r,
                Patterns_search.Metrics.merge ms
                  (Patterns_search.Metrics.with_root_index i m) ))
            (empty_report, Patterns_search.Metrics.zero)
            (List.mapi (fun i v -> (i, v)) options.inputs_choices))
    in
    Patterns_search.Search.merge_into metrics m;
    report

  let pp_report ppf r =
    let opt name = function
      | None -> Format.fprintf ppf "  %s: ok@," name
      | Some v -> Format.fprintf ppf "  %s: VIOLATED (%s)@," name v
    in
    Format.fprintf ppf "@[<v>configs=%d terminal=%d%s states=%d@," r.configs_visited
      r.terminal_configs
      (if r.truncated then " (TRUNCATED)" else "")
      (List.length r.states);
    opt "interactive consistency" r.ic_violation;
    opt "total consistency" r.tc_violation;
    opt "weak termination" r.wt_violation;
    opt "strong termination" r.st_violation;
    opt "halting termination" r.ht_violation;
    opt "decision rule" r.rule_violation;
    opt "validity" r.validity_violation;
    let unsafe = unsafe_states r in
    Format.fprintf ppf "  safe states: %d/%d%s@," (List.length r.states - List.length unsafe)
      (List.length r.states)
      (if unsafe = [] then "" else " (UNSAFE STATES EXIST)");
    if r.protocol_errors <> [] then
      Format.fprintf ppf "  protocol errors: %d@," (List.length r.protocol_errors);
    Format.fprintf ppf "@]"
end
