(** Exhaustive exploration of reachable configurations.

    [Make (P)] enumerates every configuration reachable from the given
    initial input vectors under every schedule, with up to
    [max_failures] fail-stop events injected at every possible point.
    On the way it checks, for every execution the model admits:

    - interactive consistency (config-level, the paper's definition);
    - total consistency (via each processor's first decision, so
      amnesia cannot hide a conflict);
    - conformance to the decision rule, checked at decision time;
    - validity on failure-free paths;
    - weak / strong / halting termination at every terminal
      (quiescent) configuration;

    and accumulates the data for Theorem 2: each operational local
    state's concurrency information — which decision values co-occur
    with it and whether it implies the all-ones input vector — from
    which the safe-state conditions and Corollary 6 are decided. *)

open Patterns_sim

module Make (P : Protocol.S) : sig
  module E : module type of Engine.Make (P)

  type options = {
    max_failures : int;
    max_configs : int;
        (** total node budget; split evenly across the input vectors,
            which shard the sweep (each vector's reachable set is
            disjoint from every other's) *)
    inputs_choices : bool list list;
    fifo_notices : bool;
        (** deliver a failure notice only after all of the failed
            sender's messages (fail-stop-processor discipline); the
            paper's unordered default is [false] *)
    jobs : int;
        (** worker domains (default 1); parallelism is intra-root —
            each vector's search is fanned across the pool by the
            driver selected by [par_mode] — and any value yields the
            same report on an exhaustive sweep *)
    par_threshold : int option;
        (** ([Layers] mode only) frontier size at which a layer is
            expanded in parallel; [None] means
            {!Patterns_search.Search.Make.default_par_threshold}.
            Any value yields the same report. *)
    par_mode : Patterns_search.Search.par_mode;
        (** parallel driver: [Async] (default) is the work-stealing
            driver, [Layers] the layer-synchronous barrier driver.
            Violation witnesses are canonicalized — each report cell
            keeps the violation observed at the smallest expanded-node
            fingerprint key — so exhaustive sweeps produce identical
            reports for both modes and every [jobs]; truncated sweeps
            visit a schedule-dependent subset under [Async], so
            truncation-sensitive comparisons should pin [Layers]. *)
    deadline : float option;
        (** wall-clock budget (seconds) for the whole sweep: each
            vector's search receives the time remaining at its turn,
            and exceeding it truncates gracefully instead of
            hanging *)
    max_live : int option;
        (** live-state budget (visited + frontier) per vector's
            search; exceeding it truncates gracefully instead of
            exhausting memory.  Deterministic and jobs-invariant. *)
    edge_sink : (src:int -> event:string -> dst:int -> unit) option;
        (** execution-database recorder: invoked once per expansion
            edge with the node fingerprints as [src]/[dst] and the
            successor ordinal (rendered ["#k"]) as the event
            descriptor.  Called concurrently from worker domains —
            thread safety is the callee's obligation (the execution
            database locks internally).  [None] (the default) records
            nothing and costs nothing. *)
    spill : Patterns_search.Search.spill option;
        (** disk-backed visited storage for every vector's search —
            bit-identical reports and /1–/6 metrics, bounded resident
            store ({!Patterns_search.Search.spill}) *)
    checkpoint : Patterns_search.Checkpoint.spec option;
        (** record each completed input vector's (report, metrics)
            payload; a resumed sweep replays recorded vectors and
            recomputes only the rest, yielding the identical report
            and metrics as an uninterrupted run.  Deadline-truncated
            vectors are never recorded.  Replayed vectors do not
            re-invoke [edge_sink] (their payload carries no edges), so
            an execution database populated across a resume covers
            only the resumed vectors.  Raises [Failure] on a header
            mismatch (protocol, rule, n, budgets, driver family, spill
            budget, input vectors). *)
    base : Patterns_db.Db.t option;
        (** incremental base: an execution database whose
            ["classify_vec"] facts persist each fully explored input
            vector (observations, derivation counts, and the frozen
            max-failure boundary).  With a base, every vector first
            tries wholesale reuse (a fact at this [max_failures] that
            fits the per-vector budget), then semi-naive widening (a
            fact at [max_failures - 1]: only the crash successors of
            its boundary are derived and closed with
            {!Patterns_search.Search.Make.run_delta}), and only then
            falls back to a fresh search — which stores a new fact on
            untruncated completion.  Reused and widened answers are
            bit-identical to from-scratch under the layer-synchronous
            driver's visit order (the delta closure is a FIFO sweep,
            which reproduces it); on protocols whose behavioural
            spaces have no convergence points between pattern-distinct
            paths — every protocol whose counts already agree between
            the two parallel drivers — that is bit-identity to
            from-scratch under any driver.  The metrics additionally
            carry [delta_seeds] and [delta_reused_edges].  Ignored
            (with no facts stored) while [deadline] or [max_live] is
            set — both make completeness run-dependent.  [edge_sink]
            composes, with two caveats: wholesale-reused vectors emit
            no edges (like checkpoint-replayed ones), and widened
            vectors emit delta edges whose successor ordinals can
            differ from a from-scratch recording. *)
  }

  val default_options : n:int -> options
  (** All [2^n] input vectors, one failure, 400_000 configurations,
      unordered notices, one worker, automatic parallel threshold,
      async driver, no deadline, no live-state limit, no edge sink,
      no spilling, no checkpoint. *)

  type state_info = {
    state : P.state;
    decision : Decision.t option;  (** from the state's status *)
    commit_cooccurs : bool;
        (** some reachable configuration pairs this state with an
            operational committed processor *)
    abort_cooccurs : bool;
    always_all_ones : bool;
        (** every reachable configuration containing this state
            permits commit under the classified rule — the paper's
            "s implies satisfaction of the commit rule" *)
    input_vectors : int list;
        (** every input vector (bit i of the encoding = processor i's
            initial bit) of a reachable configuration containing this
            state — the raw material of "s implies X" *)
    occurrences : int;  (** number of distinct configurations *)
  }

  val implies : n:int -> state_info -> (bool array -> bool) -> bool
  (** [implies ~n info pred]: the paper's "state s implies predicate
      X" — [pred inputs] holds for every input vector of a reachable
      configuration containing the state. *)

  val safe : state_info -> bool
  (** The paper's safe-state predicate: not both decisions in the
      concurrency set, and committability implies all-ones. *)

  val committable : state_info -> bool
  (** [s] implies all inputs 1 and no abort state in [C(s)]. *)

  type report = {
    configs_visited : int;
    terminal_configs : int;
    truncated : bool;
    ic_violation : string option;
    tc_violation : string option;
    wt_violation : string option;
    st_violation : string option;
    ht_violation : string option;
    rule_violation : string option;
    validity_violation : string option;
    protocol_errors : string list;
    states : state_info list;
  }

  val unsafe_states : report -> state_info list
  (** States violating Theorem 2's safe-state conditions.  Nonempty
      for any protocol that is not WT-TC (Theorem 2); empty for the
      WT-TC protocols in this repository. *)

  val corollary6_holds : report -> bool
  (** Whenever a processor has decided, every operational processor
      shares its bias — equivalent to all states being safe. *)

  val explore :
    ?metrics:Patterns_search.Metrics.t ref ->
    ?options:options ->
    rule:Patterns_protocols.Decision_rule.t ->
    n:int ->
    unit ->
    report
  (** One search per input vector, sequentially in vector order; each
      vector's search fans out across [options.jobs] domains under the
      driver selected by [options.par_mode].  The optional sink
      accumulates the kernel's counters
      ({!Patterns_search.Search.merge_into}). *)

  val pp_report : Format.formatter -> report -> unit
end
