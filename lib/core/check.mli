(** Trace-level checkers for the taxonomy's safety and liveness
    properties.

    Each checker is an instrumented linear scan from the search kernel
    ({!Patterns_search.Search.Scan}) over a single execution trace
    (plus the final statuses where liveness is concerned), reporting
    the first violation in trace order.  The exhaustive,
    all-schedules analogues live in {!Explore}.  Every [?metrics]
    sink accumulates the kernel's counters
    ({!Patterns_search.Search.merge_into}). *)

open Patterns_sim
open Patterns_protocols

type verdict = (unit, string) result
(** [Error description] pinpoints the violation. *)

val total_consistency : ?metrics:Patterns_search.Metrics.t ref -> 'msg Trace.t -> verdict
(** TC: no two decision events (by anybody, failed processors
    included) carry different values. *)

val interactive_consistency : ?metrics:Patterns_search.Metrics.t ref -> 'msg Trace.t -> verdict
(** IC: replaying the trace, at no point do two processors that have
    not failed occupy different decision states.  (Amnesia vacates the
    decision state.) *)

val nonfaulty_agreement : ?metrics:Patterns_search.Metrics.t ref -> 'msg Trace.t -> verdict
(** No two processors that stay nonfaulty for the whole run decide
    differently — the consistency that the ST variants of Theorem 13
    are shown to violate (amnesia hides the conflict from
    [interactive_consistency] but not from the decision events). *)

val decision_rule :
  ?metrics:Patterns_search.Metrics.t ref ->
  Decision_rule.t ->
  inputs:bool list ->
  'msg Trace.t ->
  verdict
(** Every decision event is permitted by the rule given the inputs and
    whether a failure had occurred by then. *)

val validity :
  ?metrics:Patterns_search.Metrics.t ref ->
  Decision_rule.t ->
  inputs:bool list ->
  'msg Trace.t ->
  verdict
(** For failure-free runs: every decision equals the rule's natural
    decision on these inputs. *)

val weak_termination :
  quiescent:bool -> statuses:Status.t array -> ever_decided:Decision.t option array ->
  failed:bool array -> verdict
(** WT at the end of a run: the run reached quiescence and every
    nonfaulty processor decided at some point. *)

val strong_termination :
  quiescent:bool -> statuses:Status.t array -> ever_decided:Decision.t option array ->
  failed:bool array -> verdict
(** ST: WT and every nonfaulty decider has reached the amnesic state
    (or halted without needing to forget). *)

val halting_termination :
  quiescent:bool -> statuses:Status.t array -> ever_decided:Decision.t option array ->
  failed:bool array -> verdict
(** HT: WT and every nonfaulty processor has halted. *)

val ever_decided : n:int -> 'msg Trace.t -> Decision.t option array
(** First decision of each processor in the trace. *)
