open Patterns_sim

type verdict = {
  name : string;
  n : int;
  ic : bool;
  tc : bool;
  wt : bool;
  st : bool;
  ht : bool;
  rule_ok : bool;
  validity_ok : bool;
  all_states_safe : bool;
  corollary6 : bool;
  configs : int;
  truncated : bool;
  details : string list;
}

let classify ?metrics ?max_failures ?max_configs ?inputs_choices ?(fifo_notices = false)
    ?(jobs = 1) ?par_threshold ?par_mode ?deadline ?max_live ~rule ~n
    (module P : Protocol.S) =
  let module X = Explore.Make (P) in
  let defaults = X.default_options ~n in
  let options =
    {
      X.max_failures = Option.value max_failures ~default:defaults.X.max_failures;
      max_configs = Option.value max_configs ~default:defaults.X.max_configs;
      inputs_choices = Option.value inputs_choices ~default:defaults.X.inputs_choices;
      fifo_notices;
      jobs;
      par_threshold;
      par_mode = Option.value par_mode ~default:defaults.X.par_mode;
      deadline;
      max_live;
    }
  in
  let r = X.explore ?metrics ~options ~rule ~n () in
  let detail name = Option.map (fun v -> name ^ ": " ^ v) in
  {
    name = P.name;
    n;
    ic = r.X.ic_violation = None;
    tc = r.X.tc_violation = None;
    wt = r.X.wt_violation = None;
    st = r.X.st_violation = None;
    ht = r.X.ht_violation = None;
    rule_ok = r.X.rule_violation = None;
    validity_ok = r.X.validity_violation = None;
    all_states_safe = X.unsafe_states r = [];
    corollary6 = X.corollary6_holds r;
    configs = r.X.configs_visited;
    truncated = r.X.truncated;
    details =
      List.filter_map Fun.id
        [
          detail "IC" r.X.ic_violation;
          detail "TC" r.X.tc_violation;
          detail "WT" r.X.wt_violation;
          detail "ST" r.X.st_violation;
          detail "HT" r.X.ht_violation;
          detail "rule" r.X.rule_violation;
          detail "validity" r.X.validity_violation;
        ];
  }

let solves v (problem : Taxonomy.t) =
  let consistency_ok =
    match problem.Taxonomy.consistency with Taxonomy.IC -> v.ic | Taxonomy.TC -> v.tc
  in
  let termination_ok =
    match problem.Taxonomy.termination with
    | Taxonomy.WT -> v.wt
    | Taxonomy.ST -> v.st
    | Taxonomy.HT -> v.ht
  in
  consistency_ok && termination_ok && v.rule_ok && v.validity_ok

let best_problem v =
  let candidates =
    (* strongest first *)
    Taxonomy.
      [ make TC HT; make IC HT; make TC ST; make IC ST; make TC WT; make IC WT ]
  in
  List.find_opt (solves v) candidates

let pp ppf v =
  let b ppf x = Format.pp_print_string ppf (if x then "yes" else "NO") in
  Format.fprintf ppf
    "@[<v>%s (n=%d, %d configs%s)@,\
    \  IC=%a TC=%a  WT=%a ST=%a HT=%a  rule=%a validity=%a safe-states=%a cor6=%a@,\
    \  strongest problem solved: %s@]"
    v.name v.n v.configs
    (if v.truncated then ", truncated" else "")
    b v.ic b v.tc b v.wt b v.st b v.ht b v.rule_ok b v.validity_ok b v.all_states_safe
    b v.corollary6
    (match best_problem v with None -> "none" | Some p -> Taxonomy.short_name p)
