open Patterns_sim
module Db = Patterns_db.Db
module Json = Patterns_stdx.Json

type verdict = {
  name : string;
  n : int;
  ic : bool;
  tc : bool;
  wt : bool;
  st : bool;
  ht : bool;
  rule_ok : bool;
  validity_ok : bool;
  all_states_safe : bool;
  corollary6 : bool;
  configs : int;
  truncated : bool;
  details : string list;
}

(* ----- execution-database facts for classification sweeps ----- *)

(* The fact key names every parameter the verdict depends on.  The
   parallel knobs (jobs, par_threshold, par_mode) are excluded: the
   sweep is jobs- and mode-invariant, which is exactly why its verdict
   is cacheable.  The deadline is excluded too, but deadline-bounded
   sweeps are never *stored* — their truncation point is wall-clock
   dependent, so their verdicts are not reproducible facts. *)
let fact_key ~name ~rule ~n ~max_failures ~max_configs ~fifo_notices ~max_live
    ~inputs_choices =
  let vec v = String.concat "" (List.map (fun b -> if b then "1" else "0") v) in
  Printf.sprintf "%s|%d|%s|mf=%d|mc=%d|fifo=%b|ml=%s|iv=%s" name n
    (Format.asprintf "%a" Patterns_protocols.Decision_rule.pp rule)
    max_failures max_configs fifo_notices
    (match max_live with None -> "-" | Some l -> string_of_int l)
    (String.concat "," (List.map vec inputs_choices))

let verdict_to_fact v =
  Json.Obj
    [
      ("name", Json.String v.name);
      ("n", Json.Int v.n);
      ("ic", Json.Bool v.ic);
      ("tc", Json.Bool v.tc);
      ("wt", Json.Bool v.wt);
      ("st", Json.Bool v.st);
      ("ht", Json.Bool v.ht);
      ("rule_ok", Json.Bool v.rule_ok);
      ("validity_ok", Json.Bool v.validity_ok);
      ("all_states_safe", Json.Bool v.all_states_safe);
      ("corollary6", Json.Bool v.corollary6);
      ("configs", Json.Int v.configs);
      ("truncated", Json.Bool v.truncated);
      ("details", Json.List (List.map (fun s -> Json.String s) v.details));
    ]

let verdict_of_fact j =
  let ( let* ) = Option.bind in
  let b k = Option.bind (Json.member k j) (fun v -> Result.to_option (Json.to_bool v)) in
  let* name = Option.bind (Json.member "name" j) (fun v -> Result.to_option (Json.to_str v)) in
  let* n = Option.bind (Json.member "n" j) (fun v -> Result.to_option (Json.to_int v)) in
  let* ic = b "ic" in
  let* tc = b "tc" in
  let* wt = b "wt" in
  let* st = b "st" in
  let* ht = b "ht" in
  let* rule_ok = b "rule_ok" in
  let* validity_ok = b "validity_ok" in
  let* all_states_safe = b "all_states_safe" in
  let* corollary6 = b "corollary6" in
  let* configs =
    Option.bind (Json.member "configs" j) (fun v -> Result.to_option (Json.to_int v))
  in
  let* truncated = b "truncated" in
  let* details =
    Option.bind (Json.member "details" j) (fun v ->
        match v with
        | Json.List xs ->
          List.fold_left
            (fun acc x ->
              match (acc, x) with
              | Some acc, Json.String s -> Some (s :: acc)
              | _ -> None)
            (Some []) xs
          |> Option.map List.rev
        | _ -> None)
  in
  Some
    {
      name;
      n;
      ic;
      tc;
      wt;
      st;
      ht;
      rule_ok;
      validity_ok;
      all_states_safe;
      corollary6;
      configs;
      truncated;
      details;
    }

let classify ?metrics ?db ?base ?max_failures ?max_configs ?inputs_choices
    ?(fifo_notices = false) ?(jobs = 1) ?par_threshold ?par_mode ?deadline ?max_live ?spill
    ?checkpoint ~rule ~n (module P : Protocol.S) =
  let module X = Explore.Make (P) in
  let defaults = X.default_options ~n in
  let max_failures = Option.value max_failures ~default:defaults.X.max_failures in
  let max_configs = Option.value max_configs ~default:defaults.X.max_configs in
  let inputs_choices = Option.value inputs_choices ~default:defaults.X.inputs_choices in
  let key =
    fact_key ~name:P.name ~rule ~n ~max_failures ~max_configs ~fifo_notices ~max_live
      ~inputs_choices
  in
  let merge_db_metrics db s0 =
    let s1 = Db.stats db in
    Patterns_search.Search.merge_into metrics
      (Patterns_search.Metrics.with_db ~edges:s1.Db.edges
         ~index_scans:(s1.Db.index_scans - s0.Db.index_scans)
         ~cache_hits:(s1.Db.cache_hits - s0.Db.cache_hits)
         ~cache_misses:(s1.Db.cache_misses - s0.Db.cache_misses)
         Patterns_search.Metrics.zero)
  in
  let cached =
    match db with
    | None -> None
    | Some db ->
      let s0 = Db.stats db in
      let v = Option.bind (Db.get_fact db ~kind:"classify" ~key) verdict_of_fact in
      (* a hit answers the sweep with zero kernel expansions: only the
         database counters move *)
      if v <> None then merge_db_metrics db s0;
      v
  in
  match cached with
  | Some v -> v
  | None ->
    let s0 = Option.map Db.stats db in
    let edge_sink =
      Option.map (fun db ~src ~event ~dst -> Db.add_edge db ~src ~event ~dst) db
    in
    let options =
      {
        X.max_failures;
        max_configs;
        inputs_choices;
        fifo_notices;
        jobs;
        par_threshold;
        par_mode = Option.value par_mode ~default:defaults.X.par_mode;
        deadline;
        max_live;
        edge_sink;
        spill;
        checkpoint;
        base;
      }
    in
    let r = X.explore ?metrics ~options ~rule ~n () in
    let detail name = Option.map (fun v -> name ^ ": " ^ v) in
    let v =
      {
        name = P.name;
        n;
        ic = r.X.ic_violation = None;
        tc = r.X.tc_violation = None;
        wt = r.X.wt_violation = None;
        st = r.X.st_violation = None;
        ht = r.X.ht_violation = None;
        rule_ok = r.X.rule_violation = None;
        validity_ok = r.X.validity_violation = None;
        all_states_safe = X.unsafe_states r = [];
        corollary6 = X.corollary6_holds r;
        configs = r.X.configs_visited;
        truncated = r.X.truncated;
        details =
          List.filter_map Fun.id
            [
              detail "IC" r.X.ic_violation;
              detail "TC" r.X.tc_violation;
              detail "WT" r.X.wt_violation;
              detail "ST" r.X.st_violation;
              detail "HT" r.X.ht_violation;
              detail "rule" r.X.rule_violation;
              detail "validity" r.X.validity_violation;
            ];
      }
    in
    (match (db, s0) with
    | Some db, Some s0 ->
      (* deadline-bounded sweeps are recorded (their edges are real)
         but their verdicts are not stored: the truncation point is
         wall-clock dependent *)
      if deadline = None then Db.put_fact db ~kind:"classify" ~key (verdict_to_fact v);
      merge_db_metrics db s0
    | _ -> ());
    v

let solves v (problem : Taxonomy.t) =
  let consistency_ok =
    match problem.Taxonomy.consistency with Taxonomy.IC -> v.ic | Taxonomy.TC -> v.tc
  in
  let termination_ok =
    match problem.Taxonomy.termination with
    | Taxonomy.WT -> v.wt
    | Taxonomy.ST -> v.st
    | Taxonomy.HT -> v.ht
  in
  consistency_ok && termination_ok && v.rule_ok && v.validity_ok

let best_problem v =
  let candidates =
    (* strongest first *)
    Taxonomy.
      [ make TC HT; make IC HT; make TC ST; make IC ST; make TC WT; make IC WT ]
  in
  List.find_opt (solves v) candidates

let pp ppf v =
  let b ppf x = Format.pp_print_string ppf (if x then "yes" else "NO") in
  Format.fprintf ppf
    "@[<v>%s (n=%d, %d configs%s)@,\
    \  IC=%a TC=%a  WT=%a ST=%a HT=%a  rule=%a validity=%a safe-states=%a cor6=%a@,\
    \  strongest problem solved: %s@]"
    v.name v.n v.configs
    (if v.truncated then ", truncated" else "")
    b v.ic b v.tc b v.wt b v.st b v.ht b v.rule_ok b v.validity_ok b v.all_states_safe
    b v.corollary6
    (match best_problem v with None -> "none" | Some p -> Taxonomy.short_name p)
