(** The interface every consensus protocol implements.

    A protocol is a deterministic automaton per processor, in the
    paper's Section 3 model: its state set is partitioned into
    receiving and sending states; in a sending step it emits at most
    one message ([send]); in a receiving step it consumes one incoming
    message or failure notice ([receive]).  The engine owns buffers,
    failure injection and scheduling; the protocol owns only local
    state (including its [UP] set, if it needs one). *)

module type S = sig
  type state
  (** Local processor state.  Must be an immutable value. *)

  type msg
  (** The protocol's message vocabulary. *)

  val name : string
  (** Short identifier, e.g. ["tree-wt-tc"]. *)

  val describe : string
  (** One-line description for CLI listings. *)

  val valid_n : int -> bool
  (** Which system sizes the protocol supports. *)

  val initial : n:int -> me:Proc_id.t -> input:bool -> state
  (** The state [z_v] for initial bit [v]. *)

  val step_kind : state -> Step_kind.t

  val send : n:int -> me:Proc_id.t -> state -> (Proc_id.t * msg) option * state
  (** Called only in [Sending] states: the message to emit (if any) and
      the successor state.  A protocol must never address [me]. *)

  val receive : n:int -> me:Proc_id.t -> state -> msg Incoming.t -> state
  (** Called only in [Receiving] states. *)

  val status : state -> Status.t

  val compare_state : state -> state -> int

  val hash_state : state -> int
  (** Must be consistent with {!compare_state}: states that compare
      equal hash equally.  Collisions only cost time (the hashed
      visited sets fall back to [compare_state]), but an inconsistent
      hash silently breaks deduplication.  States containing [Set.Make]
      sets must hash them canonically (e.g. {!Proc_id.set_hash}) —
      structurally equal trees of different shapes would otherwise hash
      differently.  Plain variant/record states can use
      [Hashtbl.hash]. *)

  val pp_state : Format.formatter -> state -> unit
  val compare_msg : msg -> msg -> int
  val pp_msg : Format.formatter -> msg -> unit
end

type 'msg packed_msg_ops = {
  cmp : 'msg -> 'msg -> int;
  pp : Format.formatter -> 'msg -> unit;
}
(** First-class message operations, occasionally useful for generic
    rendering code. *)
