(** Message identities.

    Following Section 3 of the paper, a message is represented for
    ordering purposes by the triple [(p, q, k)]: the [k]-th message
    sent from [p] to [q] ([k] counts from 1).  Communication patterns
    are partial orders over these triples. *)

type t = { sender : Proc_id.t; receiver : Proc_id.t; index : int }

val make : sender:Proc_id.t -> receiver:Proc_id.t -> index:int -> t
(** @raise Invalid_argument if [sender = receiver] or [index < 1]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Prints ["p0->p1#2"]. *)

val to_string : t -> string

val hash : t -> int
(** Consistent with {!equal}. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_hash : Set.t -> int
(** Canonical hash, consistent with [Set.compare]: folded over the
    in-order elements, independent of the internal tree shape. *)

val fp : t -> Patterns_stdx.Fingerprint.t
(** 64-bit fingerprint, consistent with {!equal} and — unlike the
    31-based {!hash}, which aliases [(p, q, k)] with [(p, q+1, k-31)]
    — injective over every triple a bounded run can produce. *)

(** Sets carrying their canonical 64-bit fingerprint, maintained
    incrementally on {!Fset.add}: the commutative
    {!Patterns_stdx.Fingerprint.combine} of the member fingerprints.
    Equal sets have equal fingerprints however they were built, so a
    configuration holding [Fset]s hashes its set components in O(1).
    [compare] short-circuits on physical equality, which interning
    makes the common case. *)
module Fset : sig
  type elt := t
  type t

  val empty : t
  val add : elt -> t -> t

  val add_new : elt -> t -> t
  (** [add] without the membership pre-check, for inserts the caller
      can prove fresh.  Inserting a present element would corrupt the
      multiset fingerprint. *)

  val mem : elt -> t -> bool
  val elements : t -> elt list
  val cardinal : t -> int
  val set : t -> Set.t
  val fp : t -> Patterns_stdx.Fingerprint.t
  val compare : t -> t -> int
  val equal : t -> t -> bool
end
