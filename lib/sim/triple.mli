(** Message identities.

    Following Section 3 of the paper, a message is represented for
    ordering purposes by the triple [(p, q, k)]: the [k]-th message
    sent from [p] to [q] ([k] counts from 1).  Communication patterns
    are partial orders over these triples. *)

type t = { sender : Proc_id.t; receiver : Proc_id.t; index : int }

val make : sender:Proc_id.t -> receiver:Proc_id.t -> index:int -> t
(** @raise Invalid_argument if [sender = receiver] or [index < 1]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Prints ["p0->p1#2"]. *)

val to_string : t -> string

val hash : t -> int
(** Consistent with {!equal}. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_hash : Set.t -> int
(** Canonical hash, consistent with [Set.compare]: folded over the
    in-order elements, independent of the internal tree shape. *)
