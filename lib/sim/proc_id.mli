(** Processor identifiers.

    Processors are named [p0 .. p(N-1)] as in the paper.  The type is
    transparently [int] so identifiers can index arrays directly. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Prints ["p3"]. *)

val to_string : t -> string

val all : n:int -> t list
(** [p0; ...; p(n-1)]. *)

val others : n:int -> t -> t list
(** All processors except the given one, ascending — the paper's
    [P - {p}]. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_list : t list -> Set.t
val pp_set : Format.formatter -> Set.t -> unit

val set_hash : Set.t -> int
(** Canonical hash, consistent with [Set.compare]: computed from the
    in-order elements, so equal sets hash equally regardless of the
    internal tree shape. *)
