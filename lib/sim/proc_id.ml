type t = int

let compare = Int.compare
let equal = Int.equal
let pp ppf p = Format.fprintf ppf "p%d" p
let to_string p = Printf.sprintf "p%d" p

let all ~n = List.init n Fun.id

let others ~n p = List.filter (fun q -> q <> p) (all ~n)

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let set_of_list = Set.of_list

let pp_set ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
    (Set.elements s)

let set_hash s = Set.fold (fun p acc -> (acc * 31) + p + 1) s 0
