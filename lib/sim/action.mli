(** Scheduler-visible atomic steps.

    These are the paper's events [(p, mu)]: a sending step
    ([mu = empty]), the delivery of one buffered item to a receiving
    processor ([mu] a message or failure notice), or a failure step
    ([mu = f]). *)

type t =
  | Send_step of Proc_id.t
      (** Let [p] take one sending step (emit at most one message). *)
  | Deliver of { at : Proc_id.t; index : int }
      (** Deliver the [index]-th item (0-based, arrival order) of
          [at]'s buffer. *)
  | Fail of Proc_id.t
      (** Fail-stop [p]; failure notices are broadcast to all peers. *)
  | Drop of { at : Proc_id.t; index : int }
      (** Receive omission: silently discard the [index]-th buffered
          item of [at]'s buffer (0-based, arrival order).  The item
          must be a message — failure notices are a modelling device,
          not network traffic, and cannot be dropped.  No failure
          notice is generated: omission faults are invisible to the
          survivors, which is exactly what makes them harder than
          fail-stop. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
