type kind = Crash | Drop | Send_omit

type t = { step : int; victim : Proc_id.t; kind : kind }

let kind_rank = function Crash -> 0 | Drop -> 1 | Send_omit -> 2

let kind_string = function
  | Crash -> "crash"
  | Drop -> "drop"
  | Send_omit -> "send-omit"

let kind_of_string = function
  | "crash" -> Some Crash
  | "drop" -> Some Drop
  | "send-omit" -> Some Send_omit
  | _ -> None

let compare_kind a b = Int.compare (kind_rank a) (kind_rank b)
let equal_kind a b = kind_rank a = kind_rank b

let compare a b =
  let c = Int.compare a.step b.step in
  if c <> 0 then c
  else
    let c = Proc_id.compare a.victim b.victim in
    if c <> 0 then c else compare_kind a.kind b.kind

let equal a b = compare a b = 0

let is_omission f = match f.kind with Crash -> false | Drop | Send_omit -> true

let pp ppf f =
  Format.fprintf ppf "%s@@%d(%a)" (kind_string f.kind) f.step Proc_id.pp f.victim
