type 'msg event =
  | Sent of { step : int; triple : Triple.t; payload : 'msg; causes : Triple.t list }
  | Null_step of { step : int; proc : Proc_id.t }
  | Delivered_msg of { step : int; triple : Triple.t; payload : 'msg }
  | Delivered_note of { step : int; at : Proc_id.t; about : Proc_id.t }
  | Dropped_msg of { step : int; triple : Triple.t; payload : 'msg }
  | Failed_proc of { step : int; proc : Proc_id.t }
  | Decided of { step : int; proc : Proc_id.t; decision : Decision.t }
  | Became_amnesic of { step : int; proc : Proc_id.t }
  | Halted of { step : int; proc : Proc_id.t }

type 'msg t = 'msg event list

let step_of = function
  | Sent { step; _ }
  | Null_step { step; _ }
  | Delivered_msg { step; _ }
  | Delivered_note { step; _ }
  | Dropped_msg { step; _ }
  | Failed_proc { step; _ }
  | Decided { step; _ }
  | Became_amnesic { step; _ }
  | Halted { step; _ } -> step

let proc_of = function
  | Sent { triple; _ } -> triple.Triple.sender
  | Null_step { proc; _ } -> proc
  | Delivered_msg { triple; _ } -> triple.Triple.receiver
  | Delivered_note { at; _ } -> at
  | Dropped_msg { triple; _ } -> triple.Triple.receiver
  | Failed_proc { proc; _ } -> proc
  | Decided { proc; _ } -> proc
  | Became_amnesic { proc; _ } -> proc
  | Halted { proc; _ } -> proc

let sends t =
  List.filter_map
    (function Sent { triple; payload; causes; _ } -> Some (triple, payload, causes) | _ -> None)
    t

let message_count t = List.length (sends t)

let decisions t =
  List.filter_map
    (function Decided { proc; decision; _ } -> Some (proc, decision) | _ -> None)
    t

let failures t = List.filter_map (function Failed_proc { proc; _ } -> Some proc | _ -> None) t

let drops t =
  List.filter_map (function Dropped_msg { triple; _ } -> Some triple | _ -> None) t

let drop_count t = List.length (drops t)

let steps_per_proc ~n t =
  let counts = Array.make n 0 in
  let bump p = counts.(p) <- counts.(p) + 1 in
  List.iter
    (function
      | Sent { triple; _ } -> bump triple.Triple.sender
      | Null_step { proc; _ } -> bump proc
      | Delivered_msg { triple; _ } -> bump triple.Triple.receiver
      | Delivered_note { at; _ } -> bump at
      | Dropped_msg _ | Failed_proc _ | Decided _ | Became_amnesic _ | Halted _ -> ())
    t;
  counts

let pp ~pp_msg ppf t =
  let pp_event ppf = function
    | Sent { step; triple; payload; _ } ->
      Format.fprintf ppf "%4d  send %a %a" step Triple.pp triple pp_msg payload
    | Null_step { step; proc } -> Format.fprintf ppf "%4d  step %a (no message)" step Proc_id.pp proc
    | Delivered_msg { step; triple; payload } ->
      Format.fprintf ppf "%4d  recv %a %a" step Triple.pp triple pp_msg payload
    | Delivered_note { step; at; about } ->
      Format.fprintf ppf "%4d  recv %a failed(%a)" step Proc_id.pp at Proc_id.pp about
    | Dropped_msg { step; triple; payload } ->
      Format.fprintf ppf "%4d  DROP %a %a" step Triple.pp triple pp_msg payload
    | Failed_proc { step; proc } -> Format.fprintf ppf "%4d  FAIL %a" step Proc_id.pp proc
    | Decided { step; proc; decision } ->
      Format.fprintf ppf "%4d  %a decides %a" step Proc_id.pp proc Decision.pp decision
    | Became_amnesic { step; proc } ->
      Format.fprintf ppf "%4d  %a becomes amnesic" step Proc_id.pp proc
    | Halted { step; proc } -> Format.fprintf ppf "%4d  %a halts" step Proc_id.pp proc
  in
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_event ppf t

let to_csv ~pp_msg t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "step,kind,proc,peer,index,payload\n";
  let escape s = String.map (fun c -> if c = ',' || c = '\n' then ';' else c) s in
  let row step kind proc peer index payload =
    Buffer.add_string buf
      (Printf.sprintf "%d,%s,%d,%s,%s,%s\n" step kind proc peer index (escape payload))
  in
  List.iter
    (fun ev ->
      match ev with
      | Sent { step; triple; payload; _ } ->
        row step "send" triple.Triple.sender
          (string_of_int triple.Triple.receiver)
          (string_of_int triple.Triple.index)
          (Format.asprintf "%a" pp_msg payload)
      | Null_step { step; proc } -> row step "null" proc "" "" ""
      | Delivered_msg { step; triple; payload } ->
        row step "recv" triple.Triple.receiver
          (string_of_int triple.Triple.sender)
          (string_of_int triple.Triple.index)
          (Format.asprintf "%a" pp_msg payload)
      | Delivered_note { step; at; about } -> row step "notice" at (string_of_int about) "" ""
      | Dropped_msg { step; triple; payload } ->
        row step "drop" triple.Triple.receiver
          (string_of_int triple.Triple.sender)
          (string_of_int triple.Triple.index)
          (Format.asprintf "%a" pp_msg payload)
      | Failed_proc { step; proc } -> row step "crash" proc "" "" ""
      | Decided { step; proc; decision } -> row step "decide" proc "" "" (Decision.to_string decision)
      | Became_amnesic { step; proc } -> row step "forget" proc "" "" ""
      | Halted { step; proc } -> row step "halt" proc "" "" "")
    t;
  Buffer.contents buf
