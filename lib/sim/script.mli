(** Replay scripts: protocol-independent scheduling directives.

    A directive names a scheduling decision without naming message
    payloads, so a script is a pure function of processor ids and
    per-pair message indices — serializable, protocol-independent, and
    replayable against any engine whose processors make the same
    decisions.  The violation certificates (see [Patterns_adversary])
    store their schedules in this vocabulary; {!of_trace} reads a
    script back off a recorded execution, giving exact deterministic
    replays of randomly scheduled runs. *)

type directive =
  | Step_of of Proc_id.t  (** one sending step of the processor *)
  | Deliver_from of Proc_id.t * Proc_id.t
      (** [Deliver_from (at, from)]: oldest buffered message from
          [from] *)
  | Deliver_msg of { at : Proc_id.t; from : Proc_id.t; index : int }
      (** the buffered message with triple [(from, at, index)] exactly
          — unlike {!Deliver_from} this can express out-of-order
          delivery within one sender, which is what a recorded random
          schedule needs for exact replay *)
  | Deliver_note of Proc_id.t * Proc_id.t
      (** [Deliver_note (at, about)]: the failure notice about
          [about] *)
  | Drop_msg of { at : Proc_id.t; from : Proc_id.t; index : int }
      (** receive omission: silently discard the buffered message with
          triple [(from, at, index)] instead of delivering it *)
  | Fail_now of Proc_id.t
  | Drain of Proc_id.t
      (** sending steps until the processor leaves its sending
          states *)
  | Flush_fifo  (** run the FIFO scheduler to quiescence *)

val pp : Format.formatter -> directive -> unit

val equal : directive -> directive -> bool

val of_trace : 'msg Trace.t -> directive list
(** Read the schedule back off a recorded execution: [Sent] and
    [Null_step] become {!Step_of} the sender, [Delivered_msg] becomes
    the exact {!Deliver_msg} triple, [Delivered_note] and
    [Failed_proc] map to their directives, and derived events
    ([Decided], [Became_amnesic], [Halted]) are skipped.  Playing the
    result from the same initial configuration reproduces the same
    trace (modulo derived-event steps), for any scheduler that
    produced it. *)

val to_json : directive -> Patterns_stdx.Json.t
(** One object per directive, tagged by an ["op"] field:
    [{"op": "step", "proc": 0}], [{"op": "deliver_msg", "at": 1,
    "from": 0, "index": 2}], and so on. *)

val of_json : Patterns_stdx.Json.t -> (directive, string) result
(** Inverse of {!to_json}; [Error] names the offending field or
    unknown ["op"]. *)
