module type S = sig
  type state
  type msg

  val name : string
  val describe : string
  val valid_n : int -> bool
  val initial : n:int -> me:Proc_id.t -> input:bool -> state
  val step_kind : state -> Step_kind.t
  val send : n:int -> me:Proc_id.t -> state -> (Proc_id.t * msg) option * state
  val receive : n:int -> me:Proc_id.t -> state -> msg Incoming.t -> state
  val status : state -> Status.t
  val compare_state : state -> state -> int
  val hash_state : state -> int
  val pp_state : Format.formatter -> state -> unit
  val compare_msg : msg -> msg -> int
  val pp_msg : Format.formatter -> msg -> unit
end

type 'msg packed_msg_ops = {
  cmp : 'msg -> 'msg -> int;
  pp : Format.formatter -> 'msg -> unit;
}
