open Patterns_stdx

module Make (P : Protocol.S) = struct
  type entry =
    | Note of Proc_id.t
    | Data of { triple : Triple.t; payload : P.msg }

  module Pair = struct
    type t = Triple.t * Triple.t

    let compare (a1, b1) (a2, b2) =
      let c = Triple.compare a1 a2 in
      if c <> 0 then c else Triple.compare b1 b2
  end

  module Pair_set = Set.Make (Pair)
  module F = Fingerprint

  (* Per-root mutable interning context: every knowledge/trips set
     constructed under one [init] is routed through this table, so
     structurally equal sets reached along different schedules are
     pointer-shared and their fingerprints are computed once.  The
     tables are shared by every configuration descended from one
     [init]; under the layer-synchronous parallel driver several
     domains expand such siblings at once, so every table access takes
     [lock].  Which physical representative wins a concurrent intern
     race is timing-dependent, but representatives are only ever used
     as a fast path for structural equality, so no observable result
     depends on the winner.

     [track = false] configurations ([init ~track_fingerprints:false],
     the default for {!run}) skip fingerprint maintenance and
     interning entirely: linear runs with no visited store attached —
     the randomized audits, the hunts — pay nothing for dedup
     machinery they never use.  Their fingerprints are computed by
     full folds on first demand and memoized. *)
  type ctx = {
    track : bool;
    lock : Mutex.t;
    sets : Triple.Fset.t Intern.t;
    states : P.state Intern.t;
    edge_sets : Pair_set.t Intern.t;
  }

  type config = {
    n : int;
    inputs : bool array;
    states : P.state array;
    (* state_fps.(p) = fp_state_at p (P.hash_state states.(p)) — the
       word [bfp] currently carries for p, cached so an update hashes
       only the one state that changed *)
    state_fps : F.t array;
    failed : bool array;
    buffers : entry list array;
    sent_count : int array;  (* flattened n*n: sender * n + receiver *)
    knowledge : Triple.Fset.t array;
    edges : Pair_set.t;
    (* commutative fingerprint of [edges] alone: the intern key for the
       edge set and the edge half of the terminal pattern identity.
       Maintained eagerly under a tracking [ctx] (the intern table
       needs it on every send); stale under an untracked one until
       [ensure_efp] recomputes it by a full fold on first demand
       ([efp_valid] says which) — linear runs that never ask for a
       pattern identity pay nothing for it. *)
    mutable efp : F.t;
    mutable efp_valid : bool;
    trips : Triple.Fset.t;
    (* behavioral fingerprint (n, inputs, states, failed, buffers) and
       pattern-bookkeeping fingerprint (sent counts, knowledge, edges,
       trips).  Maintained incrementally by [apply] under a tracking
       [ctx]; otherwise stale until [ensure_fps] memoizes the full
       folds on first demand ([fps_valid] says which). *)
    mutable bfp : F.t;
    mutable pfp : F.t;
    mutable fps_valid : bool;
    ctx : ctx;
  }

  (* ----- canonical fingerprints -----

     The fingerprint of a configuration is a commutative
     [Fingerprint.combine] (addition mod 2^64) of one contribution per
     independent fact: "processor [i] is in state [s]", "the buffer at
     [p] holds entry [e]", "the (sender, receiver) pair [idx] has sent
     [c] messages", and so on.  Each contribution is tagged with its
     field kind and key and passed through the SplitMix64 finalizer,
     so the sum is canonical — equal configurations have equal
     fingerprints however they were reached — and invertible, so
     [apply_exn] maintains it in O(1) per delta by subtracting the old
     contribution and adding the new one.  Contributions split into a
     behavioral sum [bfp] and a pattern-bookkeeping sum [pfp]: the
     former is the canonical hash for {!compare_behavioral}, their
     combination for {!compare_config}. *)

  let tag_n = 0x01
  and tag_input = 0x02
  and tag_state = 0x03
  and tag_failed = 0x04
  and tag_note = 0x05
  and tag_data = 0x06
  and tag_sent = 0x07
  and tag_know = 0x08
  and tag_edge = 0x09
  and tag_trip = 0x0a

  let fp_n n = F.feed (F.feed F.seed tag_n) n
  let fp_input i b = F.feed_bool (F.feed (F.feed F.seed tag_input) i) b
  let fp_state_at i h = F.feed (F.feed (F.feed F.seed tag_state) i) h
  let fp_failed_at i = F.feed (F.feed F.seed tag_failed) i

  let fp_entry p = function
    | Note q -> F.feed (F.feed (F.feed F.seed tag_note) p) q
    | Data { triple; payload } ->
      F.feed (F.feed (F.feed (F.feed F.seed tag_data) p) (Triple.fp triple)) (Hashtbl.hash payload)

  (* zero-count cells contribute nothing, so the n*n array is never
     walked on an update *)
  let fp_sent_at idx c = if c = 0 then F.zero else F.feed (F.feed (F.feed F.seed tag_sent) idx) c
  let fp_know_at p tr = F.feed (F.feed (F.feed F.seed tag_know) p) (Triple.fp tr)
  let fp_edge m1 m2 = F.feed (F.feed (F.feed F.seed tag_edge) (Triple.fp m1)) (Triple.fp m2)
  let fp_trip tr = F.feed (F.feed F.seed tag_trip) (Triple.fp tr)

  (* Full folds, used at [init] and by the consistency test suite;
     the hot path never calls these.  Note the explicit element-wise
     folds over [inputs], [failed] and [sent_count] — [Hashtbl.hash]
     samples only a bounded prefix of a structure, so hashing large
     arrays with it silently collides. *)
  let scratch_bfp ~n ~inputs ~states ~failed ~buffers =
    let acc = ref (fp_n n) in
    Array.iteri (fun i b -> acc := F.combine !acc (fp_input i b)) inputs;
    Array.iteri (fun i s -> acc := F.combine !acc (fp_state_at i (P.hash_state s))) states;
    Array.iteri (fun i f -> if f then acc := F.combine !acc (fp_failed_at i)) failed;
    Array.iteri
      (fun p buf -> List.iter (fun e -> acc := F.combine !acc (fp_entry p e)) buf)
      buffers;
    !acc

  let scratch_pfp ~sent_count ~knowledge ~edges ~trips =
    let acc = ref F.zero in
    Array.iteri (fun idx c -> acc := F.combine !acc (fp_sent_at idx c)) sent_count;
    Array.iteri
      (fun p ks ->
        List.iter (fun tr -> acc := F.combine !acc (fp_know_at p tr)) (Triple.Fset.elements ks))
      knowledge;
    Pair_set.iter (fun (a, b) -> acc := F.combine !acc (fp_edge a b)) edges;
    List.iter (fun tr -> acc := F.combine !acc (fp_trip tr)) (Triple.Fset.elements trips);
    !acc

  let init_with ~track_fingerprints ~n ~inputs =
    if not (P.valid_n n) then
      invalid_arg (Printf.sprintf "Engine.init: protocol %s does not support n = %d" P.name n);
    if List.length inputs <> n then
      invalid_arg "Engine.init: inputs length must equal n";
    let inputs = Array.of_list inputs in
    let states = Array.init n (fun i -> P.initial ~n ~me:i ~input:inputs.(i)) in
    Array.iteri
      (fun i s ->
        let st = P.status s in
        if st.Status.decision <> None || st.Status.amnesic || st.Status.halted then
          invalid_arg
            (Printf.sprintf
               "Engine.init: protocol %s starts p%d outside the initial states z_0/z_1" P.name i))
      states;
    let failed = Array.make n false in
    let buffers = Array.make n [] in
    let state_fps =
      if track_fingerprints then
        Array.init n (fun i -> fp_state_at i (P.hash_state states.(i)))
      else Array.make n F.zero
    in
    {
      n;
      inputs;
      states;
      state_fps;
      failed;
      buffers;
      sent_count = Array.make (n * n) 0;
      knowledge = Array.make n Triple.Fset.empty;
      edges = Pair_set.empty;
      efp = F.zero;
      efp_valid = true;
      trips = Triple.Fset.empty;
      bfp = (if track_fingerprints then scratch_bfp ~n ~inputs ~states ~failed ~buffers else F.zero);
      pfp = F.zero;
      fps_valid = track_fingerprints;
      ctx =
        {
          track = track_fingerprints;
          lock = Mutex.create ();
          sets = Intern.create ~equal:Triple.Fset.equal ();
          states = Intern.create ~equal:(fun a b -> P.compare_state a b = 0) ();
          edge_sets = Intern.create ~equal:Pair_set.equal ();
        };
    }

  let init ~n ~inputs = init_with ~track_fingerprints:true ~n ~inputs
  let init_untracked ~n ~inputs = init_with ~track_fingerprints:false ~n ~inputs

  let n_of c = c.n
  let inputs_of c = Array.copy c.inputs
  let state_of c p = c.states.(p)
  let states_of c = Array.copy c.states
  let buffer_of c p = c.buffers.(p)
  let is_failed c p = c.failed.(p)
  let status_of c p = P.status c.states.(p)
  let statuses c = Array.map P.status c.states

  let decisions_of c =
    List.filter_map
      (fun p ->
        match (P.status c.states.(p)).Status.decision with
        | Some d -> Some (p, d)
        | None -> None)
      (Proc_id.all ~n:c.n)

  let pattern_edges c = Pair_set.elements c.edges

  (* Lazy fallback for untracked configurations, mirroring
     [ensure_fps] below: the full fold over the edge set runs on first
     demand and memoizes in place.  Tracked configurations always have
     [efp_valid] (the intern table needs the key eagerly) and are
     never mutated here, so sharing across domains is safe. *)
  let ensure_efp c =
    if not c.efp_valid then begin
      let acc = ref F.zero in
      Pair_set.iter (fun (a, b) -> acc := F.combine !acc (fp_edge a b)) c.edges;
      c.efp <- !acc;
      c.efp_valid <- true
    end;
    c.efp

  (* pattern identity without extraction: the fingerprint covers the
     triples and edges alone, and because both components are interned
     per root, structurally equal pairs are physically equal — so a
     caller can dedup terminal patterns before paying for
     [Pattern.make] *)
  let pattern_fp c = F.combine (Triple.Fset.fp c.trips) (ensure_efp c)
  let same_pattern_rep a b = a.trips == b.trips && a.edges == b.edges
  let triples_of c = Triple.Fset.elements c.trips

  let compare_entry a b =
    match (a, b) with
    | Note p, Note q -> Proc_id.compare p q
    | Note _, Data _ -> -1
    | Data _, Note _ -> 1
    | Data a, Data b ->
      let c = Triple.compare a.triple b.triple in
      if c <> 0 then c else P.compare_msg a.payload b.payload

  (* order differences between structurally equal multisets are rare,
     so try the raw order-sensitive comparison first and only pay for
     the two sorts when it disagrees *)
  let compare_buffer a b =
    if a == b then 0
    else if List.compare compare_entry a b = 0 then 0
    else List.compare compare_entry (List.sort compare_entry a) (List.sort compare_entry b)

  (* Sibling configurations share the array cells [apply_exn] did not
     touch, so a physical-equality check per element short-circuits
     most comparisons between related configurations. *)
  let compare_arrays cmp a b =
    let c = Int.compare (Array.length a) (Array.length b) in
    if c <> 0 then c
    else
      let rec loop i =
        if i = Array.length a then 0
        else
          let x = a.(i) and y = b.(i) in
          let c = if x == y then 0 else cmp x y in
          if c <> 0 then c else loop (i + 1)
      in
      loop 0

  (* Monomorphic scans: [Stdlib.compare] on arrays dispatches through
     the polymorphic comparator word by word, which shows up in the
     dedup-confirmation profile. *)
  let compare_int_array (a : int array) (b : int array) =
    let c = Int.compare (Array.length a) (Array.length b) in
    if c <> 0 then c
    else
      let rec loop i =
        if i = Array.length a then 0
        else
          let c = Int.compare a.(i) b.(i) in
          if c <> 0 then c else loop (i + 1)
      in
      loop 0

  let compare_bool_array (a : bool array) (b : bool array) =
    let c = Int.compare (Array.length a) (Array.length b) in
    if c <> 0 then c
    else
      let rec loop i =
        if i = Array.length a then 0
        else
          let c = Bool.compare a.(i) b.(i) in
          if c <> 0 then c else loop (i + 1)
      in
      loop 0

  let compare_behavioral a b =
    if a == b then 0
    else
      let c = Int.compare a.n b.n in
      if c <> 0 then c
      else
        let c = compare_bool_array a.inputs b.inputs in
        if c <> 0 then c
        else
          let c = compare_arrays P.compare_state a.states b.states in
          if c <> 0 then c
          else
            let c = compare_bool_array a.failed b.failed in
            if c <> 0 then c else compare_arrays compare_buffer a.buffers b.buffers

  let compare_config a b =
    if a == b then 0
    else
      let c = compare_behavioral a b in
      if c <> 0 then c
      else
        let c = compare_int_array a.sent_count b.sent_count in
        if c <> 0 then c
        else
          let c = compare_arrays Triple.Fset.compare a.knowledge b.knowledge in
          if c <> 0 then c
          else
            let c = if a.edges == b.edges then 0 else Pair_set.compare a.edges b.edges in
            if c <> 0 then c else Triple.Fset.compare a.trips b.trips

  (* Lazy fallback for untracked configurations: the full folds run on
     the first probe and the result is memoized in place.  Untracked
     configurations live inside linear single-domain runs, so the
     mutation is unshared; tracked configurations are always valid and
     never mutated here. *)
  let ensure_fps c =
    if not c.fps_valid then begin
      c.bfp <-
        scratch_bfp ~n:c.n ~inputs:c.inputs ~states:c.states ~failed:c.failed
          ~buffers:c.buffers;
      c.pfp <-
        scratch_pfp ~sent_count:c.sent_count ~knowledge:c.knowledge ~edges:c.edges
          ~trips:c.trips;
      c.fps_valid <- true
    end

  let fingerprint c =
    ensure_fps c;
    F.combine c.bfp c.pfp

  let behavioral_fingerprint c =
    ensure_fps c;
    c.bfp

  let fingerprint_from_scratch c =
    F.combine
      (scratch_bfp ~n:c.n ~inputs:c.inputs ~states:c.states ~failed:c.failed ~buffers:c.buffers)
      (scratch_pfp ~sent_count:c.sent_count ~knowledge:c.knowledge ~edges:c.edges ~trips:c.trips)

  let intern_bindings c =
    Intern.bindings c.ctx.sets + Intern.bindings c.ctx.states
    + Intern.bindings c.ctx.edge_sets
  let hash_behavioral c = F.to_int (behavioral_fingerprint c)
  let hash_config c = F.to_int (fingerprint c)

  let pp_entry ppf = function
    | Note p -> Format.fprintf ppf "failed(%a)" Proc_id.pp p
    | Data { triple; payload } -> Format.fprintf ppf "%a:%a" Triple.pp triple P.pp_msg payload

  let pp_config ppf c =
    Format.fprintf ppf "@[<v>";
    for p = 0 to c.n - 1 do
      Format.fprintf ppf "%a%s: %a  [%a]  buf=[%a]@,"
        Proc_id.pp p
        (if c.failed.(p) then "(failed)" else "")
        P.pp_state c.states.(p) Status.pp (P.status c.states.(p))
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_entry)
        c.buffers.(p)
    done;
    Format.fprintf ppf "@]"

  (* ----- applicability ----- *)

  let proc_actions ~fifo_notices c p =
    if c.failed.(p) then []
    else
      match P.step_kind c.states.(p) with
      | Step_kind.Quiescent -> []
      | Step_kind.Sending -> [ Action.Send_step p ]
      | Step_kind.Receiving ->
        let buffer = c.buffers.(p) in
        let data_from q =
          List.exists
            (function Data { triple; _ } -> Proc_id.equal triple.Triple.sender q | Note _ -> false)
            buffer
        in
        List.concat
          (List.mapi
             (fun index e ->
               match e with
               | Data _ -> [ Action.Deliver { at = p; index } ]
               | Note q ->
                 if fifo_notices && data_from q then [] else [ Action.Deliver { at = p; index } ])
             buffer)

  let applicable ?(fifo_notices = false) c =
    List.concat_map (proc_actions ~fifo_notices c) (Proc_id.all ~n:c.n)

  let failure_actions c =
    List.filter_map
      (fun p -> if c.failed.(p) then None else Some (Action.Fail p))
      (Proc_id.all ~n:c.n)

  let quiescent c = applicable c = []

  (* ----- transitions ----- *)

  let status_events ~step p before after =
    let evs = ref [] in
    (match (before.Status.decision, after.Status.decision) with
    | None, Some d when not before.Status.amnesic ->
      evs := Trace.Decided { step; proc = p; decision = d } :: !evs
    | _ -> ());
    if (not before.Status.amnesic) && after.Status.amnesic then
      evs := Trace.Became_amnesic { step; proc = p } :: !evs;
    if (not before.Status.halted) && after.Status.halted then
      evs := Trace.Halted { step; proc = p } :: !evs;
    List.rev !evs

  let check_transition p before after =
    if Status.transition_ok before after then Ok ()
    else
      Error
        (Format.asprintf "protocol %s violated a status invariant at %a: %a -> %a" P.name
           Proc_id.pp p Status.pp before Status.pp after)

  let ( let* ) = Result.bind

  let locked c f =
    Mutex.lock c.ctx.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock c.ctx.lock) f

  (* route a freshly built set through the per-root intern table:
     schedules that reassemble the same set share one physical copy *)
  let interned c fs =
    if not c.ctx.track then fs
    else locked c (fun () -> Intern.intern c.ctx.sets ~fp:(Triple.Fset.fp fs) fs)

  (* hash-consed protocol states: schedules that drive a processor to
     the same local state share one physical copy, so the
     physical-equality fast path in [compare_arrays] settles almost
     every dedup confirmation without calling [P.compare_state].  The
     intern key reuses the [P.hash_state] word the fingerprint update
     needs anyway. *)
  let interned_state c ~h st =
    locked c (fun () -> Intern.intern c.ctx.states ~fp:(F.of_int h) st)

  let apply_send ~step c p =
    let before = P.status c.states.(p) in
    let outgoing, state' = P.send ~n:c.n ~me:p c.states.(p) in
    let after = P.status state' in
    let* () = check_transition p before after in
    let track = c.ctx.track in
    let states = Array.copy c.states in
    let state_fps = if track then Array.copy c.state_fps else c.state_fps in
    let bfp =
      if track then begin
        let h' = P.hash_state state' in
        let word = fp_state_at p h' in
        let b = F.combine (F.remove c.bfp state_fps.(p)) word in
        state_fps.(p) <- word;
        states.(p) <- interned_state c ~h:h' state';
        b
      end
      else begin
        states.(p) <- state';
        F.zero
      end
    in
    let flips = status_events ~step p before after in
    match outgoing with
    | None ->
      Ok
        ( { c with states; state_fps; bfp; fps_valid = track },
          Trace.Null_step { step; proc = p } :: flips )
    | Some (dst, payload) ->
      if Proc_id.equal dst p then
        Error (Printf.sprintf "protocol %s: %s tried to send to itself" P.name (Proc_id.to_string p))
      else if dst < 0 || dst >= c.n then
        Error (Printf.sprintf "protocol %s: destination p%d out of range" P.name dst)
      else begin
        let idx = (p * c.n) + dst in
        let sent_count = Array.copy c.sent_count in
        let old_count = sent_count.(idx) in
        sent_count.(idx) <- old_count + 1;
        let triple = Triple.make ~sender:p ~receiver:dst ~index:sent_count.(idx) in
        let causes = Triple.Fset.elements c.knowledge.(p) in
        let knowledge = Array.copy c.knowledge in
        (* the triple's index was just minted, so every add below is a
           real insertion and contributes to the fingerprint exactly once *)
        knowledge.(p) <- interned c (Triple.Fset.add_new triple knowledge.(p));
        let edges =
          List.fold_left (fun acc m1 -> Pair_set.add (m1, triple) acc) c.edges causes
        in
        (* [efp] is maintained eagerly only under tracking, where it is
           the intern key and feeds the [pfp] delta; untracked
           descendants mark it stale and [ensure_efp] recomputes on
           demand — hunts that never read a pattern identity skip one
           [fp_edge] per cause per send *)
        let efp, efp_valid =
          if track then
            (List.fold_left (fun h m1 -> F.combine h (fp_edge m1 triple)) c.efp causes, true)
          else (F.zero, false)
        in
        let edges =
          if track then locked c (fun () -> Intern.intern c.ctx.edge_sets ~fp:efp edges)
          else edges
        in
        let entry = Data { triple; payload } in
        let buffers = Array.copy c.buffers in
        buffers.(dst) <- buffers.(dst) @ [ entry ];
        let bfp, pfp =
          if track then begin
            let bfp = F.combine bfp (fp_entry dst entry) in
            let pfp =
              F.combine
                (F.remove c.pfp (fp_sent_at idx old_count))
                (fp_sent_at idx (old_count + 1))
            in
            let pfp = F.combine pfp (fp_know_at p triple) in
            let pfp = F.combine pfp (F.remove efp c.efp) in
            let pfp = F.combine pfp (fp_trip triple) in
            (bfp, pfp)
          end
          else (F.zero, F.zero)
        in
        let c' =
          { c with states; state_fps; sent_count; knowledge; edges; efp; efp_valid; buffers;
            trips = interned c (Triple.Fset.add_new triple c.trips); bfp; pfp;
            fps_valid = track }
        in
        Ok (c', Trace.Sent { step; triple; payload; causes } :: flips)
      end

  let apply_deliver ~step c p index =
    match List.nth_opt c.buffers.(p) index with
    | None -> Error (Printf.sprintf "deliver: no buffer entry #%d at p%d" index p)
    | Some entry ->
      let incoming, delivered_event, knowledge, know_delta =
        match entry with
        | Note about ->
          ( Incoming.Failed about,
            Trace.Delivered_note { step; at = p; about },
            c.knowledge,
            F.zero )
        | Data { triple; payload } ->
          let knowledge = Array.copy c.knowledge in
          (* the triple was sent to [p] exactly once and [p] is not its
             sender, so this is a real insertion *)
          knowledge.(p) <- interned c (Triple.Fset.add_new triple knowledge.(p));
          ( Incoming.Msg { from = triple.Triple.sender; payload },
            Trace.Delivered_msg { step; triple; payload },
            knowledge,
            fp_know_at p triple )
      in
      let before = P.status c.states.(p) in
      let state' = P.receive ~n:c.n ~me:p c.states.(p) incoming in
      let after = P.status state' in
      let* () = check_transition p before after in
      let track = c.ctx.track in
      let states = Array.copy c.states in
      let state_fps = if track then Array.copy c.state_fps else c.state_fps in
      let bfp, pfp =
        if track then begin
          let h' = P.hash_state state' in
          let word = fp_state_at p h' in
          let bfp = F.combine (F.remove c.bfp state_fps.(p)) word in
          state_fps.(p) <- word;
          let bfp = F.remove bfp (fp_entry p entry) in
          states.(p) <- interned_state c ~h:h' state';
          (bfp, F.combine c.pfp know_delta)
        end
        else begin
          states.(p) <- state';
          (F.zero, F.zero)
        end
      in
      let buffers = Array.copy c.buffers in
      buffers.(p) <- List.filteri (fun i _ -> i <> index) buffers.(p);
      let flips = status_events ~step p before after in
      Ok
        ( { c with states; state_fps; buffers; knowledge; bfp; pfp; fps_valid = track },
          delivered_event :: flips )

  let apply_fail ~step c p =
    if c.failed.(p) then Error (Printf.sprintf "fail: p%d has already failed" p)
    else begin
      let track = c.ctx.track in
      let failed = Array.copy c.failed in
      failed.(p) <- true;
      let buffers = Array.copy c.buffers in
      let bfp =
        List.fold_left
          (fun h q ->
            buffers.(q) <- buffers.(q) @ [ Note p ];
            if track then F.combine h (fp_entry q (Note p)) else h)
          (if track then F.combine c.bfp (fp_failed_at p) else F.zero)
          (Proc_id.others ~n:c.n p)
      in
      Ok
        ( { c with failed; buffers; bfp; fps_valid = track },
          [ Trace.Failed_proc { step; proc = p } ] )
    end

  (* Receive omission: the entry vanishes from the buffer with no
     other effect — no state change, no knowledge, no notice.  The
     behavioral delta is the exact inverse of the buffer-append half
     of [apply_send], so the incremental fingerprint invariants carry
     over unchanged.  Failure notices cannot be dropped (they are a
     modelling device, not network traffic), and a failed receiver is
     fine: the drop is a network event, not a step of the victim. *)
  let apply_drop ~step c p index =
    match List.nth_opt c.buffers.(p) index with
    | None -> Error (Printf.sprintf "drop: no buffer entry #%d at p%d" index p)
    | Some (Note _) -> Error (Printf.sprintf "drop: entry #%d at p%d is a failure notice" index p)
    | Some (Data { triple; payload } as entry) ->
      let track = c.ctx.track in
      let buffers = Array.copy c.buffers in
      buffers.(p) <- List.filteri (fun i _ -> i <> index) buffers.(p);
      let bfp = if track then F.remove c.bfp (fp_entry p entry) else F.zero in
      Ok
        ( { c with buffers; bfp; fps_valid = track },
          [ Trace.Dropped_msg { step; triple; payload } ] )

  let apply ~step c action =
    match action with
    | Action.Send_step p ->
      if p < 0 || p >= c.n then Error (Printf.sprintf "send: p%d out of range" p)
      else if c.failed.(p) then Error (Printf.sprintf "send: p%d has failed" p)
      else if not (Step_kind.equal (P.step_kind c.states.(p)) Step_kind.Sending) then
        Error (Printf.sprintf "send: p%d is not in a sending state" p)
      else apply_send ~step c p
    | Action.Deliver { at; index } ->
      if at < 0 || at >= c.n then Error (Printf.sprintf "deliver: p%d out of range" at)
      else if c.failed.(at) then Error (Printf.sprintf "deliver: p%d has failed" at)
      else if not (Step_kind.equal (P.step_kind c.states.(at)) Step_kind.Receiving) then
        Error (Printf.sprintf "deliver: p%d is not in a receiving state" at)
      else apply_deliver ~step c at index
    | Action.Fail p ->
      if p < 0 || p >= c.n then Error (Printf.sprintf "fail: p%d out of range" p)
      else apply_fail ~step c p
    | Action.Drop { at; index } ->
      if at < 0 || at >= c.n then Error (Printf.sprintf "drop: p%d out of range" at)
      else apply_drop ~step c at index

  let apply_exn ~step c action =
    match apply ~step c action with
    | Ok r -> r
    | Error e -> failwith (Format.asprintf "Engine.apply %a: %s" Action.pp action e)

  (* ----- schedulers ----- *)

  type scheduler = step:int -> config -> Action.t list -> Action.t option

  let fifo_scheduler ~step:_ _c = function [] -> None | a :: _ -> Some a

  let round_robin_scheduler ~step c actions =
    match actions with
    | [] -> None
    | _ ->
      let start = step mod c.n in
      let pid = function
        | Action.Send_step p | Action.Deliver { at = p; _ } | Action.Fail p
        | Action.Drop { at = p; _ } -> p
      in
      let rotated p = (p - start + c.n) mod c.n in
      let best =
        List.fold_left
          (fun acc a ->
            match acc with
            | None -> Some a
            | Some b -> if rotated (pid a) < rotated (pid b) then Some a else Some b)
          None actions
      in
      best

  let random_scheduler prng ~step:_ _c = function
    | [] -> None
    | actions -> Some (Prng.pick prng actions)

  let notice_first_scheduler prng ~step:_ c actions =
    match actions with
    | [] -> None
    | _ ->
      let is_notice = function
        | Action.Deliver { at; index } -> (
          match List.nth_opt c.buffers.(at) index with
          | Some (Note _) -> true
          | Some (Data _) | None -> false)
        | Action.Send_step _ | Action.Fail _ | Action.Drop _ -> false
      in
      let notices = List.filter is_notice actions in
      Some (Prng.pick prng (if notices = [] then actions else notices))

  let lifo_scheduler ~step:_ _c actions =
    match List.rev actions with [] -> None | a :: _ -> Some a

  type run_result = {
    final : config;
    trace : P.msg Trace.t;
    steps : int;
    quiescent : bool;
  }

  (* The one run loop, shared by {!run}, {!run_prefix} and {!resume}:
     the order of the guards (step cap, pending failure, pending drop,
     the scheduler) is the observable semantics, so factoring it out
     is what makes a resumed run provably identical to a fresh one.
     [snap] is invoked once per loop entry with the configuration and
     reversed trace {e before} the step is taken — successive reversed
     traces share their tails, so recording every boundary is O(steps)
     extra memory, not O(steps^2).

     [faults0] carries the omission faults ({!Fault.Drop},
     {!Fault.Send_omit}); crashes stay in the [(step, victim)] list so
     the fail-stop path is bit-identical to what it always was.  A due
     [Drop] fires as soon as its victim holds a buffered message
     (consuming the oldest one); a due [Send_omit] piggybacks on the
     victim's next sending step that actually emits, discarding the
     freshly buffered copy in the same loop iteration.  Faults are
     one-shot: each list element fires at most once. *)
  let remove_one f faults =
    let rec go acc = function
      | [] -> List.rev acc
      | g :: rest -> if Fault.equal f g then List.rev_append acc rest else go (g :: acc) rest
    in
    go [] faults

  let first_data_index buffer =
    Listx.find_index (function Data _ -> true | Note _ -> false) buffer

  let run_loop ~max_steps ~fifo_notices ~scheduler ~snap c0 step0 rev_trace0 failures0
      faults0 =
    let due_drop c step faults =
      List.find_opt
        (fun (f : Fault.t) ->
          (match f.Fault.kind with Fault.Drop -> true | Fault.Crash | Fault.Send_omit -> false)
          && f.Fault.step <= step
          && first_data_index c.buffers.(f.Fault.victim) <> None)
        faults
    in
    let rec loop c step rev_trace pending_failures pending_faults =
      (match snap with Some f -> f c rev_trace | None -> ());
      if step >= max_steps then
        { final = c; trace = List.rev rev_trace; steps = step; quiescent = false }
      else
        match
          List.find_opt (fun (k, p) -> k <= step && not (is_failed c p)) pending_failures
        with
        | Some (_, p) ->
          let c', evs = apply_exn ~step c (Action.Fail p) in
          loop c' (step + 1) (List.rev_append evs rev_trace)
            (List.filter (fun (_, q) -> q <> p) pending_failures)
            pending_faults
        | None -> (
          match due_drop c step pending_faults with
          | Some f ->
            let index =
              match first_data_index c.buffers.(f.Fault.victim) with
              | Some i -> i
              | None -> assert false
            in
            let c', evs = apply_exn ~step c (Action.Drop { at = f.Fault.victim; index }) in
            loop c' (step + 1) (List.rev_append evs rev_trace) pending_failures
              (remove_one f pending_faults)
          | None -> (
            let actions = applicable ~fifo_notices c in
            match scheduler ~step c actions with
            | None ->
              { final = c; trace = List.rev rev_trace; steps = step; quiescent = actions = [] }
            | Some a ->
              let c', evs = apply_exn ~step c a in
              let c', evs, pending_faults =
                match a with
                | Action.Send_step p -> (
                  let sent_to =
                    List.find_map
                      (function
                        | Trace.Sent { triple; _ } -> Some triple.Triple.receiver
                        | _ -> None)
                      evs
                  in
                  let omit =
                    List.find_opt
                      (fun (f : Fault.t) ->
                        (match f.Fault.kind with
                        | Fault.Send_omit -> true
                        | Fault.Crash | Fault.Drop -> false)
                        && f.Fault.step <= step
                        && Proc_id.equal f.Fault.victim p)
                      pending_faults
                  in
                  match (sent_to, omit) with
                  | Some dst, Some f ->
                    let index = List.length c'.buffers.(dst) - 1 in
                    let c'', evs' = apply_exn ~step c' (Action.Drop { at = dst; index }) in
                    (c'', evs @ evs', remove_one f pending_faults)
                  | _ -> (c', evs, pending_faults))
                | Action.Deliver _ | Action.Fail _ | Action.Drop _ ->
                  (c', evs, pending_faults)
              in
              loop c' (step + 1) (List.rev_append evs rev_trace) pending_failures
                pending_faults))
    in
    loop c0 step0 rev_trace0 failures0 faults0

  (* Linear runs attach no visited store, so by default they carry
     untracked configurations: no hashing, no fingerprint deltas, no
     interning — the fingerprints are recomputed lazily in the
     (unusual) case someone probes the final configuration. *)
  (* A [Fault.Crash] passed via [faults] joins the [(step, victim)]
     crash list, so the two entry points cannot disagree on fail-stop
     semantics; omission faults stay in their own pending list. *)
  let split_faults faults =
    List.partition_map
      (fun (f : Fault.t) ->
        match f.Fault.kind with
        | Fault.Crash -> Left (f.Fault.step, f.Fault.victim)
        | Fault.Drop | Fault.Send_omit -> Right f)
      faults

  let run ?(track_fingerprints = false) ?(max_steps = 100_000) ?(failures = [])
      ?(faults = []) ?(fifo_notices = false) ~scheduler ~n ~inputs () =
    let crash_faults, omission_faults = split_faults faults in
    run_loop ~max_steps ~fifo_notices ~scheduler ~snap:None
      (init_with ~track_fingerprints ~n ~inputs)
      0 []
      (failures @ crash_faults)
      omission_faults

  (* ----- memoized failure-free prefixes -----

     A systematic fault plan's run equals the failure-free run of the
     same (scheduler, inputs) up to the plan's earliest crash step:
     the run loop fires no failure while every pending (k, p) has
     k > step, and the schedulers used by the systematic adversary are
     pure functions of (step, config, actions).  So the failure-free
     run can be computed once per (scheduler, inputs), its per-step
     configurations recorded, and every plan resumed from the snapshot
     at its earliest crash step — or answered outright when all its
     crashes land past the failure-free run's end (a run that stopped
     at step q with no failure at k <= q never fires one at k > q). *)

  type prefix = {
    (* snapshots.(s) = (configuration entering step s, reversed trace
       so far); length [ff.steps + 1], index [ff.steps] is the final
       state *)
    snapshots : (config * P.msg Trace.event list) array;
    ff : run_result;  (* the failure-free run itself *)
  }

  let run_prefix ?(max_steps = 100_000) ?(fifo_notices = false) ~scheduler ~n ~inputs ()
      =
    let snaps = ref [] in
    let snap c rev_trace = snaps := (c, rev_trace) :: !snaps in
    let ff =
      run_loop ~max_steps ~fifo_notices ~scheduler ~snap:(Some snap)
        (init_with ~track_fingerprints:false ~n ~inputs)
        0 [] [] []
    in
    { snapshots = Array.of_list (List.rev !snaps); ff }

  let prefix_result prefix = prefix.ff

  (* [resume] must be given the same [max_steps], [fifo_notices] and
     [scheduler] the prefix was recorded under; the result is then
     bit-identical to [run ~failures] (pinned by the adversary's
     memo-vs-replay tests).  The returned number is the resume step —
     engine steps answered from the memo instead of re-executed. *)
  let resume ?(max_steps = 100_000) ?(fifo_notices = false) ~scheduler ~failures
      ?(faults = []) ~prefix () =
    let crash_faults, omission_faults = split_faults faults in
    let failures = failures @ crash_faults in
    let q = prefix.ff.steps in
    let min_k = List.fold_left (fun acc (k, _) -> min acc k) max_int failures in
    let min_k =
      List.fold_left (fun acc (f : Fault.t) -> min acc f.Fault.step) min_k omission_faults
    in
    (* a drop pending at step k cannot fire before k, and a send-omit
       cannot either, so the run equals the failure-free prefix up to
       the earliest fault step — the memo argument is unchanged *)
    if min_k > q then (prefix.ff, q)
    else
      let c, rev_trace = prefix.snapshots.(min_k) in
      ( run_loop ~max_steps ~fifo_notices ~scheduler ~snap:None c min_k rev_trace failures
          omission_faults,
        min_k )

  (* ----- frozen configurations -----

     A [config] carries its per-root interning context, and the
     context holds a [Mutex.t] — so configurations cannot be
     marshalled as they are.  A [frozen] is the context-free part:
     everything structural, nothing cached.  Thawing rebuilds a fresh
     untracked context and leaves every fingerprint stale, to be
     recomputed canonically on first demand — so a thawed
     configuration fingerprints and compares exactly like the
     original, at lazy-fold prices.  This is what lets a base
     exploration persist its boundary configurations as facts and a
     later widened sweep reseed from them. *)

  type frozen = {
    z_n : int;
    z_inputs : bool array;
    z_states : P.state array;
    z_failed : bool array;
    z_buffers : entry list array;
    z_sent : int array;
    z_knowledge : Triple.Fset.t array;
    z_edges : Pair_set.t;
    z_trips : Triple.Fset.t;
  }

  let freeze c =
    {
      z_n = c.n;
      z_inputs = c.inputs;
      z_states = c.states;
      z_failed = c.failed;
      z_buffers = c.buffers;
      z_sent = c.sent_count;
      z_knowledge = c.knowledge;
      z_edges = c.edges;
      z_trips = c.trips;
    }

  let thaw z =
    {
      n = z.z_n;
      inputs = z.z_inputs;
      states = z.z_states;
      state_fps = Array.make z.z_n F.zero;
      failed = z.z_failed;
      buffers = z.z_buffers;
      sent_count = z.z_sent;
      knowledge = z.z_knowledge;
      edges = z.z_edges;
      efp = F.zero;
      efp_valid = false;
      trips = z.z_trips;
      bfp = F.zero;
      pfp = F.zero;
      fps_valid = false;
      ctx =
        {
          track = false;
          lock = Mutex.create ();
          sets = Intern.create ~equal:Triple.Fset.equal ();
          states = Intern.create ~equal:(fun a b -> P.compare_state a b = 0) ();
          edge_sets = Intern.create ~equal:Pair_set.equal ();
        };
    }

  (* ----- scripted replays ----- *)

  type directive = Script.directive =
    | Step_of of Proc_id.t
    | Deliver_from of Proc_id.t * Proc_id.t
    | Deliver_msg of { at : Proc_id.t; from : Proc_id.t; index : int }
    | Deliver_note of Proc_id.t * Proc_id.t
    | Drop_msg of { at : Proc_id.t; from : Proc_id.t; index : int }
    | Fail_now of Proc_id.t
    | Drain of Proc_id.t
    | Flush_fifo

  let pp_directive = Script.pp

  let find_entry c at pred =
    Listx.find_index pred c.buffers.(at)

  let play c directives =
    let flush_cap = 100_000 in
    (* [pos] is the directive's 1-based position in the script, so a
       failure names exactly which line of a long certificate script
       went wrong *)
    let rec exec c step rev_trace pos = function
      | [] -> Ok (c, List.rev rev_trace)
      | d :: rest -> (
        let fail_d msg =
          Error (Format.asprintf "directive #%d [%a] failed: %s" pos pp_directive d msg)
        in
        let continue c' step evs rev_trace =
          exec c' (step + 1) (List.rev_append evs rev_trace) (pos + 1) rest
        in
        match d with
        | Step_of p -> (
          match apply ~step c (Action.Send_step p) with
          | Error e -> fail_d e
          | Ok (c', evs) -> continue c' step evs rev_trace)
        | Deliver_from (at, from) -> (
          let pred = function
            | Data { triple; _ } -> Proc_id.equal triple.Triple.sender from
            | Note _ -> false
          in
          match find_entry c at pred with
          | None -> fail_d (Printf.sprintf "no message from p%d buffered at p%d" from at)
          | Some index -> (
            match apply ~step c (Action.Deliver { at; index }) with
            | Error e -> fail_d e
            | Ok (c', evs) -> continue c' step evs rev_trace))
        | Deliver_msg { at; from; index } -> (
          let pred = function
            | Data { triple; _ } ->
              Proc_id.equal triple.Triple.sender from && triple.Triple.index = index
            | Note _ -> false
          in
          match find_entry c at pred with
          | None ->
            fail_d (Printf.sprintf "no message p%d->p%d#%d buffered at p%d" from at index at)
          | Some buffer_index -> (
            match apply ~step c (Action.Deliver { at; index = buffer_index }) with
            | Error e -> fail_d e
            | Ok (c', evs) -> continue c' step evs rev_trace))
        | Deliver_note (at, about) -> (
          let pred = function Note q -> Proc_id.equal q about | Data _ -> false in
          match find_entry c at pred with
          | None -> fail_d (Printf.sprintf "no failure notice about p%d buffered at p%d" about at)
          | Some index -> (
            match apply ~step c (Action.Deliver { at; index }) with
            | Error e -> fail_d e
            | Ok (c', evs) -> continue c' step evs rev_trace))
        | Drop_msg { at; from; index } -> (
          let pred = function
            | Data { triple; _ } ->
              Proc_id.equal triple.Triple.sender from && triple.Triple.index = index
            | Note _ -> false
          in
          match find_entry c at pred with
          | None ->
            fail_d (Printf.sprintf "no message p%d->p%d#%d buffered at p%d" from at index at)
          | Some buffer_index -> (
            match apply ~step c (Action.Drop { at; index = buffer_index }) with
            | Error e -> fail_d e
            | Ok (c', evs) -> continue c' step evs rev_trace))
        | Fail_now p -> (
          match apply ~step c (Action.Fail p) with
          | Error e -> fail_d e
          | Ok (c', evs) -> continue c' step evs rev_trace)
        | Drain p ->
          let rec drain c step rev_trace budget =
            if budget = 0 then fail_d "drain did not terminate"
            else if
              (not (is_failed c p))
              && Step_kind.equal (P.step_kind c.states.(p)) Step_kind.Sending
            then
              match apply ~step c (Action.Send_step p) with
              | Error e -> fail_d e
              | Ok (c', evs) -> drain c' (step + 1) (List.rev_append evs rev_trace) (budget - 1)
            else exec c step rev_trace (pos + 1) rest
          in
          drain c step rev_trace flush_cap
        | Flush_fifo ->
          let rec flush c step rev_trace budget =
            if budget = 0 then fail_d "flush did not reach quiescence"
            else
              match applicable c with
              | [] -> exec c step rev_trace (pos + 1) rest
              | a :: _ -> (
                match apply ~step c a with
                | Error e -> fail_d e
                | Ok (c', evs) -> flush c' (step + 1) (List.rev_append evs rev_trace) (budget - 1))
          in
          flush c step rev_trace flush_cap)
    in
    exec c 0 [] 1 directives

  let play_exn c directives =
    match play c directives with Ok r -> r | Error e -> failwith e
end
