open Patterns_stdx

module Make (P : Protocol.S) = struct
  type entry =
    | Note of Proc_id.t
    | Data of { triple : Triple.t; payload : P.msg }

  module Pair = struct
    type t = Triple.t * Triple.t

    let compare (a1, b1) (a2, b2) =
      let c = Triple.compare a1 a2 in
      if c <> 0 then c else Triple.compare b1 b2
  end

  module Pair_set = Set.Make (Pair)

  type config = {
    n : int;
    inputs : bool array;
    states : P.state array;
    failed : bool array;
    buffers : entry list array;
    sent_count : int array;  (* flattened n*n: sender * n + receiver *)
    knowledge : Triple.Set.t array;
    edges : Pair_set.t;
    trips : Triple.Set.t;
  }

  let init ~n ~inputs =
    if not (P.valid_n n) then
      invalid_arg (Printf.sprintf "Engine.init: protocol %s does not support n = %d" P.name n);
    if List.length inputs <> n then
      invalid_arg "Engine.init: inputs length must equal n";
    let inputs = Array.of_list inputs in
    let states = Array.init n (fun i -> P.initial ~n ~me:i ~input:inputs.(i)) in
    Array.iteri
      (fun i s ->
        let st = P.status s in
        if st.Status.decision <> None || st.Status.amnesic || st.Status.halted then
          invalid_arg
            (Printf.sprintf
               "Engine.init: protocol %s starts p%d outside the initial states z_0/z_1" P.name i))
      states;
    {
      n;
      inputs;
      states;
      failed = Array.make n false;
      buffers = Array.make n [];
      sent_count = Array.make (n * n) 0;
      knowledge = Array.make n Triple.Set.empty;
      edges = Pair_set.empty;
      trips = Triple.Set.empty;
    }

  let n_of c = c.n
  let inputs_of c = Array.copy c.inputs
  let state_of c p = c.states.(p)
  let states_of c = Array.copy c.states
  let buffer_of c p = c.buffers.(p)
  let is_failed c p = c.failed.(p)
  let status_of c p = P.status c.states.(p)
  let statuses c = Array.map P.status c.states

  let decisions_of c =
    List.filter_map
      (fun p ->
        match (P.status c.states.(p)).Status.decision with
        | Some d -> Some (p, d)
        | None -> None)
      (Proc_id.all ~n:c.n)

  let pattern_edges c = Pair_set.elements c.edges
  let triples_of c = Triple.Set.elements c.trips

  let compare_entry a b =
    match (a, b) with
    | Note p, Note q -> Proc_id.compare p q
    | Note _, Data _ -> -1
    | Data _, Note _ -> 1
    | Data a, Data b ->
      let c = Triple.compare a.triple b.triple in
      if c <> 0 then c else P.compare_msg a.payload b.payload

  let compare_buffer a b = List.compare compare_entry (List.sort compare_entry a) (List.sort compare_entry b)

  let compare_arrays cmp a b =
    let c = Int.compare (Array.length a) (Array.length b) in
    if c <> 0 then c
    else
      let rec loop i =
        if i = Array.length a then 0
        else
          let c = cmp a.(i) b.(i) in
          if c <> 0 then c else loop (i + 1)
      in
      loop 0

  let compare_behavioral a b =
    let c = Int.compare a.n b.n in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.inputs b.inputs in
      if c <> 0 then c
      else
        let c = compare_arrays P.compare_state a.states b.states in
        if c <> 0 then c
        else
          let c = Stdlib.compare a.failed b.failed in
          if c <> 0 then c else compare_arrays compare_buffer a.buffers b.buffers

  let compare_config a b =
    let c = compare_behavioral a b in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.sent_count b.sent_count in
      if c <> 0 then c
      else
        let c = compare_arrays Triple.Set.compare a.knowledge b.knowledge in
        if c <> 0 then c
        else
          let c = Pair_set.compare a.edges b.edges in
          if c <> 0 then c else Triple.Set.compare a.trips b.trips

  let hash_entry = function
    | Note p -> (31 * p) + 7
    | Data { triple; payload } -> (Triple.hash triple * 31) + Hashtbl.hash payload

  (* Buffers are compared as multisets, so their hash must not depend
     on arrival order: a commutative sum over entry hashes, with no
     per-call sorting. *)
  let hash_buffer b = List.fold_left (fun acc e -> acc + hash_entry e) 0 b

  let hash_array h a = Array.fold_left (fun acc x -> (acc * 31) + h x) 0 a

  let hash_behavioral c =
    let h = ((c.n * 31) + Hashtbl.hash c.inputs) * 31 in
    let h = (h + Hashtbl.hash c.failed) * 31 in
    let h = (h + hash_array P.hash_state c.states) * 31 in
    h + hash_array hash_buffer c.buffers

  let hash_config c =
    let h = (hash_behavioral c * 31) + Hashtbl.hash c.sent_count in
    let h = (h * 31) + hash_array Triple.set_hash c.knowledge in
    let h =
      (h * 31)
      + Pair_set.fold
          (fun (a, b) acc -> (((acc * 31) + Triple.hash a) * 31) + Triple.hash b)
          c.edges 0
    in
    (h * 31) + Triple.set_hash c.trips

  let pp_entry ppf = function
    | Note p -> Format.fprintf ppf "failed(%a)" Proc_id.pp p
    | Data { triple; payload } -> Format.fprintf ppf "%a:%a" Triple.pp triple P.pp_msg payload

  let pp_config ppf c =
    Format.fprintf ppf "@[<v>";
    for p = 0 to c.n - 1 do
      Format.fprintf ppf "%a%s: %a  [%a]  buf=[%a]@,"
        Proc_id.pp p
        (if c.failed.(p) then "(failed)" else "")
        P.pp_state c.states.(p) Status.pp (P.status c.states.(p))
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_entry)
        c.buffers.(p)
    done;
    Format.fprintf ppf "@]"

  (* ----- applicability ----- *)

  let proc_actions ~fifo_notices c p =
    if c.failed.(p) then []
    else
      match P.step_kind c.states.(p) with
      | Step_kind.Quiescent -> []
      | Step_kind.Sending -> [ Action.Send_step p ]
      | Step_kind.Receiving ->
        let buffer = c.buffers.(p) in
        let data_from q =
          List.exists
            (function Data { triple; _ } -> Proc_id.equal triple.Triple.sender q | Note _ -> false)
            buffer
        in
        List.concat
          (List.mapi
             (fun index e ->
               match e with
               | Data _ -> [ Action.Deliver { at = p; index } ]
               | Note q ->
                 if fifo_notices && data_from q then [] else [ Action.Deliver { at = p; index } ])
             buffer)

  let applicable ?(fifo_notices = false) c =
    List.concat_map (proc_actions ~fifo_notices c) (Proc_id.all ~n:c.n)

  let failure_actions c =
    List.filter_map
      (fun p -> if c.failed.(p) then None else Some (Action.Fail p))
      (Proc_id.all ~n:c.n)

  let quiescent c = applicable c = []

  (* ----- transitions ----- *)

  let status_events ~step p before after =
    let evs = ref [] in
    (match (before.Status.decision, after.Status.decision) with
    | None, Some d when not before.Status.amnesic ->
      evs := Trace.Decided { step; proc = p; decision = d } :: !evs
    | _ -> ());
    if (not before.Status.amnesic) && after.Status.amnesic then
      evs := Trace.Became_amnesic { step; proc = p } :: !evs;
    if (not before.Status.halted) && after.Status.halted then
      evs := Trace.Halted { step; proc = p } :: !evs;
    List.rev !evs

  let check_transition p before after =
    if Status.transition_ok before after then Ok ()
    else
      Error
        (Format.asprintf "protocol %s violated a status invariant at %a: %a -> %a" P.name
           Proc_id.pp p Status.pp before Status.pp after)

  let ( let* ) = Result.bind

  let apply_send ~step c p =
    let before = P.status c.states.(p) in
    let outgoing, state' = P.send ~n:c.n ~me:p c.states.(p) in
    let after = P.status state' in
    let* () = check_transition p before after in
    let states = Array.copy c.states in
    states.(p) <- state';
    let flips = status_events ~step p before after in
    match outgoing with
    | None -> Ok ({ c with states }, Trace.Null_step { step; proc = p } :: flips)
    | Some (dst, payload) ->
      if Proc_id.equal dst p then
        Error (Printf.sprintf "protocol %s: %s tried to send to itself" P.name (Proc_id.to_string p))
      else if dst < 0 || dst >= c.n then
        Error (Printf.sprintf "protocol %s: destination p%d out of range" P.name dst)
      else begin
        let idx = (p * c.n) + dst in
        let sent_count = Array.copy c.sent_count in
        sent_count.(idx) <- sent_count.(idx) + 1;
        let triple = Triple.make ~sender:p ~receiver:dst ~index:sent_count.(idx) in
        let causes = Triple.Set.elements c.knowledge.(p) in
        let knowledge = Array.copy c.knowledge in
        knowledge.(p) <- Triple.Set.add triple knowledge.(p);
        let edges =
          List.fold_left (fun acc m1 -> Pair_set.add (m1, triple) acc) c.edges causes
        in
        let buffers = Array.copy c.buffers in
        buffers.(dst) <- buffers.(dst) @ [ Data { triple; payload } ];
        let c' =
          { c with states; sent_count; knowledge; edges; buffers;
            trips = Triple.Set.add triple c.trips }
        in
        Ok (c', Trace.Sent { step; triple; payload; causes } :: flips)
      end

  let apply_deliver ~step c p index =
    match List.nth_opt c.buffers.(p) index with
    | None -> Error (Printf.sprintf "deliver: no buffer entry #%d at p%d" index p)
    | Some entry ->
      let incoming, delivered_event, knowledge =
        match entry with
        | Note about ->
          ( Incoming.Failed about,
            Trace.Delivered_note { step; at = p; about },
            c.knowledge )
        | Data { triple; payload } ->
          let knowledge = Array.copy c.knowledge in
          knowledge.(p) <- Triple.Set.add triple knowledge.(p);
          ( Incoming.Msg { from = triple.Triple.sender; payload },
            Trace.Delivered_msg { step; triple; payload },
            knowledge )
      in
      let before = P.status c.states.(p) in
      let state' = P.receive ~n:c.n ~me:p c.states.(p) incoming in
      let after = P.status state' in
      let* () = check_transition p before after in
      let states = Array.copy c.states in
      states.(p) <- state';
      let buffers = Array.copy c.buffers in
      buffers.(p) <- List.filteri (fun i _ -> i <> index) buffers.(p);
      let flips = status_events ~step p before after in
      Ok ({ c with states; buffers; knowledge }, delivered_event :: flips)

  let apply_fail ~step c p =
    if c.failed.(p) then Error (Printf.sprintf "fail: p%d has already failed" p)
    else begin
      let failed = Array.copy c.failed in
      failed.(p) <- true;
      let buffers = Array.copy c.buffers in
      List.iter (fun q -> buffers.(q) <- buffers.(q) @ [ Note p ]) (Proc_id.others ~n:c.n p);
      Ok ({ c with failed; buffers }, [ Trace.Failed_proc { step; proc = p } ])
    end

  let apply ~step c action =
    match action with
    | Action.Send_step p ->
      if p < 0 || p >= c.n then Error "send: processor out of range"
      else if c.failed.(p) then Error (Printf.sprintf "send: p%d has failed" p)
      else if not (Step_kind.equal (P.step_kind c.states.(p)) Step_kind.Sending) then
        Error (Printf.sprintf "send: p%d is not in a sending state" p)
      else apply_send ~step c p
    | Action.Deliver { at; index } ->
      if at < 0 || at >= c.n then Error "deliver: processor out of range"
      else if c.failed.(at) then Error (Printf.sprintf "deliver: p%d has failed" at)
      else if not (Step_kind.equal (P.step_kind c.states.(at)) Step_kind.Receiving) then
        Error (Printf.sprintf "deliver: p%d is not in a receiving state" at)
      else apply_deliver ~step c at index
    | Action.Fail p ->
      if p < 0 || p >= c.n then Error "fail: processor out of range" else apply_fail ~step c p

  let apply_exn ~step c action =
    match apply ~step c action with
    | Ok r -> r
    | Error e -> failwith (Format.asprintf "Engine.apply %a: %s" Action.pp action e)

  (* ----- schedulers ----- *)

  type scheduler = step:int -> config -> Action.t list -> Action.t option

  let fifo_scheduler ~step:_ _c = function [] -> None | a :: _ -> Some a

  let round_robin_scheduler ~step c actions =
    match actions with
    | [] -> None
    | _ ->
      let start = step mod c.n in
      let pid = function
        | Action.Send_step p | Action.Deliver { at = p; _ } | Action.Fail p -> p
      in
      let rotated p = (p - start + c.n) mod c.n in
      let best =
        List.fold_left
          (fun acc a ->
            match acc with
            | None -> Some a
            | Some b -> if rotated (pid a) < rotated (pid b) then Some a else Some b)
          None actions
      in
      best

  let random_scheduler prng ~step:_ _c = function
    | [] -> None
    | actions -> Some (Prng.pick prng actions)

  let notice_first_scheduler prng ~step:_ c actions =
    match actions with
    | [] -> None
    | _ ->
      let is_notice = function
        | Action.Deliver { at; index } -> (
          match List.nth_opt c.buffers.(at) index with
          | Some (Note _) -> true
          | Some (Data _) | None -> false)
        | Action.Send_step _ | Action.Fail _ -> false
      in
      let notices = List.filter is_notice actions in
      Some (Prng.pick prng (if notices = [] then actions else notices))

  let lifo_scheduler ~step:_ _c actions =
    match List.rev actions with [] -> None | a :: _ -> Some a

  type run_result = {
    final : config;
    trace : P.msg Trace.t;
    steps : int;
    quiescent : bool;
  }

  let run ?(max_steps = 100_000) ?(failures = []) ?(fifo_notices = false) ~scheduler ~n ~inputs () =
    let rec loop c step rev_trace pending_failures =
      if step >= max_steps then
        { final = c; trace = List.rev rev_trace; steps = step; quiescent = false }
      else
        match
          List.find_opt (fun (k, p) -> k <= step && not (is_failed c p)) pending_failures
        with
        | Some (_, p) ->
          let c', evs = apply_exn ~step c (Action.Fail p) in
          loop c' (step + 1) (List.rev_append evs rev_trace)
            (List.filter (fun (_, q) -> q <> p) pending_failures)
        | None -> (
          let actions = applicable ~fifo_notices c in
          match scheduler ~step c actions with
          | None ->
            { final = c; trace = List.rev rev_trace; steps = step; quiescent = actions = [] }
          | Some a ->
            let c', evs = apply_exn ~step c a in
            loop c' (step + 1) (List.rev_append evs rev_trace) pending_failures)
    in
    loop (init ~n ~inputs) 0 [] failures

  (* ----- scripted replays ----- *)

  type directive =
    | Step_of of Proc_id.t
    | Deliver_from of Proc_id.t * Proc_id.t
    | Deliver_note of Proc_id.t * Proc_id.t
    | Fail_now of Proc_id.t
    | Drain of Proc_id.t
    | Flush_fifo

  let pp_directive ppf = function
    | Step_of p -> Format.fprintf ppf "step %a" Proc_id.pp p
    | Deliver_from (at, from) ->
      Format.fprintf ppf "deliver to %a from %a" Proc_id.pp at Proc_id.pp from
    | Deliver_note (at, about) ->
      Format.fprintf ppf "deliver to %a the notice failed(%a)" Proc_id.pp at Proc_id.pp about
    | Fail_now p -> Format.fprintf ppf "fail %a" Proc_id.pp p
    | Drain p -> Format.fprintf ppf "drain %a" Proc_id.pp p
    | Flush_fifo -> Format.fprintf ppf "flush (fifo to quiescence)"

  let find_entry c at pred =
    Listx.find_index pred c.buffers.(at)

  let play c directives =
    let flush_cap = 100_000 in
    let rec exec c step rev_trace = function
      | [] -> Ok (c, List.rev rev_trace)
      | d :: rest -> (
        let fail_d msg =
          Error (Format.asprintf "directive [%a] failed: %s" pp_directive d msg)
        in
        match d with
        | Step_of p -> (
          match apply ~step c (Action.Send_step p) with
          | Error e -> fail_d e
          | Ok (c', evs) -> exec c' (step + 1) (List.rev_append evs rev_trace) rest)
        | Deliver_from (at, from) -> (
          let pred = function
            | Data { triple; _ } -> Proc_id.equal triple.Triple.sender from
            | Note _ -> false
          in
          match find_entry c at pred with
          | None -> fail_d (Printf.sprintf "no message from p%d buffered at p%d" from at)
          | Some index -> (
            match apply ~step c (Action.Deliver { at; index }) with
            | Error e -> fail_d e
            | Ok (c', evs) -> exec c' (step + 1) (List.rev_append evs rev_trace) rest))
        | Deliver_note (at, about) -> (
          let pred = function Note q -> Proc_id.equal q about | Data _ -> false in
          match find_entry c at pred with
          | None -> fail_d (Printf.sprintf "no failure notice about p%d buffered at p%d" about at)
          | Some index -> (
            match apply ~step c (Action.Deliver { at; index }) with
            | Error e -> fail_d e
            | Ok (c', evs) -> exec c' (step + 1) (List.rev_append evs rev_trace) rest))
        | Fail_now p -> (
          match apply ~step c (Action.Fail p) with
          | Error e -> fail_d e
          | Ok (c', evs) -> exec c' (step + 1) (List.rev_append evs rev_trace) rest)
        | Drain p ->
          let rec drain c step rev_trace budget =
            if budget = 0 then fail_d "drain did not terminate"
            else if
              (not (is_failed c p))
              && Step_kind.equal (P.step_kind c.states.(p)) Step_kind.Sending
            then
              match apply ~step c (Action.Send_step p) with
              | Error e -> fail_d e
              | Ok (c', evs) -> drain c' (step + 1) (List.rev_append evs rev_trace) (budget - 1)
            else exec c step rev_trace rest
          in
          drain c step rev_trace flush_cap
        | Flush_fifo ->
          let rec flush c step rev_trace budget =
            if budget = 0 then fail_d "flush did not reach quiescence"
            else
              match applicable c with
              | [] -> exec c step rev_trace rest
              | a :: _ -> (
                match apply ~step c a with
                | Error e -> fail_d e
                | Ok (c', evs) -> flush c' (step + 1) (List.rev_append evs rev_trace) (budget - 1))
          in
          flush c step rev_trace flush_cap)
    in
    exec c 0 [] directives

  let play_exn c directives =
    match play c directives with Ok r -> r | Error e -> failwith e
end
