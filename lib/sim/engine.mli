(** Execution engine: the paper's model of computation, executable.

    [Make (P)] instantiates the asynchronous fail-stop message system
    for protocol [P]: unordered per-processor buffers, events
    [(p, mu)] applied to configurations, fail-stop failures with
    broadcast failure notices, and schedulers ranging from fair
    deterministic to seeded-random to scripted replays.

    Configurations are persistent values, so exploration (branching
    over all applicable events) needs no undo machinery; the engine
    additionally threads the communication-pattern-so-far through each
    configuration, which lets the scheme enumerator memoize on
    configurations alone. *)

module Make (P : Protocol.S) : sig
  (** {1 Configurations} *)

  type entry =
    | Note of Proc_id.t  (** failure notice in a buffer *)
    | Data of { triple : Triple.t; payload : P.msg }

  type config
  (** A configuration: all local states plus all buffer contents
      (paper Section 3), extended with the bookkeeping needed for
      patterns (per-pair send counts, per-processor knowledge sets,
      accumulated pattern edges). *)

  val init : n:int -> inputs:bool list -> config
  (** Initial configuration: processor [i] starts in
      [P.initial ~input:(nth inputs i)]; buffers empty.  Every
      configuration descended from this one carries incrementally
      maintained fingerprints and per-root interning — what a search
      with a visited store wants.
      @raise Invalid_argument if [length inputs <> n] or [P.valid_n n]
      is false. *)

  val init_untracked : n:int -> inputs:bool list -> config
  (** Like {!init}, but {!apply} skips fingerprint maintenance and
      interning on every descendant, and
      {!fingerprint}/{!behavioral_fingerprint} fall back to a full
      fold, computed on first demand and memoized — the right trade
      for linear runs that never probe a visited store. *)

  val n_of : config -> int
  val inputs_of : config -> bool array
  val state_of : config -> Proc_id.t -> P.state
  val states_of : config -> P.state array
  val buffer_of : config -> Proc_id.t -> entry list
  (** Arrival order, oldest first. *)

  val is_failed : config -> Proc_id.t -> bool
  val status_of : config -> Proc_id.t -> Status.t
  val statuses : config -> Status.t array
  val decisions_of : config -> (Proc_id.t * Decision.t) list
  (** Current decision states (amnesic processors excluded). *)

  val pattern_edges : config -> (Triple.t * Triple.t) list
  (** Direct happens-before pairs accumulated so far, sorted. *)

  val triples_of : config -> Triple.t list
  (** All message triples sent so far, sorted. *)

  val pattern_fp : config -> Patterns_stdx.Fingerprint.t
  (** Canonical fingerprint of the accumulated pattern alone — the
      triples and the happens-before edges, nothing else. *)

  val same_pattern_rep : config -> config -> bool
  (** Physical equality of the interned pattern components.  Within
      one root this holds exactly when the accumulated patterns are
      structurally equal, so a terminal-pattern cache can use
      {!pattern_fp} as the key and this as the collision-proof
      confirmation, skipping extraction for repeats. *)

  val compare_config : config -> config -> int
  (** Structural order including pattern bookkeeping; two configs are
      equal iff their futures (and final patterns) coincide. *)

  val compare_behavioral : config -> config -> int
  (** Ignores pattern bookkeeping (send counts, knowledge, edges):
      equality of states, failure flags and buffer multisets only.
      Suitable for local-state reachability analyses. *)

  val fingerprint : config -> Patterns_stdx.Fingerprint.t
  (** Canonical 64-bit fingerprint, consistent with {!compare_config}:
      equal configurations have equal fingerprints however they were
      reached.  Under a tracking root (see {!init}) it is carried in
      the configuration and maintained incrementally by {!apply} —
      reading it is O(1); under [~track_fingerprints:false] the first
      read pays a full fold, memoized per configuration. *)

  val behavioral_fingerprint : config -> Patterns_stdx.Fingerprint.t
  (** Canonical fingerprint of the behavioral projection, consistent
      with {!compare_behavioral}; same laziness as {!fingerprint}. *)

  val fingerprint_from_scratch : config -> Patterns_stdx.Fingerprint.t
  (** Recompute {!fingerprint} by full folds over every field, ignoring
      the incrementally maintained value.  For the consistency test
      suite: [fingerprint_from_scratch c = fingerprint c] is the
      maintenance invariant. *)

  val intern_bindings : config -> int
  (** Distinct knowledge/trips sets interned under this
      configuration's root ([init] creates a fresh table); a
      deterministic measure of set-sharing, surfaced in search
      metrics. *)

  val hash_config : config -> int
  (** Consistent with {!compare_config}: the {!fingerprint} folded to
      an [int].  O(1). *)

  val hash_behavioral : config -> int
  (** Consistent with {!compare_behavioral}: the
      {!behavioral_fingerprint} folded to an [int].  O(1). *)

  val pp_config : Format.formatter -> config -> unit

  (** {1 Stepping} *)

  val applicable : ?fifo_notices:bool -> config -> Action.t list
  (** All applicable non-failure events, deterministically ordered:
      for each operational processor in id order, deliveries (buffer
      order) or its sending step.

      With [fifo_notices] (default false), the failure notice about
      [q] is deliverable only once no message from [q] remains in the
      buffer — the delivery discipline of fail-stop processors in the
      style of Schneider's [S], where failure detection sits below the
      (per-sender ordered) channel.  The paper's own model leaves
      notices unordered with respect to messages; the distinction is
      observable (see the Theorem 7 ablation in EXPERIMENTS.md). *)

  val failure_actions : config -> Action.t list
  (** [Fail p] for every processor that has not failed yet. *)

  val quiescent : config -> bool
  (** No applicable non-failure event: every operational processor is
      quiescent or listening at an empty buffer. *)

  val apply : step:int -> config -> Action.t -> (config * P.msg Trace.event list, string) result
  (** Apply one event.  [Error] explains inapplicability or a protocol
      invariant violation (e.g. revoking a decision).

      {!Action.Drop} is the receive-omission fault: the named buffer
      entry vanishes (it must be a [Data] entry — failure notices
      cannot be dropped) with no state change, no knowledge update and
      no notice.  Unlike delivery it applies at a failed or
      non-receiving processor: the drop is a network event, not a step
      of the victim.  Its fingerprint delta is the exact inverse of
      the buffer contribution added by the send, preserving the
      incremental-equals-scratch invariant. *)

  val apply_exn : step:int -> config -> Action.t -> config * P.msg Trace.event list
  (** @raise Failure on [Error]. *)

  (** {1 Schedulers and runs} *)

  type scheduler = step:int -> config -> Action.t list -> Action.t option
  (** Chooses among the applicable non-failure events; [None] stops
      the run early. *)

  val fifo_scheduler : scheduler
  (** Lowest processor first; oldest buffered item first.  Fair on
      quiescing protocols. *)

  val round_robin_scheduler : scheduler
  (** Rotates the starting processor with the step counter; fair even
      against non-quiescing protocols. *)

  val random_scheduler : Patterns_stdx.Prng.t -> scheduler
  (** Uniform among applicable events; fair with probability 1. *)

  val notice_first_scheduler : Patterns_stdx.Prng.t -> scheduler
  (** Adversarial flavour: whenever a failure notice is deliverable it
      is preferred over data (the race that breaks the standalone
      Appendix protocol); otherwise uniform random.  Fair. *)

  val lifo_scheduler : scheduler
  (** Deterministic adversarial flavour: newest buffered item first,
      highest processor first — stresses protocols that implicitly
      assume per-sender ordering.  Fair on quiescing protocols. *)

  type run_result = {
    final : config;
    trace : P.msg Trace.t;
    steps : int;
    quiescent : bool;  (** ended by quiescence rather than the step cap *)
  }

  val run :
    ?track_fingerprints:bool ->
    ?max_steps:int ->
    ?failures:(int * Proc_id.t) list ->
    ?faults:Fault.t list ->
    ?fifo_notices:bool ->
    scheduler:scheduler ->
    n:int ->
    inputs:bool list ->
    unit ->
    run_result
  (** Run from the initial configuration.  [failures] is a failure
      plan: [(k, p)] fail-stops [p] at global step [k] (failure steps
      consume a step).  Default [max_steps] is 100_000.

      [faults] (default [[]]) is the layered fault plan.  A
      {!Fault.Crash} joins [failures] verbatim, so passing crashes
      either way is equivalent.  A {!Fault.Drop} fires at the first
      step [>= f.step] at which the victim holds a buffered message,
      silently discarding the oldest one (a fault step consumes a
      step, like a crash).  A {!Fault.Send_omit} latches onto the
      victim's next sending step at [>= f.step] that actually emits:
      the message is sent and immediately dropped from the
      destination's buffer within the same loop iteration — lost in
      transit, invisible to both endpoints.  Faults are one-shot and
      fire in list order when several are due.  With [faults = []]
      the run is bit-identical to what it was before omission faults
      existed.

      [track_fingerprints] defaults to [false] here, unlike {!init}: a
      linear run attaches no visited store, so incremental fingerprint
      maintenance would be pure overhead (measured ~2x on hunt-style
      workloads).  Pass [true] if the final configuration's
      fingerprint will be probed repeatedly. *)

  (** {1 Memoized failure-free prefixes}

      A fault plan's run equals the failure-free run of the same
      (scheduler, inputs) up to the plan's earliest crash step: the
      run loop fires no failure while every pending [(k, p)] has
      [k > step].  For a deterministic scheduler — a pure function of
      [(step, config, actions)], like {!fifo_scheduler},
      {!lifo_scheduler} and {!round_robin_scheduler} — the
      failure-free run can therefore be computed once and every plan
      resumed from its recorded step boundary.  This is the engine
      half of the adversary's shared-prefix memoization. *)

  type prefix
  (** One failure-free run with a configuration snapshot at every step
      boundary.  Snapshots are untracked configurations sharing
      structure with their successors; recording them is O(steps)
      extra memory. *)

  val run_prefix :
    ?max_steps:int ->
    ?fifo_notices:bool ->
    scheduler:scheduler ->
    n:int ->
    inputs:bool list ->
    unit ->
    prefix

  val prefix_result : prefix -> run_result
  (** The failure-free run itself — what {!resume} returns verbatim
      for an empty failure plan. *)

  val resume :
    ?max_steps:int ->
    ?fifo_notices:bool ->
    scheduler:scheduler ->
    failures:(int * Proc_id.t) list ->
    ?faults:Fault.t list ->
    prefix:prefix ->
    unit ->
    run_result * int
  (** Resume the recorded run with [failures] and [faults] pending,
      from the snapshot at the earliest fault step (or answer with the
      whole failure-free result when every fault lands past its end —
      valid because no fault of any kind fires before its step).
      Given the same [scheduler], [max_steps] and [fifo_notices] the
      prefix was recorded under, the result is bit-identical to
      [run ~failures ~faults]; the returned integer is the number of
      engine steps answered from the memo instead of re-executed. *)

  (** {1 Frozen configurations} *)

  type frozen
  (** The context-free part of a configuration: marshallable (no
      mutex, no intern tables, no cached fingerprints).  The vehicle
      for persisting a base exploration's boundary configurations as
      facts. *)

  val freeze : config -> frozen

  val thaw : frozen -> config
  (** Rebuild a live configuration under a fresh untracked context.
      Fingerprints and comparisons are canonical, so a thawed
      configuration dedups against freshly explored ones exactly like
      the original; the first fingerprint probe pays a full fold
      (memoized per configuration), as under {!init_untracked}. *)

  (** {1 Scripted replays}

      Indistinguishability scenarios (Theorems 8 and 13) and
      certificate replays need exact control over delivery order;
      {!Script.directive}s express them readably.  The type is
      re-exported here so engine clients keep using the constructors
      unqualified; serialization and trace extraction live in
      {!Script}, outside the functor. *)

  type directive = Script.directive =
    | Step_of of Proc_id.t  (** one sending step of the processor *)
    | Deliver_from of Proc_id.t * Proc_id.t
        (** [Deliver_from (at, from)]: oldest buffered message from
            [from] *)
    | Deliver_msg of { at : Proc_id.t; from : Proc_id.t; index : int }
        (** the buffered message with triple [(from, at, index)]
            exactly — expresses out-of-order delivery within one
            sender, which {!Deliver_from} cannot *)
    | Deliver_note of Proc_id.t * Proc_id.t
        (** [Deliver_note (at, about)]: the failure notice about
            [about] *)
    | Drop_msg of { at : Proc_id.t; from : Proc_id.t; index : int }
        (** receive omission: silently discard the buffered message
            with triple [(from, at, index)]; fails if no such message
            is buffered — replay validates drops against the buffered
            state exactly like deliveries *)
    | Fail_now of Proc_id.t
    | Drain of Proc_id.t
        (** sending steps until the processor leaves its sending
            states *)
    | Flush_fifo  (** run the FIFO scheduler to quiescence *)

  val pp_directive : Format.formatter -> directive -> unit

  val play : config -> directive list -> (config * P.msg Trace.t, string) result
  (** Interpret directives in order; fails fast naming the offending
      directive's 1-based position in the script and pretty-printing
      it ([directive #3 [deliver to p1 from p0] failed: ...]). *)

  val play_exn : config -> directive list -> config * P.msg Trace.t
end
