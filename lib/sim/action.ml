type t =
  | Send_step of Proc_id.t
  | Deliver of { at : Proc_id.t; index : int }
  | Fail of Proc_id.t
  | Drop of { at : Proc_id.t; index : int }

let rank = function Send_step _ -> 0 | Deliver _ -> 1 | Fail _ -> 2 | Drop _ -> 3

let compare a b =
  match (a, b) with
  | Send_step p, Send_step q -> Proc_id.compare p q
  | Deliver a, Deliver b ->
    let c = Proc_id.compare a.at b.at in
    if c <> 0 then c else Int.compare a.index b.index
  | Fail p, Fail q -> Proc_id.compare p q
  | Drop a, Drop b ->
    let c = Proc_id.compare a.at b.at in
    if c <> 0 then c else Int.compare a.index b.index
  | (Send_step _ | Deliver _ | Fail _ | Drop _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let pp ppf = function
  | Send_step p -> Format.fprintf ppf "step(%a)" Proc_id.pp p
  | Deliver { at; index } -> Format.fprintf ppf "deliver(%a,#%d)" Proc_id.pp at index
  | Fail p -> Format.fprintf ppf "fail(%a)" Proc_id.pp p
  | Drop { at; index } -> Format.fprintf ppf "drop(%a,#%d)" Proc_id.pp at index
