(** Execution traces.

    The engine records one or more events per applied action.  Traces
    are the raw material for everything downstream: communication
    patterns are read off [Sent] events, consistency checkers fold
    over [Decided]/[Failed_proc] events, and Theorem 7's step counts
    come from counting events per processor. *)

type 'msg event =
  | Sent of {
      step : int;
      triple : Triple.t;
      payload : 'msg;
      causes : Triple.t list;
          (** messages this one directly depends on under the paper's
              rules (1)-(2): everything the sender had sent or received
              when it sent this message, sorted *)
    }
  | Null_step of { step : int; proc : Proc_id.t }
      (** a sending step that emitted no message *)
  | Delivered_msg of { step : int; triple : Triple.t; payload : 'msg }
  | Delivered_note of { step : int; at : Proc_id.t; about : Proc_id.t }
  | Dropped_msg of { step : int; triple : Triple.t; payload : 'msg }
      (** an omission fault discarded this buffered message before the
          receiver could take delivery; no processor observes it *)
  | Failed_proc of { step : int; proc : Proc_id.t }
  | Decided of { step : int; proc : Proc_id.t; decision : Decision.t }
  | Became_amnesic of { step : int; proc : Proc_id.t }
  | Halted of { step : int; proc : Proc_id.t }

type 'msg t = 'msg event list
(** Chronological. *)

val step_of : 'msg event -> int
val proc_of : 'msg event -> Proc_id.t
(** The processor that took the step ([Sent] events belong to the
    sender, deliveries to the receiver). *)

val sends : 'msg t -> (Triple.t * 'msg * Triple.t list) list
(** All [Sent] events in order: (triple, payload, direct causes). *)

val message_count : 'msg t -> int
(** Number of protocol messages sent (failure notices excluded). *)

val decisions : 'msg t -> (Proc_id.t * Decision.t) list
(** Every decision event, in order (a processor appears at most once:
    decisions are irrevocable). *)

val failures : 'msg t -> Proc_id.t list

val drops : 'msg t -> Triple.t list
(** Every [Dropped_msg] triple, in order. *)

val drop_count : 'msg t -> int
(** Number of messages lost to omission faults. *)

val steps_per_proc : n:int -> 'msg t -> int array
(** How many model steps (send or receive) each processor took —
    the unit of Theorem 7's O(N^2) bound.  Failure steps and derived
    events ([Decided] etc.) are not counted. *)

val pp : pp_msg:(Format.formatter -> 'msg -> unit) -> Format.formatter -> 'msg t -> unit

val to_csv : pp_msg:(Format.formatter -> 'msg -> unit) -> 'msg t -> string
(** One row per event: [step,kind,proc,peer,index,payload].  For
    offline analysis of recorded executions. *)
