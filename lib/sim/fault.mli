(** Fault directives for the layered adversary.

    The paper's model is fail-stop only: a failed processor halts and
    failure notices are broadcast ({!Action.Fail}).  This module names
    the wider lattice the adversary subsystem sweeps:

    - [Crash] — the paper's fail-stop fault (notices broadcast);
    - [Drop] — receive omission: one buffered message at the victim is
      silently discarded ({!Action.Drop}), no notice anywhere;
    - [Send_omit] — send omission: the victim's next sent message is
      lost in transit (modelled as a send immediately followed by a
      drop of the freshly buffered copy, in one scheduler step).

    A fault is a [(step, victim, kind)] triple; [step] is the earliest
    engine step at which it may fire.  Crash faults keep the exact
    firing semantics of the [failures] list (bit-identical fail-stop
    behaviour); omission faults fire when applicable — a [Drop] waits
    for a buffered message at the victim, a [Send_omit] waits for the
    victim's next sending step that actually emits. *)

type kind = Crash | Drop | Send_omit

type t = { step : int; victim : Proc_id.t; kind : kind }

val kind_rank : kind -> int
(** Canonical order for plan enumeration: crash 0, drop 1, send-omit 2. *)

val kind_string : kind -> string
val kind_of_string : string -> kind option
val compare_kind : kind -> kind -> int
val equal_kind : kind -> kind -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

val is_omission : t -> bool
(** [true] for [Drop] and [Send_omit]. *)

val pp : Format.formatter -> t -> unit
