module Json = Patterns_stdx.Json

type directive =
  | Step_of of Proc_id.t
  | Deliver_from of Proc_id.t * Proc_id.t
  | Deliver_msg of { at : Proc_id.t; from : Proc_id.t; index : int }
  | Deliver_note of Proc_id.t * Proc_id.t
  | Drop_msg of { at : Proc_id.t; from : Proc_id.t; index : int }
  | Fail_now of Proc_id.t
  | Drain of Proc_id.t
  | Flush_fifo

let pp ppf = function
  | Step_of p -> Format.fprintf ppf "step %a" Proc_id.pp p
  | Deliver_from (at, from) ->
    Format.fprintf ppf "deliver to %a from %a" Proc_id.pp at Proc_id.pp from
  | Deliver_msg { at; from; index } ->
    Format.fprintf ppf "deliver to %a message %a#%d" Proc_id.pp at Proc_id.pp from index
  | Deliver_note (at, about) ->
    Format.fprintf ppf "deliver to %a the notice failed(%a)" Proc_id.pp at Proc_id.pp about
  | Drop_msg { at; from; index } ->
    Format.fprintf ppf "drop at %a message %a#%d" Proc_id.pp at Proc_id.pp from index
  | Fail_now p -> Format.fprintf ppf "fail %a" Proc_id.pp p
  | Drain p -> Format.fprintf ppf "drain %a" Proc_id.pp p
  | Flush_fifo -> Format.fprintf ppf "flush (fifo to quiescence)"

let equal (a : directive) (b : directive) = a = b

(* [Sent] belongs to the sender and [Delivered_msg] carries the exact
   triple, so the schedule falls straight out of the event list;
   derived events (decisions, status flips) consumed no scheduling
   decision and are skipped. *)
let of_trace trace =
  List.filter_map
    (fun (ev : _ Trace.event) ->
      match ev with
      | Trace.Sent { triple; _ } -> Some (Step_of triple.Triple.sender)
      | Trace.Null_step { proc; _ } -> Some (Step_of proc)
      | Trace.Delivered_msg { triple; _ } ->
        Some
          (Deliver_msg
             {
               at = triple.Triple.receiver;
               from = triple.Triple.sender;
               index = triple.Triple.index;
             })
      | Trace.Delivered_note { at; about; _ } -> Some (Deliver_note (at, about))
      | Trace.Dropped_msg { triple; _ } ->
        Some
          (Drop_msg
             {
               at = triple.Triple.receiver;
               from = triple.Triple.sender;
               index = triple.Triple.index;
             })
      | Trace.Failed_proc { proc; _ } -> Some (Fail_now proc)
      | Trace.Decided _ | Trace.Became_amnesic _ | Trace.Halted _ -> None)
    trace

let to_json = function
  | Step_of p -> Json.Obj [ ("op", Json.String "step"); ("proc", Json.Int p) ]
  | Deliver_from (at, from) ->
    Json.Obj [ ("op", Json.String "deliver_from"); ("at", Json.Int at); ("from", Json.Int from) ]
  | Deliver_msg { at; from; index } ->
    Json.Obj
      [
        ("op", Json.String "deliver_msg");
        ("at", Json.Int at);
        ("from", Json.Int from);
        ("index", Json.Int index);
      ]
  | Deliver_note (at, about) ->
    Json.Obj
      [ ("op", Json.String "deliver_note"); ("at", Json.Int at); ("about", Json.Int about) ]
  | Drop_msg { at; from; index } ->
    Json.Obj
      [
        ("op", Json.String "drop_msg");
        ("at", Json.Int at);
        ("from", Json.Int from);
        ("index", Json.Int index);
      ]
  | Fail_now p -> Json.Obj [ ("op", Json.String "fail"); ("proc", Json.Int p) ]
  | Drain p -> Json.Obj [ ("op", Json.String "drain"); ("proc", Json.Int p) ]
  | Flush_fifo -> Json.Obj [ ("op", Json.String "flush_fifo") ]

let ( let* ) = Result.bind

let int_field k v = Result.bind (Json.field k v) Json.to_int

let of_json v =
  let* op = Result.bind (Json.field "op" v) Json.to_str in
  match op with
  | "step" ->
    let* p = int_field "proc" v in
    Ok (Step_of p)
  | "deliver_from" ->
    let* at = int_field "at" v in
    let* from = int_field "from" v in
    Ok (Deliver_from (at, from))
  | "deliver_msg" ->
    let* at = int_field "at" v in
    let* from = int_field "from" v in
    let* index = int_field "index" v in
    Ok (Deliver_msg { at; from; index })
  | "deliver_note" ->
    let* at = int_field "at" v in
    let* about = int_field "about" v in
    Ok (Deliver_note (at, about))
  | "drop_msg" ->
    let* at = int_field "at" v in
    let* from = int_field "from" v in
    let* index = int_field "index" v in
    Ok (Drop_msg { at; from; index })
  | "fail" ->
    let* p = int_field "proc" v in
    Ok (Fail_now p)
  | "drain" ->
    let* p = int_field "proc" v in
    Ok (Drain p)
  | "flush_fifo" -> Ok Flush_fifo
  | op -> Error (Printf.sprintf "unknown directive op %S" op)
