type t = { sender : Proc_id.t; receiver : Proc_id.t; index : int }

let make ~sender ~receiver ~index =
  if Proc_id.equal sender receiver then
    invalid_arg "Triple.make: processors cannot send messages to themselves";
  if index < 1 then invalid_arg "Triple.make: message indices count from 1";
  { sender; receiver; index }

let compare a b =
  let c = Proc_id.compare a.sender b.sender in
  if c <> 0 then c
  else
    let c = Proc_id.compare a.receiver b.receiver in
    if c <> 0 then c else Int.compare a.index b.index

let equal a b = compare a b = 0

let to_string t = Printf.sprintf "%s->%s#%d" (Proc_id.to_string t.sender) (Proc_id.to_string t.receiver) t.index

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let hash t = ((t.sender * 31) + t.receiver) * 31 + t.index

let set_hash s = Set.fold (fun tr acc -> (acc * 31) + hash tr) s 0
