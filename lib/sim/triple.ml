type t = { sender : Proc_id.t; receiver : Proc_id.t; index : int }

let make ~sender ~receiver ~index =
  if Proc_id.equal sender receiver then
    invalid_arg "Triple.make: processors cannot send messages to themselves";
  if index < 1 then invalid_arg "Triple.make: message indices count from 1";
  { sender; receiver; index }

let compare a b =
  let c = Proc_id.compare a.sender b.sender in
  if c <> 0 then c
  else
    let c = Proc_id.compare a.receiver b.receiver in
    if c <> 0 then c else Int.compare a.index b.index

let equal a b = compare a b = 0

let to_string t = Printf.sprintf "%s->%s#%d" (Proc_id.to_string t.sender) (Proc_id.to_string t.receiver) t.index

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let hash t = ((t.sender * 31) + t.receiver) * 31 + t.index

let set_hash s = Set.fold (fun tr acc -> (acc * 31) + hash tr) s 0

let fp t =
  let open Patterns_stdx.Fingerprint in
  feed (feed (feed seed t.sender) t.receiver) t.index

(* A [Set.t] carrying its canonical fingerprint: the commutative
   combination of the member fingerprints, maintained on [add], so
   hashing a set is O(1) however it was built.  [compare] starts with
   physical equality — interned sets (see {!Patterns_stdx.Intern})
   answer most comparisons without touching the trees. *)
module Fset = struct
  type nonrec t = { set : Set.t; fp : Patterns_stdx.Fingerprint.t }

  let empty = { set = Set.empty; fp = Patterns_stdx.Fingerprint.zero }

  let add tr t =
    if Set.mem tr t.set then t
    else { set = Set.add tr t.set; fp = Patterns_stdx.Fingerprint.combine t.fp (fp tr) }

  (* for inserts the caller can prove fresh (a just-minted triple
     index): skips the membership pre-check [add] needs to keep the
     fingerprint a faithful multiset sum *)
  let add_new tr t =
    { set = Set.add tr t.set; fp = Patterns_stdx.Fingerprint.combine t.fp (fp tr) }

  let mem tr t = Set.mem tr t.set
  let elements t = Set.elements t.set
  let cardinal t = Set.cardinal t.set
  let set t = t.set
  let fp t = t.fp
  let compare a b = if a == b then 0 else Set.compare a.set b.set
  let equal a b = compare a b = 0
end
