(** Chase–Lev work-stealing deque.

    The distribution substrate of the asynchronous search driver: each
    worker owns one deque, pushes and pops its own work LIFO at the
    bottom (depth-first locality, no synchronization against itself
    beyond the one contended-last-element CAS), while idle workers
    steal FIFO from the top — oldest, typically largest-subtree items
    — one CAS per steal.

    Ownership discipline: [push] and [pop] must only be called from
    the single owning domain; [steal] may be called from any domain.
    All cross-domain state is held in [Atomic.t] cells, so the
    implementation relies only on OCaml's sequentially consistent
    atomics — no fences, no unsafe memory tricks. *)

type 'a t

type 'a steal_result =
  | Stolen of 'a  (** the CAS on [top] won; the value is exclusively ours *)
  | Empty  (** the deque looked empty at the time of the attempt *)
  | Retry
      (** lost a race (another thief or the owner took the item);
          the deque may still be non-empty — try again or move on *)

val create : ?capacity:int -> unit -> 'a t
(** A fresh empty deque.  [capacity] (default 256, rounded up to a
    power of two) is only the initial buffer size; the owner grows the
    buffer geometrically as needed, so capacity is never a limit. *)

val push : 'a t -> 'a -> unit
(** Owner only: add an item at the bottom. *)

val pop : 'a t -> 'a option
(** Owner only: take the most recently pushed remaining item, or
    [None] if the deque is empty (including losing the last item to a
    thief). *)

val steal : 'a t -> 'a steal_result
(** Any domain: try to take the oldest item. *)

val size : 'a t -> int
(** Approximate number of items — exact only in quiescence. *)
