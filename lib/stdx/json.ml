type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | List xs, List ys -> List.equal equal xs ys
  | Obj xs, Obj ys ->
    List.equal (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) xs ys
  | _ -> false

(* ----- emit ----- *)

let escape_into b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* floats print with enough digits to round-trip, but integral values
   keep a trailing ".0" so they parse back as Float *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(indent = 2) v =
  let b = Buffer.create 256 in
  let pad depth = Buffer.add_string b (String.make (depth * indent) ' ') in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_str f)
    | String s -> escape_into b s
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (depth + 1);
          go (depth + 1) x)
        xs;
      Buffer.add_char b '\n';
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (depth + 1);
          escape_into b k;
          Buffer.add_string b ": ";
          go (depth + 1) x)
        kvs;
      Buffer.add_char b '\n';
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

(* ----- parse ----- *)

exception Parse_error of int * string

let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let n = String.length word in
    if !pos + n <= len && String.sub s !pos n = word then begin
      pos := !pos + n;
      v
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= len then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= len then error "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'; advance ()
             | '\\' -> Buffer.add_char b '\\'; advance ()
             | '/' -> Buffer.add_char b '/'; advance ()
             | 'n' -> Buffer.add_char b '\n'; advance ()
             | 't' -> Buffer.add_char b '\t'; advance ()
             | 'r' -> Buffer.add_char b '\r'; advance ()
             | 'b' -> Buffer.add_char b '\b'; advance ()
             | 'f' -> Buffer.add_char b '\012'; advance ()
             | 'u' ->
               advance ();
               let read4 () =
                 if !pos + 4 > len then error "truncated \\u escape";
                 let hex = String.sub s !pos 4 in
                 let ok = String.for_all (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false) hex in
                 match (if ok then int_of_string_opt ("0x" ^ hex) else None) with
                 | Some c ->
                   pos := !pos + 4;
                   c
                 | None -> error "bad \\u escape"
               in
               let code = read4 () in
               let scalar =
                 if code >= 0xd800 && code <= 0xdbff then begin
                   (* high surrogate: must pair with \uDC00-\uDFFF *)
                   if !pos + 2 > len || s.[!pos] <> '\\' || s.[!pos + 1] <> 'u' then
                     error "unpaired high surrogate in \\u escape";
                   pos := !pos + 2;
                   let low = read4 () in
                   if low < 0xdc00 || low > 0xdfff then
                     error "unpaired high surrogate in \\u escape";
                   0x10000 + ((code - 0xd800) lsl 10) + (low - 0xdc00)
                 end
                 else if code >= 0xdc00 && code <= 0xdfff then
                   error "lone low surrogate in \\u escape"
                 else code
               in
               Buffer.add_utf_8_uchar b (Uchar.of_int scalar)
             | c -> error (Printf.sprintf "bad escape \\%c" c));
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' -> true
      | '.' | 'e' | 'E' ->
        is_float := true;
        true
      | _ -> false
    in
    while !pos < len && num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> error (Printf.sprintf "bad number %S" lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> error (Printf.sprintf "bad number %S" lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> error "expected ',' or ']'"
        in
        List (elems [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> error "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)

(* ----- accessors ----- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let kind_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | List _ -> "list"
  | Obj _ -> "object"

let to_int = function Int i -> Ok i | v -> Error ("expected int, got " ^ kind_name v)
let to_bool = function Bool b -> Ok b | v -> Error ("expected bool, got " ^ kind_name v)
let to_str = function String s -> Ok s | v -> Error ("expected string, got " ^ kind_name v)
let to_list = function List l -> Ok l | v -> Error ("expected list, got " ^ kind_name v)

let field k v =
  match member k v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "missing field %S" k)
