(** Disk-backed spillable visited store: a {!Sharded_store}-shaped
    in-memory cache bounded by a memory budget, evicting whole shards
    to sorted {!Block_file} runs when the budget's high-water mark is
    hit.

    States are dictionary-encoded on insertion to dense ids (the
    {!Dict} discipline); a spilled binding survives on disk only as
    its 8-byte order-preserving fingerprint key plus that id, so disk
    membership is decided by fingerprint alone — the same
    collision-freeness assumption the in-memory stores certify with
    their [collision_fallbacks] counter (≈ 0 on every workload in this
    repo).  Eviction points are chosen by the drivers, not by [add],
    so search outcomes are bit-identical with or without spilling.

    Counting discipline matches {!Sharded_store}: {!mem} and
    {!add_if_absent} each count one probe; {!add} is the serial
    driver's uncounted insert after a counted {!mem}.  [bindings] and
    [occupancy_max] report {e cumulative} distinct bindings (memory +
    disk), so live-set accounting reads the same as the purely
    in-memory stores. *)

type 'a t

val key_of_fingerprint : Fingerprint.t -> string
(** Order-preserving 8-byte big-endian image of the full 63-bit
    fingerprint: byte order = numeric order ({!Block_file}'s probe
    contract). *)

val default_shard_bits : int

val create :
  ?shard_bits:int ->
  ?size:int ->
  equal:('a -> 'a -> bool) ->
  fingerprint:('a -> Fingerprint.t) ->
  dir:string ->
  mem_budget:int ->
  unit ->
  'a t
(** A fresh store spilling into a private subdirectory of [dir]
    (created if missing).  [mem_budget] is the high-water resident
    binding count (clamped to ≥ 1); eviction drains residency to at
    most half of it.  [shard_bits] is clamped to 0..10. *)

val shards : 'a t -> int
val shard_bits : 'a t -> int
val shard_of : 'a t -> Fingerprint.t -> int
val shard_of_state : 'a t -> 'a -> int

val mem : 'a t -> 'a -> bool
(** Membership in memory or on disk; counts one probe (plus one
    spill probe if the disk is consulted). *)

val add : 'a t -> 'a -> unit
(** Uncounted insert; re-checks only the in-memory bucket (the
    caller's preceding {!mem} covered the disk). *)

val add_if_absent : 'a t -> 'a -> bool
(** Atomic probe-and-insert; counts one probe; [true] iff inserted. *)

val maybe_evict : 'a t -> unit
(** Spill if resident bindings have reached the memory budget: the
    drivers call this at deterministic points (serial: after each
    insert; layers: between layers; async: per processed state).
    Takes every shard lock; callers must hold none. *)

val bindings : 'a t -> int
(** Cumulative distinct bindings, in memory and on disk. *)

val resident : 'a t -> int
(** Bindings currently in memory. *)

val probes : 'a t -> int
val collision_fallbacks : 'a t -> int
val lock_contention : 'a t -> int

val occupancy_max : 'a t -> int
(** Max per-shard cumulative bindings. *)

val spill_runs : 'a t -> int
val spill_evictions : 'a t -> int
(** Shard flushes (several per run). *)

val spill_probes : 'a t -> int
val spill_read_bytes : 'a t -> int
val spill_write_bytes : 'a t -> int

val spill_fd_reopens : 'a t -> int
(** Run-file opens beyond each run's first, summed over runs — probes
    that missed {!Block_file}'s bounded descriptor cache.  0 when
    every run's descriptor stayed cached.  Deterministic when this
    store is the only one probing (the serial and layered drivers at
    [jobs = 1]); the cache is process-global, so concurrent stores or
    domains evict each other's descriptors schedule-dependently. *)

val dispose : 'a t -> unit
(** Delete the run files and the private subdirectory. *)
