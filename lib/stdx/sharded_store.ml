module Fp_tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Fingerprint.to_int
end)

type 'a shard = {
  lock : Mutex.t;
  tbl : 'a list Fp_tbl.t;
  mutable bindings : int;
  mutable probes : int;
  mutable collision_fallbacks : int;
  mutable contention : int;
}

type 'a t = {
  equal : 'a -> 'a -> bool;
  fingerprint : 'a -> Fingerprint.t;
  shard_bits : int;
  shards : 'a shard array;
}

let default_shard_bits = 4

let create ?(shard_bits = default_shard_bits) ?(size = 256) ~equal ~fingerprint () =
  let shard_bits = max 0 (min 10 shard_bits) in
  let shards =
    Array.init (1 lsl shard_bits) (fun _ ->
        {
          lock = Mutex.create ();
          tbl = Fp_tbl.create size;
          bindings = 0;
          probes = 0;
          collision_fallbacks = 0;
          contention = 0;
        })
  in
  { equal; fingerprint; shard_bits; shards }

let shards t = Array.length t.shards
let shard_bits t = t.shard_bits

(* [Fingerprint.to_int] is a 62-bit nonnegative projection; the top
   [shard_bits] of it pick the shard.  Using the high bits keeps the
   shard index independent of the low bits the per-shard hashtable
   hashes on. *)
let shard_of t fp = Fingerprint.to_int fp lsr (62 - t.shard_bits)
let shard_of_state t x = shard_of t (t.fingerprint x)

let with_lock sh f =
  if Mutex.try_lock sh.lock then ()
  else begin
    sh.contention <- sh.contention + 1;
    Mutex.lock sh.lock
  end;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.lock) f

(* Same collision discipline as the serial [Search.Store]: a
   fingerprint hit is confirmed structurally, and a bucket member that
   fails the structural test is a certified 64-bit collision. *)
let bucket_mem t sh x bucket =
  if List.exists (fun y -> not (t.equal x y)) bucket then
    sh.collision_fallbacks <- sh.collision_fallbacks + 1;
  List.exists (t.equal x) bucket

let mem t x =
  let fp = t.fingerprint x in
  let sh = t.shards.(shard_of t fp) in
  with_lock sh (fun () ->
      sh.probes <- sh.probes + 1;
      match Fp_tbl.find_opt sh.tbl fp with
      | None -> false
      | Some bucket -> bucket_mem t sh x bucket)

let add_if_absent t x =
  let fp = t.fingerprint x in
  let sh = t.shards.(shard_of t fp) in
  with_lock sh (fun () ->
      sh.probes <- sh.probes + 1;
      let bucket = match Fp_tbl.find_opt sh.tbl fp with Some b -> b | None -> [] in
      if bucket_mem t sh x bucket then false
      else begin
        Fp_tbl.replace sh.tbl fp (x :: bucket);
        sh.bindings <- sh.bindings + 1;
        true
      end)

let sum f t = Array.fold_left (fun acc sh -> acc + f sh) 0 t.shards

let bindings t = sum (fun sh -> sh.bindings) t
let probes t = sum (fun sh -> sh.probes) t
let collision_fallbacks t = sum (fun sh -> sh.collision_fallbacks) t
let lock_contention t = sum (fun sh -> sh.contention) t
let occupancy t = Array.map (fun sh -> sh.bindings) t.shards
let occupancy_max t = Array.fold_left (fun acc sh -> max acc sh.bindings) 0 t.shards
