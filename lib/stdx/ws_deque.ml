(* Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005; memory
   ordering after Lê et al., PPoPP 2013), on OCaml 5 atomics.

   One domain owns the deque and works on the bottom end ([push],
   [pop]); any other domain may [steal] from the top.  Cells and the
   buffer pointer are [Atomic.t], so every cross-domain access is
   sequentially consistent — the fences of the C11 formulation are
   implicit and the only subtle part left is the index discipline:

   - [top] only ever grows (a steal CASes it forward; the owner's
     contended last-element pop does the same), so a successful CAS
     from [t] proves nobody else consumed index [t];
   - the owner keeps [bottom - top <= size], growing the buffer
     before a push would wrap onto a live slot, so the cell a thief
     read at logical index [t] is never overwritten while [top <= t]
     — the grown copy writes a fresh buffer and leaves the old one
     intact for any thief still holding it. *)

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a option Atomic.t array Atomic.t;
}

type 'a steal_result = Stolen of 'a | Empty | Retry

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(capacity = 256) () =
  let cap = pow2 (max 2 capacity) 2 in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (Array.init cap (fun _ -> Atomic.make None));
  }

let mask a = Array.length a - 1

(* owner only: double the buffer, copying the live window [t, b) at
   the same logical indices.  The old buffer is not mutated, so a
   thief that read it before the swap still sees valid cells. *)
let grow q b t =
  let a = Atomic.get q.buf in
  let n = Array.length a in
  let a' = Array.init (2 * n) (fun _ -> Atomic.make None) in
  for i = t to b - 1 do
    Atomic.set a'.(i land (2 * n - 1)) (Atomic.get a.(i land (n - 1)))
  done;
  Atomic.set q.buf a'

let push q x =
  let b = Atomic.get q.bottom and t = Atomic.get q.top in
  let a = Atomic.get q.buf in
  let a =
    if b - t >= Array.length a then begin
      grow q b t;
      Atomic.get q.buf
    end
    else a
  in
  Atomic.set a.(b land mask a) (Some x);
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  let a = Atomic.get q.buf in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* empty: restore the canonical empty shape bottom = top *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let cell = a.(b land mask a) in
    let x = Atomic.get cell in
    if b > t then begin
      Atomic.set cell None;
      x
    end
    else begin
      (* last element: race thieves for index t on the top end *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then begin
        Atomic.set cell None;
        x
      end
      else None
    end
  end

let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then Empty
  else begin
    let a = Atomic.get q.buf in
    let x = Atomic.get a.(t land mask a) in
    if Atomic.compare_and_set q.top t (t + 1) then
      (* the CAS succeeded, so no consumer passed index t before us:
         the cell held the live value when we read it *)
      match x with Some v -> Stolen v | None -> Retry
    else Retry
  end

let size q = max 0 (Atomic.get q.bottom - Atomic.get q.top)
