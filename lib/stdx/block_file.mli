(** Append-once sorted-run files of fixed-width records — the on-disk
    half of {!Spill_store}.

    A run is a flat file of 16-byte records: an 8-byte big-endian key
    followed by an 8-byte big-endian payload (the {!Dict} encoding
    discipline widened to two words).  Because the keys are big-endian,
    byte order coincides with numeric order, so a run written in
    ascending key order can be searched with plain [String.compare]:
    a probe binary-searches an in-memory {e fence index} (the first
    key of every 256-record block, 8 bytes per 4 KiB of file) down to
    one block, reads that block, and binary-searches the records in
    it.  One probe therefore costs at most one 4 KiB read.

    Runs are immutable after {!create}.  Between probes a run's file
    descriptor lives at most in a small process-global LRU cache (64
    entries), so a store that has spilled thousands of small runs
    still uses O(1) descriptors while the hot runs avoid an
    open/close syscall pair per probe.  The cache hands out channels
    by {e claim}: a probe removes the channel, seeks and reads with
    exclusive ownership, and re-inserts it, so concurrent probes from
    several domains are free to overlap (the loser of a claim race
    opens a transient extra descriptor); only the counters are
    guarded by an internal mutex. *)

val record_width : int
(** 16 — bytes per record. *)

val key_width : int
(** 8 — bytes per key. *)

val block_records : int
(** 256 — records per block; one fence entry and at most one read per
    probe. *)

val encode_record : Bytes.t -> int -> key:string -> payload:int -> unit
(** Write one record at the given offset: the 8-byte [key] verbatim,
    then [payload] big-endian.  Raises [Invalid_argument] unless
    [key] is exactly {!key_width} bytes. *)

val decode_key : string -> int -> string
(** The key of the record at the given byte offset. *)

val decode_payload : string -> int -> int
(** The payload of the record at the given byte offset (the record's
    start, not the payload's). *)

type t

val create : path:string -> (string * int) array -> t
(** Write the entries — which must be strictly ascending in key —
    as one sorted run at [path], building the fence index on the way
    out, and return the run opened for probing.  Raises
    [Invalid_argument] on an unsorted or duplicate key. *)

val probe : t -> string -> int option
(** Payload stored under the key, if any; at most one block read.
    Thread-safe.  Counted in {!probes} / {!read_bytes}. *)

val length : t -> int
(** Records in the run. *)

val write_bytes : t -> int
(** Bytes written by {!create} — [16 * length]. *)

val probes : t -> int

val read_bytes : t -> int
(** Bytes read from disk by probes so far. *)

val reopens : t -> int
(** Opens after the first — probes that missed the descriptor cache
    because this run's channel had been evicted (or claimed by a
    concurrent probe).  0 when the descriptor stayed cached for the
    run's whole life.  Deterministic for a deterministic probe
    sequence against a single store; schedule-dependent when several
    stores (or domains) share the cache. *)

val path : t -> string

val close : t -> unit
(** Release this run's cached descriptor, if any.  Probing again
    reopens the file. *)

val delete : t -> unit
(** Release the cached descriptor and remove the file
    (best-effort). *)
