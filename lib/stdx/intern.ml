module Fp_tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Fingerprint.to_int
end)

type 'a t = {
  equal : 'a -> 'a -> bool;
  tbl : 'a list Fp_tbl.t;
  mutable bindings : int;
  mutable probes : int;
  mutable hits : int;
}

let create ?(size = 256) ~equal () = { equal; tbl = Fp_tbl.create size; bindings = 0; probes = 0; hits = 0 }

let intern t ~fp x =
  t.probes <- t.probes + 1;
  match Fp_tbl.find_opt t.tbl fp with
  | None ->
    Fp_tbl.add t.tbl fp [ x ];
    t.bindings <- t.bindings + 1;
    x
  | Some bucket -> (
    match List.find_opt (t.equal x) bucket with
    | Some canonical ->
      t.hits <- t.hits + 1;
      canonical
    | None ->
      Fp_tbl.replace t.tbl fp (x :: bucket);
      t.bindings <- t.bindings + 1;
      x)

let bindings t = t.bindings
let probes t = t.probes
let hits t = t.hits
