type 'a t = {
  ids : ('a, int) Hashtbl.t;
  mutable rev : 'a option array; (* id -> value; slots [0, card) live *)
  mutable card : int;
}

let create ?(initial = 256) () =
  { ids = Hashtbl.create initial; rev = Array.make (max 16 initial) None; card = 0 }

let cardinal d = d.card

let grow d =
  let cap = Array.length d.rev in
  if d.card >= cap then begin
    let rev = Array.make (2 * cap) None in
    Array.blit d.rev 0 rev 0 cap;
    d.rev <- rev
  end

let intern d v =
  match Hashtbl.find_opt d.ids v with
  | Some id -> id
  | None ->
    let id = d.card in
    grow d;
    d.rev.(id) <- Some v;
    d.card <- id + 1;
    Hashtbl.add d.ids v id;
    id

let find d v = Hashtbl.find_opt d.ids v
let value d id = if id >= 0 && id < d.card then d.rev.(id) else None

let iter f d =
  for id = 0 to d.card - 1 do
    match d.rev.(id) with Some v -> f id v | None -> assert false
  done

(* ----- big-endian fixed-width key encoding ----- *)

let encoded_width = 8
let encode_into buf off id = Bytes.set_int64_be buf off (Int64.of_int id)

let encode id =
  let buf = Bytes.create encoded_width in
  encode_into buf 0 id;
  Bytes.unsafe_to_string buf

let decode s off = Int64.to_int (String.get_int64_be s off)
