let encode s =
  let n = String.length s in
  let b = Bytes.create (2 * n) in
  let digit d = Char.chr (if d < 10 then Char.code '0' + d else Char.code 'a' + d - 10) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set b (2 * i) (digit (c lsr 4));
    Bytes.set b ((2 * i) + 1) (digit (c land 15))
  done;
  Bytes.unsafe_to_string b

let decode s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd length";
  let v c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Hex.decode: not a hex digit"
  in
  String.init (n / 2) (fun i -> Char.chr ((v s.[2 * i] lsl 4) lor v s.[(2 * i) + 1]))
