(** Lowercase hexadecimal codec for binary blobs.

    The persistence layer is line-oriented JSON, which cannot carry
    raw [Marshal] bytes (newlines, control characters); hex doubles
    the size but keeps every fact a single printable line.  [encode]
    is total; [decode] raises [Invalid_argument] on odd length or a
    non-hex digit (uppercase digits are accepted). *)

val encode : string -> string
val decode : string -> string
