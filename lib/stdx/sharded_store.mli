(** A fingerprint-keyed visited store split into [2^shard_bits]
    shards, for concurrent insertion from worker domains.

    The shard of a state is the high bits of its precomputed 64-bit
    fingerprint, so the assignment is a pure function of the state —
    every domain routes a given state to the same shard, and a
    per-shard mutex is enough for linearizable insert/probe.  Like the
    serial {!Patterns_search.Search.Store}, a fingerprint match is
    never trusted on its own: membership is confirmed structurally,
    and a bucket member that fails the structural test is counted as a
    true 64-bit collision.

    Determinism: the {e set} of states a shard holds is a pure
    function of the inserts it received; the {e insertion order}
    within a shard is deterministic only if at most one domain inserts
    into that shard at a time.  The level-synchronous parallel BFS
    driver exploits exactly this — it partitions each layer's
    candidates by shard and hands each shard's candidates, in
    canonical order, to a single task. *)

type 'a t

val create :
  ?shard_bits:int ->
  ?size:int ->
  equal:('a -> 'a -> bool) ->
  fingerprint:('a -> Fingerprint.t) ->
  unit ->
  'a t
(** [2^shard_bits] shards (default {!default_shard_bits}, clamped to
    [0..10]), each an initially [size]-bucket table.  [equal] must
    agree with [fingerprint]: equal states have equal fingerprints. *)

val default_shard_bits : int
(** 4 — 16 shards.  A constant, not a function of the worker count,
    so shard-indexed statistics are identical for every [--jobs]
    value. *)

val shards : 'a t -> int
val shard_bits : 'a t -> int
val shard_of : 'a t -> Fingerprint.t -> int
(** Shard index from the high bits of the fingerprint. *)

val shard_of_state : 'a t -> 'a -> int

val mem : 'a t -> 'a -> bool
(** Locking probe (counted in {!probes}). *)

val add_if_absent : 'a t -> 'a -> bool
(** Insert unless an equal state is present; [true] if inserted.  One
    locked probe-and-insert (counted in {!probes}). *)

val bindings : 'a t -> int
(** Total distinct states stored, summed over shards in index order. *)

val probes : 'a t -> int

val collision_fallbacks : 'a t -> int
(** Probes that met a fingerprint-equal but structurally distinct
    state.  Expected 0 on every workload in this repository. *)

val lock_contention : 'a t -> int
(** Number of lock acquisitions that found the shard mutex already
    held.  Nondeterministic under [jobs > 1] — an observability
    counter, never compared across runs. *)

val occupancy : 'a t -> int array
(** Per-shard binding counts, in shard-index order. *)

val occupancy_max : 'a t -> int
