(* Lock-free open-addressing visited table.

   A flat array of [int Atomic.t] slots indexed by linear probing on
   the state's fingerprint key.  0 marks an empty slot; an occupied
   slot stores [lnot key] — keys are nonnegative ([Fingerprint.to_int]
   is 62-bit), so the stored form is always negative and never
   collides with the empty marker.  Insertion claims an empty slot
   with a single compare-and-set; the state itself is published
   through a parallel ['a option Atomic.t] array after the claim, and
   readers that see a claimed slot spin until the value appears (the
   window is two instructions wide).

   Memory-ordering argument: every cross-domain access — slot, value
   cell, count, the buffer pointer, the resize handshake flags — is an
   OCaml [Atomic.t], and OCaml atomics are sequentially consistent.
   The two places that need more than per-cell atomicity:

   - {b claim/publish}: a reader that observed [lnot key] in slot [i]
     observed a store SC-after the claimer's CAS; the claimer's value
     store follows its CAS program-order, so the reader's spin
     terminates and yields the claimer's state, not a stale one.

   - {b resize handshake} (Dekker-style): a claimer sets its active
     flag, then reads [resizing]; the resizer sets [resizing], then
     reads the active flags.  Under any SC interleaving at least one
     side observes the other: a claimer that read [resizing = false]
     made its flag visible before the resizer's scan, so the resizer
     waits for it; otherwise the claimer backs off and retries against
     the published new table.  Migration therefore runs with no
     concurrent insertions and needs no CAS.

   Two same-state claimers racing for the same key converge on the
   same first-empty probe slot — the probe path over occupied slots is
   identical for an identical key — so exactly one CAS wins and the
   loser re-examines the slot, finds its own key, and reports a
   duplicate.  This is why a full table must {e resize and retry},
   never route the overflow elsewhere: splitting the probe path would
   let both racers succeed.

   A fingerprint hit is still never trusted on its own.  The slot
   match is confirmed structurally against the published state, and a
   true 63-bit collision — a different state with the same key — is
   routed to a conventional sharded (mutex) store, exactly like the
   serial kernel's bucket fallback.  Collisions are ~10^-6 per million
   states, so the mutex path is cold by construction; the driver's
   [lock_contention] metric stays 0 unless a collision actually
   occurred. *)

type counters = {
  mutable probes : int;
  mutable cas_retries : int;
  mutable collisions : int;
}

type 'a inner = { slots : int Atomic.t array; values : 'a option Atomic.t array }

type 'a t = {
  equal : 'a -> 'a -> bool;
  fingerprint : 'a -> Fingerprint.t;
  inner : 'a inner Atomic.t;
  count : int Atomic.t;
  resizing : bool Atomic.t;
  active : bool Atomic.t array;
  resize_lock : Mutex.t;
  fallback : 'a Sharded_store.t;
  counters : counters array;
  initial_bits : int;
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)
let bits_of cap = int_of_float (Float.round (Float.log2 (float_of_int cap)))

let make_inner cap =
  {
    slots = Array.init cap (fun _ -> Atomic.make 0);
    values = Array.init cap (fun _ -> Atomic.make None);
  }

let create ?(capacity = 4096) ~workers ~equal ~fingerprint () =
  if workers < 1 then invalid_arg "Atomic_table.create: workers must be positive";
  let cap = pow2 (max 64 capacity) 64 in
  {
    equal;
    fingerprint;
    inner = Atomic.make (make_inner cap);
    count = Atomic.make 0;
    resizing = Atomic.make false;
    active = Array.init workers (fun _ -> Atomic.make false);
    resize_lock = Mutex.create ();
    fallback = Sharded_store.create ~equal ~fingerprint ();
    counters =
      Array.init workers (fun _ -> { probes = 0; cas_retries = 0; collisions = 0 });
    initial_bits = bits_of cap;
  }

let capacity t = Array.length (Atomic.get t.inner).slots
let initial_bits t = t.initial_bits
let key_of t x = Fingerprint.to_int (t.fingerprint x)

(* spin out the claim/publish window *)
let rec value_of cell =
  match Atomic.get cell with
  | Some v -> v
  | None ->
    Domain.cpu_relax ();
    value_of cell

(* Migration runs exclusively (see the handshake below): plain probe
   to the first empty slot, plain stores. *)
let migrate old_inner new_inner =
  let n = Array.length old_inner.slots in
  let m = Array.length new_inner.slots in
  for i = 0 to n - 1 do
    let s = Atomic.get old_inner.slots.(i) in
    if s <> 0 then begin
      let v = value_of old_inner.values.(i) in
      let key = lnot s in
      let j = ref (key land (m - 1)) in
      while Atomic.get new_inner.slots.(!j) <> 0 do
        j := (!j + 1) land (m - 1)
      done;
      Atomic.set new_inner.slots.(!j) s;
      Atomic.set new_inner.values.(!j) (Some v)
    end
  done

(* Grow the table.  Caller must have cleared its own active flag.
   The lock serialises resizers; the capacity re-check under the lock
   deduplicates concurrent attempts triggered at the same level. *)
let resize t ~trigger_cap =
  Mutex.lock t.resize_lock;
  let cur = Atomic.get t.inner in
  if Array.length cur.slots <= trigger_cap then begin
    Atomic.set t.resizing true;
    (* wait for every in-flight insertion to retire *)
    Array.iter
      (fun flag ->
        while Atomic.get flag do
          Domain.cpu_relax ()
        done)
      t.active;
    let grown = make_inner (2 * Array.length cur.slots) in
    migrate cur grown;
    Atomic.set t.inner grown;
    Atomic.set t.resizing false
  end;
  Mutex.unlock t.resize_lock

(* true = fresh insertion (we own the state), false = already present *)
let add_if_absent t ~worker x =
  let c = t.counters.(worker) in
  c.probes <- c.probes + 1;
  let key = key_of t x in
  let stored = lnot key in
  let flag = t.active.(worker) in
  let rec attempt () =
    Atomic.set flag true;
    if Atomic.get t.resizing then begin
      Atomic.set flag false;
      while Atomic.get t.resizing do
        Domain.cpu_relax ()
      done;
      attempt ()
    end
    else begin
      let inner = Atomic.get t.inner in
      let cap = Array.length inner.slots in
      if 2 * Atomic.get t.count >= cap then begin
        (* load factor cap 1/2: grow before probing.  Every insertion
           re-checks at entry, so overshoot past the trigger is
           bounded by the worker count — far below full, and probe
           loops always terminate on an empty slot. *)
        Atomic.set flag false;
        resize t ~trigger_cap:cap;
        attempt ()
      end
      else begin
        let mask = cap - 1 in
        let rec probe i =
          let s = Atomic.get inner.slots.(i) in
          if s = 0 then
            if Atomic.compare_and_set inner.slots.(i) 0 stored then begin
              Atomic.set inner.values.(i) (Some x);
              Atomic.incr t.count;
              true
            end
            else begin
              (* lost the claim; the winner may hold our key — look
                 at the same slot again *)
              c.cas_retries <- c.cas_retries + 1;
              probe i
            end
          else if s = stored then begin
            let v = value_of inner.values.(i) in
            if t.equal v x then false
            else begin
              (* true fingerprint collision: the mutex fallback keeps
                 the structural-confirmation guarantee *)
              c.collisions <- c.collisions + 1;
              Sharded_store.add_if_absent t.fallback x
            end
          end
          else probe ((i + 1) land mask)
        in
        let r = probe (key land mask) in
        Atomic.set flag false;
        r
      end
    end
  in
  attempt ()

let mem t ~worker x =
  let c = t.counters.(worker) in
  c.probes <- c.probes + 1;
  let key = key_of t x in
  let stored = lnot key in
  (* reads never join the handshake: the published buffer is always a
     complete snapshot (slots are claimed, never cleared), and a read
     racing a migration simply sees the pre-migration table *)
  let inner = Atomic.get t.inner in
  let mask = Array.length inner.slots - 1 in
  let rec probe i =
    let s = Atomic.get inner.slots.(i) in
    if s = 0 then false
    else if s = stored then
      let v = value_of inner.values.(i) in
      t.equal v x || Sharded_store.mem t.fallback x
    else probe ((i + 1) land mask)
  in
  probe (key land mask)

let bindings t = Atomic.get t.count + Sharded_store.bindings t.fallback

let occupancy t =
  float_of_int (Atomic.get t.count) /. float_of_int (capacity t)

let sum f t = Array.fold_left (fun acc c -> acc + f c) 0 t.counters
let probes t = sum (fun c -> c.probes) t + Sharded_store.probes t.fallback
let cas_retries t = sum (fun c -> c.cas_retries) t

let collision_fallbacks t =
  sum (fun c -> c.collisions) t + Sharded_store.collision_fallbacks t.fallback

let lock_contention t = Sharded_store.lock_contention t.fallback
