module Fp_tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Fingerprint.to_int
end)

type 'a shard = {
  lock : Mutex.t;
  tbl : ('a * int) list Fp_tbl.t; (* fp -> (state, dense id) bucket *)
  mutable resident : int; (* bindings currently in memory *)
  mutable total : int; (* cumulative distinct bindings, never reset *)
  mutable probes : int;
  mutable disk_probes : int;
  mutable collision_fallbacks : int;
  mutable contention : int;
}

type 'a t = {
  equal : 'a -> 'a -> bool;
  fingerprint : 'a -> Fingerprint.t;
  shard_bits : int;
  shards : 'a shard array;
  dir : string; (* this store's private subdirectory *)
  mem_budget : int;
  next_id : int Atomic.t; (* dense dictionary ids, in insertion order *)
  evict_lock : Mutex.t;
  (* the fields below are written only under [evict_lock] + all shard
     locks; readers hold at least one shard lock (probes) or take the
     shard locks themselves (counter snapshots) *)
  mutable runs : Block_file.t list; (* newest first *)
  mutable runs_written : int;
  mutable shards_evicted : int;
  mutable spilled_write_bytes : int;
}

(* [Fingerprint.t] is a native int; xor-ing the sign bit of its Int64
   image gives an order-preserving unsigned image, so the big-endian
   bytes sort like the fingerprints themselves — the full 63 bits,
   not the folded [to_int] projection the shard index uses. *)
let key_of_fingerprint fp =
  let buf = Bytes.create Block_file.key_width in
  Bytes.set_int64_be buf 0 (Int64.logxor (Int64.of_int (fp : Fingerprint.t)) Int64.min_int);
  Bytes.unsafe_to_string buf

let default_shard_bits = Sharded_store.default_shard_bits

let store_seq = Atomic.make 0

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()

let create ?(shard_bits = default_shard_bits) ?(size = 256) ~equal ~fingerprint ~dir
    ~mem_budget () =
  let shard_bits = max 0 (min 10 shard_bits) in
  ensure_dir dir;
  (* a private subdirectory per store: concurrent per-root stores
     share [dir] without sharing file names, and [dispose] can remove
     the whole thing *)
  let sub =
    Filename.concat dir (Printf.sprintf "store-%06d" (Atomic.fetch_and_add store_seq 1))
  in
  Sys.mkdir sub 0o755;
  let shards =
    Array.init (1 lsl shard_bits) (fun _ ->
        {
          lock = Mutex.create ();
          tbl = Fp_tbl.create size;
          resident = 0;
          total = 0;
          probes = 0;
          disk_probes = 0;
          collision_fallbacks = 0;
          contention = 0;
        })
  in
  {
    equal;
    fingerprint;
    shard_bits;
    shards;
    dir = sub;
    mem_budget = max 1 mem_budget;
    next_id = Atomic.make 0;
    evict_lock = Mutex.create ();
    runs = [];
    runs_written = 0;
    shards_evicted = 0;
    spilled_write_bytes = 0;
  }

let shards t = Array.length t.shards
let shard_bits t = t.shard_bits

(* same routing as {!Sharded_store}: the high bits of the folded
   projection pick the shard, independently of the low bits the
   per-shard hashtable hashes on *)
let shard_of t fp = Fingerprint.to_int fp lsr (62 - t.shard_bits)
let shard_of_state t x = shard_of t (t.fingerprint x)

let with_lock sh f =
  if Mutex.try_lock sh.lock then ()
  else begin
    sh.contention <- sh.contention + 1;
    Mutex.lock sh.lock
  end;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.lock) f

(* in-memory membership keeps the structural-confirmation discipline
   of the other stores; a bucket member that fails it is a certified
   collision *)
let bucket_mem t sh x bucket =
  if List.exists (fun (y, _) -> not (t.equal x y)) bucket then
    sh.collision_fallbacks <- sh.collision_fallbacks + 1;
  List.exists (fun (y, _) -> t.equal x y) bucket

(* Disk membership trusts the 63-bit fingerprint alone: the spilled
   state is gone, so there is nothing to confirm against.  This is
   the one place the store's answer rests on collision-freeness —
   the same assumption [collision_fallbacks] certifies (≈ 0 on every
   workload here) for the in-memory half. *)
let disk_mem t sh fp =
  match t.runs with
  | [] -> false
  | runs ->
    sh.disk_probes <- sh.disk_probes + 1;
    let key = key_of_fingerprint fp in
    List.exists (fun run -> Block_file.probe run key <> None) runs

let mem t x =
  let fp = t.fingerprint x in
  let sh = t.shards.(shard_of t fp) in
  with_lock sh (fun () ->
      sh.probes <- sh.probes + 1;
      let in_mem =
        match Fp_tbl.find_opt sh.tbl fp with
        | None -> false
        | Some bucket -> bucket_mem t sh x bucket
      in
      in_mem || disk_mem t sh fp)

let insert t sh fp x bucket =
  let id = Atomic.fetch_and_add t.next_id 1 in
  Fp_tbl.replace sh.tbl fp ((x, id) :: bucket);
  sh.resident <- sh.resident + 1;
  sh.total <- sh.total + 1

(* Uncounted insert for the serial driver, whose [add] follows a
   counted [mem] that already established absence (including on
   disk); only the in-memory bucket is re-checked, as in
   [Search.Store.add]. *)
let add t x =
  let fp = t.fingerprint x in
  let sh = t.shards.(shard_of t fp) in
  with_lock sh (fun () ->
      let bucket = match Fp_tbl.find_opt sh.tbl fp with Some b -> b | None -> [] in
      if not (List.exists (fun (y, _) -> t.equal x y) bucket) then insert t sh fp x bucket)

let add_if_absent t x =
  let fp = t.fingerprint x in
  let sh = t.shards.(shard_of t fp) in
  with_lock sh (fun () ->
      sh.probes <- sh.probes + 1;
      let bucket = match Fp_tbl.find_opt sh.tbl fp with Some b -> b | None -> [] in
      if bucket_mem t sh x bucket || disk_mem t sh fp then false
      else begin
        insert t sh fp x bucket;
        true
      end)

(* ----- eviction ----- *)

let sum f t = Array.fold_left (fun acc sh -> acc + f sh) 0 t.shards

let resident t = sum (fun sh -> sh.resident) t
let bindings t = sum (fun sh -> sh.total) t
let probes t = sum (fun sh -> sh.probes) t
let collision_fallbacks t = sum (fun sh -> sh.collision_fallbacks) t
let lock_contention t = sum (fun sh -> sh.contention) t
let occupancy_max t = Array.fold_left (fun acc sh -> max acc sh.total) 0 t.shards

let spill_probes t = sum (fun sh -> sh.disk_probes) t
let spill_runs t = t.runs_written
let spill_evictions t = t.shards_evicted
let spill_write_bytes t = t.spilled_write_bytes
let spill_read_bytes t = List.fold_left (fun acc r -> acc + Block_file.read_bytes r) 0 t.runs
let spill_fd_reopens t = List.fold_left (fun acc r -> acc + Block_file.reopens r) 0 t.runs

let lock_all t = Array.iter (fun sh -> Mutex.lock sh.lock) t.shards
let unlock_all t = Array.iter (fun sh -> Mutex.unlock sh.lock) t.shards

(* Eviction policy: when the resident count reaches the high-water
   mark, flush whole shards — largest resident count first, lower
   index on ties — until at most half the budget remains resident
   (shard size is the deterministic coldness proxy: routing is a hash
   of the state, so every shard is probed at the same rate and the
   largest shard holds the most states that will never be probed
   again).  All flushed bindings go to disk as one sorted run of
   (fingerprint key, dense id) records; the flushed shards drop to
   zero resident but keep their cumulative totals, so [bindings] and
   [occupancy_max] read the same with or without spilling. *)
let evict_locked t =
  let order = Array.init (Array.length t.shards) Fun.id in
  Array.sort
    (fun a b ->
      match compare t.shards.(b).resident t.shards.(a).resident with
      | 0 -> compare a b
      | c -> c)
    order;
  let low_water = t.mem_budget / 2 in
  let live = ref (resident t) in
  let chosen = ref [] in
  Array.iter
    (fun i ->
      if !live > low_water && t.shards.(i).resident > 0 then begin
        chosen := i :: !chosen;
        live := !live - t.shards.(i).resident
      end)
    order;
  let chosen = List.rev !chosen in
  let entries = ref [] in
  List.iter
    (fun i ->
      let sh = t.shards.(i) in
      Fp_tbl.iter
        (fun fp bucket ->
          (* one record per fingerprint: the payload is the dense id of
             the first state interned under it (the bucket is
             newest-first) *)
          match List.rev bucket with
          | (_, id) :: _ -> entries := (key_of_fingerprint fp, id) :: !entries
          | [] -> ())
        sh.tbl)
    chosen;
  (match !entries with
  | [] -> ()
  | es ->
    let arr = Array.of_list es in
    Array.sort (fun (a, _) (b, _) -> String.compare a b) arr;
    let path = Filename.concat t.dir (Printf.sprintf "run-%04d.blk" t.runs_written) in
    let run = Block_file.create ~path arr in
    t.runs <- run :: t.runs;
    t.runs_written <- t.runs_written + 1;
    t.spilled_write_bytes <- t.spilled_write_bytes + Block_file.write_bytes run);
  List.iter
    (fun i ->
      let sh = t.shards.(i) in
      Fp_tbl.reset sh.tbl;
      sh.resident <- 0;
      t.shards_evicted <- t.shards_evicted + 1)
    chosen

let maybe_evict t =
  (* cheap unsynchronized high-water check first; the exact decision
     re-reads the counts under every shard lock *)
  if resident t >= t.mem_budget then begin
    Mutex.lock t.evict_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.evict_lock)
      (fun () ->
        lock_all t;
        Fun.protect
          ~finally:(fun () -> unlock_all t)
          (fun () -> if resident t >= t.mem_budget then evict_locked t))
  end

let dispose t =
  List.iter Block_file.delete t.runs;
  t.runs <- [];
  try Sys.rmdir t.dir with Sys_error _ -> ()
