(** Global dictionary: values to dense, monotonically-assigned ids.

    Where {!Intern} hash-conses values {e per root} to maximise
    physical sharing during one search, [Dict] is the {e global}
    dictionary of the execution database: every distinct value (a
    config fingerprint, an event descriptor) is assigned the next
    dense id [0, 1, 2, ...] on first sight, and ids never change for
    the lifetime of the dictionary.  Dense ids make index keys
    fixed-width, and the companion big-endian encoding below makes
    lexicographic byte order coincide with numeric id order — so a
    prefix scan of an index is a contiguous byte-order scan.

    Not thread-safe: callers that share a dictionary across domains
    must serialise access (the edge database guards all writes with
    its own mutex). *)

type 'a t

val create : ?initial:int -> unit -> 'a t
(** Fresh empty dictionary; [initial] sizes the hash table (default
    256). *)

val intern : 'a t -> 'a -> int
(** [intern d v] is the id of [v], assigning the next dense id if [v]
    has not been seen before.  Ids are assigned [0, 1, 2, ...] in
    first-sight order. *)

val find : 'a t -> 'a -> int option
(** The id of a value if already interned; never assigns. *)

val value : 'a t -> int -> 'a option
(** Reverse lookup: the value carrying an id, [None] if the id has not
    been assigned. *)

val cardinal : 'a t -> int
(** Number of interned values; also the next id to be assigned. *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** Iterate bindings in ascending id order (= first-sight order). *)

(** {1 Big-endian fixed-width key encoding}

    Ids encode as 8 big-endian bytes, so for nonnegative ids the
    lexicographic order of encodings equals the numeric order — the
    property covering indexes rely on for prefix scans. *)

val encoded_width : int
(** Bytes per encoded id: 8. *)

val encode_into : Bytes.t -> int -> int -> unit
(** [encode_into buf off id] writes the 8-byte big-endian encoding of
    [id] at offset [off]. *)

val encode : int -> string
(** [encode id] is the standalone 8-byte big-endian encoding. *)

val decode : string -> int -> int
(** [decode s off] reads the 8-byte big-endian id at offset [off].
    Inverse of {!encode_into} for ids that fit in an OCaml [int]. *)
