type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option; (* towards most-recent *)
  mutable next : ('k, 'v) node option; (* towards least-recent *)
}

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  on_evict : 'k -> 'v -> unit;
  mutable first : ('k, 'v) node option; (* most-recent *)
  mutable last : ('k, 'v) node option; (* least-recent *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(on_evict = fun _ _ -> ()) ~capacity () =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  {
    cap = capacity;
    tbl = Hashtbl.create capacity;
    on_evict;
    first = None;
    last = None;
    hits = 0;
    misses = 0;
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.first <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.last <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.first;
  (match t.first with Some f -> f.prev <- Some n | None -> t.last <- Some n);
  t.first <- Some n

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
    t.hits <- t.hits + 1;
    (match t.first with
    | Some f when f == n -> ()
    | _ ->
      unlink t n;
      push_front t n);
    Some n.value
  | None ->
    t.misses <- t.misses + 1;
    None

let add t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
    n.value <- v;
    (match t.first with
    | Some f when f == n -> ()
    | _ ->
      unlink t n;
      push_front t n)
  | None ->
    if Hashtbl.length t.tbl >= t.cap then (
      match t.last with
      | Some victim ->
        unlink t victim;
        Hashtbl.remove t.tbl victim.key;
        t.on_evict victim.key victim.value
      | None -> ());
    let n = { key = k; value = v; prev = None; next = None } in
    Hashtbl.add t.tbl k n;
    push_front t n

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl k;
    Some n.value

let clear t =
  Hashtbl.reset t.tbl;
  t.first <- None;
  t.last <- None

let length t = Hashtbl.length t.tbl
let capacity t = t.cap
let hits t = t.hits
let misses t = t.misses
