type batch = {
  tasks : (unit -> unit) array;
  next : int Atomic.t;  (* next unclaimed task index *)
  completed : int Atomic.t;
  id : int;  (* distinguishes successive batches for idle workers *)
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;  (* a batch was published, or the pool closed *)
  finished : Condition.t;  (* the current batch completed *)
  mutable batch : batch option;
  mutable epoch : int;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.jobs
let default_jobs () = Domain.recommended_domain_count ()

(* Claim tasks until the batch is exhausted; whoever completes the
   last task wakes the owner.  Runs outside the pool mutex. *)
let run_tasks t b =
  let len = Array.length b.tasks in
  let rec pull () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < len then begin
      b.tasks.(i) ();
      let c = 1 + Atomic.fetch_and_add b.completed 1 in
      if c = len then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.finished;
        Mutex.unlock t.mutex
      end;
      pull ()
    end
  in
  pull ()

let worker_loop t =
  let last_seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    let rec await () =
      match t.batch with
      | Some b when b.id <> !last_seen -> Some b
      | _ -> if t.closed then None else (Condition.wait t.work t.mutex; await ())
    in
    match await () with
    | None -> Mutex.unlock t.mutex
    | Some b ->
      Mutex.unlock t.mutex;
      last_seen := b.id;
      run_tasks t b;
      loop ()
  in
  loop ()

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      epoch = 0;
      closed = false;
      workers = [];
    }
  in
  (* the calling domain is worker number [jobs]; spawn the rest *)
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  let ws = t.workers in
  t.workers <- [];
  List.iter Domain.join ws

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when t.jobs = 1 -> List.map f xs
  | _ ->
    let input = Array.of_list xs in
    let len = Array.length input in
    let results = Array.make len None in
    let errors = Array.make len None in
    let tasks =
      Array.init len (fun i () ->
          match f input.(i) with
          | r -> results.(i) <- Some r
          | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()))
    in
    let b =
      { tasks; next = Atomic.make 0; completed = Atomic.make 0; id = t.epoch + 1 }
    in
    Mutex.lock t.mutex;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Domain_pool.map: pool is shut down"
    end;
    t.epoch <- b.id;
    t.batch <- Some b;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    (* the owner is a worker too *)
    run_tasks t b;
    Mutex.lock t.mutex;
    while Atomic.get b.completed < len do
      Condition.wait t.finished t.mutex
    done;
    t.batch <- None;
    Mutex.unlock t.mutex;
    (* deterministic error propagation: first failing index wins, with
       the worker's backtrace reattached *)
    Array.iter
      (function Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
      errors;
    Array.to_list (Array.map Option.get results)

let fold t ~f ~merge ~init xs = List.fold_left merge init (map t f xs)
