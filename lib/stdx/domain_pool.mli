(** A fixed pool of worker domains for embarrassingly parallel loops.

    The exploration layers (scheme enumeration, exhaustive model
    checking, randomized hunting) all have the same shape: a list of
    independent shards (input vectors, seeds) whose per-shard results
    are merged into one answer.  [Domain_pool] runs the shards on a
    fixed set of {!Domain.t} workers and merges results in input
    order, so the answer is bit-identical to the sequential loop no
    matter how the shards interleave at runtime.

    Determinism contract: [map pool f xs] equals [List.map f xs] and
    [fold pool ~f ~merge ~init xs] equals
    [List.fold_left (fun acc x -> merge acc (f x)) init xs] whenever
    [f] is pure — results are committed into a positional buffer and
    merged left-to-right, never in completion order.

    A pool with [jobs = 1] spawns no domains at all and runs every
    task inline on the calling domain, so the sequential path is the
    parallel path with one worker, not separate code. *)

type t

val create : jobs:int -> t
(** A pool of [max 1 jobs] workers.  [jobs - 1] domains are spawned
    eagerly (the calling domain is the remaining worker); they idle on
    a condition variable between batches until {!shutdown}. *)

val jobs : t -> int

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], the runtime's estimate of
    usable cores. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs]: apply [f] to every element, distributing
    elements over the workers; results are returned in input order.
    [map pool f [] = []] without touching the workers, and a
    single-element or [jobs = 1] map runs entirely on the calling
    domain.  The first exception raised by any [f] (in input order) is
    re-raised after the batch drains, with the raising worker's
    backtrace reattached; the pool survives and can run further
    batches.  Nested calls on the same pool are not supported; calls
    from the pool-owning domain are. *)

val fold : t -> f:('a -> 'b) -> merge:('acc -> 'b -> 'acc) -> init:'acc -> 'a list -> 'acc
(** [fold pool ~f ~merge ~init xs]: parallel [f], then a sequential
    left fold of [merge] over the results in input order — the
    deterministic reduce used by all exploration merges. *)

val shutdown : t -> unit
(** Join the worker domains.  The pool must not be used afterwards.
    Idempotent. *)

val with_pool : jobs:int -> (t -> 'r) -> 'r
(** [create], run, [shutdown] (also on exceptions). *)
