(** Canonical word-sized fingerprints.

    A fingerprint is a native [int] (63 bits) built from two
    primitives:

    - {b sequential absorption} ([feed], [feed_bool]): an FNV-1a-style
      step — multiply by the FNV prime, xor the word in — followed by
      the SplitMix64 finalizer, so the result is order-sensitive and
      fully mixed after every step;
    - {b commutative combination} ([combine] = addition mod 2{^63},
      [remove] = subtraction): the multiset combine.  Because every
      summand has already been through the finalizer, the sum behaves
      like a sum of independent uniform words — unlike a plain sum of
      raw values, where small structured inputs collide constantly.

    [remove] inverting [combine] is what makes fingerprints cheap to
    maintain {e incrementally}: a state that changes one component
    subtracts the old contribution and adds the new one, O(1) per
    delta, with the invariant that the result equals the from-scratch
    fingerprint of the new state.

    The representation is deliberately an immediate [int], not an
    [int64]: fingerprint maintenance runs on every engine transition,
    and boxed [Int64] arithmetic allocates on every operation without
    flambda.  One bit of width is a negligible price — collision
    probability over a million states stays below 10{^-6}, and every
    consumer confirms fingerprint hits structurally anyway. *)

type t = int

val zero : t
(** Identity of {!combine} — the fingerprint of the empty multiset. *)

val seed : t
(** Fixed nonzero start for sequential absorption (the FNV-1a 64-bit
    offset basis, truncated to the native word). *)

val mix : int -> int
(** The SplitMix64 finalizer on the native word: a bijective
    full-avalanche mixer. *)

val feed : t -> int -> t
(** Absorb a word, order-sensitively, finalizing the step.  Absorbing
    an existing fingerprint is fine — it is just a well-mixed word. *)

val feed_bool : t -> bool -> t

val combine : t -> t -> t
(** Commutative, associative multiset combine (addition mod 2{^63}). *)

val remove : t -> t -> t
(** [remove (combine h x) x = h] — the inverse that enables
    incremental maintenance. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val to_int : t -> int
(** Nonnegative projection for [Hashtbl]-style consumers; the high
    bits are folded down so they survive a small modulus. *)

val of_int : int -> t
(** Promote an existing [int] hash to a mixed fingerprint. *)

val pp : Format.formatter -> t -> unit
