type t = int

let zero = 0

(* FNV-1a 64-bit offset basis, truncated to the native word.  A fixed,
   nonzero starting point for sequential absorption. *)
let seed = 0x4bf29ce484222325

(* SplitMix64 finalizer (Steele, Lea & Flood), on the 63-bit native
   word: a full-avalanche mixer, bijective mod 2^63 (the constants
   stay odd under truncation).  Every absorbed word passes through it,
   so single-bit input differences flip about half the output bits —
   which is what makes the commutative [combine] below
   collision-resistant, unlike a plain sum of raw values.

   The representation is a native [int] rather than an [int64] on
   purpose: this runs in the innermost loop of [apply] (a dozen calls
   per transition), and without flambda every [Int64] operation boxes
   its result — measured at ~2x on whole engine runs.  Native-word
   arithmetic never allocates. *)
let mix x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x3f58476d1ce4e5b9 in
  let x = x lxor (x lsr 27) in
  let x = x * 0x14d049bb133111eb in
  x lxor (x lsr 31)

(* FNV-1a prime; multiplying the accumulator before the xor makes the
   absorption order-sensitive. *)
let prime = 0x100000001b3

let feed h x = mix ((h * prime) lxor x)
let feed_bool h b = feed h (if b then 1 else 0)

let combine = ( + )
let remove = ( - )

let equal : t -> t -> bool = Int.equal
let compare : t -> t -> int = Int.compare

(* Nonnegative projection for [Hashtbl]-style consumers: fold the high
   bits down so they survive a small modulus. *)
let to_int h = (h lxor (h lsr 32)) land max_int

let of_int x = mix x

let pp ppf h = Format.fprintf ppf "%016x" (h land max_int)
