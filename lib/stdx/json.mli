(** Minimal JSON values: emit and parse, no external dependency.

    Enough JSON for the repository's machine-readable artifacts — the
    violation certificates and any future structured output.  The
    emitter preserves object key order (key order is part of every
    schema in this repository, pinned by cram tests); the parser is a
    plain recursive-descent reader of the full JSON grammar with one
    deliberate simplification: numbers without [.], [e] or [E] are
    read as [Int], everything else as [Float].  Unicode escapes
    [\uXXXX] decode to UTF-8: BMP escapes become their UTF-8 byte
    sequence, surrogate pairs ([\uD800]-[\uDBFF] followed by
    [\uDC00]-[\uDFFF]) combine into one astral code point, and lone
    surrogates are rejected — so strings containing non-ASCII query
    output round-trip through {!to_string}/{!of_string} (the emitter
    passes UTF-8 bytes through unescaped). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** key order preserved *)

val equal : t -> t -> bool
(** Structural, order-sensitive on [Obj] (two objects with the same
    bindings in different orders are different documents here — key
    order is part of the schemas). *)

val to_string : ?indent:int -> t -> string
(** Render with the given indentation step (default 2); objects and
    lists break one element per line, scalars render inline.  Strings
    are escaped per RFC 8259 (quote, backslash, control characters as
    [\u00XX]). *)

val of_string : string -> (t, string) result
(** Parse one JSON document (surrounding whitespace allowed).  [Error]
    carries a byte offset and a description. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the first binding of [k]; [None] on other
    constructors. *)

val to_int : t -> (int, string) result
val to_bool : t -> (bool, string) result
val to_str : t -> (string, string) result
val to_list : t -> (t list, string) result

val field : string -> t -> (t, string) result
(** Like {!member} but an [Error] naming the missing key. *)
