(** Minimal JSON values: emit and parse, no external dependency.

    Enough JSON for the repository's machine-readable artifacts — the
    violation certificates and any future structured output.  The
    emitter preserves object key order (key order is part of every
    schema in this repository, pinned by cram tests); the parser is a
    plain recursive-descent reader of the full JSON grammar with two
    deliberate simplifications: numbers without [.], [e] or [E] are
    read as [Int], everything else as [Float], and unicode escapes
    [\uXXXX] are passed through as their raw bytes only for the ASCII
    range (the artifacts this repository writes are pure ASCII). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** key order preserved *)

val equal : t -> t -> bool
(** Structural, order-sensitive on [Obj] (two objects with the same
    bindings in different orders are different documents here — key
    order is part of the schemas). *)

val to_string : ?indent:int -> t -> string
(** Render with the given indentation step (default 2); objects and
    lists break one element per line, scalars render inline.  Strings
    are escaped per RFC 8259 (quote, backslash, control characters as
    [\u00XX]). *)

val of_string : string -> (t, string) result
(** Parse one JSON document (surrounding whitespace allowed).  [Error]
    carries a byte offset and a description. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the first binding of [k]; [None] on other
    constructors. *)

val to_int : t -> (int, string) result
val to_bool : t -> (bool, string) result
val to_str : t -> (string, string) result
val to_list : t -> (t list, string) result

val field : string -> t -> (t, string) result
(** Like {!member} but an [Error] naming the missing key. *)
