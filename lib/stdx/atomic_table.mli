(** Lock-free open-addressing visited table.

    The asynchronous search driver's visited set: a flat atomic slot
    array keyed by state fingerprint, linear probing, one
    compare-and-set per fresh insertion — no mutex anywhere on the hit
    path.  A fingerprint hit is confirmed structurally against the
    published state, and a true 63-bit collision (different state,
    same key) is routed to an internal {!Sharded_store} exactly like
    the serial kernel's bucket fallback, so the certainty contract of
    the other stores is preserved bit for bit.

    The table grows by cooperative migration: an insertion that finds
    the load factor at 1/2 stops the world for insertions only — a
    Dekker-style handshake between per-worker active flags and a
    [resizing] flag — migrates into a doubled array, and republishes.
    Reads never participate in the handshake.

    Thread-safety: all operations may be called from any domain.
    [~worker] identifies the calling worker (0 ≤ worker < [workers])
    and must not be used concurrently from two domains — it indexes
    the per-worker counter cells and the handshake flag. *)

type 'a t

val create :
  ?capacity:int ->
  workers:int ->
  equal:('a -> 'a -> bool) ->
  fingerprint:('a -> Fingerprint.t) ->
  unit ->
  'a t
(** [capacity] (default 4096, rounded up to a power of two, min 64) is
    the initial slot count; the table holds [capacity / 2] states
    before its first migration, so presizing from a known budget makes
    resizes never happen.  Raises [Invalid_argument] if [workers < 1]. *)

val add_if_absent : 'a t -> worker:int -> 'a -> bool
(** [true] exactly once per distinct state, no matter how many workers
    race to insert it — the winner of the slot CAS.  One fingerprint
    probe is charged per call. *)

val mem : 'a t -> worker:int -> 'a -> bool

val bindings : 'a t -> int
(** Distinct states stored (table + collision fallback).  Exact in
    quiescence; monotone and at most the true count during a race. *)

val capacity : 'a t -> int
(** Current slot count (may have grown since [create]). *)

val initial_bits : 'a t -> int
(** log2 of the presized capacity — a create-time constant, reported
    as the async driver's [shard_bits] so the deterministic metrics
    never depend on racy resize timing. *)

val occupancy : 'a t -> float
(** Load factor [bindings / capacity] of the open-addressed array —
    volatile near a migration boundary. *)

val probes : 'a t -> int
(** One per [mem]/[add_if_absent] call (plus fallback probes):
    deterministic for a deterministic operation sequence. *)

val cas_retries : 'a t -> int
(** Slot claims lost to a racing worker — volatile by nature. *)

val collision_fallbacks : 'a t -> int
(** True fingerprint collisions routed to the mutex fallback. *)

val lock_contention : 'a t -> int
(** Contention observed by the fallback store: 0 unless a fingerprint
    collision actually occurred, i.e. the CAS path itself is
    lock-free. *)
