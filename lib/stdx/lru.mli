(** Bounded LRU cache with hit/miss counters.

    A capacity-bounded map evicting the least-recently-used binding on
    overflow.  {!find} refreshes recency and counts a hit or a miss;
    {!add} inserts at most-recent position.  Used as the query-result
    cache of the execution database (invalidated wholesale on every
    write — recorded runs are append-only, so between writes cached
    results are exact).

    Not thread-safe: callers serialise access externally. *)

type ('k, 'v) t

val create : capacity:int -> unit -> ('k, 'v) t
(** Fresh empty cache holding at most [capacity] bindings
    ([capacity <= 0] raises [Invalid_argument]). *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; on a hit the binding becomes most-recent and the hit
    counter increments, on a miss the miss counter increments. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace at most-recent position, evicting the
    least-recent binding if the capacity would be exceeded. *)

val clear : ('k, 'v) t -> unit
(** Drop all bindings (counters are preserved). *)

val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int

val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
