(** Bounded LRU cache with hit/miss counters.

    A capacity-bounded map evicting the least-recently-used binding on
    overflow.  {!find} refreshes recency and counts a hit or a miss;
    {!add} inserts at most-recent position.  Used as the query-result
    cache of the execution database (invalidated wholesale on every
    write — recorded runs are append-only, so between writes cached
    results are exact).

    Not thread-safe: callers serialise access externally. *)

type ('k, 'v) t

val create : ?on_evict:('k -> 'v -> unit) -> capacity:int -> unit -> ('k, 'v) t
(** Fresh empty cache holding at most [capacity] bindings
    ([capacity <= 0] raises [Invalid_argument]).  [on_evict] runs on
    every binding pushed out by a capacity overflow — the hook a cache
    of owned resources (e.g. open file descriptors) needs to release
    the victim.  It does not run on {!remove} or {!clear}, which hand
    the binding (or the whole map) back to the caller. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; on a hit the binding becomes most-recent and the hit
    counter increments, on a miss the miss counter increments. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace at most-recent position, evicting the
    least-recent binding if the capacity would be exceeded. *)

val remove : ('k, 'v) t -> 'k -> 'v option
(** Detach and return the binding for a key, if present — without
    running [on_evict]: the caller takes ownership of the value. *)

val clear : ('k, 'v) t -> unit
(** Drop all bindings without running [on_evict] (counters are
    preserved). *)

val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int

val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
