(** Fingerprint-keyed interning (hash-consing) tables.

    [intern t ~fp x] returns the canonical physical representative of
    [x]: the first structurally-equal value interned under the same
    fingerprint, or [x] itself if it is new.  Callers that route every
    constructed value through the table get pointer-shared values, so
    downstream equality checks can start with [==] and memory for
    repeated structures is paid once.

    Tables are single-domain mutable state: create one per search
    root (or per domain) rather than sharing across a
    {!Domain_pool}. *)

type 'a t

val create : ?size:int -> equal:('a -> 'a -> bool) -> unit -> 'a t
(** [equal] decides structural equality within a fingerprint bucket;
    it runs only on fingerprint collisions or repeats. *)

val intern : 'a t -> fp:Fingerprint.t -> 'a -> 'a
(** Canonical representative of [x] under fingerprint [fp].  The
    fingerprint must be consistent with [equal]: equal values must
    carry equal fingerprints. *)

val bindings : 'a t -> int
(** Distinct values interned so far. *)

val probes : 'a t -> int
(** Total [intern] calls. *)

val hits : 'a t -> int
(** Calls that returned an already-interned representative. *)
