let record_width = 16
let key_width = 8
let block_records = 256
let block_bytes = record_width * block_records

(* ----- fixed-width record codec ----- *)

(* A record is the 8-byte big-endian key followed by the 8-byte
   big-endian payload — the [Dict] discipline widened to two words.
   Big-endian is what makes [String.compare] on keys coincide with
   numeric order, so the run files below can be binary-searched as
   flat strings. *)
let encode_record buf off ~key ~payload =
  if String.length key <> key_width then
    invalid_arg "Block_file.encode_record: key must be 8 bytes";
  Bytes.blit_string key 0 buf off key_width;
  Bytes.set_int64_be buf (off + key_width) (Int64.of_int payload)

let decode_key s off = String.sub s off key_width
let decode_payload s off = Int64.to_int (String.get_int64_be s (off + key_width))

(* ----- bounded descriptor cache ----- *)

(* Probes used to open/read/close the run file every time — 21k+
   opens in the n=3 budget-500 check.  A small process-global LRU of
   open channels (path-keyed) absorbs almost all of them while still
   bounding descriptors when thousands of tiny runs exist.  The
   discipline is claim-based so no channel is ever shared: a probe
   {e removes} the channel from the cache (or opens one on a miss),
   performs its seek/read with exclusive ownership, and re-inserts it
   afterwards — the registry mutex is never held across I/O, and a
   channel evicted by a re-insert is by construction unclaimed, so
   closing it in the eviction hook is safe.  Two domains probing the
   same run concurrently just cost one transient extra descriptor. *)
let fd_cache_capacity = 64
let fd_lock = Mutex.create ()

let fd_cache : (string, in_channel) Lru.t =
  Lru.create ~on_evict:(fun _ ic -> close_in_noerr ic) ~capacity:fd_cache_capacity ()

(* claimed channel plus whether it was freshly opened (a cache miss) *)
let claim_channel path =
  Mutex.lock fd_lock;
  let cached = Lru.remove fd_cache path in
  Mutex.unlock fd_lock;
  match cached with Some ic -> (ic, false) | None -> (open_in_bin path, true)

let release_channel path ic =
  Mutex.lock fd_lock;
  (match Lru.find fd_cache path with
  | Some _ -> close_in_noerr ic (* a concurrent probe re-inserted first *)
  | None -> Lru.add fd_cache path ic);
  Mutex.unlock fd_lock

let drop_channel path =
  Mutex.lock fd_lock;
  let cached = Lru.remove fd_cache path in
  Mutex.unlock fd_lock;
  Option.iter close_in_noerr cached

(* ----- sorted runs ----- *)

(* Between probes a run's descriptor lives (if anywhere) in the
   process-global cache above, so a search that writes thousands of
   small runs (tiny memory budgets) still cannot exhaust the fd
   table.  The per-run mutex only guards the counters. *)
type t = {
  path : string;
  lock : Mutex.t;
  length : int; (* records *)
  write_bytes : int;
  fences : string array; (* first key of each block, in block order *)
  mutable probes : int;
  mutable read_bytes : int;
  mutable opened : bool; (* some probe has opened the file *)
  mutable reopens : int; (* opens after the first — descriptor-cache misses *)
}

let create ~path entries =
  let n = Array.length entries in
  let oc = open_out_bin path in
  let buf = Bytes.create record_width in
  let fences = Array.make ((n + block_records - 1) / block_records) "" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Array.iteri
        (fun i (key, payload) ->
          if i > 0 && String.compare (fst entries.(i - 1)) key >= 0 then
            invalid_arg "Block_file.create: keys must be strictly ascending";
          if i mod block_records = 0 then fences.(i / block_records) <- key;
          encode_record buf 0 ~key ~payload;
          output_bytes oc buf)
        entries);
  {
    path;
    lock = Mutex.create ();
    length = n;
    write_bytes = n * record_width;
    fences;
    probes = 0;
    read_bytes = 0;
    opened = false;
    reopens = 0;
  }

let length t = t.length
let write_bytes t = t.write_bytes
let probes t = t.probes
let read_bytes t = t.read_bytes
let reopens t = t.reopens
let path t = t.path

(* greatest block whose fence is <= key; None when the key sorts
   before every record *)
let block_of t key =
  if Array.length t.fences = 0 || String.compare key t.fences.(0) < 0 then None
  else begin
    let lo = ref 0 and hi = ref (Array.length t.fences - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if String.compare t.fences.(mid) key <= 0 then lo := mid else hi := mid - 1
    done;
    Some !lo
  end

let probe t key =
  if String.length key <> key_width then invalid_arg "Block_file.probe: key must be 8 bytes";
  match block_of t key with
  | None ->
    Mutex.lock t.lock;
    t.probes <- t.probes + 1;
    Mutex.unlock t.lock;
    None
  | Some b ->
    let off = b * block_bytes in
    let len = min block_bytes ((t.length * record_width) - off) in
    let ic, fresh = claim_channel t.path in
    let s =
      try
        seek_in ic off;
        let s = really_input_string ic len in
        release_channel t.path ic;
        s
      with e ->
        close_in_noerr ic;
        raise e
    in
    Mutex.lock t.lock;
    t.probes <- t.probes + 1;
    t.read_bytes <- t.read_bytes + len;
    if fresh then
      if t.opened then t.reopens <- t.reopens + 1 else t.opened <- true;
    Mutex.unlock t.lock;
    let nrec = len / record_width in
    let lo = ref 0 and hi = ref (nrec - 1) and found = ref None in
    while !found = None && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let c = String.compare (decode_key s (mid * record_width)) key in
      if c = 0 then found := Some (decode_payload s (mid * record_width))
      else if c < 0 then lo := mid + 1
      else hi := mid - 1
    done;
    !found

let close t = drop_channel t.path

let delete t =
  drop_channel t.path;
  try Sys.remove t.path with Sys_error _ -> ()
