let record_width = 16
let key_width = 8
let block_records = 256
let block_bytes = record_width * block_records

(* ----- fixed-width record codec ----- *)

(* A record is the 8-byte big-endian key followed by the 8-byte
   big-endian payload — the [Dict] discipline widened to two words.
   Big-endian is what makes [String.compare] on keys coincide with
   numeric order, so the run files below can be binary-searched as
   flat strings. *)
let encode_record buf off ~key ~payload =
  if String.length key <> key_width then
    invalid_arg "Block_file.encode_record: key must be 8 bytes";
  Bytes.blit_string key 0 buf off key_width;
  Bytes.set_int64_be buf (off + key_width) (Int64.of_int payload)

let decode_key s off = String.sub s off key_width
let decode_payload s off = Int64.to_int (String.get_int64_be s (off + key_width))

(* ----- sorted runs ----- *)

(* No persistent channel: a run holds no file descriptor between
   probes, so a search that writes thousands of small runs (tiny
   memory budgets) cannot exhaust the fd table.  Each probe opens,
   reads one block and closes; the mutex only guards the counters. *)
type t = {
  path : string;
  lock : Mutex.t;
  length : int; (* records *)
  write_bytes : int;
  fences : string array; (* first key of each block, in block order *)
  mutable probes : int;
  mutable read_bytes : int;
}

let create ~path entries =
  let n = Array.length entries in
  let oc = open_out_bin path in
  let buf = Bytes.create record_width in
  let fences = Array.make ((n + block_records - 1) / block_records) "" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Array.iteri
        (fun i (key, payload) ->
          if i > 0 && String.compare (fst entries.(i - 1)) key >= 0 then
            invalid_arg "Block_file.create: keys must be strictly ascending";
          if i mod block_records = 0 then fences.(i / block_records) <- key;
          encode_record buf 0 ~key ~payload;
          output_bytes oc buf)
        entries);
  {
    path;
    lock = Mutex.create ();
    length = n;
    write_bytes = n * record_width;
    fences;
    probes = 0;
    read_bytes = 0;
  }

let length t = t.length
let write_bytes t = t.write_bytes
let probes t = t.probes
let read_bytes t = t.read_bytes
let path t = t.path

(* greatest block whose fence is <= key; None when the key sorts
   before every record *)
let block_of t key =
  if Array.length t.fences = 0 || String.compare key t.fences.(0) < 0 then None
  else begin
    let lo = ref 0 and hi = ref (Array.length t.fences - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if String.compare t.fences.(mid) key <= 0 then lo := mid else hi := mid - 1
    done;
    Some !lo
  end

let probe t key =
  if String.length key <> key_width then invalid_arg "Block_file.probe: key must be 8 bytes";
  match block_of t key with
  | None ->
    Mutex.lock t.lock;
    t.probes <- t.probes + 1;
    Mutex.unlock t.lock;
    None
  | Some b ->
    let off = b * block_bytes in
    let len = min block_bytes ((t.length * record_width) - off) in
    let ic = open_in_bin t.path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          seek_in ic off;
          really_input_string ic len)
    in
    Mutex.lock t.lock;
    t.probes <- t.probes + 1;
    t.read_bytes <- t.read_bytes + len;
    Mutex.unlock t.lock;
    let nrec = len / record_width in
    let lo = ref 0 and hi = ref (nrec - 1) and found = ref None in
    while !found = None && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let c = String.compare (decode_key s (mid * record_width)) key in
      if c = 0 then found := Some (decode_payload s (mid * record_width))
      else if c < 0 then lo := mid + 1
      else hi := mid - 1
    done;
    !found

let close (_ : t) = ()

let delete t = try Sys.remove t.path with Sys_error _ -> ()
