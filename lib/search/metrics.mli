(** First-class observability for the search kernel.

    Every search — scheme enumeration, exhaustive checking,
    realization, randomized hunting, trace scanning — returns one of
    these records alongside its answer, so the cost of an answer is a
    machine-comparable quantity, not a wall-clock anecdote.  Counters
    are deterministic for a fixed strategy and input (per-shard
    [seconds] are the only wall-clock field); sums and maxima are
    taken in root order, so merged metrics are identical for every
    [--jobs] value. *)

type outcome_kind = Exhausted | Goal_found | Truncated

val outcome_string : outcome_kind -> string
(** ["exhausted"], ["goal_found"] or ["truncated"] — the schema's
    vocabulary. *)

type shard = {
  root : int;  (** index of the shard's root in submission order *)
  states_expanded : int;  (** nodes visited (each consumes one budget unit) *)
  dedup_hits : int;  (** frontier pops and pushes answered by the visited set *)
  frontier_peak : int;  (** largest frontier during this shard's search *)
  pruned : int;  (** successors discarded by the prune predicate *)
  fingerprint_probes : int;
      (** visited-store lookups answered by the 64-bit fingerprint index *)
  collision_fallbacks : int;
      (** probes where a bucket held a fingerprint-equal but
          structurally distinct state — true 64-bit collisions *)
  intern_bindings : int;
      (** distinct set values interned under this shard's root (0 for
          searches whose states carry no intern table) *)
  seconds : float;  (** wall-clock for this shard (the only nondeterministic field) *)
}

type t = {
  outcome : outcome_kind;
      (** [Goal_found] if any shard found a goal, else [Truncated] if
          any shard hit its budget, else [Exhausted]. *)
  states_expanded : int;
  dedup_hits : int;
  frontier_peak : int;  (** max over shards (not a concurrent peak) *)
  pruned : int;
  fingerprint_probes : int;
  collision_fallbacks : int;
  intern_bindings : int;
  budget_consumed : int;  (** total budget units spent = states expanded *)
  roots : int;
  truncated_roots : int;
  layers : int;  (** BFS layers completed by the layer-synchronous driver *)
  par_layers : int;
      (** layers whose frontier met the parallel-dispatch threshold —
          counted whether or not more than one worker existed, so the
          value is identical for every [--jobs] *)
  shard_bits : int;
      (** log2 of the visited-store shard count (0 for the serial
          driver); maxed on merge *)
  shard_occupancy_max : int;
      (** largest per-shard binding count in any sharded store; maxed
          on merge *)
  shard_occupancy_total : int;
      (** total bindings across all shards of all sharded stores *)
  frontier_peak_sum : int;
      (** sum of per-root frontier peaks — the aggregate companion to
          [frontier_peak], which reports the max-of-peaks (summing
          peaks over-reports peak memory: the roots do not all peak at
          once) *)
  deadline_hits : int;
      (** searches stopped by a wall-clock deadline
          ({!Search.Deadline_exceeded}); deterministically 0 when no
          deadline was set, wall-clock-dependent when one was *)
  live_limit_hits : int;
      (** searches stopped by the live-state budget
          ({!Search.Live_limit_exceeded}); deterministic *)
  lock_contention : int;
      (** shard-mutex acquisitions that found the lock held —
          nondeterministic under [jobs > 1], never compared across
          runs *)
  expand_seconds : float;
      (** wall-clock summed over expansion tasks across workers
          (nondeterministic) *)
  steals : int;
      (** work items taken from another worker's deque by the
          asynchronous driver — 0 under [--jobs 1] or the layered
          driver, schedule-dependent otherwise (/5 volatile section) *)
  steal_failures : int;
      (** steal attempts that found a victim empty or lost the race —
          schedule-dependent (/5 volatile section) *)
  cas_retries : int;
      (** visited-table slot claims lost to a racing worker —
          schedule-dependent (/5 volatile section) *)
  table_occupancy : float;
      (** final load factor of the open-addressed visited table; maxed
          on merge; volatile near a migration boundary (/5 volatile
          section) *)
  idle_seconds : float;
      (** wall-clock workers spent between exhausting their own deque
          and acquiring new work (or quiescence) — the async driver's
          analogue of barrier wait time (/5 volatile section) *)
  db_edges : int;
      (** distinct (src, event, dst) triples in the attached execution
          database after the run — deterministic for a given recorded
          edge set; 0 when no [--db] is attached (/6 section) *)
  db_index_scans : int;
      (** covering-index prefix scans performed by database queries
          (cache hits perform none); deterministic (/6 section) *)
  db_cache_hits : int;
      (** query-result cache hits (/6 section) *)
  db_cache_misses : int;
      (** query-result cache misses (/6 section) *)
  spill_runs : int;
      (** sorted runs written by the disk-backed visited store — 0
          unless [--spill-dir] is given; deterministic except under the
          async driver at [jobs > 1] (/7 section) *)
  spill_evictions : int;
      (** in-memory shards flushed to disk (several per run) (/7
          section) *)
  spill_probes : int;
      (** visited probes that consulted the on-disk runs (/7 section) *)
  spill_read_bytes : int;
      (** bytes read from run files by probes (/7 section) *)
  spill_write_bytes : int;
      (** bytes written to run files by evictions (/7 section) *)
  spill_fd_reopens : int;
      (** run files re-opened after eviction from the bounded
          descriptor cache — 0 when every run's descriptor stayed
          cached; same gating as the other spill counters (/8
          section) *)
  prefix_hits : int;
      (** systematic hunt runs that resumed from a memoized
          failure-free prefix instead of replaying from the initial
          configuration — a function of the evaluated plan-index set
          (/8 section) *)
  prefix_states_saved : int;
      (** engine steps skipped by prefix resumption, summed over
          prefix hits (/8 section) *)
  delta_seeds : int;
      (** frontier states seeded into {!Search.Make.run_delta} from a
          base exploration's boundary (/8 section) *)
  delta_reused_edges : int;
      (** successor derivations answered wholesale from base facts
          instead of being re-derived (/8 section) *)
  drops_injected : int;
      (** messages silently discarded by injected omission faults
          (receive drops and send omissions), summed over evaluated
          runs — 0 for a fail-stop adversary (/9 section) *)
  omission_plans : int;
      (** evaluated fault plans carrying at least one omission fault
          (/9 section) *)
  mobile_faults : int;
      (** omission faults belonging to mobile plans — plans whose
          omission faults name at least two distinct victims; 0 unless
          the mobile space was swept (/9 section) *)
  shards : shard list;  (** in root order *)
}

val zero : t
(** The identity of {!merge}; also the [Exhausted] metrics of a search
    with no roots. *)

val of_shard : outcome_kind -> shard -> t

val with_root_index : int -> t -> t
(** Retag the shard entries with their position in a sharded sweep. *)

val with_intern_bindings : int -> t -> t
(** Set [intern_bindings] on the aggregate and on every shard entry.
    The kernel cannot see the client's intern tables, so per-root
    metrics are retagged with the root's table size after the run. *)

val with_par :
  layers:int ->
  par_layers:int ->
  shard_bits:int ->
  occupancy_max:int ->
  occupancy_total:int ->
  lock_contention:int ->
  expand_seconds:float ->
  t ->
  t
(** Retag a single-root record with the layer-synchronous driver's
    statistics.  All but [lock_contention] and [expand_seconds] are
    deterministic functions of the reachable graph. *)

val with_async :
  shard_bits:int ->
  occupancy_total:int ->
  lock_contention:int ->
  expand_seconds:float ->
  steals:int ->
  steal_failures:int ->
  cas_retries:int ->
  table_occupancy:float ->
  idle_seconds:float ->
  t ->
  t
(** Retag a single-root record with the asynchronous driver's
    statistics.  [shard_bits] is the visited table's presized capacity
    log2 (a create-time constant) and [occupancy_total] its final
    binding count — deterministic; the rest is the /5 volatile
    section.  [layers], [par_layers] and [shard_occupancy_max] stay 0:
    the async driver has no layers and no mutex shards. *)

val with_db :
  edges:int -> index_scans:int -> cache_hits:int -> cache_misses:int -> t -> t
(** Retag a record with an execution-database snapshot (the /6
    section).  All four counters are deterministic for a given
    recorded edge set and query sequence. *)

val with_spill :
  runs:int ->
  evictions:int ->
  probes:int ->
  read_bytes:int ->
  write_bytes:int ->
  fd_reopens:int ->
  t ->
  t
(** Retag a record with a spill-store snapshot (the /7 section plus
    /8's [spill_fd_reopens]).  Deterministic under the serial and
    layer-synchronous drivers; schedule-dependent under the async
    driver at [jobs > 1] (like [intern_bindings]).  All 0 unless a
    [--spill-dir] was given. *)

val with_incremental :
  ?prefix_hits:int ->
  ?prefix_states_saved:int ->
  ?delta_seeds:int ->
  ?delta_reused_edges:int ->
  t ->
  t
(** Add to the incremental-derivation counters (the /8 section;
    omitted arguments default to 0, so existing values are kept).
    All four are deterministic: prefix hits and saved steps depend
    only on which plan indices were evaluated, and the delta counters
    only on the base facts and the change description. *)

val with_faults :
  ?drops_injected:int -> ?omission_plans:int -> ?mobile_faults:int -> t -> t
(** Add to the fault-injection counters (the /9 section; omitted
    arguments default to 0).  Deterministic and jobs-invariant on full
    sweeps — functions of the evaluated plan-index set — with the same
    goal-found overshoot caveat as [prefix_hits]. *)

val parallel_efficiency : t -> float
(** [expand_seconds] over summed shard wall-clock: the fraction of the
    run spent inside successor expansion, summed across workers.
    Values above 1 mean expansion overlapped across domains.
    Nondeterministic. *)

val merge : t -> t -> t
(** Counters are summed, [frontier_peak] maxed, outcomes joined
    ([Goal_found] > [Truncated] > [Exhausted]), shard lists
    concatenated.  Associative; merged left-to-right in root order by
    the sharding driver. *)

val to_json : ?shards:bool -> t -> string
(** Schema ["patterns-search-metrics/9"]: every /1 … /8 key is
    unchanged in name, meaning and order; /4 appended the
    graceful-degradation counters ["deadline_hits"] and
    ["live_limit_hits"] after ["frontier_peak_sum"]; /5 appended the
    asynchronous driver's volatile section — ["steals"],
    ["steal_failures"], ["cas_retries"], ["table_occupancy"],
    ["idle_seconds"] — after ["parallel_efficiency"]; /6 appended the
    deterministic execution-database counters — ["db_edges"],
    ["db_index_scans"], ["db_cache_hits"], ["db_cache_misses"] — after
    ["idle_seconds"] (all 0 unless a [--db] is attached); /7 appended
    the spill-store counters — ["spill_runs"], ["spill_evictions"],
    ["spill_probes"], ["spill_read_bytes"], ["spill_write_bytes"] —
    after ["db_cache_misses"] (all 0 unless a [--spill-dir] is given);
    /8 appends ["spill_fd_reopens"] after ["spill_write_bytes"] and
    the deterministic incremental-derivation counters —
    ["prefix_hits"], ["prefix_states_saved"], ["delta_seeds"],
    ["delta_reused_edges"]; /9 appends the fault-injection counters —
    ["drops_injected"], ["omission_plans"], ["mobile_faults"] — after
    ["delta_reused_edges"] (all 0 unless a hunt widened the adversary
    past fail-stop).
    Key order is stable and pinned by the cram test; [?shards:false]
    omits the per-shard array (whose [seconds] are
    nondeterministic). *)

val pp : Format.formatter -> t -> unit
(** One-line summary: [expanded=… dedup=… peak=… outcome=…]. *)
