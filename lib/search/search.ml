open Patterns_stdx

type reason =
  | Budget_exhausted of { budget : int; consumed : int }
  | Deadline_exceeded of { deadline : float; elapsed : float }
  | Live_limit_exceeded of { limit : int; live : int }

let reason_string = function
  | Budget_exhausted { budget; consumed } ->
    Printf.sprintf "budget exhausted after %d of %d states" consumed budget
  | Deadline_exceeded { deadline; elapsed } ->
    Printf.sprintf "deadline exceeded after %.3f of %.3f seconds" elapsed deadline
  | Live_limit_exceeded { limit; live } ->
    Printf.sprintf "live-state limit exceeded: %d live states against a limit of %d" live limit

type 'a outcome = Exhausted | Goal_found of 'a | Truncated of reason

let outcome_kind = function
  | Exhausted -> Metrics.Exhausted
  | Goal_found _ -> Metrics.Goal_found
  | Truncated _ -> Metrics.Truncated

(* the graceful-degradation counters carried into the metrics record:
   which of the overrun guards (if any) stopped this search *)
let degradation_hits = function
  | Truncated (Deadline_exceeded _) -> (1, 0)
  | Truncated (Live_limit_exceeded _) -> (0, 1)
  | _ -> (0, 0)

let with_degradation outcome (m : Metrics.t) =
  let deadline_hits, live_limit_hits = degradation_hits outcome in
  { m with Metrics.deadline_hits; live_limit_hits }

let truncated = function Truncated _ -> true | _ -> false

let merge_into sink m = Option.iter (fun r -> r := Metrics.merge !r m) sink

let now () = Unix.gettimeofday ()

(* ----- fingerprint-indexed visited store ----- *)

module Store = struct
  module Fp_tbl = Hashtbl.Make (struct
    type t = int

    let equal = Int.equal
    let hash = Fingerprint.to_int
  end)

  type 'a t = {
    equal : 'a -> 'a -> bool;
    fingerprint : 'a -> Fingerprint.t;
    tbl : 'a list Fp_tbl.t;
    mutable bindings : int;
    mutable probes : int;
    mutable collision_fallbacks : int;
  }

  let create ?(size = 1024) ~equal ~fingerprint () =
    {
      equal;
      fingerprint;
      tbl = Fp_tbl.create size;
      bindings = 0;
      probes = 0;
      collision_fallbacks = 0;
    }

  (* A fingerprint match is never trusted on its own: a hit is
     confirmed structurally, and a bucket member that fails the
     structural test is a true fingerprint collision, counted so the
     metrics can certify it (essentially) never happens. *)
  let bucket_mem t x bucket =
    if List.exists (fun y -> not (t.equal x y)) bucket then
      t.collision_fallbacks <- t.collision_fallbacks + 1;
    List.exists (t.equal x) bucket

  let mem t x =
    t.probes <- t.probes + 1;
    match Fp_tbl.find_opt t.tbl (t.fingerprint x) with
    | None -> false
    | Some bucket -> bucket_mem t x bucket

  let add t x =
    let fp = t.fingerprint x in
    let bucket = match Fp_tbl.find_opt t.tbl fp with Some b -> b | None -> [] in
    if not (List.exists (t.equal x) bucket) then begin
      Fp_tbl.replace t.tbl fp (x :: bucket);
      t.bindings <- t.bindings + 1
    end

  let bindings t = t.bindings
  let probes t = t.probes
  let collision_fallbacks t = t.collision_fallbacks
end

module type Problem = sig
  type state

  val compare : state -> state -> int
  val fingerprint : state -> Fingerprint.t
  val expand : state -> state list
end

module Make (P : Problem) = struct
  type strategy = Bfs | Dfs | Priority of (P.state -> P.state -> int)

  (* Observation interface for the layer-synchronous parallel driver.
     Each expansion task works against a fresh accumulator from
     [empty]; task accumulators are merged left-to-right in frontier
     order, so for an associative [merge] the folded observation is
     independent of how the layer was chunked — and the chunking
     itself is a function of the layer size only, never of the worker
     count. *)
  type 'obs par_expand = {
    empty : unit -> 'obs;
    merge : 'obs -> 'obs -> 'obs;
    expand : 'obs -> P.state -> P.state list;
  }

  let run ?(strategy = Dfs) ?(budget = max_int) ?deadline ?max_live ?is_goal ?prune ~root () =
    let visited =
      Store.create ~equal:(fun a b -> P.compare a b = 0) ~fingerprint:P.fingerprint ()
    in
    let expanded = ref 0 and dedup = ref 0 and pruned = ref 0 in
    let size = ref 0 and peak = ref 0 in
    let push_batch, pop =
      match strategy with
      | Dfs ->
        (* successors are explored in the order [expand] returns them:
           the head of the batch sits on top of the stack *)
        let stack = ref [] in
        ( (fun succs -> stack := succs @ !stack),
          fun () ->
            match !stack with
            | [] -> None
            | s :: tl ->
              stack := tl;
              Some s )
      | Bfs ->
        let q = Queue.create () in
        ( (fun succs -> List.iter (fun s -> Queue.add s q) succs),
          fun () -> Queue.take_opt q )
      | Priority cmp ->
        let pq = ref (Pqueue.empty ~cmp) in
        ( (fun succs -> List.iter (fun s -> pq := Pqueue.push !pq s) succs),
          fun () ->
            match Pqueue.pop !pq with
            | None -> None
            | Some (s, rest) ->
              pq := rest;
              Some s )
    in
    let push_batch succs =
      push_batch succs;
      size := !size + List.length succs;
      if !size > !peak then peak := !size
    in
    let goal = match is_goal with Some g -> g | None -> fun _ -> false in
    (* visited is checked before prune: pruning is usually the
       expensive predicate (pattern-prefix tests), membership the
       cheap one *)
    let keep s =
      if Store.mem visited s then begin
        incr dedup;
        false
      end
      else
        match prune with
        | Some p when p s ->
          incr pruned;
          false
        | _ -> true
    in
    let t0 = Unix.gettimeofday () in
    (* overrun guards, checked at pop time like the budget: a deadline
       or live-state limit turns an overrun into a Truncated outcome
       instead of a hang or an OOM kill.  Live states = stored
       bindings + frontier entries (counting the popped state), so the
       total never exceeds the limit. *)
    let over_deadline () =
      match deadline with
      | None -> None
      | Some d ->
        let elapsed = Unix.gettimeofday () -. t0 in
        if elapsed >= d then Some (Truncated (Deadline_exceeded { deadline = d; elapsed }))
        else None
    in
    let over_live live =
      match max_live with
      | Some limit when live > limit -> Some (Truncated (Live_limit_exceeded { limit; live }))
      | _ -> None
    in
    let rec loop () =
      match pop () with
      | None -> Exhausted
      | Some s ->
        decr size;
        if Store.mem visited s then begin
          incr dedup;
          loop ()
        end
        else if !expanded >= budget then
          Truncated (Budget_exhausted { budget; consumed = !expanded })
        else begin
          match over_live (Store.bindings visited + !size + 1) with
          | Some t -> t
          | None -> (
            match over_deadline () with
            | Some t -> t
            | None ->
              Store.add visited s;
              incr expanded;
              if goal s then Goal_found s
              else begin
                push_batch (List.filter keep (P.expand s));
                loop ()
              end)
        end
    in
    push_batch [ root ];
    let outcome = loop () in
    let seconds = Unix.gettimeofday () -. t0 in
    let shard =
      {
        Metrics.root = 0;
        states_expanded = !expanded;
        dedup_hits = !dedup;
        frontier_peak = !peak;
        pruned = !pruned;
        fingerprint_probes = Store.probes visited;
        collision_fallbacks = Store.collision_fallbacks visited;
        intern_bindings = 0;
        seconds;
      }
    in
    (outcome, with_degradation outcome (Metrics.of_shard (outcome_kind outcome) shard))

  (* ----- level-synchronous parallel BFS ----- *)

  let default_par_threshold = 128

  (* Chunk size is a function of the layer size alone — never of the
     worker count — so accumulator boundaries (and hence the merge
     tree) are reproducible for every [--jobs].  ~64 chunks per large
     layer keeps the pool's work units coarse. *)
  let chunk_frontier states len =
    let size = max 16 ((len + 63) / 64) in
    let rec go acc cur n = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | s :: tl ->
        if n = size then go (List.rev cur :: acc) [ s ] 1 tl
        else go acc (s :: cur) (n + 1) tl
    in
    go [] [] 0 states

  let run_par ?pool ?(par_threshold = default_par_threshold) ?shard_bits
      ?(budget = max_int) ?deadline ?max_live ?is_goal ?prune ~expand:obs_iface ~root () =
    let visited =
      Sharded_store.create ?shard_bits
        ~equal:(fun a b -> P.compare a b = 0)
        ~fingerprint:P.fingerprint ()
    in
    let expanded = ref 0 and dedup = ref 0 and pruned = ref 0 in
    let peak = ref 0 and layers = ref 0 and par_layers = ref 0 in
    let expand_seconds = ref 0. in
    let goal = match is_goal with Some g -> g | None -> fun _ -> false in
    let nshards = Sharded_store.shards visited in
    (* Work is dispatched through the pool only for layers that met
       the threshold; the tasks themselves are identical either way,
       so the threshold (like the worker count) cannot change any
       result — only where the work runs. *)
    let map_tasks par f tasks =
      match pool with
      | Some p when par && Domain_pool.jobs p > 1 -> Domain_pool.map p f tasks
      | _ -> List.map f tasks
    in
    let obs = ref (obs_iface.empty ()) in
    let t0 = Unix.gettimeofday () in
    (* overrun guards, checked once per layer before the layer is
       charged: overshoot is bounded by one layer, and the live-state
       check sees the store plus the whole pending frontier *)
    let over_run len =
      match max_live with
      | Some limit when Sharded_store.bindings visited + len > limit ->
        Some
          (Truncated
             (Live_limit_exceeded { limit; live = Sharded_store.bindings visited + len }))
      | _ -> (
        match deadline with
        | None -> None
        | Some d ->
          let elapsed = Unix.gettimeofday () -. t0 in
          if elapsed >= d then
            Some (Truncated (Deadline_exceeded { deadline = d; elapsed }))
          else None)
    in
    ignore (Sharded_store.add_if_absent visited root : bool);
    let rec loop frontier =
      match frontier with
      | [] -> Exhausted
      | _ ->
        let len = List.length frontier in
        match over_run len with
        | Some t -> t
        | None ->
        incr layers;
        if len > !peak then peak := len;
        let par = len >= par_threshold in
        if par then incr par_layers;
        (* budget and goal are charged in frontier order before any
           expansion, so a mid-layer stop is deterministic *)
        let rec charge = function
          | [] -> None
          | s :: tl ->
            if !expanded >= budget then
              Some (Truncated (Budget_exhausted { budget; consumed = !expanded }))
            else begin
              incr expanded;
              if goal s then Some (Goal_found s) else charge tl
            end
        in
        (match charge frontier with
        | Some outcome -> outcome
        | None ->
          (* phase A: expand chunks in parallel against the store,
             which no task mutates — probes are read-only *)
          let results =
            map_tasks par
              (fun chunk ->
                let t0 = Unix.gettimeofday () in
                let o = obs_iface.empty () in
                let dd = ref 0 and pr = ref 0 in
                let keep s =
                  if Sharded_store.mem visited s then begin
                    incr dd;
                    false
                  end
                  else
                    match prune with
                    | Some p when p s ->
                      incr pr;
                      false
                    | _ -> true
                in
                let succs =
                  List.concat_map
                    (fun s -> List.filter keep (obs_iface.expand o s))
                    chunk
                in
                (o, succs, !dd, !pr, Unix.gettimeofday () -. t0))
              (chunk_frontier frontier len)
          in
          (* merge in chunk order = frontier order *)
          let candidates =
            List.concat_map
              (fun (o, succs, dd, pr, secs) ->
                obs := obs_iface.merge !obs o;
                dedup := !dedup + dd;
                pruned := !pruned + pr;
                expand_seconds := !expand_seconds +. secs;
                succs)
              results
          in
          (* phase B: partition candidates by shard, keeping frontier
             order within each shard; one insertion task per shard, so
             every shard sees a canonical insertion order and the
             per-shard locks never collide with each other *)
          let by_shard = Array.make nshards [] in
          List.iter
            (fun s ->
              let i = Sharded_store.shard_of_state visited s in
              by_shard.(i) <- s :: by_shard.(i))
            candidates;
          let fresh =
            map_tasks par
              (fun cands ->
                let dups = ref 0 in
                let kept =
                  List.filter
                    (fun c ->
                      if Sharded_store.add_if_absent visited c then true
                      else begin
                        incr dups;
                        false
                      end)
                    cands
                in
                (kept, !dups))
              (List.init nshards (fun i -> List.rev by_shard.(i)))
          in
          (* next frontier: concatenation in (shard-index, insertion)
             order — the canonical layer order *)
          let next =
            List.concat_map
              (fun (kept, dups) ->
                dedup := !dedup + dups;
                kept)
              fresh
          in
          loop next)
    in
    let outcome = loop [ root ] in
    let seconds = Unix.gettimeofday () -. t0 in
    let shard =
      {
        Metrics.root = 0;
        states_expanded = !expanded;
        dedup_hits = !dedup;
        frontier_peak = !peak;
        pruned = !pruned;
        fingerprint_probes = Sharded_store.probes visited;
        collision_fallbacks = Sharded_store.collision_fallbacks visited;
        intern_bindings = 0;
        seconds;
      }
    in
    let m =
      Metrics.of_shard (outcome_kind outcome) shard
      |> Metrics.with_par ~layers:!layers ~par_layers:!par_layers
           ~shard_bits:(Sharded_store.shard_bits visited)
           ~occupancy_max:(Sharded_store.occupancy_max visited)
           ~occupancy_total:(Sharded_store.bindings visited)
           ~lock_contention:(Sharded_store.lock_contention visited)
           ~expand_seconds:!expand_seconds
    in
    (outcome, !obs, with_degradation outcome m)
end

(* ----- deterministic sharding per root ----- *)

let shard ~jobs ~f ~merge ~init roots =
  Domain_pool.with_pool ~jobs (fun pool ->
      let results = Domain_pool.map pool f roots in
      let (acc, metrics), _ =
        List.fold_left
          (fun ((acc, ms), i) (a, m) ->
            ((merge acc a, Metrics.merge ms (Metrics.with_root_index i m)), i + 1))
          ((init, Metrics.zero), 0)
          results
      in
      (acc, metrics))

(* ----- batched goal search over an index space ----- *)

let find_first ?metrics ~jobs ?batch ?deadline ~max_index ~f () =
  Domain_pool.with_pool ~jobs (fun pool ->
      let batch =
        match batch with Some b -> max 1 b | None -> max 8 (Domain_pool.jobs pool * 4)
      in
      let tried = ref 0 and peak = ref 0 in
      let deadline_hit = ref false in
      let t0 = Unix.gettimeofday () in
      (* the deadline is checked between batches: a batch already
         dispatched runs to completion, so overshoot is bounded by one
         batch of [f] calls *)
      let over_deadline () =
        match deadline with
        | None -> false
        | Some d ->
          let hit = Unix.gettimeofday () -. t0 >= d in
          if hit then deadline_hit := true;
          hit
      in
      let rec go next =
        if next > max_index then Error !tried
        else if over_deadline () then Error !tried
        else begin
          let hi = min max_index (next + batch - 1) in
          let indices = List.init (hi - next + 1) (fun i -> next + i) in
          tried := !tried + List.length indices;
          if List.length indices > !peak then peak := List.length indices;
          (* the batch is scanned in index order, so the winner is the
             smallest goal index no matter how workers interleave *)
          match List.find_map Fun.id (Domain_pool.map pool f indices) with
          | Some found -> Ok found
          | None -> go (hi + 1)
        end
      in
      let result = go 1 in
      let seconds = Unix.gettimeofday () -. t0 in
      let kind =
        match result with Ok _ -> Metrics.Goal_found | Error _ -> Metrics.Truncated
      in
      let m =
        Metrics.of_shard kind
          {
            Metrics.root = 0;
            states_expanded = !tried;
            dedup_hits = 0;
            frontier_peak = !peak;
            pruned = 0;
            fingerprint_probes = 0;
            collision_fallbacks = 0;
            intern_bindings = 0;
            seconds;
          }
      in
      let m = if !deadline_hit then { m with Metrics.deadline_hits = 1 } else m in
      merge_into metrics m;
      result)

(* ----- instrumented linear scans ----- *)

module Scan = struct
  (* The kernel specialised to a chain: position [i] expands to
     [i + 1] and nothing is ever revisited, so the visited table is
     skipped — but the scan reports the same Metrics as any other
     search, with the first error as the goal. *)
  let first_error ?metrics ~len ~check () =
    let t0 = Unix.gettimeofday () in
    let checked = ref 0 in
    let rec go i =
      if i >= len then Ok ()
      else begin
        incr checked;
        match check i with Ok () -> go (i + 1) | Error _ as e -> e
      end
    in
    let result = go 0 in
    let seconds = Unix.gettimeofday () -. t0 in
    let kind =
      match result with Ok () -> Metrics.Exhausted | Error _ -> Metrics.Goal_found
    in
    let m =
      Metrics.of_shard kind
        {
          Metrics.root = 0;
          states_expanded = !checked;
          dedup_hits = 0;
          frontier_peak = (if len > 0 then 1 else 0);
          pruned = 0;
          fingerprint_probes = 0;
          collision_fallbacks = 0;
          intern_bindings = 0;
          seconds;
        }
    in
    merge_into metrics m;
    result
end
