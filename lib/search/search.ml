open Patterns_stdx

type reason =
  | Budget_exhausted of { budget : int; consumed : int }
  | Deadline_exceeded of { deadline : float; elapsed : float }
  | Live_limit_exceeded of { limit : int; live : int }

let reason_string = function
  | Budget_exhausted { budget; consumed } ->
    Printf.sprintf "budget exhausted after %d of %d states" consumed budget
  | Deadline_exceeded { deadline; elapsed } ->
    Printf.sprintf "deadline exceeded after %.3f of %.3f seconds" elapsed deadline
  | Live_limit_exceeded { limit; live } ->
    Printf.sprintf "live-state limit exceeded: %d live states against a limit of %d" live limit

type 'a outcome = Exhausted | Goal_found of 'a | Truncated of reason

let outcome_kind = function
  | Exhausted -> Metrics.Exhausted
  | Goal_found _ -> Metrics.Goal_found
  | Truncated _ -> Metrics.Truncated

(* the graceful-degradation counters carried into the metrics record:
   which of the overrun guards (if any) stopped this search *)
let degradation_hits = function
  | Truncated (Deadline_exceeded _) -> (1, 0)
  | Truncated (Live_limit_exceeded _) -> (0, 1)
  | _ -> (0, 0)

let with_degradation outcome (m : Metrics.t) =
  let deadline_hits, live_limit_hits = degradation_hits outcome in
  { m with Metrics.deadline_hits; live_limit_hits }

let truncated = function Truncated _ -> true | _ -> false

let merge_into sink m = Option.iter (fun r -> r := Metrics.merge !r m) sink

let now () = Unix.gettimeofday ()

(* Which parallel driver a client sweep runs on.  [Layers] is the
   layer-synchronous barrier driver — bit-identical to the serial
   reference in every respect, including truncation points.  [Async]
   is the work-stealing driver over the lock-free fingerprint table —
   same outcomes, pattern sets and deterministic counters on searches
   it runs to exhaustion, but truncation points and goal witnesses are
   schedule-dependent.  The flag exists so a suspected async
   regression is one [--par-mode layers] away from bisectable. *)
type par_mode = Layers | Async

let par_mode_string = function Layers -> "layers" | Async -> "async"

(* Disk-backed visited storage: when set, every driver swaps its
   in-memory visited store for a {!Patterns_stdx.Spill_store} rooted
   at [dir] and bounded to [mem_budget] resident bindings.  Probe
   counting, cumulative binding counts and the insertion discipline
   are identical to the in-memory stores, and eviction happens only at
   deterministic driver-chosen points, so outcomes, pattern sets and
   the /1–/6 metrics are bit-identical with or without spilling.  The
   one semantic shift: the [max_live] guard counts {e resident}
   bindings plus frontier, not cumulative bindings — spilling exists
   precisely to take evicted states out of the live-memory budget. *)
type spill = { dir : string; mem_budget : int }

(* ----- fingerprint-indexed visited store ----- *)

module Store = struct
  module Fp_tbl = Hashtbl.Make (struct
    type t = int

    let equal = Int.equal
    let hash = Fingerprint.to_int
  end)

  type 'a t = {
    equal : 'a -> 'a -> bool;
    fingerprint : 'a -> Fingerprint.t;
    tbl : 'a list Fp_tbl.t;
    mutable bindings : int;
    mutable probes : int;
    mutable collision_fallbacks : int;
  }

  let create ?(size = 1024) ~equal ~fingerprint () =
    {
      equal;
      fingerprint;
      tbl = Fp_tbl.create size;
      bindings = 0;
      probes = 0;
      collision_fallbacks = 0;
    }

  (* A fingerprint match is never trusted on its own: a hit is
     confirmed structurally, and a bucket member that fails the
     structural test is a true fingerprint collision, counted so the
     metrics can certify it (essentially) never happens. *)
  let bucket_mem t x bucket =
    if List.exists (fun y -> not (t.equal x y)) bucket then
      t.collision_fallbacks <- t.collision_fallbacks + 1;
    List.exists (t.equal x) bucket

  let mem t x =
    t.probes <- t.probes + 1;
    match Fp_tbl.find_opt t.tbl (t.fingerprint x) with
    | None -> false
    | Some bucket -> bucket_mem t x bucket

  let add t x =
    let fp = t.fingerprint x in
    let bucket = match Fp_tbl.find_opt t.tbl fp with Some b -> b | None -> [] in
    if not (List.exists (t.equal x) bucket) then begin
      Fp_tbl.replace t.tbl fp (x :: bucket);
      t.bindings <- t.bindings + 1
    end

  let bindings t = t.bindings
  let probes t = t.probes
  let collision_fallbacks t = t.collision_fallbacks
end

module type Problem = sig
  type state

  val compare : state -> state -> int
  val fingerprint : state -> Fingerprint.t
  val expand : state -> state list
end

module Make (P : Problem) = struct
  type strategy = Bfs | Dfs | Priority of (P.state -> P.state -> int)

  (* Observation interface for the layer-synchronous parallel driver.
     Each expansion task works against a fresh accumulator from
     [empty]; task accumulators are merged left-to-right in frontier
     order, so for an associative [merge] the folded observation is
     independent of how the layer was chunked — and the chunking
     itself is a function of the layer size only, never of the worker
     count. *)
  type 'obs par_expand = {
    empty : unit -> 'obs;
    merge : 'obs -> 'obs -> 'obs;
    expand : 'obs -> P.state -> P.state list;
  }

  (* Optional execution-database sink: every expansion emits its
     (src, successor-ordinal, dst) triples, before visited/prune
     filtering — the database records the raw expansion relation.
     Ordinals are assigned in fingerprint order of the successors,
     not list position: equal states reached along different paths
     can carry their internal collections in different orders, and
     which representative wins the visited race is a property of the
     driver and the schedule.  Sorting by the canonical fingerprint
     makes the emitted triples a function of the state alone, so the
     recorded edge set is identical across drivers and worker counts.
     The callback is invoked from worker domains by the parallel
     drivers; thread safety is the callee's obligation (the execution
     database locks internally). *)
  let emit_edges edges src succs =
    match edges with
    | None -> ()
    | Some f ->
      List.stable_sort
        (fun a b -> Fingerprint.compare (P.fingerprint a) (P.fingerprint b))
        succs
      |> List.iteri (fun i dst -> f ~src ~event:i ~dst)

  (* The serial driver's visited interface, spill-agnostic: [sv_add]
     runs the spill store's eviction check after each insert (the
     serial deterministic eviction point), [sv_live] is what the
     [max_live] guard sees (cumulative bindings in memory, resident
     bindings when spilling), and [sv_finish] retags the metrics with
     the /7 section and disposes of the run files. *)
  type serial_store = {
    sv_mem : P.state -> bool;
    sv_add : P.state -> unit;
    sv_live : unit -> int;
    sv_probes : unit -> int;
    sv_collision_fallbacks : unit -> int;
    sv_finish : Metrics.t -> Metrics.t;
  }

  let serial_store spill =
    let equal a b = P.compare a b = 0 in
    match spill with
    | None ->
      let visited = Store.create ~equal ~fingerprint:P.fingerprint () in
      {
        sv_mem = (fun s -> Store.mem visited s);
        sv_add = (fun s -> Store.add visited s);
        sv_live = (fun () -> Store.bindings visited);
        sv_probes = (fun () -> Store.probes visited);
        sv_collision_fallbacks = (fun () -> Store.collision_fallbacks visited);
        sv_finish = Fun.id;
      }
    | Some { dir; mem_budget } ->
      let visited =
        Spill_store.create ~equal ~fingerprint:P.fingerprint ~dir ~mem_budget ()
      in
      {
        sv_mem = (fun s -> Spill_store.mem visited s);
        sv_add =
          (fun s ->
            Spill_store.add visited s;
            Spill_store.maybe_evict visited);
        sv_live = (fun () -> Spill_store.resident visited);
        sv_probes = (fun () -> Spill_store.probes visited);
        sv_collision_fallbacks = (fun () -> Spill_store.collision_fallbacks visited);
        sv_finish =
          (fun m ->
            let m =
              Metrics.with_spill
                ~runs:(Spill_store.spill_runs visited)
                ~evictions:(Spill_store.spill_evictions visited)
                ~probes:(Spill_store.spill_probes visited)
                ~read_bytes:(Spill_store.spill_read_bytes visited)
                ~write_bytes:(Spill_store.spill_write_bytes visited)
                ~fd_reopens:(Spill_store.spill_fd_reopens visited)
                m
            in
            Spill_store.dispose visited;
            m);
      }

  let run ?(strategy = Dfs) ?(budget = max_int) ?deadline ?max_live ?spill ?is_goal ?prune
      ?edges ~root () =
    let visited = serial_store spill in
    let expanded = ref 0 and dedup = ref 0 and pruned = ref 0 in
    let size = ref 0 and peak = ref 0 in
    let push_batch, pop =
      match strategy with
      | Dfs ->
        (* successors are explored in the order [expand] returns them:
           the head of the batch sits on top of the stack *)
        let stack = ref [] in
        ( (fun succs -> stack := succs @ !stack),
          fun () ->
            match !stack with
            | [] -> None
            | s :: tl ->
              stack := tl;
              Some s )
      | Bfs ->
        let q = Queue.create () in
        ( (fun succs -> List.iter (fun s -> Queue.add s q) succs),
          fun () -> Queue.take_opt q )
      | Priority cmp ->
        let pq = ref (Pqueue.empty ~cmp) in
        ( (fun succs -> List.iter (fun s -> pq := Pqueue.push !pq s) succs),
          fun () ->
            match Pqueue.pop !pq with
            | None -> None
            | Some (s, rest) ->
              pq := rest;
              Some s )
    in
    let push_batch succs =
      push_batch succs;
      size := !size + List.length succs;
      if !size > !peak then peak := !size
    in
    let goal = match is_goal with Some g -> g | None -> fun _ -> false in
    (* visited is checked before prune: pruning is usually the
       expensive predicate (pattern-prefix tests), membership the
       cheap one *)
    let keep s =
      if visited.sv_mem s then begin
        incr dedup;
        false
      end
      else
        match prune with
        | Some p when p s ->
          incr pruned;
          false
        | _ -> true
    in
    let t0 = Unix.gettimeofday () in
    (* overrun guards, checked at pop time like the budget: a deadline
       or live-state limit turns an overrun into a Truncated outcome
       instead of a hang or an OOM kill.  Live states = stored
       bindings + frontier entries (counting the popped state), so the
       total never exceeds the limit. *)
    let over_deadline () =
      match deadline with
      | None -> None
      | Some d ->
        let elapsed = Unix.gettimeofday () -. t0 in
        if elapsed >= d then Some (Truncated (Deadline_exceeded { deadline = d; elapsed }))
        else None
    in
    let over_live live =
      match max_live with
      | Some limit when live > limit -> Some (Truncated (Live_limit_exceeded { limit; live }))
      | _ -> None
    in
    let rec loop () =
      match pop () with
      | None -> Exhausted
      | Some s ->
        decr size;
        if visited.sv_mem s then begin
          incr dedup;
          loop ()
        end
        else if !expanded >= budget then
          Truncated (Budget_exhausted { budget; consumed = !expanded })
        else begin
          match over_live (visited.sv_live () + !size + 1) with
          | Some t -> t
          | None -> (
            match over_deadline () with
            | Some t -> t
            | None ->
              visited.sv_add s;
              incr expanded;
              if goal s then Goal_found s
              else begin
                let succs = P.expand s in
                emit_edges edges s succs;
                push_batch (List.filter keep succs);
                loop ()
              end)
        end
    in
    push_batch [ root ];
    let outcome = loop () in
    let seconds = Unix.gettimeofday () -. t0 in
    let shard =
      {
        Metrics.root = 0;
        states_expanded = !expanded;
        dedup_hits = !dedup;
        frontier_peak = !peak;
        pruned = !pruned;
        fingerprint_probes = visited.sv_probes ();
        collision_fallbacks = visited.sv_collision_fallbacks ();
        intern_bindings = 0;
        seconds;
      }
    in
    ( outcome,
      visited.sv_finish
        (with_degradation outcome (Metrics.of_shard (outcome_kind outcome) shard)) )

  (* ----- level-synchronous parallel BFS ----- *)

  let default_par_threshold = 128

  (* Chunk size is a function of the layer size alone — never of the
     worker count — so accumulator boundaries (and hence the merge
     tree) are reproducible for every [--jobs].  ~64 chunks per large
     layer keeps the pool's work units coarse. *)
  let chunk_frontier states len =
    let size = max 16 ((len + 63) / 64) in
    let rec go acc cur n = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | s :: tl ->
        if n = size then go (List.rev cur :: acc) [ s ] 1 tl
        else go acc (s :: cur) (n + 1) tl
    in
    go [] [] 0 states

  (* The layered driver's visited interface.  [lv_layer_end] is the
     spill store's deterministic eviction point (between layers, after
     phase B — a function of the reachable graph's layer structure,
     never of the worker count); [lv_live] feeds the [max_live] guard. *)
  type layer_store = {
    lv_mem : P.state -> bool;
    lv_add_if_absent : P.state -> bool;
    lv_shard_of_state : P.state -> int;
    lv_nshards : int;
    lv_shard_bits : int;
    lv_live : unit -> int;
    lv_bindings : unit -> int;
    lv_probes : unit -> int;
    lv_collision_fallbacks : unit -> int;
    lv_lock_contention : unit -> int;
    lv_occupancy_max : unit -> int;
    lv_layer_end : unit -> unit;
    lv_finish : Metrics.t -> Metrics.t;
  }

  let layer_store ?shard_bits spill =
    let equal a b = P.compare a b = 0 in
    match spill with
    | None ->
      let visited = Sharded_store.create ?shard_bits ~equal ~fingerprint:P.fingerprint () in
      {
        lv_mem = (fun s -> Sharded_store.mem visited s);
        lv_add_if_absent = (fun s -> Sharded_store.add_if_absent visited s);
        lv_shard_of_state = (fun s -> Sharded_store.shard_of_state visited s);
        lv_nshards = Sharded_store.shards visited;
        lv_shard_bits = Sharded_store.shard_bits visited;
        lv_live = (fun () -> Sharded_store.bindings visited);
        lv_bindings = (fun () -> Sharded_store.bindings visited);
        lv_probes = (fun () -> Sharded_store.probes visited);
        lv_collision_fallbacks = (fun () -> Sharded_store.collision_fallbacks visited);
        lv_lock_contention = (fun () -> Sharded_store.lock_contention visited);
        lv_occupancy_max = (fun () -> Sharded_store.occupancy_max visited);
        lv_layer_end = ignore;
        lv_finish = Fun.id;
      }
    | Some { dir; mem_budget } ->
      let visited =
        Spill_store.create ?shard_bits ~equal ~fingerprint:P.fingerprint ~dir ~mem_budget ()
      in
      {
        lv_mem = (fun s -> Spill_store.mem visited s);
        lv_add_if_absent = (fun s -> Spill_store.add_if_absent visited s);
        lv_shard_of_state = (fun s -> Spill_store.shard_of_state visited s);
        lv_nshards = Spill_store.shards visited;
        lv_shard_bits = Spill_store.shard_bits visited;
        lv_live = (fun () -> Spill_store.resident visited);
        lv_bindings = (fun () -> Spill_store.bindings visited);
        lv_probes = (fun () -> Spill_store.probes visited);
        lv_collision_fallbacks = (fun () -> Spill_store.collision_fallbacks visited);
        lv_lock_contention = (fun () -> Spill_store.lock_contention visited);
        lv_occupancy_max = (fun () -> Spill_store.occupancy_max visited);
        lv_layer_end = (fun () -> Spill_store.maybe_evict visited);
        lv_finish =
          (fun m ->
            let m =
              Metrics.with_spill
                ~runs:(Spill_store.spill_runs visited)
                ~evictions:(Spill_store.spill_evictions visited)
                ~probes:(Spill_store.spill_probes visited)
                ~read_bytes:(Spill_store.spill_read_bytes visited)
                ~write_bytes:(Spill_store.spill_write_bytes visited)
                ~fd_reopens:(Spill_store.spill_fd_reopens visited)
                m
            in
            Spill_store.dispose visited;
            m);
      }

  let run_par ?pool ?(par_threshold = default_par_threshold) ?shard_bits
      ?(budget = max_int) ?deadline ?max_live ?spill ?is_goal ?prune ?edges
      ~expand:obs_iface ~root () =
    let visited = layer_store ?shard_bits spill in
    let expanded = ref 0 and dedup = ref 0 and pruned = ref 0 in
    let peak = ref 0 and layers = ref 0 and par_layers = ref 0 in
    let expand_seconds = ref 0. in
    let goal = match is_goal with Some g -> g | None -> fun _ -> false in
    let nshards = visited.lv_nshards in
    (* Work is dispatched through the pool only for layers that met
       the threshold; the tasks themselves are identical either way,
       so the threshold (like the worker count) cannot change any
       result — only where the work runs. *)
    let map_tasks par f tasks =
      match pool with
      | Some p when par && Domain_pool.jobs p > 1 -> Domain_pool.map p f tasks
      | _ -> List.map f tasks
    in
    let obs = ref (obs_iface.empty ()) in
    let t0 = Unix.gettimeofday () in
    (* overrun guards, checked once per layer before the layer is
       charged: overshoot is bounded by one layer, and the live-state
       check sees the store plus the whole pending frontier *)
    let over_run len =
      match max_live with
      | Some limit when visited.lv_live () + len > limit ->
        Some (Truncated (Live_limit_exceeded { limit; live = visited.lv_live () + len }))
      | _ -> (
        match deadline with
        | None -> None
        | Some d ->
          let elapsed = Unix.gettimeofday () -. t0 in
          if elapsed >= d then
            Some (Truncated (Deadline_exceeded { deadline = d; elapsed }))
          else None)
    in
    ignore (visited.lv_add_if_absent root : bool);
    let rec loop frontier =
      match frontier with
      | [] -> Exhausted
      | _ ->
        let len = List.length frontier in
        match over_run len with
        | Some t -> t
        | None ->
        incr layers;
        if len > !peak then peak := len;
        let par = len >= par_threshold in
        if par then incr par_layers;
        (* budget and goal are charged in frontier order before any
           expansion, so a mid-layer stop is deterministic *)
        let rec charge = function
          | [] -> None
          | s :: tl ->
            if !expanded >= budget then
              Some (Truncated (Budget_exhausted { budget; consumed = !expanded }))
            else begin
              incr expanded;
              if goal s then Some (Goal_found s) else charge tl
            end
        in
        (match charge frontier with
        | Some outcome -> outcome
        | None ->
          (* phase A: expand chunks in parallel against the store,
             which no task mutates — probes are read-only *)
          let results =
            map_tasks par
              (fun chunk ->
                let t0 = Unix.gettimeofday () in
                let o = obs_iface.empty () in
                let dd = ref 0 and pr = ref 0 in
                let keep s =
                  if visited.lv_mem s then begin
                    incr dd;
                    false
                  end
                  else
                    match prune with
                    | Some p when p s ->
                      incr pr;
                      false
                    | _ -> true
                in
                let succs =
                  List.concat_map
                    (fun s ->
                      let succs = obs_iface.expand o s in
                      emit_edges edges s succs;
                      List.filter keep succs)
                    chunk
                in
                (o, succs, !dd, !pr, Unix.gettimeofday () -. t0))
              (chunk_frontier frontier len)
          in
          (* merge in chunk order = frontier order *)
          let candidates =
            List.concat_map
              (fun (o, succs, dd, pr, secs) ->
                obs := obs_iface.merge !obs o;
                dedup := !dedup + dd;
                pruned := !pruned + pr;
                expand_seconds := !expand_seconds +. secs;
                succs)
              results
          in
          (* phase B: partition candidates by shard, keeping frontier
             order within each shard; one insertion task per shard, so
             every shard sees a canonical insertion order and the
             per-shard locks never collide with each other *)
          let by_shard = Array.make nshards [] in
          List.iter
            (fun s ->
              let i = visited.lv_shard_of_state s in
              by_shard.(i) <- s :: by_shard.(i))
            candidates;
          let fresh =
            map_tasks par
              (fun cands ->
                let dups = ref 0 in
                let kept =
                  List.filter
                    (fun c ->
                      if visited.lv_add_if_absent c then true
                      else begin
                        incr dups;
                        false
                      end)
                    cands
                in
                (kept, !dups))
              (List.init nshards (fun i -> List.rev by_shard.(i)))
          in
          (* next frontier: concatenation in (shard-index, insertion)
             order — the canonical layer order *)
          let next =
            List.concat_map
              (fun (kept, dups) ->
                dedup := !dedup + dups;
                kept)
              fresh
          in
          (* the between-layer eviction point: schedule-independent,
             so spilling cannot move a truncation or change a count *)
          visited.lv_layer_end ();
          loop next)
    in
    let outcome = loop [ root ] in
    let seconds = Unix.gettimeofday () -. t0 in
    let shard =
      {
        Metrics.root = 0;
        states_expanded = !expanded;
        dedup_hits = !dedup;
        frontier_peak = !peak;
        pruned = !pruned;
        fingerprint_probes = visited.lv_probes ();
        collision_fallbacks = visited.lv_collision_fallbacks ();
        intern_bindings = 0;
        seconds;
      }
    in
    let m =
      Metrics.of_shard (outcome_kind outcome) shard
      |> Metrics.with_par ~layers:!layers ~par_layers:!par_layers
           ~shard_bits:visited.lv_shard_bits
           ~occupancy_max:(visited.lv_occupancy_max ())
           ~occupancy_total:(visited.lv_bindings ())
           ~lock_contention:(visited.lv_lock_contention ())
           ~expand_seconds:!expand_seconds
    in
    (outcome, !obs, visited.lv_finish (with_degradation outcome m))

  (* ----- semi-naive delta re-exploration ----- *)

  (* Multi-seed serial BFS over the same observation interface as the
     parallel drivers — the incremental layer's workhorse.  A change
     to a finished exploration (a wider failure budget, new inputs)
     exposes a {e delta frontier}: boundary states whose successor
     sets the change enlarges.  Re-deriving from those seeds alone
     visits exactly the affected region, which semi-naive evaluation
     says is the only part that can hold new facts.

     Seeds are sorted by canonical fingerprint before exploration, so
     the visit order — and with it every deterministic counter — is a
     function of the seed {e set}, never of the caller's enumeration
     order; duplicate seeds dedup against the shared visited store
     like any other repeated state.  [known] marks states the base
     exploration already covers: they are treated exactly like
     visited-store hits (counted as dedup, never expanded), which
     stops the delta closure at the base's edge without materializing
     the base's visited set.

     The driver is serial on purpose: delta regions are small by
     construction (that is the point of seeding), so the parallel
     machinery would add nondeterminism surface for no win — and the
     answers stay jobs-invariant trivially. *)
  let run_delta ?(budget = max_int) ?deadline ?max_live ?spill ?is_goal ?prune ?edges
      ?known ~expand:obs_iface ~seeds () =
    let visited = serial_store spill in
    let obs = ref (obs_iface.empty ()) in
    let expanded = ref 0 and dedup = ref 0 and pruned = ref 0 in
    let size = ref 0 and peak = ref 0 in
    let q = Queue.create () in
    let push_batch succs =
      List.iter (fun s -> Queue.add s q) succs;
      size := !size + List.length succs;
      if !size > !peak then peak := !size
    in
    let goal = match is_goal with Some g -> g | None -> fun _ -> false in
    let covered = match known with Some k -> k | None -> fun _ -> false in
    let keep s =
      if visited.sv_mem s || covered s then begin
        incr dedup;
        false
      end
      else
        match prune with
        | Some p when p s ->
          incr pruned;
          false
        | _ -> true
    in
    let t0 = Unix.gettimeofday () in
    let over_deadline () =
      match deadline with
      | None -> None
      | Some d ->
        let elapsed = Unix.gettimeofday () -. t0 in
        if elapsed >= d then Some (Truncated (Deadline_exceeded { deadline = d; elapsed }))
        else None
    in
    let over_live live =
      match max_live with
      | Some limit when live > limit -> Some (Truncated (Live_limit_exceeded { limit; live }))
      | _ -> None
    in
    let rec loop () =
      match Queue.take_opt q with
      | None -> Exhausted
      | Some s ->
        decr size;
        if visited.sv_mem s || covered s then begin
          incr dedup;
          loop ()
        end
        else if !expanded >= budget then
          Truncated (Budget_exhausted { budget; consumed = !expanded })
        else begin
          match over_live (visited.sv_live () + !size + 1) with
          | Some t -> t
          | None -> (
            match over_deadline () with
            | Some t -> t
            | None ->
              visited.sv_add s;
              incr expanded;
              if goal s then Goal_found s
              else begin
                let succs = obs_iface.expand !obs s in
                emit_edges edges s succs;
                push_batch (List.filter keep succs);
                loop ()
              end)
        end
    in
    let seeds =
      List.stable_sort
        (fun a b -> Fingerprint.compare (P.fingerprint a) (P.fingerprint b))
        seeds
    in
    push_batch seeds;
    let outcome = loop () in
    let seconds = Unix.gettimeofday () -. t0 in
    let shard =
      {
        Metrics.root = 0;
        states_expanded = !expanded;
        dedup_hits = !dedup;
        frontier_peak = !peak;
        pruned = !pruned;
        fingerprint_probes = visited.sv_probes ();
        collision_fallbacks = visited.sv_collision_fallbacks ();
        intern_bindings = 0;
        seconds;
      }
    in
    let m =
      Metrics.of_shard (outcome_kind outcome) shard
      |> Metrics.with_incremental ~delta_seeds:(List.length seeds)
    in
    (outcome, !obs, visited.sv_finish (with_degradation outcome m))

  (* ----- asynchronous work-stealing driver ----- *)

  (* No layers, no barrier: each worker owns a Chase–Lev deque and
     works depth-first on its own bottom end, hunting round-robin over
     the other deques when its own runs dry.  The visited set is the
     lock-free [Atomic_table]; a successor is claimed into it at
     generation time (add_if_absent doubles as the membership test),
     so a state enters exactly one deque and is processed exactly
     once.

     Quiescence: [in_flight] counts the root plus every claimed,
     not-yet-retired state.  A worker increments it for each fresh
     child before retiring the parent, so it can only reach 0 when no
     state is queued or being expanded anywhere — the termination
     barrier is one atomic read.

     Determinism contract (pinned by test_parallel): on a search that
     runs to exhaustion, the claimed set equals the serial visited
     set, and states_expanded / dedup_hits / pruned /
     fingerprint_probes all satisfy the same identities as the serial
     driver (dedup = generated − pruned − fresh; probes = generated −
     pruned + 1, one claim per non-pruned successor plus the root).
     One deliberate divergence: successors are prune-tested {e
     before} the visited test, where the serial keep tests membership
     first.  The counts still agree — a prunable state is never
     claimed, so its membership test is always false — but [prune]
     must be pure, and prune-heavy goal searches (realization) should
     prefer the layered driver, which also keeps the serial driver's
     shortest-witness guarantee.  Budget exhaustion is not a halt:
     workers keep draining their deques, dropping every state whose
     budget ticket is out of range, so exactly [budget] tickets are
     consumed and [states_expanded] is deterministic even for a
     truncated search (the *set* expanded is schedule-dependent). *)
  (* The async driver's visited interface.  With a spill store the
     lock-free table is replaced by the mutex-sharded spill cache
     (add_if_absent ignores the worker hint); [av_tick] is the
     eviction check, run once per processed state — deterministic at
     [--jobs 1], schedule-dependent above it, which is why the /7
     counters carry the same jobs>1 caveat as [intern_bindings]. *)
  type async_store = {
    av_add_if_absent : worker:int -> P.state -> bool;
    av_live : unit -> int;
    av_bindings : unit -> int;
    av_probes : unit -> int;
    av_collision_fallbacks : unit -> int;
    av_lock_contention : unit -> int;
    av_cas_retries : unit -> int;
    av_occupancy : unit -> float;
    av_bits : int;
    av_tick : unit -> unit;
    av_finish : Metrics.t -> Metrics.t;
  }

  let async_store ?capacity ~workers spill =
    let equal a b = P.compare a b = 0 in
    match spill with
    | None ->
      let table = Atomic_table.create ?capacity ~workers ~equal ~fingerprint:P.fingerprint () in
      {
        av_add_if_absent = (fun ~worker s -> Atomic_table.add_if_absent table ~worker s);
        av_live = (fun () -> Atomic_table.bindings table);
        av_bindings = (fun () -> Atomic_table.bindings table);
        av_probes = (fun () -> Atomic_table.probes table);
        av_collision_fallbacks = (fun () -> Atomic_table.collision_fallbacks table);
        av_lock_contention = (fun () -> Atomic_table.lock_contention table);
        av_cas_retries = (fun () -> Atomic_table.cas_retries table);
        av_occupancy = (fun () -> Atomic_table.occupancy table);
        av_bits = Atomic_table.initial_bits table;
        av_tick = ignore;
        av_finish = Fun.id;
      }
    | Some { dir; mem_budget } ->
      let visited = Spill_store.create ~equal ~fingerprint:P.fingerprint ~dir ~mem_budget () in
      {
        av_add_if_absent = (fun ~worker:_ s -> Spill_store.add_if_absent visited s);
        av_live = (fun () -> Spill_store.resident visited);
        av_bindings = (fun () -> Spill_store.bindings visited);
        av_probes = (fun () -> Spill_store.probes visited);
        av_collision_fallbacks = (fun () -> Spill_store.collision_fallbacks visited);
        av_lock_contention = (fun () -> Spill_store.lock_contention visited);
        av_cas_retries = (fun () -> 0);
        av_occupancy = (fun () -> 0.);
        av_bits = Spill_store.shard_bits visited;
        av_tick = (fun () -> Spill_store.maybe_evict visited);
        av_finish =
          (fun m ->
            let m =
              Metrics.with_spill
                ~runs:(Spill_store.spill_runs visited)
                ~evictions:(Spill_store.spill_evictions visited)
                ~probes:(Spill_store.spill_probes visited)
                ~read_bytes:(Spill_store.spill_read_bytes visited)
                ~write_bytes:(Spill_store.spill_write_bytes visited)
                ~fd_reopens:(Spill_store.spill_fd_reopens visited)
                m
            in
            Spill_store.dispose visited;
            m);
      }

  let run_par_async ?pool ?capacity ?(budget = max_int) ?deadline ?max_live ?spill ?is_goal
      ?prune ?edges ~expand:obs_iface ~root () =
    let workers = match pool with Some p -> Domain_pool.jobs p | None -> 1 in
    let table = async_store ?capacity ~workers spill in
    let goal = match is_goal with Some g -> g | None -> fun _ -> false in
    let deques = Array.init workers (fun _ -> Ws_deque.create ()) in
    let in_flight = Atomic.make 1 in
    let tickets = Atomic.make 0 in
    let halt = Atomic.make (None : P.state outcome option) in
    let budget_hit = Atomic.make false in
    let request_halt o = ignore (Atomic.compare_and_set halt None (Some o) : bool) in
    (* per-worker tallies, merged in worker-index order at quiescence *)
    let expanded = Array.make workers 0 and dedup = Array.make workers 0 in
    let pruned = Array.make workers 0 in
    let steals = Array.make workers 0 and steal_failures = Array.make workers 0 in
    let idle = Array.make workers 0. and busy = Array.make workers 0. in
    let obss = Array.init workers (fun _ -> obs_iface.empty ()) in
    (* queued = claimed states sitting in some deque (the async
       frontier); its high-water mark is the driver's frontier_peak.
       Deterministic at one worker (pushes and pops interleave in
       program order); a schedule-dependent lower bound on the true
       concurrent peak above that, same caveat as the /5 section. *)
    let queued = Atomic.make 0 in
    let qpeak = Atomic.make 0 in
    let note_push () =
      let q = Atomic.fetch_and_add queued 1 + 1 in
      let rec bump () =
        let p = Atomic.get qpeak in
        if q > p && not (Atomic.compare_and_set qpeak p q) then bump ()
      in
      bump ()
    in
    let t0 = now () in
    ignore (table.av_add_if_absent ~worker:0 root : bool);
    Ws_deque.push deques.(0) root;
    note_push ();
    let process wi s =
      let ticket = Atomic.fetch_and_add tickets 1 in
      if ticket >= budget then Atomic.set budget_hit true
      else begin
        (* overrun guards in the serial driver's order: live states,
           then the deadline, then the goal test on the charged state *)
        (match max_live with
        | Some limit ->
          let live = table.av_live () in
          if live > limit then
            request_halt (Truncated (Live_limit_exceeded { limit; live }))
        | None -> ());
        (match deadline with
        | Some d ->
          let elapsed = now () -. t0 in
          if elapsed >= d then
            request_halt (Truncated (Deadline_exceeded { deadline = d; elapsed }))
        | None -> ());
        if Atomic.get halt = None then begin
          expanded.(wi) <- expanded.(wi) + 1;
          if goal s then request_halt (Goal_found s)
          else begin
            let succs = obs_iface.expand obss.(wi) s in
            emit_edges edges s succs;
            List.iter
              (fun c ->
                match prune with
                | Some p when p c -> pruned.(wi) <- pruned.(wi) + 1
                | _ ->
                  if table.av_add_if_absent ~worker:wi c then begin
                    Atomic.incr in_flight;
                    Ws_deque.push deques.(wi) c;
                    note_push ()
                  end
                  else dedup.(wi) <- dedup.(wi) + 1)
              succs;
            table.av_tick ()
          end
        end
      end;
      Atomic.decr in_flight
    in
    let worker wi =
      let dq = deques.(wi) in
      let tstart = now () in
      (* round-robin hunt over the other deques; gives up only on
         global quiescence or a halt *)
      let rec hunt v =
        if Atomic.get halt <> None || Atomic.get in_flight = 0 then None
        else
          let v = if v = wi then (v + 1) mod workers else v in
          match Ws_deque.steal deques.(v) with
          | Ws_deque.Stolen s ->
            steals.(wi) <- steals.(wi) + 1;
            Atomic.decr queued;
            Some s
          | Ws_deque.Empty | Ws_deque.Retry ->
            steal_failures.(wi) <- steal_failures.(wi) + 1;
            Domain.cpu_relax ();
            hunt ((v + 1) mod workers)
      in
      let rec loop () =
        if Atomic.get halt <> None then ()
        else
          match Ws_deque.pop dq with
          | Some s ->
            Atomic.decr queued;
            process wi s;
            loop ()
          | None ->
            (* a single worker with an empty deque is already
               quiescent: every push happened on this deque *)
            if workers = 1 || Atomic.get in_flight = 0 then ()
            else begin
              let ts = now () in
              let stolen = hunt ((wi + 1) mod workers) in
              idle.(wi) <- idle.(wi) +. (now () -. ts);
              match stolen with
              | Some s ->
                process wi s;
                loop ()
              | None -> ()
            end
      in
      loop ();
      busy.(wi) <- busy.(wi) +. (now () -. tstart) -. idle.(wi)
    in
    (match pool with
    | Some p when workers > 1 ->
      ignore (Domain_pool.map p worker (List.init workers Fun.id) : unit list)
    | _ -> worker 0);
    let isum a = Array.fold_left ( + ) 0 a in
    let fsum a = Array.fold_left ( +. ) 0. a in
    let outcome =
      match Atomic.get halt with
      | Some o -> o
      | None ->
        if Atomic.get budget_hit then
          Truncated (Budget_exhausted { budget; consumed = isum expanded })
        else Exhausted
    in
    let obs = Array.fold_left obs_iface.merge (obs_iface.empty ()) obss in
    let seconds = now () -. t0 in
    let shard =
      {
        Metrics.root = 0;
        states_expanded = isum expanded;
        dedup_hits = isum dedup;
        frontier_peak = Atomic.get qpeak;
        pruned = isum pruned;
        fingerprint_probes = table.av_probes ();
        collision_fallbacks = table.av_collision_fallbacks ();
        intern_bindings = 0;
        seconds;
      }
    in
    let m =
      Metrics.of_shard (outcome_kind outcome) shard
      |> Metrics.with_async ~shard_bits:table.av_bits
           ~occupancy_total:(table.av_bindings ())
           ~lock_contention:(table.av_lock_contention ())
           ~expand_seconds:(fsum busy) ~steals:(isum steals)
           ~steal_failures:(isum steal_failures) ~cas_retries:(table.av_cas_retries ())
           ~table_occupancy:(table.av_occupancy ()) ~idle_seconds:(fsum idle)
    in
    (outcome, obs, table.av_finish (with_degradation outcome m))
end

(* ----- deterministic sharding per root ----- *)

let shard ~jobs ~f ~merge ~init roots =
  Domain_pool.with_pool ~jobs (fun pool ->
      let results = Domain_pool.map pool f roots in
      let (acc, metrics), _ =
        List.fold_left
          (fun ((acc, ms), i) (a, m) ->
            ((merge acc a, Metrics.merge ms (Metrics.with_root_index i m)), i + 1))
          ((init, Metrics.zero), 0)
          results
      in
      (acc, metrics))

(* ----- strided goal search over an index space ----- *)

(* One long-lived task per worker, zero shared mutable state beyond a
   single CAS-min cell: worker [wi] owns the stride
   [wi+1, wi+1+W, wi+1+2W, …] and scans it independently — no batch
   dispatch, no per-batch barrier.  Hunt runs are independent
   no-dedup simulations, so this is the whole parallel story for
   them.

   Winner determinism: [best] only decreases, and a worker abandons
   its stride only once its next index exceeds the current [best] (or
   it found its own stripe-local goal).  Every index smaller than the
   final winner therefore got evaluated by its owning worker, so the
   returned witness is the one at the globally smallest goal index —
   identical for every [--jobs].  A clean sweep evaluates every index
   exactly once ([Error max_index]); a deadline truncation stops
   mid-stride and reports the wall-clock-dependent count tried.

   [?start] (default 1) begins the scan at a later index — the hook
   checkpoint resume uses to skip indices a previous process already
   cleared; [start..max_index] is scanned with the same stride
   discipline, so (winner, tried count) over a window is identical to
   the same window of a full scan. *)
let find_first ?metrics ~jobs ?deadline ?(start = 1) ~max_index ~f () =
  Domain_pool.with_pool ~jobs (fun pool ->
      let workers = Domain_pool.jobs pool in
      let best = Atomic.make max_int in
      let tried = Array.make workers 0 in
      let deadline_hit = Atomic.make false in
      let t0 = Unix.gettimeofday () in
      let work wi =
        let local = ref None in
        let i = ref (start + wi) in
        let continue = ref true in
        while !continue && !i <= max_index do
          if !i > Atomic.get best then continue := false
          else begin
            (match deadline with
            | Some d when Unix.gettimeofday () -. t0 >= d ->
              Atomic.set deadline_hit true;
              continue := false
            | _ -> ());
            if !continue then begin
              tried.(wi) <- tried.(wi) + 1;
              (match f !i with
              | Some v ->
                local := Some (!i, v);
                let rec cas_min () =
                  let b = Atomic.get best in
                  if !i < b && not (Atomic.compare_and_set best b !i) then cas_min ()
                in
                cas_min ();
                continue := false
              | None -> ());
              i := !i + workers
            end
          end
        done;
        !local
      in
      let locals =
        if workers = 1 then [ work 0 ]
        else Domain_pool.map pool work (List.init workers Fun.id)
      in
      let result =
        match
          List.fold_left
            (fun acc l ->
              match (acc, l) with
              | Some (i, _), Some (j, _) when j < i -> l
              | None, _ -> l
              | _ -> acc)
            None locals
        with
        | Some (_, v) -> Ok v
        | None -> Error (Array.fold_left ( + ) 0 tried)
      in
      let seconds = Unix.gettimeofday () -. t0 in
      let kind =
        match result with Ok _ -> Metrics.Goal_found | Error _ -> Metrics.Truncated
      in
      let m =
        Metrics.of_shard kind
          {
            Metrics.root = 0;
            states_expanded = Array.fold_left ( + ) 0 tried;
            dedup_hits = 0;
            frontier_peak = workers;
            pruned = 0;
            fingerprint_probes = 0;
            collision_fallbacks = 0;
            intern_bindings = 0;
            seconds;
          }
      in
      let m = if Atomic.get deadline_hit then { m with Metrics.deadline_hits = 1 } else m in
      merge_into metrics m;
      result)

(* ----- instrumented linear scans ----- *)

module Scan = struct
  (* The kernel specialised to a chain: position [i] expands to
     [i + 1] and nothing is ever revisited, so the visited table is
     skipped — but the scan reports the same Metrics as any other
     search, with the first error as the goal. *)
  let first_error ?metrics ~len ~check () =
    let t0 = Unix.gettimeofday () in
    let checked = ref 0 in
    let rec go i =
      if i >= len then Ok ()
      else begin
        incr checked;
        match check i with Ok () -> go (i + 1) | Error _ as e -> e
      end
    in
    let result = go 0 in
    let seconds = Unix.gettimeofday () -. t0 in
    let kind =
      match result with Ok () -> Metrics.Exhausted | Error _ -> Metrics.Goal_found
    in
    let m =
      Metrics.of_shard kind
        {
          Metrics.root = 0;
          states_expanded = !checked;
          dedup_hits = 0;
          frontier_peak = (if len > 0 then 1 else 0);
          pruned = 0;
          fingerprint_probes = 0;
          collision_fallbacks = 0;
          intern_bindings = 0;
          seconds;
        }
    in
    merge_into metrics m;
    result
end
