type outcome_kind = Exhausted | Goal_found | Truncated

let outcome_string = function
  | Exhausted -> "exhausted"
  | Goal_found -> "goal_found"
  | Truncated -> "truncated"

(* Goal_found dominates (the search answered affirmatively before any
   budget question arose for the answer); otherwise a truncated shard
   taints the whole sweep. *)
let merge_outcome a b =
  match (a, b) with
  | Goal_found, _ | _, Goal_found -> Goal_found
  | Truncated, _ | _, Truncated -> Truncated
  | Exhausted, Exhausted -> Exhausted

type shard = {
  root : int;
  states_expanded : int;
  dedup_hits : int;
  frontier_peak : int;
  pruned : int;
  fingerprint_probes : int;
  collision_fallbacks : int;
  intern_bindings : int;
  seconds : float;
}

type t = {
  outcome : outcome_kind;
  states_expanded : int;
  dedup_hits : int;
  frontier_peak : int;  (* max over shards, not a concurrent peak *)
  pruned : int;
  fingerprint_probes : int;
  collision_fallbacks : int;
  intern_bindings : int;
  budget_consumed : int;
  roots : int;
  truncated_roots : int;
  layers : int;
  par_layers : int;
  shard_bits : int;
  shard_occupancy_max : int;
  shard_occupancy_total : int;
  frontier_peak_sum : int;
  deadline_hits : int;
  live_limit_hits : int;
  lock_contention : int;
  expand_seconds : float;
  steals : int;
  steal_failures : int;
  cas_retries : int;
  table_occupancy : float;
  idle_seconds : float;
  db_edges : int;
  db_index_scans : int;
  db_cache_hits : int;
  db_cache_misses : int;
  spill_runs : int;
  spill_evictions : int;
  spill_probes : int;
  spill_read_bytes : int;
  spill_write_bytes : int;
  spill_fd_reopens : int;
  prefix_hits : int;
  prefix_states_saved : int;
  delta_seeds : int;
  delta_reused_edges : int;
  drops_injected : int;
  omission_plans : int;
  mobile_faults : int;
  shards : shard list;
}

let zero =
  {
    outcome = Exhausted;
    states_expanded = 0;
    dedup_hits = 0;
    frontier_peak = 0;
    pruned = 0;
    fingerprint_probes = 0;
    collision_fallbacks = 0;
    intern_bindings = 0;
    budget_consumed = 0;
    roots = 0;
    truncated_roots = 0;
    layers = 0;
    par_layers = 0;
    shard_bits = 0;
    shard_occupancy_max = 0;
    shard_occupancy_total = 0;
    frontier_peak_sum = 0;
    deadline_hits = 0;
    live_limit_hits = 0;
    lock_contention = 0;
    expand_seconds = 0.;
    steals = 0;
    steal_failures = 0;
    cas_retries = 0;
    table_occupancy = 0.;
    idle_seconds = 0.;
    db_edges = 0;
    db_index_scans = 0;
    db_cache_hits = 0;
    db_cache_misses = 0;
    spill_runs = 0;
    spill_evictions = 0;
    spill_probes = 0;
    spill_read_bytes = 0;
    spill_write_bytes = 0;
    spill_fd_reopens = 0;
    prefix_hits = 0;
    prefix_states_saved = 0;
    delta_seeds = 0;
    delta_reused_edges = 0;
    drops_injected = 0;
    omission_plans = 0;
    mobile_faults = 0;
    shards = [];
  }

let of_shard outcome (s : shard) =
  {
    zero with
    outcome;
    states_expanded = s.states_expanded;
    dedup_hits = s.dedup_hits;
    frontier_peak = s.frontier_peak;
    pruned = s.pruned;
    fingerprint_probes = s.fingerprint_probes;
    collision_fallbacks = s.collision_fallbacks;
    intern_bindings = s.intern_bindings;
    budget_consumed = s.states_expanded;
    roots = 1;
    truncated_roots = (if outcome = Truncated then 1 else 0);
    frontier_peak_sum = s.frontier_peak;
    shards = [ s ];
  }

(* Retag a single-root metrics record with the layer-synchronous
   driver's statistics.  Every field except [lock_contention] and
   [expand_seconds] is deterministic: layer structure and shard
   occupancy are functions of the reachable graph (and the constant
   [shard_bits]), not of the worker count. *)
let with_par ~layers ~par_layers ~shard_bits ~occupancy_max ~occupancy_total
    ~lock_contention ~expand_seconds m =
  {
    m with
    layers;
    par_layers;
    shard_bits;
    shard_occupancy_max = occupancy_max;
    shard_occupancy_total = occupancy_total;
    lock_contention;
    expand_seconds;
  }

(* Retag a single-root metrics record with the asynchronous driver's
   statistics.  [shard_bits] is the table's presized capacity log2 (a
   create-time constant) and [occupancy_total] the final binding count
   — both deterministic; the work-stealing and CAS counters plus the
   load factor and idle time are volatile, schedule-dependent
   quantities and live in the schema's /5 section.  The layered
   fields (layers, par_layers, shard_occupancy_max) stay 0: there are
   no layers and no shards to report. *)
let with_async ~shard_bits ~occupancy_total ~lock_contention ~expand_seconds ~steals
    ~steal_failures ~cas_retries ~table_occupancy ~idle_seconds m =
  {
    m with
    shard_bits;
    shard_occupancy_total = occupancy_total;
    lock_contention;
    expand_seconds;
    steals;
    steal_failures;
    cas_retries;
    table_occupancy;
    idle_seconds;
  }

(* Retag a metrics record with an execution-database snapshot.  All
   four counters are deterministic for a given recorded edge set and
   query sequence: the edge count is a set cardinality and the
   scan/cache counters are functions of the queries issued, not of
   worker interleaving. *)
let with_db ~edges ~index_scans ~cache_hits ~cache_misses m =
  {
    m with
    db_edges = edges;
    db_index_scans = index_scans;
    db_cache_hits = cache_hits;
    db_cache_misses = cache_misses;
  }

(* Retag a metrics record with a spill-store snapshot.  All six
   counters are deterministic under the serial and layer-synchronous
   drivers (eviction happens at schedule-independent points there) and
   schedule-dependent under the asynchronous driver at jobs > 1 — the
   same caveat as [intern_bindings], and gated the same way by the
   bench --check harness.  All six are 0 unless a --spill-dir was
   given.  [fd_reopens] additionally depends on the process-wide
   descriptor cache (see {!Patterns_stdx.Block_file}), so it is only
   deterministic when one spilling search runs at a time. *)
let with_spill ~runs ~evictions ~probes ~read_bytes ~write_bytes ~fd_reopens m =
  {
    m with
    spill_runs = runs;
    spill_evictions = evictions;
    spill_probes = probes;
    spill_read_bytes = read_bytes;
    spill_write_bytes = write_bytes;
    spill_fd_reopens = fd_reopens;
  }

(* Retag a metrics record with the incremental-derivation counters.
   All four are deterministic: prefix hits/saved-steps are functions of
   the evaluated plan-index set (each plan either shares a failure-free
   prefix or does not, independent of which worker materialized the
   memo), and the delta counters are functions of the base facts and
   the change description, not of scheduling. *)
let with_incremental ?(prefix_hits = 0) ?(prefix_states_saved = 0) ?(delta_seeds = 0)
    ?(delta_reused_edges = 0) m =
  {
    m with
    prefix_hits = m.prefix_hits + prefix_hits;
    prefix_states_saved = m.prefix_states_saved + prefix_states_saved;
    delta_seeds = m.delta_seeds + delta_seeds;
    delta_reused_edges = m.delta_reused_edges + delta_reused_edges;
  }

(* Retag a metrics record with the fault-injection counters.  All
   three are deterministic and jobs-invariant on full sweeps:
   drops are trace events of decoded plans, and the plan counters are
   functions of the evaluated plan-index set — with the same
   goal-found overshoot caveat as [prefix_hits]. *)
let with_faults ?(drops_injected = 0) ?(omission_plans = 0) ?(mobile_faults = 0) m =
  {
    m with
    drops_injected = m.drops_injected + drops_injected;
    omission_plans = m.omission_plans + omission_plans;
    mobile_faults = m.mobile_faults + mobile_faults;
  }

let with_root_index i m =
  { m with shards = List.map (fun s -> { s with root = i }) m.shards }

(* The kernel cannot see the client's intern tables, so single-shard
   metrics are retagged after the run; sums stay in root order. *)
let with_intern_bindings n m =
  {
    m with
    intern_bindings = n;
    shards = List.map (fun (s : shard) -> { s with intern_bindings = n }) m.shards;
  }

let merge a b =
  {
    outcome = merge_outcome a.outcome b.outcome;
    states_expanded = a.states_expanded + b.states_expanded;
    dedup_hits = a.dedup_hits + b.dedup_hits;
    frontier_peak = max a.frontier_peak b.frontier_peak;
    pruned = a.pruned + b.pruned;
    fingerprint_probes = a.fingerprint_probes + b.fingerprint_probes;
    collision_fallbacks = a.collision_fallbacks + b.collision_fallbacks;
    intern_bindings = a.intern_bindings + b.intern_bindings;
    budget_consumed = a.budget_consumed + b.budget_consumed;
    roots = a.roots + b.roots;
    truncated_roots = a.truncated_roots + b.truncated_roots;
    layers = a.layers + b.layers;
    par_layers = a.par_layers + b.par_layers;
    shard_bits = max a.shard_bits b.shard_bits;
    shard_occupancy_max = max a.shard_occupancy_max b.shard_occupancy_max;
    shard_occupancy_total = a.shard_occupancy_total + b.shard_occupancy_total;
    frontier_peak_sum = a.frontier_peak_sum + b.frontier_peak_sum;
    deadline_hits = a.deadline_hits + b.deadline_hits;
    live_limit_hits = a.live_limit_hits + b.live_limit_hits;
    lock_contention = a.lock_contention + b.lock_contention;
    expand_seconds = a.expand_seconds +. b.expand_seconds;
    steals = a.steals + b.steals;
    steal_failures = a.steal_failures + b.steal_failures;
    cas_retries = a.cas_retries + b.cas_retries;
    table_occupancy = Float.max a.table_occupancy b.table_occupancy;
    idle_seconds = a.idle_seconds +. b.idle_seconds;
    db_edges = a.db_edges + b.db_edges;
    db_index_scans = a.db_index_scans + b.db_index_scans;
    db_cache_hits = a.db_cache_hits + b.db_cache_hits;
    db_cache_misses = a.db_cache_misses + b.db_cache_misses;
    spill_runs = a.spill_runs + b.spill_runs;
    spill_evictions = a.spill_evictions + b.spill_evictions;
    spill_probes = a.spill_probes + b.spill_probes;
    spill_read_bytes = a.spill_read_bytes + b.spill_read_bytes;
    spill_write_bytes = a.spill_write_bytes + b.spill_write_bytes;
    spill_fd_reopens = a.spill_fd_reopens + b.spill_fd_reopens;
    prefix_hits = a.prefix_hits + b.prefix_hits;
    prefix_states_saved = a.prefix_states_saved + b.prefix_states_saved;
    delta_seeds = a.delta_seeds + b.delta_seeds;
    delta_reused_edges = a.delta_reused_edges + b.delta_reused_edges;
    drops_injected = a.drops_injected + b.drops_injected;
    omission_plans = a.omission_plans + b.omission_plans;
    mobile_faults = a.mobile_faults + b.mobile_faults;
    shards = a.shards @ b.shards;
  }

(* Hand-rolled rendering, like the bench harness: no JSON dependency.
   Key order is part of the schema and pinned by the cram test.
   Schema /2 appended the fingerprint-store counters after "pruned";
   schema /3 appended the layer-synchronous driver fields after
   "truncated_roots"; schema /4 appends the graceful-degradation
   counters "deadline_hits" and "live_limit_hits" after
   "frontier_peak_sum"; schema /5 appends the asynchronous driver's
   volatile section — "steals", "steal_failures", "cas_retries",
   "table_occupancy", "idle_seconds" — after "parallel_efficiency";
   schema /6 appends the execution-database counters "db_edges",
   "db_index_scans", "db_cache_hits", "db_cache_misses" (deterministic,
   all 0 unless a --db was attached) after "idle_seconds";
   schema /7 appends the spill-store counters "spill_runs",
   "spill_evictions", "spill_probes", "spill_read_bytes",
   "spill_write_bytes" (all 0 unless a --spill-dir was given;
   deterministic except under the asynchronous driver at jobs > 1,
   like "intern_bindings") after "db_cache_misses";
   schema /8 appends "spill_fd_reopens" (descriptor-cache misses for
   runs already opened once; same gating as the other spill counters)
   after "spill_write_bytes", then the incremental-derivation counters
   "prefix_hits", "prefix_states_saved", "delta_seeds",
   "delta_reused_edges" (deterministic; all 0 unless a memoized
   systematic hunt or a --base-db widening ran);
   schema /9 appends the fault-injection counters "drops_injected",
   "omission_plans", "mobile_faults" (deterministic and jobs-invariant
   on full sweeps, overshooting with [jobs] on goal-found hunts like
   "prefix_hits"; all 0 unless a hunt widened the adversary past
   fail-stop) after "delta_reused_edges";
   every earlier field is unchanged in name, meaning and order.
   "lock_contention", "expand_seconds", "parallel_efficiency" and the
   whole /5 section are the nondeterministic top-level fields
   (normalized away by the cram test, never compared by the bench
   --check gate); "deadline_hits" is deterministically 0 when no
   deadline was set, and wall-clock-dependent when one was. *)
let wall_seconds m = List.fold_left (fun acc (s : shard) -> acc +. s.seconds) 0. m.shards

(* expand-time over wall-time: the fraction of the run spent inside
   successor expansion, summed across workers — values above 1 mean
   expansion actually overlapped across domains. *)
let parallel_efficiency m =
  let wall = wall_seconds m in
  if wall > 0. then m.expand_seconds /. wall else 0.

let to_json ?(shards = true) m =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"patterns-search-metrics/9\",\n";
  Buffer.add_string b (Printf.sprintf "  \"outcome\": \"%s\",\n" (outcome_string m.outcome));
  Buffer.add_string b (Printf.sprintf "  \"states_expanded\": %d,\n" m.states_expanded);
  Buffer.add_string b (Printf.sprintf "  \"dedup_hits\": %d,\n" m.dedup_hits);
  Buffer.add_string b (Printf.sprintf "  \"frontier_peak\": %d,\n" m.frontier_peak);
  Buffer.add_string b (Printf.sprintf "  \"pruned\": %d,\n" m.pruned);
  Buffer.add_string b
    (Printf.sprintf "  \"fingerprint_probes\": %d,\n" m.fingerprint_probes);
  Buffer.add_string b
    (Printf.sprintf "  \"collision_fallbacks\": %d,\n" m.collision_fallbacks);
  Buffer.add_string b (Printf.sprintf "  \"intern_bindings\": %d,\n" m.intern_bindings);
  Buffer.add_string b (Printf.sprintf "  \"budget_consumed\": %d,\n" m.budget_consumed);
  Buffer.add_string b (Printf.sprintf "  \"roots\": %d,\n" m.roots);
  Buffer.add_string b (Printf.sprintf "  \"truncated_roots\": %d,\n" m.truncated_roots);
  Buffer.add_string b (Printf.sprintf "  \"layers\": %d,\n" m.layers);
  Buffer.add_string b (Printf.sprintf "  \"par_layers\": %d,\n" m.par_layers);
  Buffer.add_string b (Printf.sprintf "  \"shard_bits\": %d,\n" m.shard_bits);
  Buffer.add_string b
    (Printf.sprintf "  \"shard_occupancy_max\": %d,\n" m.shard_occupancy_max);
  Buffer.add_string b
    (Printf.sprintf "  \"shard_occupancy_total\": %d,\n" m.shard_occupancy_total);
  Buffer.add_string b (Printf.sprintf "  \"frontier_peak_sum\": %d,\n" m.frontier_peak_sum);
  Buffer.add_string b (Printf.sprintf "  \"deadline_hits\": %d,\n" m.deadline_hits);
  Buffer.add_string b (Printf.sprintf "  \"live_limit_hits\": %d,\n" m.live_limit_hits);
  Buffer.add_string b (Printf.sprintf "  \"lock_contention\": %d,\n" m.lock_contention);
  Buffer.add_string b (Printf.sprintf "  \"expand_seconds\": %.6f,\n" m.expand_seconds);
  Buffer.add_string b
    (Printf.sprintf "  \"parallel_efficiency\": %.3f,\n" (parallel_efficiency m));
  Buffer.add_string b (Printf.sprintf "  \"steals\": %d,\n" m.steals);
  Buffer.add_string b (Printf.sprintf "  \"steal_failures\": %d,\n" m.steal_failures);
  Buffer.add_string b (Printf.sprintf "  \"cas_retries\": %d,\n" m.cas_retries);
  Buffer.add_string b (Printf.sprintf "  \"table_occupancy\": %.3f,\n" m.table_occupancy);
  Buffer.add_string b (Printf.sprintf "  \"idle_seconds\": %.6f,\n" m.idle_seconds);
  Buffer.add_string b (Printf.sprintf "  \"db_edges\": %d,\n" m.db_edges);
  Buffer.add_string b (Printf.sprintf "  \"db_index_scans\": %d,\n" m.db_index_scans);
  Buffer.add_string b (Printf.sprintf "  \"db_cache_hits\": %d,\n" m.db_cache_hits);
  Buffer.add_string b (Printf.sprintf "  \"db_cache_misses\": %d,\n" m.db_cache_misses);
  Buffer.add_string b (Printf.sprintf "  \"spill_runs\": %d,\n" m.spill_runs);
  Buffer.add_string b (Printf.sprintf "  \"spill_evictions\": %d,\n" m.spill_evictions);
  Buffer.add_string b (Printf.sprintf "  \"spill_probes\": %d,\n" m.spill_probes);
  Buffer.add_string b (Printf.sprintf "  \"spill_read_bytes\": %d,\n" m.spill_read_bytes);
  Buffer.add_string b (Printf.sprintf "  \"spill_write_bytes\": %d,\n" m.spill_write_bytes);
  Buffer.add_string b (Printf.sprintf "  \"spill_fd_reopens\": %d,\n" m.spill_fd_reopens);
  Buffer.add_string b (Printf.sprintf "  \"prefix_hits\": %d,\n" m.prefix_hits);
  Buffer.add_string b
    (Printf.sprintf "  \"prefix_states_saved\": %d,\n" m.prefix_states_saved);
  Buffer.add_string b (Printf.sprintf "  \"delta_seeds\": %d,\n" m.delta_seeds);
  Buffer.add_string b (Printf.sprintf "  \"delta_reused_edges\": %d,\n" m.delta_reused_edges);
  Buffer.add_string b (Printf.sprintf "  \"drops_injected\": %d,\n" m.drops_injected);
  Buffer.add_string b (Printf.sprintf "  \"omission_plans\": %d,\n" m.omission_plans);
  Buffer.add_string b (Printf.sprintf "  \"mobile_faults\": %d" m.mobile_faults);
  if shards then begin
    Buffer.add_string b ",\n  \"shards\": [\n";
    List.iteri
      (fun i s ->
        Buffer.add_string b
          (Printf.sprintf
             "    { \"root\": %d, \"states_expanded\": %d, \"dedup_hits\": %d, \
              \"frontier_peak\": %d, \"pruned\": %d, \"fingerprint_probes\": %d, \
              \"collision_fallbacks\": %d, \"intern_bindings\": %d, \"seconds\": %.6f }%s\n"
             s.root s.states_expanded s.dedup_hits s.frontier_peak s.pruned
             s.fingerprint_probes s.collision_fallbacks s.intern_bindings s.seconds
             (if i = List.length m.shards - 1 then "" else ",")))
      m.shards;
    Buffer.add_string b "  ]\n"
  end
  else Buffer.add_string b "\n";
  Buffer.add_string b "}\n";
  Buffer.contents b

let pp ppf m =
  Format.fprintf ppf "expanded=%d dedup=%d peak=%d outcome=%s" m.states_expanded m.dedup_hits
    m.frontier_peak (outcome_string m.outcome)
