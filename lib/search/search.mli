(** The one instrumented search kernel.

    Every result in this repository is, operationally, a state-space
    search: scheme enumeration, the consistency/termination checks,
    realization, and the randomized hunts.  This module owns the
    frontier, the visited store, the budget, and the counters, once —
    the call-sites supply a {!Problem} (state type, fingerprinting,
    expansion) and fold their observations into [expand] closures,
    which the kernel invokes exactly once per visited state, in
    visitation order.  What an answer means therefore never depends on
    a private reimplementation of how executions were enumerated or
    truncated.

    Determinism: for a fixed strategy, problem and budget, the
    visitation order — and hence every counter except the wall-clock
    [seconds] — is a pure function of the root.  The sharding driver
    {!shard} merges per-root results in root order on a
    {!Patterns_stdx.Domain_pool}, so sharded sweeps are bit-identical
    for every [jobs] value. *)

(** Why a search stopped short of exhausting its space.  All three are
    graceful: the search returns its metrics and a [Truncated] outcome
    instead of hanging ([Deadline_exceeded]) or growing without bound
    ([Live_limit_exceeded]). *)
type reason =
  | Budget_exhausted of { budget : int; consumed : int }
  | Deadline_exceeded of { deadline : float; elapsed : float }
      (** the wall-clock deadline (seconds) passed; [elapsed] is the
          time actually spent when the guard fired *)
  | Live_limit_exceeded of { limit : int; live : int }
      (** visited bindings + frontier size exceeded the live-state
          budget; deterministic for a fixed strategy and input *)

val reason_string : reason -> string

type 'a outcome =
  | Exhausted  (** the reachable space was fully enumerated *)
  | Goal_found of 'a  (** the first goal state, in visitation order *)
  | Truncated of reason
      (** a budget, deadline or live-state limit ran out with states
          still pending — the generalization of the scheme layer's
          [Realized]/[Unrealizable]/[Truncated] triad *)

val outcome_kind : 'a outcome -> Metrics.outcome_kind
val truncated : 'a outcome -> bool

val with_degradation : 'a outcome -> Metrics.t -> Metrics.t
(** Set {!Metrics.t.deadline_hits} / [live_limit_hits] from the
    outcome's truncation reason (both 0 unless the matching guard
    fired).  Applied by every driver in this module; exposed for
    clients that synthesize metrics records of their own. *)

val now : unit -> float
(** [Unix.gettimeofday], re-exported so deadline-aware callers can
    compute remaining time without their own [unix] dependency. *)

(** Which parallel driver a client sweep runs on.  [Layers] is the
    layer-synchronous barrier driver ({!Make.run_par}) — bit-identical
    to the serial reference in every respect, including truncation
    points and goal witnesses.  [Async] is the work-stealing driver
    over the lock-free fingerprint table ({!Make.run_par_async}) —
    same outcomes, observations and deterministic counters on searches
    it runs to exhaustion, but truncation sets and goal witnesses are
    schedule-dependent.  Clients default to [Async]; the flag exists
    so a suspected async regression is one [--par-mode layers] away
    from bisectable. *)
type par_mode = Layers | Async

val par_mode_string : par_mode -> string

(** Disk-backed visited storage.  When passed to a driver, the
    in-memory visited store is replaced by a
    {!Patterns_stdx.Spill_store} rooted at [dir]: at most [mem_budget]
    visited bindings stay resident, the rest live in sorted on-disk
    runs probed by fingerprint.  Probe counting, cumulative binding
    counts and the insertion discipline are identical to the in-memory
    stores, and eviction happens only at deterministic driver-chosen
    points (serial: per insert; layers: between layers; async: per
    processed state), so outcomes, observations and the /1–/6 metrics
    fields are bit-identical with or without spilling — the /7 spill
    counters themselves are deterministic except under the async
    driver at [jobs > 1].  One semantic shift: the [max_live] guard
    counts {e resident} bindings plus frontier rather than cumulative
    bindings — spilling exists precisely to move cold states out of
    the live-memory budget.  Run files are deleted when the driver
    returns. *)
type spill = { dir : string; mem_budget : int }

val merge_into : Metrics.t ref option -> Metrics.t -> unit
(** [merge_into sink m]: accumulate [m] into an optional metrics sink
    (the convention used by every [?metrics] parameter downstream). *)

(** The visited store: membership keyed on a precomputed 64-bit
    fingerprint, with structural comparison only as the
    collision-resolution fallback.  States whose fingerprints are
    maintained incrementally (engine configurations) therefore pay
    O(1) to be hashed into the store instead of a structural fold, and
    the store never trusts a 64-bit match alone — every fingerprint
    hit is confirmed with [equal] before it counts as membership. *)
module Store : sig
  type 'a t

  val create :
    ?size:int ->
    equal:('a -> 'a -> bool) ->
    fingerprint:('a -> Patterns_stdx.Fingerprint.t) ->
    unit ->
    'a t
  (** [equal] must agree with [fingerprint]: equal states must have
      equal fingerprints (the converse may fail — that is the
      collision the store resolves structurally). *)

  val mem : 'a t -> 'a -> bool
  val add : 'a t -> 'a -> unit

  val bindings : 'a t -> int
  (** Number of distinct states stored. *)

  val probes : 'a t -> int
  (** Number of {!mem} lookups served. *)

  val collision_fallbacks : 'a t -> int
  (** Probes that met a fingerprint-equal but structurally distinct
      state — true 64-bit collisions.  Expected to be 0 on every
      workload in this repository; surfaced in {!Metrics} so the
      expectation is checked, not assumed. *)
end

module type Problem = sig
  type state

  val compare : state -> state -> int
  (** Total order; [compare a b = 0] is the dedup equality. *)

  val fingerprint : state -> Patterns_stdx.Fingerprint.t
  (** Must agree with [compare]: equal states have equal
      fingerprints.  Called once per visited-store probe or insert, so
      it should be O(1) — engine configurations carry theirs
      incrementally. *)

  val expand : state -> state list
  (** Successors, called exactly once per visited state, in
      visitation order — call-sites hang their observations
      (pattern collection, violation recording) on this closure.
      Successors are explored in the returned order under {!Make.Dfs}
      and {!Make.Bfs}. *)
end

module Make (P : Problem) : sig
  type strategy =
    | Bfs  (** FIFO frontier *)
    | Dfs  (** LIFO frontier; preorder in [expand]'s order (default) *)
    | Priority of (P.state -> P.state -> int)
        (** least state first, via {!Patterns_stdx.Pqueue} *)

  val run :
    ?strategy:strategy ->
    ?budget:int ->
    ?deadline:float ->
    ?max_live:int ->
    ?spill:spill ->
    ?is_goal:(P.state -> bool) ->
    ?prune:(P.state -> bool) ->
    ?edges:(src:P.state -> event:int -> dst:P.state -> unit) ->
    root:P.state ->
    unit ->
    P.state outcome * Metrics.t
  (** Search from [root].  Each visited state consumes one unit of
      [budget] (default unlimited); when a state is popped with the
      budget spent, the search stops with {!Truncated}.  [deadline]
      (wall-clock seconds from the start of this call) and [max_live]
      (visited bindings + frontier size) are the graceful-degradation
      guards, checked at the same pop point: exceeding either stops
      the search with {!Truncated} ({!Deadline_exceeded} /
      {!Live_limit_exceeded}) instead of hanging or exhausting memory.
      [max_live] truncation is deterministic; [deadline] truncation
      points are wall-clock-dependent by nature.  [is_goal] is tested
      at visit time, before expansion.  Successors for which [prune]
      returns [true] are discarded (counted in {!Metrics.t.pruned});
      already-visited successors are discarded too (counted in
      [dedup_hits]).  The root is neither pruned nor goal-exempt.  The
      visited set is a {!Store} keyed on [P.fingerprint]; its probe
      and collision counters are reported in the metrics.

      [edges] is the optional execution-database sink, shared by all
      three drivers: each expansion of [src] invokes it once per
      successor — before visited/prune filtering, so the database
      records the raw expansion relation — with [event] the
      successor's ordinal in [expand]'s return list (deterministic for
      a deterministic [expand]).  The parallel drivers invoke it from
      worker domains concurrently; thread safety is the callee's
      obligation. *)

  (** Observation interface for {!run_par}.  Each expansion task works
      against a fresh accumulator from [empty]; task accumulators are
      merged left-to-right in frontier order.  [merge] must be
      associative — then the folded observation equals the sequential
      fold over the layer in frontier order, independent of how the
      layer was chunked (and the chunking itself is a function of the
      layer size only, never of the worker count). *)
  type 'obs par_expand = {
    empty : unit -> 'obs;
    merge : 'obs -> 'obs -> 'obs;
    expand : 'obs -> P.state -> P.state list;
  }

  val default_par_threshold : int
  (** 128 — layers smaller than this run inline on the calling domain;
      at or above it, chunks are dispatched to the pool.  Either path
      performs the identical work in the identical order. *)

  val run_par :
    ?pool:Patterns_stdx.Domain_pool.t ->
    ?par_threshold:int ->
    ?shard_bits:int ->
    ?budget:int ->
    ?deadline:float ->
    ?max_live:int ->
    ?spill:spill ->
    ?is_goal:(P.state -> bool) ->
    ?prune:(P.state -> bool) ->
    ?edges:(src:P.state -> event:int -> dst:P.state -> unit) ->
    expand:'obs par_expand ->
    root:P.state ->
    unit ->
    P.state outcome * 'obs * Metrics.t
  (** Level-synchronous parallel BFS.  Each frontier layer is charged
      against the budget and scanned for goals sequentially in frontier
      order (so mid-layer stops are deterministic), then expanded in
      chunks — in parallel across [pool] when the layer size reaches
      [par_threshold] — against the {!Patterns_stdx.Sharded_store}
      visited set, which no expansion task mutates.  Surviving
      successors are partitioned by shard and inserted by one task per
      shard, each in frontier order; the next frontier is their
      concatenation in (shard-index, insertion) order.  Every result,
      observation and deterministic counter is therefore bit-identical
      for every pool size, threshold and dispatch path.  Calling from
      the pool-owning domain is required (the pool forbids nested
      [map]s).  Counter semantics match {!run}: [states_expanded]
      counts budget-charged states, [dedup_hits] counts
      visited/duplicate suppressions (probe-time and insert-time),
      [pruned] counts prune rejections; [fingerprint_probes] counts
      one probe per successor filter and one per insertion attempt.
      [deadline] and [max_live] are checked once per layer before the
      layer is charged, so overshoot past either guard is bounded by
      one layer; [max_live] truncation is deterministic and
      jobs-invariant. *)

  val run_delta :
    ?budget:int ->
    ?deadline:float ->
    ?max_live:int ->
    ?spill:spill ->
    ?is_goal:(P.state -> bool) ->
    ?prune:(P.state -> bool) ->
    ?edges:(src:P.state -> event:int -> dst:P.state -> unit) ->
    ?known:(P.state -> bool) ->
    expand:'obs par_expand ->
    seeds:P.state list ->
    unit ->
    P.state outcome * 'obs * Metrics.t
  (** Semi-naive delta re-exploration: a multi-seed serial BFS over
      the {!par_expand} observation interface.  Where {!run} derives a
      whole space from one root, [run_delta] re-derives only the
      region a {e change} to a finished base exploration can affect —
      the caller seeds it with the boundary states whose successor
      sets the change enlarges (e.g. the freshly-enabled crash
      successors when [--max-failures] is raised), and the forward
      closure of those seeds is exactly the affected region.

      Seeds are sorted by canonical fingerprint before exploration,
      so the visitation order and every deterministic counter are a
      function of the seed set, not of the caller's enumeration
      order; duplicate seeds dedup against the shared visited store.
      [known] marks states the base already covers: they are treated
      exactly like visited-store hits (counted in [dedup_hits], never
      expanded), which stops the delta closure at the base's edge
      without materializing the base's visited set.  Budget, guard
      and counter semantics match {!run} with [Bfs]; the metrics
      carry [delta_seeds] (the /8 section).  The driver is serial by
      design — delta regions are small by construction, so its
      answers are jobs-invariant trivially. *)

  val run_par_async :
    ?pool:Patterns_stdx.Domain_pool.t ->
    ?capacity:int ->
    ?budget:int ->
    ?deadline:float ->
    ?max_live:int ->
    ?spill:spill ->
    ?is_goal:(P.state -> bool) ->
    ?prune:(P.state -> bool) ->
    ?edges:(src:P.state -> event:int -> dst:P.state -> unit) ->
    expand:'obs par_expand ->
    root:P.state ->
    unit ->
    P.state outcome * 'obs * Metrics.t
  (** Asynchronous work-stealing search: one Chase–Lev deque per pool
      worker, depth-first on the owner's end with round-robin stealing,
      over a lock-free open-addressing visited table
      ({!Patterns_stdx.Atomic_table}, presized to [capacity] slots)
      whose insert doubles as the membership test — no barrier, no
      mutex on the hot path.  Quiescence is detected by an atomic
      in-flight counter; budget, deadline and live-state guards run
      inside each worker.

      Determinism contract, relative to the serial {!run} (and pinned
      by the registry-wide tests): on a search that runs to
      {!Exhausted}, the visited set, observations (for a commutative
      associative [merge]), and the deterministic counters
      [states_expanded], [dedup_hits], [pruned], [fingerprint_probes]
      (one claim per non-pruned successor plus the root) all match.
      [Truncated (Budget_exhausted _)] still consumes exactly [budget]
      states (workers drain their deques dropping out-of-budget
      tickets), but *which* states is schedule-dependent, as are
      {!Goal_found} witnesses, [deadline] and [max_live] trigger
      points, and every /5 metrics field.  [frontier_peak] reports the
      high-water mark of claimed-but-unprocessed states across all
      deques — deterministic at one worker, a schedule-dependent lower
      bound on the true concurrent peak above that — truncation-sensitive or
      shortest-witness callers should use {!run_par}.  Unlike the
      serial keep order, successors are prune-tested {e before} the
      visited test ([prune] must be a pure predicate; the counts are
      unaffected because a prunable state is never visited).  [merge]
      folds per-worker accumulators in worker-index order, so it must
      be commutative as well as associative for observations to be
      jobs-invariant.  Calling from the pool-owning domain is
      required. *)
end

val shard :
  jobs:int ->
  f:('root -> 'a * Metrics.t) ->
  merge:('acc -> 'a -> 'acc) ->
  init:'acc ->
  'root list ->
  'acc * Metrics.t
(** Run one independent search per root on a
    {!Patterns_stdx.Domain_pool} and merge both payloads and metrics
    in root order — the deterministic sweep used by scheme
    enumeration and exhaustive exploration, where roots (input
    vectors) partition the state space. *)

val find_first :
  ?metrics:Metrics.t ref ->
  jobs:int ->
  ?deadline:float ->
  ?start:int ->
  max_index:int ->
  f:(int -> 'a option) ->
  unit ->
  ('a, int) result
(** Strided goal search over the index space [start..max_index]
    ([start] defaults to 1; checkpoint resume uses it to skip indices
    a previous process already cleared — the (winner, tried) result
    over a window is identical to the same window of a full scan):
    worker [w] of [jobs] owns the stride [start+w, start+w+jobs, …]
    and scans it as one long-lived task — zero shared mutable state beyond a CAS-min
    cell holding the smallest goal index found, so independent
    evaluations (hunt runs) never synchronize.  A worker abandons its
    stride only once its next index exceeds the current minimum, so
    every index below the final winner was evaluated and the returned
    witness is the one at the globally smallest goal index — identical
    for every [jobs] value.  [Error tried] means no goal — a truncated
    search (absence is not proven), and the metrics outcome says so;
    [tried] is the number of indices evaluated ([= max_index] exactly
    when the space was swept, fewer when [deadline] — checked before
    each evaluation — fired first, in which case [deadline_hits] is
    set in the metrics).  When a goal is found, the expanded count
    includes speculative evaluations past the winner and therefore
    varies with [jobs]; all other fields and the result itself are
    jobs-invariant. *)

module Scan : sig
  val first_error :
    ?metrics:Metrics.t ref ->
    len:int ->
    check:(int -> (unit, 'e) result) ->
    unit ->
    (unit, 'e) result
  (** The kernel specialised to a chain: visit positions
      [0 .. len - 1] in order until [check] reports an error (the
      goal) or the chain is exhausted.  A chain revisits nothing, so
      the visited table is skipped, but the same {!Metrics} are
      reported — this is what the trace-level checkers are built
      on. *)
end
