(** Root-granular checkpoint/resume for long sweeps.

    Every long sweep here is a fold over independent roots (input
    vectors, hunt index chunks) merged in root order, so the state
    that makes a killed run resumable is the map from completed root
    index to that root's finished payload.  A checkpoint file is one
    plain-text header line — [patterns-checkpoint/1] followed by a
    client header string encoding everything the payloads depend on
    (protocol, n, budgets, seeds, …) — and a [Marshal] blob of the
    sorted (index, payload) entries.  Every {!record} atomically
    rewrites the file (temporary + rename), so a kill at any moment
    leaves the previous complete checkpoint, never a torn one.

    Recording policy (enforced by the clients, documented here): a
    root is recorded only when its own metrics carry
    [deadline_hits = 0] — deadline truncation is wall-clock-dependent,
    so resuming over such a payload would bake a nondeterministic
    result into a deterministic sweep.  Budget and live-limit
    truncations are deterministic and recordable. *)

val schema : string
(** ["patterns-checkpoint/1"]. *)

type spec = {
  file : string;
  resume : bool;
      (** [true]: load existing entries from [file] (a missing file is
          a fresh start, so wrappers can pass [--resume]
          unconditionally); [false]: start fresh, overwriting [file]
          on the first record. *)
  kill_after : int option;
      (** Test hook: after this many fresh records, print a notice and
          [exit 99], leaving the checkpoint for a resume. *)
}

type 'a t

val create : spec -> header:string -> ('a t, string) result
(** [Error] when resuming against a file that is not a checkpoint or
    whose header line differs from [header] — incompatible payloads
    are refused, not mixed.  The [Marshal] payload is only ever read
    from files this module wrote (header checked first). *)

val find : 'a t -> int -> 'a option
(** The recorded payload of root [i], if a previous process (or this
    one) completed it. *)

val record : 'a t -> int -> 'a -> unit
(** Record root [i]'s payload and atomically rewrite the file.  A
    second record of the same index is ignored.  Thread-safe. *)

val completed : 'a t -> int
(** Number of recorded roots. *)
