(* Root-granular checkpoint files.

   Every long sweep in this repository is a fold over independent
   roots (input vectors, hunt chunks) merged in root order, so the
   minimal state that makes a killed run resumable is the map from
   completed root index to that root's finished payload — pattern
   sets, reports, cumulative hunt metrics.  The file is one plain-text
   header line

     patterns-checkpoint/1 <client header>

   followed by a [Marshal] blob of the sorted (index, payload) list.
   The client header encodes everything the payloads depend on
   (protocol, n, budgets, seeds, …); a resume against a file whose
   header differs is refused rather than silently mixing
   incompatible payloads.  Rewrites go through a temporary file and
   [Sys.rename], so a kill mid-write leaves the previous complete
   checkpoint, never a torn one.

   [Marshal] blobs are only ever read back from files this module
   wrote (the header line is checked first), the usual trust boundary
   for OCaml snapshots. *)

let schema = "patterns-checkpoint/1"

type spec = { file : string; resume : bool; kill_after : int option }

type 'a t = {
  spec : spec;
  header : string;
  lock : Mutex.t;
  mutable entries : (int * 'a) list; (* sorted by index, ascending *)
  mutable fresh : int; (* records made by this process (kill_after hook) *)
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let header_line header = Printf.sprintf "%s %s" schema header

let load_entries ~file ~header =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      match input_line ic with
      | exception End_of_file -> Error (Printf.sprintf "%s: empty checkpoint file" file)
      | line ->
        if not (String.length line >= String.length schema
                && String.sub line 0 (String.length schema) = schema) then
          Error (Printf.sprintf "%s: not a %s file" file schema)
        else if line <> header_line header then
          Error
            (Printf.sprintf "%s: checkpoint header mismatch\n  file:     %s\n  expected: %s"
               file line (header_line header))
        else
          match (Marshal.from_channel ic : (int * 'a) list) with
          | entries -> Ok entries
          | exception (Failure _ | End_of_file) ->
            Error (Printf.sprintf "%s: truncated or corrupt checkpoint payload" file))

let create spec ~header =
  let fresh_t entries =
    { spec; header; lock = Mutex.create (); entries; fresh = 0 }
  in
  if not spec.resume then Ok (fresh_t [])
  else if not (Sys.file_exists spec.file) then
    (* --resume before any checkpoint was written: a fresh start, so a
       wrapper script can pass --resume unconditionally *)
    Ok (fresh_t [])
  else Result.map fresh_t (load_entries ~file:spec.file ~header)

let find t i = with_lock t (fun () -> List.assoc_opt i t.entries)
let completed t = with_lock t (fun () -> List.length t.entries)

let write_locked t =
  let tmp = t.spec.file ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (header_line t.header);
      output_char oc '\n';
      Marshal.to_channel oc t.entries []);
  Sys.rename tmp t.spec.file

let record t i v =
  with_lock t (fun () ->
      if not (List.mem_assoc i t.entries) then begin
        t.entries <-
          List.merge (fun (a, _) (b, _) -> compare a b) [ (i, v) ] t.entries;
        write_locked t;
        t.fresh <- t.fresh + 1;
        match t.spec.kill_after with
        | Some k when t.fresh >= k ->
          (* test hook: die abruptly after k fresh records, leaving the
             checkpoint on disk for a --resume to pick up *)
          Printf.eprintf "checkpoint: killed after %d fresh records (test hook)\n%!" k;
          exit 99
        | _ -> ()
      end)
