open Patterns_sim
open Patterns_stdx

let pattern_to_dot ?(name = "pattern") p =
  let nodes = List.map (fun t -> Dot.node ~shape:"box" (Triple.to_string t)) (Pattern.messages p) in
  let edges =
    List.map (fun (a, b) -> Dot.edge (Triple.to_string a) (Triple.to_string b)) (Pattern.covers p)
  in
  Dot.digraph ~rankdir:"LR" ~name nodes edges

let pattern_ascii p =
  Format.asprintf "%a@.width=%d height=%d@." Pattern.pp p (Pattern.width p) (Pattern.height p)

let msc ~pp_msg trace = Format.asprintf "%a@." (Trace.pp ~pp_msg) trace

let lanes ?(width = 16) ~pp_msg ~n trace =
  let buf = Buffer.create 1024 in
  let cell proc text =
    let text = if String.length text > width - 1 then String.sub text 0 (width - 1) else text in
    for _ = 1 to proc * width do Buffer.add_char buf ' ' done;
    Buffer.add_string buf text;
    Buffer.add_char buf '\n'
  in
  (* header *)
  for p = 0 to n - 1 do
    let label = Proc_id.to_string p in
    Buffer.add_string buf label;
    for _ = 1 to width - String.length label do Buffer.add_char buf ' ' done
  done;
  Buffer.add_char buf '\n';
  for _ = 1 to n * width do Buffer.add_char buf '-' done;
  Buffer.add_char buf '\n';
  List.iter
    (fun ev ->
      match ev with
      | Trace.Sent { triple; payload; _ } ->
        cell triple.Triple.sender
          (Format.asprintf "%a=>%a" pp_msg payload Proc_id.pp triple.Triple.receiver)
      | Trace.Null_step { proc; _ } -> cell proc "."
      | Trace.Delivered_msg { triple; payload; _ } ->
        cell triple.Triple.receiver
          (Format.asprintf "<=%a:%a" Proc_id.pp triple.Triple.sender pp_msg payload)
      | Trace.Delivered_note { at; about; _ } ->
        cell at (Format.asprintf "<=failed(%a)" Proc_id.pp about)
      | Trace.Dropped_msg { triple; _ } ->
        cell triple.Triple.receiver
          (Format.asprintf "xx%a#%d" Proc_id.pp triple.Triple.sender triple.Triple.index)
      | Trace.Failed_proc { proc; _ } -> cell proc "CRASH"
      | Trace.Decided { proc; decision; _ } ->
        cell proc (Format.asprintf "#%a#" Decision.pp decision)
      | Trace.Became_amnesic { proc; _ } -> cell proc "#forgets#"
      | Trace.Halted { proc; _ } -> cell proc "#halts#")
    trace;
  Buffer.contents buf

let trace_to_dot ?name trace = pattern_to_dot ?name (Pattern.of_trace trace)
