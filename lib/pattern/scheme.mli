(** Scheme enumeration.

    The scheme of a protocol is the set of communication patterns of
    all its failure-free executions.  For the finite, quiescing
    protocols studied here the scheme is computed exactly, by
    depth-first search over every applicable event from every initial
    configuration, memoizing on full configurations (which carry the
    pattern-so-far, making the memoization sound for pattern
    collection). *)

open Patterns_sim

type stats = {
  configs_visited : int;
  terminal_configs : int;  (** distinct quiescent configurations *)
  truncated : bool;  (** hit [max_configs] before exhausting the space *)
}

val pp_stats : Format.formatter -> stats -> unit

type realization =
  | Realized of Action.t list
      (** the event sequence, replayable with [E.apply] *)
  | Unrealizable
      (** the search space was exhausted: no execution from these
          inputs has the target pattern *)
  | Truncated
      (** [max_configs] was hit first — the pattern may or may not be
          realizable *)

module Make (P : Protocol.S) : sig
  module E : module type of Engine.Make (P)

  val patterns_for_inputs :
    ?metrics:Patterns_search.Metrics.t ref ->
    ?jobs:int ->
    ?par_threshold:int ->
    ?par_mode:Patterns_search.Search.par_mode ->
    ?max_configs:int ->
    ?deadline:float ->
    ?max_live:int ->
    ?spill:Patterns_search.Search.spill ->
    ?base:Patterns_db.Db.t ->
    n:int ->
    inputs:bool list ->
    unit ->
    Pattern.Set.t * stats
  (** All patterns of failure-free executions from the given initial
      bits, enumerated across [jobs] domains by the parallel driver
      selected by [par_mode] (default
      {!Patterns_search.Search.Async}, the work-stealing driver;
      [Layers] is the layer-synchronous barrier driver, for which
      frontier layers must reach [par_threshold] states — default
      {!Patterns_search.Search.Make.default_par_threshold} — to be
      dispatched).  On a search that runs to exhaustion both modes
      produce the identical pattern set, stats and deterministic
      counters for every [jobs]; a truncated async search keeps its
      counts but visits a schedule-dependent subset, so
      truncation-sensitive comparisons should pass
      [~par_mode:Layers].  Default [max_configs] is 1_000_000.
      [deadline] (wall-clock seconds) and [max_live] (live states)
      degrade the search gracefully: exceeding either truncates
      instead of hanging or exhausting memory.  Every [?metrics] sink
      in this module accumulates the kernel's counters
      ({!Patterns_search.Search.merge_into}).

      [base] memoizes fully enumerated vectors as ["scheme_vec"] facts
      keyed by (protocol, n, vector): a later call with a budget at
      least as large reuses the stored pattern set and stats
      wholesale — bit-identical to recomputing, with the skipped
      derivation count reported in the metrics' [delta_reused_edges] —
      and a fresh enumeration that completes untruncated stores a new
      fact.  Ignored while [deadline] or [max_live] is set. *)

  val scheme :
    ?metrics:Patterns_search.Metrics.t ref ->
    ?max_configs:int ->
    ?deadline:float ->
    ?max_live:int ->
    ?jobs:int ->
    ?par_threshold:int ->
    ?par_mode:Patterns_search.Search.par_mode ->
    ?spill:Patterns_search.Search.spill ->
    ?checkpoint:Patterns_search.Checkpoint.spec ->
    n:int ->
    unit ->
    Pattern.Set.t * stats
  (** Union over all [2^n] input vectors: the scheme proper.  Stats
      are summed in vector order.  Parallelism is intra-root: each
      vector's search is fanned out across [jobs] domains by the
      driver selected by [par_mode] (default async); an exhaustive
      sweep is bit-identical to the sequential run for every [jobs],
      [par_threshold] and [par_mode].  [deadline] bounds the whole
      sweep (each vector's search receives the time remaining);
      [max_live] bounds each vector's search separately.  [spill]
      swaps each root's visited store for the disk-backed spill store
      (bit-identical results; see {!Patterns_search.Search.spill}).
      [checkpoint] records each completed input vector's payload at
      vector-index granularity; a resumed sweep replays recorded
      vectors from the file and recomputes only the rest, yielding
      the identical scheme, stats and metrics as an uninterrupted run
      (deadline-truncated vectors are never recorded — resuming them
      would bake a wall-clock-dependent result into a deterministic
      sweep).  Raises [Failure] when resuming against a file whose
      header (protocol, n, budgets, driver family, spill budget)
      differs. *)

  val realize :
    ?metrics:Patterns_search.Metrics.t ref ->
    ?jobs:int ->
    ?par_threshold:int ->
    ?par_mode:Patterns_search.Search.par_mode ->
    ?max_configs:int ->
    ?deadline:float ->
    ?max_live:int ->
    ?spill:Patterns_search.Search.spill ->
    ?checkpoint:Patterns_search.Checkpoint.spec ->
    n:int ->
    inputs:bool list ->
    target:Pattern.t ->
    unit ->
    realization
  (** Synthesize a failure-free execution whose communication pattern
      is exactly [target]: a search over applicable events pruned to
      pattern prefixes of the target.  [par_mode] defaults to
      [Layers], unlike the sweeps above: the layered driver's
      deterministic frontier order is what makes the witness a
      shortest realization, identical for every [jobs], and
      realization is prune-heavy, which the async driver pays for on
      every duplicate generation.  Under [~par_mode:Async] the answer
      ({!Realized} / {!Unrealizable}) is unchanged but the witness is
      schedule-dependent and need not be shortest.  {!Truncated} is
      distinct from {!Unrealizable}: an answer cut short by
      [max_configs] is not evidence of unrealizability.  [spill] and
      [checkpoint] behave as in {!scheme} (a realization is a single
      root, recorded at index 0; the target and inputs key the
      checkpoint header). *)
end

val subscheme : Pattern.Set.t -> Pattern.Set.t -> bool
(** Set containment — the ingredient of the paper's reducibility:
    [P1 <= P2] iff every scheme of a protocol for [P2] is the scheme
    of some protocol for [P1]. *)

val equal_schemes : Pattern.Set.t -> Pattern.Set.t -> bool

val pp_scheme : Format.formatter -> Pattern.Set.t -> unit
(** Lists the patterns, numbered. *)
