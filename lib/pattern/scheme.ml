open Patterns_sim
open Patterns_search

type stats = {
  configs_visited : int;
  terminal_configs : int;
  truncated : bool;
}

let pp_stats ppf s =
  Format.fprintf ppf "visited=%d terminal=%d%s" s.configs_visited s.terminal_configs
    (if s.truncated then " (TRUNCATED)" else "")

type realization =
  | Realized of Action.t list
  | Unrealizable
  | Truncated

module Make (P : Protocol.S) = struct
  module E = Engine.Make (P)

  (* One root per input vector; all bookkeeping (frontier, visited
     set, budget, counters) lives in the kernel — this layer only
     says how a configuration expands and what to collect at
     terminals. *)

  let patterns_for_inputs_m ?(max_configs = 1_000_000) ~n ~inputs () =
    let patterns = ref Pattern.Set.empty in
    let terminal = ref 0 in
    (* terminal-pattern cache: distinct terminal configurations mostly
       repeat a handful of patterns, and extraction ([Pattern.make])
       is far more expensive than a fingerprint probe.  Keyed by
       [E.pattern_fp]; a hit is only trusted when [E.same_pattern_rep]
       confirms it on the interned representation, so a fingerprint
       collision merely costs one redundant extraction. *)
    let seen_pats : (int, E.config list) Hashtbl.t = Hashtbl.create 64 in
    let module Pr = struct
      type state = E.config

      let compare = E.compare_config
      let fingerprint = E.fingerprint

      let expand c =
        match E.applicable c with
        | [] ->
          incr terminal;
          let key = Patterns_stdx.Fingerprint.to_int (E.pattern_fp c) in
          let bucket = Option.value (Hashtbl.find_opt seen_pats key) ~default:[] in
          if not (List.exists (E.same_pattern_rep c) bucket) then begin
            Hashtbl.replace seen_pats key (c :: bucket);
            patterns :=
              Pattern.Set.add (Pattern.make (E.triples_of c) (E.pattern_edges c)) !patterns
          end;
          []
        | actions ->
          (* reversed: the historical stack discipline explores the
             last applicable action first, and truncated counts are
             pinned to that order by the jobs-invariance tests *)
          List.rev_map (fun a -> fst (E.apply_exn ~step:0 c a)) actions
    end in
    let module K = Search.Make (Pr) in
    let root = E.init ~n ~inputs in
    let outcome, m = K.run ~strategy:K.Dfs ~budget:max_configs ~root () in
    let m = Metrics.with_intern_bindings (E.intern_bindings root) m in
    ( ( !patterns,
        {
          configs_visited = m.Metrics.states_expanded;
          terminal_configs = !terminal;
          truncated = Search.truncated outcome;
        } ),
      m )

  let patterns_for_inputs ?metrics ?max_configs ~n ~inputs () =
    let result, m = patterns_for_inputs_m ?max_configs ~n ~inputs () in
    Search.merge_into metrics m;
    result

  let realize ?metrics ?(max_configs = 1_000_000) ~n ~inputs ~target () =
    (* the accumulated pattern must be a prefix of the target: its
       triples a subset, and the orders in agreement *)
    let prefix_ok c =
      let here = Pattern.make (E.triples_of c) (E.pattern_edges c) in
      Pattern.is_prefix_consistent here target
    in
    let module Pr = struct
      (* a configuration plus the reversed event path that reached it;
         dedup ignores the path, exactly like the old recursive DFS *)
      type state = E.config * Action.t list

      let compare (a, _) (b, _) = E.compare_config a b
      let fingerprint (c, _) = E.fingerprint c

      (* [applicable] is needed by both the goal test and the
         expansion of the same visit; cache the last answer, keyed by
         physical identity of the state the kernel passes to both *)
      let cache = ref None

      let applicable ((c, _) as s) =
        match !cache with
        | Some (s0, acts) when s0 == s -> acts
        | _ ->
          let acts = E.applicable c in
          cache := Some (s, acts);
          acts

      let expand ((c, path) as s) =
        List.map (fun a -> (fst (E.apply_exn ~step:0 c a), a :: path)) (applicable s)
    end in
    let module K = Search.Make (Pr) in
    let is_goal ((c, _) as s) =
      Pr.applicable s = []
      && Pattern.equal (Pattern.make (E.triples_of c) (E.pattern_edges c)) target
    in
    let prune (c, _) = not (prefix_ok c) in
    let root_config = E.init ~n ~inputs in
    let outcome, m =
      K.run ~strategy:K.Dfs ~budget:max_configs ~is_goal ~prune ~root:(root_config, []) ()
    in
    let m = Metrics.with_intern_bindings (E.intern_bindings root_config) m in
    Search.merge_into metrics m;
    match outcome with
    | Search.Goal_found (_, path) -> Realized (List.rev path)
    | Search.Exhausted -> Unrealizable
    | Search.Truncated _ -> Truncated

  let merge_stats a b =
    {
      configs_visited = a.configs_visited + b.configs_visited;
      terminal_configs = a.terminal_configs + b.terminal_configs;
      truncated = a.truncated || b.truncated;
    }

  (* Input vectors are part of every configuration, so no configuration
     is reachable from two different vectors: sharding the outer loop
     partitions the visited sets exactly, and the in-order merge below
     is bit-identical to the sequential fold. *)
  let scheme ?metrics ?max_configs ?(jobs = 1) ~n () =
    let result, m =
      Search.shard ~jobs
        ~f:(fun inputs -> patterns_for_inputs_m ?max_configs ~n ~inputs ())
        ~merge:(fun (acc, st) (pats, st') -> (Pattern.Set.union acc pats, merge_stats st st'))
        ~init:
          (Pattern.Set.empty, { configs_visited = 0; terminal_configs = 0; truncated = false })
        (Patterns_stdx.Listx.all_bool_vectors n)
    in
    Search.merge_into metrics m;
    result
end

let subscheme a b = Pattern.Set.subset a b

let equal_schemes a b = Pattern.Set.equal a b

let pp_scheme ppf s =
  let pats = Pattern.Set.elements s in
  Format.fprintf ppf "@[<v>%d pattern(s):@," (List.length pats);
  List.iteri (fun i p -> Format.fprintf ppf "-- pattern %d --@,%a@," (i + 1) Pattern.pp p) pats;
  Format.fprintf ppf "@]"
