open Patterns_sim
open Patterns_search

type stats = {
  configs_visited : int;
  terminal_configs : int;
  truncated : bool;
}

let pp_stats ppf s =
  Format.fprintf ppf "visited=%d terminal=%d%s" s.configs_visited s.terminal_configs
    (if s.truncated then " (TRUNCATED)" else "")

type realization =
  | Realized of Action.t list
  | Unrealizable
  | Truncated

module Make (P : Protocol.S) = struct
  module E = Engine.Make (P)

  (* One root per input vector; all bookkeeping (frontier, visited
     set, budget, counters) lives in the kernel — this layer only
     says how a configuration expands and what to collect at
     terminals. *)

  module Pr = struct
    type state = E.config

    let compare = E.compare_config
    let fingerprint = E.fingerprint

    (* expansion without observation, shared by every driver below:
       reversed, because the historical stack discipline explored the
       last applicable action first, and truncated counts are pinned
       to that order by the jobs-invariance tests *)
    let successors c actions = List.rev_map (fun a -> fst (E.apply_exn ~step:0 c a)) actions
    let expand c = successors c (E.applicable c)
  end

  module K = Search.Make (Pr)

  (* Per-task observation accumulator for the layer-synchronous
     driver.  [seen_pats] is the terminal-pattern cache: distinct
     terminal configurations mostly repeat a handful of patterns, and
     extraction ([Pattern.make]) is far more expensive than a
     fingerprint probe.  Keyed by [E.pattern_fp]; a hit is only
     trusted when [E.same_pattern_rep] confirms it on the interned
     representation, so a fingerprint collision merely costs one
     redundant extraction.  The cache is task-local (dropped at
     merge), so it never leaks observations across accumulators —
     [Pattern.Set.union] dedups structurally either way. *)
  type obs = {
    mutable pats : Pattern.Set.t;
    mutable terminal : int;
    mutable edges : int;
        (* successor derivations performed — exact and
           driver-independent, recorded into the base fact so a reuse
           can report how much work it skipped *)
    seen_pats : (int, E.config list) Hashtbl.t;
  }

  let obs_expand =
    {
      K.empty =
        (fun () ->
          {
            pats = Pattern.Set.empty;
            terminal = 0;
            edges = 0;
            seen_pats = Hashtbl.create 16;
          });
      merge =
        (fun a b ->
          a.pats <- Pattern.Set.union a.pats b.pats;
          a.terminal <- a.terminal + b.terminal;
          a.edges <- a.edges + b.edges;
          a);
      expand =
        (fun o c ->
          match E.applicable c with
          | [] ->
            o.terminal <- o.terminal + 1;
            let key = Patterns_stdx.Fingerprint.to_int (E.pattern_fp c) in
            let bucket = Option.value (Hashtbl.find_opt o.seen_pats key) ~default:[] in
            if not (List.exists (E.same_pattern_rep c) bucket) then begin
              Hashtbl.replace o.seen_pats key (c :: bucket);
              o.pats <-
                Pattern.Set.add (Pattern.make (E.triples_of c) (E.pattern_edges c)) o.pats
            end;
            []
          | actions ->
            let succs = Pr.successors c actions in
            o.edges <- o.edges + List.length succs;
            succs);
    }

  (* ----- per-vector base facts, kind ["scheme_vec"] -----

     The failure-free pattern enumeration has no widening dimension —
     no failures are injected — so the base database is a pure
     memo: a fact stores the pattern set, the stats and the exact
     derivation count of one fully enumerated vector, and a later run
     with the same (protocol, n, vector) and a budget at least as
     large reuses it wholesale.  Deadline- or live-limited runs
     neither store nor consume facts. *)

  let scheme_vec_key ~n ~inputs =
    Printf.sprintf "%s|%d|vec=%s" P.name n
      (String.concat "" (List.map (fun b -> if b then "1" else "0") inputs))

  let scheme_vec_fact ~configs ~terminal ~edges pats =
    let module Json = Patterns_stdx.Json in
    Json.Obj
      [
        ("configs", Json.Int configs);
        ("terminal", Json.Int terminal);
        ("edges_gen", Json.Int edges);
        ( "pats",
          Json.String
            (Patterns_stdx.Hex.encode
               (Marshal.to_string (Array.of_list (Pattern.Set.elements pats)) [])) );
      ]

  let scheme_vec_of_fact j =
    let module Json = Patterns_stdx.Json in
    let exception Bad in
    let get k = match Json.member k j with Some v -> v | None -> raise Bad in
    let int k = match Json.to_int (get k) with Ok i -> i | Error _ -> raise Bad in
    let str k = match Json.to_str (get k) with Ok s -> s | Error _ -> raise Bad in
    try
      let pats : Pattern.t array =
        Marshal.from_string (Patterns_stdx.Hex.decode (str "pats")) 0
      in
      Some
        ( int "configs",
          int "terminal",
          int "edges_gen",
          Array.fold_left (fun acc p -> Pattern.Set.add p acc) Pattern.Set.empty pats )
    with Bad | Invalid_argument _ | Failure _ -> None

  (* [obs] merging is union/sum — commutative as well as associative —
     so the async driver's worker-order fold collects the same pattern
     set and terminal count as the layered driver's frontier-order
     fold. *)
  let patterns_for_inputs_m ?pool ?par_threshold ?(par_mode = Search.Async)
      ?(max_configs = 1_000_000) ?deadline ?max_live ?spill ?base ~n ~inputs () =
    let base =
      match base with
      | Some db when deadline = None && max_live = None -> Some db
      | _ -> None
    in
    let cached =
      Option.bind base (fun db ->
          Option.bind
            (Patterns_db.Db.get_fact db ~kind:"scheme_vec" ~key:(scheme_vec_key ~n ~inputs))
            scheme_vec_of_fact)
    in
    match cached with
    | Some (configs, terminal, edges, pats) when configs <= max_configs ->
      ( ( pats,
          { configs_visited = configs; terminal_configs = terminal; truncated = false } ),
        Metrics.with_incremental ~delta_reused_edges:edges Metrics.zero )
    | _ ->
      let root = E.init ~n ~inputs in
      let outcome, o, m =
        match par_mode with
        | Search.Layers ->
          K.run_par ?pool ?par_threshold ~budget:max_configs ?deadline ?max_live ?spill
            ~expand:obs_expand ~root ()
        | Search.Async ->
          K.run_par_async ?pool ~budget:max_configs ?deadline ?max_live ?spill
            ~expand:obs_expand ~root ()
      in
      let m = Metrics.with_intern_bindings (E.intern_bindings root) m in
      let truncated = Search.truncated outcome in
      (match base with
      | Some db when (not truncated) && m.Metrics.deadline_hits = 0 ->
        Patterns_db.Db.put_fact db ~kind:"scheme_vec" ~key:(scheme_vec_key ~n ~inputs)
          (scheme_vec_fact ~configs:m.Metrics.states_expanded ~terminal:o.terminal
             ~edges:o.edges o.pats)
      | _ -> ());
      ( ( o.pats,
          {
            configs_visited = m.Metrics.states_expanded;
            terminal_configs = o.terminal;
            truncated;
          } ),
        m )

  let patterns_for_inputs ?metrics ?(jobs = 1) ?par_threshold ?par_mode ?max_configs
      ?deadline ?max_live ?spill ?base ~n ~inputs () =
    let result, m =
      Patterns_stdx.Domain_pool.with_pool ~jobs (fun pool ->
          patterns_for_inputs_m ~pool ?par_threshold ?par_mode ?max_configs ?deadline
            ?max_live ?spill ?base ~n ~inputs ())
    in
    Search.merge_into metrics m;
    result

  (* The checkpoint header encodes everything a per-root payload
     depends on: protocol, n, the per-root budget knobs, the driver
     family, the spill budget (which shifts the /7 counters inside
     recorded metrics) and any extra client key (realization targets).
     [jobs] and [deadline] are deliberately absent — jobs never
     changes a payload, and deadline-truncated roots are never
     recorded. *)
  let checkpoint_header ~kind ?max_configs ?max_live ?par_mode ?spill ?(extra = "") ~n ()
      =
    let opt = function None -> "-" | Some i -> string_of_int i in
    Printf.sprintf "%s/1|%s|n=%d|mc=%s|ml=%s|mode=%s|spill=%s%s" kind P.name n
      (opt max_configs) (opt max_live)
      (Search.par_mode_string (Option.value par_mode ~default:Search.Async))
      (opt (Option.map (fun s -> s.Search.mem_budget) spill))
      (if extra = "" then "" else "|" ^ extra)

  let open_checkpoint spec ~header =
    Option.map
      (fun spec ->
        match Checkpoint.create spec ~header with
        | Ok t -> t
        | Error e -> failwith e)
      spec

  (* [par_mode] defaults to [Layers], not [Async]: the documented
     shortest-witness guarantee needs the layered driver's
     deterministic frontier order, and realization is prune-heavy,
     which the async driver pays for on every duplicate generation.
     [Async] is still accepted for callers that only need *a*
     witness. *)
  let realize ?metrics ?(jobs = 1) ?par_threshold ?(par_mode = Search.Layers)
      ?(max_configs = 1_000_000) ?deadline ?max_live ?spill ?checkpoint ~n ~inputs
      ~target () =
    (* the accumulated pattern must be a prefix of the target: its
       triples a subset, and the orders in agreement *)
    let prefix_ok c =
      let here = Pattern.make (E.triples_of c) (E.pattern_edges c) in
      Pattern.is_prefix_consistent here target
    in
    let module R = struct
      (* A configuration plus the reversed event path that reached it;
         dedup ignores the path, exactly like the old recursive DFS.
         [acts] memoizes [E.applicable]: the goal test needs it on the
         owning domain (during the sequential layer scan) before the
         expansion task does, so by the time a worker reads it the
         lazy is already forced — no concurrent forcing. *)
      type state = { c : E.config; path : Action.t list; acts : Action.t list Lazy.t }

      let make c path = { c; path; acts = lazy (E.applicable c) }
      let compare a b = E.compare_config a.c b.c
      let fingerprint s = E.fingerprint s.c
      let expand _ = assert false
    end in
    let module K = Search.Make (R) in
    let expand =
      {
        K.empty = Fun.id;
        merge = (fun () () -> ());
        expand =
          (fun () s ->
            List.map
              (fun a -> R.make (fst (E.apply_exn ~step:0 s.R.c a)) (a :: s.R.path))
              (Lazy.force s.R.acts));
      }
    in
    let is_goal s =
      Lazy.force s.R.acts = []
      && Pattern.equal (Pattern.make (E.triples_of s.R.c) (E.pattern_edges s.R.c)) target
    in
    let prune s = not (prefix_ok s.R.c) in
    (* the target (and input vector) are part of what the recorded
       answer depends on; a structural digest keys them into the
       header *)
    let header =
      checkpoint_header ~kind:"realize" ~max_configs:max_configs ?max_live ~par_mode
        ?spill
        ~extra:
          (Printf.sprintf "key=%s"
             (Digest.to_hex (Digest.string (Marshal.to_string (inputs, target) []))))
        ~n ()
    in
    let ckpt = open_checkpoint checkpoint ~header in
    match Option.bind ckpt (fun t -> Checkpoint.find t 0) with
    | Some (r, m) ->
      Search.merge_into metrics m;
      r
    | None ->
      let root_config = E.init ~n ~inputs in
      let outcome, (), m =
        Patterns_stdx.Domain_pool.with_pool ~jobs (fun pool ->
            match par_mode with
            | Search.Layers ->
              K.run_par ~pool ?par_threshold ~budget:max_configs ?deadline ?max_live
                ?spill ~is_goal ~prune ~expand ~root:(R.make root_config []) ()
            | Search.Async ->
              K.run_par_async ~pool ~budget:max_configs ?deadline ?max_live ?spill
                ~is_goal ~prune ~expand ~root:(R.make root_config []) ())
      in
      let m = Metrics.with_intern_bindings (E.intern_bindings root_config) m in
      Search.merge_into metrics m;
      let r =
        match outcome with
        | Search.Goal_found s -> Realized (List.rev s.R.path)
        | Search.Exhausted -> Unrealizable
        | Search.Truncated _ -> Truncated
      in
      if m.Metrics.deadline_hits = 0 then
        Option.iter (fun t -> Checkpoint.record t 0 (r, m)) ckpt;
      r

  let merge_stats a b =
    {
      configs_visited = a.configs_visited + b.configs_visited;
      terminal_configs = a.terminal_configs + b.terminal_configs;
      truncated = a.truncated || b.truncated;
    }

  (* Input vectors are part of every configuration, so no configuration
     is reachable from two different vectors: the roots partition the
     state space.  Since PR 4 the parallelism is *intra*-root — the
     layer-synchronous driver fans each root's frontier layers out
     across the pool — so the outer loop over vectors stays on the
     pool-owning domain (nested pool maps are not supported) and
     merges payloads and metrics in vector order, bit-identical for
     every [jobs]. *)
  let scheme ?metrics ?max_configs ?deadline ?max_live ?(jobs = 1) ?par_threshold
      ?par_mode ?spill ?checkpoint ~n () =
    (* [deadline] bounds the whole sweep, so each root receives the
       time remaining when its turn comes; a root starting past the
       deadline gets a zero allowance and truncates immediately *)
    let t_end = Option.map (fun d -> Search.now () +. d) deadline in
    let remaining () = Option.map (fun te -> Float.max 0. (te -. Search.now ())) t_end in
    let header = checkpoint_header ~kind:"scheme" ?max_configs ?max_live ?par_mode ?spill ~n () in
    let ckpt = open_checkpoint checkpoint ~header in
    let result, m =
      Patterns_stdx.Domain_pool.with_pool ~jobs (fun pool ->
          List.fold_left
            (fun ((acc, st), ms) (i, inputs) ->
              let (pats, st'), m =
                match Option.bind ckpt (fun t -> Checkpoint.find t i) with
                | Some payload -> payload
                | None ->
                  let ((_, _), m) as fresh =
                    patterns_for_inputs_m ~pool ?par_threshold ?par_mode ?max_configs
                      ?deadline:(remaining ()) ?max_live ?spill ~n ~inputs ()
                  in
                  (* deadline truncation is wall-clock-dependent;
                     recording it would bake nondeterminism into a
                     resumed sweep, so such roots re-run instead *)
                  if m.Metrics.deadline_hits = 0 then
                    Option.iter (fun t -> Checkpoint.record t i fresh) ckpt;
                  fresh
              in
              ( (Pattern.Set.union acc pats, merge_stats st st'),
                Metrics.merge ms (Metrics.with_root_index i m) ))
            ( ( Pattern.Set.empty,
                { configs_visited = 0; terminal_configs = 0; truncated = false } ),
              Metrics.zero )
            (List.mapi
               (fun i v -> (i, v))
               (Patterns_stdx.Listx.all_bool_vectors n)))
    in
    Search.merge_into metrics m;
    result
end

let subscheme a b = Pattern.Set.subset a b

let equal_schemes a b = Pattern.Set.equal a b

let pp_scheme ppf s =
  let pats = Pattern.Set.elements s in
  Format.fprintf ppf "@[<v>%d pattern(s):@," (List.length pats);
  List.iteri (fun i p -> Format.fprintf ppf "-- pattern %d --@,%a@," (i + 1) Pattern.pp p) pats;
  Format.fprintf ppf "@]"
