open Patterns_sim
open Patterns_stdx

type stats = {
  configs_visited : int;
  terminal_configs : int;
  truncated : bool;
}

let pp_stats ppf s =
  Format.fprintf ppf "visited=%d terminal=%d%s" s.configs_visited s.terminal_configs
    (if s.truncated then " (TRUNCATED)" else "")

type realization =
  | Realized of Action.t list
  | Unrealizable
  | Truncated

module Make (P : Protocol.S) = struct
  module E = Engine.Make (P)

  module Config_tbl = Hashtbl.Make (struct
    type t = E.config

    let equal a b = E.compare_config a b = 0
    let hash = E.hash_config
  end)

  let patterns_for_inputs ?(max_configs = 1_000_000) ~n ~inputs () =
    let visited = Config_tbl.create 1024 in
    let visited_count = ref 0 in
    let patterns = ref Pattern.Set.empty in
    let terminal = ref 0 in
    let truncated = ref false in
    let stack = ref [ E.init ~n ~inputs ] in
    let rec loop () =
      match !stack with
      | [] -> ()
      | c :: rest ->
        stack := rest;
        if Config_tbl.mem visited c then loop ()
        else if !visited_count >= max_configs then truncated := true
        else begin
          Config_tbl.add visited c ();
          incr visited_count;
          (match E.applicable c with
          | [] ->
            incr terminal;
            patterns :=
              Pattern.Set.add (Pattern.make (E.triples_of c) (E.pattern_edges c)) !patterns
          | actions ->
            List.iter
              (fun a ->
                let c', _ = E.apply_exn ~step:0 c a in
                if not (Config_tbl.mem visited c') then stack := c' :: !stack)
              actions);
          loop ()
        end
    in
    loop ();
    ( !patterns,
      {
        configs_visited = !visited_count;
        terminal_configs = !terminal;
        truncated = !truncated;
      } )

  let realize ?(max_configs = 1_000_000) ~n ~inputs ~target () =
    let visited = Config_tbl.create 1024 in
    let visited_count = ref 0 in
    let truncated = ref false in
    (* the accumulated pattern must be a prefix of the target: its
       triples a subset, and the orders in agreement *)
    let prefix_ok c =
      let here = Pattern.make (E.triples_of c) (E.pattern_edges c) in
      Pattern.is_prefix_consistent here target
    in
    let exception Found of Action.t list in
    let rec dfs c path =
      if Config_tbl.mem visited c then ()
      else if !visited_count >= max_configs then truncated := true
      else begin
        Config_tbl.add visited c ();
        incr visited_count;
        match E.applicable c with
        | [] ->
          if Pattern.equal (Pattern.make (E.triples_of c) (E.pattern_edges c)) target then
            raise (Found (List.rev path))
        | actions ->
          List.iter
            (fun a ->
              let c', _ = E.apply_exn ~step:0 c a in
              if (not (Config_tbl.mem visited c')) && prefix_ok c' then dfs c' (a :: path))
            actions
      end
    in
    match dfs (E.init ~n ~inputs) [] with
    | () -> if !truncated then Truncated else Unrealizable
    | exception Found path -> Realized path

  let merge_stats a b =
    {
      configs_visited = a.configs_visited + b.configs_visited;
      terminal_configs = a.terminal_configs + b.terminal_configs;
      truncated = a.truncated || b.truncated;
    }

  (* Input vectors are part of every configuration, so no configuration
     is reachable from two different vectors: sharding the outer loop
     partitions the visited sets exactly, and the in-order merge below
     is bit-identical to the sequential fold. *)
  let scheme ?max_configs ?(jobs = 1) ~n () =
    Domain_pool.with_pool ~jobs (fun pool ->
        Domain_pool.fold pool
          ~f:(fun inputs -> patterns_for_inputs ?max_configs ~n ~inputs ())
          ~merge:(fun (acc, st) (pats, st') -> (Pattern.Set.union acc pats, merge_stats st st'))
          ~init:
            (Pattern.Set.empty, { configs_visited = 0; terminal_configs = 0; truncated = false })
          (Listx.all_bool_vectors n))
end

let subscheme a b = Pattern.Set.subset a b

let equal_schemes a b = Pattern.Set.equal a b

let pp_scheme ppf s =
  let pats = Pattern.Set.elements s in
  Format.fprintf ppf "@[<v>%d pattern(s):@," (List.length pats);
  List.iteri (fun i p -> Format.fprintf ppf "-- pattern %d --@,%a@," (i + 1) Pattern.pp p) pats;
  Format.fprintf ppf "@]"
