open Patterns_sim
open Patterns_stdx

type delay_model =
  | Uniform of { lo : float; hi : float }
  | Fixed of float
  | Per_link of (Proc_id.t -> Proc_id.t -> float)

type timing = {
  completion : float;
  per_proc : float array;
  msg_times : (Triple.t * float * float) list;
}

let draw_delay prng model (t : Triple.t) =
  match model with
  | Fixed d -> d
  | Uniform { lo; hi } -> lo +. (Prng.float prng *. (hi -. lo))
  | Per_link f -> f t.Triple.sender t.Triple.receiver

let propagate ?(step_cost = 1.0) ~seed ~model ~n trace =
  let prng = Prng.create ~seed in
  let proc_time = Array.make n 0.0 in
  let sent_at = Hashtbl.create 64 in
  let arrival = Hashtbl.create 64 in
  let msg_times = ref [] in
  let decisions = ref [] in
  let key (t : Triple.t) = (t.Triple.sender, t.Triple.receiver, t.Triple.index) in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Sent { triple; _ } ->
        let p = triple.Triple.sender in
        let t = proc_time.(p) +. step_cost in
        proc_time.(p) <- t;
        let delay = draw_delay prng model triple in
        Hashtbl.replace sent_at (key triple) t;
        Hashtbl.replace arrival (key triple) (t +. delay)
      | Trace.Null_step { proc; _ } -> proc_time.(proc) <- proc_time.(proc) +. step_cost
      | Trace.Delivered_msg { triple; _ } ->
        let p = triple.Triple.receiver in
        let arr = Option.value (Hashtbl.find_opt arrival (key triple)) ~default:0.0 in
        let t = Float.max proc_time.(p) arr +. step_cost in
        proc_time.(p) <- t;
        let sent = Option.value (Hashtbl.find_opt sent_at (key triple)) ~default:0.0 in
        msg_times := (triple, sent, t) :: !msg_times
      | Trace.Delivered_note { at; _ } -> proc_time.(at) <- proc_time.(at) +. step_cost
      (* an omitted message costs nobody any time: the receiver never
         takes a step for it, so only the bookkeeping is discarded *)
      | Trace.Dropped_msg { triple; _ } ->
        Hashtbl.remove sent_at (key triple);
        Hashtbl.remove arrival (key triple)
      | Trace.Failed_proc _ -> ()
      | Trace.Decided { proc; _ } -> decisions := (proc, proc_time.(proc)) :: !decisions
      | Trace.Became_amnesic _ | Trace.Halted _ -> ())
    trace;
  let completion = Array.fold_left Float.max 0.0 proc_time in
  ( { completion; per_proc = proc_time; msg_times = List.rev !msg_times },
    List.rev !decisions )

let evaluate ?step_cost ~seed ~model ~n trace =
  fst (propagate ?step_cost ~seed ~model ~n trace)

let critical_path_bound trace = Pattern.height (Pattern.of_trace trace)

let decision_times ?step_cost ~seed ~model ~n trace =
  snd (propagate ?step_cost ~seed ~model ~n trace)
