module Json = Patterns_stdx.Json

type edge = { src : int; event : string; dst : int }

let edges db ?src ?event ?dst () =
  Db.edges db ?src ?event ?dst () |> List.map (fun (src, event, dst) -> { src; event; dst })

let successors db fp = Db.edges db ~src:fp () |> List.map (fun (_, e, o) -> (e, o))
let predecessors db fp = Db.edges db ~dst:fp () |> List.map (fun (s, e, _) -> (s, e))

module Iset = Set.Make (Int)

let reachable db fp =
  if not (Db.mem_config db fp) then []
  else begin
    let seen = ref (Iset.singleton fp) in
    let q = Queue.create () in
    Queue.add fp q;
    while not (Queue.is_empty q) do
      let cur = Queue.pop q in
      List.iter
        (fun (_, dst) ->
          if not (Iset.mem dst !seen) then begin
            seen := Iset.add dst !seen;
            Queue.add dst q
          end)
        (successors db cur)
    done;
    Iset.elements !seen
  end

let path db ~src ~dst =
  if not (Db.mem_config db src) then None
  else if src = dst then Some []
  else begin
    (* breadth-first, successors in sorted order: first parent found is
       the canonical one *)
    let parent = Hashtbl.create 64 in
    let q = Queue.create () in
    Hashtbl.replace parent src None;
    Queue.add src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let cur = Queue.pop q in
      List.iter
        (fun (event, next) ->
          if not (Hashtbl.mem parent next) then begin
            Hashtbl.replace parent next (Some (cur, event));
            if next = dst then found := true else Queue.add next q
          end)
        (successors db cur)
    done;
    if not !found then None
    else begin
      let rec build acc node =
        match Hashtbl.find parent node with
        | None -> acc
        | Some (prev, event) -> build ({ src = prev; event; dst = node } :: acc) prev
      in
      Some (build [] dst)
    end
  end

let certs_touching db proc =
  Db.facts db ~kind:"cert"
  |> List.filter (fun (_, v) ->
         match Json.member "crashes" v with
         | Some (Json.List ps) ->
           List.exists (function Json.Int p -> p = proc | _ -> false) ps
         | _ -> false)

let edge_to_json { src; event; dst } =
  Json.Obj [ ("src", Json.Int src); ("event", Json.String event); ("dst", Json.Int dst) ]

let edges_to_json es = Json.List (List.map edge_to_json es)
