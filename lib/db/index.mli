(** Covering-index key layout and the 8-pattern index-selection table.

    Every recorded expansion is a [(src, event, dst)] triple of dense
    dictionary ids.  A triple is stored under three orderings —
    [Seo] = (src, event, dst), [Eos] = (event, dst, src) and
    [Ose] = (dst, src, event), the SPO/POS/OSP discipline of triple
    stores — as 24-byte keys of three big-endian 8-byte ids
    ({!Patterns_stdx.Dict.encode_into}), so lexicographic byte order
    equals numeric id order and every query is a prefix scan.

    With these three orderings {e all 8} bound/variable access
    patterns resolve to a pure prefix scan of exactly one index — no
    post-filtering:

    {v
      pattern (s,e,o)   index   prefix
      (B,B,B)           SEO     s,e,o   (point lookup)
      (B,B,V)           SEO     s,e
      (B,V,V)           SEO     s
      (V,V,V)           SEO     -       (full scan)
      (V,B,B)           EOS     e,o
      (V,B,V)           EOS     e
      (B,V,B)           OSE     o,s
      (V,V,B)           OSE     o
    v} *)

type ordering =
  | Seo  (** (src, event, dst) *)
  | Eos  (** (event, dst, src) *)
  | Ose  (** (dst, src, event) *)

val ordering_name : ordering -> string
(** ["seo"], ["eos"], ["ose"]. *)

val width : int
(** Bytes per index key: 24. *)

val key : ordering -> src:int -> event:int -> dst:int -> string
(** The 24-byte key of a triple under an ordering. *)

val decode : ordering -> string -> int * int * int
(** [decode ord k] recovers [(src, event, dst)] from a key of [ord].
    Raises [Invalid_argument] if [k] is not {!width} bytes. *)

val select : src:bool -> event:bool -> dst:bool -> ordering
(** The unique index on which this bound([true])/variable([false])
    pattern is a pure prefix scan — the table above. *)

val prefix : ordering -> ?src:int -> ?event:int -> ?dst:int -> unit -> string
(** The scan prefix for the bound components under an ordering: the
    encodings of the ordering's components, in order, stopping at the
    first unbound one.  For the ordering chosen by {!select} the bound
    components always form such a prefix, so the scan is exact. *)
