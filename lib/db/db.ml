module Dict = Patterns_stdx.Dict
module Lru = Patterns_stdx.Lru
module Json = Patterns_stdx.Json
module Sset = Set.Make (String)

type stats = { edges : int; index_scans : int; cache_hits : int; cache_misses : int }

type t = {
  mutex : Mutex.t;
  configs : int Dict.t; (* fingerprint -> dense id *)
  events : string Dict.t; (* descriptor -> dense id *)
  mutable seo : Sset.t;
  mutable eos : Sset.t;
  mutable ose : Sset.t;
  mutable n_edges : int;
  mutable index_scans : int;
  cache : (string, (int * string * int) list) Lru.t;
  facts : (string * string, Json.t) Hashtbl.t;
}

let schema = "patterns-edge-db/1"

let create ?(cache_capacity = 128) () =
  {
    mutex = Mutex.create ();
    configs = Dict.create ();
    events = Dict.create ();
    seo = Sset.empty;
    eos = Sset.empty;
    ose = Sset.empty;
    n_edges = 0;
    index_scans = 0;
    cache = Lru.create ~capacity:cache_capacity ();
    facts = Hashtbl.create 64;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* ----- edges ----- *)

let add_edge_unlocked t ~src ~event ~dst =
  let s = Dict.intern t.configs src in
  let e = Dict.intern t.events event in
  let o = Dict.intern t.configs dst in
  let k_seo = Index.key Index.Seo ~src:s ~event:e ~dst:o in
  if not (Sset.mem k_seo t.seo) then begin
    t.seo <- Sset.add k_seo t.seo;
    t.eos <- Sset.add (Index.key Index.Eos ~src:s ~event:e ~dst:o) t.eos;
    t.ose <- Sset.add (Index.key Index.Ose ~src:s ~event:e ~dst:o) t.ose;
    t.n_edges <- t.n_edges + 1;
    Lru.clear t.cache
  end

let add_edge t ~src ~event ~dst = locked t (fun () -> add_edge_unlocked t ~src ~event ~dst)

let index_of t = function
  | Index.Seo -> t.seo
  | Index.Eos -> t.eos
  | Index.Ose -> t.ose

(* prefix scan: every key extending [p] sorts at or after [p] itself *)
let scan t ord p =
  t.index_scans <- t.index_scans + 1;
  let set = index_of t ord in
  let seq = if p = "" then Sset.to_seq set else Sset.to_seq_from p set in
  Seq.take_while (fun k -> String.starts_with ~prefix:p k) seq
  |> Seq.fold_left (fun acc k -> Index.decode ord k :: acc) []
  |> List.rev

let compare_triple (s1, e1, o1) (s2, e2, o2) =
  match compare (s1 : int) s2 with
  | 0 -> ( match String.compare e1 e2 with 0 -> compare (o1 : int) o2 | c -> c)
  | c -> c

let edges t ?src ?event ?dst () =
  locked t (fun () ->
      let ckey =
        Printf.sprintf "e|%s|%s|%s"
          (match src with Some fp -> string_of_int fp | None -> "*")
          (match event with Some d -> d | None -> "*")
          (match dst with Some fp -> string_of_int fp | None -> "*")
      in
      match Lru.find t.cache ckey with
      | Some r -> r
      | None ->
        let bound_config = function
          | None -> Some None
          | Some fp -> (
            match Dict.find t.configs fp with Some id -> Some (Some id) | None -> None)
        in
        let bound_event = function
          | None -> Some None
          | Some d -> ( match Dict.find t.events d with Some id -> Some (Some id) | None -> None)
        in
        let result =
          match (bound_config src, bound_event event, bound_config dst) with
          | Some s, Some e, Some o ->
            let ord =
              Index.select ~src:(s <> None) ~event:(e <> None) ~dst:(o <> None)
            in
            let p = Index.prefix ord ?src:s ?event:e ?dst:o () in
            scan t ord p
            |> List.filter_map (fun (s, e, o) ->
                   match (Dict.value t.configs s, Dict.value t.events e, Dict.value t.configs o) with
                   | Some sfp, Some d, Some ofp -> Some (sfp, d, ofp)
                   | _ -> None)
            |> List.sort compare_triple
          | _ -> [] (* a bound component was never interned: no matches *)
        in
        Lru.add t.cache ckey result;
        result)

let mem_config t fp = locked t (fun () -> Dict.find t.configs fp <> None)

let stats t =
  locked t (fun () ->
      {
        edges = t.n_edges;
        index_scans = t.index_scans;
        cache_hits = Lru.hits t.cache;
        cache_misses = Lru.misses t.cache;
      })

(* ----- facts ----- *)

let put_fact t ~kind ~key v =
  locked t (fun () ->
      Hashtbl.replace t.facts (kind, key) v;
      Lru.clear t.cache)

let get_fact t ~kind ~key = locked t (fun () -> Hashtbl.find_opt t.facts (kind, key))

let facts t ~kind =
  locked t (fun () ->
      Hashtbl.fold (fun (k, key) v acc -> if String.equal k kind then (key, v) :: acc else acc) t.facts []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

(* ----- persistence ----- *)

let to_json t =
  locked t (fun () ->
      let configs = ref [] in
      Dict.iter (fun _ fp -> configs := Json.Int fp :: !configs) t.configs;
      let events = ref [] in
      Dict.iter (fun _ d -> events := Json.String d :: !events) t.events;
      let edges =
        Sset.fold
          (fun k acc ->
            let s, e, o = Index.decode Index.Seo k in
            Json.List [ Json.Int s; Json.Int e; Json.Int o ] :: acc)
          t.seo []
        |> List.rev
      in
      let facts =
        Hashtbl.fold (fun (kind, key) v acc -> (kind, key, v) :: acc) t.facts []
        |> List.sort (fun (k1, key1, _) (k2, key2, _) ->
               match String.compare k1 k2 with 0 -> String.compare key1 key2 | c -> c)
        |> List.map (fun (kind, key, v) ->
               Json.Obj [ ("kind", Json.String kind); ("key", Json.String key); ("value", v) ])
      in
      Json.Obj
        [
          ("schema", Json.String schema);
          ("configs", Json.List (List.rev !configs));
          ("events", Json.List (List.rev !events));
          ("edges", Json.List edges);
          ("facts", Json.List facts);
        ])

let of_json j =
  let ( let* ) = Result.bind in
  let* s = Result.bind (Json.field "schema" j) Json.to_str in
  if not (String.equal s schema) then Error (Printf.sprintf "unsupported db schema %S" s)
  else
    let* configs = Result.bind (Json.field "configs" j) Json.to_list in
    let* events = Result.bind (Json.field "events" j) Json.to_list in
    let* edges = Result.bind (Json.field "edges" j) Json.to_list in
    let* facts = Result.bind (Json.field "facts" j) Json.to_list in
    let t = create () in
    let* () =
      List.fold_left
        (fun acc c ->
          let* () = acc in
          let* fp = Json.to_int c in
          ignore (Dict.intern t.configs fp);
          Ok ())
        (Ok ()) configs
    in
    let* () =
      List.fold_left
        (fun acc e ->
          let* () = acc in
          let* d = Json.to_str e in
          ignore (Dict.intern t.events d);
          Ok ())
        (Ok ()) events
    in
    let* () =
      List.fold_left
        (fun acc e ->
          let* () = acc in
          let* triple = Json.to_list e in
          match triple with
          | [ s; ev; o ] ->
            let* s = Json.to_int s in
            let* ev = Json.to_int ev in
            let* o = Json.to_int o in
            (match (Dict.value t.configs s, Dict.value t.events ev, Dict.value t.configs o) with
            | Some sfp, Some d, Some ofp ->
              add_edge_unlocked t ~src:sfp ~event:d ~dst:ofp;
              Ok ()
            | _ -> Error "edge references an id outside the dictionaries")
          | _ -> Error "edge is not a 3-element list")
        (Ok ()) edges
    in
    let* () =
      List.fold_left
        (fun acc f ->
          let* () = acc in
          let* kind = Result.bind (Json.field "kind" f) Json.to_str in
          let* key = Result.bind (Json.field "key" f) Json.to_str in
          let* v = Json.field "value" f in
          Hashtbl.replace t.facts (kind, key) v;
          Ok ())
        (Ok ()) facts
    in
    Ok t

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')

let load path =
  if not (Sys.file_exists path) then Ok (create ())
  else
    let ic = open_in_bin path in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.of_string contents with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok j -> (
      match of_json j with Error e -> Error (Printf.sprintf "%s: %s" path e) | Ok t -> Ok t)
