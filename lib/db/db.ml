module Dict = Patterns_stdx.Dict
module Lru = Patterns_stdx.Lru
module Json = Patterns_stdx.Json
module Sset = Set.Make (String)

type stats = { edges : int; index_scans : int; cache_hits : int; cache_misses : int }

type t = {
  mutex : Mutex.t;
  configs : int Dict.t; (* fingerprint -> dense id *)
  events : string Dict.t; (* descriptor -> dense id *)
  mutable seo : Sset.t;
  mutable eos : Sset.t;
  mutable ose : Sset.t;
  mutable n_edges : int;
  mutable index_scans : int;
  cache : (string, (int * string * int) list) Lru.t;
  facts : (string * string, Json.t) Hashtbl.t;
}

(* /2 is the JSONL stream [save] writes; /1 is the original monolithic
   JSON document, still read by [load] (and still what [to_json] /
   [of_json] speak, for clients that want one value). *)
let schema = "patterns-edge-db/2"
let schema_v1 = "patterns-edge-db/1"

let create ?(cache_capacity = 128) () =
  {
    mutex = Mutex.create ();
    configs = Dict.create ();
    events = Dict.create ();
    seo = Sset.empty;
    eos = Sset.empty;
    ose = Sset.empty;
    n_edges = 0;
    index_scans = 0;
    cache = Lru.create ~capacity:cache_capacity ();
    facts = Hashtbl.create 64;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* ----- edges ----- *)

let add_edge_unlocked t ~src ~event ~dst =
  let s = Dict.intern t.configs src in
  let e = Dict.intern t.events event in
  let o = Dict.intern t.configs dst in
  let k_seo = Index.key Index.Seo ~src:s ~event:e ~dst:o in
  if not (Sset.mem k_seo t.seo) then begin
    t.seo <- Sset.add k_seo t.seo;
    t.eos <- Sset.add (Index.key Index.Eos ~src:s ~event:e ~dst:o) t.eos;
    t.ose <- Sset.add (Index.key Index.Ose ~src:s ~event:e ~dst:o) t.ose;
    t.n_edges <- t.n_edges + 1;
    Lru.clear t.cache
  end

let add_edge t ~src ~event ~dst = locked t (fun () -> add_edge_unlocked t ~src ~event ~dst)

let index_of t = function
  | Index.Seo -> t.seo
  | Index.Eos -> t.eos
  | Index.Ose -> t.ose

(* prefix scan: every key extending [p] sorts at or after [p] itself *)
let scan t ord p =
  t.index_scans <- t.index_scans + 1;
  let set = index_of t ord in
  let seq = if p = "" then Sset.to_seq set else Sset.to_seq_from p set in
  Seq.take_while (fun k -> String.starts_with ~prefix:p k) seq
  |> Seq.fold_left (fun acc k -> Index.decode ord k :: acc) []
  |> List.rev

let compare_triple (s1, e1, o1) (s2, e2, o2) =
  match compare (s1 : int) s2 with
  | 0 -> ( match String.compare e1 e2 with 0 -> compare (o1 : int) o2 | c -> c)
  | c -> c

let edges t ?src ?event ?dst () =
  locked t (fun () ->
      let ckey =
        Printf.sprintf "e|%s|%s|%s"
          (match src with Some fp -> string_of_int fp | None -> "*")
          (match event with Some d -> d | None -> "*")
          (match dst with Some fp -> string_of_int fp | None -> "*")
      in
      match Lru.find t.cache ckey with
      | Some r -> r
      | None ->
        let bound_config = function
          | None -> Some None
          | Some fp -> (
            match Dict.find t.configs fp with Some id -> Some (Some id) | None -> None)
        in
        let bound_event = function
          | None -> Some None
          | Some d -> ( match Dict.find t.events d with Some id -> Some (Some id) | None -> None)
        in
        let result =
          match (bound_config src, bound_event event, bound_config dst) with
          | Some s, Some e, Some o ->
            let ord =
              Index.select ~src:(s <> None) ~event:(e <> None) ~dst:(o <> None)
            in
            let p = Index.prefix ord ?src:s ?event:e ?dst:o () in
            scan t ord p
            |> List.filter_map (fun (s, e, o) ->
                   match (Dict.value t.configs s, Dict.value t.events e, Dict.value t.configs o) with
                   | Some sfp, Some d, Some ofp -> Some (sfp, d, ofp)
                   | _ -> None)
            |> List.sort compare_triple
          | _ -> [] (* a bound component was never interned: no matches *)
        in
        Lru.add t.cache ckey result;
        result)

let mem_config t fp = locked t (fun () -> Dict.find t.configs fp <> None)

let stats t =
  locked t (fun () ->
      {
        edges = t.n_edges;
        index_scans = t.index_scans;
        cache_hits = Lru.hits t.cache;
        cache_misses = Lru.misses t.cache;
      })

(* ----- facts ----- *)

let put_fact t ~kind ~key v =
  locked t (fun () ->
      Hashtbl.replace t.facts (kind, key) v;
      Lru.clear t.cache)

let get_fact t ~kind ~key = locked t (fun () -> Hashtbl.find_opt t.facts (kind, key))

let facts t ~kind =
  locked t (fun () ->
      Hashtbl.fold (fun (k, key) v acc -> if String.equal k kind then (key, v) :: acc else acc) t.facts []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

(* ----- persistence ----- *)

let to_json t =
  locked t (fun () ->
      let configs = ref [] in
      Dict.iter (fun _ fp -> configs := Json.Int fp :: !configs) t.configs;
      let events = ref [] in
      Dict.iter (fun _ d -> events := Json.String d :: !events) t.events;
      let edges =
        Sset.fold
          (fun k acc ->
            let s, e, o = Index.decode Index.Seo k in
            Json.List [ Json.Int s; Json.Int e; Json.Int o ] :: acc)
          t.seo []
        |> List.rev
      in
      let facts =
        Hashtbl.fold (fun (kind, key) v acc -> (kind, key, v) :: acc) t.facts []
        |> List.sort (fun (k1, key1, _) (k2, key2, _) ->
               match String.compare k1 k2 with 0 -> String.compare key1 key2 | c -> c)
        |> List.map (fun (kind, key, v) ->
               Json.Obj [ ("kind", Json.String kind); ("key", Json.String key); ("value", v) ])
      in
      Json.Obj
        [
          ("schema", Json.String schema_v1);
          ("configs", Json.List (List.rev !configs));
          ("events", Json.List (List.rev !events));
          ("edges", Json.List edges);
          ("facts", Json.List facts);
        ])

let of_json j =
  let ( let* ) = Result.bind in
  let* s = Result.bind (Json.field "schema" j) Json.to_str in
  if not (String.equal s schema_v1) then Error (Printf.sprintf "unsupported db schema %S" s)
  else
    let* configs = Result.bind (Json.field "configs" j) Json.to_list in
    let* events = Result.bind (Json.field "events" j) Json.to_list in
    let* edges = Result.bind (Json.field "edges" j) Json.to_list in
    let* facts = Result.bind (Json.field "facts" j) Json.to_list in
    let t = create () in
    let* () =
      List.fold_left
        (fun acc c ->
          let* () = acc in
          let* fp = Json.to_int c in
          ignore (Dict.intern t.configs fp);
          Ok ())
        (Ok ()) configs
    in
    let* () =
      List.fold_left
        (fun acc e ->
          let* () = acc in
          let* d = Json.to_str e in
          ignore (Dict.intern t.events d);
          Ok ())
        (Ok ()) events
    in
    let* () =
      List.fold_left
        (fun acc e ->
          let* () = acc in
          let* triple = Json.to_list e in
          match triple with
          | [ s; ev; o ] ->
            let* s = Json.to_int s in
            let* ev = Json.to_int ev in
            let* o = Json.to_int o in
            (match (Dict.value t.configs s, Dict.value t.events ev, Dict.value t.configs o) with
            | Some sfp, Some d, Some ofp ->
              add_edge_unlocked t ~src:sfp ~event:d ~dst:ofp;
              Ok ()
            | _ -> Error "edge references an id outside the dictionaries")
          | _ -> Error "edge is not a 3-element list")
        (Ok ()) edges
    in
    let* () =
      List.fold_left
        (fun acc f ->
          let* () = acc in
          let* kind = Result.bind (Json.field "kind" f) Json.to_str in
          let* key = Result.bind (Json.field "key" f) Json.to_str in
          let* v = Json.field "value" f in
          Hashtbl.replace t.facts (kind, key) v;
          Ok ())
        (Ok ()) facts
    in
    Ok t

(* ----- streaming JSONL (/2) ----- *)

(* One-line rendering for the /2 records: {!Json.to_string} breaks
   objects one element per line by design, so the stream writes its
   own compact form (same RFC 8259 escaping, no layout). *)
let escape_to b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec compact_to b (j : Json.t) =
  match j with
  | Json.Null -> Buffer.add_string b "null"
  | Json.Bool x -> Buffer.add_string b (string_of_bool x)
  | Json.Int i -> Buffer.add_string b (string_of_int i)
  | Json.Float f -> Buffer.add_string b (Printf.sprintf "%.17g" f)
  | Json.String s -> escape_to b s
  | Json.List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        compact_to b x)
      xs;
    Buffer.add_char b ']'
  | Json.Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_to b k;
        Buffer.add_char b ':';
        compact_to b v)
      kvs;
    Buffer.add_char b '}'

let output_record oc j =
  let b = Buffer.create 64 in
  compact_to b j;
  Buffer.add_char b '\n';
  Buffer.output_buffer oc b

(* The /2 stream: a schema marker line, then one record per line —
   ["c"] config fingerprints in id order, ["e"] event descriptors in
   id order, ["t"] edge id-triples in SEO key order, ["f"] facts
   sorted by (kind, key).  Each record is rendered and written
   individually, so saving never materialises the whole database as
   one string (the /1 document did, doubling peak memory on large
   edge logs). *)
let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      locked t (fun () ->
          output_record oc (Json.Obj [ ("schema", Json.String schema) ]);
          Dict.iter (fun _ fp -> output_record oc (Json.Obj [ ("c", Json.Int fp) ])) t.configs;
          Dict.iter
            (fun _ d -> output_record oc (Json.Obj [ ("e", Json.String d) ]))
            t.events;
          Sset.iter
            (fun k ->
              let s, e, o = Index.decode Index.Seo k in
              output_record oc
                (Json.Obj [ ("t", Json.List [ Json.Int s; Json.Int e; Json.Int o ]) ]))
            t.seo;
          Hashtbl.fold (fun (kind, key) v acc -> (kind, key, v) :: acc) t.facts []
          |> List.sort (fun (k1, key1, _) (k2, key2, _) ->
                 match String.compare k1 k2 with 0 -> String.compare key1 key2 | c -> c)
          |> List.iter (fun (kind, key, v) ->
                 output_record oc
                   (Json.Obj
                      [
                        ( "f",
                          Json.Obj
                            [
                              ("kind", Json.String kind);
                              ("key", Json.String key);
                              ("value", v);
                            ] );
                      ]))))

let apply_record t j =
  let ( let* ) = Result.bind in
  match j with
  | Json.Obj [ ("c", fp) ] ->
    let* fp = Json.to_int fp in
    ignore (Dict.intern t.configs fp);
    Ok ()
  | Json.Obj [ ("e", d) ] ->
    let* d = Json.to_str d in
    ignore (Dict.intern t.events d);
    Ok ()
  | Json.Obj [ ("t", triple) ] -> (
    let* triple = Json.to_list triple in
    match triple with
    | [ s; ev; o ] -> (
      let* s = Json.to_int s in
      let* ev = Json.to_int ev in
      let* o = Json.to_int o in
      match (Dict.value t.configs s, Dict.value t.events ev, Dict.value t.configs o) with
      | Some sfp, Some d, Some ofp ->
        add_edge_unlocked t ~src:sfp ~event:d ~dst:ofp;
        Ok ()
      | _ -> Error "edge references an id outside the dictionaries")
    | _ -> Error "edge is not a 3-element list")
  | Json.Obj [ ("f", f) ] ->
    let* kind = Result.bind (Json.field "kind" f) Json.to_str in
    let* key = Result.bind (Json.field "key" f) Json.to_str in
    let* v = Json.field "value" f in
    Hashtbl.replace t.facts (kind, key) v;
    Ok ()
  | _ -> Error "unrecognised record"

(* A /2 file is recognised by its first line (the schema marker
   object) and streamed line by line; anything else — including a /1
   document, whose first line is the opening brace — is read whole
   and handed to the /1 parser, which reports unsupported schemas. *)
let load path =
  if not (Sys.file_exists path) then Ok (create ())
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let first = match input_line ic with exception End_of_file -> "" | l -> l in
        let is_v2 =
          match Json.of_string first with
          | Ok (Json.Obj [ ("schema", Json.String s) ]) -> String.equal s schema
          | _ -> false
        in
        if is_v2 then begin
          let t = create () in
          let rec go lineno =
            match input_line ic with
            | exception End_of_file -> Ok t
            | "" -> go (lineno + 1)
            | line -> (
              match Result.bind (Json.of_string line) (apply_record t) with
              | Ok () -> go (lineno + 1)
              | Error e -> Error (Printf.sprintf "%s: line %d: %s" path lineno e))
          in
          go 2
        end
        else
          let rest =
            let n = in_channel_length ic - pos_in ic in
            if n <= 0 then "" else really_input_string ic n
          in
          match
            Result.bind (Json.of_string (first ^ "\n" ^ rest)) of_json
          with
          | Error e -> Error (Printf.sprintf "%s: %s" path e)
          | Ok t -> Ok t)
