(** Query combinators over the execution database.

    Thin, deterministic combinators on {!Db}: edge patterns resolve
    through the covering indexes, the graph helpers ([reachable],
    [path]) run breadth-first over indexed successor scans with
    successors visited in canonical (sorted) order, and
    [certs_touching] filters stored certificate facts by crash
    schedule.  All results are insertion-order-independent, hence
    [--jobs]- and [--par-mode]-invariant for a given recorded edge
    set. *)

type edge = {
  src : int;  (** config fingerprint *)
  event : string;  (** event descriptor *)
  dst : int;  (** config fingerprint *)
}

val edges : Db.t -> ?src:int -> ?event:string -> ?dst:int -> unit -> edge list
(** All recorded triples matching the bound components (see
    {!Db.edges}); sorted by [(src, event, dst)]. *)

val successors : Db.t -> int -> (string * int) list
(** Outgoing [(event, dst)] pairs of a config, sorted. *)

val predecessors : Db.t -> int -> (int * string) list
(** Incoming [(src, event)] pairs of a config, sorted. *)

val reachable : Db.t -> int -> int list
(** Every config fingerprint reachable from the given one over
    recorded edges (including itself, if it appears in the
    dictionary), sorted ascending. *)

val path : Db.t -> src:int -> dst:int -> edge list option
(** A shortest recorded path, found breadth-first with successors
    explored in sorted order (so the witness is canonical);
    [Some []] when [src = dst] appears in the database, [None] when
    unreachable. *)

val certs_touching : Db.t -> int -> (string * Patterns_stdx.Json.t) list
(** All stored certificate facts (kind ["cert"]) whose crash schedule
    touches the given process: facts whose value carries a ["crashes"]
    list containing it.  Sorted by fact key. *)

val edge_to_json : edge -> Patterns_stdx.Json.t
(** [{"src": fp, "event": desc, "dst": fp}]. *)

val edges_to_json : edge list -> Patterns_stdx.Json.t
