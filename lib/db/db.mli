(** The execution database: a triple-encoded edge log with covering
    indexes, a fact store, and a query-result cache.

    Every recorded kernel expansion is one [(src, event, dst)] triple:
    [src]/[dst] are canonical config fingerprints
    ({!Patterns_stdx.Fingerprint.to_int}) and [event] is a descriptor
    string (a rendered {!Patterns_sim.Script.directive}, or a
    successor ordinal for anonymous kernel expansions).  Fingerprints
    and descriptors are interned into global dictionaries
    ({!Patterns_stdx.Dict}); the dense ids form 24-byte big-endian
    keys stored in the three covering indexes of {!Index}, so every
    bound/variable access pattern is a prefix scan of exactly one
    index.  Query results are memoised in an LRU cache invalidated
    wholesale on every write.

    Alongside edges the database stores generic {e facts} — JSON
    values keyed by [(kind, key)] — used by the consumers for
    violation certificates ([kind = "cert"]), replay verdicts
    ([kind = "verdict"]) and classification sweeps
    ([kind = "classify"]).  The database itself knows nothing about
    those schemas, which keeps [Patterns_db] dependent on
    [Patterns_stdx] only.

    All operations are thread-safe (one internal mutex): the
    asynchronous search driver's workers may record edges
    concurrently. *)

type t

type stats = {
  edges : int;  (** distinct triples stored *)
  index_scans : int;  (** prefix scans actually performed *)
  cache_hits : int;
  cache_misses : int;
}

val schema : string
(** ["patterns-edge-db/1"] — the persisted JSON schema. *)

val create : ?cache_capacity:int -> unit -> t
(** Fresh empty database; [cache_capacity] bounds the query-result
    cache (default 128 entries). *)

(** {1 Edges} *)

val add_edge : t -> src:int -> event:string -> dst:int -> unit
(** Record one triple (idempotent — the indexes are sets).  [src] and
    [dst] are config fingerprints, [event] a descriptor string.
    Invalidates the query cache. *)

val edges : t -> ?src:int -> ?event:string -> ?dst:int -> unit -> (int * string * int) list
(** All stored triples matching the bound components, via a prefix
    scan of the index chosen by {!Index.select} (memoised in the
    cache).  Results are sorted by [(src, event, dst)] — fingerprint,
    then descriptor, then fingerprint — so they are independent of
    insertion order and hence of [--jobs]/[--par-mode]. *)

val mem_config : t -> int -> bool
(** Whether a config fingerprint appears in the dictionary (i.e. some
    recorded edge touches it). *)

val stats : t -> stats

(** {1 Facts} *)

val put_fact : t -> kind:string -> key:string -> Patterns_stdx.Json.t -> unit
(** Insert or replace the fact [(kind, key)].  Invalidates the query
    cache. *)

val get_fact : t -> kind:string -> key:string -> Patterns_stdx.Json.t option

val facts : t -> kind:string -> (string * Patterns_stdx.Json.t) list
(** All facts of a kind, sorted by key. *)

(** {1 Persistence} *)

val to_json : t -> Patterns_stdx.Json.t
(** Stable JSON: dictionaries in id order, edges in SEO key order,
    facts sorted by [(kind, key)]. *)

val of_json : Patterns_stdx.Json.t -> (t, string) result
(** Rebuild a database (dictionaries re-interned in id order, all
    three indexes reconstructed). *)

val save : t -> string -> unit
(** Write {!to_json} to a file (trailing newline). *)

val load : string -> (t, string) result
(** Read a database from a file.  A missing file is an empty database
    (so [--db FILE] works on first use); a malformed one is [Error]. *)
