(** The execution database: a triple-encoded edge log with covering
    indexes, a fact store, and a query-result cache.

    Every recorded kernel expansion is one [(src, event, dst)] triple:
    [src]/[dst] are canonical config fingerprints
    ({!Patterns_stdx.Fingerprint.to_int}) and [event] is a descriptor
    string (a rendered {!Patterns_sim.Script.directive}, or a
    successor ordinal for anonymous kernel expansions).  Fingerprints
    and descriptors are interned into global dictionaries
    ({!Patterns_stdx.Dict}); the dense ids form 24-byte big-endian
    keys stored in the three covering indexes of {!Index}, so every
    bound/variable access pattern is a prefix scan of exactly one
    index.  Query results are memoised in an LRU cache invalidated
    wholesale on every write.

    Alongside edges the database stores generic {e facts} — JSON
    values keyed by [(kind, key)] — used by the consumers for
    violation certificates ([kind = "cert"]), replay verdicts
    ([kind = "verdict"]) and classification sweeps
    ([kind = "classify"]).  The database itself knows nothing about
    those schemas, which keeps [Patterns_db] dependent on
    [Patterns_stdx] only.

    All operations are thread-safe (one internal mutex): the
    asynchronous search driver's workers may record edges
    concurrently. *)

type t

type stats = {
  edges : int;  (** distinct triples stored *)
  index_scans : int;  (** prefix scans actually performed *)
  cache_hits : int;
  cache_misses : int;
}

val schema : string
(** ["patterns-edge-db/2"] — the persisted JSONL schema written by
    {!save}: a schema marker line, then one compact record per line
    (["c"] config fingerprints in id order, ["e"] event descriptors in
    id order, ["t"] edge id-triples in SEO key order, ["f"] facts
    sorted by (kind, key)).  {!load} also reads the original
    monolithic /1 JSON document. *)

val create : ?cache_capacity:int -> unit -> t
(** Fresh empty database; [cache_capacity] bounds the query-result
    cache (default 128 entries). *)

(** {1 Edges} *)

val add_edge : t -> src:int -> event:string -> dst:int -> unit
(** Record one triple (idempotent — the indexes are sets).  [src] and
    [dst] are config fingerprints, [event] a descriptor string.
    Invalidates the query cache. *)

val edges : t -> ?src:int -> ?event:string -> ?dst:int -> unit -> (int * string * int) list
(** All stored triples matching the bound components, via a prefix
    scan of the index chosen by {!Index.select} (memoised in the
    cache).  Results are sorted by [(src, event, dst)] — fingerprint,
    then descriptor, then fingerprint — so they are independent of
    insertion order and hence of [--jobs]/[--par-mode]. *)

val mem_config : t -> int -> bool
(** Whether a config fingerprint appears in the dictionary (i.e. some
    recorded edge touches it). *)

val stats : t -> stats

(** {1 Facts} *)

val put_fact : t -> kind:string -> key:string -> Patterns_stdx.Json.t -> unit
(** Insert or replace the fact [(kind, key)].  Invalidates the query
    cache. *)

val get_fact : t -> kind:string -> key:string -> Patterns_stdx.Json.t option

val facts : t -> kind:string -> (string * Patterns_stdx.Json.t) list
(** All facts of a kind, sorted by key. *)

(** {1 Persistence} *)

val to_json : t -> Patterns_stdx.Json.t
(** Stable /1 JSON document: dictionaries in id order, edges in SEO
    key order, facts sorted by [(kind, key)] — one value, for clients
    that want the whole database in memory. *)

val of_json : Patterns_stdx.Json.t -> (t, string) result
(** Rebuild a database from a /1 document (dictionaries re-interned
    in id order, all three indexes reconstructed). *)

val save : t -> string -> unit
(** Stream the database to a file in the /2 JSONL form, one record
    rendered and written at a time — saving never materialises the
    whole database as a string, so [--db] does not double peak memory
    on large edge logs. *)

val load : string -> (t, string) result
(** Read a database from a file: a /2 stream (recognised by its first
    line) is applied record by record, anything else is parsed as a
    /1 document.  A missing file is an empty database (so [--db FILE]
    works on first use); a malformed one is [Error] naming the
    offending line. *)
