module Dict = Patterns_stdx.Dict

type ordering = Seo | Eos | Ose

let ordering_name = function Seo -> "seo" | Eos -> "eos" | Ose -> "ose"
let width = 3 * Dict.encoded_width

(* components of a triple in the order this ordering stores them *)
let components ord ~src ~event ~dst =
  match ord with
  | Seo -> (src, event, dst)
  | Eos -> (event, dst, src)
  | Ose -> (dst, src, event)

let key ord ~src ~event ~dst =
  let a, b, c = components ord ~src ~event ~dst in
  let buf = Bytes.create width in
  Dict.encode_into buf 0 a;
  Dict.encode_into buf Dict.encoded_width b;
  Dict.encode_into buf (2 * Dict.encoded_width) c;
  Bytes.unsafe_to_string buf

let decode ord k =
  if String.length k <> width then invalid_arg "Index.decode: bad key width";
  let a = Dict.decode k 0 in
  let b = Dict.decode k Dict.encoded_width in
  let c = Dict.decode k (2 * Dict.encoded_width) in
  match ord with
  | Seo -> (a, b, c)
  | Eos -> (c, a, b)
  | Ose -> (b, c, a)

let select ~src ~event ~dst =
  match (src, event, dst) with
  | true, true, true -> Seo (* point lookup *)
  | true, true, false -> Seo
  | true, false, false -> Seo
  | false, false, false -> Seo (* full scan *)
  | false, true, true -> Eos
  | false, true, false -> Eos
  | true, false, true -> Ose
  | false, false, true -> Ose

let prefix ord ?src ?event ?dst () =
  let comps =
    match ord with
    | Seo -> [ src; event; dst ]
    | Eos -> [ event; dst; src ]
    | Ose -> [ dst; src; event ]
  in
  let b = Buffer.create width in
  let rec go = function
    | Some id :: rest ->
      Buffer.add_string b (Dict.encode id);
      go rest
    | _ -> ()
  in
  go comps;
  Buffer.contents b
