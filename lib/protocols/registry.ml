open Patterns_sim

type entry = {
  name : string;
  describe : string;
  default_n : int;
  fixed_n : bool;
  protocol : (module Protocol.S);
}

let entry ?(fixed_n = false) ~default_n protocol =
  let (module P : Protocol.S) = protocol in
  { name = P.name; describe = P.describe; default_n; fixed_n; protocol }

let all =
  List.sort
    (fun a b -> String.compare a.name b.name)
    [
      entry ~default_n:4 Ben_or.default;
      entry ~default_n:7 ~fixed_n:true Tree_proto.fig1;
      entry ~default_n:7 ~fixed_n:true Tree_proto.fig1_amnesic;
      entry ~default_n:4 Central_proto.fig2;
      entry ~default_n:4 Chain_proto.fig3;
      entry ~default_n:4 Chain_proto.fig3_amnesic;
      entry ~default_n:4 ~fixed_n:true Perverse_proto.fig4;
      entry ~default_n:4 ~fixed_n:true Perverse_proto.fig4_amnesic;
      entry ~default_n:5 ~fixed_n:true (Tree_proto.three_phase_commit 5);
      entry ~default_n:5 Two_phase_commit.default;
      entry ~default_n:4 Coop_2pc.default;
      entry ~default_n:4 Decentralized_commit.default;
      entry ~default_n:4 Reliable_broadcast.default;
      entry ~default_n:5 Termination_proto.default;
      entry ~default_n:4 ~fixed_n:true (Total_comm.transform Perverse_proto.fig4);
      entry ~default_n:7 ~fixed_n:true Tree_commit.binary7;
      entry ~default_n:5 ~fixed_n:true (Tree_commit.star 5);
      entry ~default_n:5 ~fixed_n:true (Voting_tree.threshold_star ~k:3 5);
      entry ~default_n:5 ~fixed_n:true (Voting_tree.subset_star ~quorum:[ 0; 1 ] 5);
    ]

let find name = List.find_opt (fun e -> String.equal e.name name) all

let names () = List.map (fun e -> e.name) all
