(** Vote collection, shared by the coordinator-style protocols.

    A coordinator (or, in the decentralized protocol, every processor)
    waits for one input bit from each peer; failure notices substitute
    for missing bits and force an abort under every rule the paper
    considers ("decide 0 if ... a failure occurs"). *)

open Patterns_sim

type t

val start : Proc_id.t list -> t
(** Wait for a bit from each of the given processors. *)

val add_bit : t -> Proc_id.t -> bool -> t
(** Record a bit (ignored if not awaited). *)

val note_failure : t -> Proc_id.t -> t
(** Stop waiting for a failed processor and set the failure flag. *)

val awaiting : t -> Proc_id.t -> bool

val complete : t -> bool

val failure_seen : t -> bool

val decide : rule:Decision_rule.t -> n:int -> me:Proc_id.t -> own:bool -> t -> Decision.t
(** The natural decision once collection is complete: abort if a
    failure was seen, otherwise the rule applied to the full input
    vector. *)

val compare : t -> t -> int

val hash : t -> int
(** Consistent with {!compare}; hashes the waiting set canonically. *)

val pp : Format.formatter -> t -> unit
