open Patterns_sim

type bias = Committable | Noncommittable

let bias_equal a b =
  match (a, b) with
  | Committable, Committable | Noncommittable, Noncommittable -> true
  | (Committable | Noncommittable), _ -> false

let bias_rank = function Noncommittable -> 0 | Committable -> 1

let pp_bias ppf = function
  | Committable -> Format.pp_print_string ppf "committable"
  | Noncommittable -> Format.pp_print_string ppf "noncommittable"

type msg =
  | Round of { round : int; bias : bias }
  | Amnesic_notice

let compare_msg a b =
  match (a, b) with
  | Amnesic_notice, Amnesic_notice -> 0
  | Amnesic_notice, Round _ -> -1
  | Round _, Amnesic_notice -> 1
  | Round a, Round b ->
    let c = Int.compare a.round b.round in
    if c <> 0 then c else Int.compare (bias_rank a.bias) (bias_rank b.bias)

let pp_msg ppf = function
  | Amnesic_notice -> Format.pp_print_string ppf "amnesic"
  | Round { round; bias } -> Format.fprintf ppf "(round %d, %a)" round pp_bias bias

type phase =
  | Broadcasting of { round : int; pending : Proc_id.t list }
  | Collecting of { round : int; waiting : Proc_id.Set.t }
  | Announce_amnesia of { pending : Proc_id.t list }
  | Finished of Decision.t option

type t = {
  n : int;
  me : Proc_id.t;
  up : Proc_id.Set.t;  (* operational peers, excluding me *)
  bias : bias;
  phase : phase;
  (* round messages that arrived ahead of the collection they belong
     to: (sender, round, bias) *)
  stash : (Proc_id.t * int * bias) list;
}

let phase_rank = function
  | Broadcasting _ -> 0
  | Collecting _ -> 1
  | Announce_amnesia _ -> 2
  | Finished _ -> 3

let compare_phase a b =
  match (a, b) with
  | Broadcasting a, Broadcasting b ->
    let c = Int.compare a.round b.round in
    if c <> 0 then c else List.compare Proc_id.compare a.pending b.pending
  | Collecting a, Collecting b ->
    let c = Int.compare a.round b.round in
    if c <> 0 then c else Proc_id.Set.compare a.waiting b.waiting
  | Announce_amnesia a, Announce_amnesia b -> List.compare Proc_id.compare a.pending b.pending
  | Finished a, Finished b -> Option.compare Decision.compare a b
  | (Broadcasting _ | Collecting _ | Announce_amnesia _ | Finished _), _ ->
    Int.compare (phase_rank a) (phase_rank b)

let compare a b =
  let c = Int.compare a.n b.n in
  if c <> 0 then c
  else
    let c = Proc_id.compare a.me b.me in
    if c <> 0 then c
    else
      let c = Proc_id.Set.compare a.up b.up in
      if c <> 0 then c
      else
        let c = Int.compare (bias_rank a.bias) (bias_rank b.bias) in
        if c <> 0 then c
        else
          let c = compare_phase a.phase b.phase in
          if c <> 0 then c
          else
            List.compare
              (fun (p1, r1, b1) (p2, r2, b2) ->
                let c = Proc_id.compare p1 p2 in
                if c <> 0 then c
                else
                  let c = Int.compare r1 r2 in
                  if c <> 0 then c else Int.compare (bias_rank b1) (bias_rank b2))
              a.stash b.stash

let hash_phase = function
  | Broadcasting { round; pending } -> (((round * 31) + Hashtbl.hash pending) * 4) + 0
  | Collecting { round; waiting } -> (((round * 31) + Proc_id.set_hash waiting) * 4) + 1
  | Announce_amnesia { pending } -> (Hashtbl.hash pending * 4) + 2
  | Finished d -> (Hashtbl.hash d * 4) + 3

let hash t =
  let h = ((t.n * 31) + t.me) * 31 in
  let h = (h + Proc_id.set_hash t.up) * 31 in
  let h = (h + bias_rank t.bias) * 31 in
  let h = (h + hash_phase t.phase) * 31 in
  h + Hashtbl.hash t.stash

let decision_of_bias = function Committable -> Decision.Commit | Noncommittable -> Decision.Abort

(* Move through phases that need no external event: an empty broadcast
   list starts the collection; an empty waiting set starts the next
   round or finishes. *)
let rec normalize t =
  match t.phase with
  | Broadcasting { round; pending = [] } ->
    let waiting = Proc_id.Set.remove t.me t.up in
    (* consume stashed messages belonging to this round *)
    let this_round, stash =
      List.partition (fun (_, r, _) -> r = round) t.stash
    in
    let waiting, bias =
      List.fold_left
        (fun (w, b) (q, _, qb) ->
          ( Proc_id.Set.remove q w,
            if bias_equal qb Committable then Committable else b ))
        (waiting, t.bias) this_round
    in
    normalize { t with bias; stash; phase = Collecting { round; waiting } }
  | Collecting { round; waiting } when Proc_id.Set.is_empty waiting ->
    if round >= t.n then { t with phase = Finished (Some (decision_of_bias t.bias)) }
    else
      normalize
        { t with
          phase =
            Broadcasting
              { round = round + 1; pending = Proc_id.Set.elements (Proc_id.Set.remove t.me t.up) };
        }
  | Announce_amnesia { pending = [] } -> { t with phase = Finished None }
  | Broadcasting _ | Collecting _ | Announce_amnesia _ | Finished _ -> t

let start ~n ~me ~up ~bias =
  let up = Proc_id.Set.remove me up in
  normalize
    {
      n;
      me;
      up;
      bias;
      phase = Broadcasting { round = 1; pending = Proc_id.Set.elements up };
      stash = [];
    }

let start_amnesic ~n ~me ~up =
  let up = Proc_id.Set.remove me up in
  normalize
    {
      n;
      me;
      up;
      bias = Noncommittable;
      phase = Announce_amnesia { pending = Proc_id.Set.elements up };
      stash = [];
    }

let step_kind t =
  match t.phase with
  | Broadcasting _ | Announce_amnesia _ -> Step_kind.Sending
  | Collecting _ -> Step_kind.Receiving
  | Finished _ -> Step_kind.Quiescent

let send t =
  match t.phase with
  | Broadcasting { round; pending = q :: rest } ->
    ( Some (q, Round { round; bias = t.bias }),
      normalize { t with phase = Broadcasting { round; pending = rest } } )
  | Announce_amnesia { pending = q :: rest } ->
    (Some (q, Amnesic_notice), normalize { t with phase = Announce_amnesia { pending = rest } })
  | Broadcasting { pending = []; _ } | Announce_amnesia { pending = [] } | Collecting _
  | Finished _ -> (None, normalize t)

let remove_peer t q =
  let t =
    { t with
      up = Proc_id.Set.remove q t.up;
      stash = List.filter (fun (p, _, _) -> not (Proc_id.equal p q)) t.stash;
    }
  in
  match t.phase with
  | Collecting { round; waiting } ->
    normalize { t with phase = Collecting { round; waiting = Proc_id.Set.remove q waiting } }
  | Broadcasting { round; pending } ->
    normalize
      { t with
        phase =
          Broadcasting { round; pending = List.filter (fun p -> not (Proc_id.equal p q)) pending };
      }
  | Announce_amnesia { pending } ->
    normalize
      { t with
        phase =
          Announce_amnesia { pending = List.filter (fun p -> not (Proc_id.equal p q)) pending };
      }
  | Finished _ -> t

let on_msg t ~from msg =
  match msg with
  | Amnesic_notice -> remove_peer t from
  | Round { round = r; bias = b } -> (
    (* Bias adoption discipline.  Adopting a committable bias is only
       sound if it can still be acted on consistently: either the
       message is from the current or a future round (then either the
       sender broadcast it to every peer in this round, or we will
       rebroadcast it ourselves in a later round), or it is stale but
       at least one of our own broadcast rounds remains to propagate
       it.  A stale committable arriving during the final round must
       be dropped: adopting it would let this processor commit while
       peers that never see a committable message abort.  (Dropping is
       consistent: a sender that was alive through round r had its
       earlier rounds processed as current by everybody, and a sender
       that died before deciding constrains nobody.) *)
    let upgrade t current =
      if bias_equal b Committable && (r >= current || current < t.n) then
        { t with bias = Committable }
      else t
    in
    match t.phase with
    | Collecting { round; waiting } when r = round ->
      normalize
        (upgrade
           { t with phase = Collecting { round; waiting = Proc_id.Set.remove from waiting } }
           round)
    | Collecting { round; _ } when r > round ->
      normalize (upgrade { t with stash = t.stash @ [ (from, r, b) ] } round)
    | Broadcasting { round; _ } when r >= round ->
      normalize (upgrade { t with stash = t.stash @ [ (from, r, b) ] } round)
    | Collecting { round; _ } | Broadcasting { round; _ } -> normalize (upgrade t round)
    | Announce_amnesia _ | Finished _ -> normalize t)

let on_failure t q = remove_peer t q

(* An out-of-band upgrade (decision message) is only taken while at
   least one full round of broadcasts remains: a bias learned during
   the final round cannot be propagated to the peers, and acting on it
   unilaterally would let one processor commit while another —
   operational — aborts.  Round-carried biases do not need this guard
   because every round message is broadcast to all peers. *)
let upgrade_committable t =
  match t.phase with
  | Finished _ -> t
  | (Broadcasting { round; _ } | Collecting { round; _ }) when round >= t.n -> t
  | Broadcasting _ | Collecting _ | Announce_amnesia _ -> { t with bias = Committable }

let finished t = match t.phase with Finished _ -> true | _ -> false

let outcome t = match t.phase with Finished d -> d | _ -> None

let bias_of t = t.bias

let up_of t = t.up

let pp ppf t =
  let pp_phase ppf = function
    | Broadcasting { round; pending } ->
      Format.fprintf ppf "broadcast r%d (%d left)" round (List.length pending)
    | Collecting { round; waiting } ->
      Format.fprintf ppf "collect r%d wait=%a" round Proc_id.pp_set waiting
    | Announce_amnesia { pending } ->
      Format.fprintf ppf "announce-amnesia (%d left)" (List.length pending)
    | Finished None -> Format.pp_print_string ppf "finished(amnesic)"
    | Finished (Some d) -> Format.fprintf ppf "finished(%a)" Decision.pp d
  in
  Format.fprintf ppf "term{%a bias=%a up=%a}" pp_phase t.phase pp_bias t.bias Proc_id.pp_set t.up
