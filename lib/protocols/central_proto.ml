open Patterns_sim

type nmsg = Bit of bool | Decision_msg of Decision.t

let compare_nmsg a b =
  match (a, b) with
  | Bit x, Bit y -> Bool.compare x y
  | Decision_msg x, Decision_msg y -> Decision.compare x y
  | Bit _, Decision_msg _ -> -1
  | Decision_msg _, Bit _ -> 1

let pp_nmsg ppf = function
  | Bit b -> Format.fprintf ppf "bit(%d)" (if b then 1 else 0)
  | Decision_msg d -> Format.fprintf ppf "decision(%a)" Decision.pp d

type phase =
  | Collect of { waiting : Proc_id.Set.t; bits : (Proc_id.t * bool) list; failed_seen : bool }
  | Wait_decision
  | Done of Decision.t

type nstate = { outbox : nmsg Outbox.t; phase : phase; input : bool }

let hash_phase = function
  | Collect { waiting; bits; failed_seen } ->
    ((((Proc_id.set_hash waiting * 31) + Hashtbl.hash bits) * 2) + Bool.to_int failed_seen) * 4
  | Wait_decision -> 1
  | Done d -> (Hashtbl.hash d * 4) + 2

let hash_nstate s =
  (((Hashtbl.hash s.outbox * 31) + hash_phase s.phase) * 2) + Bool.to_int s.input

let coordinator : Proc_id.t = 0

module Make_base (Cfg : sig
  val rule : Decision_rule.t
  val name : string
end) : Commit_glue.BASE with type nmsg = nmsg = struct
  type nonrec nstate = nstate
  type nonrec nmsg = nmsg

  let name = Cfg.name

  let describe =
    Printf.sprintf "Figure 2: HT-IC centralized protocol (%s)" (Decision_rule.to_string Cfg.rule)

  let amnesic_variant = false
  let valid_n n = n >= 2

  let initial ~n ~me ~input =
    if Proc_id.equal me coordinator then
      {
        outbox = Outbox.empty;
        phase =
          Collect
            {
              waiting = Proc_id.set_of_list (Proc_id.others ~n coordinator);
              bits = [];
              failed_seen = false;
            };
        input;
      }
    else { outbox = [ (coordinator, Bit input) ]; phase = Wait_decision; input }

  let step_kind s =
    if not (Outbox.is_empty s.outbox) then Step_kind.Sending
    else
      match s.phase with
      | Collect _ | Wait_decision -> Step_kind.Receiving
      | Done _ -> Step_kind.Quiescent (* halting termination *)

  let send ~n:_ ~me:_ s =
    match Outbox.pop s.outbox with
    | None -> (None, s)
    | Some (out, rest) -> (Some out, { s with outbox = rest })

  (* [p0] finishes collecting: compute the decision, queue the
     broadcast, and decide once the broadcast has drained. *)
  let finish_collect ~n ~me s bits failed_seen =
    let decision =
      if failed_seen then Decision.Abort
      else begin
        let inputs = Array.make n false in
        inputs.(me) <- s.input;
        List.iter (fun (q, b) -> inputs.(q) <- b) bits;
        Decision_rule.natural_decision Cfg.rule inputs
      end
    in
    {
      s with
      outbox = Outbox.broadcast Outbox.empty (Proc_id.others ~n me) (Decision_msg decision);
      phase = Done decision;
    }

  let receive ~n ~me s ~from msg =
    match (s.phase, msg) with
    | Collect { waiting; bits; failed_seen }, Bit b when Proc_id.Set.mem from waiting ->
      let waiting = Proc_id.Set.remove from waiting in
      let bits = List.sort Stdlib.compare ((from, b) :: bits) in
      if Proc_id.Set.is_empty waiting then finish_collect ~n ~me s bits failed_seen
      else { s with phase = Collect { waiting; bits; failed_seen } }
    | Wait_decision, Decision_msg d ->
      (* rebroadcast to the other participants, then decide and halt *)
      let peers = List.filter (fun q -> not (Proc_id.equal q coordinator)) (Proc_id.others ~n me) in
      { s with outbox = Outbox.broadcast Outbox.empty peers (Decision_msg d); phase = Done d }
    | (Collect _ | Wait_decision | Done _), _ -> s

  let on_failure ~n ~me s q =
    match s.phase with
    | Collect { waiting; bits; failed_seen = _ } when Proc_id.Set.mem q waiting ->
      let waiting = Proc_id.Set.remove q waiting in
      let s' = { s with phase = Collect { waiting; bits; failed_seen = true } } in
      if Proc_id.Set.is_empty waiting then `Continue (finish_collect ~n ~me s' bits true)
      else `Continue s'
    | Collect _ | Done _ -> `Continue s
    | Wait_decision -> `Join Termination_core.Noncommittable

  let on_term_msg ~n:_ ~me:_ s =
    match s.phase with
    | Wait_decision -> `Join Termination_core.Noncommittable
    | Collect _ | Done _ -> `Ignore

  let term_translate = function
    | Decision_msg d -> `Peer_decided d
    | Bit _ -> `Ignore

  let known_halted _ = []

  let status s =
    match s.phase with
    | Done d when Outbox.is_empty s.outbox -> Status.decided_halted d
    | Done _ | Collect _ | Wait_decision -> Status.undecided

  let compare_phase a b =
    match (a, b) with
    | Collect a, Collect b ->
      let c = Proc_id.Set.compare a.waiting b.waiting in
      if c <> 0 then c
      else
        let c = Stdlib.compare a.bits b.bits in
        if c <> 0 then c else Bool.compare a.failed_seen b.failed_seen
    | Wait_decision, Wait_decision -> 0
    | Done a, Done b -> Decision.compare a b
    | Collect _, (Wait_decision | Done _) -> -1
    | Wait_decision, Collect _ -> 1
    | Wait_decision, Done _ -> -1
    | Done _, (Collect _ | Wait_decision) -> 1

  let hash_nstate = hash_nstate

  let compare_nstate a b =
    let c = Outbox.compare ~cmp_msg:compare_nmsg a.outbox b.outbox in
    if c <> 0 then c
    else
      let c = compare_phase a.phase b.phase in
      if c <> 0 then c else Bool.compare a.input b.input

  let pp_nstate ppf s =
    let pp_phase ppf = function
      | Collect { waiting; failed_seen; _ } ->
        Format.fprintf ppf "collect(wait=%a%s)" Proc_id.pp_set waiting
          (if failed_seen then ",failure" else "")
      | Wait_decision -> Format.pp_print_string ppf "wait-decision"
      | Done d -> Format.fprintf ppf "done(%a)" Decision.pp d
    in
    Format.fprintf ppf "%a%s" pp_phase s.phase
      (if Outbox.is_empty s.outbox then ""
       else Format.asprintf "+outbox%a" (Outbox.pp ~pp_msg:pp_nmsg) s.outbox)

  let compare_nmsg = compare_nmsg
  let pp_nmsg = pp_nmsg
end

let make ~rule ~name =
  let module B = Make_base (struct
    let rule = rule
    let name = name
  end) in
  let module P = Commit_glue.Make (B) in
  (module P : Protocol.S)

let fig2 = make ~rule:Decision_rule.Unanimity ~name:"fig2-central"
