(** Decision rules (Section 2 of the paper).

    A decision rule states the conditions under which a processor may
    decide a given value.  The paper's examples: the Broadcast rule of
    the Byzantine Generals problem, unanimity (transaction commitment),
    and the generalizations threshold-k and set(S, v). *)

open Patterns_sim

type t =
  | Unanimity
      (** decide 1 only if every initial bit is 1; decide 0 only if
          some bit is 0 or a failure occurred *)
  | Broadcast of Proc_id.t
      (** decide [v] only if the distinguished processor's bit is [v];
          the weak variant permits a default 0 when it is faulty *)
  | Threshold of int
      (** decide 1 only if at least [k] initial bits are 1 *)
  | Subset of Proc_id.t list
      (** set(S, v): decide [v] only if every processor in [S] has
          initial bit [v] *)
  | Any_input
      (** decide [v] only if some processor's initial bit is [v] — the
          validity condition of randomized consensus (Ben-Or): on mixed
          inputs either decision is legitimate, on unanimous inputs
          only the common value is *)

val natural_decision : t -> bool array -> Decision.t
(** The decision a correct failure-free run should reach: the
    strongest value the rule permits on these inputs (commit whenever
    commit is permitted). *)

val permits : t -> inputs:bool array -> failure_occurred:bool -> Decision.t -> bool
(** Whether the rule allows the given decision for this input vector
    (the safety direction used by checkers). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
