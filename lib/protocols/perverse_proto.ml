open Patterns_sim

type nmsg =
  | Vote of bool
  | Bias_m of Termination_core.bias
  | Ack
  | Dec of Decision.t
  | Ga  (** p1 -> p0, gadget race 1 *)
  | Gb  (** p3 -> p0, gadget race 1 *)
  | Gc  (** p1 -> p2, gadget race 2 *)
  | G4  (** p3 -> p2, gadget race 2 *)
  | Go  (** p0 -> p2: race 1 resolved, start race 2 *)
  | M1  (** dashed, p0 -> p3: Ga beat Gb *)
  | M2  (** dashed, p2 -> p0: Gc beat G4 *)
  | M3  (** dashed, p0 -> p1: M2 received and M1 was sent *)

let nmsg_rank = function
  | Vote _ -> 0 | Bias_m _ -> 1 | Ack -> 2 | Dec _ -> 3 | Ga -> 4 | Gb -> 5
  | Gc -> 6 | G4 -> 7 | Go -> 8 | M1 -> 9 | M2 -> 10 | M3 -> 11

let compare_nmsg a b =
  match (a, b) with
  | Vote x, Vote y -> Bool.compare x y
  | Bias_m x, Bias_m y ->
    Bool.compare
      (Termination_core.bias_equal x Termination_core.Committable)
      (Termination_core.bias_equal y Termination_core.Committable)
  | Dec x, Dec y -> Decision.compare x y
  | _ -> Int.compare (nmsg_rank a) (nmsg_rank b)

let pp_nmsg ppf = function
  | Vote b -> Format.fprintf ppf "vote(%d)" (if b then 1 else 0)
  | Bias_m bias -> Format.fprintf ppf "bias(%a)" Termination_core.pp_bias bias
  | Ack -> Format.pp_print_string ppf "ack"
  | Dec d -> Format.fprintf ppf "decision(%a)" Decision.pp d
  | Ga -> Format.pp_print_string ppf "m_a"
  | Gb -> Format.pp_print_string ppf "m_b"
  | Gc -> Format.pp_print_string ppf "m_c"
  | G4 -> Format.pp_print_string ppf "m_4"
  | Go -> Format.pp_print_string ppf "go"
  | M1 -> Format.pp_print_string ppf "m1"
  | M2 -> Format.pp_print_string ppf "m2"
  | M3 -> Format.pp_print_string ppf "m3"

type race = { got_a : bool; got_b : bool; a_first : bool }

type gather2 = { need_dec : bool; need_go : bool; got_c : bool; got_4 : bool; c_first : bool }

type phase =
  (* p0 *)
  | P0_collect of Vote_collect.t
  | P0_acks of Proc_id.Set.t
  | P0_race of race
  | P0_wait_m2 of { sent_m1 : bool }
  | P0_wait_m2_amnesic  (** ST variant: the [sent_m1] flag is erased *)
  | P0_listen
  (* p1, p2, p3 *)
  | Px_wait_bias
  | Px_wait_dec
  | P2_gather of gather2
  | Px_listen

type nstate = {
  outbox : nmsg Outbox.t;
  phase : phase;
  decision : Decision.t option;
  committable : bool;
  input : bool;
}

let hash_phase = function
  | P0_collect vc -> Vote_collect.hash vc * 16
  | P0_acks w -> (Proc_id.set_hash w * 16) + 1
  | P0_race r -> (Hashtbl.hash r * 16) + 2
  | P0_wait_m2 { sent_m1 } -> (Bool.to_int sent_m1 * 16) + 3
  | P0_wait_m2_amnesic -> 4
  | P0_listen -> 5
  | Px_wait_bias -> 6
  | Px_wait_dec -> 7
  | P2_gather g -> (Hashtbl.hash g * 16) + 8
  | Px_listen -> 9

let hash_nstate s =
  let h = (Hashtbl.hash s.outbox * 31) + hash_phase s.phase in
  let h = (h * 31) + Hashtbl.hash s.decision in
  (((h * 2) + Bool.to_int s.committable) * 2) + Bool.to_int s.input

module Make_base (Cfg : sig
  val st : bool
  val name : string
end) : Commit_glue.BASE with type nmsg = nmsg = struct
  type nonrec nstate = nstate
  type nonrec nmsg = nmsg

  let name = Cfg.name

  let describe =
    if Cfg.st then "Figure 4 gadget protocol, amnesic ST attempt (provably cannot work)"
    else "Figure 4: WT-TC protocol with exactly four failure-free patterns"

  let amnesic_variant = false (* amnesia, where present, is managed in the base *)
  let valid_n n = n = 4

  let participants = [ 1; 2; 3 ]

  let initial ~n:_ ~me ~input =
    if me = 0 then
      {
        outbox = Outbox.empty;
        phase = P0_collect (Vote_collect.start participants);
        decision = None;
        committable = false;
        input;
      }
    else
      { outbox = [ (0, Vote input) ]; phase = Px_wait_bias; decision = None; committable = false; input }

  (* participants that have finished their role in the ST variant are
     genuinely amnesic: decision erased *)
  let amnesic_now s =
    Cfg.st && Outbox.is_empty s.outbox
    && (match s.phase with P0_wait_m2_amnesic | P0_listen | Px_listen -> true | _ -> false)

  let step_kind s =
    if not (Outbox.is_empty s.outbox) then Step_kind.Sending
    else
      match s.phase with
      | P0_collect _ | P0_acks _ | P0_race _ | P0_wait_m2 _ | P0_wait_m2_amnesic | P0_listen
      | Px_wait_bias | Px_wait_dec | P2_gather _ | Px_listen -> Step_kind.Receiving

  let send ~n:_ ~me:_ s =
    match Outbox.pop s.outbox with
    | None -> (None, s)
    | Some (out, rest) -> (Some out, { s with outbox = rest })

  let bias_value s =
    if s.committable then Termination_core.Committable else Termination_core.Noncommittable

  (* p0: all votes in — broadcast the bias (always: the flow is
     input-independent so that the scheme has exactly four patterns) *)
  let finish_collect s vc =
    let committable =
      s.input && not (Vote_collect.failure_seen vc)
      && Decision.equal (Vote_collect.decide ~rule:Decision_rule.Unanimity ~n:4 ~me:0 ~own:s.input vc)
           Decision.Commit
    in
    let s = { s with committable } in
    {
      s with
      outbox = Outbox.broadcast Outbox.empty participants (Bias_m (bias_value s));
      phase = P0_acks (Proc_id.set_of_list participants);
    }

  let decision_of_bias s =
    if s.committable then Decision.Commit else Decision.Abort

  let resolve_race s a_first =
    let dashed = if a_first then [ (3, M1) ] else [] in
    {
      s with
      outbox = dashed @ [ (2, Go) ];
      phase = (if Cfg.st then P0_wait_m2_amnesic else P0_wait_m2 { sent_m1 = a_first });
    }

  let p2_check s g =
    if (not g.need_dec) && (not g.need_go) && g.got_c && g.got_4 then
      { s with outbox = (if g.c_first then [ (0, M2) ] else []); phase = Px_listen }
    else { s with phase = P2_gather g }

  let receive ~n:_ ~me s ~from msg =
    match (s.phase, msg) with
    (* ---- p0 ---- *)
    | P0_collect vc, Vote b when Vote_collect.awaiting vc from ->
      let vc = Vote_collect.add_bit vc from b in
      if Vote_collect.complete vc then finish_collect s vc else { s with phase = P0_collect vc }
    | P0_acks waiting, Ack when Proc_id.Set.mem from waiting ->
      let waiting = Proc_id.Set.remove from waiting in
      if Proc_id.Set.is_empty waiting then begin
        (* every nonfaulty processor holds the bias: decide, then
           broadcast the decision and enter the gadget *)
        let d = decision_of_bias s in
        {
          s with
          decision = Some d;
          outbox = Outbox.broadcast Outbox.empty participants (Dec d);
          phase = P0_race { got_a = false; got_b = false; a_first = false };
        }
      end
      else { s with phase = P0_acks waiting }
    | P0_race r, Ga ->
      let r = { r with got_a = true; a_first = not r.got_b } in
      if r.got_a && r.got_b then resolve_race s r.a_first else { s with phase = P0_race r }
    | P0_race r, Gb ->
      let r = { r with got_b = true } in
      if r.got_a && r.got_b then resolve_race s r.a_first else { s with phase = P0_race r }
    | P0_wait_m2 { sent_m1 }, M2 ->
      { s with outbox = (if sent_m1 then [ (1, M3) ] else []); phase = P0_listen }
    | P0_wait_m2_amnesic, M2 ->
      (* amnesic p0 cannot remember whether M1 was sent; deterministic
         machines must react uniformly — this one never sends M3 *)
      { s with phase = P0_listen }
    (* ---- participants ---- *)
    | Px_wait_bias, Bias_m bias ->
      let s =
        { s with committable = Termination_core.bias_equal bias Termination_core.Committable }
      in
      { s with outbox = [ (0, Ack) ]; phase = (if me = 2 then
          P2_gather { need_dec = true; need_go = true; got_c = false; got_4 = false; c_first = false }
        else Px_wait_dec) }
    | Px_wait_dec, Dec d ->
      (* p1 and p3 decide, then send their gadget pair *)
      let gadget = if me = 1 then [ (0, Ga); (2, Gc) ] else [ (0, Gb); (2, G4) ] in
      { s with decision = Some d; outbox = gadget; phase = Px_listen }
    | P2_gather g, Dec d -> p2_check { s with decision = Some d } { g with need_dec = false }
    | P2_gather g, Go -> p2_check s { g with need_go = false }
    | P2_gather g, Gc -> p2_check s { g with got_c = true; c_first = not g.got_4 }
    | P2_gather g, G4 -> p2_check s { g with got_4 = true }
    (* ---- strays (late gadget messages to listeners, etc.) ---- *)
    | ( ( P0_collect _ | P0_acks _ | P0_race _ | P0_wait_m2 _ | P0_wait_m2_amnesic | P0_listen
        | Px_wait_bias | Px_wait_dec | P2_gather _ | Px_listen ),
        _ ) -> s

  let on_failure ~n:_ ~me:_ s _q = `Join (bias_value s)
  let on_term_msg ~n:_ ~me:_ s = `Join (bias_value s)

  (* in-flight normal messages are ignored mid-termination (see
     Commit_glue.BASE.term_translate) *)
  let term_translate (_ : nmsg) = `Ignore
  let known_halted _ = []

  let status s =
    if amnesic_now s then Status.amnesic
    else { Status.decision = s.decision; amnesic = false; halted = false }

  let phase_key = function
    | P0_collect _ -> 0 | P0_acks _ -> 1 | P0_race _ -> 2 | P0_wait_m2 _ -> 3
    | P0_wait_m2_amnesic -> 4 | P0_listen -> 5 | Px_wait_bias -> 6 | Px_wait_dec -> 7
    | P2_gather _ -> 8 | Px_listen -> 9

  let compare_phase a b =
    match (a, b) with
    | P0_collect x, P0_collect y -> Vote_collect.compare x y
    | P0_acks x, P0_acks y -> Proc_id.Set.compare x y
    | P0_race x, P0_race y -> Stdlib.compare x y
    | P0_wait_m2 { sent_m1 = x }, P0_wait_m2 { sent_m1 = y } -> Bool.compare x y
    | P2_gather x, P2_gather y -> Stdlib.compare x y
    | _ -> Int.compare (phase_key a) (phase_key b)

  let hash_nstate = hash_nstate

  let compare_nstate a b =
    let c = Outbox.compare ~cmp_msg:compare_nmsg a.outbox b.outbox in
    if c <> 0 then c
    else
      let c = compare_phase a.phase b.phase in
      if c <> 0 then c
      else
        let c = Option.compare Decision.compare a.decision b.decision in
        if c <> 0 then c
        else
          let c = Bool.compare a.committable b.committable in
          if c <> 0 then c else Bool.compare a.input b.input

  let pp_phase ppf = function
    | P0_collect vc -> Vote_collect.pp ppf vc
    | P0_acks w -> Format.fprintf ppf "acks(wait=%a)" Proc_id.pp_set w
    | P0_race r ->
      Format.fprintf ppf "race(a=%b,b=%b,a_first=%b)" r.got_a r.got_b r.a_first
    | P0_wait_m2 { sent_m1 } -> Format.fprintf ppf "wait-m2(sent_m1=%b)" sent_m1
    | P0_wait_m2_amnesic -> Format.pp_print_string ppf "wait-m2(amnesic)"
    | P0_listen -> Format.pp_print_string ppf "listen(p0)"
    | Px_wait_bias -> Format.pp_print_string ppf "wait-bias"
    | Px_wait_dec -> Format.pp_print_string ppf "wait-decision"
    | P2_gather g ->
      Format.fprintf ppf "gather(dec=%b,go=%b,c=%b,4=%b,c_first=%b)" (not g.need_dec)
        (not g.need_go) g.got_c g.got_4 g.c_first
    | Px_listen -> Format.pp_print_string ppf "listen"

  let pp_nstate ppf s =
    Format.fprintf ppf "%a%s" pp_phase s.phase
      (if Outbox.is_empty s.outbox then ""
       else Format.asprintf "+outbox%a" (Outbox.pp ~pp_msg:pp_nmsg) s.outbox)

  let compare_nmsg = compare_nmsg
  let pp_nmsg = pp_nmsg
end

let make ~st ~name =
  let module B = Make_base (struct
    let st = st
    let name = name
  end) in
  let module P = Commit_glue.Make (B) in
  (module P : Protocol.S)

let fig4 = make ~st:false ~name:"fig4-perverse"

let fig4_amnesic = make ~st:true ~name:"fig4-perverse-st"
